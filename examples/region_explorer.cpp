//===----------------------------------------------------------------------===//
///
/// \file
/// region_explorer: an interactive-ish tool for inspecting what the
/// analyses do to a program. Give it source text (or the name of a
/// builtin benchmark) and it prints the T-T annotation, the A-F-L
/// completion, analysis telemetry, and the memory comparison.
///
/// Usage:
///   region_explorer 'letrec fac n = ... in fac 10 end'
///   region_explorer @appel 25          (builtin programs: @appel,
///   region_explorer @quicksort 30       @quicksort, @fib, @randlist,
///   region_explorer @fib 12             @fac, @example11, @example21)
///
//===----------------------------------------------------------------------===//

#include "completion/Report.h"
#include "driver/Pipeline.h"
#include "programs/Corpus.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace afl;

static std::string builtinSource(const std::string &Name, int N) {
  if (Name == "@appel")
    return programs::appelSource(N);
  if (Name == "@quicksort")
    return programs::quicksortSource(N);
  if (Name == "@fib")
    return programs::fibSource(N);
  if (Name == "@randlist")
    return programs::randlistSource(N);
  if (Name == "@fac")
    return programs::facSource(N);
  if (Name == "@example11")
    return programs::example11Source();
  if (Name == "@example21")
    return programs::example21Source();
  std::fprintf(stderr, "unknown builtin '%s'\n", Name.c_str());
  std::exit(1);
}

int main(int Argc, char **Argv) {
  std::string Source;
  if (Argc >= 2 && Argv[1][0] == '@') {
    int N = Argc >= 3 ? std::atoi(Argv[2]) : 10;
    Source = builtinSource(Argv[1], N);
  } else if (Argc >= 2) {
    Source = Argv[1];
  } else {
    Source = programs::example21Source();
    std::printf("(no argument given; using Example 2.1)\n\n");
  }

  driver::PipelineResult R = driver::runPipeline(Source);
  if (!R.ok()) {
    std::fprintf(stderr, "pipeline failed:\n%s\n", R.Diags.str().c_str());
    return 1;
  }

  std::printf("=== source ===\n%s\n\n", Source.c_str());
  std::printf("=== Tofte/Talpin annotation + conservative completion "
              "===\n%s\n",
              R.printConservative().c_str());
  std::printf("=== A-F-L completion ===\n%s\n", R.printAfl().c_str());

  std::printf("=== analysis ===\n");
  std::printf("closure-analysis passes:   %u\n", R.Analysis.ClosurePasses);
  std::printf("abstract closures:         %zu\n", R.Analysis.NumClosures);
  std::printf("(expr, region-env) pairs:  %zu\n", R.Analysis.NumContexts);
  std::printf("state variables:           %zu\n", R.Analysis.NumStateVars);
  std::printf("boolean variables:         %zu\n", R.Analysis.NumBoolVars);
  std::printf("constraints:               %zu\n", R.Analysis.NumConstraints);
  std::printf("solver choices/backtracks: %llu / %llu\n",
              (unsigned long long)R.Analysis.SolverChoices,
              (unsigned long long)R.Analysis.SolverBacktracks);

  std::printf("=== completion report (§7 programmer feedback) ===\n%s\n",
              completion::reportCompletion(*R.Prog, R.AflC).str().c_str());

  std::printf("\n=== memory (T-T vs A-F-L) ===\n");
  std::printf("max regions:  %llu vs %llu\n",
              (unsigned long long)R.Conservative.S.MaxRegions,
              (unsigned long long)R.Afl.S.MaxRegions);
  std::printf("max values:   %llu vs %llu\n",
              (unsigned long long)R.Conservative.S.MaxValues,
              (unsigned long long)R.Afl.S.MaxValues);
  std::printf("final values: %llu vs %llu\n",
              (unsigned long long)R.Conservative.S.FinalValues,
              (unsigned long long)R.Afl.S.FinalValues);
  std::printf("result:       %s\n", R.Afl.ResultText.c_str());
  return 0;
}
