//===----------------------------------------------------------------------===//
///
/// \file
/// appel_asymptotics: demonstrates the paper's headline result on the
/// Appel example [App92] — space residency is O(n²) under stack-
/// disciplined (Tofte/Talpin) regions but O(n) under the A-F-L
/// completion, because the recursive function's dead parameter list is
/// reclaimed before the activation finishes.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Corpus.h"

#include <cstdio>

using namespace afl;

int main() {
  std::printf("Appel example: max storable values held\n");
  std::printf("%6s %12s %12s %14s %14s\n", "n", "T-T", "A-F-L", "T-T/n^2",
              "A-F-L/n");
  for (int N : {10, 20, 40, 80, 160}) {
    driver::PipelineResult R = driver::runPipeline(programs::appelSource(N));
    if (!R.ok()) {
      std::fprintf(stderr, "n=%d failed:\n%s\n", N, R.Diags.str().c_str());
      return 1;
    }
    std::printf("%6d %12llu %12llu %14.3f %14.3f\n", N,
                (unsigned long long)R.Conservative.S.MaxValues,
                (unsigned long long)R.Afl.S.MaxValues,
                double(R.Conservative.S.MaxValues) / (double(N) * N),
                double(R.Afl.S.MaxValues) / double(N));
  }
  std::printf("\nA flat T-T/n^2 column and a flat A-F-L/n column confirm "
              "the paper's asymptotic claim.\n");
  return 0;
}
