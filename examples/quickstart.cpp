//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: run the full aflregion pipeline on the paper's Example 1.1
/// and print (a) the Tofte/Talpin region-annotated program with the
/// conservative completion, (b) the A-F-L completion computed by the
/// constraint solver, and (c) the memory behavior of both.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <cstdio>

using namespace afl;

int main() {
  // Example 1.1 from the paper:
  //   (let z = (2,3) in fn y => (fst z, y) end) 5
  const char *Source = "(let z = (2, 3) in fn y => (fst z, y) end) 5";

  driver::PipelineResult R = driver::runPipeline(Source);
  if (!R.ok()) {
    std::fprintf(stderr, "pipeline failed:\n%s\n", R.Diags.str().c_str());
    return 1;
  }

  std::printf("=== source ===\n%s\n\n", Source);
  std::printf("=== Tofte/Talpin (conservative completion) ===\n%s\n",
              R.printConservative().c_str());
  std::printf("=== A-F-L completion ===\n%s\n", R.printAfl().c_str());

  std::printf("=== memory behavior ===\n");
  std::printf("%-34s %10s %10s\n", "metric", "T-T", "A-F-L");
  auto Row = [](const char *Name, uint64_t T, uint64_t A) {
    std::printf("%-34s %10llu %10llu\n", Name, (unsigned long long)T,
                (unsigned long long)A);
  };
  Row("max regions allocated", R.Conservative.S.MaxRegions,
      R.Afl.S.MaxRegions);
  Row("total region allocations", R.Conservative.S.TotalRegionAllocs,
      R.Afl.S.TotalRegionAllocs);
  Row("total value allocations", R.Conservative.S.TotalValueAllocs,
      R.Afl.S.TotalValueAllocs);
  Row("max values held", R.Conservative.S.MaxValues, R.Afl.S.MaxValues);
  Row("values in final memory", R.Conservative.S.FinalValues,
      R.Afl.S.FinalValues);

  std::printf("\nresult: %s (reference interpreter: %s)\n",
              R.Afl.ResultText.c_str(), R.Reference.ResultText.c_str());
  return 0;
}
