//===----------------------------------------------------------------------===//
///
/// \file
/// paper_walkthrough: a guided tour of the whole system following the
/// paper's own structure. Runs each analysis phase on the running
/// examples and narrates what happens — useful as a first read of the
/// codebase and as a living summary of the reproduction.
///
//===----------------------------------------------------------------------===//

#include "closure/ClosureAnalysis.h"
#include "completion/Report.h"
#include "constraints/ConstraintPrinter.h"
#include "driver/Pipeline.h"
#include "interp/TraceAnalysis.h"
#include "programs/Corpus.h"

#include <cstdio>

using namespace afl;

namespace {

void section(const char *Title) {
  std::printf("\n============================================================"
              "========\n%s\n============================================="
              "=======================\n",
              Title);
}

} // namespace

int main() {
  section("§1  The example: (let z = (2,3) in fn y => (fst z, y) end) 5");
  driver::PipelineOptions TraceOpts;
  TraceOpts.RecordTrace = true;
  driver::PipelineResult Ex =
      driver::runPipeline(programs::example11Source(), TraceOpts);
  if (!Ex.ok()) {
    std::fprintf(stderr, "pipeline failed:\n%s\n", Ex.Diags.str().c_str());
    return 1;
  }
  std::printf("Region inference produced the Tofte/Talpin annotation; the\n"
              "conservative completion allocates each region at its "
              "letregion\nand frees it at scope exit (Fig. 1a):\n\n%s\n",
              Ex.printConservative().c_str());

  section("§3  Extended closure analysis");
  {
    closure::ClosureAnalysis CA(*Ex.Prog);
    CA.run();
    std::printf("The analysis computes, per (expression, abstract region\n"
                "environment) pair, the closures the expression may become.\n"
                "Here: %zu abstract closures over %zu contexts, stable "
                "after %zu worklist step(s).\n",
                CA.numClosures(), CA.numContexts(),
                CA.stats().ProcessedContexts);
    constraints::GenResult Gen =
        constraints::generateConstraints(*Ex.Prog, CA);
    section("§4  The constraint system");
    std::printf("%s\n", constraints::summarize(Gen).c_str());
  }

  section("§4.3  The solved completion (Fig. 1b — optimal here)");
  std::printf("%s\n", Ex.printAfl().c_str());
  std::printf("Note free_app on the closure's region, the immediate free "
              "of the\ndead 3, and the pair region allocated only inside "
              "the pair.\n");

  section("§7  Programmer feedback");
  std::printf("%s\n",
              completion::reportCompletion(*Ex.Prog, Ex.AflC).str().c_str());

  section("§6  Memory behavior (Example 1.1)");
  interp::TraceSummary TT = interp::summarizeTrace(Ex.Conservative.Trace);
  interp::TraceSummary AFL = interp::summarizeTrace(Ex.Afl.Trace);
  std::printf("T-T:   peak %llu values, space-time %llu\n",
              (unsigned long long)TT.Peak,
              (unsigned long long)TT.SpaceTime);
  std::printf("A-F-L: peak %llu values, space-time %llu\n",
              (unsigned long long)AFL.Peak,
              (unsigned long long)AFL.SpaceTime);

  section("§6  The headline: the Appel example");
  std::printf("%6s %12s %12s\n", "n", "T-T peak", "A-F-L peak");
  for (int N : {10, 20, 40, 80}) {
    driver::PipelineResult R =
        driver::runPipeline(programs::appelSource(N));
    if (!R.ok())
      return 1;
    std::printf("%6d %12llu %12llu\n", N,
                (unsigned long long)R.Conservative.S.MaxValues,
                (unsigned long long)R.Afl.S.MaxValues);
  }
  std::printf("\nQuadratic vs linear — \"in some cases the improvement in "
              "memory\nusage is asymptotic\" (§1). Every region operation "
              "was checked\ndynamically while producing these numbers "
              "(Theorem 5.1).\n");
  return 0;
}
