//===----------------------------------------------------------------------===//
///
/// \file
/// memory_profile: emits the full memory-over-time trace of a program
/// under both completions as CSV on stdout (series,time,values) — the raw
/// data behind the paper's Figures 5-8, ready for gnuplot:
///
///   examples/memory_profile @quicksort 50 > trace.csv
/// then plot column 3 against column 2, one line per series.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Corpus.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace afl;

static std::string builtinSource(const std::string &Name, int N) {
  if (Name == "@appel")
    return programs::appelSource(N);
  if (Name == "@quicksort")
    return programs::quicksortSource(N);
  if (Name == "@fib")
    return programs::fibSource(N);
  if (Name == "@randlist")
    return programs::randlistSource(N);
  if (Name == "@fac")
    return programs::facSource(N);
  std::fprintf(stderr, "unknown builtin '%s'\n", Name.c_str());
  std::exit(1);
}

int main(int Argc, char **Argv) {
  std::string Source;
  if (Argc >= 2 && Argv[1][0] == '@')
    Source = builtinSource(Argv[1], Argc >= 3 ? std::atoi(Argv[2]) : 10);
  else if (Argc >= 2)
    Source = Argv[1];
  else
    Source = programs::randlistSource(10);

  driver::PipelineOptions Options;
  Options.RecordTrace = true;
  driver::PipelineResult R = driver::runPipeline(Source, Options);
  if (!R.ok()) {
    std::fprintf(stderr, "pipeline failed:\n%s\n", R.Diags.str().c_str());
    return 1;
  }

  std::printf("series,time,values\n");
  for (const interp::TracePoint &P : R.Conservative.Trace)
    std::printf("Tofte/Talpin,%llu,%llu\n", (unsigned long long)P.Time,
                (unsigned long long)P.ValuesHeld);
  for (const interp::TracePoint &P : R.Afl.Trace)
    std::printf("A-F-L,%llu,%llu\n", (unsigned long long)P.Time,
                (unsigned long long)P.ValuesHeld);
  std::fprintf(stderr, "result: %s | T-T max %llu, A-F-L max %llu\n",
               R.Afl.ResultText.c_str(),
               (unsigned long long)R.Conservative.S.MaxValues,
               (unsigned long long)R.Afl.S.MaxValues);
  return 0;
}
