//===----------------------------------------------------------------------===//
///
/// \file
/// aflc — the command-line driver for the aflregion pipeline.
///
/// Usage:
///   aflc [options] '<program text>'
///   aflc [options] -f program.ml
///   aflc [options] @appel 25            (builtin corpus programs)
///
/// Options:
///   --emit=afl|tt|both   print the completed program(s) (default: afl)
///   --report             print the completion report (§7 feedback)
///   --stats              print the five Table 2 metrics for both systems
///   --trace=FILE         write the memory-over-time CSV traces to FILE
///   --validate           run the structural validators and report
///   --no-freeapp         ablation: disable free_app choice points
///   --lexical-alloc      ablation: allocation only at letregion entry
///   --lexical-free       ablation: deallocation only at letregion exit
///   --closure-restart    reference closure fixpoint: whole-program
///                        restart passes instead of the worklist
///   --no-simplify        ablation: solve the raw constraint system
///                        (skip union-find collapse + component split)
///   --no-packed-domains  ablation: byte-per-variable solver domains
///                        (oracle/bench baseline for the packed default)
///   --solver-jobs N      worker threads for the per-component solve
///                        (0 = all cores, 1 = sequential)
///   --closure-jobs N     worker threads for the closure analysis
///                        (0 = all cores, 1 = sequential worklist;
///                        default: $AFL_CLOSURE_JOBS or 1)
///   --closure-widen[=K]  k-limit closure contexts: canonically merge
///                        abstract region environments that agree on
///                        the consumer-visible regions once a closure
///                        exceeds K invisible color classes (bare
///                        flag: K=8; 0 disables; default:
///                        $AFL_CLOSURE_WIDEN or off)
///   --interp=vm|tree     evaluator for the instrumented runs: bytecode
///                        VM (default) or the Fig. 2 tree walker
///                        (default: $AFL_INTERP or vm)
///   --no-run             analysis only (skip the instrumented runs)
///   --timings            print the per-stage wall-time table
///   --metrics[=FILE]     emit per-stage metrics as JSON (stdout or FILE)
///   --batch DIR          run every .afl file under DIR (thread-pooled)
///   -j N                 worker threads for --batch (default: all cores)
///
/// Environment:
///   AFL_ARENA_POOL=0|1       disable/enable the process-wide arena pool
///                            (default: 1; see docs/OBSERVABILITY.md)
///   AFL_ARENA_POOL_MAX=N     retention cap of the arena pool (default 32)
///   AFL_CLOSURE_WIDEN=K      default widening bound (see --closure-widen)
///   --serve              incremental analysis server: newline-delimited
///                        JSON requests on stdin, responses on stdout
///                        (protocol in docs/SERVER.md)
///
//===----------------------------------------------------------------------===//

#include "closure/ClosureAnalysis.h"
#include "completion/Report.h"
#include "constraints/ConstraintPrinter.h"
#include "driver/BatchRunner.h"
#include "driver/Pipeline.h"
#include "driver/Server.h"
#include "interp/Interp.h"
#include "programs/Corpus.h"
#include "regions/RegionPrinter.h"
#include "regions/Validator.h"
#include "support/ArenaPool.h"
#include "support/CliParse.h"
#include "support/FileIO.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace afl;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: aflc [options] '<program>' | -f FILE | @builtin [N]\n"
      "  --emit=afl|tt|both  print completed program(s)\n"
      "  --report            completion report\n"
      "  --stats             memory metrics for both systems\n"
      "  --trace=FILE        write CSV traces\n"
      "  --validate          run structural validators\n"
      "  --no-freeapp --lexical-alloc --lexical-free   ablations\n"
      "  --closure-restart   reference closure fixpoint (restart mode)\n"
      "  --no-simplify       solve the raw constraint system\n"
      "  --no-packed-domains byte-per-variable solver domains (ablation)\n"
      "  --no-shards         ignore emission-time shards (monolithic solve)\n"
      "  --solver-jobs N     threads for the per-component solve\n"
      "  --closure-jobs N    threads for the closure analysis\n"
      "  --closure-widen[=K] merge closure contexts past K invisible\n"
      "                      color classes (bare: K=8; 0 = off;\n"
      "                      default: $AFL_CLOSURE_WIDEN or off)\n"
      "  --dump-constraints  print the generated constraint system\n"
      "  --interp=vm|tree    evaluator for the runs (default: $AFL_INTERP "
      "or vm)\n"
      "  --no-run            skip instrumented runs\n"
      "  --timings           per-stage wall-time table\n"
      "  --metrics[=FILE]    per-stage metrics as JSON\n"
      "  --batch DIR [-j N]  run every .afl file under DIR concurrently\n"
      "  --serve             incremental analysis server on stdin/stdout\n"
      "  --listen PORT       serve on 127.0.0.1:PORT instead (0 = ephemeral;\n"
      "                      implies --serve; prints the bound port on stderr)\n"
      "  --max-connections N concurrent-connection cap in listen mode "
      "(default 8)\n"
      "  --idle-timeout SECS close idle connections after SECS (0 = never;\n"
      "                      default 300)\n"
      "  env: AFL_ARENA_POOL=0|1, AFL_ARENA_POOL_MAX=N  arena pooling\n");
}

/// Strictly parses the numeric argument \p Text of \p Flag. Anything
/// other than a plain base-10 unsigned integer ("bogus", "1x", "-3",
/// "") is a usage error: print a diagnostic + usage and exit 2.
unsigned parseJobsArg(const char *Flag, const char *Text) {
  unsigned Value = 0;
  if (!parseCliUnsigned(Text, Value)) {
    std::fprintf(stderr,
                 "aflc: invalid value '%s' for %s (expected a "
                 "non-negative integer)\n",
                 Text, Flag);
    usage();
    std::exit(2);
  }
  return Value;
}

/// Strictly parses the backend name of --interp= / $AFL_INTERP. Unlike
/// the library's lenient defaultBackend(), a typo here ("v", "treee")
/// is a usage error, not a silent fallback to the VM.
interp::BackendKind parseInterpArg(const char *What, const char *Text) {
  interp::BackendKind B = interp::BackendKind::Vm;
  if (!interp::parseBackendName(Text, B)) {
    std::fprintf(stderr,
                 "aflc: invalid value '%s' for %s (expected 'vm' or "
                 "'tree')\n",
                 Text, What);
    usage();
    std::exit(2);
  }
  return B;
}

std::string builtinSource(const std::string &Name, int N) {
  if (Name == "@appel")
    return programs::appelSource(N);
  if (Name == "@quicksort")
    return programs::quicksortSource(N);
  if (Name == "@fib")
    return programs::fibSource(N);
  if (Name == "@randlist")
    return programs::randlistSource(N);
  if (Name == "@fac")
    return programs::facSource(N);
  if (Name == "@example11")
    return programs::example11Source();
  if (Name == "@example21")
    return programs::example21Source();
  std::fprintf(stderr, "aflc: unknown builtin '%s'\n", Name.c_str());
  std::exit(1);
}

/// Writes \p Json to \p File ("" or "-" = stdout). Returns false on I/O
/// failure.
bool emitJson(const std::string &File, const std::string &Json) {
  if (File.empty() || File == "-") {
    std::fputs(Json.c_str(), stdout);
    return true;
  }
  std::string Err;
  if (!writeTextFile(File, Json, Err)) {
    std::fprintf(stderr, "aflc: %s\n", Err.c_str());
    return false;
  }
  std::fprintf(stderr, "aflc: wrote metrics to %s\n", File.c_str());
  return true;
}

/// Runs every .afl file under \p Dir through the thread-pooled batch
/// runner and prints a per-file summary plus the aggregate breakdown.
int runBatchMode(const std::string &Dir, const driver::PipelineOptions &Options,
                 unsigned Threads, bool Timings, bool Metrics,
                 const std::string &MetricsFile) {
  // The walk is fault-tolerant (driver::collectBatchItems): unreadable
  // subdirectories, dangling symlinks, and files that fail mid-read
  // become failed batch items — visible in the summary and the metrics
  // JSON — while the rest of the batch still runs. Only an unreadable
  // root directory aborts the batch.
  std::vector<driver::BatchItem> Work;
  std::string Error;
  if (!driver::collectBatchItems(Dir, Work, Error)) {
    std::fprintf(stderr, "aflc: %s\n", Error.c_str());
    return 1;
  }
  if (Work.empty()) {
    std::fprintf(stderr, "aflc: no .afl files under '%s'\n", Dir.c_str());
    return 1;
  }
  // Directory iteration order is unspecified; sort for stable output.
  std::sort(Work.begin(), Work.end(),
            [](const driver::BatchItem &A, const driver::BatchItem &B) {
              return A.Name < B.Name;
            });

  driver::BatchResult Batch = driver::runBatch(Work, Options, Threads);

  std::printf("%-32s %6s %12s %10s  %s\n", "program", "status", "max values",
              "time", "result");
  for (const driver::BatchItemResult &Item : Batch.Items) {
    if (Item.Ok)
      std::printf("%-32s %6s %12llu %8.1fms  %s\n", Item.Name.c_str(), "ok",
                  (unsigned long long)Item.AflStats.MaxValues,
                  Item.Stats.TotalSeconds * 1e3, Item.ResultText.c_str());
    else {
      // Diagnostics arrive newline-terminated; trim so the row stays one line.
      std::string Err = Item.Error;
      while (!Err.empty() && (Err.back() == '\n' || Err.back() == '\r'))
        Err.pop_back();
      std::printf("%-32s %6s %12s %8.1fms  %s\n", Item.Name.c_str(), "FAIL",
                  "-", Item.Stats.TotalSeconds * 1e3, Err.c_str());
    }
  }
  std::printf("batch: %zu/%zu ok on %u thread(s), wall %.1fms "
              "(cpu %.1fms, speedup %.2fx)\n",
              Batch.NumOk, Batch.Items.size(), Batch.Threads,
              Batch.WallSeconds * 1e3,
              Batch.AggregateStats.TotalSeconds * 1e3,
              Batch.WallSeconds > 0
                  ? Batch.AggregateStats.TotalSeconds / Batch.WallSeconds
                  : 0.0);

  if (Timings) {
    std::printf("\naggregate stage breakdown (cpu time over %zu file(s)):\n",
                Batch.Items.size());
    std::fputs(driver::formatTimings(Batch.AggregateStats,
                                     Batch.AggregateAnalysis)
                   .c_str(),
               stdout);
  }

  if (Metrics) {
    MetricsRegistry Reg;
    Reg.set("aflc_metrics_version", 1);
    {
      MetricScope S(Reg, "batch");
      Batch.recordMetrics(Reg);
    }
    driver::recordMemoryMetrics(Reg);
    if (!emitJson(MetricsFile, Reg.json()))
      return 1;
  }
  return Batch.allOk() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Emit = "afl";
  bool Report = false, Stats = false, Validate = false, NoRun = false;
  bool DumpConstraints = false, Timings = false, Metrics = false;
  bool Serve = false;
  bool Listen = false;
  driver::ServeOptions ServeOpts;
  std::string TraceFile, MetricsFile, BatchDir;
  unsigned Threads = 0;
  std::string Source;
  constraints::GenOptions Gen;
  solver::SolveOptions Solve;
  closure::ClosureOptions Closure;

  // The library reads $AFL_INTERP leniently; the CLI rejects a bad value
  // up front so a typo cannot silently run the wrong evaluator.
  interp::BackendKind Backend = interp::BackendKind::Vm;
  if (const char *Env = std::getenv("AFL_INTERP"))
    Backend = parseInterpArg("$AFL_INTERP", Env);

  // Same strictness for the arena-pool knobs: the library treats anything
  // but "0" as enabled, but a typo here ("ture", "off") is a usage error.
  if (const char *Env = std::getenv("AFL_ARENA_POOL")) {
    bool Enabled = true;
    if (!parseCliToggle(Env, Enabled)) {
      std::fprintf(stderr,
                   "aflc: invalid value '%s' for $AFL_ARENA_POOL "
                   "(expected '0' or '1')\n",
                   Env);
      usage();
      return 2;
    }
    ArenaPool::setGlobalEnabled(Enabled);
  }
  if (const char *Env = std::getenv("AFL_ARENA_POOL_MAX"))
    ArenaPool::global().setMaxPooled(
        parseJobsArg("$AFL_ARENA_POOL_MAX", Env));
  // The library reads $AFL_CLOSURE_WIDEN leniently (invalid -> widening
  // off); here a typo is a usage error, not a silently-exact analysis.
  if (const char *Env = std::getenv("AFL_CLOSURE_WIDEN"))
    Closure.Widening = parseJobsArg("$AFL_CLOSURE_WIDEN", Env);

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
      if (Emit != "afl" && Emit != "tt" && Emit != "both") {
        usage();
        return 2;
      }
    } else if (Arg == "--report") {
      Report = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--validate") {
      Validate = true;
    } else if (Arg.rfind("--interp=", 0) == 0) {
      Backend = parseInterpArg("--interp", Arg.c_str() + 9);
    } else if (Arg == "--no-run") {
      NoRun = true;
    } else if (Arg == "--serve") {
      Serve = true;
    } else if (Arg == "--listen") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      unsigned Port = parseJobsArg("--listen", Argv[I]);
      if (Port > 65535) {
        std::fprintf(stderr,
                     "aflc: invalid value '%s' for --listen (expected a "
                     "port in [0, 65535])\n",
                     Argv[I]);
        usage();
        return 2;
      }
      ServeOpts.Port = static_cast<uint16_t>(Port);
      Serve = Listen = true;
    } else if (Arg == "--max-connections") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      unsigned N = parseJobsArg("--max-connections", Argv[I]);
      if (N == 0) {
        std::fprintf(stderr, "aflc: --max-connections must be at least 1\n");
        usage();
        return 2;
      }
      ServeOpts.MaxConnections = N;
    } else if (Arg == "--idle-timeout") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      ServeOpts.IdleTimeoutMs =
          parseJobsArg("--idle-timeout", Argv[I]) * 1000u;
    } else if (Arg == "--dump-constraints") {
      DumpConstraints = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TraceFile = Arg.substr(8);
    } else if (Arg == "--timings") {
      Timings = true;
    } else if (Arg == "--metrics") {
      Metrics = true;
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      Metrics = true;
      MetricsFile = Arg.substr(10);
    } else if (Arg == "--batch") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      BatchDir = Argv[I];
    } else if (Arg == "-j") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      Threads = parseJobsArg("-j", Argv[I]);
    } else if (Arg.rfind("-j", 0) == 0 && Arg.size() > 2) {
      Threads = parseJobsArg("-j", Arg.c_str() + 2);
    } else if (Arg == "--no-simplify") {
      Solve.Simplify = false;
    } else if (Arg == "--no-packed-domains") {
      Solve.PackedDomains = false;
    } else if (Arg == "--no-shards") {
      Solve.UseShards = false;
    } else if (Arg == "--solver-jobs") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      Solve.Jobs = parseJobsArg("--solver-jobs", Argv[I]);
    } else if (Arg == "--closure-jobs") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      Closure.Jobs = parseJobsArg("--closure-jobs", Argv[I]);
    } else if (Arg == "--closure-widen") {
      Closure.Widening = 8;
    } else if (Arg.rfind("--closure-widen=", 0) == 0) {
      Closure.Widening = parseJobsArg("--closure-widen", Arg.c_str() + 16);
    } else if (Arg == "--closure-restart") {
      Closure.UseWorklist = false;
    } else if (Arg == "--no-freeapp") {
      Gen.FreeApp = false;
    } else if (Arg == "--lexical-alloc") {
      Gen.LateAlloc = false;
    } else if (Arg == "--lexical-free") {
      Gen.EarlyFree = false;
    } else if (Arg == "-f") {
      if (++I >= Argc) {
        usage();
        return 2;
      }
      std::ifstream In(Argv[I]);
      if (!In) {
        std::fprintf(stderr, "aflc: cannot open '%s'\n", Argv[I]);
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Source = SS.str();
    } else if (!Arg.empty() && Arg[0] == '@') {
      int N = 10;
      if (I + 1 < Argc &&
          isdigit(static_cast<unsigned char>(Argv[I + 1][0]))) {
        // Looks numeric, so it must parse cleanly ("2x" is an error,
        // not silently 2).
        N = static_cast<int>(parseJobsArg(Arg.c_str(), Argv[++I]));
      }
      Source = builtinSource(Arg, N);
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      Source = Arg;
    }
  }
  driver::PipelineOptions Options;
  Options.SkipRuns = NoRun;
  Options.RecordTrace = !TraceFile.empty();
  Options.GenOptions = Gen;
  Options.SolveOptions = Solve;
  Options.ClosureOptions = Closure;
  Options.Backend = Backend;

  if (Serve) {
    driver::Server S;
    if (!Listen)
      return S.run(std::cin, std::cout);
    std::string Error;
    if (!S.listen(ServeOpts, Error)) {
      std::fprintf(stderr, "aflc: cannot listen on port %u: %s\n",
                   static_cast<unsigned>(ServeOpts.Port), Error.c_str());
      return 1;
    }
    // Machine-readable bind line (tools/serve_smoke.py parses it; also
    // how humans learn the ephemeral port --listen 0 picked).
    std::fprintf(stderr, "aflc: serving on 127.0.0.1:%u\n",
                 static_cast<unsigned>(S.port()));
    std::fflush(stderr);
    return S.serve();
  }

  if (!BatchDir.empty())
    return runBatchMode(BatchDir, Options, Threads, Timings, Metrics,
                        MetricsFile);

  if (Source.empty()) {
    usage();
    return 2;
  }

  driver::PipelineResult R = driver::runPipeline(Source, Options);
  if (!R.ok()) {
    std::fprintf(stderr, "aflc: pipeline failed:\n%s", R.Diags.str().c_str());
    return 1;
  }

  if (Emit == "tt" || Emit == "both")
    std::printf("=== Tofte/Talpin ===\n%s\n", R.printConservative().c_str());
  if (Emit == "afl" || Emit == "both")
    std::printf("=== A-F-L ===\n%s\n", R.printAfl().c_str());

  if (Validate) {
    std::vector<std::string> E1 = regions::validateRegionProgram(*R.Prog);
    std::vector<std::string> E2 = regions::validateCompletion(*R.Prog, R.AflC);
    std::vector<std::string> E3 =
        regions::validateCompletion(*R.Prog, R.ConservativeC);
    size_t Total = E1.size() + E2.size() + E3.size();
    std::printf("validation: %zu issue(s)\n", Total);
    for (const auto *Set : {&E1, &E2, &E3})
      for (const std::string &Message : *Set)
        std::printf("  %s\n", Message.c_str());
    if (Total)
      return 1;
  }

  if (Report)
    std::printf("%s", completion::reportCompletion(*R.Prog, R.AflC)
                          .str()
                          .c_str());

  if (DumpConstraints) {
    closure::ClosureAnalysis CA(*R.Prog, Closure);
    if (!CA.run()) {
      std::fprintf(stderr, "aflc: %s\n", CA.error().c_str());
      return 1;
    }
    constraints::GenResult DGen =
        constraints::generateConstraints(*R.Prog, CA, Gen);
    std::printf("%s", constraints::dumpSystem(DGen).c_str());
  }

  if (Stats && !NoRun) {
    std::printf("%-28s %12s %12s\n", "metric", "T-T", "A-F-L");
    auto Row = [](const char *Name, uint64_t T, uint64_t A) {
      std::printf("%-28s %12llu %12llu\n", Name, (unsigned long long)T,
                  (unsigned long long)A);
    };
    Row("max regions", R.Conservative.S.MaxRegions, R.Afl.S.MaxRegions);
    Row("region allocations", R.Conservative.S.TotalRegionAllocs,
        R.Afl.S.TotalRegionAllocs);
    Row("value allocations", R.Conservative.S.TotalValueAllocs,
        R.Afl.S.TotalValueAllocs);
    Row("max values held", R.Conservative.S.MaxValues, R.Afl.S.MaxValues);
    Row("final values", R.Conservative.S.FinalValues, R.Afl.S.FinalValues);
    std::printf("result: %s\n", R.Afl.ResultText.c_str());
  }

  if (Timings)
    std::fputs(R.formatTimings().c_str(), stdout);

  if (Metrics) {
    MetricsRegistry Reg;
    Reg.set("aflc_metrics_version", 1);
    {
      MetricScope S(Reg, "pipeline");
      R.recordMetrics(Reg);
      // Single-run process, so the process-wide peak RSS is this
      // pipeline's memory profile (batch mode reports it per batch).
      MetricScope Runs(Reg, "runs");
      Reg.set("peak_rss_kb", readPeakRssKb());
    }
    driver::recordMemoryMetrics(Reg);
    if (!emitJson(MetricsFile, Reg.json()))
      return 1;
  }

  if (!TraceFile.empty() && !NoRun) {
    std::ofstream Out(TraceFile);
    if (!Out) {
      std::fprintf(stderr, "aflc: cannot write '%s'\n", TraceFile.c_str());
      return 1;
    }
    Out << "series,time,values\n";
    for (const interp::TracePoint &P : R.Conservative.Trace)
      Out << "Tofte/Talpin," << P.Time << ',' << P.ValuesHeld << '\n';
    for (const interp::TracePoint &P : R.Afl.Trace)
      Out << "A-F-L," << P.Time << ',' << P.ValuesHeld << '\n';
    std::fprintf(stderr, "aflc: wrote traces to %s\n", TraceFile.c_str());
  }
  return 0;
}
