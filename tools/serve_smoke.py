#!/usr/bin/env python3
"""CI smoke test for `aflc --serve` (docs/SERVER.md).

Plays the checked-in request transcript `serve_session.txt` against a
freshly spawned server and compares each response line to
`serve_session.golden`. Responses are canonicalized before comparison:
parsed as JSON, every volatile *scope* (see VOLATILE_SCOPES) stripped
wherever it nests, and re-serialized with sorted keys. Everything else —
tiers taken, context/shard counters, reports, solver domains, error
messages — must match byte-for-byte.

With --socket the same transcript runs over the TCP transport
(`--serve --listen 0`): the script parses the ephemeral port from the
server's stderr bind line, sends the requests CRLF-terminated (proving
the framing fixes), and verifies the responses against the same golden.
Connection counters ("connections" in metrics responses) exist only on
the socket transport and are canonicalized away like the arena-pool
counters ("memory").

Usage:
    tools/serve_smoke.py path/to/aflc            # verify against golden
    tools/serve_smoke.py path/to/aflc --socket   # same, over TCP
    tools/serve_smoke.py path/to/aflc --update   # regenerate the golden
"""

import json
import socket
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
TRANSCRIPT = HERE / "serve_session.txt"
GOLDEN = HERE / "serve_session.golden"


def requests():
    """Request lines from the transcript; '#' comments and blanks skipped."""
    lines = []
    for raw in TRANSCRIPT.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        lines.append(line)
    return lines


# Scope names whose entire subtree is non-reproducible, stripped
# wherever they appear in a response. Scope-based (not a hand-kept list
# of leaf fields under hard-coded paths) so a new counter inside one of
# these scopes — or the same scope emitted at a new nesting level —
# cannot silently re-introduce run-to-run noise into the golden:
#   timings      wall-clock, never reproducible
#   memory       arena-pool counters; vary with $AFL_ARENA_POOL/history
#   connections  exist only on the socket transport
VOLATILE_SCOPES = frozenset({"timings", "memory", "connections"})


def strip_volatile(obj):
    """Recursively removes VOLATILE_SCOPES keys anywhere in the tree."""
    if isinstance(obj, dict):
        return {
            k: strip_volatile(v)
            for k, v in obj.items()
            if k not in VOLATILE_SCOPES
        }
    if isinstance(obj, list):
        return [strip_volatile(v) for v in obj]
    return obj


def canonicalize(line):
    """Sorted-keys JSON with the non-reproducible scopes removed."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"serve_smoke: server emitted non-JSON line: {line!r} ({e})")
    return json.dumps(
        strip_volatile(obj), sort_keys=True, separators=(",", ":")
    )


def run_stdio(aflc, reqs):
    """One stdio server run; returns its raw response lines."""
    proc = subprocess.run(
        [aflc, "--serve"],
        input="\n".join(reqs) + "\n",
        capture_output=True,
        text=True,
        timeout=120,
    )
    if proc.returncode != 0:
        sys.exit(
            f"serve_smoke: server exited with {proc.returncode}\n{proc.stderr}"
        )
    return [l for l in proc.stdout.splitlines() if l.strip()]


def run_socket(aflc, reqs):
    """One socket server run; returns its raw response lines.

    Requests go out CRLF-terminated on purpose: the transport must strip
    the '\r' before the JSON layer sees it.
    """
    proc = subprocess.Popen(
        [aflc, "--serve", "--listen", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        bind = proc.stderr.readline().strip()
        marker = "serving on 127.0.0.1:"
        if marker not in bind:
            proc.kill()
            sys.exit(f"serve_smoke: unexpected bind line: {bind!r}")
        port = int(bind.split(marker, 1)[1])

        responses = []
        with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
            s.settimeout(120)
            rfile = s.makefile("r", encoding="utf-8", newline="\n")
            for req in reqs:
                s.sendall((req + "\r\n").encode("utf-8"))
                line = rfile.readline()
                if not line:
                    sys.exit(
                        f"serve_smoke: connection closed before a response "
                        f"to: {req}"
                    )
                responses.append(line.rstrip("\n"))
        # The transcript ends in a shutdown request, which must stop the
        # whole server, not just this connection.
        rc = proc.wait(timeout=30)
        if rc != 0:
            sys.exit(f"serve_smoke: server exited with {rc}")
        return responses
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main():
    args = sys.argv[1:]
    update = "--update" in args
    use_socket = "--socket" in args
    args = [a for a in args if a not in ("--update", "--socket")]
    if len(args) != 1:
        sys.exit(f"usage: {sys.argv[0]} path/to/aflc [--socket] [--update]")
    aflc = args[0]

    reqs = requests()
    responses = run_socket(aflc, reqs) if use_socket else run_stdio(aflc, reqs)
    if len(responses) != len(reqs):
        sys.exit(
            f"serve_smoke: sent {len(reqs)} requests, "
            f"got {len(responses)} responses"
        )
    got = [canonicalize(r) for r in responses]

    if update:
        GOLDEN.write_text("\n".join(got) + "\n")
        print(f"serve_smoke: wrote {len(got)} responses to {GOLDEN}")
        return

    want = [l for l in GOLDEN.read_text().splitlines() if l.strip()]
    if len(want) != len(got):
        sys.exit(
            f"serve_smoke: golden has {len(want)} responses, "
            f"server produced {len(got)}"
        )
    failures = 0
    for i, (w, g) in enumerate(zip(want, got)):
        if w != g:
            failures += 1
            print(f"serve_smoke: response {i} differs", file=sys.stderr)
            print(f"  request: {reqs[i]}", file=sys.stderr)
            print(f"  want:    {w}", file=sys.stderr)
            print(f"  got:     {g}", file=sys.stderr)
    if failures:
        sys.exit(f"serve_smoke: {failures} response(s) differ from golden")
    mode = "socket" if use_socket else "stdio"
    print(f"serve_smoke: {len(got)} responses match golden ({mode})")


if __name__ == "__main__":
    main()
