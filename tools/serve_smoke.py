#!/usr/bin/env python3
"""CI smoke test for `aflc --serve` (docs/SERVER.md).

Plays the checked-in request transcript `serve_session.txt` against a
freshly spawned server and compares each response line to
`serve_session.golden`. Responses are canonicalized before comparison:
parsed as JSON, the per-request "timings" object dropped (wall-clock is
not reproducible), and re-serialized with sorted keys. Everything else —
tiers taken, context/shard counters, reports, solver domains, error
messages — must match byte-for-byte.

Usage:
    tools/serve_smoke.py path/to/aflc            # verify against golden
    tools/serve_smoke.py path/to/aflc --update   # regenerate the golden
"""

import json
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
TRANSCRIPT = HERE / "serve_session.txt"
GOLDEN = HERE / "serve_session.golden"


def requests():
    """Request lines from the transcript; '#' comments and blanks skipped."""
    lines = []
    for raw in TRANSCRIPT.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        lines.append(line)
    return lines


def canonicalize(line):
    """Sorted-keys JSON with the non-reproducible timings object removed."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"serve_smoke: server emitted non-JSON line: {line!r} ({e})")
    if isinstance(obj, dict):
        obj.pop("timings", None)
        # Arena-pool counters vary with $AFL_ARENA_POOL and retention
        # history, so they are not part of the reproducible transcript.
        metrics = obj.get("result", {}).get("metrics")
        if isinstance(metrics, dict):
            metrics.pop("memory", None)
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def main():
    args = sys.argv[1:]
    update = "--update" in args
    args = [a for a in args if a != "--update"]
    if len(args) != 1:
        sys.exit(f"usage: {sys.argv[0]} path/to/aflc [--update]")
    aflc = args[0]

    reqs = requests()
    proc = subprocess.run(
        [aflc, "--serve"],
        input="\n".join(reqs) + "\n",
        capture_output=True,
        text=True,
        timeout=120,
    )
    if proc.returncode != 0:
        sys.exit(
            f"serve_smoke: server exited with {proc.returncode}\n{proc.stderr}"
        )
    responses = [l for l in proc.stdout.splitlines() if l.strip()]
    if len(responses) != len(reqs):
        sys.exit(
            f"serve_smoke: sent {len(reqs)} requests, "
            f"got {len(responses)} responses"
        )
    got = [canonicalize(r) for r in responses]

    if update:
        GOLDEN.write_text("\n".join(got) + "\n")
        print(f"serve_smoke: wrote {len(got)} responses to {GOLDEN}")
        return

    want = [l for l in GOLDEN.read_text().splitlines() if l.strip()]
    if len(want) != len(got):
        sys.exit(
            f"serve_smoke: golden has {len(want)} responses, "
            f"server produced {len(got)}"
        )
    failures = 0
    for i, (w, g) in enumerate(zip(want, got)):
        if w != g:
            failures += 1
            print(f"serve_smoke: response {i} differs", file=sys.stderr)
            print(f"  request: {reqs[i]}", file=sys.stderr)
            print(f"  want:    {w}", file=sys.stderr)
            print(f"  got:     {g}", file=sys.stderr)
    if failures:
        sys.exit(f"serve_smoke: {failures} response(s) differ from golden")
    print(f"serve_smoke: {len(got)} responses match golden")


if __name__ == "__main__":
    main()
