//===----------------------------------------------------------------------===//
///
/// \file
/// afl_repl — interactive exploration of the analyses, the spiritual
/// successor of the paper's §6 remote-experimentation web page
/// ("http://kiwi.cs.berkeley.edu/~nogc").
///
/// Enter a program (finish with an empty line) to see its result and the
/// T-T vs A-F-L memory comparison. Commands:
///   :afl      also print the A-F-L-completed program
///   :tt       also print the conservative completion
///   :report   also print the completion report
///   :quiet    print only the result and the metric table (default)
///   :quit     exit
///
//===----------------------------------------------------------------------===//

#include "completion/Report.h"
#include "driver/Pipeline.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace afl;

int main() {
  bool ShowAfl = false, ShowTT = false, ShowReport = false;
  std::printf("aflregion repl — enter a program, finish with an empty "
              "line; :quit to exit\n");

  std::string Buffer;
  std::string Line;
  for (;;) {
    std::printf(Buffer.empty() ? "afl> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;

    if (Buffer.empty() && !Line.empty() && Line[0] == ':') {
      if (Line == ":quit" || Line == ":q")
        break;
      if (Line == ":afl")
        ShowAfl = !ShowAfl;
      else if (Line == ":tt")
        ShowTT = !ShowTT;
      else if (Line == ":report")
        ShowReport = !ShowReport;
      else if (Line == ":quiet")
        ShowAfl = ShowTT = ShowReport = false;
      else
        std::printf("unknown command %s\n", Line.c_str());
      continue;
    }

    if (!Line.empty()) {
      Buffer += Line;
      Buffer += '\n';
      continue;
    }
    if (Buffer.empty())
      continue;

    std::string Source = std::move(Buffer);
    Buffer.clear();
    driver::PipelineResult R = driver::runPipeline(Source);
    if (!R.ok()) {
      std::printf("%s", R.Diags.str().c_str());
      continue;
    }

    if (ShowTT)
      std::printf("--- Tofte/Talpin ---\n%s\n",
                  R.printConservative().c_str());
    if (ShowAfl)
      std::printf("--- A-F-L ---\n%s\n", R.printAfl().c_str());
    if (ShowReport)
      std::printf("%s\n",
                  completion::reportCompletion(*R.Prog, R.AflC)
                      .str()
                      .c_str());

    std::printf("result: %s\n", R.Afl.ResultText.c_str());
    std::printf("%-24s %10s %10s\n", "", "T-T", "A-F-L");
    std::printf("%-24s %10llu %10llu\n", "max values held",
                (unsigned long long)R.Conservative.S.MaxValues,
                (unsigned long long)R.Afl.S.MaxValues);
    std::printf("%-24s %10llu %10llu\n", "max regions",
                (unsigned long long)R.Conservative.S.MaxRegions,
                (unsigned long long)R.Afl.S.MaxRegions);
    std::printf("%-24s %10llu %10llu\n", "values in final memory",
                (unsigned long long)R.Conservative.S.FinalValues,
                (unsigned long long)R.Afl.S.FinalValues);
  }
  std::printf("\n");
  return 0;
}
