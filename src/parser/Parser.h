//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the ML-like surface language.
///
/// Grammar (highest section binds loosest):
/// \code
///   expr     := 'fn' binder '=>' expr
///             | 'let' binder '=' expr 'in' expr 'end'
///             | 'letrec' id binder '=' expr 'in' expr 'end'
///             | 'if' expr 'then' expr 'else' expr
///             | cmpExpr
///   binder   := id | '(' binder ',' binder ')'   -- pattern sugar
///   cmpExpr  := consExpr (('<' | '<=' | '=') consExpr)?
///   consExpr := addExpr ('::' consExpr)?                  -- right assoc
///   addExpr  := mulExpr (('+' | '-') mulExpr)*
///   mulExpr  := unExpr (('*' | 'div' | 'mod') unExpr)*
///   unExpr   := ('fst'|'snd'|'null'|'hd'|'tl') unExpr | appExpr
///   appExpr  := atom atom*                                -- left assoc
///   atom     := int | '-' int | 'true' | 'false' | 'nil' | id
///             | '(' ')' | '(' expr ')' | '(' expr ',' expr ')'
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef AFL_PARSER_PARSER_H
#define AFL_PARSER_PARSER_H

#include "ast/ASTContext.h"
#include "lexer/Lexer.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace afl {

/// Parses \p Source into an expression owned by \p Ctx. Returns nullptr and
/// reports to \p Diags on a syntax error.
const ast::Expr *parseExpr(std::string_view Source, ast::ASTContext &Ctx,
                           DiagnosticEngine &Diags);

/// Like parseExpr, but asserts success; for tests and builtin programs that
/// are known to be well-formed.
const ast::Expr *parseExprOrDie(std::string_view Source, ast::ASTContext &Ctx);

} // namespace afl

#endif // AFL_PARSER_PARSER_H
