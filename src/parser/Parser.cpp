#include "parser/Parser.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace afl;
using namespace afl::ast;

namespace {

class Parser {
public:
  Parser(const std::vector<Token> &Tokens, ASTContext &Ctx,
         DiagnosticEngine &Diags)
      : Tokens(Tokens), Ctx(Ctx), Diags(Diags) {}

  /// Parses a full expression and requires EOF afterwards.
  const Expr *parseProgram() {
    const Expr *E = parseExpr();
    if (!E)
      return nullptr;
    if (!cur().is(TokenKind::Eof)) {
      error("expected end of input, found " + std::string(curName()));
      return nullptr;
    }
    return E;
  }

private:
  const Token &cur() const { return Tokens[Pos]; }
  const char *curName() const { return tokenKindName(cur().Kind); }
  SourceLoc loc() const { return cur().Loc; }

  const Token &take() {
    const Token &Tok = Tokens[Pos];
    if (!Tok.is(TokenKind::Eof))
      ++Pos;
    return Tok;
  }

  bool accept(TokenKind Kind) {
    if (!cur().is(Kind))
      return false;
    take();
    return true;
  }

  bool expect(TokenKind Kind) {
    if (accept(Kind))
      return true;
    error(std::string("expected ") + tokenKindName(Kind) + ", found " +
          curName());
    return false;
  }

  void error(std::string Message) { Diags.error(loc(), std::move(Message)); }

  /// Hard bound on recursive-descent depth. One source nesting level
  /// costs several parser frames (parseExpr -> ... -> parseAtom ->
  /// parseExpr), so deeply nested machine-generated inputs otherwise
  /// overflow the native stack; past the bound the parser reports a
  /// diagnostic instead of crashing. 2000 levels keeps the worst-case
  /// frame chain comfortably inside an 8 MiB stack, sanitizer builds
  /// included. The bound also shields every AST-consuming recursive
  /// pass downstream (type/region inference, closure analysis,
  /// completion printing, the interpreter): their frames are smaller
  /// than the parser's worst-case chain, and the full pipeline runs a
  /// depth-1990 program end to end within the same 8 MiB budget.
  static constexpr unsigned MaxDepth = 2000;

  /// RAII depth accounting for the recursive productions. On overflow
  /// the constructor reports once (the failure then unwinds through the
  /// callers' null checks, which do not re-enter).
  struct DepthGuard {
    Parser &P;
    bool Ok;
    explicit DepthGuard(Parser &P) : P(P), Ok(++P.Depth <= MaxDepth) {
      if (!Ok)
        P.error("expression nesting too deep");
    }
    ~DepthGuard() { --P.Depth; }
  };

  /// Parses an identifier token into a symbol; returns invalid on error.
  Symbol parseIdent() {
    if (!cur().is(TokenKind::Ident)) {
      error(std::string("expected identifier, found ") + curName());
      return Symbol();
    }
    return Ctx.intern(take().Text);
  }

  /// A binder: either a plain identifier or a pair pattern "(x, y)"
  /// (possibly nested). Patterns are desugared: the binder becomes a
  /// fresh variable and \c wrap adds fst/snd projections around a body.
  struct Binder {
    Symbol Var;
    /// Wraps \p Body with the pattern's projection lets (identity for a
    /// plain identifier binder).
    std::function<const Expr *(const Expr *)> Wrap;
    bool Valid = false;
  };

  Binder parseBinder() {
    Binder Out;
    DepthGuard Guard(*this);
    if (!Guard.Ok)
      return Out;
    if (cur().is(TokenKind::Ident)) {
      Out.Var = Ctx.intern(take().Text);
      Out.Wrap = [](const Expr *Body) { return Body; };
      Out.Valid = true;
      return Out;
    }
    if (!cur().is(TokenKind::LParen)) {
      error(std::string("expected identifier or pair pattern, found ") +
            curName());
      return Out;
    }
    SourceLoc Loc = take().Loc;
    Binder First = parseBinder();
    if (!First.Valid || !expect(TokenKind::Comma))
      return Out;
    Binder Second = parseBinder();
    if (!Second.Valid || !expect(TokenKind::RParen))
      return Out;
    Symbol Fresh = Ctx.intern("$p" + std::to_string(FreshCounter++));
    Out.Var = Fresh;
    Out.Wrap = [this, Loc, Fresh, First, Second](const Expr *Body) {
      // let <second> = snd $p in ... innermost; build inside-out.
      const Expr *Inner = Second.Wrap(First.Wrap(Body));
      Inner = Ctx.let(Second.Var,
                      Ctx.unOp(ast::UnOpKind::Snd, Ctx.var(Fresh, Loc), Loc),
                      Inner, Loc);
      return Ctx.let(First.Var,
                     Ctx.unOp(ast::UnOpKind::Fst, Ctx.var(Fresh, Loc), Loc),
                     Inner, Loc);
    };
    Out.Valid = true;
    return Out;
  }

  const Expr *parseExpr() {
    DepthGuard Guard(*this);
    if (!Guard.Ok)
      return nullptr;
    switch (cur().Kind) {
    case TokenKind::KwFn: {
      SourceLoc Loc = take().Loc;
      Binder Param = parseBinder();
      if (!Param.Valid || !expect(TokenKind::DArrow))
        return nullptr;
      const Expr *Body = parseExpr();
      if (!Body)
        return nullptr;
      return Ctx.lambda(Param.Var, Param.Wrap(Body), Loc);
    }
    case TokenKind::KwLet: {
      SourceLoc Loc = take().Loc;
      Binder Name = parseBinder();
      if (!Name.Valid || !expect(TokenKind::Equal))
        return nullptr;
      const Expr *Init = parseExpr();
      if (!Init || !expect(TokenKind::KwIn))
        return nullptr;
      const Expr *Body = parseExpr();
      if (!Body || !expect(TokenKind::KwEnd))
        return nullptr;
      return Ctx.let(Name.Var, Init, Name.Wrap(Body), Loc);
    }
    case TokenKind::KwLetrec: {
      SourceLoc Loc = take().Loc;
      Symbol FnName = parseIdent();
      if (!FnName.isValid())
        return nullptr;
      Binder Param = parseBinder();
      if (!Param.Valid || !expect(TokenKind::Equal))
        return nullptr;
      const Expr *FnBody = parseExpr();
      if (!FnBody || !expect(TokenKind::KwIn))
        return nullptr;
      const Expr *Body = parseExpr();
      if (!Body || !expect(TokenKind::KwEnd))
        return nullptr;
      return Ctx.letrec(FnName, Param.Var, Param.Wrap(FnBody), Body, Loc);
    }
    case TokenKind::KwIf: {
      SourceLoc Loc = take().Loc;
      const Expr *Cond = parseExpr();
      if (!Cond || !expect(TokenKind::KwThen))
        return nullptr;
      const Expr *Then = parseExpr();
      if (!Then || !expect(TokenKind::KwElse))
        return nullptr;
      const Expr *Else = parseExpr();
      if (!Else)
        return nullptr;
      return Ctx.ifExpr(Cond, Then, Else, Loc);
    }
    default:
      return parseCmp();
    }
  }

  const Expr *parseCmp() {
    const Expr *Lhs = parseCons();
    if (!Lhs)
      return nullptr;
    BinOpKind Op;
    switch (cur().Kind) {
    case TokenKind::Less:
      Op = BinOpKind::Lt;
      break;
    case TokenKind::LessEq:
      Op = BinOpKind::Le;
      break;
    case TokenKind::Equal:
      Op = BinOpKind::Eq;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = take().Loc;
    const Expr *Rhs = parseCons();
    if (!Rhs)
      return nullptr;
    return Ctx.binOp(Op, Lhs, Rhs, Loc);
  }

  const Expr *parseCons() {
    DepthGuard Guard(*this);
    if (!Guard.Ok)
      return nullptr;
    const Expr *Head = parseAdd();
    if (!Head)
      return nullptr;
    if (!cur().is(TokenKind::ColCol))
      return Head;
    SourceLoc Loc = take().Loc;
    const Expr *Tail = parseCons(); // right associative
    if (!Tail)
      return nullptr;
    return Ctx.cons(Head, Tail, Loc);
  }

  const Expr *parseAdd() {
    const Expr *Lhs = parseMul();
    if (!Lhs)
      return nullptr;
    for (;;) {
      BinOpKind Op;
      if (cur().is(TokenKind::Plus))
        Op = BinOpKind::Add;
      else if (cur().is(TokenKind::Minus))
        Op = BinOpKind::Sub;
      else
        return Lhs;
      SourceLoc Loc = take().Loc;
      const Expr *Rhs = parseMul();
      if (!Rhs)
        return nullptr;
      Lhs = Ctx.binOp(Op, Lhs, Rhs, Loc);
    }
  }

  const Expr *parseMul() {
    const Expr *Lhs = parseUn();
    if (!Lhs)
      return nullptr;
    for (;;) {
      BinOpKind Op;
      if (cur().is(TokenKind::Star))
        Op = BinOpKind::Mul;
      else if (cur().is(TokenKind::KwDiv))
        Op = BinOpKind::Div;
      else if (cur().is(TokenKind::KwMod))
        Op = BinOpKind::Mod;
      else
        return Lhs;
      SourceLoc Loc = take().Loc;
      const Expr *Rhs = parseUn();
      if (!Rhs)
        return nullptr;
      Lhs = Ctx.binOp(Op, Lhs, Rhs, Loc);
    }
  }

  const Expr *parseUn() {
    DepthGuard Guard(*this);
    if (!Guard.Ok)
      return nullptr;
    UnOpKind Op;
    switch (cur().Kind) {
    case TokenKind::KwFst:
      Op = UnOpKind::Fst;
      break;
    case TokenKind::KwSnd:
      Op = UnOpKind::Snd;
      break;
    case TokenKind::KwNull:
      Op = UnOpKind::Null;
      break;
    case TokenKind::KwHd:
      Op = UnOpKind::Hd;
      break;
    case TokenKind::KwTl:
      Op = UnOpKind::Tl;
      break;
    default:
      return parseApp();
    }
    SourceLoc Loc = take().Loc;
    const Expr *Operand = parseUn();
    if (!Operand)
      return nullptr;
    return Ctx.unOp(Op, Operand, Loc);
  }

  /// True if the current token can begin an application-continuation atom.
  /// Unary minus is deliberately excluded so "f - 1" stays a subtraction.
  bool atAtomStart() const {
    switch (cur().Kind) {
    case TokenKind::IntLit:
    case TokenKind::Ident:
    case TokenKind::KwTrue:
    case TokenKind::KwFalse:
    case TokenKind::KwNil:
    case TokenKind::LParen:
      return true;
    default:
      return false;
    }
  }

  const Expr *parseApp() {
    const Expr *Fn = parseAtom();
    if (!Fn)
      return nullptr;
    while (atAtomStart()) {
      SourceLoc Loc = loc();
      const Expr *Arg = parseAtom();
      if (!Arg)
        return nullptr;
      Fn = Ctx.app(Fn, Arg, Loc);
    }
    return Fn;
  }

  const Expr *parseAtom() {
    switch (cur().Kind) {
    case TokenKind::IntLit: {
      const Token &Tok = take();
      return Ctx.intLit(Tok.IntValue, Tok.Loc);
    }
    case TokenKind::Minus: {
      // Negative integer literal; only valid immediately before a number.
      SourceLoc Loc = take().Loc;
      if (!cur().is(TokenKind::IntLit)) {
        error("expected integer literal after unary '-'");
        return nullptr;
      }
      const Token &Tok = take();
      return Ctx.intLit(-Tok.IntValue, Loc);
    }
    case TokenKind::KwTrue:
      return Ctx.boolLit(true, take().Loc);
    case TokenKind::KwFalse:
      return Ctx.boolLit(false, take().Loc);
    case TokenKind::KwNil:
      return Ctx.nil(take().Loc);
    case TokenKind::Ident: {
      const Token &Tok = take();
      return Ctx.var(Ctx.intern(Tok.Text), Tok.Loc);
    }
    case TokenKind::LParen: {
      SourceLoc Loc = take().Loc;
      if (accept(TokenKind::RParen))
        return Ctx.unitLit(Loc);
      const Expr *First = parseExpr();
      if (!First)
        return nullptr;
      if (accept(TokenKind::Comma)) {
        const Expr *Second = parseExpr();
        if (!Second || !expect(TokenKind::RParen))
          return nullptr;
        return Ctx.pair(First, Second, Loc);
      }
      if (!expect(TokenKind::RParen))
        return nullptr;
      return First;
    }
    default:
      error(std::string("expected expression, found ") + curName());
      return nullptr;
    }
  }

  const std::vector<Token> &Tokens;
  ASTContext &Ctx;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned FreshCounter = 0;
  /// Current recursive-descent depth (see DepthGuard).
  unsigned Depth = 0;
};

} // namespace

const Expr *afl::parseExpr(std::string_view Source, ASTContext &Ctx,
                           DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  Parser P(Lex.tokens(), Ctx, Diags);
  return P.parseProgram();
}

const Expr *afl::parseExprOrDie(std::string_view Source, ASTContext &Ctx) {
  DiagnosticEngine Diags;
  const Expr *E = parseExpr(Source, Ctx, Diags);
  if (!E) {
    std::fprintf(stderr, "parseExprOrDie failed:\n%s\n", Diags.str().c_str());
    std::abort();
  }
  return E;
}
