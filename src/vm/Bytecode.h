//===----------------------------------------------------------------------===//
///
/// \file
/// The region bytecode: a compact, flat encoding of a completed region
/// program (regions::RegionProgram + regions::Completion [+ storage
/// modes]) that vm::execute runs without host recursion.
///
/// Layout. One contiguous `uint32_t` code array holds every function's
/// body back to back; `FuncInfo::Entry` indexes into it. Each instruction
/// is an opcode word followed by a fixed number of operand words
/// (`RegApp` alone is variable-length — its actual count is an operand).
/// 64-bit integer literals live in a constant pool; runtime-trap messages
/// (for references the compiler could not resolve, mirroring the tree
/// walker's lazy unbound-variable errors) live in a string pool.
///
/// References. Value bindings and region bindings are resolved at compile
/// time to either *frame slots* (locals of the current activation:
/// parameters, `let` binders, `letregion` regions) or *capture indices*
/// (positions in the closure's capture record, built at closure-creation
/// time from `FuncInfo::ValCaps` / `RegCaps` descriptors — the classic
/// flat-closure conversion). A reference operand packs:
///
///   bit 31  RefCapture — capture index, else frame slot
///   bit 30  RefAtBot   — write destinations only: the node's storage
///                        mode is `atbot`, so the write resets the region
///   bit 29  RefPoison  — the binding could not be resolved at compile
///                        time (an analysis bug the tree walker reports
///                        lazily); the low bits index TrapMsgs and the
///                        instruction fails exactly where the walker's
///                        environment lookup would have
///   bits 0-28           the slot / index / trap-message index
///
/// Region records of a region-polymorphic function are laid out
/// `[formals..., captures...]`: the `RegClos` value stores only the
/// capture part (built at `letrec`), and each region application
/// prepends the resolved actuals (Op::RegApp).
///
/// Exactness. The bytecode preserves the Fig. 2 tree walker's observable
/// behavior bit for bit: every node compiles to an `Enter` carrying its
/// static depth within the enclosing function, so the step counter and
/// the recursion-depth guard fire at exactly the same evaluation points,
/// and all store instructions replicate the walker's instrumentation
/// order (docs/VM.md).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_VM_BYTECODE_H
#define AFL_VM_BYTECODE_H

#include <cstdint>
#include <string>
#include <vector>

namespace afl {
namespace vm {

/// Reference-operand encoding (see file comment).
constexpr uint32_t RefCapture = 0x80000000u;
constexpr uint32_t RefAtBot = 0x40000000u;
constexpr uint32_t RefPoison = 0x20000000u;
constexpr uint32_t RefIndexMask = 0x1fffffffu;

enum class Op : uint32_t {
  /// [staticDepth] — node entry: counts one evaluation step (trapping on
  /// RunOptions::MaxSteps) and checks frame.D0 + staticDepth against
  /// RunOptions::MaxDepth. Compiled at the head of every IR node.
  Enter,
  /// [regSlot] — create a fresh unallocated region, store its id in the
  /// frame region slot (letregion entry; uncounted, like the walker).
  NewRegion,
  /// [regRef] — completion op: U → A transition (counts + ticks).
  AllocReg,
  /// [regRef] — completion op: A → D transition, O(1) arena release.
  FreeReg,
  /// [regSlot][regionVar] — letregion exit: trap if still allocated
  /// ("region r<regionVar> still allocated at letregion exit").
  CheckEnd,
  /// [poolIdx][dstRef] — write the boxed int IntPool[poolIdx]; push addr.
  WriteInt,
  /// [tag][dstRef] — write a boxed false/true/unit/nil; push its addr.
  WriteTag,
  /// [slot] — push the address bound to a frame local.
  LoadLocal,
  /// [idx] — push the address at capture-record index idx.
  LoadCap,
  /// [slot] — pop an address into a frame local (let binding).
  StoreLocal,
  /// [funcIdx][dstRef] — build Funcs[funcIdx]'s capture records in the
  /// current frame, write an ordinary closure; push its address.
  MakeClos,
  /// [funcIdx][dstRef] — same for a region-polymorphic closure: the
  /// region record holds captures only; Self capture entries are patched
  /// with the written address (letrec knot).
  MakeRegClos,
  /// [] — application, step 1: read the closure at stack[-2] (the
  /// evaluated function), trap unless it is an ordinary closure, and
  /// latch it; free_app completion ops follow before Call.
  ReadClos,
  /// [depthDelta] — application, step 2: pop argument + closure address,
  /// push an activation of the latched closure (callee D0 = caller D0 +
  /// depthDelta, i.e. the body evaluates one level below the App node).
  Call,
  /// [] — return: pop the activation; the result address stays on the
  /// operand stack.
  Ret,
  /// [srcRef] — region application f[ρ⃗]@ρ, step 1: read the RegClos
  /// bound at srcRef, trap unless it is a region closure, latch it.
  ReadRegClos,
  /// [dstRef][n][actual0..n-1] — region application, step 2: compose the
  /// latched closure's region record with the n resolved actuals
  /// ([actuals..., base captures...]), write the instantiated ordinary
  /// closure; push its address.
  RegAppWrite,
  /// [elseTarget] — pop + read the condition, trap unless boolean, jump
  /// when false.
  Branch,
  /// [target] — unconditional jump (end of a then-branch).
  Jump,
  /// [dstRef] — pop two component addresses, write a pair cell.
  WritePair,
  /// [dstRef] — pop head + tail addresses, write a cons cell.
  WriteCons,
  /// [which] — pop + read a value, push its component: 0 fst, 1 snd,
  /// 2 hd, 3 tl (kind-checked with the walker's exact messages).
  Proj,
  /// [dstRef] — pop + read a list value, write its null? boolean.
  NullTest,
  /// [op][dstRef] — pop two operands, read lhs then rhs, compute
  /// (ast::BinOpKind order), write the boxed result.
  BinOp,
  /// [msgIdx] — fail with TrapMsgs[msgIdx] (compile-time-unresolvable
  /// reference reached at runtime; mirrors the walker's lazy errors).
  Trap,
  /// [] — end of the root body: the program result is on the stack.
  Halt,
};

/// WriteTag operands.
enum : uint32_t { TagFalse = 0, TagTrue = 1, TagUnit = 2, TagNil = 3 };

/// Where a capture-record entry is read from when the closure is created
/// (always evaluated in the *creating* activation).
struct CaptureSource {
  enum Kind : uint8_t {
    Local,   ///< creating frame's local slot (value) / region slot
    Capture, ///< creating frame's own capture record
    Self,    ///< the address of the RegClos being created (letrec knot)
  };
  Kind K = Local;
  uint32_t Idx = 0;
};

/// One compiled function: the root program, a lambda body, or a letrec
/// function body.
struct FuncInfo {
  /// Code offset of the body's first instruction.
  uint32_t Entry = 0;
  /// Frame sizes: value slots (parameter + let binders) and region slots
  /// (letregion binders; for the root, the global regions come first).
  uint32_t NumValSlots = 0;
  uint32_t NumRegSlots = 0;
  /// Region formals of a letrec function (0 otherwise). The runtime
  /// region record is [formals..., captures...].
  uint32_t NumFormals = 0;
  /// Capture descriptors, evaluated at closure creation.
  std::vector<CaptureSource> ValCaps;
  std::vector<CaptureSource> RegCaps;
};

/// A compiled program: everything vm::execute needs.
struct VmProgram {
  std::vector<uint32_t> Code;
  std::vector<int64_t> IntPool;
  std::vector<std::string> TrapMsgs;
  std::vector<FuncInfo> Funcs;
  /// Index of the root function (its frame is created at startup; its
  /// first NumGlobalRegions region slots are the program's global
  /// regions, created before the root node evaluates).
  uint32_t RootFunc = 0;
  uint32_t NumGlobalRegions = 0;

  size_t codeWords() const { return Code.size(); }
};

} // namespace vm
} // namespace afl

#endif // AFL_VM_BYTECODE_H
