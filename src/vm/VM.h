//===----------------------------------------------------------------------===//
///
/// \file
/// The region bytecode VM: executes a vm::VmProgram with an explicit
/// value/call stack (no host recursion — RunOptions::MaxDepth bounds VM
/// frames, not C++ stack) and a real region allocator: one bump-pointer
/// cell arena per runtime region, a flat region table carrying the
/// U→A→D state tags, and O(1) region free that returns whole arenas to a
/// size-classed buffer pool.
///
/// Instrumentation (the five Table 2 counters, Time, traces, lifetimes,
/// storage-mode resets, ResultText and every RunResult::Error string) is
/// bit-identical to the interp tree walker; tests/VmDifferentialTest.cpp
/// enforces this over the corpus + 500 random programs.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_VM_VM_H
#define AFL_VM_VM_H

#include "interp/Interp.h"
#include "vm/Bytecode.h"

namespace afl {
namespace vm {

/// Executes \p P. Honors MaxSteps / MaxDepth / RecordTrace /
/// RecordLifetimes from \p Options; storage modes are already baked into
/// the bytecode, so Options.Modes is ignored here.
interp::RunResult execute(const VmProgram &P,
                          const interp::RunOptions &Options);

} // namespace vm
} // namespace afl

#endif // AFL_VM_VM_H
