#include "vm/Compiler.h"

#include <cassert>
#include <optional>
#include <unordered_map>

using namespace afl;
using namespace afl::vm;
using namespace afl::regions;

namespace {

/// Per-function compilation state. Contexts form the lexical chain of
/// enclosing functions; capture descriptors are created on demand when a
/// reference resolves through a parent context (flat-closure conversion,
/// one record entry per distinct free binding).
struct FuncCtx {
  FuncCtx *Parent = nullptr;
  /// Set for a letrec function body: references to the letrec's own
  /// function variable become a Self capture (the walker patches the
  /// closure environment with the closure's own address after writing
  /// it; Self reproduces that knot).
  const RLetrecExpr *SelfLetrec = nullptr;

  /// Value bindings local to this function (parameter, let binders,
  /// letrec function names) → frame slot.
  std::unordered_map<VarId, uint32_t> Locals;
  /// Value bindings already captured → descriptor index.
  std::unordered_map<VarId, uint32_t> ValCapIdx;
  /// Region bindings in scope → reference word (frame slot, or
  /// RefCapture | record index). Letregion entries are saved/restored
  /// around each node so shadowing mirrors the walker's chain.
  std::unordered_map<RegionVarId, uint32_t> RegMap;

  FuncInfo Info;
  std::vector<uint32_t> Code;
  /// Operand positions within Code holding function-local jump targets;
  /// adjusted to absolute offsets when functions are concatenated.
  std::vector<uint32_t> JumpFixups;
};

/// Finished per-function artifacts, indexed by function id until linking.
struct PendingFunc {
  FuncInfo Info;
  std::vector<uint32_t> Code;
  std::vector<uint32_t> JumpFixups;
};

class Compiler {
public:
  Compiler(const RegionProgram &Prog, const Completion &C,
           const completion::StorageModes *Modes)
      : Prog(Prog), C(C), Modes(Modes) {}

  VmProgram compile();

private:
  //===------------------------------------------------------------------===//
  // Pools
  //===------------------------------------------------------------------===//

  uint32_t intConst(int64_t V) {
    auto [It, New] = IntIdx.try_emplace(V, P.IntPool.size());
    if (New)
      P.IntPool.push_back(V);
    return It->second;
  }

  uint32_t trapMsg(const std::string &Msg) {
    auto [It, New] = MsgIdx.try_emplace(Msg, P.TrapMsgs.size());
    if (New)
      P.TrapMsgs.push_back(Msg);
    return It->second;
  }

  uint32_t poison(const std::string &Msg) { return RefPoison | trapMsg(Msg); }

  //===------------------------------------------------------------------===//
  // Reference resolution (flat-closure conversion)
  //===------------------------------------------------------------------===//

  static CaptureSource sourceFromRef(uint32_t Ref) {
    if (Ref & RefCapture)
      return {CaptureSource::Capture, Ref & RefIndexMask};
    return {CaptureSource::Local, Ref & RefIndexMask};
  }

  /// Resolves value variable \p V in \p Ctx to a reference word valid in
  /// that function (frame slot / capture index / poison).
  uint32_t resolveVal(FuncCtx &Ctx, VarId V) {
    if (auto It = Ctx.Locals.find(V); It != Ctx.Locals.end())
      return It->second;
    if (auto It = Ctx.ValCapIdx.find(V); It != Ctx.ValCapIdx.end())
      return RefCapture | It->second;
    if (Ctx.SelfLetrec && V == Ctx.SelfLetrec->fn()) {
      uint32_t Idx = static_cast<uint32_t>(Ctx.Info.ValCaps.size());
      Ctx.Info.ValCaps.push_back({CaptureSource::Self, 0});
      Ctx.ValCapIdx.emplace(V, Idx);
      return RefCapture | Idx;
    }
    if (!Ctx.Parent)
      return poison("unbound variable '" + Prog.varInfo(V).Name +
                    "' at runtime (interpreter bug)");
    uint32_t PRef = resolveVal(*Ctx.Parent, V);
    if (PRef & RefPoison)
      return PRef;
    uint32_t Idx = static_cast<uint32_t>(Ctx.Info.ValCaps.size());
    Ctx.Info.ValCaps.push_back(sourceFromRef(PRef));
    Ctx.ValCapIdx.emplace(V, Idx);
    return RefCapture | Idx;
  }

  /// Resolves region variable \p RV likewise. Capture indices address the
  /// function's *composed* region record, so new captures land after the
  /// formals: record index = NumFormals + descriptor position.
  uint32_t resolveReg(FuncCtx &Ctx, RegionVarId RV) {
    if (auto It = Ctx.RegMap.find(RV); It != Ctx.RegMap.end())
      return It->second;
    if (!Ctx.Parent)
      return poison("unbound region variable r" + std::to_string(RV) +
                    " at runtime (analysis bug)");
    uint32_t PRef = resolveReg(*Ctx.Parent, RV);
    if (PRef & RefPoison)
      return PRef;
    uint32_t RecIdx =
        Ctx.Info.NumFormals + static_cast<uint32_t>(Ctx.Info.RegCaps.size());
    Ctx.Info.RegCaps.push_back(sourceFromRef(PRef));
    uint32_t Ref = RefCapture | RecIdx;
    Ctx.RegMap.emplace(RV, Ref);
    return Ref;
  }

  /// The destination reference for \p N's own write (@ρ annotation),
  /// including the atbot storage-mode bit.
  uint32_t writeRef(FuncCtx &Ctx, const RExpr *N) {
    assert(N->hasWriteRegion() && "node writes no value");
    uint32_t Ref = resolveReg(Ctx, N->writeRegion());
    if (Modes && Modes->isAtBot(N->id()))
      Ref |= RefAtBot;
    return Ref;
  }

  //===------------------------------------------------------------------===//
  // Emission
  //===------------------------------------------------------------------===//

  static void emit(FuncCtx &Ctx, Op O) {
    Ctx.Code.push_back(static_cast<uint32_t>(O));
  }
  static void emit(FuncCtx &Ctx, Op O, uint32_t A) {
    emit(Ctx, O);
    Ctx.Code.push_back(A);
  }
  static void emit(FuncCtx &Ctx, Op O, uint32_t A, uint32_t B) {
    emit(Ctx, O, A);
    Ctx.Code.push_back(B);
  }

  /// Emits a jump-family instruction with a placeholder target; returns
  /// the operand position for patchTarget.
  static uint32_t emitJump(FuncCtx &Ctx, Op O) {
    emit(Ctx, O);
    uint32_t Pos = static_cast<uint32_t>(Ctx.Code.size());
    Ctx.Code.push_back(0);
    Ctx.JumpFixups.push_back(Pos);
    return Pos;
  }
  static void patchTarget(FuncCtx &Ctx, uint32_t Pos) {
    Ctx.Code[Pos] = static_cast<uint32_t>(Ctx.Code.size());
  }

  void compileOps(FuncCtx &Ctx, const std::vector<COp> *Ops) {
    if (!Ops)
      return;
    for (const COp &O : *Ops) {
      bool Alloc =
          O.Kind == COpKind::AllocBefore || O.Kind == COpKind::AllocAfter;
      emit(Ctx, Alloc ? Op::AllocReg : Op::FreeReg, resolveReg(Ctx, O.Region));
    }
  }

  //===------------------------------------------------------------------===//
  // Functions
  //===------------------------------------------------------------------===//

  uint32_t newFunc() {
    uint32_t Idx = static_cast<uint32_t>(Pending.size());
    Pending.emplace_back();
    return Idx;
  }

  void finishFunc(uint32_t Idx, FuncCtx &Ctx) {
    Pending[Idx].Info = std::move(Ctx.Info);
    Pending[Idx].Code = std::move(Ctx.Code);
    Pending[Idx].JumpFixups = std::move(Ctx.JumpFixups);
  }

  /// Compiles a lambda/letrec function body into a fresh function; \p Rec
  /// is the letrec whose formals seed the region scope (null for
  /// lambdas).
  uint32_t compileFunction(FuncCtx &Parent, VarId Param, const RExpr *Body,
                           const RLetrecExpr *Rec) {
    uint32_t Idx = newFunc();
    FuncCtx Ctx;
    Ctx.Parent = &Parent;
    Ctx.SelfLetrec = Rec;
    Ctx.Info.NumValSlots = 1; // slot 0: the parameter
    Ctx.Locals.emplace(Param, 0);
    if (Rec) {
      const auto &Formals = Rec->formals();
      Ctx.Info.NumFormals = static_cast<uint32_t>(Formals.size());
      for (uint32_t K = 0; K != Formals.size(); ++K)
        Ctx.RegMap[Formals[K]] = RefCapture | K; // later duplicates win
    }
    compileNode(Ctx, Body, 0);
    emit(Ctx, Op::Ret);
    finishFunc(Idx, Ctx);
    return Idx;
  }

  void compileNode(FuncCtx &Ctx, const RExpr *N, uint32_t Depth);
  void compileCore(FuncCtx &Ctx, const RExpr *N, uint32_t Depth);

  VmProgram link();

  const RegionProgram &Prog;
  const Completion &C;
  const completion::StorageModes *Modes;
  VmProgram P;
  std::vector<PendingFunc> Pending;
  std::unordered_map<int64_t, uint32_t> IntIdx;
  std::unordered_map<std::string, uint32_t> MsgIdx;
};

void Compiler::compileNode(FuncCtx &Ctx, const RExpr *N, uint32_t Depth) {
  // Mirrors Machine::eval: step + depth guards, letregion entry, pre ops,
  // the node itself, post ops, letregion exit checks.
  emit(Ctx, Op::Enter, Depth);

  const std::vector<RegionVarId> &Bound = N->boundRegions();
  std::vector<std::pair<RegionVarId, std::optional<uint32_t>>> Saved;
  Saved.reserve(Bound.size());
  for (RegionVarId RV : Bound) {
    uint32_t Slot = Ctx.Info.NumRegSlots++;
    auto It = Ctx.RegMap.find(RV);
    Saved.emplace_back(RV, It == Ctx.RegMap.end()
                               ? std::nullopt
                               : std::optional<uint32_t>(It->second));
    Ctx.RegMap[RV] = Slot;
    emit(Ctx, Op::NewRegion, Slot);
  }

  compileOps(Ctx, C.preOps(N->id()));
  compileCore(Ctx, N, Depth);
  compileOps(Ctx, C.postOps(N->id()));

  // The exit check re-resolves each bound variable like the walker does,
  // so with duplicate bindings both checks hit the innermost region.
  for (RegionVarId RV : Bound)
    emit(Ctx, Op::CheckEnd, Ctx.RegMap[RV] & RefIndexMask, RV);

  for (auto It = Saved.rbegin(); It != Saved.rend(); ++It) {
    if (It->second)
      Ctx.RegMap[It->first] = *It->second;
    else
      Ctx.RegMap.erase(It->first);
  }
}

void Compiler::compileCore(FuncCtx &Ctx, const RExpr *N, uint32_t Depth) {
  switch (N->kind()) {
  case RExpr::Kind::Int:
    emit(Ctx, Op::WriteInt, intConst(cast<RIntExpr>(N)->value()),
         writeRef(Ctx, N));
    return;
  case RExpr::Kind::Bool:
    emit(Ctx, Op::WriteTag, cast<RBoolExpr>(N)->value() ? TagTrue : TagFalse,
         writeRef(Ctx, N));
    return;
  case RExpr::Kind::Unit:
    emit(Ctx, Op::WriteTag, TagUnit, writeRef(Ctx, N));
    return;
  case RExpr::Kind::Var: {
    uint32_t Ref = resolveVal(Ctx, cast<RVarExpr>(N)->var());
    if (Ref & RefPoison)
      emit(Ctx, Op::Trap, Ref & RefIndexMask);
    else if (Ref & RefCapture)
      emit(Ctx, Op::LoadCap, Ref & RefIndexMask);
    else
      emit(Ctx, Op::LoadLocal, Ref);
    return;
  }
  case RExpr::Kind::Lambda: {
    const auto *L = cast<RLambdaExpr>(N);
    uint32_t FIdx = compileFunction(Ctx, L->param(), L->body(), nullptr);
    emit(Ctx, Op::MakeClos, FIdx, writeRef(Ctx, N));
    return;
  }
  case RExpr::Kind::App: {
    const auto *A = cast<RAppExpr>(N);
    compileNode(Ctx, A->fn(), Depth + 1);
    compileNode(Ctx, A->arg(), Depth + 1);
    emit(Ctx, Op::ReadClos);
    compileOps(Ctx, C.freeAppOps(N->id()));
    // The body evaluates one level below the application node.
    emit(Ctx, Op::Call, Depth + 1);
    return;
  }
  case RExpr::Kind::Let: {
    const auto *L = cast<RLetExpr>(N);
    compileNode(Ctx, L->init(), Depth + 1);
    uint32_t Slot = Ctx.Info.NumValSlots++;
    Ctx.Locals.emplace(L->var(), Slot);
    emit(Ctx, Op::StoreLocal, Slot);
    compileNode(Ctx, L->body(), Depth + 1);
    return;
  }
  case RExpr::Kind::Letrec: {
    const auto *L = cast<RLetrecExpr>(N);
    uint32_t FIdx = compileFunction(Ctx, L->param(), L->fnBody(), L);
    emit(Ctx, Op::MakeRegClos, FIdx, writeRef(Ctx, N));
    uint32_t Slot = Ctx.Info.NumValSlots++;
    Ctx.Locals.emplace(L->fn(), Slot);
    emit(Ctx, Op::StoreLocal, Slot);
    compileNode(Ctx, L->body(), Depth + 1);
    return;
  }
  case RExpr::Kind::RegApp: {
    const auto *RA = cast<RRegAppExpr>(N);
    uint32_t Src = resolveVal(Ctx, RA->fn());
    if (Src & RefPoison) {
      emit(Ctx, Op::Trap, Src & RefIndexMask);
      return;
    }
    emit(Ctx, Op::ReadRegClos, Src);
    emit(Ctx, Op::RegAppWrite, writeRef(Ctx, N));
    Ctx.Code.push_back(static_cast<uint32_t>(RA->actuals().size()));
    for (RegionVarId RV : RA->actuals())
      Ctx.Code.push_back(resolveReg(Ctx, RV));
    return;
  }
  case RExpr::Kind::If: {
    const auto *I = cast<RIfExpr>(N);
    compileNode(Ctx, I->cond(), Depth + 1);
    uint32_t ElseT = emitJump(Ctx, Op::Branch);
    compileNode(Ctx, I->thenExpr(), Depth + 1);
    uint32_t EndT = emitJump(Ctx, Op::Jump);
    patchTarget(Ctx, ElseT);
    compileNode(Ctx, I->elseExpr(), Depth + 1);
    patchTarget(Ctx, EndT);
    return;
  }
  case RExpr::Kind::Pair: {
    const auto *Pr = cast<RPairExpr>(N);
    compileNode(Ctx, Pr->first(), Depth + 1);
    compileNode(Ctx, Pr->second(), Depth + 1);
    emit(Ctx, Op::WritePair, writeRef(Ctx, N));
    return;
  }
  case RExpr::Kind::Nil:
    emit(Ctx, Op::WriteTag, TagNil, writeRef(Ctx, N));
    return;
  case RExpr::Kind::Cons: {
    const auto *Cn = cast<RConsExpr>(N);
    compileNode(Ctx, Cn->head(), Depth + 1);
    compileNode(Ctx, Cn->tail(), Depth + 1);
    emit(Ctx, Op::WriteCons, writeRef(Ctx, N));
    return;
  }
  case RExpr::Kind::UnOp: {
    const auto *U = cast<RUnOpExpr>(N);
    compileNode(Ctx, U->operand(), Depth + 1);
    switch (U->op()) {
    case ast::UnOpKind::Fst:
      emit(Ctx, Op::Proj, 0);
      return;
    case ast::UnOpKind::Snd:
      emit(Ctx, Op::Proj, 1);
      return;
    case ast::UnOpKind::Hd:
      emit(Ctx, Op::Proj, 2);
      return;
    case ast::UnOpKind::Tl:
      emit(Ctx, Op::Proj, 3);
      return;
    case ast::UnOpKind::Null:
      emit(Ctx, Op::NullTest, writeRef(Ctx, N));
      return;
    }
    emit(Ctx, Op::Trap, trapMsg("unknown unary operator"));
    return;
  }
  case RExpr::Kind::BinOp: {
    const auto *B = cast<RBinOpExpr>(N);
    compileNode(Ctx, B->lhs(), Depth + 1);
    compileNode(Ctx, B->rhs(), Depth + 1);
    emit(Ctx, Op::BinOp, static_cast<uint32_t>(B->op()), writeRef(Ctx, N));
    return;
  }
  }
  emit(Ctx, Op::Trap, trapMsg("unknown expression kind"));
}

VmProgram Compiler::link() {
  uint32_t Base = 0;
  P.Funcs.reserve(Pending.size());
  for (PendingFunc &F : Pending) {
    F.Info.Entry = Base;
    for (uint32_t Pos : F.JumpFixups)
      F.Code[Pos] += Base;
    Base += static_cast<uint32_t>(F.Code.size());
  }
  P.Code.reserve(Base);
  for (PendingFunc &F : Pending) {
    P.Code.insert(P.Code.end(), F.Code.begin(), F.Code.end());
    P.Funcs.push_back(std::move(F.Info));
  }
  return std::move(P);
}

VmProgram Compiler::compile() {
  uint32_t RootIdx = newFunc();
  FuncCtx Root;
  // The global (result) regions are created before the root expression
  // evaluates, exactly like Machine::run's preamble.
  P.NumGlobalRegions = static_cast<uint32_t>(Prog.GlobalRegions.size());
  for (RegionVarId RV : Prog.GlobalRegions) {
    uint32_t Slot = Root.Info.NumRegSlots++;
    Root.RegMap[RV] = Slot; // later duplicates shadow, like the chain
    emit(Root, Op::NewRegion, Slot);
  }
  compileNode(Root, Prog.Root, 0);
  emit(Root, Op::Halt);
  finishFunc(RootIdx, Root);
  P.RootFunc = RootIdx;
  return link();
}

} // namespace

VmProgram vm::compile(const RegionProgram &Prog, const Completion &C,
                      const completion::StorageModes *Modes) {
  return Compiler(Prog, C, Modes).compile();
}
