//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode compiler: regions::RegionProgram + regions::Completion
/// [+ storage modes] → vm::VmProgram. One pass over the IR performing
/// flat-closure conversion (capture descriptors resolved on demand
/// through the lexical chain of enclosing functions) and baking the
/// completion's alloc/free operations, the letregion begin/end protocol,
/// each node's static depth, and the atbot storage-mode bits directly
/// into the instruction stream.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_VM_COMPILER_H
#define AFL_VM_COMPILER_H

#include "completion/StorageModes.h"
#include "regions/Completion.h"
#include "regions/RegionProgram.h"
#include "vm/Bytecode.h"

namespace afl {
namespace vm {

/// Compiles \p Prog under completion \p C. \p Modes may be null (no
/// storage-mode resets); when set, writes at atbot nodes carry the
/// RefAtBot bit. Compilation never fails: references the analysis left
/// unresolvable become poisoned operands / Trap instructions that fail at
/// runtime with the tree walker's exact lazy-lookup messages.
VmProgram compile(const regions::RegionProgram &Prog,
                  const regions::Completion &C,
                  const completion::StorageModes *Modes = nullptr);

} // namespace vm
} // namespace afl

#endif // AFL_VM_COMPILER_H
