#include "vm/VM.h"

#include "ast/Expr.h"
#include "support/Arena.h"

#include <cassert>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace afl;
using namespace afl::vm;
using namespace afl::interp;

namespace {

/// Runtime address: (region index in the region table, cell offset).
struct Addr {
  uint32_t Region = 0;
  uint32_t Offset = 0;
};

/// A boxed runtime value — one cell of a region arena. 24 bytes, vs the
/// tree walker's ~64-byte Value; trivially copyable so arenas can grow
/// with memcpy (addresses are (region, offset) pairs, never pointers).
struct Cell {
  enum class Kind : uint8_t { Int, Bool, Unit, Clos, RegClos, Pair, Nil, Cons };
  Kind K = Kind::Unit;
  /// Clos/RegClos: index into VmProgram::Funcs.
  uint32_t Fn = 0;
  union {
    int64_t I; ///< Int value / Bool truth (0 or 1)
    struct {
      Addr A, B; ///< Pair components / Cons head+tail
    } P;
    struct {
      const Addr *V;     ///< value capture record (null when empty)
      const uint32_t *R; ///< region record (null when empty)
    } C;
  };
  Cell() : I(0) {}
};

/// The walker's Value keeps Int in a dedicated field that stays 0 for
/// non-numeric kinds; BinOp reads it without a kind check. Reproduce
/// that exactly over the union.
int64_t numericValue(const Cell &V) {
  return (V.K == Cell::Kind::Int || V.K == Cell::Kind::Bool) ? V.I : 0;
}

enum class RegState : uint8_t { Unallocated, Allocated, Deallocated };

/// One runtime region: a bump-pointer arena of cells plus the U→A→D
/// state tag and lifetime bookkeeping.
struct RtRegion {
  RegState St = RegState::Unallocated;
  uint32_t Len = 0;
  uint32_t Cap = 0;
  Cell *Base = nullptr;
  uint64_t AllocTime = 0;
  uint64_t FreeTime = 0;
  uint64_t ValuesAtFree = 0;
};

/// One VM activation. Locals live in shared slot stacks (ValSlots /
/// RegSlots) at [ValBase, ValBase + NumValSlots) etc.; D0 is the runtime
/// depth of the function body's root node (each Enter checks
/// D0 + static depth, which equals the walker's recursion depth).
struct Frame {
  uint32_t RetPC = 0;
  uint32_t D0 = 0;
  uint32_t ValBase = 0;
  uint32_t RegBase = 0;
  const Addr *VCaps = nullptr;
  const uint32_t *RCaps = nullptr;
};

class VM {
public:
  VM(const VmProgram &P, const RunOptions &Options)
      : P(P), Options(Options) {}

  ~VM() {
    for (RtRegion &Reg : Regions)
      delete[] Reg.Base;
    for (auto &Class : Pool)
      for (Cell *Buf : Class)
        delete[] Buf;
  }

  RunResult run();

private:
  //===------------------------------------------------------------------===//
  // Errors
  //===------------------------------------------------------------------===//

  bool fail(std::string Message) {
    if (Err.empty())
      Err = std::move(Message);
    Failed = true;
    return false;
  }

  //===------------------------------------------------------------------===//
  // Region arenas (all store operations instrumented like the walker)
  //===------------------------------------------------------------------===//

  void tick() {
    ++S.Time;
    if (Options.RecordTrace)
      Trace.push_back({S.Time, S.CurValues});
  }

  uint32_t newRegion() {
    Regions.emplace_back();
    return static_cast<uint32_t>(Regions.size() - 1);
  }

  static unsigned sizeClass(uint32_t Cap) {
    // Capacities are exact powers of two starting at MinCap.
    unsigned C = 0;
    while ((MinCap << C) < Cap)
      ++C;
    return C;
  }

  void growArena(RtRegion &Reg) {
    uint32_t NewCap = Reg.Cap ? Reg.Cap * 2 : MinCap;
    unsigned Class = sizeClass(NewCap);
    Cell *Buf;
    if (Class < NumClasses && !Pool[Class].empty()) {
      Buf = Pool[Class].back();
      Pool[Class].pop_back();
    } else {
      Buf = new Cell[NewCap];
    }
    if (Reg.Base) {
      std::memcpy(Buf, Reg.Base, Reg.Len * sizeof(Cell));
      releaseBuffer(Reg.Base, Reg.Cap);
    }
    Reg.Base = Buf;
    Reg.Cap = NewCap;
  }

  void releaseBuffer(Cell *Buf, uint32_t Cap) {
    unsigned Class = sizeClass(Cap);
    if (Class < NumClasses)
      Pool[Class].push_back(Buf);
    else
      delete[] Buf;
  }

  bool allocRegion(uint32_t R) {
    RtRegion &Reg = Regions[R];
    if (Reg.St != RegState::Unallocated)
      return fail("allocation of a region that is not unallocated");
    Reg.St = RegState::Allocated;
    ++S.TotalRegionAllocs;
    ++S.CurRegions;
    S.MaxRegions = std::max(S.MaxRegions, S.CurRegions);
    tick();
    Reg.AllocTime = S.Time;
    return true;
  }

  bool freeRegion(uint32_t R) {
    RtRegion &Reg = Regions[R];
    if (Reg.St != RegState::Allocated)
      return fail("deallocation of a region that is not allocated");
    Reg.St = RegState::Deallocated;
    --S.CurRegions;
    S.CurValues -= Reg.Len;
    Reg.ValuesAtFree = Reg.Len;
    // O(1) free: the whole arena goes back to the pool.
    if (Reg.Base) {
      releaseBuffer(Reg.Base, Reg.Cap);
      Reg.Base = nullptr;
      Reg.Cap = 0;
    }
    Reg.Len = 0;
    tick();
    Reg.FreeTime = S.Time;
    return true;
  }

  /// Writes \p V through destination reference \p DstRef (resolving the
  /// region, honoring the baked-in atbot bit) and pushes the new cell's
  /// address — the written value is the node's result.
  bool writeCell(uint32_t DstRef, const Cell &V) {
    uint32_t R;
    if (!regionOf(DstRef, R))
      return false;
    RtRegion &Reg = Regions[R];
    if (Reg.St != RegState::Allocated)
      return fail("write to a region that is not allocated");
    if ((DstRef & RefAtBot) && Reg.Len != 0) {
      // Storage-mode reset: destroy the region's current contents.
      S.CurValues -= Reg.Len;
      S.ResetValues += Reg.Len;
      ++S.Resets;
      Reg.Len = 0;
    }
    if (Reg.Len == Reg.Cap)
      growArena(Reg);
    Reg.Base[Reg.Len] = V;
    ++Reg.Len;
    ++S.Writes;
    ++S.TotalValueAllocs;
    ++S.CurValues;
    S.MaxValues = std::max(S.MaxValues, S.CurValues);
    tick();
    OpStack.push_back(Addr{R, Reg.Len - 1});
    return true;
  }

  const Cell *readCell(Addr A) {
    RtRegion &Reg = Regions[A.Region];
    if (Reg.St != RegState::Allocated) {
      fail("read from a region that is not allocated");
      return nullptr;
    }
    if (A.Offset >= Reg.Len) {
      // Only reachable when an unsound atbot reset destroyed the value.
      fail("read of a value destroyed by a region reset");
      return nullptr;
    }
    ++S.Reads;
    tick();
    return &Reg.Base[A.Offset];
  }

  //===------------------------------------------------------------------===//
  // Reference resolution
  //===------------------------------------------------------------------===//

  /// Resolves region reference \p Ref in the current frame. Poisoned
  /// references fail with their baked message, exactly where the
  /// walker's environment lookup would have.
  bool regionOf(uint32_t Ref, uint32_t &R) {
    if (Ref & RefPoison)
      return fail(P.TrapMsgs[Ref & RefIndexMask]);
    uint32_t Idx = Ref & RefIndexMask;
    const Frame &F = Frames.back();
    R = (Ref & RefCapture) ? F.RCaps[Idx] : RegSlots[F.RegBase + Idx];
    return true;
  }

  Addr valueAt(uint32_t Ref) {
    uint32_t Idx = Ref & RefIndexMask;
    const Frame &F = Frames.back();
    return (Ref & RefCapture) ? F.VCaps[Idx] : ValSlots[F.ValBase + Idx];
  }

  //===------------------------------------------------------------------===//
  // Capture records (persistent, arena-allocated — the analogue of the
  // walker's environment chains; not counted by the memory instrumentation)
  //===------------------------------------------------------------------===//

  Addr captureValue(const CaptureSource &Src) {
    const Frame &F = Frames.back();
    switch (Src.K) {
    case CaptureSource::Local:
      return ValSlots[F.ValBase + Src.Idx];
    case CaptureSource::Capture:
      return F.VCaps[Src.Idx];
    case CaptureSource::Self:
      return Addr{}; // patched after the closure cell is written
    }
    return Addr{};
  }

  uint32_t captureRegion(const CaptureSource &Src) {
    const Frame &F = Frames.back();
    switch (Src.K) {
    case CaptureSource::Local:
      return RegSlots[F.RegBase + Src.Idx];
    case CaptureSource::Capture:
      return F.RCaps[Src.Idx];
    case CaptureSource::Self:
      break; // regions have no self capture
    }
    return 0;
  }

  Addr *buildValCaps(const FuncInfo &FI) {
    if (FI.ValCaps.empty())
      return nullptr;
    Addr *Rec = static_cast<Addr *>(
        Mem.allocate(FI.ValCaps.size() * sizeof(Addr), alignof(Addr)));
    for (size_t I = 0; I != FI.ValCaps.size(); ++I)
      Rec[I] = captureValue(FI.ValCaps[I]);
    return Rec;
  }

  uint32_t *buildRegCaps(const FuncInfo &FI) {
    if (FI.RegCaps.empty())
      return nullptr;
    uint32_t *Rec = static_cast<uint32_t *>(
        Mem.allocate(FI.RegCaps.size() * sizeof(uint32_t), alignof(uint32_t)));
    for (size_t I = 0; I != FI.RegCaps.size(); ++I)
      Rec[I] = captureRegion(FI.RegCaps[I]);
    return Rec;
  }

  //===------------------------------------------------------------------===//
  // Frames
  //===------------------------------------------------------------------===//

  void pushFrame(uint32_t RetPC, uint32_t D0, const FuncInfo &FI,
                 const Addr *VCaps, const uint32_t *RCaps) {
    Frame F;
    F.RetPC = RetPC;
    F.D0 = D0;
    F.ValBase = static_cast<uint32_t>(ValSlots.size());
    F.RegBase = static_cast<uint32_t>(RegSlots.size());
    F.VCaps = VCaps;
    F.RCaps = RCaps;
    Frames.push_back(F);
    ValSlots.resize(F.ValBase + FI.NumValSlots);
    RegSlots.resize(F.RegBase + FI.NumRegSlots);
  }

  std::string render(Addr A, unsigned Depth = 0);

  const VmProgram &P;
  const RunOptions &Options;

  static constexpr uint32_t MinCap = 8;
  static constexpr unsigned NumClasses = 24; // up to 8 << 23 cells

  Arena Mem;
  std::vector<RtRegion> Regions;
  std::vector<Cell *> Pool[NumClasses];

  std::vector<Addr> OpStack;
  std::vector<Addr> ValSlots;
  std::vector<uint32_t> RegSlots;
  std::vector<Frame> Frames;

  /// The closure latched by ReadClos/ReadRegClos for the Call /
  /// RegAppWrite that follows (the walker's closure copy).
  struct {
    uint32_t Fn = 0;
    const Addr *VCaps = nullptr;
    const uint32_t *RCaps = nullptr;
  } Pend;

  Stats S;
  std::vector<TracePoint> Trace;
  std::string Err;
  bool Failed = false;
};

std::string VM::render(Addr A, unsigned Depth) {
  if (Depth > 64)
    return "...";
  const RtRegion &Reg = Regions[A.Region];
  if (Reg.St != RegState::Allocated)
    return "<freed>";
  if (!Reg.Base || A.Offset >= Reg.Cap)
    return "?";
  // Like the walker, cells destroyed by an atbot reset (Offset >= Len)
  // still render from the retained arena storage.
  const Cell &V = Reg.Base[A.Offset];
  switch (V.K) {
  case Cell::Kind::Int:
    return std::to_string(V.I);
  case Cell::Kind::Bool:
    return V.I ? "true" : "false";
  case Cell::Kind::Unit:
    return "()";
  case Cell::Kind::Clos:
    return "<fn>";
  case Cell::Kind::RegClos:
    return "<regfn>";
  case Cell::Kind::Pair:
    return "(" + render(V.P.A, Depth + 1) + ", " + render(V.P.B, Depth + 1) +
           ")";
  case Cell::Kind::Nil:
  case Cell::Kind::Cons: {
    std::string Out = "[";
    Addr Cur = A;
    bool First = true;
    for (unsigned I = 0; I < 100000; ++I) {
      const RtRegion &CurReg = Regions[Cur.Region];
      if (CurReg.St != RegState::Allocated)
        return Out + "<freed>]";
      if (!CurReg.Base || Cur.Offset >= CurReg.Cap)
        return Out + "?]";
      const Cell &CellV = CurReg.Base[Cur.Offset];
      if (CellV.K == Cell::Kind::Nil)
        break;
      if (!First)
        Out += ", ";
      First = false;
      Out += render(CellV.P.A, Depth + 1);
      Cur = CellV.P.B;
    }
    return Out + "]";
  }
  }
  return "?";
}

RunResult VM::run() {
  const uint32_t *Code = P.Code.data();
  uint32_t PC = P.Funcs[P.RootFunc].Entry;
  pushFrame(/*RetPC=*/0, /*D0=*/0, P.Funcs[P.RootFunc], nullptr, nullptr);

  bool Halted = false;
  while (!Failed && !Halted) {
    Op O = static_cast<Op>(Code[PC++]);
    switch (O) {
    case Op::Enter: {
      uint32_t D = Code[PC++];
      if (++S.Steps > Options.MaxSteps) {
        fail("step limit exceeded");
        break;
      }
      if (Frames.back().D0 + D >= Options.MaxDepth)
        fail("recursion depth limit exceeded");
      break;
    }
    case Op::NewRegion: {
      uint32_t Slot = Code[PC++];
      RegSlots[Frames.back().RegBase + Slot] = newRegion();
      break;
    }
    case Op::AllocReg: {
      uint32_t R;
      if (regionOf(Code[PC++], R))
        allocRegion(R);
      break;
    }
    case Op::FreeReg: {
      uint32_t R;
      if (regionOf(Code[PC++], R))
        freeRegion(R);
      break;
    }
    case Op::CheckEnd: {
      uint32_t Slot = Code[PC++];
      uint32_t RV = Code[PC++];
      uint32_t R = RegSlots[Frames.back().RegBase + Slot];
      if (Regions[R].St == RegState::Allocated)
        fail("region r" + std::to_string(RV) +
             " still allocated at letregion exit");
      break;
    }
    case Op::WriteInt: {
      uint32_t Idx = Code[PC++];
      uint32_t Dst = Code[PC++];
      Cell V;
      V.K = Cell::Kind::Int;
      V.I = P.IntPool[Idx];
      writeCell(Dst, V);
      break;
    }
    case Op::WriteTag: {
      uint32_t Tag = Code[PC++];
      uint32_t Dst = Code[PC++];
      Cell V;
      switch (Tag) {
      case TagFalse:
        V.K = Cell::Kind::Bool;
        V.I = 0;
        break;
      case TagTrue:
        V.K = Cell::Kind::Bool;
        V.I = 1;
        break;
      case TagUnit:
        V.K = Cell::Kind::Unit;
        break;
      default:
        V.K = Cell::Kind::Nil;
        break;
      }
      writeCell(Dst, V);
      break;
    }
    case Op::LoadLocal: {
      uint32_t Slot = Code[PC++];
      OpStack.push_back(ValSlots[Frames.back().ValBase + Slot]);
      break;
    }
    case Op::LoadCap: {
      uint32_t Idx = Code[PC++];
      OpStack.push_back(Frames.back().VCaps[Idx]);
      break;
    }
    case Op::StoreLocal: {
      uint32_t Slot = Code[PC++];
      ValSlots[Frames.back().ValBase + Slot] = OpStack.back();
      OpStack.pop_back();
      break;
    }
    case Op::MakeClos: {
      uint32_t Fn = Code[PC++];
      uint32_t Dst = Code[PC++];
      const FuncInfo &FI = P.Funcs[Fn];
      Cell V;
      V.K = Cell::Kind::Clos;
      V.Fn = Fn;
      V.C.V = buildValCaps(FI);
      V.C.R = buildRegCaps(FI);
      writeCell(Dst, V);
      break;
    }
    case Op::MakeRegClos: {
      uint32_t Fn = Code[PC++];
      uint32_t Dst = Code[PC++];
      const FuncInfo &FI = P.Funcs[Fn];
      Addr *VRec = buildValCaps(FI);
      Cell V;
      V.K = Cell::Kind::RegClos;
      V.Fn = Fn;
      V.C.V = VRec;
      V.C.R = buildRegCaps(FI);
      if (!writeCell(Dst, V))
        break;
      // Tie the letrec knot: Self captures become the closure's own
      // address (the walker's post-write Env patch).
      Addr Self = OpStack.back();
      for (size_t I = 0; I != FI.ValCaps.size(); ++I)
        if (FI.ValCaps[I].K == CaptureSource::Self)
          VRec[I] = Self;
      break;
    }
    case Op::ReadClos: {
      const Cell *Cl = readCell(OpStack[OpStack.size() - 2]);
      if (!Cl)
        break;
      if (Cl->K != Cell::Kind::Clos) {
        fail("application of a non-closure value");
        break;
      }
      // Latch before the free_app ops run: freeing the closure's region
      // must not lose the code/captures (the walker's ClosCopy).
      Pend.Fn = Cl->Fn;
      Pend.VCaps = Cl->C.V;
      Pend.RCaps = Cl->C.R;
      break;
    }
    case Op::Call: {
      uint32_t Delta = Code[PC++];
      Addr Arg = OpStack.back();
      OpStack.pop_back();
      OpStack.pop_back(); // the closure's address
      const FuncInfo &FI = P.Funcs[Pend.Fn];
      uint32_t D0 = Frames.back().D0 + Delta;
      pushFrame(PC, D0, FI, Pend.VCaps, Pend.RCaps);
      ValSlots[Frames.back().ValBase] = Arg; // parameter: slot 0
      PC = FI.Entry;
      break;
    }
    case Op::Ret: {
      Frame F = Frames.back();
      Frames.pop_back();
      ValSlots.resize(F.ValBase);
      RegSlots.resize(F.RegBase);
      PC = F.RetPC;
      break;
    }
    case Op::ReadRegClos: {
      uint32_t Src = Code[PC++];
      const Cell *Cl = readCell(valueAt(Src));
      if (!Cl)
        break;
      if (Cl->K != Cell::Kind::RegClos) {
        fail("region application of a non-region-closure");
        break;
      }
      Pend.Fn = Cl->Fn;
      Pend.VCaps = Cl->C.V;
      Pend.RCaps = Cl->C.R;
      break;
    }
    case Op::RegAppWrite: {
      uint32_t Dst = Code[PC++];
      uint32_t N = Code[PC++];
      const FuncInfo &FI = P.Funcs[Pend.Fn];
      assert(N == FI.NumFormals && "region arity mismatch");
      uint32_t NCaps = static_cast<uint32_t>(FI.RegCaps.size());
      uint32_t *Rec = nullptr;
      if (N + NCaps != 0)
        Rec = static_cast<uint32_t *>(Mem.allocate(
            (N + NCaps) * sizeof(uint32_t), alignof(uint32_t)));
      bool OkActuals = true;
      for (uint32_t I = 0; I != N; ++I) {
        uint32_t R;
        if (!regionOf(Code[PC + I], R)) {
          OkActuals = false;
          break;
        }
        Rec[I] = R;
      }
      PC += N;
      if (!OkActuals)
        break;
      for (uint32_t I = 0; I != NCaps; ++I)
        Rec[N + I] = Pend.RCaps[I];
      Cell V;
      V.K = Cell::Kind::Clos;
      V.Fn = Pend.Fn;
      V.C.V = Pend.VCaps;
      V.C.R = Rec;
      writeCell(Dst, V);
      break;
    }
    case Op::Branch: {
      uint32_t Target = Code[PC++];
      Addr A = OpStack.back();
      OpStack.pop_back();
      const Cell *Cond = readCell(A);
      if (!Cond)
        break;
      if (Cond->K != Cell::Kind::Bool) {
        fail("if condition is not a boolean");
        break;
      }
      if (!Cond->I)
        PC = Target;
      break;
    }
    case Op::Jump:
      PC = Code[PC];
      break;
    case Op::WritePair:
    case Op::WriteCons: {
      uint32_t Dst = Code[PC++];
      Addr B = OpStack.back();
      OpStack.pop_back();
      Addr A = OpStack.back();
      OpStack.pop_back();
      Cell V;
      V.K = O == Op::WritePair ? Cell::Kind::Pair : Cell::Kind::Cons;
      V.P.A = A;
      V.P.B = B;
      writeCell(Dst, V);
      break;
    }
    case Op::Proj: {
      uint32_t Which = Code[PC++];
      Addr A = OpStack.back();
      OpStack.pop_back();
      const Cell *V = readCell(A);
      if (!V)
        break;
      switch (Which) {
      case 0:
        if (V->K != Cell::Kind::Pair) {
          fail("fst of a non-pair");
          break;
        }
        OpStack.push_back(V->P.A);
        break;
      case 1:
        if (V->K != Cell::Kind::Pair) {
          fail("snd of a non-pair");
          break;
        }
        OpStack.push_back(V->P.B);
        break;
      case 2:
        if (V->K != Cell::Kind::Cons) {
          fail("hd of an empty or non-list value");
          break;
        }
        OpStack.push_back(V->P.A);
        break;
      default:
        if (V->K != Cell::Kind::Cons) {
          fail("tl of an empty or non-list value");
          break;
        }
        OpStack.push_back(V->P.B);
        break;
      }
      break;
    }
    case Op::NullTest: {
      uint32_t Dst = Code[PC++];
      Addr A = OpStack.back();
      OpStack.pop_back();
      const Cell *V = readCell(A);
      if (!V)
        break;
      if (V->K != Cell::Kind::Nil && V->K != Cell::Kind::Cons) {
        fail("null of a non-list");
        break;
      }
      Cell R;
      R.K = Cell::Kind::Bool;
      R.I = V->K == Cell::Kind::Nil ? 1 : 0;
      writeCell(Dst, R);
      break;
    }
    case Op::BinOp: {
      auto Kind = static_cast<ast::BinOpKind>(Code[PC++]);
      uint32_t Dst = Code[PC++];
      Addr Rhs = OpStack.back();
      OpStack.pop_back();
      Addr Lhs = OpStack.back();
      OpStack.pop_back();
      const Cell *LV = readCell(Lhs);
      if (!LV)
        break;
      int64_t L = numericValue(*LV);
      const Cell *RV = readCell(Rhs);
      if (!RV)
        break;
      int64_t R = numericValue(*RV);
      Cell Out;
      Out.K = Cell::Kind::Int;
      switch (Kind) {
      case ast::BinOpKind::Add:
        Out.I = L + R;
        break;
      case ast::BinOpKind::Sub:
        Out.I = L - R;
        break;
      case ast::BinOpKind::Mul:
        Out.I = L * R;
        break;
      case ast::BinOpKind::Div:
        if (R == 0) {
          fail("division by zero");
          break;
        }
        Out.I = L / R;
        break;
      case ast::BinOpKind::Mod:
        if (R == 0) {
          fail("mod by zero");
          break;
        }
        Out.I = L % R;
        break;
      case ast::BinOpKind::Lt:
        Out.K = Cell::Kind::Bool;
        Out.I = L < R;
        break;
      case ast::BinOpKind::Le:
        Out.K = Cell::Kind::Bool;
        Out.I = L <= R;
        break;
      case ast::BinOpKind::Eq:
        Out.K = Cell::Kind::Bool;
        Out.I = L == R;
        break;
      }
      if (Failed)
        break;
      writeCell(Dst, Out);
      break;
    }
    case Op::Trap:
      fail(P.TrapMsgs[Code[PC]]);
      break;
    case Op::Halt:
      Halted = true;
      break;
    }
  }

  RunResult Out;
  Out.Trace = std::move(Trace);
  if (Failed || OpStack.empty()) {
    Out.Ok = false;
    Out.Error = Err.empty() ? "unknown runtime error" : Err;
    Out.S = S;
    return Out;
  }
  S.FinalValues = S.CurValues;
  Out.Ok = true;
  Out.ResultText = render(OpStack.back());
  Out.S = S;
  if (Options.RecordLifetimes) {
    Out.Lifetimes.reserve(Regions.size());
    for (const RtRegion &Reg : Regions) {
      RegionLifetime L;
      L.AllocTime = Reg.AllocTime;
      L.FreeTime = Reg.FreeTime;
      L.ValuesAtFree =
          Reg.St == RegState::Allocated ? Reg.Len : Reg.ValuesAtFree;
      Out.Lifetimes.push_back(L);
    }
  }
  return Out;
}

} // namespace

RunResult vm::execute(const VmProgram &P, const RunOptions &Options) {
  return VM(P, Options).run();
}
