//===----------------------------------------------------------------------===//
///
/// \file
/// Finalization of a freshly inferred region program:
///   * resolves every region annotation (writes, reads, formals, actuals,
///     effects, globals) to canonical region-variable ids;
///   * places `letregion` bindings at the lowest covering node per
///     placement domain (program top level / each function body);
///   * computes per-node overall effects (§4.2);
///   * computes the free-region sets used to restrict abstract region
///     environments in the closure analysis.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_REGIONS_REGIONFINALIZE_H
#define AFL_REGIONS_REGIONFINALIZE_H

#include "regions/RegionProgram.h"

#include <unordered_map>
#include <vector>

namespace afl {
namespace regions {

/// Runs finalization. \p RawEff holds the unresolved per-node effect sets
/// produced by inference (indexed by node id); \p RegAppSubst maps each
/// region-application node to the instantiation substitution it used.
void finalizeRegionProgram(
    RegionProgram &Prog, std::vector<EffectSet> &RawEff,
    const std::unordered_map<RNodeId, RSubst> &RegAppSubst);

} // namespace regions
} // namespace afl

#endif // AFL_REGIONS_REGIONFINALIZE_H
