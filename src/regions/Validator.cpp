#include "regions/Validator.h"

#include <set>

using namespace afl;
using namespace afl::regions;

namespace {

class ProgramValidator {
public:
  explicit ProgramValidator(const RegionProgram &Prog) : Prog(Prog) {}

  std::vector<std::string> run() {
    std::set<RegionVarId> Scope(Prog.GlobalRegions.begin(),
                                Prog.GlobalRegions.end());
    for (RegionVarId R : Prog.GlobalRegions)
      checkCanonical(R, "global region");
    visit(Prog.Root, Scope);
    return std::move(Errors);
  }

private:
  void error(const RExpr *N, const std::string &Message) {
    Errors.push_back("node " + std::to_string(N->id()) + ": " + Message);
  }

  void checkCanonical(RegionVarId R, const char *What) {
    if (Prog.Types.findRegion(R) != R)
      Errors.push_back(std::string(What) + " r" + std::to_string(R) +
                       " is not canonical");
  }

  void checkInScope(const RExpr *N, RegionVarId R,
                    const std::set<RegionVarId> &Scope, const char *What) {
    if (!Scope.count(R))
      error(N, std::string(What) + " r" + std::to_string(R) +
                   " is not in scope");
  }

  void visit(const RExpr *N, std::set<RegionVarId> Scope) {
    for (RegionVarId R : N->boundRegions()) {
      checkCanonical(R, "letregion-bound region");
      if (!Scope.insert(R).second)
        error(N, "letregion rebinds in-scope region r" + std::to_string(R));
    }

    if (N->hasWriteRegion()) {
      checkCanonical(N->writeRegion(), "write region");
      checkInScope(N, N->writeRegion(), Scope, "write region");
      if (!N->effect().count(N->writeRegion()))
        error(N, "write region missing from node effect");
    }
    for (RegionVarId R : N->readRegions()) {
      checkCanonical(R, "read region");
      checkInScope(N, R, Scope, "read region");
      if (!N->effect().count(R))
        error(N, "read region missing from node effect");
    }
    for (RegionVarId R : N->overallEffect())
      checkInScope(N, R, Scope, "overall-effect region");

    switch (N->kind()) {
    case RExpr::Kind::Int:
    case RExpr::Kind::Bool:
    case RExpr::Kind::Unit:
    case RExpr::Kind::Var:
    case RExpr::Kind::Nil:
      return;
    case RExpr::Kind::Lambda:
      visit(cast<RLambdaExpr>(N)->body(), Scope);
      return;
    case RExpr::Kind::App:
      visit(cast<RAppExpr>(N)->fn(), Scope);
      visit(cast<RAppExpr>(N)->arg(), Scope);
      return;
    case RExpr::Kind::Let:
      visit(cast<RLetExpr>(N)->init(), Scope);
      visit(cast<RLetExpr>(N)->body(), Scope);
      return;
    case RExpr::Kind::Letrec: {
      const auto *L = cast<RLetrecExpr>(N);
      std::set<RegionVarId> Formals;
      std::set<RegionVarId> BodyScope = Scope;
      for (RegionVarId F : L->formals()) {
        checkCanonical(F, "letrec formal");
        if (!Formals.insert(F).second)
          error(N, "duplicate letrec formal r" + std::to_string(F));
        if (Scope.count(F))
          error(N, "letrec formal r" + std::to_string(F) +
                       " shadows an in-scope region");
        BodyScope.insert(F);
      }
      visit(L->fnBody(), BodyScope);
      visit(L->body(), Scope);
      return;
    }
    case RExpr::Kind::RegApp: {
      const auto *RA = cast<RRegAppExpr>(N);
      const RLetrecExpr *Callee = Prog.varInfo(RA->fn()).Letrec;
      if (!Callee) {
        error(N, "region application of a non-letrec variable");
        return;
      }
      if (Callee->formals().size() != RA->actuals().size())
        error(N, "region arity mismatch");
      for (RegionVarId R : RA->actuals()) {
        checkCanonical(R, "region-application actual");
        checkInScope(N, R, Scope, "region-application actual");
      }
      return;
    }
    case RExpr::Kind::If:
      visit(cast<RIfExpr>(N)->cond(), Scope);
      visit(cast<RIfExpr>(N)->thenExpr(), Scope);
      visit(cast<RIfExpr>(N)->elseExpr(), Scope);
      return;
    case RExpr::Kind::Pair:
      visit(cast<RPairExpr>(N)->first(), Scope);
      visit(cast<RPairExpr>(N)->second(), Scope);
      return;
    case RExpr::Kind::Cons:
      visit(cast<RConsExpr>(N)->head(), Scope);
      visit(cast<RConsExpr>(N)->tail(), Scope);
      return;
    case RExpr::Kind::UnOp:
      visit(cast<RUnOpExpr>(N)->operand(), Scope);
      return;
    case RExpr::Kind::BinOp:
      visit(cast<RBinOpExpr>(N)->lhs(), Scope);
      visit(cast<RBinOpExpr>(N)->rhs(), Scope);
      return;
    }
  }

  const RegionProgram &Prog;
  std::vector<std::string> Errors;
};

class CompletionValidator {
public:
  CompletionValidator(const RegionProgram &Prog, const Completion &C)
      : Prog(Prog), C(C) {}

  std::vector<std::string> run() {
    std::set<RegionVarId> Scope(Prog.GlobalRegions.begin(),
                                Prog.GlobalRegions.end());
    visit(Prog.Root, Scope);
    // Every op must be anchored at a node we visited.
    for (const auto &[Node, Ops] : C.Pre)
      checkAnchored(Node, Ops);
    for (const auto &[Node, Ops] : C.Post)
      checkAnchored(Node, Ops);
    for (const auto &[Node, Ops] : C.FreeApp) {
      checkAnchored(Node, Ops);
      if (Visited.count(Node) &&
          Prog.node(Node)->kind() != RExpr::Kind::App)
        Errors.push_back("free_app ops on non-application node " +
                         std::to_string(Node));
    }
    return std::move(Errors);
  }

private:
  void checkAnchored(RNodeId Node, const std::vector<COp> &Ops) {
    if (Ops.empty())
      return;
    if (!Visited.count(Node))
      Errors.push_back("completion ops on unreachable node " +
                       std::to_string(Node));
  }

  void checkOps(const RExpr *N, const std::vector<COp> *Ops,
                const std::set<RegionVarId> &Scope) {
    if (!Ops)
      return;
    for (const COp &Op : *Ops) {
      if (!Scope.count(Op.Region))
        Errors.push_back("node " + std::to_string(N->id()) + ": " +
                         spelling(Op.Kind) + " on out-of-scope region r" +
                         std::to_string(Op.Region));
      if (!N->overallEffect().count(Op.Region))
        Errors.push_back("node " + std::to_string(N->id()) + ": " +
                         spelling(Op.Kind) +
                         " outside the node's overall effect (r" +
                         std::to_string(Op.Region) + ")");
    }
  }

  void visit(const RExpr *N, std::set<RegionVarId> Scope) {
    Visited.insert(N->id());
    for (RegionVarId R : N->boundRegions())
      Scope.insert(R);
    checkOps(N, C.preOps(N->id()), Scope);
    checkOps(N, C.postOps(N->id()), Scope);
    checkOps(N, C.freeAppOps(N->id()), Scope);

    switch (N->kind()) {
    case RExpr::Kind::Lambda:
      visit(cast<RLambdaExpr>(N)->body(), Scope);
      break;
    case RExpr::Kind::App:
      visit(cast<RAppExpr>(N)->fn(), Scope);
      visit(cast<RAppExpr>(N)->arg(), Scope);
      break;
    case RExpr::Kind::Let:
      visit(cast<RLetExpr>(N)->init(), Scope);
      visit(cast<RLetExpr>(N)->body(), Scope);
      break;
    case RExpr::Kind::Letrec: {
      const auto *L = cast<RLetrecExpr>(N);
      std::set<RegionVarId> BodyScope = Scope;
      for (RegionVarId F : L->formals())
        BodyScope.insert(F);
      visit(L->fnBody(), BodyScope);
      visit(L->body(), Scope);
      break;
    }
    case RExpr::Kind::If:
      visit(cast<RIfExpr>(N)->cond(), Scope);
      visit(cast<RIfExpr>(N)->thenExpr(), Scope);
      visit(cast<RIfExpr>(N)->elseExpr(), Scope);
      break;
    case RExpr::Kind::Pair:
      visit(cast<RPairExpr>(N)->first(), Scope);
      visit(cast<RPairExpr>(N)->second(), Scope);
      break;
    case RExpr::Kind::Cons:
      visit(cast<RConsExpr>(N)->head(), Scope);
      visit(cast<RConsExpr>(N)->tail(), Scope);
      break;
    case RExpr::Kind::UnOp:
      visit(cast<RUnOpExpr>(N)->operand(), Scope);
      break;
    case RExpr::Kind::BinOp:
      visit(cast<RBinOpExpr>(N)->lhs(), Scope);
      visit(cast<RBinOpExpr>(N)->rhs(), Scope);
      break;
    default:
      break;
    }
  }

  const RegionProgram &Prog;
  const Completion &C;
  std::set<RNodeId> Visited;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string>
regions::validateRegionProgram(const RegionProgram &Prog) {
  ProgramValidator V(Prog);
  return V.run();
}

std::vector<std::string>
regions::validateCompletion(const RegionProgram &Prog, const Completion &C) {
  CompletionValidator V(Prog, C);
  return V.run();
}
