#include "regions/RegionTypes.h"

#include <algorithm>

using namespace afl;
using namespace afl::regions;

bool EffectSet::unionWith(const EffectSet &Other) {
  bool Grew = false;
  for (RegionVarId R : Other.Regions)
    Grew |= Regions.insert(R).second;
  for (EffectVarId E : Other.EffectVars)
    Grew |= EffectVars.insert(E).second;
  return Grew;
}

RegionVarId RSubst::lookupRegion(RegionVarId R) const {
  for (const auto &[From, To] : Regions)
    if (From == R)
      return To;
  return R;
}

EffectVarId RSubst::lookupEffect(EffectVarId E) const {
  for (const auto &[From, To] : Effects)
    if (From == E)
      return To;
  return E;
}

//===----------------------------------------------------------------------===//
// Region variables
//===----------------------------------------------------------------------===//

RegionVarId RTypeTable::freshRegion() {
  RegionVarId Id = static_cast<RegionVarId>(RegionParents.size());
  RegionParents.push_back(Id);
  return Id;
}

RegionVarId RTypeTable::findRegion(RegionVarId R) const {
  assert(R < RegionParents.size() && "bad region var");
  while (RegionParents[R] != R) {
    RegionParents[R] = RegionParents[RegionParents[R]]; // path halving
    R = RegionParents[R];
  }
  return R;
}

void RTypeTable::unifyRegions(RegionVarId A, RegionVarId B) {
  A = findRegion(A);
  B = findRegion(B);
  if (A == B)
    return;
  // Keep the smaller id as representative so canonical names are stable.
  if (A > B)
    std::swap(A, B);
  RegionParents[B] = A;
}

//===----------------------------------------------------------------------===//
// Effect variables
//===----------------------------------------------------------------------===//

EffectVarId RTypeTable::freshEffectVar() {
  EffectVarId Id = static_cast<EffectVarId>(EffectParents.size());
  EffectParents.push_back(Id);
  EffectSets.emplace_back();
  return Id;
}

EffectVarId RTypeTable::findEffectVar(EffectVarId E) const {
  assert(E < EffectParents.size() && "bad effect var");
  while (EffectParents[E] != E) {
    EffectParents[E] = EffectParents[EffectParents[E]];
    E = EffectParents[E];
  }
  return E;
}

void RTypeTable::unifyEffectVars(EffectVarId A, EffectVarId B) {
  A = findEffectVar(A);
  B = findEffectVar(B);
  if (A == B)
    return;
  if (A > B)
    std::swap(A, B);
  EffectParents[B] = A;
  EffectSets[A].unionWith(EffectSets[B]);
  EffectSets[B] = EffectSet();
}

bool RTypeTable::addToEffectVar(EffectVarId E, const EffectSet &Effects) {
  return EffectSets[findEffectVar(E)].unionWith(Effects);
}

const EffectSet &RTypeTable::latentOf(EffectVarId E) const {
  return EffectSets[findEffectVar(E)];
}

//===----------------------------------------------------------------------===//
// Region types
//===----------------------------------------------------------------------===//

RTypeId RTypeTable::freshFromType(const types::TypeTable &Types,
                                  types::TypeId T) {
  using types::TypeKind;
  RegionVarId R = freshRegion();
  switch (Types.kind(T)) {
  case TypeKind::Int:
  case TypeKind::Var: // residual vars were defaulted to int upstream
    return mkInt(R);
  case TypeKind::Bool:
    return mkBool(R);
  case TypeKind::Unit:
    return mkUnit(R);
  case TypeKind::Arrow: {
    RTypeId Param = freshFromType(Types, Types.child0(T));
    RTypeId Result = freshFromType(Types, Types.child1(T));
    return mkArrow(Param, freshEffectVar(), Result, R);
  }
  case TypeKind::Pair: {
    RTypeId First = freshFromType(Types, Types.child0(T));
    RTypeId Second = freshFromType(Types, Types.child1(T));
    return mkPair(First, Second, R);
  }
  case TypeKind::List:
    return mkList(freshFromType(Types, Types.child0(T)), R);
  }
  assert(false && "unknown type kind");
  return 0;
}

void RTypeTable::unify(RTypeId A, RTypeId B) {
  if (A == B)
    return;
  const Node &NA = Nodes[A];
  const Node &NB = Nodes[B];
  assert(NA.Kind == NB.Kind && "region unification of mismatched shapes");
  unifyRegions(NA.Region, NB.Region);
  switch (NA.Kind) {
  case RTypeKind::Int:
  case RTypeKind::Bool:
  case RTypeKind::Unit:
    return;
  case RTypeKind::Arrow:
    unifyEffectVars(NA.Eps, NB.Eps);
    unify(NA.Child0, NB.Child0);
    unify(NA.Child1, NB.Child1);
    return;
  case RTypeKind::Pair:
    unify(NA.Child0, NB.Child0);
    unify(NA.Child1, NB.Child1);
    return;
  case RTypeKind::List:
    unify(NA.Child0, NB.Child0);
    return;
  }
}

RTypeId RTypeTable::instantiate(RTypeId T, const RSubst &Subst) {
  const Node N = Nodes[T]; // copy: Nodes may reallocate below
  RegionVarId R = Subst.lookupRegion(findRegion(N.Region));
  switch (N.Kind) {
  case RTypeKind::Int:
    return mkInt(R);
  case RTypeKind::Bool:
    return mkBool(R);
  case RTypeKind::Unit:
    return mkUnit(R);
  case RTypeKind::Pair: {
    RTypeId First = instantiate(N.Child0, Subst);
    RTypeId Second = instantiate(N.Child1, Subst);
    return mkPair(First, Second, R);
  }
  case RTypeKind::List:
    return mkList(instantiate(N.Child0, Subst), R);
  case RTypeKind::Arrow: {
    RTypeId Param = instantiate(N.Child0, Subst);
    RTypeId Result = instantiate(N.Child1, Subst);
    EffectVarId OldEps = findEffectVar(N.Eps);
    EffectVarId NewEps = Subst.lookupEffect(OldEps);
    if (NewEps != OldEps) {
      // Quantified arrow effect: substitute its latent set into the copy.
      EffectSet Latent = latentOf(OldEps); // copy before mutation
      EffectSet Mapped;
      for (RegionVarId LR : Latent.Regions)
        Mapped.Regions.insert(Subst.lookupRegion(findRegion(LR)));
      for (EffectVarId LE : Latent.EffectVars)
        Mapped.EffectVars.insert(Subst.lookupEffect(findEffectVar(LE)));
      addToEffectVar(NewEps, Mapped);
    }
    return mkArrow(Param, NewEps, Result, R);
  }
  }
  assert(false && "unknown region type kind");
  return 0;
}

void RTypeTable::freeRegionVars(RTypeId T,
                                std::set<RegionVarId> &Out) const {
  const Node &N = Nodes[T];
  Out.insert(findRegion(N.Region));
  switch (N.Kind) {
  case RTypeKind::Int:
  case RTypeKind::Bool:
  case RTypeKind::Unit:
    return;
  case RTypeKind::Pair:
    freeRegionVars(N.Child0, Out);
    freeRegionVars(N.Child1, Out);
    return;
  case RTypeKind::List:
    freeRegionVars(N.Child0, Out);
    return;
  case RTypeKind::Arrow: {
    EffectSet Latent;
    Latent.EffectVars.insert(findEffectVar(N.Eps));
    std::set<RegionVarId> LatentRegions = regionsOf(Latent);
    Out.insert(LatentRegions.begin(), LatentRegions.end());
    freeRegionVars(N.Child0, Out);
    freeRegionVars(N.Child1, Out);
    return;
  }
  }
}

void RTypeTable::freeEffectVars(RTypeId T,
                                std::set<EffectVarId> &Out) const {
  const Node &N = Nodes[T];
  switch (N.Kind) {
  case RTypeKind::Int:
  case RTypeKind::Bool:
  case RTypeKind::Unit:
    return;
  case RTypeKind::Pair:
    freeEffectVars(N.Child0, Out);
    freeEffectVars(N.Child1, Out);
    return;
  case RTypeKind::List:
    freeEffectVars(N.Child0, Out);
    return;
  case RTypeKind::Arrow: {
    // The arrow's own ε plus any ε reachable through its latent set.
    std::vector<EffectVarId> Work;
    Work.push_back(findEffectVar(N.Eps));
    while (!Work.empty()) {
      EffectVarId E = Work.back();
      Work.pop_back();
      if (!Out.insert(E).second)
        continue;
      for (EffectVarId Next : EffectSets[E].EffectVars)
        Work.push_back(findEffectVar(Next));
    }
    freeEffectVars(N.Child0, Out);
    freeEffectVars(N.Child1, Out);
    return;
  }
  }
}

std::set<RegionVarId> RTypeTable::regionsOf(const EffectSet &E) const {
  std::set<RegionVarId> Out;
  std::set<EffectVarId> Visited;
  std::vector<EffectVarId> Work;
  for (RegionVarId R : E.Regions)
    Out.insert(findRegion(R));
  for (EffectVarId EV : E.EffectVars)
    Work.push_back(findEffectVar(EV));
  while (!Work.empty()) {
    EffectVarId EV = Work.back();
    Work.pop_back();
    if (!Visited.insert(EV).second)
      continue;
    const EffectSet &Latent = EffectSets[EV];
    for (RegionVarId R : Latent.Regions)
      Out.insert(findRegion(R));
    for (EffectVarId Next : Latent.EffectVars)
      Work.push_back(findEffectVar(Next));
  }
  return Out;
}

void RTypeTable::strAppend(RTypeId T, std::string &Out) const {
  const Node &N = Nodes[T];
  switch (N.Kind) {
  case RTypeKind::Int:
    Out += "int";
    break;
  case RTypeKind::Bool:
    Out += "bool";
    break;
  case RTypeKind::Unit:
    Out += "unit";
    break;
  case RTypeKind::Pair:
    Out += '(';
    strAppend(N.Child0, Out);
    Out += " * ";
    strAppend(N.Child1, Out);
    Out += ')';
    break;
  case RTypeKind::List:
    Out += '(';
    strAppend(N.Child0, Out);
    Out += " list)";
    break;
  case RTypeKind::Arrow: {
    Out += '(';
    strAppend(N.Child0, Out);
    EffectVarId E = findEffectVar(N.Eps);
    Out += " -e" + std::to_string(E) + "{";
    bool FirstR = true;
    EffectSet Probe;
    Probe.EffectVars.insert(E);
    for (RegionVarId R : regionsOf(Probe)) {
      if (!FirstR)
        Out += ',';
      Out += 'r' + std::to_string(R);
      FirstR = false;
    }
    Out += "}-> ";
    strAppend(N.Child1, Out);
    Out += ')';
    break;
  }
  }
  Out += "@r" + std::to_string(findRegion(N.Region));
}

std::string RTypeTable::str(RTypeId T) const {
  std::string Out;
  strAppend(T, Out);
  return Out;
}
