//===----------------------------------------------------------------------===//
///
/// \file
/// Region-annotated types and effects for Tofte/Talpin region inference.
///
/// A region type μ = (τ̂, ρ) pairs a type shape with the region variable ρ
/// where values of that type live. Arrows carry an *arrow effect* ε.φ: an
/// effect variable ε naming the latent effect plus the set φ of region
/// variables (and other effect variables) the function may read or write
/// when applied (paper §2).
///
/// Region variables and effect variables unify via union-find; effect sets
/// attached to effect-variable representatives grow monotonically under
/// unification. "Canonical" ids (find results) serve as the region-variable
/// *names* in the final region-explicit IR.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_REGIONS_REGIONTYPES_H
#define AFL_REGIONS_REGIONTYPES_H

#include "types/Type.h"

#include <cassert>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace afl {
namespace regions {

/// A region variable ρ. Ids are indices into RTypeTable's region table;
/// use RTypeTable::findRegion to canonicalize.
using RegionVarId = uint32_t;

/// An effect variable ε.
using EffectVarId = uint32_t;

/// A region type node μ.
using RTypeId = uint32_t;

/// Shape of a region type (mirrors types::TypeKind minus Var: region
/// decoration happens on ground ML types).
enum class RTypeKind : uint8_t { Int, Bool, Unit, Arrow, Pair, List };

/// An effect: sets of region variables and effect variables. Stored on
/// effect-variable representatives and on expression nodes.
struct EffectSet {
  std::set<RegionVarId> Regions;
  std::set<EffectVarId> EffectVars;

  bool empty() const { return Regions.empty() && EffectVars.empty(); }

  /// Set-unions \p Other into this; returns true if anything was added.
  bool unionWith(const EffectSet &Other);
};

/// Substitution used when instantiating a region-polymorphic type scheme.
struct RSubst {
  std::vector<std::pair<RegionVarId, RegionVarId>> Regions;
  std::vector<std::pair<EffectVarId, EffectVarId>> Effects;

  /// Returns the image of \p R, or \p R itself if unmapped.
  RegionVarId lookupRegion(RegionVarId R) const;
  /// Returns the image of \p E, or \p E itself if unmapped.
  EffectVarId lookupEffect(EffectVarId E) const;
};

/// Table of region types, region variables, and effect variables.
class RTypeTable {
public:
  //===------------------------------------------------------------------===//
  // Region variables
  //===------------------------------------------------------------------===//

  RegionVarId freshRegion();
  /// Canonical representative of \p R.
  RegionVarId findRegion(RegionVarId R) const;
  /// Unifies two region variables.
  void unifyRegions(RegionVarId A, RegionVarId B);
  uint32_t numRegionVars() const {
    return static_cast<uint32_t>(RegionParents.size());
  }

  //===------------------------------------------------------------------===//
  // Effect variables
  //===------------------------------------------------------------------===//

  EffectVarId freshEffectVar();
  EffectVarId findEffectVar(EffectVarId E) const;
  /// Unifies two effect variables; their sets are unioned.
  void unifyEffectVars(EffectVarId A, EffectVarId B);
  /// Adds \p Effects to ε's latent set; returns true if it grew.
  bool addToEffectVar(EffectVarId E, const EffectSet &Effects);
  /// The latent set stored at ε's representative (not transitively closed).
  const EffectSet &latentOf(EffectVarId E) const;
  uint32_t numEffectVars() const {
    return static_cast<uint32_t>(EffectParents.size());
  }

  //===------------------------------------------------------------------===//
  // Region types
  //===------------------------------------------------------------------===//

  RTypeId mkInt(RegionVarId R) { return make(RTypeKind::Int, R); }
  RTypeId mkBool(RegionVarId R) { return make(RTypeKind::Bool, R); }
  RTypeId mkUnit(RegionVarId R) { return make(RTypeKind::Unit, R); }
  RTypeId mkArrow(RTypeId Param, EffectVarId Eps, RTypeId Result,
                  RegionVarId R) {
    RTypeId Id = make(RTypeKind::Arrow, R, Param, Result);
    Nodes[Id].Eps = Eps;
    return Id;
  }
  RTypeId mkPair(RTypeId First, RTypeId Second, RegionVarId R) {
    return make(RTypeKind::Pair, R, First, Second);
  }
  RTypeId mkList(RTypeId Elem, RegionVarId R) {
    return make(RTypeKind::List, R, Elem);
  }

  RTypeKind kind(RTypeId T) const { return Nodes[T].Kind; }
  /// The (canonical) region of μ.
  RegionVarId regionOf(RTypeId T) const { return findRegion(Nodes[T].Region); }
  RTypeId child0(RTypeId T) const { return Nodes[T].Child0; }
  RTypeId child1(RTypeId T) const { return Nodes[T].Child1; }
  /// The (canonical) arrow-effect variable of an Arrow node.
  EffectVarId arrowEffect(RTypeId T) const {
    assert(Nodes[T].Kind == RTypeKind::Arrow);
    return findEffectVar(Nodes[T].Eps);
  }

  /// Decorates ground ML type \p T with entirely fresh region/effect
  /// variables (arrow latent sets start empty).
  RTypeId freshFromType(const types::TypeTable &Types, types::TypeId T);

  /// Unifies μ \p A and μ \p B. Shapes must match (both decorate the same
  /// ML type); asserts otherwise.
  void unify(RTypeId A, RTypeId B);

  /// Deep-copies \p T applying \p Subst to quantified region/effect
  /// variables. Latent effect sets of copied arrows are substituted too.
  /// Unmapped variables are shared, not copied.
  RTypeId instantiate(RTypeId T, const RSubst &Subst);

  /// Collects the canonical free region variables of μ \p T, including
  /// regions reachable through arrow latent effects (transitively through
  /// effect variables).
  void freeRegionVars(RTypeId T, std::set<RegionVarId> &Out) const;

  /// Collects the canonical effect variables reachable from μ \p T.
  void freeEffectVars(RTypeId T, std::set<EffectVarId> &Out) const;

  /// Expands \p E to its full set of canonical region variables, chasing
  /// effect variables transitively.
  std::set<RegionVarId> regionsOf(const EffectSet &E) const;

  /// Renders μ for debugging, e.g. "(int@r1 -e3{r1}-> int@r2)@r0".
  std::string str(RTypeId T) const;

private:
  struct Node {
    RTypeKind Kind;
    RegionVarId Region = 0;
    RTypeId Child0 = 0;
    RTypeId Child1 = 0;
    EffectVarId Eps = 0;
  };

  RTypeId make(RTypeKind Kind, RegionVarId R, RTypeId Child0 = 0,
               RTypeId Child1 = 0) {
    RTypeId Id = static_cast<RTypeId>(Nodes.size());
    Nodes.push_back({Kind, R, Child0, Child1, 0});
    return Id;
  }

  void strAppend(RTypeId T, std::string &Out) const;

  std::vector<Node> Nodes;
  // Union-find parents. Mutable to allow path compression in const finds.
  mutable std::vector<RegionVarId> RegionParents;
  mutable std::vector<EffectVarId> EffectParents;
  std::vector<EffectSet> EffectSets; // indexed by effect var id (rep only)
};

} // namespace regions
} // namespace afl

#endif // AFL_REGIONS_REGIONTYPES_H
