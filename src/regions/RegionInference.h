//===----------------------------------------------------------------------===//
///
/// \file
/// Tofte/Talpin region inference [TT94]: translates a typed surface
/// program into the region-explicit IR of paper §2.
///
/// The algorithm:
///   1. decorates ML types with fresh region variables and arrow effects,
///      unifying region types structurally at applications, conditionals,
///      and cons cells;
///   2. gives letrec-bound functions region-polymorphic type schemes and
///      supports *polymorphic recursion in regions* via a fixed-point
///      iteration over the function body (recursive occurrences are
///      instantiated with fresh regions from the current scheme; iteration
///      stops when the scheme's region structure and latent effect
///      stabilize);
///   3. places `letregion` bindings at the lowest node that covers every
///      mention of a region, within each *placement domain* (the program
///      top level and each function body) — regions observable from a
///      function's type escape into the enclosing domain, exactly the
///      effect-observability criterion of [TT94];
///   4. finalizes per-node analysis annotations: resolved effects,
///      read/write regions, overall effects (§4.2), and the free-region
///      sets used to restrict abstract region environments.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_REGIONS_REGIONINFERENCE_H
#define AFL_REGIONS_REGIONINFERENCE_H

#include "regions/RegionProgram.h"
#include "support/Diagnostics.h"
#include "types/TypeInference.h"

#include <memory>

namespace afl {
namespace ast {
class ASTContext;
class Expr;
} // namespace ast

namespace regions {

/// Runs region inference on \p Root (which must have been typed by \p
/// Typed). Returns nullptr on failure (reported to \p Diags).
std::unique_ptr<RegionProgram> inferRegions(const ast::Expr *Root,
                                            const ast::ASTContext &Ctx,
                                            const types::TypedProgram &Typed,
                                            DiagnosticEngine &Diags);

} // namespace regions
} // namespace afl

#endif // AFL_REGIONS_REGIONINFERENCE_H
