#include "regions/RegionInference.h"

#include "regions/RegionFinalize.h"

#include "ast/ASTContext.h"
#include "ast/Expr.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace afl;
using namespace afl::regions;

namespace {

/// Region-polymorphic type scheme of a letrec-bound function.
struct FunDecl {
  VarId Var = 0;
  /// The arrow μ of the scheme. Its box region plays the role of the
  /// per-use "@ρ" of a region application and is always instantiated
  /// fresh.
  RTypeId SchemeArrow = 0;
  /// ρf: the region holding the region-polymorphic closure itself.
  RegionVarId ClosRegion = 0;
  /// Environment prefix length at the letrec (bindings visible *outside*
  /// f), used to compute the quantifiable variables.
  size_t EnvDepth = 0;
  /// Final ordered formal region parameters (canonical ids), fixed after
  /// the fixpoint completes.
  std::vector<RegionVarId> Formals;
  bool FormalsFixed = false;
};

/// One environment binding.
struct Binding {
  Symbol Name;
  VarId Var = 0;
  RTypeId Type = 0;
  FunDecl *Fun = nullptr; // non-null iff letrec-bound function
};

/// Result of inferring one expression.
struct Res {
  RExpr *Node = nullptr;
  RTypeId Type = 0;
  EffectSet Eff;
};

class RegionInferencer {
public:
  RegionInferencer(RegionProgram &Prog, const ast::ASTContext &Ctx,
                   const types::TypedProgram &Typed, DiagnosticEngine &Diags)
      : Prog(Prog), Ctx(Ctx), Typed(Typed), Diags(Diags) {}

  bool run(const ast::Expr *Root);

  /// Raw (unresolved) effect per node id; consumed by finalization.
  std::vector<EffectSet> RawEff;
  /// Instantiation substitution per region-application node.
  std::unordered_map<RNodeId, RSubst> RegAppSubst;

private:
  RTypeTable &types() { return Prog.Types; }

  Res infer(const ast::Expr *E);
  Res inferVar(const ast::VarExpr *E);
  Res inferLetrec(const ast::LetrecExpr *E);

  /// Registers \p N's type/effect bookkeeping and returns the Res.
  Res finish(RExpr *N, RTypeId Type, EffectSet Eff) {
    N->setType(Type);
    if (RawEff.size() <= N->id())
      RawEff.resize(N->id() + 1);
    RawEff[N->id()] = Eff;
    return {N, Type, std::move(Eff)};
  }

  /// Free region variables of the first \p Depth environment bindings
  /// (entire environment if SIZE_MAX).
  std::set<RegionVarId> frvTE(size_t Depth) const;
  std::set<EffectVarId> fevTE(size_t Depth) const;

  /// Computes the observable part of a function body's effect and merges
  /// it into the arrow effect \p Eps. Regions of \p BodyEff outside
  /// \p Observable stay latent-local (letregion placement binds them
  /// inside the body later).
  bool pruneIntoArrowEffect(EffectVarId Eps, const EffectSet &BodyEff,
                            const std::set<RegionVarId> &Observable,
                            const std::set<EffectVarId> &ObservableEffects);

  /// Deterministic fingerprint of a scheme's region/effect structure, used
  /// to detect the polymorphic-recursion fixpoint.
  std::string fingerprint(RTypeId T) const;
  void fingerprintAppend(RTypeId T, std::string &Out) const;

  RegionProgram &Prog;
  const ast::ASTContext &Ctx;
  const types::TypedProgram &Typed;
  DiagnosticEngine &Diags;
  std::vector<Binding> Env;
  /// Keeps FunDecls alive for the whole run (Env holds raw pointers).
  std::vector<std::unique_ptr<FunDecl>> FunDecls;
  static constexpr unsigned MaxFixpointIters = 64;
};

} // namespace

std::set<RegionVarId> RegionInferencer::frvTE(size_t Depth) const {
  std::set<RegionVarId> Out;
  size_t N = std::min(Depth, Env.size());
  for (size_t I = 0; I != N; ++I) {
    Prog.Types.freeRegionVars(Env[I].Type, Out);
    if (Env[I].Fun)
      Out.insert(Prog.Types.findRegion(Env[I].Fun->ClosRegion));
  }
  return Out;
}

std::set<EffectVarId> RegionInferencer::fevTE(size_t Depth) const {
  std::set<EffectVarId> Out;
  size_t N = std::min(Depth, Env.size());
  for (size_t I = 0; I != N; ++I)
    Prog.Types.freeEffectVars(Env[I].Type, Out);
  return Out;
}

bool RegionInferencer::pruneIntoArrowEffect(
    EffectVarId Eps, const EffectSet &BodyEff,
    const std::set<RegionVarId> &Observable,
    const std::set<EffectVarId> &ObservableEffects) {
  EffectSet Phi;
  for (RegionVarId R : types().regionsOf(BodyEff))
    if (Observable.count(R))
      Phi.Regions.insert(R);
  for (EffectVarId E : BodyEff.EffectVars)
    if (ObservableEffects.count(types().findEffectVar(E)))
      Phi.EffectVars.insert(types().findEffectVar(E));
  return types().addToEffectVar(Eps, Phi);
}

void RegionInferencer::fingerprintAppend(RTypeId T, std::string &Out) const {
  const RTypeTable &TT = Prog.Types;
  Out += static_cast<char>('A' + static_cast<int>(TT.kind(T)));
  Out += std::to_string(TT.regionOf(T));
  Out += ';';
  switch (TT.kind(T)) {
  case RTypeKind::Int:
  case RTypeKind::Bool:
  case RTypeKind::Unit:
    return;
  case RTypeKind::Pair:
    fingerprintAppend(TT.child0(T), Out);
    fingerprintAppend(TT.child1(T), Out);
    return;
  case RTypeKind::List:
    fingerprintAppend(TT.child0(T), Out);
    return;
  case RTypeKind::Arrow: {
    EffectSet Probe;
    Probe.EffectVars.insert(TT.arrowEffect(T));
    Out += '{';
    for (RegionVarId R : TT.regionsOf(Probe)) {
      Out += std::to_string(R);
      Out += ',';
    }
    Out += '}';
    fingerprintAppend(TT.child0(T), Out);
    fingerprintAppend(TT.child1(T), Out);
    return;
  }
  }
}

std::string RegionInferencer::fingerprint(RTypeId T) const {
  std::string Out;
  fingerprintAppend(T, Out);
  return Out;
}

Res RegionInferencer::inferVar(const ast::VarExpr *E) {
  for (auto It = Env.rbegin(), End = Env.rend(); It != End; ++It) {
    if (It->Name != E->name())
      continue;
    if (!It->Fun) {
      RVarExpr *N = Prog.create<RVarExpr>(It->Var);
      return finish(N, It->Type, EffectSet());
    }
    // Use of a region-polymorphic function: region application f[ρ⃗]@ρ.
    FunDecl &F = *It->Fun;
    std::set<RegionVarId> OuterR = frvTE(F.EnvDepth);
    // The region holding f's own region-polymorphic closure is bound at
    // the letrec, never quantified (the body reads it at recursive calls,
    // so it appears in the latent effect).
    OuterR.insert(types().findRegion(F.ClosRegion));
    std::set<EffectVarId> OuterE = fevTE(F.EnvDepth);
    std::set<RegionVarId> SchemeR;
    types().freeRegionVars(F.SchemeArrow, SchemeR);
    SchemeR.insert(types().regionOf(F.SchemeArrow));
    std::set<EffectVarId> SchemeE;
    types().freeEffectVars(F.SchemeArrow, SchemeE);

    RSubst Subst;
    for (RegionVarId R : SchemeR)
      if (!OuterR.count(R))
        Subst.Regions.push_back({R, types().freshRegion()});
    for (EffectVarId EV : SchemeE)
      if (!OuterE.count(EV))
        Subst.Effects.push_back({EV, types().freshEffectVar()});

    RTypeId Inst = types().instantiate(F.SchemeArrow, Subst);
    RRegAppExpr *N =
        Prog.create<RRegAppExpr>(F.Var, std::vector<RegionVarId>());
    RegAppSubst[N->id()] = Subst;
    N->setWriteRegion(types().regionOf(Inst));
    N->addReadRegion(F.ClosRegion);
    EffectSet Eff;
    Eff.Regions.insert(F.ClosRegion);
    Eff.Regions.insert(types().regionOf(Inst));
    return finish(N, Inst, std::move(Eff));
  }
  assert(false && "unbound variable survived type checking");
  return {};
}

Res RegionInferencer::inferLetrec(const ast::LetrecExpr *E) {
  // Build the initial scheme from the ML type of f.
  types::TypeId ParamMLTy = Typed.paramTypeOf(E);
  types::TypeId ResultMLTy = Typed.typeOf(E->fnBody());
  RTypeId ParamTy = types().freshFromType(Typed.Table, ParamMLTy);
  RTypeId ResultTy = types().freshFromType(Typed.Table, ResultMLTy);
  EffectVarId Eps = types().freshEffectVar();
  RTypeId SchemeArrow =
      types().mkArrow(ParamTy, Eps, ResultTy, types().freshRegion());

  auto Fun = std::make_unique<FunDecl>();
  Fun->Var = Prog.addVar(std::string(Ctx.text(E->fnName())), SchemeArrow);
  Fun->SchemeArrow = SchemeArrow;
  Fun->ClosRegion = types().freshRegion();
  Fun->EnvDepth = Env.size();
  Prog.varInfo(Fun->Var).Type = SchemeArrow;
  Env.push_back({E->fnName(), Fun->Var, SchemeArrow, Fun.get()});

  // Polymorphic-recursion fixpoint: re-infer the body (recursive uses
  // instantiate the current scheme) until the scheme stops changing.
  std::string PrevFp = fingerprint(SchemeArrow);
  Res BodyRes;
  VarId ParamVar = 0;
  bool Stable = false;
  for (unsigned Iter = 0; Iter != MaxFixpointIters; ++Iter) {
    ParamVar = Prog.addVar(std::string(Ctx.text(E->param())), ParamTy);
    Env.push_back({E->param(), ParamVar, ParamTy, nullptr});
    BodyRes = infer(E->fnBody());
    Env.pop_back();
    types().unify(BodyRes.Type, ResultTy);

    std::set<RegionVarId> Observable = frvTE(Env.size());
    types().freeRegionVars(ParamTy, Observable);
    types().freeRegionVars(ResultTy, Observable);
    std::set<EffectVarId> ObservableEffects = fevTE(Env.size());
    types().freeEffectVars(ParamTy, ObservableEffects);
    types().freeEffectVars(ResultTy, ObservableEffects);
    pruneIntoArrowEffect(Eps, BodyRes.Eff, Observable, ObservableEffects);

    std::string Fp = fingerprint(SchemeArrow);
    if (Fp == PrevFp) {
      Stable = true;
      break;
    }
    PrevFp = std::move(Fp);
  }
  if (!Stable) {
    Diags.error(E->loc(), "region inference did not reach a fixpoint for '" +
                              std::string(Ctx.text(E->fnName())) + "'");
    Env.pop_back();
    return {};
  }

  // Freeze the formal region parameters: quantified = frv(scheme) minus
  // the outer environment, minus the per-use box region of the arrow.
  std::set<RegionVarId> OuterR = frvTE(Fun->EnvDepth);
  OuterR.insert(types().findRegion(Fun->ClosRegion));
  std::set<RegionVarId> SchemeR;
  types().freeRegionVars(Fun->SchemeArrow, SchemeR);
  RegionVarId BoxRegion = types().regionOf(Fun->SchemeArrow);
  for (RegionVarId R : SchemeR)
    if (!OuterR.count(R) && R != BoxRegion)
      Fun->Formals.push_back(R);
  Fun->FormalsFixed = true;

  Res InRes = infer(E->body());
  Env.pop_back();
  if (!InRes.Node || !BodyRes.Node)
    return {};

  RLetrecExpr *N =
      Prog.create<RLetrecExpr>(Fun->Var, Fun->Formals, ParamVar, BodyRes.Node,
                               InRes.Node);
  N->setWriteRegion(Fun->ClosRegion);
  Prog.varInfo(Fun->Var).Letrec = N;
  FunDecls.push_back(std::move(Fun));

  EffectSet Eff = InRes.Eff;
  Eff.Regions.insert(FunDecls.back()->ClosRegion);
  return finish(N, InRes.Type, std::move(Eff));
}

Res RegionInferencer::infer(const ast::Expr *E) {
  using ast::Expr;
  switch (E->kind()) {
  case Expr::Kind::IntLit: {
    RegionVarId R = types().freshRegion();
    RIntExpr *N = Prog.create<RIntExpr>(ast::cast<ast::IntLitExpr>(E)->value());
    N->setWriteRegion(R);
    EffectSet Eff;
    Eff.Regions.insert(R);
    return finish(N, types().mkInt(R), std::move(Eff));
  }
  case Expr::Kind::BoolLit: {
    RegionVarId R = types().freshRegion();
    RBoolExpr *N =
        Prog.create<RBoolExpr>(ast::cast<ast::BoolLitExpr>(E)->value());
    N->setWriteRegion(R);
    EffectSet Eff;
    Eff.Regions.insert(R);
    return finish(N, types().mkBool(R), std::move(Eff));
  }
  case Expr::Kind::UnitLit: {
    RegionVarId R = types().freshRegion();
    RUnitExpr *N = Prog.create<RUnitExpr>();
    N->setWriteRegion(R);
    EffectSet Eff;
    Eff.Regions.insert(R);
    return finish(N, types().mkUnit(R), std::move(Eff));
  }
  case Expr::Kind::Var:
    return inferVar(ast::cast<ast::VarExpr>(E));
  case Expr::Kind::Lambda: {
    const auto *L = ast::cast<ast::LambdaExpr>(E);
    RTypeId ParamTy =
        types().freshFromType(Typed.Table, Typed.paramTypeOf(E));
    VarId ParamVar = Prog.addVar(std::string(Ctx.text(L->param())), ParamTy);
    Env.push_back({L->param(), ParamVar, ParamTy, nullptr});
    Res Body = infer(L->body());
    Env.pop_back();
    if (!Body.Node)
      return {};

    EffectVarId Eps = types().freshEffectVar();
    std::set<RegionVarId> Observable = frvTE(Env.size());
    types().freeRegionVars(ParamTy, Observable);
    types().freeRegionVars(Body.Type, Observable);
    std::set<EffectVarId> ObservableEffects = fevTE(Env.size());
    types().freeEffectVars(ParamTy, ObservableEffects);
    types().freeEffectVars(Body.Type, ObservableEffects);
    pruneIntoArrowEffect(Eps, Body.Eff, Observable, ObservableEffects);

    RegionVarId R = types().freshRegion();
    RTypeId Ty = types().mkArrow(ParamTy, Eps, Body.Type, R);
    RLambdaExpr *N = Prog.create<RLambdaExpr>(ParamVar, Body.Node);
    N->setWriteRegion(R);
    EffectSet Eff;
    Eff.Regions.insert(R);
    return finish(N, Ty, std::move(Eff));
  }
  case Expr::Kind::App: {
    const auto *A = ast::cast<ast::AppExpr>(E);
    Res Fn = infer(A->fn());
    if (!Fn.Node)
      return {};
    Res Arg = infer(A->arg());
    if (!Arg.Node)
      return {};
    assert(types().kind(Fn.Type) == RTypeKind::Arrow &&
           "application of non-arrow survived type checking");
    types().unify(types().child0(Fn.Type), Arg.Type);
    RTypeId ResultTy = types().child1(Fn.Type);
    RAppExpr *N = Prog.create<RAppExpr>(Fn.Node, Arg.Node);
    RegionVarId ClosR = types().regionOf(Fn.Type);
    N->addReadRegion(ClosR);
    EffectSet Eff = Fn.Eff;
    Eff.unionWith(Arg.Eff);
    Eff.Regions.insert(ClosR);
    Eff.EffectVars.insert(types().arrowEffect(Fn.Type));
    return finish(N, ResultTy, std::move(Eff));
  }
  case Expr::Kind::Let: {
    const auto *L = ast::cast<ast::LetExpr>(E);
    Res Init = infer(L->init());
    if (!Init.Node)
      return {};
    VarId V = Prog.addVar(std::string(Ctx.text(L->name())), Init.Type);
    Env.push_back({L->name(), V, Init.Type, nullptr});
    Res Body = infer(L->body());
    Env.pop_back();
    if (!Body.Node)
      return {};
    RLetExpr *N = Prog.create<RLetExpr>(V, Init.Node, Body.Node);
    EffectSet Eff = Init.Eff;
    Eff.unionWith(Body.Eff);
    return finish(N, Body.Type, std::move(Eff));
  }
  case Expr::Kind::Letrec:
    return inferLetrec(ast::cast<ast::LetrecExpr>(E));
  case Expr::Kind::If: {
    const auto *I = ast::cast<ast::IfExpr>(E);
    Res Cond = infer(I->cond());
    if (!Cond.Node)
      return {};
    Res Then = infer(I->thenExpr());
    if (!Then.Node)
      return {};
    Res Else = infer(I->elseExpr());
    if (!Else.Node)
      return {};
    types().unify(Then.Type, Else.Type);
    RIfExpr *N = Prog.create<RIfExpr>(Cond.Node, Then.Node, Else.Node);
    RegionVarId CondR = types().regionOf(Cond.Type);
    N->addReadRegion(CondR);
    EffectSet Eff = Cond.Eff;
    Eff.unionWith(Then.Eff);
    Eff.unionWith(Else.Eff);
    Eff.Regions.insert(CondR);
    return finish(N, Then.Type, std::move(Eff));
  }
  case Expr::Kind::Pair: {
    const auto *P = ast::cast<ast::PairExpr>(E);
    Res First = infer(P->first());
    if (!First.Node)
      return {};
    Res Second = infer(P->second());
    if (!Second.Node)
      return {};
    RegionVarId R = types().freshRegion();
    RTypeId Ty = types().mkPair(First.Type, Second.Type, R);
    RPairExpr *N = Prog.create<RPairExpr>(First.Node, Second.Node);
    N->setWriteRegion(R);
    EffectSet Eff = First.Eff;
    Eff.unionWith(Second.Eff);
    Eff.Regions.insert(R);
    return finish(N, Ty, std::move(Eff));
  }
  case Expr::Kind::Nil: {
    RTypeId Ty = types().freshFromType(Typed.Table, Typed.typeOf(E));
    assert(types().kind(Ty) == RTypeKind::List && "nil must have list type");
    RNilExpr *N = Prog.create<RNilExpr>();
    RegionVarId R = types().regionOf(Ty);
    N->setWriteRegion(R);
    EffectSet Eff;
    Eff.Regions.insert(R);
    return finish(N, Ty, std::move(Eff));
  }
  case Expr::Kind::Cons: {
    const auto *C = ast::cast<ast::ConsExpr>(E);
    Res Head = infer(C->head());
    if (!Head.Node)
      return {};
    Res Tail = infer(C->tail());
    if (!Tail.Node)
      return {};
    assert(types().kind(Tail.Type) == RTypeKind::List && "cons of non-list");
    types().unify(types().child0(Tail.Type), Head.Type);
    RConsExpr *N = Prog.create<RConsExpr>(Head.Node, Tail.Node);
    RegionVarId SpineR = types().regionOf(Tail.Type);
    N->setWriteRegion(SpineR);
    EffectSet Eff = Head.Eff;
    Eff.unionWith(Tail.Eff);
    Eff.Regions.insert(SpineR);
    return finish(N, Tail.Type, std::move(Eff));
  }
  case Expr::Kind::UnOp: {
    const auto *U = ast::cast<ast::UnOpExpr>(E);
    Res Operand = infer(U->operand());
    if (!Operand.Node)
      return {};
    RUnOpExpr *N = Prog.create<RUnOpExpr>(U->op(), Operand.Node);
    RegionVarId OpR = types().regionOf(Operand.Type);
    N->addReadRegion(OpR);
    EffectSet Eff = Operand.Eff;
    Eff.Regions.insert(OpR);
    switch (U->op()) {
    case ast::UnOpKind::Fst:
      return finish(N, types().child0(Operand.Type), std::move(Eff));
    case ast::UnOpKind::Snd:
      return finish(N, types().child1(Operand.Type), std::move(Eff));
    case ast::UnOpKind::Null: {
      RegionVarId R = types().freshRegion();
      N->setWriteRegion(R);
      Eff.Regions.insert(R);
      return finish(N, types().mkBool(R), std::move(Eff));
    }
    case ast::UnOpKind::Hd:
      return finish(N, types().child0(Operand.Type), std::move(Eff));
    case ast::UnOpKind::Tl:
      return finish(N, Operand.Type, std::move(Eff));
    }
    return {};
  }
  case Expr::Kind::BinOp: {
    const auto *B = ast::cast<ast::BinOpExpr>(E);
    Res Lhs = infer(B->lhs());
    if (!Lhs.Node)
      return {};
    Res Rhs = infer(B->rhs());
    if (!Rhs.Node)
      return {};
    RBinOpExpr *N = Prog.create<RBinOpExpr>(B->op(), Lhs.Node, Rhs.Node);
    RegionVarId LR = types().regionOf(Lhs.Type);
    RegionVarId RR = types().regionOf(Rhs.Type);
    N->addReadRegion(LR);
    N->addReadRegion(RR);
    RegionVarId ResR = types().freshRegion();
    N->setWriteRegion(ResR);
    EffectSet Eff = Lhs.Eff;
    Eff.unionWith(Rhs.Eff);
    Eff.Regions.insert(LR);
    Eff.Regions.insert(RR);
    Eff.Regions.insert(ResR);
    bool IsCompare = B->op() == ast::BinOpKind::Lt ||
                     B->op() == ast::BinOpKind::Le ||
                     B->op() == ast::BinOpKind::Eq;
    RTypeId Ty =
        IsCompare ? types().mkBool(ResR) : types().mkInt(ResR);
    return finish(N, Ty, std::move(Eff));
  }
  }
  return {};
}

bool RegionInferencer::run(const ast::Expr *Root) {
  Res R = infer(Root);
  if (!R.Node)
    return false;
  Prog.Root = R.Node;
  // Globals: the regions of the program result, observed at program end.
  std::set<RegionVarId> ResultRegions;
  types().freeRegionVars(R.Type, ResultRegions);
  Prog.GlobalRegions.assign(ResultRegions.begin(), ResultRegions.end());
  return true;
}

std::unique_ptr<RegionProgram>
regions::inferRegions(const ast::Expr *Root, const ast::ASTContext &Ctx,
                      const types::TypedProgram &Typed,
                      DiagnosticEngine &Diags) {
  assert(Typed.Success && "region inference requires a typed program");
  auto Prog = std::make_unique<RegionProgram>();
  RegionInferencer Inf(*Prog, Ctx, Typed, Diags);
  if (!Inf.run(Root))
    return nullptr;
  finalizeRegionProgram(*Prog, Inf.RawEff, Inf.RegAppSubst);
  return Prog;
}
