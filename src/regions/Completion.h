//===----------------------------------------------------------------------===//
///
/// \file
/// Completions: explicit region allocation/deallocation operations
/// attached to program points (paper §2). A completion maps IR nodes to
/// ordered operation lists:
///   * Pre ops run after the node's letregion bindings but before the node
///     evaluates (`alloc_before` / `free_before`);
///   * Post ops run right after the node's value is produced
///     (`alloc_after` / `free_after`);
///   * FreeApp ops (applications only) run after both the function and the
///     argument are evaluated and the closure has been fetched, but before
///     the function body runs (`free_app`, §1).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_REGIONS_COMPLETION_H
#define AFL_REGIONS_COMPLETION_H

#include "regions/RegionExpr.h"

#include <unordered_map>
#include <vector>

namespace afl {
namespace regions {

/// Kind of a completion operation.
enum class COpKind : uint8_t {
  AllocBefore,
  FreeBefore,
  AllocAfter,
  FreeAfter,
  FreeApp,
};

/// Returns "alloc_before" etc.
const char *spelling(COpKind Kind);

/// One completion operation on one region.
struct COp {
  COpKind Kind;
  RegionVarId Region;

  friend bool operator==(const COp &A, const COp &B) {
    return A.Kind == B.Kind && A.Region == B.Region;
  }
};

/// A full program completion.
struct Completion {
  std::unordered_map<RNodeId, std::vector<COp>> Pre;
  std::unordered_map<RNodeId, std::vector<COp>> Post;
  std::unordered_map<RNodeId, std::vector<COp>> FreeApp;

  const std::vector<COp> *preOps(RNodeId Id) const {
    auto It = Pre.find(Id);
    return It == Pre.end() ? nullptr : &It->second;
  }
  const std::vector<COp> *postOps(RNodeId Id) const {
    auto It = Post.find(Id);
    return It == Post.end() ? nullptr : &It->second;
  }
  const std::vector<COp> *freeAppOps(RNodeId Id) const {
    auto It = FreeApp.find(Id);
    return It == FreeApp.end() ? nullptr : &It->second;
  }

  size_t numOps() const {
    size_t N = 0;
    for (const auto &[Id, Ops] : Pre)
      N += Ops.size();
    for (const auto &[Id, Ops] : Post)
      N += Ops.size();
    for (const auto &[Id, Ops] : FreeApp)
      N += Ops.size();
    return N;
  }
};

} // namespace regions
} // namespace afl

#endif // AFL_REGIONS_COMPLETION_H
