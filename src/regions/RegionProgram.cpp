#include "regions/RegionProgram.h"

using namespace afl;
using namespace afl::regions;

namespace {

/// Arena memory is released wholesale, but node members (sets, vectors)
/// own heap allocations that need their destructors.
void destroyNode(RExpr *N) {
  switch (N->kind()) {
  case RExpr::Kind::Int:
    static_cast<RIntExpr *>(N)->~RIntExpr();
    return;
  case RExpr::Kind::Bool:
    static_cast<RBoolExpr *>(N)->~RBoolExpr();
    return;
  case RExpr::Kind::Unit:
    static_cast<RUnitExpr *>(N)->~RUnitExpr();
    return;
  case RExpr::Kind::Var:
    static_cast<RVarExpr *>(N)->~RVarExpr();
    return;
  case RExpr::Kind::Lambda:
    static_cast<RLambdaExpr *>(N)->~RLambdaExpr();
    return;
  case RExpr::Kind::App:
    static_cast<RAppExpr *>(N)->~RAppExpr();
    return;
  case RExpr::Kind::Let:
    static_cast<RLetExpr *>(N)->~RLetExpr();
    return;
  case RExpr::Kind::Letrec:
    static_cast<RLetrecExpr *>(N)->~RLetrecExpr();
    return;
  case RExpr::Kind::RegApp:
    static_cast<RRegAppExpr *>(N)->~RRegAppExpr();
    return;
  case RExpr::Kind::If:
    static_cast<RIfExpr *>(N)->~RIfExpr();
    return;
  case RExpr::Kind::Pair:
    static_cast<RPairExpr *>(N)->~RPairExpr();
    return;
  case RExpr::Kind::Nil:
    static_cast<RNilExpr *>(N)->~RNilExpr();
    return;
  case RExpr::Kind::Cons:
    static_cast<RConsExpr *>(N)->~RConsExpr();
    return;
  case RExpr::Kind::UnOp:
    static_cast<RUnOpExpr *>(N)->~RUnOpExpr();
    return;
  case RExpr::Kind::BinOp:
    static_cast<RBinOpExpr *>(N)->~RBinOpExpr();
    return;
  }
}

} // namespace

RegionProgram::~RegionProgram() {
  for (RExpr *N : nodes())
    destroyNode(N);
}
