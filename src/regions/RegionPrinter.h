//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printer for region-explicit programs in the paper's notation:
/// letregion scopes, @ρ write annotations, region applications, and
/// (optionally) the operations of a completion.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_REGIONS_REGIONPRINTER_H
#define AFL_REGIONS_REGIONPRINTER_H

#include <string>

namespace afl {
namespace regions {
class RegionProgram;
struct Completion;

/// Renders \p Prog. If \p C is non-null its operations are shown inline.
std::string printRegionProgram(const RegionProgram &Prog,
                               const Completion *C = nullptr);

} // namespace regions
} // namespace afl

#endif // AFL_REGIONS_REGIONPRINTER_H
