//===----------------------------------------------------------------------===//
///
/// \file
/// Container for a region-explicit program: the IR tree, the region type
/// table, the value-variable table, and program-level region information.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_REGIONS_REGIONPROGRAM_H
#define AFL_REGIONS_REGIONPROGRAM_H

#include "regions/RegionExpr.h"
#include "support/ArenaPool.h"

#include <string>
#include <vector>

namespace afl {
namespace regions {

/// Metadata for a value variable binding (alpha-renamed: unique VarId per
/// binder occurrence).
struct VarInfo {
  std::string Name;
  RTypeId Type = 0;
  /// Set iff this variable is a letrec-bound region-polymorphic function.
  const RLetrecExpr *Letrec = nullptr;
};

/// A complete region-annotated program: output of T-T region inference and
/// the object all later phases (closure analysis, constraints, completion,
/// interpretation) operate on.
class RegionProgram {
public:
  RegionProgram() = default;
  RegionProgram(const RegionProgram &) = delete;
  RegionProgram &operator=(const RegionProgram &) = delete;
  RegionProgram(RegionProgram &&) = default;
  RegionProgram &operator=(RegionProgram &&) = default;

  /// Nodes are arena-allocated but hold non-trivially-destructible
  /// members (effect sets, region lists); run their destructors here.
  ~RegionProgram();

  RTypeTable Types;

  /// The root expression. Top-level regions (the regions of the program's
  /// result, observed at program end) are listed in GlobalRegions rather
  /// than bound by any node.
  const RExpr *Root = nullptr;

  /// Regions free in the result type: implicitly letregion-bound around
  /// the whole program, read once at program end (the result is observed),
  /// and reclaimed by program exit rather than by an explicit free.
  std::vector<RegionVarId> GlobalRegions;

  //===------------------------------------------------------------------===//
  // Variables
  //===------------------------------------------------------------------===//

  VarId addVar(std::string Name, RTypeId Type) {
    Vars.push_back({std::move(Name), Type, nullptr});
    return static_cast<VarId>(Vars.size() - 1);
  }
  VarInfo &varInfo(VarId V) { return Vars[V]; }
  const VarInfo &varInfo(VarId V) const { return Vars[V]; }
  uint32_t numVars() const { return static_cast<uint32_t>(Vars.size()); }

  //===------------------------------------------------------------------===//
  // Nodes
  //===------------------------------------------------------------------===//

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  const RExpr *node(RNodeId Id) const { return Nodes[Id]; }
  const std::vector<RExpr *> &nodes() const { return Nodes; }

  template <typename T, typename... Args> T *create(Args &&...ArgValues) {
    T *Node = Mem.create<T>(static_cast<RNodeId>(Nodes.size()),
                            std::forward<Args>(ArgValues)...);
    Nodes.push_back(Node);
    return Node;
  }

  /// Mutable access for finalization passes.
  RExpr *nodeMut(RNodeId Id) { return Nodes[Id]; }

private:
  PooledArena Mem;
  std::vector<RExpr *> Nodes;
  std::vector<VarInfo> Vars;
};

} // namespace regions
} // namespace afl

#endif // AFL_REGIONS_REGIONPROGRAM_H
