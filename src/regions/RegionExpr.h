//===----------------------------------------------------------------------===//
///
/// \file
/// The region-explicit intermediate language (paper §2, Fig. 2 syntax):
/// every value-producing expression is annotated with the region it writes
/// (@ρ), `letregion` introduces region variables, `letrec` functions are
/// region-polymorphic and used through region application `f[ρ⃗]@ρ`.
///
/// Completion operations (`alloc_before`, `alloc_after`, `free_before`,
/// `free_after`, `free_app`) are *annotations attached to nodes*, kept in a
/// separate \c Completion map so that the same IR is shared by the
/// T-T-equivalent conservative completion and the A-F-L completion.
///
/// Nodes carry the analysis results needed downstream: the region type μ,
/// the (resolved) effect, the regions read/written by the node's own
/// evaluation step, and the "overall effect" (§4.2) that bounds where
/// choice points may change region states.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_REGIONS_REGIONEXPR_H
#define AFL_REGIONS_REGIONEXPR_H

#include "ast/Expr.h"
#include "regions/RegionTypes.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <set>
#include <vector>

namespace afl {
namespace regions {

/// Unique id of a value variable binding (alpha-renamed: one id per
/// binder). Ids index RegionProgram::Vars.
using VarId = uint32_t;

/// Dense id of an IR node within its RegionProgram.
using RNodeId = uint32_t;

/// Base class of region-explicit IR nodes.
class RExpr {
public:
  enum class Kind {
    Int,
    Bool,
    Unit,
    Var,
    Lambda,
    App,
    Let,
    Letrec,
    RegApp,
    If,
    Pair,
    Nil,
    Cons,
    UnOp,
    BinOp,
  };

  Kind kind() const { return K; }
  RNodeId id() const { return Id; }

  /// The region type μ of this expression (canonical lookups go through
  /// the program's RTypeTable).
  RTypeId type() const { return Type; }

  /// Region written by this node's own evaluation step (the @ρ
  /// annotation), or ~0u when the node writes nothing (Var/App/Let/...).
  static constexpr RegionVarId NoRegion = ~0u;
  RegionVarId writeRegion() const { return WriteRegion; }
  bool hasWriteRegion() const { return WriteRegion != NoRegion; }

  /// Regions read by this node's own evaluation step (e.g. the closure
  /// region at an application; the pair region at fst/snd).
  const std::vector<RegionVarId> &readRegions() const { return ReadRegions; }

  /// The node's effect (paper §2): every region it may read or write while
  /// evaluating, fully resolved to canonical region variables.
  const std::set<RegionVarId> &effect() const { return Effect; }

  /// The overall effect at this node (§4.2): the arrow effect of the
  /// enclosing abstraction plus letregion-bound variables in scope inside
  /// that abstraction. Only these regions may change state on entry/exit
  /// of this node.
  const std::set<RegionVarId> &overallEffect() const { return OverallEffect; }

  /// Region variables letregion-bound *around* this node ("letregion ρ⃗ in
  /// e end" is represented as an annotation so node identity is stable
  /// across analysis phases). The letregion scope encloses any completion
  /// operations attached to the node.
  const std::vector<RegionVarId> &boundRegions() const { return BoundRegions; }

  // Mutators used by inference/finalization passes only.
  void setType(RTypeId T) { Type = T; }
  void setWriteRegion(RegionVarId R) { WriteRegion = R; }
  void addReadRegion(RegionVarId R) { ReadRegions.push_back(R); }
  std::set<RegionVarId> &effectMut() { return Effect; }
  std::set<RegionVarId> &overallEffectMut() { return OverallEffect; }
  std::vector<RegionVarId> &boundRegionsMut() { return BoundRegions; }
  std::vector<RegionVarId> &readRegionsMut() { return ReadRegions; }

protected:
  RExpr(Kind K, RNodeId Id) : K(K), Id(Id) {}

private:
  Kind K;
  RNodeId Id;
  RTypeId Type = 0;
  RegionVarId WriteRegion = NoRegion;
  std::vector<RegionVarId> ReadRegions;
  std::vector<RegionVarId> BoundRegions;
  std::set<RegionVarId> Effect;
  std::set<RegionVarId> OverallEffect;
};

/// Integer constant "n @ ρ".
class RIntExpr : public RExpr {
public:
  RIntExpr(RNodeId Id, int64_t Value) : RExpr(Kind::Int, Id), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::Int; }

private:
  int64_t Value;
};

/// Boolean constant "b @ ρ".
class RBoolExpr : public RExpr {
public:
  RBoolExpr(RNodeId Id, bool Value) : RExpr(Kind::Bool, Id), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::Bool; }

private:
  bool Value;
};

/// Unit constant "() @ ρ".
class RUnitExpr : public RExpr {
public:
  explicit RUnitExpr(RNodeId Id) : RExpr(Kind::Unit, Id) {}
  static bool classof(const RExpr *E) { return E->kind() == Kind::Unit; }
};

/// Variable reference (no memory operation).
class RVarExpr : public RExpr {
public:
  RVarExpr(RNodeId Id, VarId Var) : RExpr(Kind::Var, Id), Var(Var) {}
  VarId var() const { return Var; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::Var; }

private:
  VarId Var;
};

/// "λx.e @ ρ" — writes an ordinary closure into ρ.
class RLambdaExpr : public RExpr {
public:
  RLambdaExpr(RNodeId Id, VarId Param, const RExpr *Body)
      : RExpr(Kind::Lambda, Id), Param(Param), Body(Body) {}
  VarId param() const { return Param; }
  const RExpr *body() const { return Body; }

  /// Region variables in scope that the closure (body + type) actually
  /// mentions; abstract region environments are restricted to this set.
  const std::set<RegionVarId> &freeRegions() const { return FreeRegions; }
  std::set<RegionVarId> &freeRegionsMut() { return FreeRegions; }

  static bool classof(const RExpr *E) { return E->kind() == Kind::Lambda; }

private:
  VarId Param;
  const RExpr *Body;
  std::set<RegionVarId> FreeRegions;
};

/// Application "e1 e2" — reads the closure region of e1.
class RAppExpr : public RExpr {
public:
  RAppExpr(RNodeId Id, const RExpr *Fn, const RExpr *Arg)
      : RExpr(Kind::App, Id), Fn(Fn), Arg(Arg) {}
  const RExpr *fn() const { return Fn; }
  const RExpr *arg() const { return Arg; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::App; }

private:
  const RExpr *Fn;
  const RExpr *Arg;
};

/// "let x = e1 in e2 end".
class RLetExpr : public RExpr {
public:
  RLetExpr(RNodeId Id, VarId Var, const RExpr *Init, const RExpr *Body)
      : RExpr(Kind::Let, Id), Var(Var), Init(Init), Body(Body) {}
  VarId var() const { return Var; }
  const RExpr *init() const { return Init; }
  const RExpr *body() const { return Body; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::Let; }

private:
  VarId Var;
  const RExpr *Init;
  const RExpr *Body;
};

/// "letrec f[ρ̂](x) @ ρf = e1 in e2 end" — stores a region-polymorphic
/// closure for f into ρf; each use of f is an RRegAppExpr.
class RLetrecExpr : public RExpr {
public:
  RLetrecExpr(RNodeId Id, VarId Fn, std::vector<RegionVarId> Formals,
              VarId Param, const RExpr *FnBody, const RExpr *Body)
      : RExpr(Kind::Letrec, Id), Fn(Fn), Formals(std::move(Formals)),
        Param(Param), FnBody(FnBody), Body(Body) {}
  VarId fn() const { return Fn; }
  const std::vector<RegionVarId> &formals() const { return Formals; }
  std::vector<RegionVarId> &formalsMut() { return Formals; }
  VarId param() const { return Param; }
  const RExpr *fnBody() const { return FnBody; }
  const RExpr *body() const { return Body; }

  /// Like RLambdaExpr::freeRegions, for the recursive function's body:
  /// region variables from *enclosing* scopes (formals excluded) that the
  /// body mentions.
  const std::set<RegionVarId> &freeRegions() const { return FreeRegions; }
  std::set<RegionVarId> &freeRegionsMut() { return FreeRegions; }

  static bool classof(const RExpr *E) { return E->kind() == Kind::Letrec; }

private:
  VarId Fn;
  std::vector<RegionVarId> Formals;
  VarId Param;
  const RExpr *FnBody;
  const RExpr *Body;
  std::set<RegionVarId> FreeRegions;
};

/// Region application "f[ρ1,...,ρn] @ ρ" — reads f's region-polymorphic
/// closure and writes an ordinary closure into ρ.
class RRegAppExpr : public RExpr {
public:
  RRegAppExpr(RNodeId Id, VarId Fn, std::vector<RegionVarId> Actuals)
      : RExpr(Kind::RegApp, Id), Fn(Fn), Actuals(std::move(Actuals)) {}
  VarId fn() const { return Fn; }
  const std::vector<RegionVarId> &actuals() const { return Actuals; }
  std::vector<RegionVarId> &actualsMut() { return Actuals; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::RegApp; }

private:
  VarId Fn;
  std::vector<RegionVarId> Actuals;
};

/// "if e1 then e2 else e3" — reads e1's boolean region.
class RIfExpr : public RExpr {
public:
  RIfExpr(RNodeId Id, const RExpr *Cond, const RExpr *Then, const RExpr *Else)
      : RExpr(Kind::If, Id), Cond(Cond), Then(Then), Else(Else) {}
  const RExpr *cond() const { return Cond; }
  const RExpr *thenExpr() const { return Then; }
  const RExpr *elseExpr() const { return Else; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::If; }

private:
  const RExpr *Cond;
  const RExpr *Then;
  const RExpr *Else;
};

/// "(e1, e2) @ ρ".
class RPairExpr : public RExpr {
public:
  RPairExpr(RNodeId Id, const RExpr *First, const RExpr *Second)
      : RExpr(Kind::Pair, Id), First(First), Second(Second) {}
  const RExpr *first() const { return First; }
  const RExpr *second() const { return Second; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::Pair; }

private:
  const RExpr *First;
  const RExpr *Second;
};

/// "nil @ ρ" — writes the empty-list witness into the spine region.
class RNilExpr : public RExpr {
public:
  explicit RNilExpr(RNodeId Id) : RExpr(Kind::Nil, Id) {}
  static bool classof(const RExpr *E) { return E->kind() == Kind::Nil; }
};

/// "e1 :: e2 @ ρ" — writes a cons cell into the spine region.
class RConsExpr : public RExpr {
public:
  RConsExpr(RNodeId Id, const RExpr *Head, const RExpr *Tail)
      : RExpr(Kind::Cons, Id), Head(Head), Tail(Tail) {}
  const RExpr *head() const { return Head; }
  const RExpr *tail() const { return Tail; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::Cons; }

private:
  const RExpr *Head;
  const RExpr *Tail;
};

/// "fst e / snd e / null e / hd e / tl e" — reads the operand's region;
/// null writes its boolean result into a fresh region.
class RUnOpExpr : public RExpr {
public:
  RUnOpExpr(RNodeId Id, ast::UnOpKind Op, const RExpr *Operand)
      : RExpr(Kind::UnOp, Id), Op(Op), Operand(Operand) {}
  ast::UnOpKind op() const { return Op; }
  const RExpr *operand() const { return Operand; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::UnOp; }

private:
  ast::UnOpKind Op;
  const RExpr *Operand;
};

/// "e1 op e2 @ ρ" — reads both operands' regions, writes the boxed result.
class RBinOpExpr : public RExpr {
public:
  RBinOpExpr(RNodeId Id, ast::BinOpKind Op, const RExpr *Lhs,
             const RExpr *Rhs)
      : RExpr(Kind::BinOp, Id), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  ast::BinOpKind op() const { return Op; }
  const RExpr *lhs() const { return Lhs; }
  const RExpr *rhs() const { return Rhs; }
  static bool classof(const RExpr *E) { return E->kind() == Kind::BinOp; }

private:
  ast::BinOpKind Op;
  const RExpr *Lhs;
  const RExpr *Rhs;
};

/// LLVM-style checked casts over the RExpr hierarchy.
template <typename T> bool isa(const RExpr *E) { return T::classof(E); }

template <typename T> const T *cast(const RExpr *E) {
  assert(isa<T>(E) && "cast to wrong RExpr kind");
  return static_cast<const T *>(E);
}

template <typename T> const T *dyn_cast(const RExpr *E) {
  return isa<T>(E) ? static_cast<const T *>(E) : nullptr;
}

} // namespace regions
} // namespace afl

#endif // AFL_REGIONS_REGIONEXPR_H
