//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validator for finalized region programs and completions.
/// Used by tests and as a debugging aid: catches analysis bugs early
/// (before they surface as runtime region faults).
///
/// Program invariants checked:
///   * every region variable an expression mentions (writes, reads,
///     region-application actuals, letregion bindings) is in scope:
///     a global, bound by an enclosing letregion annotation, or a formal
///     of the enclosing letrec body;
///   * region variables are canonical (their own union-find
///     representative);
///   * letrec formals are distinct and never shadow in-scope variables;
///   * region-application actual counts match the callee's formals;
///   * a node's effect contains its own read/write regions;
///   * a node's overall effect contains every region its completion
///     choice points could name (its boundRegions plus ambient effect).
///
/// Completion invariants checked:
///   * operations only name regions that are in scope at their node;
///   * free_app operations only appear on application nodes.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_REGIONS_VALIDATOR_H
#define AFL_REGIONS_VALIDATOR_H

#include "regions/Completion.h"
#include "regions/RegionProgram.h"

#include <string>
#include <vector>

namespace afl {
namespace regions {

/// Validates \p Prog; returns human-readable violation descriptions
/// (empty = valid).
std::vector<std::string> validateRegionProgram(const RegionProgram &Prog);

/// Validates \p C against \p Prog.
std::vector<std::string> validateCompletion(const RegionProgram &Prog,
                                            const Completion &C);

} // namespace regions
} // namespace afl

#endif // AFL_REGIONS_VALIDATOR_H
