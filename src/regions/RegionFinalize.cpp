#include "regions/RegionFinalize.h"

#include <algorithm>
#include <map>

using namespace afl;
using namespace afl::regions;

namespace {

/// Appends the children of \p N that belong to the *same placement domain*
/// (i.e., everything except lambda bodies and letrec function bodies,
/// which start their own domains).
void inDomainChildren(const RExpr *N, std::vector<const RExpr *> &Out) {
  switch (N->kind()) {
  case RExpr::Kind::Int:
  case RExpr::Kind::Bool:
  case RExpr::Kind::Unit:
  case RExpr::Kind::Var:
  case RExpr::Kind::Nil:
  case RExpr::Kind::RegApp:
  case RExpr::Kind::Lambda: // body is a separate domain
    return;
  case RExpr::Kind::App: {
    const auto *A = cast<RAppExpr>(N);
    Out.push_back(A->fn());
    Out.push_back(A->arg());
    return;
  }
  case RExpr::Kind::Let: {
    const auto *L = cast<RLetExpr>(N);
    Out.push_back(L->init());
    Out.push_back(L->body());
    return;
  }
  case RExpr::Kind::Letrec: {
    // fnBody is a separate domain; the in-scope continuation is same-domain.
    Out.push_back(cast<RLetrecExpr>(N)->body());
    return;
  }
  case RExpr::Kind::If: {
    const auto *I = cast<RIfExpr>(N);
    Out.push_back(I->cond());
    Out.push_back(I->thenExpr());
    Out.push_back(I->elseExpr());
    return;
  }
  case RExpr::Kind::Pair: {
    const auto *P = cast<RPairExpr>(N);
    Out.push_back(P->first());
    Out.push_back(P->second());
    return;
  }
  case RExpr::Kind::Cons: {
    const auto *C = cast<RConsExpr>(N);
    Out.push_back(C->head());
    Out.push_back(C->tail());
    return;
  }
  case RExpr::Kind::UnOp:
    Out.push_back(cast<RUnOpExpr>(N)->operand());
    return;
  case RExpr::Kind::BinOp: {
    const auto *B = cast<RBinOpExpr>(N);
    Out.push_back(B->lhs());
    Out.push_back(B->rhs());
    return;
  }
  }
}

class Finalizer {
public:
  Finalizer(RegionProgram &Prog, std::vector<EffectSet> &RawEff,
            const std::unordered_map<RNodeId, RSubst> &RegAppSubst)
      : Prog(Prog), RawEff(RawEff), RegAppSubst(RegAppSubst) {}

  void run() {
    canonicalizeGlobals();
    resolveNode(Prog.nodeMut(Prog.Root->id()));
    std::set<RegionVarId> OuterBound(Prog.GlobalRegions.begin(),
                                     Prog.GlobalRegions.end());
    placeDomain(Prog.Root, OuterBound);
    std::set<RegionVarId> RootAmbient(Prog.GlobalRegions.begin(),
                                      Prog.GlobalRegions.end());
    walkOverall(Prog.nodeMut(Prog.Root->id()), RootAmbient);
  }

private:
  RegionVarId canon(RegionVarId R) const { return Prog.Types.findRegion(R); }

  void canonicalizeGlobals() {
    std::set<RegionVarId> G;
    for (RegionVarId R : Prog.GlobalRegions)
      G.insert(canon(R));
    Prog.GlobalRegions.assign(G.begin(), G.end());
  }

  /// The (canonical) regions the latent effect of arrow type \p Arrow may
  /// touch.
  std::set<RegionVarId> latentRegions(RTypeId Arrow) const {
    EffectSet Probe;
    Probe.EffectVars.insert(Prog.Types.arrowEffect(Arrow));
    return Prog.Types.regionsOf(Probe);
  }

  //===------------------------------------------------------------------===//
  // Pass 1: canonicalize node annotations, resolve effects and actuals.
  //===------------------------------------------------------------------===//

  void resolveNode(RExpr *N) {
    // Write/read regions.
    if (N->hasWriteRegion())
      N->setWriteRegion(canon(N->writeRegion()));
    for (RegionVarId &R : N->readRegionsMut())
      R = canon(R);

    // Resolved cumulative effect.
    if (N->id() < RawEff.size())
      N->effectMut() = Prog.Types.regionsOf(RawEff[N->id()]);

    switch (N->kind()) {
    case RExpr::Kind::Letrec: {
      auto *L = static_cast<RLetrecExpr *>(N);
      std::set<RegionVarId> Seen;
      std::vector<RegionVarId> Formals;
      for (RegionVarId R : L->formals()) {
        RegionVarId C = canon(R);
        // Unification may have merged two formals (the function is then
        // used with aliased actuals everywhere); keep one copy.
        if (Seen.insert(C).second)
          Formals.push_back(C);
      }
      L->formalsMut() = Formals;
      resolveNode(Prog.nodeMut(L->fnBody()->id()));
      resolveNode(Prog.nodeMut(L->body()->id()));

      // Free regions of the recursive function's body, excluding formals
      // and the scheme arrow's own box region (a per-use placeholder that
      // is substituted fresh at every region application and never
      // mentioned by any environment).
      std::set<RegionVarId> Free;
      Prog.Types.freeRegionVars(Prog.varInfo(L->fn()).Type, Free);
      Free.insert(canon(N->writeRegion()));
      for (RegionVarId F : Formals)
        Free.erase(F);
      Free.erase(Prog.Types.regionOf(Prog.varInfo(L->fn()).Type));
      L->freeRegionsMut() = Free;
      return;
    }
    case RExpr::Kind::RegApp: {
      auto *RA = static_cast<RRegAppExpr *>(N);
      auto It = RegAppSubst.find(N->id());
      assert(It != RegAppSubst.end() && "region application without subst");
      const RSubst &Subst = It->second;
      const RLetrecExpr *Callee = Prog.varInfo(RA->fn()).Letrec;
      assert(Callee && "region application of a non-letrec variable");
      std::vector<RegionVarId> Actuals;
      for (RegionVarId Formal : Callee->formals()) {
        RegionVarId Image = Formal;
        for (const auto &[From, To] : Subst.Regions) {
          if (canon(From) == Formal) {
            Image = To;
            break;
          }
        }
        Actuals.push_back(canon(Image));
      }
      RA->actualsMut() = Actuals;
      return;
    }
    case RExpr::Kind::Lambda: {
      auto *L = static_cast<RLambdaExpr *>(N);
      resolveNode(Prog.nodeMut(L->body()->id()));
      std::set<RegionVarId> Free;
      Prog.Types.freeRegionVars(N->type(), Free);
      L->freeRegionsMut() = Free;
      return;
    }
    default:
      break;
    }

    std::vector<const RExpr *> Children;
    inDomainChildren(N, Children);
    for (const RExpr *C : Children)
      resolveNode(Prog.nodeMut(C->id()));
  }

  //===------------------------------------------------------------------===//
  // Pass 2: letregion placement.
  //===------------------------------------------------------------------===//

  /// Regions this node itself mentions (its own memory operations, its
  /// value's type, region-application actuals; for letrec nodes also the
  /// scheme minus formals).
  std::set<RegionVarId> ownMentions(const RExpr *N) const {
    std::set<RegionVarId> Out;
    if (N->hasWriteRegion())
      Out.insert(N->writeRegion());
    for (RegionVarId R : N->readRegions())
      Out.insert(R);
    Prog.Types.freeRegionVars(N->type(), Out);
    if (const auto *RA = dyn_cast<RRegAppExpr>(N))
      for (RegionVarId R : RA->actuals())
        Out.insert(R);
    if (const auto *L = dyn_cast<RLetrecExpr>(N)) {
      std::set<RegionVarId> Scheme;
      Prog.Types.freeRegionVars(Prog.varInfo(L->fn()).Type, Scheme);
      for (RegionVarId F : L->formals())
        Scheme.erase(F);
      // The scheme arrow's box region is a per-use placeholder; it is
      // not a mention (nothing binds or accesses it).
      Scheme.erase(Prog.Types.regionOf(Prog.varInfo(L->fn()).Type));
      Out.insert(Scheme.begin(), Scheme.end());
    }
    // Lambda free regions already flow in through the type (the latent
    // effect is part of frv of the arrow).
    std::set<RegionVarId> Canon;
    for (RegionVarId R : Out)
      Canon.insert(canon(R));
    return Canon;
  }

  /// All regions mentioned within \p N's subtree, staying inside the
  /// placement domain (memoized).
  const std::set<RegionVarId> &mentioned(const RExpr *N) {
    auto It = MentionedMemo.find(N->id());
    if (It != MentionedMemo.end())
      return It->second;
    std::set<RegionVarId> M = ownMentions(N);
    std::vector<const RExpr *> Children;
    inDomainChildren(N, Children);
    for (const RExpr *C : Children) {
      const std::set<RegionVarId> &MC = mentioned(C);
      M.insert(MC.begin(), MC.end());
    }
    return MentionedMemo.emplace(N->id(), std::move(M)).first->second;
  }

  /// LCA placement of \p ToPlace within the subtree rooted at \p N.
  /// Invariant: every region in \p ToPlace is mentioned only inside \p N's
  /// subtree and does not occur in \p N's value type.
  void place(const RExpr *N, const std::set<RegionVarId> &ToPlace) {
    if (ToPlace.empty())
      return;
    std::vector<const RExpr *> Children;
    inDomainChildren(N, Children);
    std::set<RegionVarId> Own = ownMentions(N);
    std::map<const RExpr *, std::set<RegionVarId>> Pushed;
    std::vector<RegionVarId> BindHere;
    for (RegionVarId R : ToPlace) {
      const RExpr *Target = nullptr;
      bool Multi = false;
      for (const RExpr *C : Children) {
        if (mentioned(C).count(R)) {
          if (Target)
            Multi = true;
          Target = C;
        }
      }
      bool CanPush = Target && !Multi && !Own.count(R);
      if (CanPush) {
        std::set<RegionVarId> ChildType;
        Prog.Types.freeRegionVars(Target->type(), ChildType);
        std::set<RegionVarId> ChildTypeCanon;
        for (RegionVarId T : ChildType)
          ChildTypeCanon.insert(canon(T));
        if (ChildTypeCanon.count(R))
          CanPush = false;
      }
      if (CanPush)
        Pushed[Target].insert(R);
      else
        BindHere.push_back(R);
    }
    if (!BindHere.empty()) {
      std::sort(BindHere.begin(), BindHere.end());
      RExpr *Mut = Prog.nodeMut(N->id());
      for (RegionVarId R : BindHere)
        Mut->boundRegionsMut().push_back(R);
    }
    for (const auto &[Child, S] : Pushed)
      place(Child, S);
  }

  void placeDomain(const RExpr *Body, const std::set<RegionVarId> &OuterBound) {
    MentionedMemo.clear();
    std::set<RegionVarId> Locals;
    for (RegionVarId R : mentioned(Body))
      if (!OuterBound.count(R))
        Locals.insert(R);
    place(Body, Locals);

    std::set<RegionVarId> NewBound = OuterBound;
    Locals.insert(NewBound.begin(), NewBound.end());
    std::swap(Locals, NewBound);

    // Recurse into inner domains. Collect them first: MentionedMemo is
    // cleared per domain, so finish this domain's work before recursing.
    std::vector<const RExpr *> InnerBodies;
    std::vector<std::set<RegionVarId>> InnerBounds;
    collectInnerDomains(Body, NewBound, InnerBodies, InnerBounds);
    for (size_t I = 0; I != InnerBodies.size(); ++I)
      placeDomain(InnerBodies[I], InnerBounds[I]);
  }

  void collectInnerDomains(const RExpr *N, const std::set<RegionVarId> &Bound,
                           std::vector<const RExpr *> &Bodies,
                           std::vector<std::set<RegionVarId>> &Bounds) {
    if (const auto *L = dyn_cast<RLambdaExpr>(N)) {
      Bodies.push_back(L->body());
      Bounds.push_back(Bound);
      return;
    }
    if (const auto *L = dyn_cast<RLetrecExpr>(N)) {
      std::set<RegionVarId> B = Bound;
      for (RegionVarId F : L->formals())
        B.insert(F);
      Bodies.push_back(L->fnBody());
      Bounds.push_back(std::move(B));
      collectInnerDomains(L->body(), Bound, Bodies, Bounds);
      return;
    }
    std::vector<const RExpr *> Children;
    inDomainChildren(N, Children);
    for (const RExpr *C : Children)
      collectInnerDomains(C, Bound, Bodies, Bounds);
  }

  //===------------------------------------------------------------------===//
  // Pass 3: overall effects.
  //===------------------------------------------------------------------===//

  void walkOverall(RExpr *N, const std::set<RegionVarId> &Ambient) {
    std::set<RegionVarId> Amb = Ambient;
    for (RegionVarId R : N->boundRegions())
      Amb.insert(R);
    N->overallEffectMut() = Amb;

    if (auto *L = dyn_cast<RLambdaExpr>(N)) {
      walkOverall(Prog.nodeMut(L->body()->id()), latentRegions(N->type()));
      return;
    }
    if (auto *L = dyn_cast<RLetrecExpr>(N)) {
      walkOverall(Prog.nodeMut(L->fnBody()->id()),
                  latentRegions(Prog.varInfo(L->fn()).Type));
      walkOverall(Prog.nodeMut(L->body()->id()), Amb);
      return;
    }
    std::vector<const RExpr *> Children;
    inDomainChildren(N, Children);
    for (const RExpr *C : Children)
      walkOverall(Prog.nodeMut(C->id()), Amb);
  }

  RegionProgram &Prog;
  std::vector<EffectSet> &RawEff;
  const std::unordered_map<RNodeId, RSubst> &RegAppSubst;
  std::unordered_map<RNodeId, std::set<RegionVarId>> MentionedMemo;
};

} // namespace

void regions::finalizeRegionProgram(
    RegionProgram &Prog, std::vector<EffectSet> &RawEff,
    const std::unordered_map<RNodeId, RSubst> &RegAppSubst) {
  Finalizer F(Prog, RawEff, RegAppSubst);
  F.run();
}
