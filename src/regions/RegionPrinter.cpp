#include "regions/RegionPrinter.h"

#include "regions/Completion.h"
#include "regions/RegionProgram.h"

using namespace afl;
using namespace afl::regions;

namespace {

class Printer {
public:
  Printer(const RegionProgram &Prog, const Completion *C) : Prog(Prog), C(C) {}

  std::string Out;

  void print(const RExpr *N, unsigned Indent) {
    bool HasRegions = !N->boundRegions().empty();
    const std::vector<COp> *Pre = C ? C->preOps(N->id()) : nullptr;
    const std::vector<COp> *Post = C ? C->postOps(N->id()) : nullptr;
    if (HasRegions) {
      line(Indent, "letregion " + regionList(N->boundRegions()) + " in");
      ++Indent;
    }
    if (Pre)
      for (const COp &Op : *Pre)
        line(Indent, std::string(spelling(Op.Kind)) + " " + reg(Op.Region));
    printCore(N, Indent);
    if (Post)
      for (const COp &Op : *Post)
        line(Indent, std::string(spelling(Op.Kind)) + " " + reg(Op.Region));
    if (HasRegions)
      line(Indent - 1, "end");
  }

private:
  void line(unsigned Indent, const std::string &Text) {
    Out.append(2 * Indent, ' ');
    Out += Text;
    Out += '\n';
  }

  static std::string reg(RegionVarId R) { return "r" + std::to_string(R); }

  static std::string regionList(const std::vector<RegionVarId> &Rs) {
    std::string S;
    for (size_t I = 0; I != Rs.size(); ++I) {
      if (I)
        S += ", ";
      S += reg(Rs[I]);
    }
    return S;
  }

  std::string var(VarId V) const {
    return Prog.varInfo(V).Name + "#" + std::to_string(V);
  }

  std::string at(const RExpr *N) const {
    return N->hasWriteRegion() ? ("@" + reg(N->writeRegion())) : "";
  }

  void printCore(const RExpr *N, unsigned Indent) {
    switch (N->kind()) {
    case RExpr::Kind::Int:
      line(Indent, std::to_string(cast<RIntExpr>(N)->value()) + at(N));
      return;
    case RExpr::Kind::Bool:
      line(Indent,
           std::string(cast<RBoolExpr>(N)->value() ? "true" : "false") +
               at(N));
      return;
    case RExpr::Kind::Unit:
      line(Indent, "()" + at(N));
      return;
    case RExpr::Kind::Var:
      line(Indent, var(cast<RVarExpr>(N)->var()));
      return;
    case RExpr::Kind::Lambda: {
      const auto *L = cast<RLambdaExpr>(N);
      line(Indent, "(fn " + var(L->param()) + " =>");
      print(L->body(), Indent + 1);
      line(Indent, ")" + at(N));
      return;
    }
    case RExpr::Kind::App: {
      const auto *A = cast<RAppExpr>(N);
      line(Indent, "apply");
      print(A->fn(), Indent + 1);
      print(A->arg(), Indent + 1);
      if (C) {
        if (const std::vector<COp> *Ops = C->freeAppOps(N->id()))
          for (const COp &Op : *Ops)
            line(Indent + 1,
                 std::string(spelling(Op.Kind)) + " " + reg(Op.Region));
      }
      line(Indent, "endapply");
      return;
    }
    case RExpr::Kind::Let: {
      const auto *L = cast<RLetExpr>(N);
      line(Indent, "let " + var(L->var()) + " =");
      print(L->init(), Indent + 1);
      line(Indent, "in");
      print(L->body(), Indent + 1);
      line(Indent, "end");
      return;
    }
    case RExpr::Kind::Letrec: {
      const auto *L = cast<RLetrecExpr>(N);
      line(Indent, "letrec " + var(L->fn()) + "[" +
                       regionList(L->formals()) + "](" + var(L->param()) +
                       ")" + at(N) + " =");
      print(L->fnBody(), Indent + 1);
      line(Indent, "in");
      print(L->body(), Indent + 1);
      line(Indent, "end");
      return;
    }
    case RExpr::Kind::RegApp: {
      const auto *RA = cast<RRegAppExpr>(N);
      line(Indent,
           var(RA->fn()) + "[" + regionList(RA->actuals()) + "]" + at(N));
      return;
    }
    case RExpr::Kind::If: {
      const auto *I = cast<RIfExpr>(N);
      line(Indent, "if");
      print(I->cond(), Indent + 1);
      line(Indent, "then");
      print(I->thenExpr(), Indent + 1);
      line(Indent, "else");
      print(I->elseExpr(), Indent + 1);
      line(Indent, "endif");
      return;
    }
    case RExpr::Kind::Pair: {
      const auto *P = cast<RPairExpr>(N);
      line(Indent, "pair" + at(N));
      print(P->first(), Indent + 1);
      print(P->second(), Indent + 1);
      line(Indent, "endpair");
      return;
    }
    case RExpr::Kind::Nil:
      line(Indent, "nil" + at(N));
      return;
    case RExpr::Kind::Cons: {
      const auto *Cn = cast<RConsExpr>(N);
      line(Indent, "cons" + at(N));
      print(Cn->head(), Indent + 1);
      print(Cn->tail(), Indent + 1);
      line(Indent, "endcons");
      return;
    }
    case RExpr::Kind::UnOp: {
      const auto *U = cast<RUnOpExpr>(N);
      line(Indent, std::string(ast::spelling(U->op())) + at(N));
      print(U->operand(), Indent + 1);
      line(Indent, "endop");
      return;
    }
    case RExpr::Kind::BinOp: {
      const auto *B = cast<RBinOpExpr>(N);
      line(Indent, std::string("binop ") + ast::spelling(B->op()) + at(N));
      print(B->lhs(), Indent + 1);
      print(B->rhs(), Indent + 1);
      line(Indent, "endop");
      return;
    }
    }
  }

  const RegionProgram &Prog;
  const Completion *C;
};

} // namespace

std::string regions::printRegionProgram(const RegionProgram &Prog,
                                        const Completion *C) {
  Printer P(Prog, C);
  std::string Header = "program globals: ";
  for (size_t I = 0; I != Prog.GlobalRegions.size(); ++I) {
    if (I)
      Header += ", ";
    Header += "r" + std::to_string(Prog.GlobalRegions[I]);
  }
  P.Out = Header + "\n";
  P.print(Prog.Root, 0);
  return P.Out;
}
