#include "driver/Server.h"

#include "support/ThreadPool.h"

#include <csignal>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>

using namespace afl;
using namespace afl::driver;
using support::ListenSocket;
using support::Socket;

namespace {

/// Written once before the handlers are installed, read from the handler.
std::atomic<bool> *SignalStopFlag = nullptr;

void onStopSignal(int) {
  if (SignalStopFlag)
    SignalStopFlag->store(true, std::memory_order_relaxed);
}

std::string oversizeMessage(size_t Cap) {
  return "request exceeds the " + std::to_string(Cap) + "-byte line limit";
}

} // namespace

int Server::run(std::istream &In, std::ostream &Out, size_t MaxRequestBytes) {
  Session S;
  LineSplitter Split(MaxRequestBytes);
  char Buf[4096];
  bool Eof = false;
  while (!S.shutdownRequested()) {
    std::string Line;
    LineSplitter::Item It = Split.next(Line);
    if (It == LineSplitter::Item::None) {
      if (Eof)
        break;
      In.read(Buf, sizeof(Buf));
      std::streamsize N = In.gcount();
      if (N > 0) {
        Split.feed(Buf, static_cast<size_t>(N));
      } else {
        Split.finish();
        Eof = true;
      }
      continue;
    }
    if (It == LineSplitter::Item::Oversize) {
      Out << S.transportError(oversizeMessage(MaxRequestBytes)) << "\n";
      Out.flush();
      continue;
    }
    if (Line.empty())
      continue;
    Out << S.handleLine(Line) << "\n";
    Out.flush();
  }
  return 0;
}

bool Server::listen(const ServeOptions &O, std::string &Error) {
  Opts = O;
  if (Opts.MaxConnections == 0)
    Opts.MaxConnections = 1;
  // The connection cap doubles as the kernel backlog: connections we
  // would reject anyway have no business queueing behind the acceptor.
  Listener = ListenSocket::listenOn(Opts.Port,
                                    static_cast<int>(Opts.MaxConnections),
                                    Error);
  if (!Listener.valid())
    return false;
  if (Opts.InstallSignalHandlers) {
    SignalStopFlag = &Stopping;
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = onStopSignal;
    sigemptyset(&SA.sa_mask);
    ::sigaction(SIGINT, &SA, nullptr);
    ::sigaction(SIGTERM, &SA, nullptr);
  }
  return true;
}

int Server::serve() {
  ThreadPool &Pool = ThreadPool::global();
  // Reserve one pool worker per connection on top of the compute
  // workers: submitted handlers block on their sockets for their whole
  // lifetime, so without the reserve they would starve parallelFor — and
  // on a single-core host (a zero-worker global pool) never run at all.
  Pool.ensureWorkers(ThreadPool::hardwareThreads() - 1 + Opts.MaxConnections);

  while (!Stopping.load(std::memory_order_relaxed)) {
    // Short accept slices so stop requests (shutdown, signals) are
    // noticed promptly even with no traffic.
    Socket Client = Listener.accept(200);
    if (!Client.valid())
      continue;
    if (Conn.Active.load(std::memory_order_relaxed) >= Opts.MaxConnections) {
      Conn.Rejected.fetch_add(1, std::memory_order_relaxed);
      Client.sendAll(Session::errorLine(
                         "server at capacity (" +
                         std::to_string(Opts.MaxConnections) +
                         " connections); retry later") +
                     "\n");
      continue; // destructor closes the rejected connection
    }
    Conn.Accepted.fetch_add(1, std::memory_order_relaxed);
    Conn.Active.fetch_add(1, std::memory_order_relaxed);
    auto Shared = std::make_shared<Socket>(std::move(Client));
    Pool.submit([this, Shared] { handleConnection(std::move(*Shared)); });
  }
  Listener.close();

  // Drain: every live handler notices Stopping within one poll slice,
  // finishes the lines it already buffered, and signals DrainCV.
  std::unique_lock<std::mutex> Lock(DrainMutex);
  DrainCV.wait(Lock, [this] {
    return Conn.Active.load(std::memory_order_acquire) == 0;
  });
  return 0;
}

void Server::handleConnection(Socket Client) {
  {
    Session S(&Conn);
    LineSplitter Split(Opts.MaxRequestBytes);
    char Buf[4096];
    unsigned IdleMs = 0;

    // Answers every complete line currently buffered; false means the
    // connection should close (peer gone or shutdown requested).
    auto Pump = [&]() -> bool {
      std::string Line;
      for (;;) {
        LineSplitter::Item It = Split.next(Line);
        if (It == LineSplitter::Item::None)
          return true;
        std::string Reply;
        if (It == LineSplitter::Item::Oversize)
          Reply = S.transportError(oversizeMessage(Opts.MaxRequestBytes));
        else if (Line.empty())
          continue;
        else
          Reply = S.handleLine(Line);
        if (!Client.sendAll(Reply + "\n"))
          return false;
        if (S.shutdownRequested()) {
          requestStop();
          return false;
        }
      }
    };

    for (;;) {
      Socket::Wait W = Client.waitReadable(200);
      if (Stopping.load(std::memory_order_relaxed))
        break; // server draining; buffered requests were already answered
      if (W == Socket::Wait::Timeout) {
        IdleMs += 200;
        if (Opts.IdleTimeoutMs && IdleMs >= Opts.IdleTimeoutMs) {
          Conn.TimedOut.fetch_add(1, std::memory_order_relaxed);
          Client.sendAll(S.transportError("closing connection idle for " +
                                          std::to_string(IdleMs) + " ms") +
                         "\n");
          break;
        }
        continue;
      }
      if (W == Socket::Wait::Error)
        break;
      IdleMs = 0;
      long N = Client.recvSome(Buf, sizeof(Buf));
      if (N < 0)
        break;
      if (N == 0) {
        // Peer EOF: a final unterminated line still gets a response
        // (the peer may shutdown(SHUT_WR) and read on).
        Split.finish();
        Pump();
        break;
      }
      Split.feed(Buf, static_cast<size_t>(N));
      if (!Pump())
        break;
    }
  } // ~Session: the connection's documents die with it
  Client.close();
  // Notify under the mutex: serve()'s drain wait cannot re-acquire it
  // (and let the Server be destroyed) until the notify has finished
  // touching the condition variable.
  std::lock_guard<std::mutex> Lock(DrainMutex);
  Conn.Active.fetch_sub(1, std::memory_order_acq_rel);
  DrainCV.notify_all();
}
