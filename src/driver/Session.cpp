#include "driver/Session.h"

#include "completion/AflCompletion.h"
#include "completion/Conservative.h"
#include "driver/Incremental.h"
#include "interp/Interp.h"
#include "support/ArenaPool.h"
#include "support/Metrics.h"

#include <cmath>
#include <exception>

using namespace afl;
using namespace afl::driver;

namespace {

std::string jsonString(std::string_view S) {
  std::string O = "\"";
  O += MetricsRegistry::escapeJson(S);
  O += '"';
  return O;
}

uint64_t micros(double Seconds) {
  return Seconds > 0 ? static_cast<uint64_t>(std::llround(Seconds * 1e6)) : 0;
}

/// Re-serializes a request "id" for echoing (numbers and strings pass
/// through; anything else, including a missing id, becomes null).
std::string echoId(const json::Value *Id) {
  if (!Id)
    return "null";
  if (Id->isInt())
    return std::to_string(Id->asInt());
  if (Id->isString())
    return jsonString(Id->asString());
  return "null";
}

/// The completion report as a JSON object: classification counts plus the
/// full human-readable rendering (the byte string the differential tests
/// compare).
std::string reportJson(const completion::CompletionReport &R) {
  std::string O = "{";
  O += "\"regions\":" + std::to_string(R.Regions.size());
  O += ",\"lexical\":" + std::to_string(R.NumLexical);
  O += ",\"late_alloc\":" + std::to_string(R.NumLateAlloc);
  O += ",\"early_free\":" + std::to_string(R.NumEarlyFree);
  O += ",\"non_lexical\":" + std::to_string(R.NumNonLexical);
  O += ",\"unused\":" + std::to_string(R.NumUnused);
  O += ",\"text\":" + jsonString(R.str());
  O += "}";
  return O;
}

/// A solver domain vector as a compact digit string ('1'..'7' per state
/// var, '1'..'3' per bool var). Takes the packed lane arrays
/// (support/PackedDomains.h) the solver now returns.
template <unsigned Bits>
std::string domainString(const support::PackedArray<Bits> &Dom) {
  std::string O;
  O.reserve(Dom.size());
  for (size_t I = 0; I != Dom.size(); ++I)
    O.push_back(static_cast<char>('0' + (Dom.get(I) & 7)));
  return O;
}

} // namespace

Session::AnalysisInfo Session::analyze(Document &Doc,
                                       const closure::ClosureAnalysis *PrevCA,
                                       const closure::IncrementalSeed *Seed,
                                       StageTimings &T) {
  AnalysisInfo Info;
  T.AnalysisRan = true;
  Stopwatch Watch;

  auto CA = std::make_unique<closure::ClosureAnalysis>(*Doc.Prog);
  bool Converged = false;
  if (PrevCA && Seed && CA->runIncremental(*PrevCA, *Seed)) {
    Info.Tier = "incremental";
    Converged = true;
    ++Stats.IncrementalAnalyses;
  } else {
    if (PrevCA && Seed) // rejected seed: restart on a fresh instance
      CA = std::make_unique<closure::ClosureAnalysis>(*Doc.Prog);
    Converged = CA->run();
    ++Stats.FullAnalyses;
  }
  T.Closure = Watch.seconds();
  Doc.CA = std::move(CA);

  Info.Converged = Converged;
  Info.ProcessedContexts = Doc.CA->stats().ProcessedContexts;
  Info.DirtiedContexts = Doc.CA->stats().Incremental
                             ? Doc.CA->stats().DirtiedContexts
                             : Doc.CA->stats().ProcessedContexts;
  Stats.DirtiedContexts += Info.DirtiedContexts;

  uint64_t Hits0 = Doc.Cache.Hits;
  uint64_t Misses0 = Doc.Cache.Misses;
  if (!Converged) {
    // Mirror aflCompletion: unconverged tables are unsound, fall back to
    // the conservative completion (should not happen in practice).
    Doc.Gen.reset();
    Doc.Sol = solver::SolveResult();
    Doc.AflC = completion::conservativeCompletion(*Doc.Prog);
  } else {
    Watch.reset();
    Doc.Gen = std::make_unique<constraints::GenResult>(
        constraints::generateConstraints(*Doc.Prog, *Doc.CA));
    T.ConstraintGen = Watch.seconds();
    Doc.Sol = solver::solveCached(Doc.Gen->Sys, solver::SolveOptions(),
                                  Doc.Cache);
    T.Solve = Doc.Sol.Seconds;
    Watch.reset();
    Doc.AflC = Doc.Sol.Sat
                   ? completion::extractCompletion(*Doc.Gen, Doc.Sol)
                   : completion::conservativeCompletion(*Doc.Prog);
    T.Extract = Watch.seconds();
  }
  Doc.Report = completion::reportCompletion(*Doc.Prog, Doc.AflC);

  Info.Sat = Doc.Sol.Sat;
  Info.ShardsSolved = Doc.Cache.Misses - Misses0;
  Info.ShardsReused = Doc.Cache.Hits - Hits0;
  Stats.ShardsSolved += Info.ShardsSolved;
  Stats.ShardsReused += Info.ShardsReused;
  return Info;
}

Session::Document *Session::findDoc(const json::Value &Params,
                                    std::string &Error) {
  const json::Value *Doc = Params.find("doc");
  if (!Doc || !Doc->isInt()) {
    Error = "missing integer \"doc\" parameter";
    return nullptr;
  }
  auto It = Docs.find(Doc->asInt());
  if (It == Docs.end()) {
    Error = "unknown document " + std::to_string(Doc->asInt());
    return nullptr;
  }
  return &It->second;
}

std::string Session::handleOpen(const json::Value &Params, StageTimings &T,
                                std::string &Error) {
  const json::Value *Source = Params.find("source");
  if (!Source || !Source->isString()) {
    Error = "missing string \"source\" parameter";
    return "";
  }
  ++Stats.Opens;

  DiagnosticEngine Diags;
  FrontEnd F = runFrontEnd(Source->asString(), Diags);
  T.FrontEnd = F.ParseSeconds + F.TypeInferSeconds + F.RegionInferSeconds;
  if (!F.ok()) {
    Error = "analysis failed: " + Diags.str();
    return "";
  }

  Document Doc;
  Doc.Text = Source->asString();
  Doc.Ctx = std::move(F.Ctx);
  Doc.Ast = F.Ast;
  Doc.Prog = std::move(F.Prog);
  AnalysisInfo Info = analyze(Doc, nullptr, nullptr, T);

  int64_t Id = NextDocId++;
  Document &Stored = Docs[Id];
  Stored = std::move(Doc);

  std::string O = "{\"doc\":" + std::to_string(Id);
  O += ",\"tier\":" + jsonString(Info.Tier);
  O += ",\"report\":" + reportJson(Stored.Report);
  O += ",\"analysis\":" + analysisBody(Stored, Info);
  O += "}";
  return O;
}

std::string Session::analysisBody(const Document &Doc,
                                  const AnalysisInfo &Info) const {
  std::string O = "{";
  O += "\"converged\":" + std::string(Info.Converged ? "true" : "false");
  O += ",\"sat\":" + std::string(Info.Sat ? "true" : "false");
  O += ",\"contexts\":" + std::to_string(Doc.CA ? Doc.CA->numContexts() : 0);
  O += ",\"closures\":" + std::to_string(Doc.CA ? Doc.CA->numClosures() : 0);
  O += ",\"state_vars\":" +
       std::to_string(Doc.Gen ? Doc.Gen->Sys.numStateVars() : 0);
  O += ",\"bool_vars\":" +
       std::to_string(Doc.Gen ? Doc.Gen->Sys.numBoolVars() : 0);
  O += ",\"constraints\":" +
       std::to_string(Doc.Gen ? Doc.Gen->Sys.numConstraints() : 0);
  O += ",\"shards\":" + std::to_string(Doc.Gen ? Doc.Gen->Sys.numShards() : 0);
  O += ",\"processed_contexts\":" + std::to_string(Info.ProcessedContexts);
  O += ",\"dirtied_contexts\":" + std::to_string(Info.DirtiedContexts);
  O += ",\"shards_solved\":" + std::to_string(Info.ShardsSolved);
  O += ",\"shards_reused\":" + std::to_string(Info.ShardsReused);
  O += "}";
  return O;
}

std::string Session::handleEdit(const json::Value &Params, StageTimings &T,
                                std::string &Error) {
  Document *Doc = findDoc(Params, Error);
  if (!Doc)
    return "";
  const json::Value *Start = Params.find("start");
  const json::Value *Length = Params.find("length");
  const json::Value *Text = Params.find("text");
  if (!Start || !Start->isInt() || !Length || !Length->isInt() || !Text ||
      !Text->isString()) {
    Error = "edit needs integer \"start\"/\"length\" and string \"text\"";
    return "";
  }
  int64_t S = Start->asInt();
  int64_t L = Length->asInt();
  if (S < 0 || L < 0 || static_cast<uint64_t>(S) > Doc->Text.size() ||
      static_cast<uint64_t>(S + L) > Doc->Text.size()) {
    Error = "edit span [" + std::to_string(S) + ", " + std::to_string(S + L) +
            ") out of range for document of " +
            std::to_string(Doc->Text.size()) + " bytes";
    return "";
  }
  ++Stats.Edits;

  std::string NewText = Doc->Text;
  NewText.replace(static_cast<size_t>(S), static_cast<size_t>(L),
                  Text->asString());

  // The front end always re-runs from scratch; a failure leaves the
  // document at its previous revision (revert semantics, docs/SERVER.md).
  DiagnosticEngine Diags;
  FrontEnd F = runFrontEnd(NewText, Diags);
  T.FrontEnd = F.ParseSeconds + F.TypeInferSeconds + F.RegionInferSeconds;
  if (!F.ok()) {
    Error = "analysis failed (document unchanged): " + Diags.str();
    return "";
  }

  ProgramDiff Diff = diffPrograms(*Doc->Prog, *F.Prog);
  AnalysisInfo Info;
  if (Diff.Kind == DiffKind::Identical || Diff.Kind == DiffKind::LiteralsOnly) {
    // The previous region program is isomorphic modulo literal payloads,
    // which nothing downstream of the front end reads: keep every cached
    // artifact (including the old program as the analysis baseline) and
    // only move the text forward.
    Doc->Text = std::move(NewText);
    Info.Tier = "reuse";
    Info.Converged = Doc->CA && Doc->CA->converged();
    Info.Sat = Doc->Sol.Sat;
    Info.ShardsReused = Doc->Gen ? Doc->Gen->Sys.numShards() : 0;
    ++Stats.ReusedAnalyses;
    Stats.ShardsReused += Info.ShardsReused;
  } else {
    // Keep the previous program + closure tables alive while the seeded
    // restart translates out of them, then drop them.
    std::unique_ptr<regions::RegionProgram> OldProg = std::move(Doc->Prog);
    std::unique_ptr<closure::ClosureAnalysis> OldCA = std::move(Doc->CA);
    Doc->Text = std::move(NewText);
    Doc->Ctx = std::move(F.Ctx);
    Doc->Ast = F.Ast;
    Doc->Prog = std::move(F.Prog);
    bool TrySeed = Diff.Kind == DiffKind::Subtree && OldCA != nullptr;
    Info = analyze(*Doc, TrySeed ? OldCA.get() : nullptr,
                   TrySeed ? &Diff.Seed : nullptr, T);
  }

  const json::Value *DocId = Params.find("doc");
  std::string O = "{\"doc\":" + std::to_string(DocId->asInt());
  O += ",\"tier\":" + jsonString(Info.Tier);
  O += ",\"report\":" + reportJson(Doc->Report);
  O += ",\"analysis\":" + analysisBody(*Doc, Info);
  O += "}";
  return O;
}

std::string Session::handleQuery(const json::Value &Params,
                                 std::string &Error) {
  const json::Value *What = Params.find("what");
  if (!What || !What->isString()) {
    Error = "missing string \"what\" parameter";
    return "";
  }
  ++Stats.Queries;
  const std::string &W = What->asString();

  if (W == "metrics") {
    std::string O = "{\"metrics\":{";
    O += "\"requests\":" + std::to_string(Stats.Requests);
    O += ",\"errors\":" + std::to_string(Stats.Errors);
    O += ",\"opens\":" + std::to_string(Stats.Opens);
    O += ",\"edits\":" + std::to_string(Stats.Edits);
    O += ",\"queries\":" + std::to_string(Stats.Queries);
    O += ",\"closes\":" + std::to_string(Stats.Closes);
    O += ",\"open_docs\":" + std::to_string(Docs.size());
    O += ",\"full_analyses\":" + std::to_string(Stats.FullAnalyses);
    O += ",\"incremental_analyses\":" +
         std::to_string(Stats.IncrementalAnalyses);
    O += ",\"reused_analyses\":" + std::to_string(Stats.ReusedAnalyses);
    O += ",\"dirtied_contexts\":" + std::to_string(Stats.DirtiedContexts);
    O += ",\"shards_solved\":" + std::to_string(Stats.ShardsSolved);
    O += ",\"shards_reused\":" + std::to_string(Stats.ShardsReused);
    if (Conn) {
      // Socket-transport sessions also report the server-wide connection
      // counters (docs/OBSERVABILITY.md, "server/connections" scope).
      O += ",\"connections\":{";
      O += "\"accepted\":" +
           std::to_string(Conn->Accepted.load(std::memory_order_relaxed));
      O += ",\"active\":" +
           std::to_string(Conn->Active.load(std::memory_order_relaxed));
      O += ",\"rejected\":" +
           std::to_string(Conn->Rejected.load(std::memory_order_relaxed));
      O += ",\"timed_out\":" +
           std::to_string(Conn->TimedOut.load(std::memory_order_relaxed));
      O += "}";
    }
    // Process-wide arena-pool counters: every open/edit leases its AST
    // and region-IR arenas from the pool (docs/OBSERVABILITY.md).
    ArenaPool::Stats Pool = ArenaPool::global().stats();
    O += ",\"memory\":{\"arena_pool\":{";
    O += "\"enabled\":" +
         std::string(ArenaPool::globalEnabled() ? "true" : "false");
    O += ",\"checkouts\":" + std::to_string(Pool.Checkouts);
    O += ",\"hits\":" + std::to_string(Pool.Hits);
    O += ",\"misses\":" + std::to_string(Pool.Misses);
    O += ",\"returns\":" + std::to_string(Pool.Returns);
    O += ",\"pooled\":" + std::to_string(Pool.Pooled);
    O += ",\"retained_bytes\":" + std::to_string(Pool.RetainedBytes);
    O += "}}";
    O += "}}";
    return O;
  }

  Document *Doc = findDoc(Params, Error);
  if (!Doc)
    return "";
  if (W == "report")
    return "{\"report\":" + reportJson(Doc->Report) + "}";
  if (W == "domains") {
    std::string O = "{\"domains\":{";
    O += "\"sat\":" + std::string(Doc->Sol.Sat ? "true" : "false");
    O += ",\"states\":" + jsonString(domainString(Doc->Sol.StateDom));
    O += ",\"bools\":" + jsonString(domainString(Doc->Sol.BoolDom));
    O += "}}";
    return O;
  }
  if (W == "run") {
    // Instrumented execution of the document under its current A-F-L
    // completion. Served runs use the process-default backend — the
    // bytecode VM unless $AFL_INTERP=tree (docs/VM.md).
    Stopwatch Watch;
    interp::RunResult R = interp::run(*Doc->Prog, Doc->AflC);
    double TotalSeconds = Watch.seconds();
    bool Vm = interp::defaultBackend() == interp::BackendKind::Vm;
    std::string O = "{\"run\":{";
    O += "\"ok\":" + std::string(R.Ok ? "true" : "false");
    if (R.Ok)
      O += ",\"result\":" + jsonString(R.ResultText);
    else
      O += ",\"error\":" + jsonString(R.Error);
    O += ",\"backend\":" + jsonString(Vm ? "vm" : "tree");
    O += ",\"stats\":{";
    O += "\"max_regions\":" + std::to_string(R.S.MaxRegions);
    O += ",\"region_allocs\":" + std::to_string(R.S.TotalRegionAllocs);
    O += ",\"value_allocs\":" + std::to_string(R.S.TotalValueAllocs);
    O += ",\"max_values\":" + std::to_string(R.S.MaxValues);
    O += ",\"final_values\":" + std::to_string(R.S.FinalValues);
    O += ",\"memory_ops\":" + std::to_string(R.S.Time);
    O += "},\"micros\":{";
    O += "\"compile_us\":" + std::to_string(micros(R.VmCompileSeconds));
    O += ",\"execute_us\":" + std::to_string(micros(R.VmExecuteSeconds));
    O += ",\"total_us\":" + std::to_string(micros(TotalSeconds));
    O += "}}}";
    return O;
  }
  Error =
      "unknown query \"" + W + "\" (expected report, metrics, domains or run)";
  return "";
}

std::string Session::handleClose(const json::Value &Params,
                                 std::string &Error) {
  const json::Value *DocId = Params.find("doc");
  Document *Doc = findDoc(Params, Error);
  if (!Doc)
    return "";
  ++Stats.Closes;
  Docs.erase(DocId->asInt());
  return "{\"closed\":true}";
}

std::string Session::errorLine(const std::string &Msg) {
  return "{\"id\":null,\"ok\":false,\"error\":" + jsonString(Msg) +
         ",\"timings\":{\"total_us\":0}}";
}

std::string Session::transportError(const std::string &Msg) {
  ++Stats.Requests;
  ++Stats.Errors;
  return errorLine(Msg);
}

std::string Session::handleLine(const std::string &Line) {
  Stopwatch Total;
  ++Stats.Requests;

  std::string IdJson = "null";
  StageTimings T;
  auto Respond = [&](bool Ok, const std::string &Body) {
    std::string O = "{\"id\":" + IdJson;
    O += Ok ? ",\"ok\":true,\"result\":" + Body
            : ",\"ok\":false,\"error\":" + jsonString(Body);
    O += ",\"timings\":{";
    if (T.AnalysisRan || T.FrontEnd > 0) {
      O += "\"frontend_us\":" + std::to_string(micros(T.FrontEnd));
      O += ",\"closure_us\":" + std::to_string(micros(T.Closure));
      O += ",\"congen_us\":" + std::to_string(micros(T.ConstraintGen));
      O += ",\"solve_us\":" + std::to_string(micros(T.Solve));
      O += ",\"extract_us\":" + std::to_string(micros(T.Extract));
      O += ",";
    }
    O += "\"total_us\":" + std::to_string(micros(Total.seconds())) + "}}";
    return O;
  };
  auto Fail = [&](const std::string &Msg) {
    ++Stats.Errors;
    return Respond(false, Msg);
  };

  json::Value Req;
  std::string ParseError;
  if (!json::parseJson(Line, Req, ParseError))
    return Fail("parse error: " + ParseError);
  if (!Req.isObject())
    return Fail("request must be a JSON object");
  IdJson = echoId(Req.find("id"));
  const json::Value *Method = Req.find("method");
  if (!Method || !Method->isString())
    return Fail("missing string \"method\"");
  static const json::Value EmptyParams = json::Value::object();
  const json::Value *Params = Req.find("params");
  if (!Params)
    Params = &EmptyParams;
  else if (!Params->isObject())
    return Fail("\"params\" must be an object");

  const std::string &M = Method->asString();
  try {
    std::string Error;
    std::string Result;
    if (M == "open")
      Result = handleOpen(*Params, T, Error);
    else if (M == "edit")
      Result = handleEdit(*Params, T, Error);
    else if (M == "query")
      Result = handleQuery(*Params, Error);
    else if (M == "close")
      Result = handleClose(*Params, Error);
    else if (M == "shutdown") {
      Shutdown = true;
      Result = "{\"stopping\":true}";
    } else
      Error = "unknown method \"" + M + "\"";
    if (!Error.empty())
      return Fail(Error);
    return Respond(true, Result);
  } catch (const std::exception &E) {
    return Fail(std::string("internal error: ") + E.what());
  } catch (...) {
    return Fail("internal error");
  }
}
