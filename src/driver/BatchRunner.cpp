#include "driver/BatchRunner.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace afl;
using namespace afl::driver;

namespace {

void accumulateAnalysis(completion::AflStats &Agg,
                        const completion::AflStats &S) {
  Agg.ClosurePasses += S.ClosurePasses;
  Agg.NumContexts += S.NumContexts;
  Agg.NumClosures += S.NumClosures;
  Agg.NumStateVars += S.NumStateVars;
  Agg.NumBoolVars += S.NumBoolVars;
  Agg.NumConstraints += S.NumConstraints;
  Agg.NumPinnedCalls += S.NumPinnedCalls;
  Agg.NumWidenedPinned += S.NumWidenedPinned;
  // The widening sub-scope is gated on a nonzero bound, so carry it
  // into the aggregate (max, like simplify's `threads`) or a widened
  // batch would report no widening totals at all.
  Agg.Closure.WideningBound =
      std::max(Agg.Closure.WideningBound, S.Closure.WideningBound);
  Agg.Closure.WidenedClosures += S.Closure.WidenedClosures;
  Agg.Closure.WidenedVars += S.Closure.WidenedVars;
  Agg.SolverPropagations += S.SolverPropagations;
  Agg.SolverChoices += S.SolverChoices;
  Agg.SolverBacktracks += S.SolverBacktracks;
  Agg.SolverSimplify.accumulate(S.SolverSimplify);
  Agg.Sharding.accumulate(S.Sharding);
  Agg.ClosureSeconds += S.ClosureSeconds;
  Agg.ConstraintGenSeconds += S.ConstraintGenSeconds;
  Agg.SolveSeconds += S.SolveSeconds;
  Agg.ExtractSeconds += S.ExtractSeconds;
}

/// Pointwise sum. Note the per-program peaks (MaxRegions/MaxValues)
/// become sums-of-peaks here; the true cross-item maxima are tracked
/// separately by peakRun().
void accumulateRun(interp::Stats &Agg, const interp::Stats &S) {
  Agg.MaxRegions += S.MaxRegions;
  Agg.TotalRegionAllocs += S.TotalRegionAllocs;
  Agg.TotalValueAllocs += S.TotalValueAllocs;
  Agg.MaxValues += S.MaxValues;
  Agg.FinalValues += S.FinalValues;
  Agg.Reads += S.Reads;
  Agg.Writes += S.Writes;
  Agg.Steps += S.Steps;
  Agg.Time += S.Time;
}

void peakRun(interp::Stats &Peak, const interp::Stats &S) {
  Peak.MaxRegions = std::max(Peak.MaxRegions, S.MaxRegions);
  Peak.MaxValues = std::max(Peak.MaxValues, S.MaxValues);
}

} // namespace

bool driver::collectBatchItems(const std::string &Dir,
                               std::vector<BatchItem> &Work,
                               std::string &Error) {
  namespace fs = std::filesystem;
  const fs::path Root(Dir);

  // Names are derived lexically: fs::relative stats both paths and can
  // itself fail on the entries this walk is built to survive.
  auto relName = [&Root](const fs::path &P) {
    fs::path Rel = P.lexically_relative(Root);
    return (Rel.empty() || Rel == ".") ? P.string() : Rel.string();
  };
  auto failItem = [&](const fs::path &P, std::string Why) {
    BatchItem Item;
    Item.Name = relName(P);
    Item.LoadError = std::move(Why);
    Work.push_back(std::move(Item));
  };

  std::error_code EC;
  // Probe the root before walking so "the directory doesn't exist" is a
  // batch-level error, not an empty batch.
  if (fs::directory_iterator(Root, EC); EC) {
    Error = "cannot read directory '" + Dir + "': " + EC.message();
    return false;
  }

  // Manual stack-driven walk instead of recursive_directory_iterator:
  // its throwing operator++ aborts the whole batch on the first
  // unreadable subdirectory, and its error_code increment ends the
  // iteration — silently dropping every entry after the failure. Here a
  // bad directory becomes one failed item and its siblings still run.
  std::vector<fs::path> Pending;
  Pending.push_back(Root);
  while (!Pending.empty()) {
    fs::path D = std::move(Pending.back());
    Pending.pop_back();
    fs::directory_iterator It(D, EC);
    if (EC) {
      failItem(D, "cannot read directory '" + D.string() +
                      "': " + EC.message());
      EC.clear();
      continue;
    }
    for (; It != fs::directory_iterator(); It.increment(EC)) {
      if (EC)
        break;
      const fs::directory_entry &Entry = *It;
      // Classify without following the link target: symlink_status never
      // dereferences, so a dangling symlink is not an error here.
      fs::file_status LStat = Entry.symlink_status(EC);
      if (EC) {
        failItem(Entry.path(), "cannot stat '" + Entry.path().string() +
                                   "': " + EC.message());
        EC.clear();
        continue;
      }
      if (fs::is_directory(LStat)) {
        Pending.push_back(Entry.path());
        continue;
      }
      if (Entry.path().extension() != ".afl")
        continue;
      // Follow symlinks for the actual read; a dangling .afl symlink
      // surfaces here as a failed item.
      bool IsRegular = fs::is_regular_file(Entry.path(), EC);
      if (EC || !IsRegular) {
        failItem(Entry.path(),
                 EC ? "cannot stat '" + Entry.path().string() +
                          "': " + EC.message()
                    : "not a regular file: '" + Entry.path().string() + "'");
        EC.clear();
        continue;
      }
      std::ifstream In(Entry.path());
      if (!In) {
        failItem(Entry.path(), "cannot open '" + Entry.path().string() + "'");
        continue;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      // badbit is a real read or allocation failure. failbit alone just
      // means zero characters were inserted — an empty file, which is a
      // legitimate (if doomed) program.
      if (In.bad() || SS.bad()) {
        failItem(Entry.path(),
                 "read error on '" + Entry.path().string() + "'");
        continue;
      }
      Work.push_back({relName(Entry.path()), SS.str(), ""});
    }
    if (EC) {
      failItem(D, "walk of '" + D.string() + "' failed: " + EC.message());
      EC.clear();
    }
  }
  return true;
}

void BatchItemResult::recordMetrics(MetricsRegistry &Reg) const {
  recordPipelineMetrics(Reg, Stats, Analysis,
                        HasRuns ? &ConservativeStats : nullptr,
                        HasRuns ? &AflStats : nullptr, Ok);
  if (!Ok && !Error.empty())
    Reg.setText("error", Error);
}

void BatchResult::recordMetrics(MetricsRegistry &Reg) const {
  Reg.set("files", Items.size());
  Reg.set("ok", NumOk);
  Reg.set("failed", NumFailed);
  Reg.set("threads", Threads);
  Reg.addTime("wall_seconds", WallSeconds);
  {
    MetricScope Agg(Reg, "aggregate");
    // Runs are emitted by hand below: in the aggregate interp stats the
    // peak fields are sums-of-peaks, so the per-item schema's max_*
    // names would be wrong for them.
    recordPipelineMetrics(Reg, AggregateStats, AggregateAnalysis, nullptr,
                          nullptr, allOk());
    {
      // Peak RSS is process-wide (the whole batch shares one address
      // space), so it only makes sense here in the aggregate — emitted
      // even for a --no-run batch, where analysis dominates memory.
      MetricScope Runs(Reg, "runs");
      Reg.set("peak_rss_kb", readPeakRssKb());
    }
    if (HasRuns) {
      MetricScope Runs(Reg, "runs");
      auto Run = [&Reg](const char *Name, const interp::Stats &Sum,
                        const interp::Stats &Peak) {
        MetricScope Scope(Reg, Name);
        Reg.set("max_regions", Peak.MaxRegions);
        Reg.set("max_values", Peak.MaxValues);
        Reg.set("total_max_regions", Sum.MaxRegions);
        Reg.set("total_max_values", Sum.MaxValues);
        Reg.set("region_allocs", Sum.TotalRegionAllocs);
        Reg.set("value_allocs", Sum.TotalValueAllocs);
        Reg.set("final_values", Sum.FinalValues);
        Reg.set("steps", Sum.Steps);
        Reg.set("memory_ops", Sum.Time);
      };
      Run("conservative", AggregateConservative, PeakConservative);
      Run("afl", AggregateAfl, PeakAfl);
    }
  }
  {
    MetricScope Programs(Reg, "programs");
    for (const BatchItemResult &Item : Items) {
      MetricScope S(Reg, Item.Name);
      Item.recordMetrics(Reg);
    }
  }
}

BatchResult driver::runBatch(const std::vector<BatchItem> &Work,
                             const PipelineOptions &Options,
                             unsigned Threads) {
  BatchResult Out;
  Out.Items.resize(Work.size());

  if (Threads == 0)
    Threads = ThreadPool::hardwareThreads();
  Threads = static_cast<unsigned>(
      std::min<size_t>(Threads, std::max<size_t>(Work.size(), 1)));
  Out.Threads = Threads;

  Stopwatch Wall;

  // Each call writes only its own slot of Out.Items, so no further
  // synchronization is needed.
  ThreadPool::global().parallelFor(Work.size(), Threads, [&](size_t I) {
    BatchItemResult &Item = Out.Items[I];
    Item.Name = Work[I].Name;
    if (!Work[I].LoadError.empty()) {
      // Item never loaded: record the loader's error as a failed
      // result; the rest of the batch is unaffected.
      Item.Error = Work[I].LoadError;
      return;
    }
    PipelineResult R = runPipeline(Work[I].Source, Options);
    Item.Ok = R.ok();
    Item.Stats = R.Stats;
    Item.Analysis = R.Analysis;
    if (!R.ok())
      Item.Error = R.Diags.str();
    if (R.Conservative.Ok && R.Afl.Ok) {
      Item.HasRuns = true;
      Item.ConservativeStats = R.Conservative.S;
      Item.AflStats = R.Afl.S;
      Item.ResultText = R.Afl.ResultText;
    }
  });

  Out.WallSeconds = Wall.seconds();
  for (const BatchItemResult &Item : Out.Items) {
    if (Item.Ok)
      ++Out.NumOk;
    else
      ++Out.NumFailed;
    Out.AggregateStats.accumulate(Item.Stats);
    accumulateAnalysis(Out.AggregateAnalysis, Item.Analysis);
    if (Item.HasRuns) {
      Out.HasRuns = true;
      accumulateRun(Out.AggregateConservative, Item.ConservativeStats);
      accumulateRun(Out.AggregateAfl, Item.AflStats);
      peakRun(Out.PeakConservative, Item.ConservativeStats);
      peakRun(Out.PeakAfl, Item.AflStats);
    }
  }
  return Out;
}
