#include "driver/BatchRunner.h"

#include "support/ThreadPool.h"

#include <algorithm>

using namespace afl;
using namespace afl::driver;

namespace {

void accumulateAnalysis(completion::AflStats &Agg,
                        const completion::AflStats &S) {
  Agg.ClosurePasses += S.ClosurePasses;
  Agg.NumContexts += S.NumContexts;
  Agg.NumClosures += S.NumClosures;
  Agg.NumStateVars += S.NumStateVars;
  Agg.NumBoolVars += S.NumBoolVars;
  Agg.NumConstraints += S.NumConstraints;
  Agg.NumPinnedCalls += S.NumPinnedCalls;
  Agg.SolverPropagations += S.SolverPropagations;
  Agg.SolverChoices += S.SolverChoices;
  Agg.SolverBacktracks += S.SolverBacktracks;
  Agg.SolverSimplify.accumulate(S.SolverSimplify);
  Agg.ClosureSeconds += S.ClosureSeconds;
  Agg.ConstraintGenSeconds += S.ConstraintGenSeconds;
  Agg.SolveSeconds += S.SolveSeconds;
  Agg.ExtractSeconds += S.ExtractSeconds;
}

/// Pointwise sum. Note the per-program peaks (MaxRegions/MaxValues)
/// become sums-of-peaks here; the true cross-item maxima are tracked
/// separately by peakRun().
void accumulateRun(interp::Stats &Agg, const interp::Stats &S) {
  Agg.MaxRegions += S.MaxRegions;
  Agg.TotalRegionAllocs += S.TotalRegionAllocs;
  Agg.TotalValueAllocs += S.TotalValueAllocs;
  Agg.MaxValues += S.MaxValues;
  Agg.FinalValues += S.FinalValues;
  Agg.Reads += S.Reads;
  Agg.Writes += S.Writes;
  Agg.Steps += S.Steps;
  Agg.Time += S.Time;
}

void peakRun(interp::Stats &Peak, const interp::Stats &S) {
  Peak.MaxRegions = std::max(Peak.MaxRegions, S.MaxRegions);
  Peak.MaxValues = std::max(Peak.MaxValues, S.MaxValues);
}

} // namespace

void BatchItemResult::recordMetrics(MetricsRegistry &Reg) const {
  recordPipelineMetrics(Reg, Stats, Analysis,
                        HasRuns ? &ConservativeStats : nullptr,
                        HasRuns ? &AflStats : nullptr, Ok);
  if (!Ok && !Error.empty())
    Reg.setText("error", Error);
}

void BatchResult::recordMetrics(MetricsRegistry &Reg) const {
  Reg.set("files", Items.size());
  Reg.set("ok", NumOk);
  Reg.set("failed", NumFailed);
  Reg.set("threads", Threads);
  Reg.addTime("wall_seconds", WallSeconds);
  {
    MetricScope Agg(Reg, "aggregate");
    // Runs are emitted by hand below: in the aggregate interp stats the
    // peak fields are sums-of-peaks, so the per-item schema's max_*
    // names would be wrong for them.
    recordPipelineMetrics(Reg, AggregateStats, AggregateAnalysis, nullptr,
                          nullptr, allOk());
    if (HasRuns) {
      MetricScope Runs(Reg, "runs");
      auto Run = [&Reg](const char *Name, const interp::Stats &Sum,
                        const interp::Stats &Peak) {
        MetricScope Scope(Reg, Name);
        Reg.set("max_regions", Peak.MaxRegions);
        Reg.set("max_values", Peak.MaxValues);
        Reg.set("total_max_regions", Sum.MaxRegions);
        Reg.set("total_max_values", Sum.MaxValues);
        Reg.set("region_allocs", Sum.TotalRegionAllocs);
        Reg.set("value_allocs", Sum.TotalValueAllocs);
        Reg.set("final_values", Sum.FinalValues);
        Reg.set("steps", Sum.Steps);
        Reg.set("memory_ops", Sum.Time);
      };
      Run("conservative", AggregateConservative, PeakConservative);
      Run("afl", AggregateAfl, PeakAfl);
    }
  }
  {
    MetricScope Programs(Reg, "programs");
    for (const BatchItemResult &Item : Items) {
      MetricScope S(Reg, Item.Name);
      Item.recordMetrics(Reg);
    }
  }
}

BatchResult driver::runBatch(const std::vector<BatchItem> &Work,
                             const PipelineOptions &Options,
                             unsigned Threads) {
  BatchResult Out;
  Out.Items.resize(Work.size());

  if (Threads == 0)
    Threads = ThreadPool::hardwareThreads();
  Threads = static_cast<unsigned>(
      std::min<size_t>(Threads, std::max<size_t>(Work.size(), 1)));
  Out.Threads = Threads;

  Stopwatch Wall;

  // Each call writes only its own slot of Out.Items, so no further
  // synchronization is needed.
  ThreadPool::global().parallelFor(Work.size(), Threads, [&](size_t I) {
    BatchItemResult &Item = Out.Items[I];
    Item.Name = Work[I].Name;
    if (!Work[I].LoadError.empty()) {
      // Item never loaded: record the loader's error as a failed
      // result; the rest of the batch is unaffected.
      Item.Error = Work[I].LoadError;
      return;
    }
    PipelineResult R = runPipeline(Work[I].Source, Options);
    Item.Ok = R.ok();
    Item.Stats = R.Stats;
    Item.Analysis = R.Analysis;
    if (!R.ok())
      Item.Error = R.Diags.str();
    if (R.Conservative.Ok && R.Afl.Ok) {
      Item.HasRuns = true;
      Item.ConservativeStats = R.Conservative.S;
      Item.AflStats = R.Afl.S;
      Item.ResultText = R.Afl.ResultText;
    }
  });

  Out.WallSeconds = Wall.seconds();
  for (const BatchItemResult &Item : Out.Items) {
    if (Item.Ok)
      ++Out.NumOk;
    else
      ++Out.NumFailed;
    Out.AggregateStats.accumulate(Item.Stats);
    accumulateAnalysis(Out.AggregateAnalysis, Item.Analysis);
    if (Item.HasRuns) {
      Out.HasRuns = true;
      accumulateRun(Out.AggregateConservative, Item.ConservativeStats);
      accumulateRun(Out.AggregateAfl, Item.AflStats);
      peakRun(Out.PeakConservative, Item.ConservativeStats);
      peakRun(Out.PeakAfl, Item.AflStats);
    }
  }
  return Out;
}
