#include "driver/BatchRunner.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace afl;
using namespace afl::driver;

namespace {

void accumulateAnalysis(completion::AflStats &Agg,
                        const completion::AflStats &S) {
  Agg.ClosurePasses += S.ClosurePasses;
  Agg.NumContexts += S.NumContexts;
  Agg.NumClosures += S.NumClosures;
  Agg.NumStateVars += S.NumStateVars;
  Agg.NumBoolVars += S.NumBoolVars;
  Agg.NumConstraints += S.NumConstraints;
  Agg.NumPinnedCalls += S.NumPinnedCalls;
  Agg.SolverPropagations += S.SolverPropagations;
  Agg.SolverChoices += S.SolverChoices;
  Agg.SolverBacktracks += S.SolverBacktracks;
  Agg.SolverSimplify.accumulate(S.SolverSimplify);
  Agg.ClosureSeconds += S.ClosureSeconds;
  Agg.ConstraintGenSeconds += S.ConstraintGenSeconds;
  Agg.SolveSeconds += S.SolveSeconds;
  Agg.ExtractSeconds += S.ExtractSeconds;
}

void accumulateRun(interp::Stats &Agg, const interp::Stats &S) {
  Agg.MaxRegions += S.MaxRegions;
  Agg.TotalRegionAllocs += S.TotalRegionAllocs;
  Agg.TotalValueAllocs += S.TotalValueAllocs;
  Agg.MaxValues += S.MaxValues;
  Agg.FinalValues += S.FinalValues;
  Agg.Reads += S.Reads;
  Agg.Writes += S.Writes;
  Agg.Steps += S.Steps;
  Agg.Time += S.Time;
}

} // namespace

void BatchItemResult::recordMetrics(MetricsRegistry &Reg) const {
  recordPipelineMetrics(Reg, Stats, Analysis,
                        HasRuns ? &ConservativeStats : nullptr,
                        HasRuns ? &AflStats : nullptr, Ok);
}

void BatchResult::recordMetrics(MetricsRegistry &Reg) const {
  Reg.set("files", Items.size());
  Reg.set("ok", NumOk);
  Reg.set("failed", NumFailed);
  Reg.set("threads", Threads);
  Reg.addTime("wall_seconds", WallSeconds);
  {
    MetricScope Agg(Reg, "aggregate");
    recordPipelineMetrics(Reg, AggregateStats, AggregateAnalysis,
                          HasRuns ? &AggregateConservative : nullptr,
                          HasRuns ? &AggregateAfl : nullptr, allOk());
  }
  {
    MetricScope Programs(Reg, "programs");
    for (const BatchItemResult &Item : Items) {
      MetricScope S(Reg, Item.Name);
      Item.recordMetrics(Reg);
    }
  }
}

BatchResult driver::runBatch(const std::vector<BatchItem> &Work,
                             const PipelineOptions &Options,
                             unsigned Threads) {
  BatchResult Out;
  Out.Items.resize(Work.size());

  if (Threads == 0)
    Threads = std::thread::hardware_concurrency();
  if (Threads == 0)
    Threads = 1;
  Threads = static_cast<unsigned>(
      std::min<size_t>(Threads, std::max<size_t>(Work.size(), 1)));
  Out.Threads = Threads;

  Stopwatch Wall;
  std::atomic<size_t> Next{0};

  // Workers claim indices from a shared counter; each writes only its
  // own slot of Out.Items, so no further synchronization is needed.
  auto Worker = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Work.size())
        return;
      BatchItemResult &Item = Out.Items[I];
      Item.Name = Work[I].Name;
      PipelineResult R = runPipeline(Work[I].Source, Options);
      Item.Ok = R.ok();
      Item.Stats = R.Stats;
      Item.Analysis = R.Analysis;
      if (!R.ok())
        Item.Error = R.Diags.str();
      if (R.Conservative.Ok && R.Afl.Ok) {
        Item.HasRuns = true;
        Item.ConservativeStats = R.Conservative.S;
        Item.AflStats = R.Afl.S;
        Item.ResultText = R.Afl.ResultText;
      }
    }
  };

  if (Threads == 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  Out.WallSeconds = Wall.seconds();
  for (const BatchItemResult &Item : Out.Items) {
    if (Item.Ok)
      ++Out.NumOk;
    else
      ++Out.NumFailed;
    Out.AggregateStats.accumulate(Item.Stats);
    accumulateAnalysis(Out.AggregateAnalysis, Item.Analysis);
    if (Item.HasRuns) {
      Out.HasRuns = true;
      accumulateRun(Out.AggregateConservative, Item.ConservativeStats);
      accumulateRun(Out.AggregateAfl, Item.AflStats);
    }
  }
  return Out;
}
