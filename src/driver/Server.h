//===----------------------------------------------------------------------===//
///
/// \file
/// The transports behind `aflc --serve`: a stdio pump and a concurrent
/// loopback socket listener, both driving transport-agnostic
/// driver::Session instances (driver/Session.h) with identical framing
/// (LineSplitter: CRLF tolerated, oversized requests rejected with a
/// protocol error, a final unterminated line at EOF still answered).
///
/// Socket mode (`--listen PORT`) accepts up to MaxConnections concurrent
/// connections; each gets its own Session (own document store, own ids)
/// running as one detached task on the shared ThreadPool, so connections
/// never block each other while sharing the process-wide ArenaPool and
/// compute workers. Past the cap, new connections receive a one-line
/// overload error and are closed (bounded backlog — no unbounded
/// queueing). Idle connections are closed after IdleTimeoutMs with a
/// final error line. A `shutdown` request on any connection — or
/// SIGINT/SIGTERM — stops the acceptor and drains: every live connection
/// finishes the requests it has already buffered, then closes.
/// docs/SERVER.md documents the protocol; docs/OBSERVABILITY.md the
/// connection counters.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_DRIVER_SERVER_H
#define AFL_DRIVER_SERVER_H

#include "driver/Session.h"
#include "support/Socket.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace afl {
namespace driver {

/// Configuration of the socket transport (`aflc --serve --listen PORT`).
struct ServeOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see
  /// Server::port() after listen()).
  uint16_t Port = 0;
  /// Concurrent-connection cap; extra connections get an overload reply.
  /// Also used as the kernel listen backlog.
  unsigned MaxConnections = 8;
  /// Idle-connection timeout in milliseconds; 0 disables.
  unsigned IdleTimeoutMs = 5 * 60 * 1000;
  /// Per-request size cap applied by the framing layer.
  size_t MaxRequestBytes = Session::DefaultMaxRequestBytes;
  /// Install SIGINT/SIGTERM handlers that trigger requestStop(). Tests
  /// disable this to keep the harness's handlers.
  bool InstallSignalHandlers = true;
};

/// The `aflc --serve` transport layer. One instance runs either the
/// stdio pump (run()) or the socket listener (listen() + serve()).
class Server {
public:
  /// Serves newline-delimited requests from \p In to \p Out until EOF or
  /// a `shutdown` request, through one Session. Returns the process exit
  /// code (0). Framing matches the socket transport: CRLF stripped,
  /// requests over \p MaxRequestBytes answered with a protocol error, a
  /// final unterminated line at EOF still processed.
  int run(std::istream &In, std::ostream &Out,
          size_t MaxRequestBytes = Session::DefaultMaxRequestBytes);

  /// Binds the listen socket (loopback only). Returns false and sets
  /// \p Error on failure. Must be called once before serve().
  bool listen(const ServeOptions &Opts, std::string &Error);

  /// The bound port (meaningful after a successful listen(); resolves
  /// ephemeral port requests).
  uint16_t port() const { return Listener.port(); }

  /// Runs the accept loop until requestStop() (a `shutdown` request on
  /// any connection, a signal, or an explicit call), then drains live
  /// connections and returns 0.
  int serve();

  /// Asks the accept loop to stop. Thread-safe and signal-safe.
  void requestStop() { Stopping.store(true, std::memory_order_relaxed); }

  /// The transport's lifetime connection counters.
  const ConnectionCounters &connections() const { return Conn; }

private:
  /// One connection's pump: feeds a LineSplitter from the socket, answers
  /// each request line through the connection's Session, and exits on
  /// peer EOF, send failure, idle timeout, `shutdown`, or server stop.
  void handleConnection(support::Socket Client);

  support::ListenSocket Listener;
  ServeOptions Opts;
  ConnectionCounters Conn;
  std::atomic<bool> Stopping{false};
  /// Signals Conn.Active reaching zero during the serve() drain.
  std::mutex DrainMutex;
  std::condition_variable DrainCV;
};

} // namespace driver
} // namespace afl

#endif // AFL_DRIVER_SERVER_H
