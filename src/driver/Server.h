//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental analysis server behind `aflc --serve`: a persistent
/// process that keeps analyzed documents hot and re-analyzes edits
/// incrementally. The wire protocol is newline-delimited JSON on
/// stdin/stdout — one request object per line in, one response object per
/// line out, in order (docs/SERVER.md documents every method, the
/// invalidation model, and the failure semantics).
///
/// Per edit the server re-runs the front end (parse → types → regions;
/// always from scratch — it is the cheap half), then structurally diffs
/// the new region program against the open one (driver/Incremental.h):
///
///   * identical-modulo-literals edits reuse the previous analysis
///     outright ("reuse" tier — zero contexts dirtied);
///   * single arrow-free subtree replacements seed the closure analysis
///     from the previous revision's tables and restart the worklist from
///     the edited subtree's parent ("incremental" tier);
///   * everything else re-analyzes from scratch ("full" tier).
///
/// All tiers share a per-document shard solution cache
/// (solver::ShardSolutionCache), so constraint shards untouched by an
/// edit replay their solved domains without re-entering the solver.
/// Every tier produces byte-identical reports and solver domains to a
/// from-scratch run — tests/ServerTest.cpp proves it differentially.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_DRIVER_SERVER_H
#define AFL_DRIVER_SERVER_H

#include "closure/ClosureAnalysis.h"
#include "completion/Report.h"
#include "constraints/ConstraintGen.h"
#include "driver/Pipeline.h"
#include "solver/Solver.h"
#include "support/Json.h"

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

namespace afl {
namespace driver {

/// One `aflc --serve` session. Not thread-safe: requests are handled
/// strictly in order, matching the one-line-in/one-line-out protocol.
class Server {
public:
  /// Handles one request line and returns the response line (no trailing
  /// newline). Never throws and never terminates the process: malformed
  /// input, unknown methods and bad arguments all produce `"ok": false`
  /// error responses.
  std::string handleLine(const std::string &Line);

  /// Serves newline-delimited requests from \p In to \p Out until EOF or
  /// a `shutdown` request. Returns the process exit code (0).
  int run(std::istream &In, std::ostream &Out);

  /// True once a `shutdown` request has been handled.
  bool shutdownRequested() const { return Shutdown; }

private:
  /// An open document: its text plus every analysis artifact, kept hot
  /// across edits. The region program owns the IR the closure analysis
  /// and constraint system point into, so artifacts are replaced as a
  /// unit (or, on the reuse tier, kept as a unit while only Text moves).
  struct Document {
    std::string Text;
    std::unique_ptr<ast::ASTContext> Ctx;
    const ast::Expr *Ast = nullptr;
    std::unique_ptr<regions::RegionProgram> Prog;
    std::unique_ptr<closure::ClosureAnalysis> CA;
    std::unique_ptr<constraints::GenResult> Gen;
    solver::SolveResult Sol;
    regions::Completion AflC;
    completion::CompletionReport Report;
    solver::ShardSolutionCache Cache;
  };

  /// Wall-clock stage timings of one request, in seconds.
  struct StageTimings {
    double FrontEnd = 0;
    double Closure = 0;
    double ConstraintGen = 0;
    double Solve = 0;
    double Extract = 0;
    bool AnalysisRan = false;
  };

  /// Outcome summary of one analysis (or reuse) for the response body.
  struct AnalysisInfo {
    const char *Tier = "full";
    bool Converged = false;
    bool Sat = false;
    size_t ProcessedContexts = 0;
    size_t DirtiedContexts = 0;
    uint64_t ShardsSolved = 0;
    uint64_t ShardsReused = 0;
  };

  /// Runs closure analysis → constraint generation → cached solve →
  /// extraction over Doc.Prog, replacing Doc's analysis artifacts. When
  /// \p PrevCA and \p Seed are given, tries the seeded incremental
  /// worklist first and falls back to a full run if the seed is rejected.
  /// Mirrors completion::aflCompletion's fallbacks (conservative
  /// completion on non-convergence or unsat) so results are byte-identical
  /// to the one-shot pipeline.
  AnalysisInfo analyze(Document &Doc, const closure::ClosureAnalysis *PrevCA,
                       const closure::IncrementalSeed *Seed, StageTimings &T);

  /// Renders the shared "analysis" result object for open/edit responses.
  std::string analysisBody(const Document &Doc, const AnalysisInfo &Info) const;

  std::string handleOpen(const json::Value &Params, StageTimings &T,
                         std::string &Error);
  std::string handleEdit(const json::Value &Params, StageTimings &T,
                         std::string &Error);
  std::string handleQuery(const json::Value &Params, std::string &Error);
  std::string handleClose(const json::Value &Params, std::string &Error);

  Document *findDoc(const json::Value &Params, std::string &Error);

  std::map<int64_t, Document> Docs;
  int64_t NextDocId = 1;
  bool Shutdown = false;

  /// Lifetime counters, exposed by `query {"what": "metrics"}` and
  /// documented under `server/*` in docs/OBSERVABILITY.md.
  struct Counters {
    uint64_t Requests = 0;
    uint64_t Errors = 0;
    uint64_t Opens = 0;
    uint64_t Edits = 0;
    uint64_t Queries = 0;
    uint64_t Closes = 0;
    uint64_t FullAnalyses = 0;
    uint64_t IncrementalAnalyses = 0;
    uint64_t ReusedAnalyses = 0;
    uint64_t DirtiedContexts = 0;
    uint64_t ShardsSolved = 0;
    uint64_t ShardsReused = 0;
  } Stats;
};

} // namespace driver
} // namespace afl

#endif // AFL_DRIVER_SERVER_H
