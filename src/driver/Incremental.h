//===----------------------------------------------------------------------===//
///
/// \file
/// Structural diff between two revisions of a region program, classifying
/// an edit for the analysis server (docs/SERVER.md):
///
///   * Identical / LiteralsOnly — the revisions are node-for-node
///     isomorphic under identity id maps and raw-equal annotations;
///     LiteralsOnly additionally tolerates differing Int/Bool payloads.
///     No downstream consumer the server exposes reads literal values
///     (the closure analysis, constraint generation, the solver and the
///     completion report are all literal-blind), so the previous
///     revision's entire analysis is reusable byte-for-byte.
///   * Subtree — exactly one structural break, both the removed and the
///     inserted subtree are *arrow-free* (no Lambda/Letrec/RegApp node,
///     no node whose type contains an arrow anywhere), and everything
///     outside the break maps 1:1 (nodes, variables, and every region
///     variable the closure analysis reads). Arrow-free subtrees have
///     provably empty abstract closure values throughout, so they
///     contribute nothing to any outside closure table — which is what
///     makes ClosureAnalysis::runIncremental's seeded worklist restart
///     exact rather than approximate.
///   * Unmapped — anything else; the caller re-analyzes from scratch
///     (always correct, never wrong — just slower).
///
/// The classifier is deliberately conservative: any surprise (an id map
/// conflict, a region-annotation mismatch the closure analysis could
/// observe, a second break) degrades to Unmapped rather than risking an
/// unsound seed. tests/ServerTest.cpp differentially proves that every
/// classification produces byte-identical reports and solver domains to
/// from-scratch analysis.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_DRIVER_INCREMENTAL_H
#define AFL_DRIVER_INCREMENTAL_H

#include "closure/ClosureAnalysis.h"
#include "regions/RegionProgram.h"

namespace afl {
namespace driver {

enum class DiffKind {
  /// Isomorphic under identity maps, all payloads equal.
  Identical,
  /// Isomorphic under identity maps; only Int/Bool payloads differ.
  LiteralsOnly,
  /// Exactly one arrow-free subtree replaced; Seed is valid.
  Subtree,
  /// No incremental mapping found; fall back to full re-analysis.
  Unmapped,
};

struct ProgramDiff {
  DiffKind Kind = DiffKind::Unmapped;
  /// Valid iff Kind == Subtree: the translation maps plus the restart
  /// frontier for ClosureAnalysis::runIncremental.
  closure::IncrementalSeed Seed;
};

/// Diffs \p Old against \p New (two finalized region programs for two
/// revisions of the same source document).
ProgramDiff diffPrograms(const regions::RegionProgram &Old,
                         const regions::RegionProgram &New);

} // namespace driver
} // namespace afl

#endif // AFL_DRIVER_INCREMENTAL_H
