//===----------------------------------------------------------------------===//
///
/// \file
/// One analysis-server session: the transport-agnostic core behind
/// `aflc --serve`. A Session owns a document store (text + every analysis
/// artifact, kept hot across edits) and answers one newline-delimited JSON
/// request at a time via handleLine(). It knows nothing about where the
/// request bytes came from — driver::Server pumps it from stdin/stdout or
/// from a TCP connection (docs/SERVER.md documents every method, the
/// invalidation model, and the failure semantics).
///
/// Per edit the session re-runs the front end (parse → types → regions;
/// always from scratch — it is the cheap half), then structurally diffs
/// the new region program against the open one (driver/Incremental.h):
///
///   * identical-modulo-literals edits reuse the previous analysis
///     outright ("reuse" tier — zero contexts dirtied);
///   * single arrow-free subtree replacements seed the closure analysis
///     from the previous revision's tables and restart the worklist from
///     the edited subtree's parent ("incremental" tier);
///   * everything else re-analyzes from scratch ("full" tier).
///
/// All tiers share a per-document shard solution cache
/// (solver::ShardSolutionCache), so constraint shards untouched by an
/// edit replay their solved domains without re-entering the solver.
/// Every tier produces byte-identical reports and solver domains to a
/// from-scratch run — tests/ServerTest.cpp proves it differentially, and
/// the socket transport's multi-client harness proves each connection's
/// responses are byte-identical to a fresh single-session replay.
///
/// Thread-safety: a Session is confined to one connection (or stdin) and
/// is not itself thread-safe; concurrency comes from running many
/// sessions at once. The process-wide structures sessions share are each
/// thread-safe on their own: ArenaPool::global() (mutexed checkout/
/// return), ThreadPool::global() (mutexed queue), and
/// interp::defaultBackend() (C++11 static-local init). Interners
/// (StringInterner, SetInterner, StateVecInterner) are per-document —
/// they live inside the session's ASTContext/analysis artifacts — so no
/// cross-session locking is needed for them.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_DRIVER_SESSION_H
#define AFL_DRIVER_SESSION_H

#include "closure/ClosureAnalysis.h"
#include "completion/Report.h"
#include "constraints/ConstraintGen.h"
#include "driver/Pipeline.h"
#include "solver/Solver.h"
#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace afl {
namespace driver {

/// Shared lifetime counters of the socket transport, rendered into every
/// session's `query {"what": "metrics"}` response as the "connections"
/// object (docs/OBSERVABILITY.md). Owned by driver::Server; sessions hold
/// a const pointer (stdio sessions hold none and omit the object).
struct ConnectionCounters {
  std::atomic<uint64_t> Accepted{0}; ///< Connections handed a session.
  std::atomic<uint64_t> Active{0};   ///< Sessions currently live.
  std::atomic<uint64_t> Rejected{0}; ///< Overload-refused connections.
  std::atomic<uint64_t> TimedOut{0}; ///< Connections closed for idleness.
};

/// Splits a byte stream into protocol lines with uniform framing rules
/// for every transport: lines end at '\n', a trailing '\r' is stripped
/// (CRLF clients), a line longer than the cap is reported once as
/// Oversize and its bytes discarded through the terminating newline, and
/// finish() turns a final unterminated line at EOF into a regular line.
class LineSplitter {
public:
  enum class Item { None, Line, Oversize };

  explicit LineSplitter(size_t MaxLineBytes) : MaxLine(MaxLineBytes) {}

  /// Appends raw transport bytes.
  void feed(const char *Data, size_t Len) {
    if (Overflow) {
      // Mid-discard: only the position of the next '\n' matters.
      size_t Nl = std::string_view(Data, Len).find('\n');
      if (Nl == std::string_view::npos)
        return;
      Data += Nl;
      Len -= Nl;
    }
    Buf.append(Data, Len);
  }

  /// Marks end of stream: pending bytes become one final line.
  void finish() { Finished = true; }

  /// Pulls the next complete line (CR stripped) into \p Line. Oversize is
  /// returned exactly once per too-long line; None means "feed me more"
  /// (or, after finish(), "drained").
  Item next(std::string &Line) {
    for (;;) {
      size_t Nl = Buf.find('\n', Scan);
      if (Nl == std::string::npos) {
        Scan = Buf.size();
        if (!Overflow && Buf.size() > MaxLine) {
          Overflow = true;
          Buf.clear();
          Scan = 0;
          return Item::Oversize;
        }
        if (Finished && !Overflow && !Buf.empty()) {
          Line = std::move(Buf);
          Buf.clear();
          Scan = 0;
          stripCr(Line);
          return Item::Line;
        }
        return Item::None;
      }
      std::string L = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      Scan = 0;
      if (Overflow) {
        // This newline terminates the line already reported as Oversize.
        Overflow = false;
        continue;
      }
      if (L.size() > MaxLine)
        return Item::Oversize;
      stripCr(L);
      Line = std::move(L);
      return Item::Line;
    }
  }

private:
  static void stripCr(std::string &L) {
    if (!L.empty() && L.back() == '\r')
      L.pop_back();
  }

  std::string Buf;
  size_t Scan = 0;
  size_t MaxLine;
  bool Overflow = false;
  bool Finished = false;
};

/// One `aflc --serve` session. Not thread-safe: requests are handled
/// strictly in order, matching the one-line-in/one-line-out protocol;
/// the socket transport runs one Session per connection.
class Session {
public:
  /// Request-size cap every transport applies before the JSON layer.
  static constexpr size_t DefaultMaxRequestBytes = 1u << 20; // 1 MiB

  Session() = default;
  /// A session attached to the socket transport: `query metrics`
  /// responses additionally render \p Conn as the "connections" object.
  explicit Session(const ConnectionCounters *Conn) : Conn(Conn) {}

  /// Handles one request line and returns the response line (no trailing
  /// newline). Never throws and never terminates the process: malformed
  /// input, unknown methods and bad arguments all produce `"ok": false`
  /// error responses.
  std::string handleLine(const std::string &Line);

  /// A transport-level failure (oversized request, idle timeout) rendered
  /// as a standard error response line; counted as a failed request. The
  /// bytes never reached the JSON layer, so the echoed id is null.
  std::string transportError(const std::string &Msg);

  /// Renders an error response line outside any session (e.g. the
  /// overload reply sent to a connection that never got a session).
  static std::string errorLine(const std::string &Msg);

  /// True once a `shutdown` request has been handled.
  bool shutdownRequested() const { return Shutdown; }

private:
  /// An open document: its text plus every analysis artifact, kept hot
  /// across edits. The region program owns the IR the closure analysis
  /// and constraint system point into, so artifacts are replaced as a
  /// unit (or, on the reuse tier, kept as a unit while only Text moves).
  struct Document {
    std::string Text;
    std::unique_ptr<ast::ASTContext> Ctx;
    const ast::Expr *Ast = nullptr;
    std::unique_ptr<regions::RegionProgram> Prog;
    std::unique_ptr<closure::ClosureAnalysis> CA;
    std::unique_ptr<constraints::GenResult> Gen;
    solver::SolveResult Sol;
    regions::Completion AflC;
    completion::CompletionReport Report;
    solver::ShardSolutionCache Cache;
  };

  /// Wall-clock stage timings of one request, in seconds.
  struct StageTimings {
    double FrontEnd = 0;
    double Closure = 0;
    double ConstraintGen = 0;
    double Solve = 0;
    double Extract = 0;
    bool AnalysisRan = false;
  };

  /// Outcome summary of one analysis (or reuse) for the response body.
  struct AnalysisInfo {
    const char *Tier = "full";
    bool Converged = false;
    bool Sat = false;
    size_t ProcessedContexts = 0;
    size_t DirtiedContexts = 0;
    uint64_t ShardsSolved = 0;
    uint64_t ShardsReused = 0;
  };

  /// Runs closure analysis → constraint generation → cached solve →
  /// extraction over Doc.Prog, replacing Doc's analysis artifacts. When
  /// \p PrevCA and \p Seed are given, tries the seeded incremental
  /// worklist first and falls back to a full run if the seed is rejected.
  /// Mirrors completion::aflCompletion's fallbacks (conservative
  /// completion on non-convergence or unsat) so results are byte-identical
  /// to the one-shot pipeline.
  AnalysisInfo analyze(Document &Doc, const closure::ClosureAnalysis *PrevCA,
                       const closure::IncrementalSeed *Seed, StageTimings &T);

  /// Renders the shared "analysis" result object for open/edit responses.
  std::string analysisBody(const Document &Doc, const AnalysisInfo &Info) const;

  std::string handleOpen(const json::Value &Params, StageTimings &T,
                         std::string &Error);
  std::string handleEdit(const json::Value &Params, StageTimings &T,
                         std::string &Error);
  std::string handleQuery(const json::Value &Params, std::string &Error);
  std::string handleClose(const json::Value &Params, std::string &Error);

  Document *findDoc(const json::Value &Params, std::string &Error);

  std::map<int64_t, Document> Docs;
  int64_t NextDocId = 1;
  bool Shutdown = false;
  const ConnectionCounters *Conn = nullptr;

  /// Lifetime counters, exposed by `query {"what": "metrics"}` and
  /// documented under `server/*` in docs/OBSERVABILITY.md.
  struct Counters {
    uint64_t Requests = 0;
    uint64_t Errors = 0;
    uint64_t Opens = 0;
    uint64_t Edits = 0;
    uint64_t Queries = 0;
    uint64_t Closes = 0;
    uint64_t FullAnalyses = 0;
    uint64_t IncrementalAnalyses = 0;
    uint64_t ReusedAnalyses = 0;
    uint64_t DirtiedContexts = 0;
    uint64_t ShardsSolved = 0;
    uint64_t ShardsReused = 0;
  } Stats;
};

} // namespace driver
} // namespace afl

#endif // AFL_DRIVER_SESSION_H
