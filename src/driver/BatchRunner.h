//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-pooled batch execution of the pipeline: run many independent
/// programs concurrently (each on its own ASTContext — no shared mutable
/// state between runs), keep a lightweight per-program summary, and
/// aggregate the per-stage metrics. Backs `aflc --batch` and is the hot
/// path a future service tier will sit on.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_DRIVER_BATCHRUNNER_H
#define AFL_DRIVER_BATCHRUNNER_H

#include "driver/Pipeline.h"

#include <string>
#include <vector>

namespace afl {
namespace driver {

/// One unit of batch work: a named source program. An item whose source
/// could not be loaded carries the loader's error in \c LoadError; the
/// batch records it as a failed result without running the pipeline —
/// per-item isolation covers I/O failures, not just pipeline failures.
struct BatchItem {
  std::string Name;
  std::string Source;
  std::string LoadError;
};

/// Summary of one pipeline run inside a batch. Deliberately does not
/// retain the PipelineResult itself (AST, region program, traces), so a
/// large corpus stays memory-bounded.
struct BatchItemResult {
  std::string Name;
  bool Ok = false;
  /// Rendered diagnostics when !Ok.
  std::string Error;
  /// A-F-L run result value (empty when runs were skipped).
  std::string ResultText;
  PipelineStats Stats;
  completion::AflStats Analysis;
  bool HasRuns = false;
  interp::Stats ConservativeStats;
  interp::Stats AflStats;

  /// Emits this item's metrics subtree (same schema as
  /// PipelineResult::recordMetrics).
  void recordMetrics(MetricsRegistry &Reg) const;
};

/// The whole batch: per-item summaries (in input order) plus aggregates.
struct BatchResult {
  std::vector<BatchItemResult> Items;
  size_t NumOk = 0;
  size_t NumFailed = 0;
  /// Number of worker threads actually used.
  unsigned Threads = 0;
  /// End-to-end wall time of the batch (not the sum of per-item times).
  double WallSeconds = 0;
  /// Pointwise sums over all items. In the aggregate interp stats the
  /// per-program peak fields (MaxRegions/MaxValues) are *sums of peaks*
  /// — reported as `total_*` in the metrics JSON; the true cross-item
  /// maxima live in the Peak fields below and are what `max_*` means.
  PipelineStats AggregateStats;
  completion::AflStats AggregateAnalysis;
  interp::Stats AggregateConservative;
  interp::Stats AggregateAfl;
  /// True maxima of MaxRegions/MaxValues across items (other fields
  /// unused).
  interp::Stats PeakConservative;
  interp::Stats PeakAfl;
  bool HasRuns = false;

  /// True when every item succeeded.
  bool allOk() const { return NumFailed == 0; }

  /// Emits "files"/"ok"/"failed"/"threads"/"wall_seconds", an
  /// "aggregate" scope, and one scope per item under "programs".
  void recordMetrics(MetricsRegistry &Reg) const;
};

/// Walks \p Dir recursively and appends every `.afl` file to \p Work as
/// a batch item. Fault-tolerant by construction: every filesystem
/// operation goes through the `error_code` overloads, so a
/// permission-denied subdirectory, a dangling symlink, or a file that
/// fails mid-read becomes a failed item (\c LoadError set) and the walk
/// continues with the remaining entries — one bad entry cannot abort
/// (or throw out of) the whole batch. Returns false only when \p Dir
/// itself cannot be opened, with \p Error holding a rendered message.
/// Item order follows directory iteration order, which is unspecified;
/// callers sort.
bool collectBatchItems(const std::string &Dir, std::vector<BatchItem> &Work,
                       std::string &Error);

/// Runs the pipeline over every item with \p Threads workers
/// (0 = hardware concurrency). Results are deterministic and ordered:
/// Items[i] always describes Work[i], whatever the schedule. Each run
/// gets its own ASTContext/arena, so workers share nothing.
BatchResult runBatch(const std::vector<BatchItem> &Work,
                     const PipelineOptions &Options = PipelineOptions(),
                     unsigned Threads = 0);

} // namespace driver
} // namespace afl

#endif // AFL_DRIVER_BATCHRUNNER_H
