#include "driver/Incremental.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

namespace afl {
namespace driver {

using closure::IncrementalSeed;
using regions::RegionProgram;
using regions::RegionVarId;
using regions::RExpr;
using regions::RNodeId;
using regions::RTypeId;
using regions::RTypeKind;
using regions::RTypeTable;
using regions::VarId;

namespace {

constexpr uint32_t NoMap = IncrementalSeed::NoMap;

/// True iff any type node reachable from \p Root is an Arrow.
bool typeContainsArrow(const RTypeTable &T, RTypeId Root) {
  std::vector<RTypeId> Stack{Root};
  std::unordered_set<RTypeId> Seen;
  while (!Stack.empty()) {
    RTypeId Ty = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(Ty).second)
      continue;
    switch (T.kind(Ty)) {
    case RTypeKind::Arrow:
      return true;
    case RTypeKind::Pair:
      Stack.push_back(T.child0(Ty));
      Stack.push_back(T.child1(Ty));
      break;
    case RTypeKind::List:
      Stack.push_back(T.child0(Ty));
      break;
    default:
      break;
    }
  }
  return false;
}

/// Child edges of a node, in a fixed order shared by both revisions.
void appendChildren(const RExpr *N, std::vector<const RExpr *> &Out) {
  switch (N->kind()) {
  case RExpr::Kind::Lambda:
    Out.push_back(regions::cast<regions::RLambdaExpr>(N)->body());
    break;
  case RExpr::Kind::App: {
    const auto *A = regions::cast<regions::RAppExpr>(N);
    Out.push_back(A->fn());
    Out.push_back(A->arg());
    break;
  }
  case RExpr::Kind::Let: {
    const auto *L = regions::cast<regions::RLetExpr>(N);
    Out.push_back(L->init());
    Out.push_back(L->body());
    break;
  }
  case RExpr::Kind::Letrec: {
    const auto *L = regions::cast<regions::RLetrecExpr>(N);
    Out.push_back(L->fnBody());
    Out.push_back(L->body());
    break;
  }
  case RExpr::Kind::If: {
    const auto *I = regions::cast<regions::RIfExpr>(N);
    Out.push_back(I->cond());
    Out.push_back(I->thenExpr());
    Out.push_back(I->elseExpr());
    break;
  }
  case RExpr::Kind::Pair: {
    const auto *P = regions::cast<regions::RPairExpr>(N);
    Out.push_back(P->first());
    Out.push_back(P->second());
    break;
  }
  case RExpr::Kind::Cons: {
    const auto *C = regions::cast<regions::RConsExpr>(N);
    Out.push_back(C->head());
    Out.push_back(C->tail());
    break;
  }
  case RExpr::Kind::UnOp:
    Out.push_back(regions::cast<regions::RUnOpExpr>(N)->operand());
    break;
  case RExpr::Kind::BinOp: {
    const auto *B = regions::cast<regions::RBinOpExpr>(N);
    Out.push_back(B->lhs());
    Out.push_back(B->rhs());
    break;
  }
  default: // Int, Bool, Unit, Var, RegApp, Nil: leaves.
    break;
  }
}

/// True iff the subtree rooted at \p Root is arrow-free: no abstraction or
/// region application node and no node whose type contains an arrow. Such
/// subtrees can only carry empty abstract closure values, so replacing one
/// cannot perturb any closure fact outside it.
bool arrowFreeSubtree(const RTypeTable &Types, const RExpr *Root) {
  std::vector<const RExpr *> Stack{Root};
  while (!Stack.empty()) {
    const RExpr *N = Stack.back();
    Stack.pop_back();
    switch (N->kind()) {
    case RExpr::Kind::Lambda:
    case RExpr::Kind::Letrec:
    case RExpr::Kind::RegApp:
      return false;
    default:
      break;
    }
    if (typeContainsArrow(Types, N->type()))
      return false;
    appendChildren(N, Stack);
  }
  return true;
}

/// Lockstep walker over the two trees. Builds the old→new id maps, records
/// structural breaks, and accumulates the raw-equality / literal-difference
/// evidence used to classify the edit.
class Differ {
public:
  Differ(const RegionProgram &Old, const RegionProgram &New)
      : Old(Old), New(New) {
    NodeMap.assign(Old.numNodes(), NoMap);
    VarMap.assign(Old.numVars(), NoMap);
    RevVar.assign(New.numVars(), NoMap);
    RegionMap.assign(Old.Types.numRegionVars(), NoMap);
    RevRegion.assign(New.Types.numRegionVars(), NoMap);
  }

  ProgramDiff run();

private:
  struct Frame {
    const RExpr *O;
    const RExpr *N;
    const RExpr *ParentNew;
  };

  bool mapRegion(RegionVarId O, RegionVarId N2) {
    if (O >= RegionMap.size() || N2 >= RevRegion.size())
      return false;
    if (RegionMap[O] != NoMap)
      return RegionMap[O] == N2;
    if (RevRegion[N2] != NoMap)
      return false;
    RegionMap[O] = N2;
    RevRegion[N2] = O;
    return true;
  }

  bool bindVar(VarId O, VarId N2) {
    if (O >= VarMap.size() || N2 >= RevVar.size() || VarMap[O] != NoMap ||
        RevVar[N2] != NoMap)
      return false;
    VarMap[O] = N2;
    RevVar[N2] = O;
    return true;
  }

  /// A variable *use* must reference an already-mapped binder (binders
  /// dominate uses in the walk order).
  bool useVar(VarId O, VarId N2) {
    return O < VarMap.size() && VarMap[O] == N2;
  }

  /// Maps \p OldSet through RegionMap and compares against \p NewSet.
  bool regionSetMatches(const std::set<RegionVarId> &OldSet,
                        const std::set<RegionVarId> &NewSet) {
    if (OldSet.size() != NewSet.size())
      return false;
    std::vector<RegionVarId> Mapped;
    Mapped.reserve(OldSet.size());
    for (RegionVarId R : OldSet) {
      if (R >= RegionMap.size() || RegionMap[R] == NoMap)
        return false;
      Mapped.push_back(RegionMap[R]);
    }
    std::sort(Mapped.begin(), Mapped.end());
    return std::equal(Mapped.begin(), Mapped.end(), NewSet.begin());
  }

  void visit(const RExpr *O, const RExpr *N2, const RExpr *ParentNew,
             std::vector<Frame> &Stack);

  const RegionProgram &Old;
  const RegionProgram &New;

  std::vector<uint32_t> NodeMap;
  std::vector<uint32_t> VarMap;
  std::vector<uint32_t> RevVar;
  std::vector<uint32_t> RegionMap;
  std::vector<uint32_t> RevRegion;

  /// Structural break pairs (old subtree, new subtree) and the new-program
  /// parent of the first break.
  std::vector<std::pair<const RExpr *, const RExpr *>> Breaks;
  const RExpr *BreakParentNew = nullptr;

  /// Deferred checks that need the completed region map: Lambda/Letrec
  /// freeRegions sets, and RegApp actual vectors.
  std::vector<std::pair<const RExpr *, const RExpr *>> FreeRegionChecks;
  std::vector<std::pair<const regions::RRegAppExpr *,
                        const regions::RRegAppExpr *>>
      ActualChecks;

  bool Conflict = false;
  bool ArrowKindOk = true;
  bool LiteralDiff = false;
  /// Whether every mapped pair is raw-identical (same ids, same
  /// annotations) — the precondition for whole-analysis reuse.
  bool RawEqual = true;
};

void Differ::visit(const RExpr *O, const RExpr *N2, const RExpr *ParentNew,
                   std::vector<Frame> &Stack) {
  bool StructuralMatch = O->kind() == N2->kind();
  if (StructuralMatch && O->kind() == RExpr::Kind::UnOp)
    StructuralMatch = regions::cast<regions::RUnOpExpr>(O)->op() ==
                      regions::cast<regions::RUnOpExpr>(N2)->op();
  if (StructuralMatch && O->kind() == RExpr::Kind::BinOp)
    StructuralMatch = regions::cast<regions::RBinOpExpr>(O)->op() ==
                      regions::cast<regions::RBinOpExpr>(N2)->op();
  if (!StructuralMatch) {
    if (Breaks.empty())
      BreakParentNew = ParentNew;
    Breaks.push_back({O, N2});
    return;
  }

  NodeMap[O->id()] = N2->id();

  // The closure analysis consults whether a node's type is an Arrow (pool
  // reads at fst/snd/hd/tl); the mapped revisions must agree.
  if ((Old.Types.kind(O->type()) == RTypeKind::Arrow) !=
      (New.Types.kind(N2->type()) == RTypeKind::Arrow))
    ArrowKindOk = false;

  // letregion binders map positionally.
  const auto &OB = O->boundRegions();
  const auto &NB = N2->boundRegions();
  if (OB.size() != NB.size()) {
    Conflict = true;
    return;
  }
  for (size_t I = 0; I != OB.size(); ++I) {
    if (!mapRegion(OB[I], NB[I])) {
      Conflict = true;
      return;
    }
  }

  RawEqual = RawEqual && O->id() == N2->id() && O->type() == N2->type() &&
             O->writeRegion() == N2->writeRegion() &&
             O->readRegions() == N2->readRegions() && OB == NB &&
             O->effect() == N2->effect() &&
             O->overallEffect() == N2->overallEffect();

  switch (O->kind()) {
  case RExpr::Kind::Int:
    if (regions::cast<regions::RIntExpr>(O)->value() !=
        regions::cast<regions::RIntExpr>(N2)->value())
      LiteralDiff = true;
    break;
  case RExpr::Kind::Bool:
    if (regions::cast<regions::RBoolExpr>(O)->value() !=
        regions::cast<regions::RBoolExpr>(N2)->value())
      LiteralDiff = true;
    break;
  case RExpr::Kind::Var: {
    VarId OV = regions::cast<regions::RVarExpr>(O)->var();
    VarId NV = regions::cast<regions::RVarExpr>(N2)->var();
    if (!useVar(OV, NV)) {
      Conflict = true;
      return;
    }
    RawEqual = RawEqual && OV == NV;
    break;
  }
  case RExpr::Kind::Lambda: {
    const auto *OL = regions::cast<regions::RLambdaExpr>(O);
    const auto *NL = regions::cast<regions::RLambdaExpr>(N2);
    if (!bindVar(OL->param(), NL->param())) {
      Conflict = true;
      return;
    }
    FreeRegionChecks.push_back({O, N2});
    RawEqual = RawEqual && OL->param() == NL->param() &&
               OL->freeRegions() == NL->freeRegions();
    break;
  }
  case RExpr::Kind::Let: {
    const auto *OL = regions::cast<regions::RLetExpr>(O);
    const auto *NL = regions::cast<regions::RLetExpr>(N2);
    if (!bindVar(OL->var(), NL->var())) {
      Conflict = true;
      return;
    }
    RawEqual = RawEqual && OL->var() == NL->var();
    break;
  }
  case RExpr::Kind::Letrec: {
    const auto *OL = regions::cast<regions::RLetrecExpr>(O);
    const auto *NL = regions::cast<regions::RLetrecExpr>(N2);
    if (!bindVar(OL->fn(), NL->fn()) || !bindVar(OL->param(), NL->param())) {
      Conflict = true;
      return;
    }
    const auto &OF = OL->formals();
    const auto &NF = NL->formals();
    if (OF.size() != NF.size()) {
      Conflict = true;
      return;
    }
    for (size_t I = 0; I != OF.size(); ++I) {
      if (!mapRegion(OF[I], NF[I])) {
        Conflict = true;
        return;
      }
    }
    FreeRegionChecks.push_back({O, N2});
    RawEqual = RawEqual && OL->fn() == NL->fn() &&
               OL->param() == NL->param() && OF == NF &&
               OL->freeRegions() == NL->freeRegions();
    break;
  }
  case RExpr::Kind::RegApp: {
    const auto *OR = regions::cast<regions::RRegAppExpr>(O);
    const auto *NR = regions::cast<regions::RRegAppExpr>(N2);
    if (!useVar(OR->fn(), NR->fn()) ||
        OR->actuals().size() != NR->actuals().size()) {
      Conflict = true;
      return;
    }
    ActualChecks.push_back({OR, NR});
    RawEqual =
        RawEqual && OR->fn() == NR->fn() && OR->actuals() == NR->actuals();
    break;
  }
  default:
    break;
  }

  std::vector<const RExpr *> OC, NC;
  appendChildren(O, OC);
  appendChildren(N2, NC);
  // Same kind implies the same child arity.
  for (size_t I = 0; I != OC.size(); ++I)
    Stack.push_back({OC[I], NC[I], N2});
}

ProgramDiff Differ::run() {
  ProgramDiff D;
  if (!Old.Root || !New.Root ||
      Old.GlobalRegions.size() != New.GlobalRegions.size())
    return D;

  std::vector<Frame> Stack{{Old.Root, New.Root, nullptr}};
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    visit(F.O, F.N, F.ParentNew, Stack);
    if (Conflict || Breaks.size() > 1)
      return D;
  }

  if (Breaks.empty()) {
    // Identity reuse demands raw equality of everything the analyses and
    // the report could observe — id spaces included.
    if (!RawEqual || Old.numNodes() != New.numNodes() ||
        Old.numVars() != New.numVars() ||
        Old.GlobalRegions != New.GlobalRegions)
      return D;
    D.Kind = LiteralDiff ? DiffKind::LiteralsOnly : DiffKind::Identical;
    return D;
  }

  // Exactly one break: Subtree candidate.
  if (!BreakParentNew || !ArrowKindOk)
    return D;
  if (!arrowFreeSubtree(Old.Types, Breaks[0].first) ||
      !arrowFreeSubtree(New.Types, Breaks[0].second))
    return D;
  for (size_t I = 0; I != Old.GlobalRegions.size(); ++I)
    if (!mapRegion(Old.GlobalRegions[I], New.GlobalRegions[I]))
      return D;
  for (auto [O, N2] : FreeRegionChecks) {
    if (auto *OL = regions::dyn_cast<regions::RLambdaExpr>(O)) {
      if (!regionSetMatches(
              OL->freeRegions(),
              regions::cast<regions::RLambdaExpr>(N2)->freeRegions()))
        return D;
    } else if (!regionSetMatches(
                   regions::cast<regions::RLetrecExpr>(O)->freeRegions(),
                   regions::cast<regions::RLetrecExpr>(N2)->freeRegions())) {
      return D;
    }
  }
  for (auto [OR, NR] : ActualChecks) {
    for (size_t I = 0; I != OR->actuals().size(); ++I) {
      RegionVarId R = OR->actuals()[I];
      if (R >= RegionMap.size() || RegionMap[R] != NR->actuals()[I])
        return D;
    }
  }

  D.Kind = DiffKind::Subtree;
  D.Seed.NodeMap = std::move(NodeMap);
  D.Seed.VarMap = std::move(VarMap);
  D.Seed.RegionVarMap = std::move(RegionMap);
  D.Seed.ParentNode = BreakParentNew->id();
  return D;
}

} // namespace

ProgramDiff diffPrograms(const RegionProgram &Old, const RegionProgram &New) {
  return Differ(Old, New).run();
}

} // namespace driver
} // namespace afl
