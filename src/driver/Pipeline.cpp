#include "driver/Pipeline.h"

#include "completion/Conservative.h"
#include "parser/Parser.h"
#include "regions/RegionInference.h"
#include "regions/RegionPrinter.h"

using namespace afl;
using namespace afl::driver;

std::string PipelineResult::printConservative() const {
  if (!Prog)
    return "";
  return regions::printRegionProgram(*Prog, &ConservativeC);
}

std::string PipelineResult::printAfl() const {
  if (!Prog)
    return "";
  return regions::printRegionProgram(*Prog, &AflC);
}

PipelineResult driver::runPipeline(std::string_view Source,
                                   const PipelineOptions &Options) {
  PipelineResult R;
  R.Ctx = std::make_unique<ast::ASTContext>();

  R.Ast = parseExpr(Source, *R.Ctx, R.Diags);
  if (!R.Ast)
    return R;

  types::TypedProgram Typed = types::inferTypes(R.Ast, *R.Ctx, R.Diags);
  if (!Typed.Success)
    return R;

  R.Prog = regions::inferRegions(R.Ast, *R.Ctx, Typed, R.Diags);
  if (!R.Prog)
    return R;

  R.ConservativeC = completion::conservativeCompletion(*R.Prog);
  R.AflC = completion::aflCompletion(*R.Prog, &R.Analysis,
                                     Options.GenOptions);

  if (!Options.SkipRuns) {
    interp::RunOptions RO;
    RO.RecordTrace = Options.RecordTrace;
    RO.MaxSteps = Options.MaxSteps;
    R.Conservative = interp::run(*R.Prog, R.ConservativeC, RO);
    if (!R.Conservative.Ok) {
      R.Diags.error(SourceLoc(),
                    "conservative run failed: " + R.Conservative.Error);
      return R;
    }
    R.Afl = interp::run(*R.Prog, R.AflC, RO);
    if (!R.Afl.Ok) {
      R.Diags.error(SourceLoc(), "A-F-L run failed: " + R.Afl.Error);
      return R;
    }
    if (!Options.SkipReference) {
      R.Reference = interp::runRef(R.Ast, *R.Ctx, Options.MaxSteps);
      if (!R.Reference.Ok) {
        R.Diags.error(SourceLoc(),
                      "reference run failed: " + R.Reference.Error);
        return R;
      }
    }
  }

  R.Ok = true;
  return R;
}
