#include "driver/Pipeline.h"

#include "completion/Conservative.h"
#include "parser/Parser.h"
#include "regions/RegionInference.h"
#include "regions/RegionPrinter.h"
#include "support/ArenaPool.h"

#include <cstdio>

using namespace afl;
using namespace afl::driver;

std::string PipelineResult::printConservative() const {
  if (!Prog)
    return "";
  return regions::printRegionProgram(*Prog, &ConservativeC);
}

std::string PipelineResult::printAfl() const {
  if (!Prog)
    return "";
  return regions::printRegionProgram(*Prog, &AflC);
}

void PipelineStats::accumulate(const PipelineStats &Other) {
  ParseSeconds += Other.ParseSeconds;
  TypeInferSeconds += Other.TypeInferSeconds;
  RegionInferSeconds += Other.RegionInferSeconds;
  ConservativeSeconds += Other.ConservativeSeconds;
  ClosureSeconds += Other.ClosureSeconds;
  ConstraintGenSeconds += Other.ConstraintGenSeconds;
  SolveSeconds += Other.SolveSeconds;
  ExtractSeconds += Other.ExtractSeconds;
  RunConservativeSeconds += Other.RunConservativeSeconds;
  RunAflSeconds += Other.RunAflSeconds;
  RunReferenceSeconds += Other.RunReferenceSeconds;
  VmCompileSeconds += Other.VmCompileSeconds;
  VmExecuteSeconds += Other.VmExecuteSeconds;
  TotalSeconds += Other.TotalSeconds;
  AstNodes += Other.AstNodes;
  RegionNodes += Other.RegionNodes;
  RegionVars += Other.RegionVars;
}

void driver::recordPipelineMetrics(MetricsRegistry &Reg,
                                   const PipelineStats &Stats,
                                   const completion::AflStats &Analysis,
                                   const interp::Stats *ConsRun,
                                   const interp::Stats *AflRun, bool Ok) {
  Reg.set("ok", Ok ? 1 : 0);
  {
    MetricScope Sizes(Reg, "sizes");
    Reg.set("ast_nodes", Stats.AstNodes);
    Reg.set("region_nodes", Stats.RegionNodes);
    Reg.set("region_vars", Stats.RegionVars);
    Reg.set("closure_contexts", Analysis.NumContexts);
    Reg.set("closures", Analysis.NumClosures);
    Reg.set("closure_envs", Analysis.Closure.NumEnvs);
    Reg.set("closure_interned_sets", Analysis.Closure.InternedSets);
    Reg.set("state_vars", Analysis.NumStateVars);
    Reg.set("bool_vars", Analysis.NumBoolVars);
    Reg.set("constraints", Analysis.NumConstraints);
  }
  {
    MetricScope Stages(Reg, "stages");
    auto Stage = [&Reg](const char *Name, double Seconds) {
      MetricScope S(Reg, Name);
      Reg.addTime("wall_seconds", Seconds);
    };
    Stage("parse", Stats.ParseSeconds);
    Stage("type_inference", Stats.TypeInferSeconds);
    Stage("region_inference", Stats.RegionInferSeconds);
    Stage("conservative_completion", Stats.ConservativeSeconds);
    {
      MetricScope S(Reg, "closure_analysis");
      Reg.addTime("wall_seconds", Stats.ClosureSeconds);
      Reg.add("passes", Analysis.Closure.Passes);
      Reg.add("processed_contexts", Analysis.Closure.ProcessedContexts);
      Reg.add("enqueued", Analysis.Closure.Enqueued);
      Reg.set("worklist", Analysis.Closure.UsedWorklist ? 1 : 0);
      Reg.set("converged", Analysis.Closure.Converged ? 1 : 0);
      if (Analysis.Closure.ThreadsUsed > 0) {
        MetricScope Par(Reg, "parallel");
        Reg.set("threads", Analysis.Closure.ThreadsUsed);
        Reg.add("parallel_rounds", Analysis.Closure.ParallelRounds);
        Reg.add("inline_rounds", Analysis.Closure.InlineRounds);
        Reg.add("partitions", Analysis.Closure.Partitions);
        Reg.set("largest_partition", Analysis.Closure.LargestPartition);
        Reg.add("pool_tasks_queued", Analysis.Closure.PoolTasksQueued);
        Reg.add("pool_items_stolen", Analysis.Closure.PoolItemsStolen);
        Reg.addTime("parallel_seconds", Analysis.Closure.ParallelSeconds);
      }
      if (Analysis.Closure.WideningBound > 0) {
        MetricScope Wide(Reg, "widening");
        Reg.set("bound", Analysis.Closure.WideningBound);
        Reg.set("widened_closures", Analysis.Closure.WidenedClosures);
        Reg.set("widened_vars", Analysis.Closure.WidenedVars);
        Reg.set("widened_pinned_calls", Analysis.NumWidenedPinned);
      }
    }
    {
      MetricScope S(Reg, "constraint_gen");
      Reg.addTime("wall_seconds", Stats.ConstraintGenSeconds);
      const constraints::ShardingStats &Shard = Analysis.Sharding;
      MetricScope Sharding(Reg, "sharding");
      Reg.set("shards", Shard.Shards);
      Reg.set("largest_shard_constraints", Shard.LargestShardConstraints);
      Reg.set("interned_shapes", Shard.InternedShapes);
      Reg.addTime("finalize_seconds", Shard.FinalizeSeconds);
    }
    {
      MetricScope S(Reg, "solve");
      Reg.addTime("wall_seconds", Stats.SolveSeconds);
      Reg.add("propagations", Analysis.SolverPropagations);
      Reg.add("choices", Analysis.SolverChoices);
      Reg.add("backtracks", Analysis.SolverBacktracks);
      {
        const solver::SimplifyStats &Simp = Analysis.SolverSimplify;
        MetricScope Pre(Reg, "simplify");
        Reg.set("state_vars_before", Simp.StateVarsBefore);
        Reg.set("state_vars_after", Simp.StateVarsAfter);
        Reg.set("constraints_before", Simp.ConstraintsBefore);
        Reg.set("constraints_after", Simp.ConstraintsAfter);
        Reg.set("eq_removed", Simp.EqRemoved);
        Reg.set("dup_triples_removed", Simp.DupTriplesRemoved);
        Reg.set("forced_triples_removed", Simp.ForcedTriplesRemoved);
        Reg.set("bools_forced", Simp.BoolsForced);
        Reg.set("components", Simp.Components);
        Reg.set("largest_component", Simp.LargestComponent);
        Reg.set("threads", Simp.ThreadsUsed);
        Reg.addTime("simplify_seconds", Simp.SimplifySeconds);
        Reg.addTime("components_seconds", Simp.ComponentSeconds);
        Reg.addTime("reconstruct_seconds", Simp.ReconstructSeconds);
      }
    }
    Stage("extract", Stats.ExtractSeconds);
    Stage("run_conservative", Stats.RunConservativeSeconds);
    Stage("run_afl", Stats.RunAflSeconds);
    Stage("run_reference", Stats.RunReferenceSeconds);
    {
      // VM-backend split of the completed runs (zero under the tree
      // walker); a sub-split of run_conservative + run_afl above.
      MetricScope S(Reg, "runs");
      MetricScope Vm(Reg, "vm");
      Reg.addTime("compile_seconds", Stats.VmCompileSeconds);
      Reg.addTime("execute_seconds", Stats.VmExecuteSeconds);
    }
  }
  if (ConsRun || AflRun) {
    MetricScope Runs(Reg, "runs");
    auto Run = [&Reg](const char *Name, const interp::Stats *S) {
      if (!S)
        return;
      MetricScope Scope(Reg, Name);
      Reg.set("max_regions", S->MaxRegions);
      Reg.set("region_allocs", S->TotalRegionAllocs);
      Reg.set("value_allocs", S->TotalValueAllocs);
      Reg.set("max_values", S->MaxValues);
      Reg.set("final_values", S->FinalValues);
      Reg.set("steps", S->Steps);
      Reg.set("memory_ops", S->Time);
    };
    Run("conservative", ConsRun);
    Run("afl", AflRun);
  }
  Reg.addTime("total_seconds", Stats.TotalSeconds);
}

void PipelineResult::recordMetrics(MetricsRegistry &Reg) const {
  recordPipelineMetrics(Reg, Stats, Analysis,
                        Conservative.Ok ? &Conservative.S : nullptr,
                        Afl.Ok ? &Afl.S : nullptr, Ok);
}

std::string driver::formatTimings(const PipelineStats &Stats,
                                  const completion::AflStats &Analysis) {
  std::string Out;
  char Buf[128];
  double Total = Stats.TotalSeconds > 0 ? Stats.TotalSeconds : 1;
  auto Row = [&](const char *Name, double Seconds) {
    std::snprintf(Buf, sizeof(Buf), "%-24s %10.3f ms %6.1f%%\n", Name,
                  Seconds * 1e3, Seconds / Total * 100);
    Out += Buf;
  };
  std::snprintf(Buf, sizeof(Buf), "%-24s %13s %7s\n", "stage", "time", "");
  Out += Buf;
  Row("parse", Stats.ParseSeconds);
  Row("type inference", Stats.TypeInferSeconds);
  Row("region inference", Stats.RegionInferSeconds);
  Row("conservative completion", Stats.ConservativeSeconds);
  Row("closure analysis", Stats.ClosureSeconds);
  Row("constraint generation", Stats.ConstraintGenSeconds);
  Row("solve", Stats.SolveSeconds);
  Row("extract", Stats.ExtractSeconds);
  Row("run (conservative)", Stats.RunConservativeSeconds);
  Row("run (A-F-L)", Stats.RunAflSeconds);
  Row("run (reference)", Stats.RunReferenceSeconds);
  Row("total", Stats.TotalSeconds);
  if (Stats.VmCompileSeconds + Stats.VmExecuteSeconds > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "vm: compile %.3f ms, execute %.3f ms "
                  "(split of the two completed runs)\n",
                  Stats.VmCompileSeconds * 1e3, Stats.VmExecuteSeconds * 1e3);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "solver: %llu propagations, %llu choices, %llu backtracks\n",
                (unsigned long long)Analysis.SolverPropagations,
                (unsigned long long)Analysis.SolverChoices,
                (unsigned long long)Analysis.SolverBacktracks);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "closure: %s, %u pass(es), %zu contexts processed, "
                "%zu enqueued\n",
                Analysis.Closure.UsedWorklist ? "worklist" : "restart",
                Analysis.Closure.Passes, Analysis.Closure.ProcessedContexts,
                Analysis.Closure.Enqueued);
  Out += Buf;
  if (Analysis.Closure.ThreadsUsed > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "closure-parallel: %u thread(s), %zu parallel + %zu inline "
                  "round(s), %zu partition(s) (largest %zu)\n",
                  Analysis.Closure.ThreadsUsed, Analysis.Closure.ParallelRounds,
                  Analysis.Closure.InlineRounds, Analysis.Closure.Partitions,
                  Analysis.Closure.LargestPartition);
    Out += Buf;
  }
  if (Analysis.Closure.WideningBound > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "closure-widen: bound %u, %zu widened closure(s), "
                  "%zu recolored var(s), %zu pinned call(s)\n",
                  Analysis.Closure.WideningBound,
                  Analysis.Closure.WidenedClosures, Analysis.Closure.WidenedVars,
                  Analysis.NumWidenedPinned);
    Out += Buf;
  }
  const constraints::ShardingStats &Shard = Analysis.Sharding;
  if (Shard.Shards) {
    std::snprintf(Buf, sizeof(Buf),
                  "congen-shard: %zu shard(s) (largest %zu constraints), "
                  "%zu interned shape(s), finalize %.3f ms\n",
                  Shard.Shards, Shard.LargestShardConstraints,
                  Shard.InternedShapes, Shard.FinalizeSeconds * 1e3);
    Out += Buf;
  }
  const solver::SimplifyStats &Simp = Analysis.SolverSimplify;
  if (Simp.ConstraintsBefore) {
    std::snprintf(Buf, sizeof(Buf),
                  "simplify: %zu vars -> %zu, %zu constraints -> %zu, "
                  "%zu component(s), %zu thread(s)\n",
                  Simp.StateVarsBefore, Simp.StateVarsAfter,
                  Simp.ConstraintsBefore, Simp.ConstraintsAfter,
                  Simp.Components, Simp.ThreadsUsed);
    Out += Buf;
  }
  if (ArenaPool::globalEnabled()) {
    ArenaPool::Stats Pool = ArenaPool::global().stats();
    std::snprintf(Buf, sizeof(Buf),
                  "memory: arena pool %zu/%zu checkout(s) reused, "
                  "%zu arena(s) pooled (%zu KiB retained)\n",
                  Pool.Hits, Pool.Checkouts, Pool.Pooled,
                  Pool.RetainedBytes / 1024);
    Out += Buf;
  } else {
    Out += "memory: arena pool off ($AFL_ARENA_POOL=0)\n";
  }
  return Out;
}

std::string PipelineResult::formatTimings() const {
  return driver::formatTimings(Stats, Analysis);
}

void driver::recordMemoryMetrics(MetricsRegistry &Reg) {
  ArenaPool::Stats S = ArenaPool::global().stats();
  MetricScope Mem(Reg, "memory");
  MetricScope Pool(Reg, "arena_pool");
  Reg.set("enabled", ArenaPool::globalEnabled() ? 1 : 0);
  Reg.set("checkouts", S.Checkouts);
  Reg.set("hits", S.Hits);
  Reg.set("misses", S.Misses);
  Reg.set("returns", S.Returns);
  Reg.set("discarded", S.Discarded);
  Reg.set("pooled", S.Pooled);
  Reg.set("retained_bytes", S.RetainedBytes);
  Reg.set("max_pooled", ArenaPool::global().maxPooled());
}

FrontEnd driver::runFrontEnd(std::string_view Source,
                             DiagnosticEngine &Diags) {
  FrontEnd F;
  F.Ctx = std::make_unique<ast::ASTContext>();
  Stopwatch Watch;

  F.Ast = parseExpr(Source, *F.Ctx, Diags);
  F.ParseSeconds = Watch.seconds();
  if (!F.Ast)
    return F;

  Watch.reset();
  types::TypedProgram Typed = types::inferTypes(F.Ast, *F.Ctx, Diags);
  F.TypeInferSeconds = Watch.seconds();
  if (!Typed.Success)
    return F;

  Watch.reset();
  F.Prog = regions::inferRegions(F.Ast, *F.Ctx, Typed, Diags);
  F.RegionInferSeconds = Watch.seconds();
  return F;
}

PipelineResult driver::runPipeline(std::string_view Source,
                                   const PipelineOptions &Options) {
  PipelineResult R;
  Stopwatch Total;

  FrontEnd F = runFrontEnd(Source, R.Diags);
  R.Ctx = std::move(F.Ctx);
  R.Ast = F.Ast;
  R.Prog = std::move(F.Prog);
  R.Stats.ParseSeconds = F.ParseSeconds;
  R.Stats.TypeInferSeconds = F.TypeInferSeconds;
  R.Stats.RegionInferSeconds = F.RegionInferSeconds;
  R.Stats.AstNodes = R.Ctx->numNodes();
  if (!R.Prog) {
    R.Stats.TotalSeconds = Total.seconds();
    return R;
  }
  R.Stats.RegionNodes = R.Prog->numNodes();
  R.Stats.RegionVars = R.Prog->Types.numRegionVars();
  Stopwatch Watch;

  Watch.reset();
  R.ConservativeC = completion::conservativeCompletion(*R.Prog);
  R.Stats.ConservativeSeconds = Watch.seconds();

  R.AflC = completion::aflCompletion(*R.Prog, &R.Analysis, Options.GenOptions,
                                     Options.SolveOptions,
                                     Options.ClosureOptions);
  R.Stats.ClosureSeconds = R.Analysis.ClosureSeconds;
  R.Stats.ConstraintGenSeconds = R.Analysis.ConstraintGenSeconds;
  R.Stats.SolveSeconds = R.Analysis.SolveSeconds;
  R.Stats.ExtractSeconds = R.Analysis.ExtractSeconds;

  if (!Options.SkipRuns) {
    interp::RunOptions RO;
    RO.RecordTrace = Options.RecordTrace;
    RO.MaxSteps = Options.MaxSteps;
    RO.Backend = Options.Backend;
    Watch.reset();
    R.Conservative = interp::run(*R.Prog, R.ConservativeC, RO);
    R.Stats.RunConservativeSeconds = Watch.seconds();
    R.Stats.VmCompileSeconds += R.Conservative.VmCompileSeconds;
    R.Stats.VmExecuteSeconds += R.Conservative.VmExecuteSeconds;
    if (!R.Conservative.Ok) {
      R.Diags.error(SourceLoc(),
                    "conservative run failed: " + R.Conservative.Error);
      R.Stats.TotalSeconds = Total.seconds();
      return R;
    }
    Watch.reset();
    R.Afl = interp::run(*R.Prog, R.AflC, RO);
    R.Stats.RunAflSeconds = Watch.seconds();
    R.Stats.VmCompileSeconds += R.Afl.VmCompileSeconds;
    R.Stats.VmExecuteSeconds += R.Afl.VmExecuteSeconds;
    if (!R.Afl.Ok) {
      R.Diags.error(SourceLoc(), "A-F-L run failed: " + R.Afl.Error);
      R.Stats.TotalSeconds = Total.seconds();
      return R;
    }
    if (!Options.SkipReference) {
      Watch.reset();
      R.Reference = interp::runRef(R.Ast, *R.Ctx, Options.MaxSteps);
      R.Stats.RunReferenceSeconds = Watch.seconds();
      if (!R.Reference.Ok) {
        R.Diags.error(SourceLoc(),
                      "reference run failed: " + R.Reference.Error);
        R.Stats.TotalSeconds = Total.seconds();
        return R;
      }
    }
  }

  R.Ok = true;
  R.Stats.TotalSeconds = Total.seconds();
  return R;
}
