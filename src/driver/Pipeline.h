//===----------------------------------------------------------------------===//
///
/// \file
/// The public pipeline facade: source text → parse → ML types → T-T
/// region inference → {conservative, A-F-L} completions → instrumented
/// runs. This is the API examples, tests and benchmarks use.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_DRIVER_PIPELINE_H
#define AFL_DRIVER_PIPELINE_H

#include "ast/ASTContext.h"
#include "completion/AflCompletion.h"
#include "interp/Interp.h"
#include "interp/RefInterp.h"
#include "regions/Completion.h"
#include "regions/RegionProgram.h"
#include "support/Diagnostics.h"
#include "support/Metrics.h"
#include "types/TypeInference.h"

#include <memory>
#include <string>
#include <string_view>

namespace afl {
namespace driver {

struct PipelineOptions {
  /// Record memory-over-time traces in both runs (Figures 5-8).
  bool RecordTrace = false;
  /// Step limit for each instrumented run.
  uint64_t MaxSteps = 200'000'000;
  /// Skip the two instrumented runs (analysis only).
  bool SkipRuns = false;
  /// Skip the reference (oracle) run.
  bool SkipReference = false;
  /// Choice-point generation switches (ablations).
  constraints::GenOptions GenOptions;
  /// Solver preprocessing switches (`aflc --no-simplify`,
  /// `--solver-jobs N`).
  solver::SolveOptions SolveOptions;
  /// Closure-analysis fixpoint mode and caps (`aflc --closure-restart`).
  closure::ClosureOptions ClosureOptions;
  /// Evaluator for the instrumented runs (`aflc --interp=vm|tree`,
  /// $AFL_INTERP). Both backends are semantics-exact; see docs/VM.md.
  interp::BackendKind Backend = interp::defaultBackend();
};

/// Per-stage observability for one pipeline run: wall-clock time of every
/// stage that executed, plus the sizes of the intermediate artifacts.
/// Filled unconditionally by runPipeline (stages that did not run stay
/// at zero). Solver work counters live in PipelineResult::Analysis; the
/// registry emission (recordMetrics) combines both.
struct PipelineStats {
  /// Wall-clock seconds per stage, in pipeline order.
  double ParseSeconds = 0;
  double TypeInferSeconds = 0;
  double RegionInferSeconds = 0;
  double ConservativeSeconds = 0; ///< conservative (T-T) completion
  double ClosureSeconds = 0;      ///< extended closure analysis (§3)
  double ConstraintGenSeconds = 0;
  double SolveSeconds = 0;
  double ExtractSeconds = 0; ///< completion extraction from the solution
  double RunConservativeSeconds = 0;
  double RunAflSeconds = 0;
  double RunReferenceSeconds = 0;
  /// VM-backend split of the two completed runs: bytecode compilation vs
  /// execution wall time, summed over both runs. These are sub-splits of
  /// RunConservativeSeconds + RunAflSeconds (excluded from stageSum);
  /// both stay zero under the tree walker.
  double VmCompileSeconds = 0;
  double VmExecuteSeconds = 0;
  /// Whole-pipeline wall time (≥ the sum of the stage times).
  double TotalSeconds = 0;

  /// Artifact sizes.
  size_t AstNodes = 0;
  size_t RegionNodes = 0;
  size_t RegionVars = 0;

  /// Sum of the individual stage times (excludes TotalSeconds).
  double stageSum() const {
    return ParseSeconds + TypeInferSeconds + RegionInferSeconds +
           ConservativeSeconds + ClosureSeconds + ConstraintGenSeconds +
           SolveSeconds + ExtractSeconds + RunConservativeSeconds +
           RunAflSeconds + RunReferenceSeconds;
  }

  /// Pointwise sum (for batch aggregation).
  void accumulate(const PipelineStats &Other);
};

/// Everything the pipeline produced. Check ok() before using the later
/// stages; Diags explains failures.
struct PipelineResult {
  DiagnosticEngine Diags;
  std::unique_ptr<ast::ASTContext> Ctx;
  const ast::Expr *Ast = nullptr;
  std::unique_ptr<regions::RegionProgram> Prog;
  regions::Completion ConservativeC;
  regions::Completion AflC;
  completion::AflStats Analysis;
  interp::RunResult Conservative; ///< the T-T baseline run
  interp::RunResult Afl;          ///< the A-F-L run
  interp::RefResult Reference;    ///< oracle value
  PipelineStats Stats;            ///< per-stage timings and sizes

  /// True if all requested stages succeeded.
  bool ok() const { return Ok; }
  bool Ok = false;

  /// Pretty-prints the region program with the conservative completion.
  std::string printConservative() const;
  /// Pretty-prints the region program with the A-F-L completion.
  std::string printAfl() const;

  /// Emits the stage timings, artifact sizes, solver counters and run
  /// metrics into \p Reg under the current scope (schema in
  /// docs/OBSERVABILITY.md).
  void recordMetrics(MetricsRegistry &Reg) const;

  /// Renders the stage timings as a human-readable table (aflc
  /// --timings).
  std::string formatTimings() const;
};

/// The front half of the pipeline: parse → ML type inference → T-T region
/// inference. Produced by runFrontEnd for callers that drive the analysis
/// stages themselves (the `aflc --serve` analysis server re-runs the front
/// end per edit, then seeds the back end incrementally).
struct FrontEnd {
  std::unique_ptr<ast::ASTContext> Ctx;
  const ast::Expr *Ast = nullptr;
  std::unique_ptr<regions::RegionProgram> Prog;
  double ParseSeconds = 0;
  double TypeInferSeconds = 0;
  double RegionInferSeconds = 0;

  /// True if all three stages succeeded (diagnostics explain failures).
  bool ok() const { return Prog != nullptr; }
};

/// Runs parse + type inference + region inference on \p Source, reporting
/// failures to \p Diags. On failure the result's later stages are null but
/// earlier artifacts remain inspectable.
FrontEnd runFrontEnd(std::string_view Source, DiagnosticEngine &Diags);

/// Runs the full pipeline on \p Source.
PipelineResult runPipeline(std::string_view Source,
                           const PipelineOptions &Options = PipelineOptions());

/// Shared emission routine behind PipelineResult::recordMetrics and the
/// batch aggregates: writes the "ok"/"sizes"/"stages"/"runs" subtree into
/// \p Reg under the current scope. \p ConsRun / \p AflRun may be null
/// when the instrumented runs were skipped (or failed).
void recordPipelineMetrics(MetricsRegistry &Reg, const PipelineStats &Stats,
                           const completion::AflStats &Analysis,
                           const interp::Stats *ConsRun,
                           const interp::Stats *AflRun, bool Ok);

/// Renders a stage-timing table (shared by aflc --timings for single and
/// batch runs).
std::string formatTimings(const PipelineStats &Stats,
                          const completion::AflStats &Analysis);

/// Emits the process-wide arena-pool counters as a "memory" scope under
/// the current registry scope (schema in docs/OBSERVABILITY.md). Shared
/// by single-run, batch, and server metrics emission.
void recordMemoryMetrics(MetricsRegistry &Reg);

} // namespace driver
} // namespace afl

#endif // AFL_DRIVER_PIPELINE_H
