//===----------------------------------------------------------------------===//
///
/// \file
/// The public pipeline facade: source text → parse → ML types → T-T
/// region inference → {conservative, A-F-L} completions → instrumented
/// runs. This is the API examples, tests and benchmarks use.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_DRIVER_PIPELINE_H
#define AFL_DRIVER_PIPELINE_H

#include "ast/ASTContext.h"
#include "completion/AflCompletion.h"
#include "interp/Interp.h"
#include "interp/RefInterp.h"
#include "regions/Completion.h"
#include "regions/RegionProgram.h"
#include "support/Diagnostics.h"
#include "types/TypeInference.h"

#include <memory>
#include <string>
#include <string_view>

namespace afl {
namespace driver {

struct PipelineOptions {
  /// Record memory-over-time traces in both runs (Figures 5-8).
  bool RecordTrace = false;
  /// Step limit for each instrumented run.
  uint64_t MaxSteps = 200'000'000;
  /// Skip the two instrumented runs (analysis only).
  bool SkipRuns = false;
  /// Skip the reference (oracle) run.
  bool SkipReference = false;
  /// Choice-point generation switches (ablations).
  constraints::GenOptions GenOptions;
};

/// Everything the pipeline produced. Check ok() before using the later
/// stages; Diags explains failures.
struct PipelineResult {
  DiagnosticEngine Diags;
  std::unique_ptr<ast::ASTContext> Ctx;
  const ast::Expr *Ast = nullptr;
  std::unique_ptr<regions::RegionProgram> Prog;
  regions::Completion ConservativeC;
  regions::Completion AflC;
  completion::AflStats Analysis;
  interp::RunResult Conservative; ///< the T-T baseline run
  interp::RunResult Afl;          ///< the A-F-L run
  interp::RefResult Reference;    ///< oracle value

  /// True if all requested stages succeeded.
  bool ok() const { return Ok; }
  bool Ok = false;

  /// Pretty-prints the region program with the conservative completion.
  std::string printConservative() const;
  /// Pretty-prints the region program with the A-F-L completion.
  std::string printAfl() const;
};

/// Runs the full pipeline on \p Source.
PipelineResult runPipeline(std::string_view Source,
                           const PipelineOptions &Options = PipelineOptions());

} // namespace driver
} // namespace afl

#endif // AFL_DRIVER_PIPELINE_H
