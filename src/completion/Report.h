//===----------------------------------------------------------------------===//
///
/// \file
/// Completion reports — the programmer feedback the paper's §7 calls for:
/// "for this approach to memory management to be practical, feedback to
/// programmers about the nature of the completion will be important."
///
/// For every region the report classifies how its completion operations
/// relate to its lexical scope:
///   * Lexical      — allocated on scope entry and freed on scope exit
///                    (no better than the stack discipline);
///   * LateAlloc    — allocation postponed past scope entry;
///   * EarlyFree    — freed before scope exit (including free_app);
///   * NonLexical   — both;
///   * Unused       — never allocated at all (no dynamic access).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_COMPLETION_REPORT_H
#define AFL_COMPLETION_REPORT_H

#include "regions/Completion.h"
#include "regions/RegionProgram.h"

#include <string>
#include <vector>

namespace afl {
namespace completion {

/// How a region's operations relate to its lexical scope.
enum class RegionClass { Lexical, LateAlloc, EarlyFree, NonLexical, Unused };

/// Returns "lexical", "late-alloc", ...
const char *name(RegionClass C);

/// Report entry for one region variable.
struct RegionReport {
  regions::RegionVarId Region = 0;
  /// Node introducing the region (~0u = program-level/global).
  regions::RNodeId IntroNode = ~0u;
  /// Nodes carrying alloc operations for it (empty = never allocated).
  std::vector<regions::RNodeId> AllocNodes;
  /// Nodes carrying free operations (free_after / free_app) for it.
  std::vector<regions::RNodeId> FreeNodes;
  /// Number of free_app operations among FreeNodes.
  unsigned NumFreeApp = 0;
  RegionClass Class = RegionClass::Lexical;
};

struct CompletionReport {
  std::vector<RegionReport> Regions;
  unsigned NumLexical = 0;
  unsigned NumLateAlloc = 0;
  unsigned NumEarlyFree = 0;
  unsigned NumNonLexical = 0;
  unsigned NumUnused = 0;

  /// Multi-line human-readable rendering.
  std::string str() const;
};

/// Builds the report for \p C over \p Prog.
CompletionReport reportCompletion(const regions::RegionProgram &Prog,
                                  const regions::Completion &C);

} // namespace completion
} // namespace afl

#endif // AFL_COMPLETION_REPORT_H
