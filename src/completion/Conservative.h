//===----------------------------------------------------------------------===//
///
/// \file
/// The conservative completion (paper §4.3): every region is allocated
/// immediately on entry to its letregion scope and deallocated just before
/// exiting it. This completion has exactly the memory behavior of the
/// original Tofte/Talpin program and serves as the T-T baseline in all
/// experiments.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_COMPLETION_CONSERVATIVE_H
#define AFL_COMPLETION_CONSERVATIVE_H

#include "regions/Completion.h"
#include "regions/RegionProgram.h"

namespace afl {
namespace completion {

/// Builds the conservative (Tofte/Talpin-equivalent) completion for
/// \p Prog. Global regions are allocated before the root expression and
/// never freed (they hold the observable result; program exit reclaims
/// them, and their contents are what the "final memory" metric counts).
regions::Completion conservativeCompletion(const regions::RegionProgram &Prog);

} // namespace completion
} // namespace afl

#endif // AFL_COMPLETION_CONSERVATIVE_H
