#include "completion/Report.h"

#include <map>

using namespace afl;
using namespace afl::completion;
using namespace afl::regions;

const char *completion::name(RegionClass C) {
  switch (C) {
  case RegionClass::Lexical:
    return "lexical";
  case RegionClass::LateAlloc:
    return "late-alloc";
  case RegionClass::EarlyFree:
    return "early-free";
  case RegionClass::NonLexical:
    return "non-lexical";
  case RegionClass::Unused:
    return "unused";
  }
  return "?";
}

namespace {

struct Gather {
  std::map<RegionVarId, RegionReport> Reports;

  RegionReport &at(RegionVarId R) {
    RegionReport &Rep = Reports[R];
    Rep.Region = R;
    return Rep;
  }

  void scanOps(const RExpr *N, const std::vector<COp> *Ops) {
    if (!Ops)
      return;
    for (const COp &Op : *Ops) {
      RegionReport &Rep = at(Op.Region);
      switch (Op.Kind) {
      case COpKind::AllocBefore:
      case COpKind::AllocAfter:
        Rep.AllocNodes.push_back(N->id());
        break;
      case COpKind::FreeApp:
        ++Rep.NumFreeApp;
        [[fallthrough]];
      case COpKind::FreeBefore:
      case COpKind::FreeAfter:
        Rep.FreeNodes.push_back(N->id());
        break;
      }
    }
  }

  void visit(const RExpr *N, const Completion &C) {
    for (RegionVarId R : N->boundRegions())
      at(R).IntroNode = N->id();
    scanOps(N, C.preOps(N->id()));
    scanOps(N, C.postOps(N->id()));
    scanOps(N, C.freeAppOps(N->id()));
    switch (N->kind()) {
    case RExpr::Kind::Lambda:
      visit(cast<RLambdaExpr>(N)->body(), C);
      return;
    case RExpr::Kind::App:
      visit(cast<RAppExpr>(N)->fn(), C);
      visit(cast<RAppExpr>(N)->arg(), C);
      return;
    case RExpr::Kind::Let:
      visit(cast<RLetExpr>(N)->init(), C);
      visit(cast<RLetExpr>(N)->body(), C);
      return;
    case RExpr::Kind::Letrec:
      visit(cast<RLetrecExpr>(N)->fnBody(), C);
      visit(cast<RLetrecExpr>(N)->body(), C);
      return;
    case RExpr::Kind::If:
      visit(cast<RIfExpr>(N)->cond(), C);
      visit(cast<RIfExpr>(N)->thenExpr(), C);
      visit(cast<RIfExpr>(N)->elseExpr(), C);
      return;
    case RExpr::Kind::Pair:
      visit(cast<RPairExpr>(N)->first(), C);
      visit(cast<RPairExpr>(N)->second(), C);
      return;
    case RExpr::Kind::Cons:
      visit(cast<RConsExpr>(N)->head(), C);
      visit(cast<RConsExpr>(N)->tail(), C);
      return;
    case RExpr::Kind::UnOp:
      visit(cast<RUnOpExpr>(N)->operand(), C);
      return;
    case RExpr::Kind::BinOp:
      visit(cast<RBinOpExpr>(N)->lhs(), C);
      visit(cast<RBinOpExpr>(N)->rhs(), C);
      return;
    default:
      return;
    }
  }
};

} // namespace

CompletionReport completion::reportCompletion(const RegionProgram &Prog,
                                              const Completion &C) {
  Gather G;
  for (RegionVarId R : Prog.GlobalRegions)
    G.at(R); // IntroNode stays ~0u: program level
  G.visit(Prog.Root, C);

  CompletionReport Out;
  for (auto &[R, Rep] : G.Reports) {
    if (Rep.AllocNodes.empty()) {
      Rep.Class = RegionClass::Unused;
    } else {
      // Lexical placement = the alloc sits on the introducing node's
      // pre-list and the (single) free on its post-list. Globals are
      // lexical when allocated at the root and never freed.
      bool AllocAtIntro =
          Rep.AllocNodes.size() == 1 &&
          (Rep.IntroNode == ~0u
               ? Rep.AllocNodes[0] == Prog.Root->id()
               : Rep.AllocNodes[0] == Rep.IntroNode);
      bool FreeAtIntro =
          Rep.IntroNode == ~0u
              ? Rep.FreeNodes.empty()
              : (Rep.FreeNodes.size() == 1 &&
                 Rep.FreeNodes[0] == Rep.IntroNode && Rep.NumFreeApp == 0);
      if (AllocAtIntro && FreeAtIntro)
        Rep.Class = RegionClass::Lexical;
      else if (AllocAtIntro)
        Rep.Class = RegionClass::EarlyFree;
      else if (FreeAtIntro)
        Rep.Class = RegionClass::LateAlloc;
      else
        Rep.Class = RegionClass::NonLexical;
    }
    switch (Rep.Class) {
    case RegionClass::Lexical:
      ++Out.NumLexical;
      break;
    case RegionClass::LateAlloc:
      ++Out.NumLateAlloc;
      break;
    case RegionClass::EarlyFree:
      ++Out.NumEarlyFree;
      break;
    case RegionClass::NonLexical:
      ++Out.NumNonLexical;
      break;
    case RegionClass::Unused:
      ++Out.NumUnused;
      break;
    }
    Out.Regions.push_back(Rep);
  }
  return Out;
}

std::string CompletionReport::str() const {
  std::string S;
  S += "completion report: " + std::to_string(Regions.size()) +
       " regions — ";
  S += std::to_string(NumLexical) + " lexical, ";
  S += std::to_string(NumLateAlloc) + " late-alloc, ";
  S += std::to_string(NumEarlyFree) + " early-free, ";
  S += std::to_string(NumNonLexical) + " non-lexical, ";
  S += std::to_string(NumUnused) + " unused\n";
  for (const RegionReport &R : Regions) {
    S += "  r" + std::to_string(R.Region) + ": " + name(R.Class);
    if (R.IntroNode == ~0u)
      S += " (global)";
    else
      S += " (scope node " + std::to_string(R.IntroNode) + ")";
    if (!R.AllocNodes.empty())
      S += ", alloc@" + std::to_string(R.AllocNodes[0]);
    if (!R.FreeNodes.empty()) {
      S += ", free@";
      for (size_t I = 0; I != R.FreeNodes.size(); ++I) {
        if (I)
          S += '/';
        S += std::to_string(R.FreeNodes[I]);
      }
    }
    if (R.NumFreeApp)
      S += " (free_app)";
    S += '\n';
  }
  return S;
}
