#include "completion/AflCompletion.h"

#include "closure/ClosureAnalysis.h"
#include "completion/Conservative.h"
#include "constraints/ConstraintGen.h"
#include "solver/Solver.h"
#include "support/Metrics.h"

#include <algorithm>

using namespace afl;
using namespace afl::completion;
using namespace afl::regions;

Completion completion::extractCompletion(const constraints::GenResult &Gen,
                                         const solver::SolveResult &Sol) {
  Completion Out;
  for (const constraints::ChoicePoint &CP : Gen.Choices) {
    if (!Sol.boolValue(CP.B))
      continue;
    switch (CP.Kind) {
    case COpKind::AllocBefore:
    case COpKind::FreeBefore:
      Out.Pre[CP.Node].push_back({CP.Kind, CP.Region});
      break;
    case COpKind::AllocAfter:
    case COpKind::FreeAfter:
      Out.Post[CP.Node].push_back({CP.Kind, CP.Region});
      break;
    case COpKind::FreeApp:
      Out.FreeApp[CP.Node].push_back({CP.Kind, CP.Region});
      break;
    }
  }
  // Ops at one point fire in ascending region order — the same
  // sequentialization order used by constraint generation.
  auto SortOps = [](std::unordered_map<RNodeId, std::vector<COp>> &M) {
    for (auto &[Node, Ops] : M)
      std::sort(Ops.begin(), Ops.end(),
                [](const COp &A, const COp &B) { return A.Region < B.Region; });
  };
  SortOps(Out.Pre);
  SortOps(Out.Post);
  SortOps(Out.FreeApp);
  return Out;
}

Completion completion::aflCompletion(const RegionProgram &Prog,
                                     AflStats *Stats,
                                     const constraints::GenOptions &Options,
                                     const solver::SolveOptions &Solve,
                                     const closure::ClosureOptions &ClosureOpts) {
  Stopwatch Watch;
  closure::ClosureAnalysis CA(Prog, ClosureOpts);
  bool Converged = CA.run();
  double ClosureSeconds = Watch.seconds();

  if (!Converged) {
    // The fixpoint hit its stabilization cap: the analysis tables are an
    // unsound snapshot, so fall back to the conservative completion.
    if (Stats) {
      Stats->ClosureSeconds = ClosureSeconds;
      Stats->Closure = CA.stats();
      Stats->ClosurePasses = CA.stats().Passes;
      Stats->NumClosures = CA.numClosures();
      Stats->Solved = false;
    }
    return conservativeCompletion(Prog);
  }

  Watch.reset();
  constraints::GenResult Gen =
      constraints::generateConstraints(Prog, CA, Options);
  double GenSeconds = Watch.seconds();
  solver::SolveResult Sol = solver::solve(Gen.Sys, Solve);
  Watch.reset();

  if (Stats) {
    Stats->ClosureSeconds = ClosureSeconds;
    Stats->ConstraintGenSeconds = GenSeconds;
    Stats->SolveSeconds = Sol.Seconds;
    Stats->Closure = CA.stats();
    Stats->ClosurePasses = CA.stats().Passes;
    Stats->NumContexts = Gen.NumContexts;
    Stats->NumClosures = CA.numClosures();
    Stats->NumStateVars = Gen.Sys.numStateVars();
    Stats->NumBoolVars = Gen.Sys.numBoolVars();
    Stats->NumConstraints = Gen.Sys.numConstraints();
    Stats->NumPinnedCalls = Gen.NumPinnedCalls;
    Stats->NumWidenedPinned = Gen.NumWidenedPinned;
    Stats->SolverPropagations = Sol.Propagations;
    Stats->SolverChoices = Sol.Choices;
    Stats->SolverBacktracks = Sol.Backtracks;
    Stats->SolverSimplify = Sol.Simplify;
    Stats->Sharding = Gen.Sharding;
    Stats->Solved = Sol.Sat;
  }

  if (!Sol.Sat)
    return conservativeCompletion(Prog);

  Completion Out = extractCompletion(Gen, Sol);
  if (Stats)
    Stats->ExtractSeconds = Watch.seconds();
  return Out;
}
