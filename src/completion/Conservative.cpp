#include "completion/Conservative.h"

using namespace afl;
using namespace afl::regions;

const char *regions::spelling(COpKind Kind) {
  switch (Kind) {
  case COpKind::AllocBefore:
    return "alloc_before";
  case COpKind::FreeBefore:
    return "free_before";
  case COpKind::AllocAfter:
    return "alloc_after";
  case COpKind::FreeAfter:
    return "free_after";
  case COpKind::FreeApp:
    return "free_app";
  }
  return "?";
}

namespace {

void visit(const RExpr *N, Completion &Out) {
  for (RegionVarId R : N->boundRegions()) {
    Out.Pre[N->id()].push_back({COpKind::AllocBefore, R});
    Out.Post[N->id()].push_back({COpKind::FreeAfter, R});
  }
  switch (N->kind()) {
  case RExpr::Kind::Int:
  case RExpr::Kind::Bool:
  case RExpr::Kind::Unit:
  case RExpr::Kind::Var:
  case RExpr::Kind::Nil:
  case RExpr::Kind::RegApp:
    return;
  case RExpr::Kind::Lambda:
    visit(cast<RLambdaExpr>(N)->body(), Out);
    return;
  case RExpr::Kind::App:
    visit(cast<RAppExpr>(N)->fn(), Out);
    visit(cast<RAppExpr>(N)->arg(), Out);
    return;
  case RExpr::Kind::Let:
    visit(cast<RLetExpr>(N)->init(), Out);
    visit(cast<RLetExpr>(N)->body(), Out);
    return;
  case RExpr::Kind::Letrec:
    visit(cast<RLetrecExpr>(N)->fnBody(), Out);
    visit(cast<RLetrecExpr>(N)->body(), Out);
    return;
  case RExpr::Kind::If:
    visit(cast<RIfExpr>(N)->cond(), Out);
    visit(cast<RIfExpr>(N)->thenExpr(), Out);
    visit(cast<RIfExpr>(N)->elseExpr(), Out);
    return;
  case RExpr::Kind::Pair:
    visit(cast<RPairExpr>(N)->first(), Out);
    visit(cast<RPairExpr>(N)->second(), Out);
    return;
  case RExpr::Kind::Cons:
    visit(cast<RConsExpr>(N)->head(), Out);
    visit(cast<RConsExpr>(N)->tail(), Out);
    return;
  case RExpr::Kind::UnOp:
    visit(cast<RUnOpExpr>(N)->operand(), Out);
    return;
  case RExpr::Kind::BinOp:
    visit(cast<RBinOpExpr>(N)->lhs(), Out);
    visit(cast<RBinOpExpr>(N)->rhs(), Out);
    return;
  }
}

} // namespace

Completion
completion::conservativeCompletion(const regions::RegionProgram &Prog) {
  Completion Out;
  visit(Prog.Root, Out);
  // Global (result) regions: allocated up front, reclaimed by program
  // exit. Prepend so they precede any letregion allocs on the root node.
  auto &RootPre = Out.Pre[Prog.Root->id()];
  std::vector<COp> Globals;
  for (RegionVarId R : Prog.GlobalRegions)
    Globals.push_back({COpKind::AllocBefore, R});
  RootPre.insert(RootPre.begin(), Globals.begin(), Globals.end());
  return Out;
}
