//===----------------------------------------------------------------------===//
///
/// \file
/// The A-F-L completion: runs the extended closure analysis, generates
/// the §4 constraint system, solves it with the late-alloc/early-free
/// choice strategy, and extracts the completion operations.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_COMPLETION_AFLCOMPLETION_H
#define AFL_COMPLETION_AFLCOMPLETION_H

#include "closure/ClosureAnalysis.h"
#include "constraints/ConstraintGen.h"
#include "regions/Completion.h"
#include "regions/RegionProgram.h"
#include "solver/Solver.h"

#include <cstdint>
#include <string>

namespace afl {
namespace completion {

/// Analysis telemetry for benchmarking and the paper's complexity claims.
struct AflStats {
  unsigned ClosurePasses = 0;
  /// Full fixpoint telemetry (mode, work counters, table sizes).
  closure::ClosureStats Closure;
  size_t NumContexts = 0;
  size_t NumClosures = 0;
  size_t NumStateVars = 0;
  size_t NumBoolVars = 0;
  size_t NumConstraints = 0;
  size_t NumPinnedCalls = 0;
  /// Calls pinned specifically because the shared region was widened
  /// (subset of NumPinnedCalls; 0 when widening is off).
  size_t NumWidenedPinned = 0;
  uint64_t SolverPropagations = 0;
  uint64_t SolverChoices = 0;
  uint64_t SolverBacktracks = 0;
  /// Constraint-graph preprocessing statistics (zeros when the solve ran
  /// with simplification disabled).
  solver::SimplifyStats SolverSimplify;
  /// Sharded-emission counters from constraint generation (the shape
  /// interner and the emission-time union-find finalized into shards).
  constraints::ShardingStats Sharding;
  /// Wall-clock seconds per analysis sub-stage (see docs/OBSERVABILITY.md).
  double ClosureSeconds = 0;
  double ConstraintGenSeconds = 0;
  double SolveSeconds = 0;
  double ExtractSeconds = 0;
  /// True if the solver found a solution; false means the conservative
  /// completion was returned as a fallback (should not happen in
  /// practice — the conservative completion witnesses satisfiability).
  bool Solved = false;
};

/// Computes the A-F-L completion for \p Prog. On solver failure — or if
/// the closure analysis fails to stabilize within its configured caps —
/// returns the conservative completion (and reports Solved = false).
/// \p Options selects ablated variants (see constraints::GenOptions);
/// \p Solve configures the solver's preprocessing layer (see
/// solver::SolveOptions); \p ClosureOpts selects the closure fixpoint
/// mode and caps (see closure::ClosureOptions).
/// Extracts the completion operations chosen by a satisfiable solution:
/// every true choice boolean becomes an op at its node, sorted in
/// ascending region order per point (the sequentialization order used by
/// constraint generation). Exposed for callers that drive the pipeline
/// stages themselves (the analysis server); aflCompletion uses it too.
regions::Completion extractCompletion(const constraints::GenResult &Gen,
                                      const solver::SolveResult &Sol);

regions::Completion
aflCompletion(const regions::RegionProgram &Prog, AflStats *Stats = nullptr,
              const constraints::GenOptions &Options =
                  constraints::GenOptions(),
              const solver::SolveOptions &Solve = solver::SolveOptions(),
              const closure::ClosureOptions &ClosureOpts =
                  closure::ClosureOptions());

} // namespace completion
} // namespace afl

#endif // AFL_COMPLETION_AFLCOMPLETION_H
