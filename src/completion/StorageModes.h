//===----------------------------------------------------------------------===//
///
/// \file
/// Storage-mode analysis, after Tofte/Talpin [TT94 §7] and the storage
/// mode analysis of [Tof94]: each value-producing expression `e@ρ` is
/// annotated `attop` (write on top of the region's current contents) or
/// `atbot` (reset the region — destroy its current contents — before
/// writing). The A-F-L paper (§6) notes that completions are orthogonal
/// to storage modes and that its target programs carry both annotation
/// kinds; this module supplies the storage-mode half.
///
/// A write into ρ may be `atbot` only if no currently-stored value of ρ
/// can be used afterwards. We use a conservative, purely syntactic
/// criterion, computed per *analysis domain* (the program top level and
/// each function body):
///
///   * only regions letregion-bound within the current domain are
///     eligible (outer regions' contents may be live in callers);
///   * a backward pass computes, for each node, the variables live after
///     it and the regions of values pending in enclosing evaluation
///     contexts (e.g. the first pair component while the second is being
///     evaluated, the function value while the argument runs, callee-
///     reachable regions during a call);
///   * the write is `atbot` iff its region is in neither the regions of
///     the live variables' types nor the pending set (for constructor
///     writes, the component values' regions are pending too).
///
/// Region-polymorphic formals always write `attop` (no `sat` modes) —
/// a documented simplification.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_COMPLETION_STORAGEMODES_H
#define AFL_COMPLETION_STORAGEMODES_H

#include "regions/RegionProgram.h"

#include <unordered_set>

namespace afl {
namespace completion {

/// The set of writes that may reset their region.
struct StorageModes {
  /// Node ids whose write is `atbot`; every other write is `attop`.
  std::unordered_set<regions::RNodeId> AtBot;

  bool isAtBot(regions::RNodeId N) const { return AtBot.count(N) != 0; }
  size_t numAtBot() const { return AtBot.size(); }
};

/// Runs the analysis over a finalized region program.
StorageModes inferStorageModes(const regions::RegionProgram &Prog);

} // namespace completion
} // namespace afl

#endif // AFL_COMPLETION_STORAGEMODES_H
