#include "completion/StorageModes.h"

#include <set>

using namespace afl;
using namespace afl::completion;
using namespace afl::regions;

namespace {

class ModeAnalyzer {
public:
  ModeAnalyzer(const RegionProgram &Prog, StorageModes &Out)
      : Prog(Prog), Out(Out) {}

  void run() {
    analyzeDomain(Prog.Root);
  }

private:
  using VarSet = std::set<VarId>;
  using RegSet = std::set<RegionVarId>;

  /// Collects the regions letregion-bound within the domain rooted at
  /// \p Body (not descending into inner domains).
  void collectLocals(const RExpr *N, RegSet &Out) const {
    for (RegionVarId R : N->boundRegions())
      Out.insert(R);
    switch (N->kind()) {
    case RExpr::Kind::App:
      collectLocals(cast<RAppExpr>(N)->fn(), Out);
      collectLocals(cast<RAppExpr>(N)->arg(), Out);
      return;
    case RExpr::Kind::Let:
      collectLocals(cast<RLetExpr>(N)->init(), Out);
      collectLocals(cast<RLetExpr>(N)->body(), Out);
      return;
    case RExpr::Kind::Letrec:
      collectLocals(cast<RLetrecExpr>(N)->body(), Out);
      return;
    case RExpr::Kind::If:
      collectLocals(cast<RIfExpr>(N)->cond(), Out);
      collectLocals(cast<RIfExpr>(N)->thenExpr(), Out);
      collectLocals(cast<RIfExpr>(N)->elseExpr(), Out);
      return;
    case RExpr::Kind::Pair:
      collectLocals(cast<RPairExpr>(N)->first(), Out);
      collectLocals(cast<RPairExpr>(N)->second(), Out);
      return;
    case RExpr::Kind::Cons:
      collectLocals(cast<RConsExpr>(N)->head(), Out);
      collectLocals(cast<RConsExpr>(N)->tail(), Out);
      return;
    case RExpr::Kind::UnOp:
      collectLocals(cast<RUnOpExpr>(N)->operand(), Out);
      return;
    case RExpr::Kind::BinOp:
      collectLocals(cast<RBinOpExpr>(N)->lhs(), Out);
      collectLocals(cast<RBinOpExpr>(N)->rhs(), Out);
      return;
    default:
      return; // leaves; Lambda/fnBody start their own domain
    }
  }

  /// Local regions of μ \p T.
  RegSet typeRegions(RTypeId T) const {
    std::set<RegionVarId> All;
    Prog.Types.freeRegionVars(T, All);
    RegSet Out;
    for (RegionVarId R : All)
      if (Locals.count(R))
        Out.insert(R);
    return Out;
  }

  /// Local regions reachable from the types of \p Vars.
  RegSet varRegions(const VarSet &Vars) const {
    RegSet Out;
    for (VarId V : Vars) {
      RegSet T = typeRegions(Prog.varInfo(V).Type);
      Out.insert(T.begin(), T.end());
    }
    return Out;
  }

  /// Decides the mode of \p N's write: `atbot` iff the region is local
  /// and none of \p LiveAfter's variables, \p Pending, or \p ValueRefs
  /// (regions the value being written itself references) can reach its
  /// current contents.
  void decide(const RExpr *N, const VarSet &LiveAfter, const RegSet &Pending,
              const RegSet &ValueRefs) {
    if (!N->hasWriteRegion())
      return;
    RegionVarId R = N->writeRegion();
    if (!Locals.count(R))
      return;
    if (Pending.count(R) || ValueRefs.count(R))
      return;
    RegSet LiveRegions = varRegions(LiveAfter);
    if (LiveRegions.count(R))
      return;
    Out.AtBot.insert(N->id());
  }

  /// Regions the value being written references (components, captured
  /// environments) — these must survive the write, *including* the write
  /// region itself when a component lives there (a cons cell's tail is in
  /// the very spine region the cell is written to).
  RegSet valueRefs(const RExpr *N) const {
    switch (N->kind()) {
    case RExpr::Kind::Pair: {
      const auto *P = cast<RPairExpr>(N);
      RegSet Refs = typeRegions(P->first()->type());
      RegSet Second = typeRegions(P->second()->type());
      Refs.insert(Second.begin(), Second.end());
      return Refs;
    }
    case RExpr::Kind::Cons: {
      const auto *C = cast<RConsExpr>(N);
      RegSet Refs = typeRegions(C->head()->type());
      RegSet Tail = typeRegions(C->tail()->type());
      Refs.insert(Tail.begin(), Tail.end());
      return Refs;
    }
    case RExpr::Kind::Lambda:
    case RExpr::Kind::Letrec:
    case RExpr::Kind::RegApp:
      // Closures capture values reachable through the arrow type's latent
      // effect; keep the full type frv (conservative: includes the box).
      return typeRegions(N->type());
    default:
      // Ints, booleans, unit, nil: self-contained values.
      return RegSet();
    }
  }

  /// Backward liveness walk. \p LiveAfter: variables live after \p N;
  /// \p Pending: local regions of values held by enclosing evaluation
  /// contexts while \p N runs. Returns the variables live before \p N.
  VarSet walk(const RExpr *N, VarSet LiveAfter, const RegSet &Pending) {
    switch (N->kind()) {
    case RExpr::Kind::Int:
    case RExpr::Kind::Bool:
    case RExpr::Kind::Unit:
    case RExpr::Kind::Nil:
      decide(N, LiveAfter, Pending, RegSet());
      return LiveAfter;
    case RExpr::Kind::Var:
      LiveAfter.insert(cast<RVarExpr>(N)->var());
      return LiveAfter;
    case RExpr::Kind::Lambda: {
      // The closure's captured values are covered by its type's latent
      // effect; the body is a separate domain.
      decide(N, LiveAfter, Pending, valueRefs(N));
      analyzeDomain(cast<RLambdaExpr>(N)->body());
      // Captured variables must stay live as long as the closure value
      // can be applied; approximate by keeping them live from here.
      VarSet Live = LiveAfter;
      addFreeVars(cast<RLambdaExpr>(N)->body(), Live);
      Live.erase(cast<RLambdaExpr>(N)->param());
      return Live;
    }
    case RExpr::Kind::RegApp: {
      decide(N, LiveAfter, Pending, valueRefs(N));
      LiveAfter.insert(cast<RRegAppExpr>(N)->fn());
      return LiveAfter;
    }
    case RExpr::Kind::App: {
      const auto *A = cast<RAppExpr>(N);
      // While the argument evaluates, the function value is pending, and
      // everything the callee may later read is reachable through the
      // function type's latent effect (part of frv of the arrow type).
      RegSet DuringArg = Pending;
      RegSet FnRefs = typeRegions(A->fn()->type());
      DuringArg.insert(FnRefs.begin(), FnRefs.end());
      VarSet LiveArg = walk(A->arg(), LiveAfter, DuringArg);
      return walk(A->fn(), std::move(LiveArg), Pending);
    }
    case RExpr::Kind::Let: {
      const auto *L = cast<RLetExpr>(N);
      VarSet LiveBody = walk(L->body(), std::move(LiveAfter), Pending);
      LiveBody.erase(L->var());
      return walk(L->init(), std::move(LiveBody), Pending);
    }
    case RExpr::Kind::Letrec: {
      const auto *L = cast<RLetrecExpr>(N);
      decide(N, LiveAfter, Pending, valueRefs(N));
      analyzeDomain(L->fnBody());
      VarSet LiveBody = walk(L->body(), std::move(LiveAfter), Pending);
      LiveBody.erase(L->fn());
      return LiveBody;
    }
    case RExpr::Kind::If: {
      const auto *I = cast<RIfExpr>(N);
      VarSet LiveThen = walk(I->thenExpr(), LiveAfter, Pending);
      VarSet LiveElse = walk(I->elseExpr(), LiveAfter, Pending);
      LiveThen.insert(LiveElse.begin(), LiveElse.end());
      return walk(I->cond(), std::move(LiveThen), Pending);
    }
    case RExpr::Kind::Pair: {
      const auto *P = cast<RPairExpr>(N);
      decide(N, LiveAfter, Pending, valueRefs(N));
      RegSet DuringSecond = Pending;
      RegSet FirstRefs = typeRegions(P->first()->type());
      DuringSecond.insert(FirstRefs.begin(), FirstRefs.end());
      VarSet LiveSecond = walk(P->second(), std::move(LiveAfter),
                               DuringSecond);
      return walk(P->first(), std::move(LiveSecond), Pending);
    }
    case RExpr::Kind::Cons: {
      const auto *C = cast<RConsExpr>(N);
      decide(N, LiveAfter, Pending, valueRefs(N));
      RegSet DuringTail = Pending;
      RegSet HeadRefs = typeRegions(C->head()->type());
      DuringTail.insert(HeadRefs.begin(), HeadRefs.end());
      VarSet LiveTail = walk(C->tail(), std::move(LiveAfter), DuringTail);
      return walk(C->head(), std::move(LiveTail), Pending);
    }
    case RExpr::Kind::UnOp: {
      const auto *U = cast<RUnOpExpr>(N);
      // Projections return addresses INTO the operand's value: the
      // result's regions are pending while nothing — they are covered by
      // the result being consumed upstream (Pending at this node).
      decide(N, LiveAfter, Pending, RegSet());
      return walk(U->operand(), std::move(LiveAfter), Pending);
    }
    case RExpr::Kind::BinOp: {
      const auto *B = cast<RBinOpExpr>(N);
      // Operands are fully consumed (read) before the result is written,
      // so they need not block an atbot on the result region.
      decide(N, LiveAfter, Pending, RegSet());
      RegSet DuringRhs = Pending;
      RegSet LhsRefs = typeRegions(B->lhs()->type());
      DuringRhs.insert(LhsRefs.begin(), LhsRefs.end());
      VarSet LiveRhs = walk(B->rhs(), std::move(LiveAfter), DuringRhs);
      return walk(B->lhs(), std::move(LiveRhs), Pending);
    }
    }
    return LiveAfter;
  }

  /// Adds the free value variables of \p N's subtree to \p Out
  /// (over-approximation: includes bound ones too, which is harmless for
  /// liveness since their types' regions are in scope anyway).
  void addFreeVars(const RExpr *N, VarSet &Out) const {
    switch (N->kind()) {
    case RExpr::Kind::Var:
      Out.insert(cast<RVarExpr>(N)->var());
      return;
    case RExpr::Kind::RegApp:
      Out.insert(cast<RRegAppExpr>(N)->fn());
      return;
    case RExpr::Kind::Lambda:
      addFreeVars(cast<RLambdaExpr>(N)->body(), Out);
      return;
    case RExpr::Kind::App:
      addFreeVars(cast<RAppExpr>(N)->fn(), Out);
      addFreeVars(cast<RAppExpr>(N)->arg(), Out);
      return;
    case RExpr::Kind::Let:
      addFreeVars(cast<RLetExpr>(N)->init(), Out);
      addFreeVars(cast<RLetExpr>(N)->body(), Out);
      return;
    case RExpr::Kind::Letrec:
      addFreeVars(cast<RLetrecExpr>(N)->fnBody(), Out);
      addFreeVars(cast<RLetrecExpr>(N)->body(), Out);
      return;
    case RExpr::Kind::If:
      addFreeVars(cast<RIfExpr>(N)->cond(), Out);
      addFreeVars(cast<RIfExpr>(N)->thenExpr(), Out);
      addFreeVars(cast<RIfExpr>(N)->elseExpr(), Out);
      return;
    case RExpr::Kind::Pair:
      addFreeVars(cast<RPairExpr>(N)->first(), Out);
      addFreeVars(cast<RPairExpr>(N)->second(), Out);
      return;
    case RExpr::Kind::Cons:
      addFreeVars(cast<RConsExpr>(N)->head(), Out);
      addFreeVars(cast<RConsExpr>(N)->tail(), Out);
      return;
    case RExpr::Kind::UnOp:
      addFreeVars(cast<RUnOpExpr>(N)->operand(), Out);
      return;
    case RExpr::Kind::BinOp:
      addFreeVars(cast<RBinOpExpr>(N)->lhs(), Out);
      addFreeVars(cast<RBinOpExpr>(N)->rhs(), Out);
      return;
    default:
      return;
    }
  }

  void analyzeDomain(const RExpr *Body) {
    RegSet SavedLocals = std::move(Locals);
    Locals.clear();
    collectLocals(Body, Locals);
    // Nothing outside the domain can reach a domain-local region's
    // contents, so liveness starts empty at the domain's end.
    walk(Body, VarSet(), RegSet());
    Locals = std::move(SavedLocals);
  }

  const RegionProgram &Prog;
  StorageModes &Out;
  RegSet Locals;
};

} // namespace

StorageModes
completion::inferStorageModes(const regions::RegionProgram &Prog) {
  StorageModes Out;
  ModeAnalyzer A(Prog, Out);
  A.run();
  return Out;
}
