#include "support/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace afl;
using namespace afl::support;

namespace {

sockaddr_in loopbackAddr(uint16_t Port) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  return Addr;
}

std::string errnoString(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

} // namespace

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Socket::Wait Socket::waitReadable(int TimeoutMs) {
  pollfd P;
  P.fd = Fd;
  P.events = POLLIN;
  P.revents = 0;
  for (;;) {
    int N = ::poll(&P, 1, TimeoutMs);
    if (N > 0)
      return Wait::Ready; // readable, EOF, or error — recv disambiguates
    if (N == 0)
      return Wait::Timeout;
    if (errno != EINTR)
      return Wait::Error;
  }
}

long Socket::recvSome(char *Buf, size_t Len) {
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, Len, 0);
    if (N >= 0)
      return static_cast<long>(N);
    if (errno != EINTR)
      return -1;
  }
}

bool Socket::sendAll(std::string_view Data) {
  while (!Data.empty()) {
    ssize_t N = ::send(Fd, Data.data(), Data.size(), MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

Socket Socket::connectTo(uint16_t Port, std::string &Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoString("socket");
    return Socket();
  }
  sockaddr_in Addr = loopbackAddr(Port);
  for (;;) {
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Socket(Fd);
    if (errno != EINTR)
      break;
  }
  Error = errnoString("connect");
  ::close(Fd);
  return Socket();
}

ListenSocket &ListenSocket::operator=(ListenSocket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    BoundPort = O.BoundPort;
    O.Fd = -1;
    O.BoundPort = 0;
  }
  return *this;
}

void ListenSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

ListenSocket ListenSocket::listenOn(uint16_t Port, int Backlog,
                                    std::string &Error) {
  ListenSocket L;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoString("socket");
    return L;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr = loopbackAddr(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = errnoString("bind");
    ::close(Fd);
    return L;
  }
  if (::listen(Fd, Backlog) != 0) {
    Error = errnoString("listen");
    ::close(Fd);
    return L;
  }
  socklen_t AddrLen = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen) != 0) {
    Error = errnoString("getsockname");
    ::close(Fd);
    return L;
  }
  L.Fd = Fd;
  L.BoundPort = ntohs(Addr.sin_port);
  return L;
}

Socket ListenSocket::accept(int TimeoutMs) {
  pollfd P;
  P.fd = Fd;
  P.events = POLLIN;
  P.revents = 0;
  for (;;) {
    int N = ::poll(&P, 1, TimeoutMs);
    if (N == 0)
      return Socket();
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Socket();
    }
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client >= 0)
      return Socket(Client);
    if (errno != EINTR)
      return Socket();
  }
}
