//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena used for AST and IR node allocation.
///
/// Nodes allocated here are never individually freed; the whole arena is
/// released at once when the owning context is destroyed. Objects with
/// non-trivial destructors may be allocated, but their destructors are NOT
/// run — arena clients must only store trivially-destructible state or
/// state whose cleanup is managed elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_ARENA_H
#define AFL_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace afl {

/// Bump-pointer allocator backing the AST/IR contexts.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 &&
           "alignment must be a power of two");
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      growSlab(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    ++NumAllocations;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a \p T in the arena, forwarding \p Args to its constructor.
  template <typename T, typename... Args> T *create(Args &&...ArgValues) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(ArgValues)...);
  }

  /// Number of allocation requests served (for diagnostics/tests).
  size_t numAllocations() const { return NumAllocations; }

  /// Total bytes reserved across all slabs.
  size_t bytesReserved() const { return BytesReserved; }

private:
  void growSlab(size_t MinSize);

  static constexpr size_t DefaultSlabSize = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NumAllocations = 0;
  size_t BytesReserved = 0;
};

} // namespace afl

#endif // AFL_SUPPORT_ARENA_H
