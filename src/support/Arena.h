//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena used for AST and IR node allocation.
///
/// Nodes allocated here are never individually freed; the whole arena is
/// released at once when the owning context is destroyed. Objects with
/// non-trivial destructors may be allocated, but their destructors are NOT
/// run — arena clients must only store trivially-destructible state or
/// state whose cleanup is managed elsewhere.
///
/// Arenas are movable so they can be checked in and out of an \c ArenaPool:
/// \c reset() rewinds the bump pointer while retaining the largest slab, so
/// a recycled arena serves its next tenant without touching the system
/// allocator for the common case.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_ARENA_H
#define AFL_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace afl {

/// Bump-pointer allocator backing the AST/IR contexts.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  Arena(Arena &&Other) noexcept
      : Slabs(std::move(Other.Slabs)), Cur(Other.Cur), End(Other.End),
        NumAllocations(Other.NumAllocations),
        BytesAllocated(Other.BytesAllocated),
        BytesReserved(Other.BytesReserved) {
    Other.forget();
  }
  Arena &operator=(Arena &&Other) noexcept {
    if (this != &Other) {
      Slabs = std::move(Other.Slabs);
      Cur = Other.Cur;
      End = Other.End;
      NumAllocations = Other.NumAllocations;
      BytesAllocated = Other.BytesAllocated;
      BytesReserved = Other.BytesReserved;
      Other.forget();
    }
    return *this;
  }

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 &&
           "alignment must be a power of two");
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      growSlab(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    ++NumAllocations;
    BytesAllocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a \p T in the arena, forwarding \p Args to its constructor.
  template <typename T, typename... Args> T *create(Args &&...ArgValues) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(ArgValues)...);
  }

  /// Rewinds the arena to empty, retaining only its largest slab so the
  /// next tenant reuses the memory. Previously handed-out pointers become
  /// invalid; the retained slab's bytes are left as-is (not zeroed).
  void reset();

  /// Number of allocation requests served (for diagnostics/tests).
  size_t numAllocations() const { return NumAllocations; }

  /// Total bytes handed out to callers (excluding alignment padding).
  size_t bytesAllocated() const { return BytesAllocated; }

  /// Total bytes reserved across all slabs.
  size_t bytesReserved() const { return BytesReserved; }

  /// Number of slabs currently backing the arena.
  size_t numSlabs() const { return Slabs.size(); }

private:
  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Size = 0;
  };

  void growSlab(size_t MinSize);

  /// Leaves the arena in a valid empty state after its guts were moved out.
  void forget() {
    Slabs.clear();
    Cur = End = nullptr;
    NumAllocations = BytesAllocated = BytesReserved = 0;
  }

  static constexpr size_t DefaultSlabSize = 64 * 1024;

  std::vector<Slab> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NumAllocations = 0;
  size_t BytesAllocated = 0;
  size_t BytesReserved = 0;
};

} // namespace afl

#endif // AFL_SUPPORT_ARENA_H
