//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and ranges for diagnostics and AST nodes.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_SOURCELOC_H
#define AFL_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace afl {

/// A position in the source text. Line and column are 1-based; a value of 0
/// marks an invalid/unknown location (e.g., synthesized nodes).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }

  /// Renders as "line:col" (or "<unknown>").
  std::string str() const;
};

} // namespace afl

#endif // AFL_SUPPORT_SOURCELOC_H
