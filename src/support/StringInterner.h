//===----------------------------------------------------------------------===//
///
/// \file
/// Uniqued identifier storage. Identifiers are interned once and referred to
/// by stable \c Symbol handles; comparison is O(1).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_STRINGINTERNER_H
#define AFL_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace afl {

/// A handle to an interned string. Value 0 is reserved for the invalid
/// symbol so that default-constructed symbols are distinguishable.
class Symbol {
public:
  Symbol() = default;

  bool isValid() const { return Id != 0; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  friend class StringInterner;
  explicit Symbol(uint32_t Id) : Id(Id) {}
  uint32_t Id = 0;
};

/// Owns interned strings and hands out \c Symbol handles.
class StringInterner {
public:
  StringInterner() { Strings.emplace_back(); /* slot 0 = invalid */ }

  /// Interns \p Text, returning a stable symbol; repeated calls with equal
  /// text return equal symbols.
  Symbol intern(std::string_view Text);

  /// Returns the text for \p S. \p S must be valid.
  const std::string &text(Symbol S) const {
    assert(S.isValid() && "querying invalid symbol");
    assert(S.id() < Strings.size() && "symbol from another interner?");
    return Strings[S.id()];
  }

  size_t size() const { return Strings.size() - 1; }

private:
  // Deque keeps element addresses stable, so the string_view keys in Index
  // (which point into stored strings) remain valid as new strings arrive.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace afl

#endif // AFL_SUPPORT_STRINGINTERNER_H
