//===----------------------------------------------------------------------===//
///
/// \file
/// Uniqued identifier storage. Identifiers are interned once and referred to
/// by stable \c Symbol handles; comparison is O(1).
///
/// Interned bytes live in an \c Arena rather than per-string heap nodes:
/// an interner can share its owning context's pooled arena so a batch item
/// or server request releases identifiers together with its AST nodes.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_STRINGINTERNER_H
#define AFL_SUPPORT_STRINGINTERNER_H

#include "support/Arena.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace afl {

/// A handle to an interned string. Value 0 is reserved for the invalid
/// symbol so that default-constructed symbols are distinguishable.
class Symbol {
public:
  Symbol() = default;

  bool isValid() const { return Id != 0; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  friend class StringInterner;
  explicit Symbol(uint32_t Id) : Id(Id) {}
  uint32_t Id = 0;
};

/// Owns interned strings and hands out \c Symbol handles.
class StringInterner {
public:
  /// Standalone interner backed by its own private arena.
  StringInterner() : Own(std::make_unique<Arena>()), Mem(Own.get()) {
    Strings.emplace_back(); // slot 0 = invalid
  }

  /// Interner storing its bytes in \p A, which must outlive the interner.
  explicit StringInterner(Arena &A) : Mem(&A) {
    Strings.emplace_back(); // slot 0 = invalid
  }

  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p Text, returning a stable symbol; repeated calls with equal
  /// text return equal symbols.
  Symbol intern(std::string_view Text);

  /// Returns the text for \p S. \p S must be valid. The view stays valid
  /// for the interner's (and its arena's) lifetime.
  std::string_view text(Symbol S) const {
    assert(S.isValid() && "querying invalid symbol");
    assert(S.id() < Strings.size() && "symbol from another interner?");
    return Strings[S.id()];
  }

  size_t size() const { return Strings.size() - 1; }

private:
  // Present only for the default constructor; shared-arena interners
  // leave it null and point Mem at the caller's arena.
  std::unique_ptr<Arena> Own;
  Arena *Mem;
  // Views point into arena slabs, which never move, so both the table and
  // the Index keys stay valid as new strings arrive.
  std::vector<std::string_view> Strings;
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace afl

#endif // AFL_SUPPORT_STRINGINTERNER_H
