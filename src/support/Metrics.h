//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight observability primitives shared by the pipeline, the
/// command-line tools and the benchmarks: a monotonic Stopwatch, a
/// MetricsRegistry of named counters and timers organized in nested
/// scopes, and a stable JSON serializer. No third-party dependencies;
/// see docs/OBSERVABILITY.md for the data model and the emitted schema.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_METRICS_H
#define AFL_SUPPORT_METRICS_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace afl {

/// Monotonic wall-clock stopwatch (steady_clock; never goes backwards
/// even if the system clock is adjusted). Starts on construction.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed time since construction/reset, in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in integral nanoseconds.
  uint64_t nanoseconds() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Process-wide peak resident set size in KiB (Linux: the VmHWM line of
/// /proc/self/status). Returns 0 when the value is unavailable (other
/// platforms, or an unreadable procfs) — callers emit the metric either
/// way so the schema stays stable.
uint64_t readPeakRssKb();

/// A tree of named metrics. Leaves are either integral *counters* or
/// floating-point *timers* (seconds; by convention their names end in
/// "_seconds"). Interior nodes are *scopes*. Insertion order is
/// preserved everywhere, so the JSON rendering is stable across runs.
///
/// Not thread-safe: concurrent producers each fill their own registry
/// and the results are combined with merge() (see driver/BatchRunner).
class MetricsRegistry {
public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(MetricsRegistry &&) noexcept;
  MetricsRegistry &operator=(MetricsRegistry &&) noexcept;

  //===------------------------------------------------------------------===//
  // Scopes
  //===------------------------------------------------------------------===//

  /// Enters (creating on first use) the child scope \p Name of the
  /// current scope. Subsequent add/set/addTime calls land inside it.
  void push(std::string_view Name);
  /// Leaves the current scope; no-op at the root.
  void pop();

  //===------------------------------------------------------------------===//
  // Producers (addressed relative to the current scope)
  //===------------------------------------------------------------------===//

  /// Adds \p Delta to counter \p Name (created at zero on first use).
  void add(std::string_view Name, uint64_t Delta);
  /// Sets counter \p Name to \p Value.
  void set(std::string_view Name, uint64_t Value);
  /// Adds \p Seconds to timer \p Name (created at zero on first use).
  void addTime(std::string_view Name, double Seconds);
  /// Sets text leaf \p Name to \p Value (rendered as a JSON string;
  /// used for per-item error messages in batch output).
  void setText(std::string_view Name, std::string_view Value);

  //===------------------------------------------------------------------===//
  // Consumers (addressed by '/'-separated path from the root)
  //===------------------------------------------------------------------===//

  /// Value of the counter at \p Path ("pipeline/solve/propagations"),
  /// or 0 if absent.
  uint64_t counter(std::string_view Path) const;
  /// Value of the timer at \p Path, or 0.0 if absent.
  double timer(std::string_view Path) const;
  /// Value of the text leaf at \p Path, or "" if absent.
  std::string text(std::string_view Path) const;
  /// True if any metric or scope exists at \p Path.
  bool has(std::string_view Path) const;

  /// Adds every counter and timer of \p Other into this registry,
  /// creating scopes as needed (pointwise sum; used for batch
  /// aggregation).
  void merge(const MetricsRegistry &Other);

  //===------------------------------------------------------------------===//
  // Serialization
  //===------------------------------------------------------------------===//

  /// Renders the whole tree as a JSON object: scopes become objects,
  /// counters integers, timers doubles. Key order is insertion order.
  /// \p Pretty selects 2-space-indented multi-line output.
  std::string json(bool Pretty = true) const;

  /// Escapes \p S for inclusion in a JSON string literal (quotes,
  /// backslashes, control characters).
  static std::string escapeJson(std::string_view S);

private:
  struct Node;
  Node *resolveScope(std::string_view Name);
  const Node *find(std::string_view Path) const;

  std::unique_ptr<Node> Root;
  std::vector<Node *> Stack; ///< current scope chain; back() is active
};

/// RAII helper: enters a registry scope on construction, leaves on
/// destruction.
class MetricScope {
public:
  MetricScope(MetricsRegistry &Reg, std::string_view Name) : Reg(Reg) {
    Reg.push(Name);
  }
  ~MetricScope() { Reg.pop(); }
  MetricScope(const MetricScope &) = delete;
  MetricScope &operator=(const MetricScope &) = delete;

private:
  MetricsRegistry &Reg;
};

/// RAII helper: adds the elapsed wall time to timer \p Name (in the
/// registry's *current* scope at destruction time) when it goes out of
/// scope.
class ScopedTimer {
public:
  ScopedTimer(MetricsRegistry &Reg, std::string Name)
      : Reg(Reg), Name(std::move(Name)) {}
  ~ScopedTimer() { Reg.addTime(Name, Watch.seconds()); }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  MetricsRegistry &Reg;
  std::string Name;
  Stopwatch Watch;
};

} // namespace afl

#endif // AFL_SUPPORT_METRICS_H
