#include "support/Metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace afl;

uint64_t afl::readPeakRssKb() {
  // VmHWM ("high water mark") is the peak resident set of the process;
  // procfs reports it in kB. Missing file or line → 0.
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  uint64_t Kb = 0;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, "VmHWM:", 6) == 0) {
      unsigned long long Value = 0;
      if (std::sscanf(Line + 6, "%llu", &Value) == 1)
        Kb = Value;
      break;
    }
  }
  std::fclose(F);
  return Kb;
}

//===----------------------------------------------------------------------===//
// Node
//===----------------------------------------------------------------------===//

struct MetricsRegistry::Node {
  enum class Kind { Scope, Counter, Timer, Text };

  std::string Name;
  Kind NodeKind = Kind::Scope;
  uint64_t Count = 0;
  double Seconds = 0;
  std::string Text;
  /// Children in insertion order (scopes and leaves interleaved).
  std::vector<std::unique_ptr<Node>> Children;

  Node *child(std::string_view ChildName, Kind K) {
    for (auto &C : Children)
      if (C->Name == ChildName)
        return C.get();
    auto N = std::make_unique<Node>();
    N->Name = std::string(ChildName);
    N->NodeKind = K;
    Children.push_back(std::move(N));
    return Children.back().get();
  }

  const Node *findChild(std::string_view ChildName) const {
    for (const auto &C : Children)
      if (C->Name == ChildName)
        return C.get();
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

MetricsRegistry::MetricsRegistry() : Root(std::make_unique<Node>()) {
  Stack.push_back(Root.get());
}

MetricsRegistry::~MetricsRegistry() = default;
MetricsRegistry::MetricsRegistry(MetricsRegistry &&) noexcept = default;
MetricsRegistry &
MetricsRegistry::operator=(MetricsRegistry &&) noexcept = default;

void MetricsRegistry::push(std::string_view Name) {
  Stack.push_back(Stack.back()->child(Name, Node::Kind::Scope));
}

void MetricsRegistry::pop() {
  if (Stack.size() > 1)
    Stack.pop_back();
}

void MetricsRegistry::add(std::string_view Name, uint64_t Delta) {
  Stack.back()->child(Name, Node::Kind::Counter)->Count += Delta;
}

void MetricsRegistry::set(std::string_view Name, uint64_t Value) {
  Stack.back()->child(Name, Node::Kind::Counter)->Count = Value;
}

void MetricsRegistry::addTime(std::string_view Name, double Seconds) {
  Stack.back()->child(Name, Node::Kind::Timer)->Seconds += Seconds;
}

void MetricsRegistry::setText(std::string_view Name, std::string_view Value) {
  Stack.back()->child(Name, Node::Kind::Text)->Text = std::string(Value);
}

const MetricsRegistry::Node *
MetricsRegistry::find(std::string_view Path) const {
  const Node *N = Root.get();
  while (N && !Path.empty()) {
    size_t Slash = Path.find('/');
    std::string_view Head =
        Slash == std::string_view::npos ? Path : Path.substr(0, Slash);
    Path = Slash == std::string_view::npos ? std::string_view()
                                           : Path.substr(Slash + 1);
    N = N->findChild(Head);
  }
  return N;
}

uint64_t MetricsRegistry::counter(std::string_view Path) const {
  const Node *N = find(Path);
  return N && N->NodeKind == Node::Kind::Counter ? N->Count : 0;
}

double MetricsRegistry::timer(std::string_view Path) const {
  const Node *N = find(Path);
  return N && N->NodeKind == Node::Kind::Timer ? N->Seconds : 0.0;
}

std::string MetricsRegistry::text(std::string_view Path) const {
  const Node *N = find(Path);
  return N && N->NodeKind == Node::Kind::Text ? N->Text : std::string();
}

bool MetricsRegistry::has(std::string_view Path) const {
  return find(Path) != nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  // Recursive pointwise sum; scopes are created on demand.
  struct Merger {
    static void run(Node *Dst, const Node *Src) {
      for (const auto &C : Src->Children) {
        Node *D = Dst->child(C->Name, C->NodeKind);
        D->Count += C->Count;
        D->Seconds += C->Seconds;
        // Text has no meaningful sum; first non-empty value wins.
        if (D->Text.empty())
          D->Text = C->Text;
        run(D, C.get());
      }
    }
  };
  Merger::run(Root.get(), Other.Root.get());
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

std::string MetricsRegistry::escapeJson(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

namespace {

/// Prints a double so that it always round-trips as a JSON number with a
/// fractional part ("0.0", never "0" — keeps counters and timers
/// distinguishable in the output).
std::string formatSeconds(double Seconds) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9f", Seconds);
  return Buf;
}

} // namespace

std::string MetricsRegistry::json(bool Pretty) const {
  std::string Out;
  struct Renderer {
    bool Pretty;
    std::string &Out;

    void indent(unsigned Depth) {
      if (Pretty)
        Out.append(static_cast<size_t>(Depth) * 2, ' ');
    }

    void scope(const Node &N, unsigned Depth) {
      Out += '{';
      bool First = true;
      for (const auto &C : N.Children) {
        if (!First)
          Out += ',';
        First = false;
        if (Pretty)
          Out += '\n';
        indent(Depth + 1);
        Out += '"';
        Out += MetricsRegistry::escapeJson(C->Name);
        Out += Pretty ? "\": " : "\":";
        switch (C->NodeKind) {
        case Node::Kind::Scope:
          scope(*C, Depth + 1);
          break;
        case Node::Kind::Counter:
          Out += std::to_string(C->Count);
          break;
        case Node::Kind::Timer:
          Out += formatSeconds(C->Seconds);
          break;
        case Node::Kind::Text:
          Out += '"';
          Out += MetricsRegistry::escapeJson(C->Text);
          Out += '"';
          break;
        }
      }
      if (!First && Pretty) {
        Out += '\n';
        indent(Depth);
      }
      Out += '}';
    }
  };
  Renderer R{Pretty, Out};
  R.scope(*Root, 0);
  if (Pretty)
    Out += '\n';
  return Out;
}
