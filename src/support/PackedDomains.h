//===----------------------------------------------------------------------===//
///
/// \file
/// Flat bit-packed domain vectors for the solver. A solver state domain
/// is a subset of {U, A, D} — three bits — and a boolean domain a subset
/// of {false, true} — two bits — yet the byte-per-variable
/// representation spent 8 bits on each and made every full-array
/// operation (the copy into a SolverImpl, the empty-domain scan, the
/// default-to-false sweep, the solution compare) touch 8x the cache
/// lines it needed to.
///
/// `PackedArray<Bits>` stores `64 / Bits` entries per uint64 word, lanes
/// at bit offsets `lane * Bits`, never straddling a word boundary (for
/// Bits == 3 that leaves one pad bit per word). Two invariants make the
/// word-level operations trivial:
///
///   * pad bits and lanes at indices >= size() are always zero, so
///     equality is plain word comparison and copies are word memcpy;
///   * every lane holds at most `Bits` significant bits (set() masks).
///
/// On top of lane get/set this gives genuinely word-at-a-time versions
/// of the solver's full-array idioms:
///
///   * `hasZeroEntry()` — "is any domain empty?" without visiting lanes:
///     OR-fold each lane onto its low bit and compare against the
///     all-lanes-present pattern;
///   * `defaultAnyToFalse()` (Bits == 2) — the solved-system sweep that
///     collapses every still-unconstrained boolean {F,T} to {F}:
///     lanes with both bits set get the high bit cleared, 32 booleans
///     per word-op.
///
/// `pack()`/`unpack()` convert to and from the byte-per-entry layout;
/// the byte-domain solver path (the differential oracle and bench
/// baseline behind `--no-packed-domains`) round-trips through them.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_PACKEDDOMAINS_H
#define AFL_SUPPORT_PACKEDDOMAINS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace afl {
namespace support {

template <unsigned Bits> class PackedArray {
  static_assert(Bits >= 1 && Bits <= 8, "lane width out of range");

public:
  static constexpr unsigned PerWord = 64 / Bits;
  static constexpr uint64_t LaneMask = (uint64_t(1) << Bits) - 1;

  PackedArray() = default;
  PackedArray(size_t Count, uint8_t Value) { assign(Count, Value); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  uint8_t get(size_t I) const {
    return static_cast<uint8_t>((Words[I / PerWord] >> shift(I)) & LaneMask);
  }

  /// Read-only indexing; writes go through set().
  uint8_t operator[](size_t I) const { return get(I); }

  void set(size_t I, uint8_t Value) {
    uint64_t &W = Words[I / PerWord];
    unsigned Sh = shift(I);
    W = (W & ~(LaneMask << Sh)) | ((uint64_t(Value) & LaneMask) << Sh);
  }

  void push_back(uint8_t Value) {
    if (Count % PerWord == 0)
      Words.push_back(0);
    ++Count;
    set(Count - 1, Value);
  }

  void assign(size_t NewCount, uint8_t Value) {
    uint64_t Pat = 0;
    for (unsigned L = 0; L != PerWord; ++L)
      Pat |= (uint64_t(Value) & LaneMask) << (L * Bits);
    Words.assign((NewCount + PerWord - 1) / PerWord, Pat);
    Count = NewCount;
    zeroTail();
  }

  void clear() {
    Words.clear();
    Count = 0;
  }

  void reserve(size_t NewCount) {
    Words.reserve((NewCount + PerWord - 1) / PerWord);
  }

  /// True iff some lane is all-zero (an empty domain — the solver's
  /// trivially-unsat precondition). Word-at-a-time: OR every bit of a
  /// lane onto the lane's low bit, then compare against the pattern
  /// with each valid lane's low bit set.
  bool hasZeroEntry() const {
    size_t Full = Count / PerWord, Rem = Count % PerWord;
    for (size_t W = 0; W != Full; ++W)
      if ((collapse(Words[W]) & lsbPattern(PerWord)) != lsbPattern(PerWord))
        return true;
    if (Rem) {
      uint64_t Need = lsbPattern(static_cast<unsigned>(Rem));
      if ((collapse(Words[Full]) & Need) != Need)
        return true;
    }
    return false;
  }

  /// Collapse every still-undetermined boolean domain {F,T} (0b11) to
  /// {F} (0b01) — the post-solve default sweep — 32 lanes per word-op.
  /// Lanes already singleton (0b01 / 0b10) and zero pad lanes have at
  /// most one bit set, so `w & (w >> 1)` is 0 there and they pass
  /// through untouched.
  void defaultAnyToFalse() {
    static_assert(Bits == 2, "both-bits-set collapse is a 2-bit-lane op");
    for (uint64_t &W : Words) {
      uint64_t Both = W & (W >> 1) & lsbPattern(PerWord);
      W ^= Both << 1;
    }
  }

  friend bool operator==(const PackedArray &A, const PackedArray &B) {
    return A.Count == B.Count && A.Words == B.Words;
  }
  friend bool operator!=(const PackedArray &A, const PackedArray &B) {
    return !(A == B);
  }

  std::vector<uint8_t> unpack() const {
    std::vector<uint8_t> Out(Count);
    for (size_t I = 0; I != Count; ++I)
      Out[I] = get(I);
    return Out;
  }

  static PackedArray pack(const std::vector<uint8_t> &Bytes) {
    PackedArray Out;
    Out.reserve(Bytes.size());
    for (uint8_t V : Bytes)
      Out.push_back(V);
    return Out;
  }

private:
  static unsigned shift(size_t I) {
    return static_cast<unsigned>(I % PerWord) * Bits;
  }

  /// Low bit of every one of the first \p Lanes lanes.
  static constexpr uint64_t lsbPattern(unsigned Lanes) {
    uint64_t P = 0;
    for (unsigned L = 0; L != Lanes; ++L)
      P |= uint64_t(1) << (L * Bits);
    return P;
  }

  /// OR every bit of each lane down onto the lane's low bit.
  static uint64_t collapse(uint64_t W) {
    uint64_t C = W;
    for (unsigned K = 1; K != Bits; ++K)
      C |= W >> K;
    return C;
  }

  /// Keep lanes >= Count zero so word compare == lane compare.
  void zeroTail() {
    if (size_t Rem = Count % PerWord)
      Words.back() &= (uint64_t(1) << (Rem * Bits)) - 1;
  }

  std::vector<uint64_t> Words;
  size_t Count = 0;
};

/// {U, A, D} subsets: 3 bits per variable, 21 per word (1 pad bit).
using StateDomains = PackedArray<3>;
/// {false, true} subsets: 2 bits per variable, 32 per word.
using BoolDomains = PackedArray<2>;
/// Plain bitsets (solver queue/candidate membership): 64 per word.
using PackedBits = PackedArray<1>;

} // namespace support
} // namespace afl

#endif // AFL_SUPPORT_PACKEDDOMAINS_H
