#include "support/Arena.h"

#include <algorithm>

using namespace afl;

void Arena::growSlab(size_t MinSize) {
  size_t SlabSize = std::max(DefaultSlabSize, MinSize);
  Slabs.push_back(std::make_unique<char[]>(SlabSize));
  Cur = Slabs.back().get();
  End = Cur + SlabSize;
  BytesReserved += SlabSize;
}
