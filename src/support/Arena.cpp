#include "support/Arena.h"

#include <algorithm>

using namespace afl;

void Arena::growSlab(size_t MinSize) {
  size_t SlabSize = std::max(DefaultSlabSize, MinSize);
  Slabs.push_back({std::make_unique<char[]>(SlabSize), SlabSize});
  Cur = Slabs.back().Mem.get();
  End = Cur + SlabSize;
  BytesReserved += SlabSize;
}

void Arena::reset() {
  if (!Slabs.empty()) {
    auto Largest = std::max_element(
        Slabs.begin(), Slabs.end(),
        [](const Slab &A, const Slab &B) { return A.Size < B.Size; });
    Slab Kept = std::move(*Largest);
    Slabs.clear();
    Cur = Kept.Mem.get();
    End = Cur + Kept.Size;
    BytesReserved = Kept.Size;
    Slabs.push_back(std::move(Kept));
  }
  NumAllocations = 0;
  BytesAllocated = 0;
}
