//===----------------------------------------------------------------------===//
///
/// \file
/// SetInterner<T>: hash-consing for FlatSet<T>. Every distinct set is
/// stored once and referred to by a dense 32-bit SetId (id 0 is always
/// the empty set), so set equality is an integer compare and the
/// closure-analysis tables hold one word per (context, value-set) entry.
/// Union and element-insert results are memoized by id pair: the fixpoint
/// re-unions the same few sets thousands of times, and after the first
/// computation each repeat is a single hash lookup.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_SETINTERNER_H
#define AFL_SUPPORT_SETINTERNER_H

#include "support/FlatSet.h"

#include <cstdint>
#include <unordered_map>

namespace afl {

template <typename T> class SetInterner {
public:
  using SetId = uint32_t;
  static constexpr SetId Empty = 0;

  SetInterner() {
    Sets.emplace_back(); // id 0: the empty set
    Buckets.emplace(hashSet(Sets[0]), std::vector<SetId>{Empty});
  }

  const FlatSet<T> &get(SetId Id) const { return Sets[Id]; }

  /// Number of distinct sets interned (including the empty set).
  size_t size() const { return Sets.size(); }

  /// Interns \p S, returning the id of the canonical copy.
  SetId intern(FlatSet<T> S) {
    uint64_t H = hashSet(S);
    std::vector<SetId> &Bucket = Buckets[H];
    for (SetId Id : Bucket)
      if (Sets[Id] == S)
        return Id;
    SetId Id = static_cast<SetId>(Sets.size());
    Sets.push_back(std::move(S));
    Bucket.push_back(Id);
    return Id;
  }

  SetId single(const T &X) {
    FlatSet<T> S;
    S.insert(X);
    return intern(std::move(S));
  }

  /// Union by id, memoized. Identical or empty operands never touch the
  /// cache.
  SetId unionSets(SetId A, SetId B) {
    if (A == B || B == Empty)
      return A;
    if (A == Empty)
      return B;
    if (A > B)
      std::swap(A, B); // commutative: canonicalize the cache key
    uint64_t Key = (static_cast<uint64_t>(A) << 32) | B;
    auto It = UnionCache.find(Key);
    if (It != UnionCache.end())
      return It->second;
    FlatSet<T> U = Sets[A];
    U.unionWith(Sets[B]);
    SetId R = intern(std::move(U));
    UnionCache.emplace(Key, R);
    return R;
  }

  /// insert(S, x) by id, memoized.
  SetId insert(SetId S, const T &X) {
    if (Sets[S].contains(X))
      return S;
    uint64_t Key = (static_cast<uint64_t>(S) << 32) ^ 0x9e3779b97f4a7c15ull ^
                   static_cast<uint64_t>(X);
    auto It = InsertCache.find(Key);
    if (It != InsertCache.end())
      return It->second;
    FlatSet<T> U = Sets[S];
    U.insert(X);
    SetId R = intern(std::move(U));
    InsertCache.emplace(Key, R);
    return R;
  }

private:
  static uint64_t hashSet(const FlatSet<T> &S) {
    uint64_t H = 0xcbf29ce484222325ull;
    for (const T &X : S) {
      H ^= static_cast<uint64_t>(X) + 0x9e3779b97f4a7c15ull;
      H *= 0x100000001b3ull;
    }
    return H;
  }

  std::vector<FlatSet<T>> Sets;
  std::unordered_map<uint64_t, std::vector<SetId>> Buckets;
  std::unordered_map<uint64_t, SetId> UnionCache;
  std::unordered_map<uint64_t, SetId> InsertCache;
};

} // namespace afl

#endif // AFL_SUPPORT_SETINTERNER_H
