#include "support/Json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

using namespace afl;
using namespace afl::json;

namespace {

/// Recursive-descent reader over a string_view. Depth-capped; every
/// failure path records a message with the byte offset.
class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(Value &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int MaxDepth = 128;

  bool fail(const std::string &Msg) {
    Error = Msg + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Word) {
    if (Text.compare(Pos, Word.size(), Word) != 0)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::string(std::move(S));
      return true;
    }
    case 't':
      if (literal("true")) {
        Out = Value::boolean(true);
        return true;
      }
      return fail("invalid literal");
    case 'f':
      if (literal("false")) {
        Out = Value::boolean(false);
        return true;
      }
      return fail("invalid literal");
    case 'n':
      if (literal("null")) {
        Out = Value::null();
        return true;
      }
      return fail("invalid literal");
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber(Out);
      return fail(std::string("unexpected character '") + C + "'");
    }
  }

  bool parseObject(Value &Out, int Depth) {
    ++Pos; // '{'
    Out = Value::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.membersMut().emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out, int Depth) {
    ++Pos; // '['
    Out = Value::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.itemsMut().push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  /// UTF-8-encodes \p Cp into \p Out (Cp validated by the caller).
  static void appendUtf8(std::string &Out, uint32_t Cp) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xC0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xE0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail("invalid hex digit in \\u escape");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (Pos >= Text.size())
        return fail("truncated escape sequence");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Cp = 0;
        if (!parseHex4(Cp))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uXXXX
        // with a low surrogate; lone surrogates become U+FFFD.
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            size_t Save = Pos;
            Pos += 2;
            uint32_t Lo = 0;
            if (!parseHex4(Lo))
              return false;
            if (Lo >= 0xDC00 && Lo <= 0xDFFF) {
              Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
            } else {
              Pos = Save;
              Cp = 0xFFFD;
            }
          } else {
            Cp = 0xFFFD;
          }
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          Cp = 0xFFFD;
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("invalid escape sequence");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("invalid number");
    // Leading zero may not be followed by more digits (JSON grammar).
    if (Text[Pos] == '0' && Pos + 1 < Text.size() &&
        std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))
      return fail("leading zero in number");
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    bool Integral = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("digit expected after decimal point");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("digit expected in exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    std::string Tok(Text.substr(Start, Pos - Start));
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Tok.c_str(), &End, 10);
      // Out-of-range literals must not silently saturate (or lose
      // precision as a double): callers use integer ids verbatim.
      if (errno == ERANGE)
        return fail("integer literal out of range");
      if (End && *End == '\0') {
        Out = Value::integer(static_cast<int64_t>(V));
        return true;
      }
    }
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0')
      return fail("invalid number");
    Out = Value::number(D);
    return true;
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool json::parseJson(std::string_view Text, Value &Out, std::string &Error) {
  Parser P(Text, Error);
  return P.parse(Out);
}
