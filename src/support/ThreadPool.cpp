#include "support/ThreadPool.h"

#include <atomic>

namespace afl {

/// One fork/join region, shared (via shared_ptr) between the caller and
/// any helper tasks still sitting in the queue. The caller waits for
/// *item completions*, not for helper tasks: a helper that only gets
/// scheduled after the items are exhausted claims nothing, touches
/// neither Fn nor the caller's stack, and simply drops its reference.
/// This is what makes nested parallelFor deadlock-free — an inner call
/// never depends on its queued helpers actually running.
struct ThreadPool::Batch {
  size_t Items = 0;
  std::function<void(size_t)> const *Fn = nullptr;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Completed{0};
  std::atomic<size_t> CallerRan{0};
  std::atomic<size_t> WorkerRan{0};
  std::atomic<unsigned> Engaged{0};
  std::mutex DoneMutex;
  std::condition_variable DoneCV;
};

void ThreadPool::drain(Batch &B, bool IsCaller) {
  size_t Ran = 0;
  for (;;) {
    size_t I = B.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= B.Items)
      break;
    (*B.Fn)(I);
    if (++Ran == 1)
      B.Engaged.fetch_add(1, std::memory_order_relaxed);
    if (IsCaller)
      B.CallerRan.fetch_add(1, std::memory_order_relaxed);
    else
      B.WorkerRan.fetch_add(1, std::memory_order_relaxed);
    // Last of all: the acq_rel increment publishes both the item's
    // effects and the counters above before the caller can observe
    // Completed == Items and return.
    if (B.Completed.fetch_add(1, std::memory_order_acq_rel) + 1 == B.Items) {
      std::lock_guard<std::mutex> Lock(B.DoneMutex);
      B.DoneCV.notify_all();
    }
  }
}

ThreadPool::ThreadPool(unsigned Threads) {
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  NumWorkers.store(Threads, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Shutdown = true;
  }
  QueueCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [this] { return Shutdown || !Queue.empty(); });
      if (Queue.empty())
        return; // Shutdown with a drained queue.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

ThreadPool::RunStats
ThreadPool::parallelFor(size_t Items, unsigned MaxWorkers,
                        const std::function<void(size_t)> &Fn) {
  RunStats Stats;
  Stats.Items = Items;
  if (Items == 0)
    return Stats;

  auto B = std::make_shared<Batch>();
  B->Items = Items;
  B->Fn = &Fn;

  // Helpers beyond the caller: bounded by the request, the pool size,
  // and the number of items (a helper with nothing to claim is waste).
  unsigned Executors = MaxWorkers == 0 ? numThreads() + 1 : MaxWorkers;
  size_t Helpers = Executors > 1 ? Executors - 1 : 0;
  Helpers = std::min(Helpers, static_cast<size_t>(numThreads()));
  Helpers = std::min(Helpers, Items > 1 ? Items - 1 : 0);

  if (Helpers) {
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      for (size_t I = 0; I < Helpers; ++I)
        Queue.emplace_back([B] { drain(*B, /*IsCaller=*/false); });
    }
    if (Helpers == 1)
      QueueCV.notify_one();
    else
      QueueCV.notify_all();
    Stats.TasksQueued = Helpers;
  }

  drain(*B, /*IsCaller=*/true);

  if (B->Completed.load(std::memory_order_acquire) < Items) {
    std::unique_lock<std::mutex> Lock(B->DoneMutex);
    B->DoneCV.wait(Lock, [&] {
      return B->Completed.load(std::memory_order_acquire) >= Items;
    });
  }

  Stats.RanByCaller = B->CallerRan.load(std::memory_order_relaxed);
  Stats.RanByWorkers = B->WorkerRan.load(std::memory_order_relaxed);
  Stats.WorkersEngaged = B->Engaged.load(std::memory_order_relaxed);
  return Stats;
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.emplace_back(std::move(Task));
  }
  QueueCV.notify_one();
}

void ThreadPool::ensureWorkers(unsigned Target) {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  while (Workers.size() < Target) {
    Workers.emplace_back([this] { workerLoop(); });
    NumWorkers.store(static_cast<unsigned>(Workers.size()),
                     std::memory_order_relaxed);
  }
}

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool &ThreadPool::global() {
  // Leaked intentionally: joining workers during static destruction
  // races with other static teardown; the OS reclaims the threads.
  static ThreadPool *Pool = new ThreadPool(hardwareThreads() - 1);
  return *Pool;
}

} // namespace afl
