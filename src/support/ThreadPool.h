//===----------------------------------------------------------------------===//
///
/// \file
/// A shared worker-thread pool with a deadlock-free fork/join primitive.
/// One pool (ThreadPool::global(), sized to the hardware) backs every
/// parallel stage in the pipeline: batch items (driver/BatchRunner),
/// solver components (solver/Solver.cpp) and closure-analysis partitions
/// (closure/ParallelFixpoint.cpp), so nested stages share one set of
/// threads instead of each spawning its own.
///
/// The only primitive is parallelFor(Items, MaxWorkers, Fn): run
/// Fn(0..Items-1) with at most MaxWorkers concurrent executors and block
/// until every item finished. The *calling* thread always participates:
/// it claims items from the same atomic cursor the pool workers steal
/// from. That is what makes nesting safe — a pool worker that issues an
/// inner parallelFor drains the inner batch itself even when every other
/// worker is busy, so the pool can never deadlock on its own capacity,
/// and a pool of size zero (or a fully loaded pool) degrades to inline
/// sequential execution rather than blocking.
///
/// Determinism contract: parallelFor guarantees only that every item runs
/// exactly once and has completed when the call returns (a full
/// happens-before barrier). Callers that need deterministic *results*
/// must make item slots independent (write only slot I from item I) or
/// merge in item order afterwards — see the closure partition replay.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_THREADPOOL_H
#define AFL_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace afl {

class ThreadPool {
public:
  /// Work accounting for one parallelFor call (surfaced as the
  /// steal/queue counters in ClosureStats and `aflc --metrics`).
  struct RunStats {
    /// Items executed (== the Items argument).
    size_t Items = 0;
    /// Items the calling thread executed inline.
    size_t RanByCaller = 0;
    /// Items stolen by pool workers.
    size_t RanByWorkers = 0;
    /// Drainer tasks enqueued to the pool (≤ MaxWorkers - 1).
    size_t TasksQueued = 0;
    /// Executors that ran at least one item (caller included).
    unsigned WorkersEngaged = 0;
  };

  /// Creates \p Threads worker threads (0 = none; parallelFor then runs
  /// everything inline on the caller).
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const {
    return NumWorkers.load(std::memory_order_relaxed);
  }

  /// Runs \p Fn(I) for every I in [0, Items) with at most \p MaxWorkers
  /// concurrent executors (the caller plus up to MaxWorkers - 1 pool
  /// workers; MaxWorkers == 0 means "pool size + 1"). Blocks until all
  /// items completed. \p Fn must not throw. Reentrant: \p Fn may itself
  /// call parallelFor on the same pool.
  RunStats parallelFor(size_t Items, unsigned MaxWorkers,
                       const std::function<void(size_t)> &Fn);

  /// Enqueues one detached task. Unlike parallelFor, nobody waits on it
  /// and the submitting thread never runs it inline — a task that blocks
  /// (a connection handler polling its socket) occupies one worker and
  /// nothing else. Callers owning long-lived tasks must ensureWorkers()
  /// first: the global pool has hardware_concurrency() - 1 workers, which
  /// is zero on a single-core host, and submit() never runs tasks itself.
  void submit(std::function<void()> Task);

  /// Grows the pool to at least \p Target workers (never shrinks).
  /// Thread-safe; used by the socket transport to reserve one worker per
  /// concurrent connection on top of the compute workers.
  void ensureWorkers(unsigned Target);

  /// The process-wide shared pool, lazily created with
  /// hardware_concurrency() - 1 workers (the calling thread is the
  /// remaining executor). Never destroyed before program exit.
  static ThreadPool &global();

  /// hardware_concurrency() with the zero-means-unknown case mapped to 1.
  static unsigned hardwareThreads();

private:
  struct Batch;
  static void drain(Batch &B, bool IsCaller);
  void workerLoop();

  std::vector<std::thread> Workers; ///< Guarded by QueueMutex.
  std::atomic<unsigned> NumWorkers{0};
  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<std::function<void()>> Queue;
  bool Shutdown = false;
};

} // namespace afl

#endif // AFL_SUPPORT_THREADPOOL_H
