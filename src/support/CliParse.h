//===----------------------------------------------------------------------===//
///
/// \file
/// Strict numeric parsing for command-line arguments. `std::atoi` maps
/// "bogus" to 0 and "-3" through unsigned wraparound to ~4 billion — a
/// job count of either kind silently misconfigures the pipeline. These
/// helpers accept only a full decimal literal and report failure instead.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_CLIPARSE_H
#define AFL_SUPPORT_CLIPARSE_H

#include <charconv>
#include <string_view>

namespace afl {

/// Parses \p Text as an on/off toggle: exactly "0" (off) or "1" (on).
/// Anything else ("", "on", "true", "2") fails with \p Out untouched —
/// used for $AFL_ARENA_POOL, where the library is lenient but the aflc
/// driver rejects a malformed value with a usage error.
inline bool parseCliToggle(std::string_view Text, bool &Out) {
  if (Text == "0" || Text == "1") {
    Out = Text == "1";
    return true;
  }
  return false;
}

/// Parses \p Text as a non-negative decimal integer. Returns false on an
/// empty string, any non-digit (including a sign or trailing garbage),
/// or overflow of unsigned; \p Out is untouched on failure.
inline bool parseCliUnsigned(std::string_view Text, unsigned &Out) {
  if (Text.empty())
    return false;
  unsigned Value = 0;
  const char *First = Text.data();
  const char *Last = Text.data() + Text.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, Value, 10);
  if (Ec != std::errc() || Ptr != Last)
    return false;
  Out = Value;
  return true;
}

} // namespace afl

#endif // AFL_SUPPORT_CLIPARSE_H
