//===----------------------------------------------------------------------===//
///
/// \file
/// Small file-output helper shared by the CLI surfaces. Exists so the
/// "did the write actually reach the file?" check lives in one place:
/// an ofstream that opened fine can still fail mid-write (full device,
/// quota, I/O error), and `Out << Text` reports that only through the
/// stream state — which every ad-hoc call site forgot to look at.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_FILEIO_H
#define AFL_SUPPORT_FILEIO_H

#include <fstream>
#include <string>

namespace afl {

/// Writes \p Text to \p Path, overwriting any existing file. Returns
/// true only if the open, the write, and the flush all succeeded; on
/// failure fills \p Err with a one-line diagnostic (no trailing
/// newline) and returns false. The flush happens before the state
/// check so deferred buffer errors (ENOSPC on /dev/full, a path that
/// names a directory) are surfaced here, not silently dropped in the
/// ofstream destructor.
inline bool writeTextFile(const std::string &Path, const std::string &Text,
                          std::string &Err) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << Text;
  Out.flush();
  if (!Out) {
    Err = "write error on '" + Path + "'";
    return false;
  }
  return true;
}

} // namespace afl

#endif // AFL_SUPPORT_FILEIO_H
