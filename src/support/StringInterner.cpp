#include "support/StringInterner.h"

using namespace afl;

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return Symbol(It->second);
  Strings.emplace_back(Text);
  uint32_t Id = static_cast<uint32_t>(Strings.size() - 1);
  Index.emplace(std::string_view(Strings.back()), Id);
  return Symbol(Id);
}
