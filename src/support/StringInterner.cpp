#include "support/StringInterner.h"

#include <cstring>

using namespace afl;

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return Symbol(It->second);
  std::string_view Stored;
  if (!Text.empty()) {
    char *Bytes = static_cast<char *>(Mem->allocate(Text.size(), 1));
    std::memcpy(Bytes, Text.data(), Text.size());
    Stored = std::string_view(Bytes, Text.size());
  }
  Strings.push_back(Stored);
  uint32_t Id = static_cast<uint32_t>(Strings.size() - 1);
  Index.emplace(Stored, Id);
  return Symbol(Id);
}
