#include "support/SourceLoc.h"

using namespace afl;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}
