//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal RAII wrappers over POSIX TCP sockets for the analysis server's
/// listen mode (docs/SERVER.md). Two classes: Socket, one connected
/// stream with poll-based readable waits and full-buffer sends; and
/// ListenSocket, a loopback acceptor with a bounded backlog. Both are
/// loopback-only by design — the server binds 127.0.0.1 and is not meant
/// to face untrusted networks directly.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_SOCKET_H
#define AFL_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace afl {
namespace support {

/// One connected TCP stream. Move-only; the destructor closes the fd.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// Outcome of waitReadable().
  enum class Wait { Ready, Timeout, Error };

  /// Blocks until the socket has readable bytes (or EOF), for at most
  /// \p TimeoutMs milliseconds (negative blocks indefinitely). EINTR
  /// restarts the wait.
  Wait waitReadable(int TimeoutMs);

  /// Reads up to \p Len bytes. Returns the byte count, 0 on orderly EOF,
  /// -1 on error. EINTR restarts the read.
  long recvSome(char *Buf, size_t Len);

  /// Writes all of \p Data, retrying partial writes and EINTR; sends with
  /// MSG_NOSIGNAL so a closed peer yields EPIPE instead of killing the
  /// process. Returns false once any byte fails to send.
  bool sendAll(std::string_view Data);

  /// Connects to 127.0.0.1:\p Port. On failure returns an invalid Socket
  /// and describes the error in \p Error.
  static Socket connectTo(uint16_t Port, std::string &Error);

private:
  int Fd = -1;
};

/// A loopback TCP acceptor. Binds 127.0.0.1:\p Port (port 0 picks an
/// ephemeral port, readable via port()) with a bounded listen backlog.
class ListenSocket {
public:
  ListenSocket() = default;
  ~ListenSocket() { close(); }

  ListenSocket(ListenSocket &&O) noexcept : Fd(O.Fd), BoundPort(O.BoundPort) {
    O.Fd = -1;
    O.BoundPort = 0;
  }
  ListenSocket &operator=(ListenSocket &&O) noexcept;
  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;

  bool valid() const { return Fd >= 0; }
  uint16_t port() const { return BoundPort; }
  void close();

  /// Binds and listens on 127.0.0.1:\p Port with SO_REUSEADDR and a
  /// backlog of \p Backlog pending connections. On failure returns an
  /// invalid ListenSocket and describes the error in \p Error.
  static ListenSocket listenOn(uint16_t Port, int Backlog, std::string &Error);

  /// Waits up to \p TimeoutMs milliseconds for a pending connection and
  /// accepts it. Returns an invalid Socket on timeout or error (the two
  /// are indistinguishable on purpose: callers re-poll either way).
  Socket accept(int TimeoutMs);

private:
  int Fd = -1;
  uint16_t BoundPort = 0;
};

} // namespace support
} // namespace afl

#endif // AFL_SUPPORT_SOCKET_H
