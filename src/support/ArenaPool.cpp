#include "support/ArenaPool.h"

#include "support/CliParse.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

using namespace afl;

size_t ArenaPool::sizeClass(size_t Bytes) {
  size_t Class = 0;
  while (Class + 1 < NumClasses &&
         Bytes >= (size_t(1) << (MinClassLog2 + Class + 1)))
    ++Class;
  return Class;
}

Arena ArenaPool::acquire() {
  std::lock_guard<std::mutex> Lock(M);
  ++S.Checkouts;
  // Walk classes from largest to smallest: a big recycled arena serves any
  // workload, and keeping big slabs in circulation is the whole point.
  for (size_t C = NumClasses; C-- != 0;) {
    if (Classes[C].empty())
      continue;
    Arena A = std::move(Classes[C].back());
    Classes[C].pop_back();
    --NumPooled;
    ++S.Hits;
    return A;
  }
  ++S.Misses;
  return Arena();
}

void ArenaPool::release(Arena &&A) {
  A.reset();
  std::lock_guard<std::mutex> Lock(M);
  ++S.Returns;
  if (NumPooled >= MaxPooled) {
    ++S.Discarded;
    return; // A is destroyed here; its slab goes back to the OS.
  }
  Classes[sizeClass(A.bytesReserved())].push_back(std::move(A));
  ++NumPooled;
}

void ArenaPool::clear() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &Class : Classes)
    Class.clear();
  NumPooled = 0;
}

ArenaPool::Stats ArenaPool::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  Stats Out = S;
  Out.Pooled = NumPooled;
  Out.RetainedBytes = 0;
  for (const auto &Class : Classes)
    for (const Arena &A : Class)
      Out.RetainedBytes += A.bytesReserved();
  return Out;
}

size_t ArenaPool::maxPooled() const {
  std::lock_guard<std::mutex> Lock(M);
  return MaxPooled;
}

void ArenaPool::setMaxPooled(size_t Max) {
  std::lock_guard<std::mutex> Lock(M);
  MaxPooled = Max;
}

ArenaPool &ArenaPool::global() {
  // Leaked singleton: arenas may be returned from static destructors, so
  // the pool must outlive every tenant.
  static ArenaPool *P = [] {
    auto *Pool = new ArenaPool();
    unsigned Max = 0;
    // Unset, empty, or malformed: the library stays lenient (aflc
    // validates the variable strictly and exits with usage instead).
    if (const char *Env = std::getenv("AFL_ARENA_POOL_MAX"))
      if (parseCliUnsigned(Env, Max))
        Pool->setMaxPooled(Max);
    return Pool;
  }();
  return *P;
}

namespace {

std::atomic<bool> &globalEnabledFlag() {
  static std::atomic<bool> Enabled = [] {
    const char *Env = std::getenv("AFL_ARENA_POOL");
    // Only the literal "0" disables; anything else (including malformed
    // values) leaves pooling on. The aflc driver rejects malformed values
    // with exit 2 before library code consults this.
    return !(Env && std::strcmp(Env, "0") == 0);
  }();
  return Enabled;
}

} // namespace

bool ArenaPool::globalEnabled() { return globalEnabledFlag().load(); }

void ArenaPool::setGlobalEnabled(bool Enabled) {
  globalEnabledFlag().store(Enabled);
}
