//===----------------------------------------------------------------------===//
///
/// \file
/// FlatSet<T>: a sorted, vector-backed set of trivially comparable values.
/// The analysis core keeps every set of dense ids (abstract closures,
/// region environments, context indices) in this representation: lookups
/// are a branch-light binary search, unions are linear merges over
/// contiguous memory, and iteration is always in ascending order — which
/// is what makes the emitted constraint systems deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_FLATSET_H
#define AFL_SUPPORT_FLATSET_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace afl {

template <typename T> class FlatSet {
public:
  using const_iterator = typename std::vector<T>::const_iterator;
  using value_type = T;

  static constexpr size_t npos = static_cast<size_t>(-1);

  FlatSet() = default;

  /// Wraps an already-sorted, duplicate-free vector without re-checking
  /// in release builds.
  static FlatSet fromSorted(std::vector<T> Sorted) {
    assert(std::is_sorted(Sorted.begin(), Sorted.end()) &&
           std::adjacent_find(Sorted.begin(), Sorted.end()) == Sorted.end() &&
           "fromSorted requires a strictly ascending vector");
    FlatSet S;
    S.V = std::move(Sorted);
    return S;
  }

  const_iterator begin() const { return V.begin(); }
  const_iterator end() const { return V.end(); }
  size_t size() const { return V.size(); }
  bool empty() const { return V.empty(); }
  void clear() { V.clear(); }
  void reserve(size_t N) { V.reserve(N); }
  const T &operator[](size_t I) const { return V[I]; }
  const std::vector<T> &raw() const { return V; }

  /// Inserts \p X; returns (position, inserted). The position stays valid
  /// for parallel-array bookkeeping until the next mutation.
  std::pair<size_t, bool> insertPos(const T &X) {
    auto It = std::lower_bound(V.begin(), V.end(), X);
    size_t Pos = static_cast<size_t>(It - V.begin());
    if (It != V.end() && *It == X)
      return {Pos, false};
    V.insert(It, X);
    return {Pos, true};
  }

  /// Inserts \p X; true if it was not present.
  bool insert(const T &X) { return insertPos(X).second; }

  bool contains(const T &X) const { return indexOf(X) != npos; }
  size_t count(const T &X) const { return contains(X) ? 1 : 0; }

  /// Index of \p X, or npos.
  size_t indexOf(const T &X) const {
    auto It = std::lower_bound(V.begin(), V.end(), X);
    if (It != V.end() && *It == X)
      return static_cast<size_t>(It - V.begin());
    return npos;
  }

  /// Set union in place; true if this set grew. Linear two-pointer merge.
  bool unionWith(const FlatSet &O) {
    if (O.V.empty())
      return false;
    if (V.empty()) {
      V = O.V;
      return true;
    }
    // Fast path: all new elements beyond our current maximum.
    if (O.V.front() > V.back()) {
      V.insert(V.end(), O.V.begin(), O.V.end());
      return true;
    }
    std::vector<T> Merged;
    Merged.reserve(V.size() + O.V.size());
    std::set_union(V.begin(), V.end(), O.V.begin(), O.V.end(),
                   std::back_inserter(Merged));
    if (Merged.size() == V.size())
      return false; // O ⊆ this
    V = std::move(Merged);
    return true;
  }

  bool operator==(const FlatSet &O) const { return V == O.V; }
  bool operator!=(const FlatSet &O) const { return V != O.V; }
  bool operator<(const FlatSet &O) const { return V < O.V; }

private:
  std::vector<T> V;
};

} // namespace afl

#endif // AFL_SUPPORT_FLATSET_H
