//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal JSON reader, the counterpart of the writer in
/// support/Metrics.h. The analysis server (src/driver/Server.cpp) parses
/// one request object per input line; nothing here allocates a DOM larger
/// than the request. No third-party dependencies, no exceptions: parse
/// errors are reported through an out-parameter and malformed input can
/// never crash the server (docs/SERVER.md failure semantics).
///
/// Numbers are kept in both integer and double form: protocol fields are
/// small integers (document ids, byte offsets) read through asInt(), and
/// any JSON number round-trips through asDouble().
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_JSON_H
#define AFL_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace afl {
namespace json {

/// One parsed JSON value. Object member order is preserved (first match
/// wins on duplicate keys, like every mainstream reader).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Boolean payload (false unless isBool()).
  bool asBool() const { return K == Kind::Bool && B; }
  /// Integer payload; \p Default unless this is a number that was written
  /// without a fraction or exponent and fits an int64.
  int64_t asInt(int64_t Default = 0) const {
    return K == Kind::Number && IsInt ? Int : Default;
  }
  bool isInt() const { return K == Kind::Number && IsInt; }
  /// Numeric payload (0.0 unless isNumber()).
  double asDouble() const { return K == Kind::Number ? Num : 0.0; }
  /// String payload ("" unless isString()).
  const std::string &asString() const { return Str; }

  const std::vector<Value> &items() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

  /// First member named \p Key, or nullptr (also when not an object).
  const Value *find(std::string_view Key) const {
    for (const auto &[K2, V] : Obj)
      if (K2 == Key)
        return &V;
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Construction (used by the parser; callers normally only read).
  //===------------------------------------------------------------------===//
  static Value null() { return Value(); }
  static Value boolean(bool V) {
    Value X;
    X.K = Kind::Bool;
    X.B = V;
    return X;
  }
  static Value number(double V) {
    Value X;
    X.K = Kind::Number;
    X.Num = V;
    return X;
  }
  static Value integer(int64_t V) {
    Value X;
    X.K = Kind::Number;
    X.Num = static_cast<double>(V);
    X.Int = V;
    X.IsInt = true;
    return X;
  }
  static Value string(std::string V) {
    Value X;
    X.K = Kind::String;
    X.Str = std::move(V);
    return X;
  }
  static Value array() {
    Value X;
    X.K = Kind::Array;
    return X;
  }
  static Value object() {
    Value X;
    X.K = Kind::Object;
    return X;
  }
  std::vector<Value> &itemsMut() { return Arr; }
  std::vector<std::pair<std::string, Value>> &membersMut() { return Obj; }

private:
  Kind K = Kind::Null;
  bool B = false;
  bool IsInt = false;
  double Num = 0.0;
  int64_t Int = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses \p Text as exactly one JSON value (leading/trailing whitespace
/// allowed, trailing garbage is an error). Returns false and fills
/// \p Error on malformed input; \p Out is unspecified then. Nesting depth
/// is capped so adversarial input cannot overflow the stack.
bool parseJson(std::string_view Text, Value &Out, std::string &Error);

} // namespace json
} // namespace afl

#endif // AFL_SUPPORT_JSON_H
