//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine: phases report errors/warnings with source
/// locations; callers inspect the collected list. Library code never prints
/// directly — tools decide how to render diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_DIAGNOSTICS_H
#define AFL_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace afl {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "line:col: error: message".
  std::string str() const;
};

/// Collects diagnostics across compilation phases.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned numErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace afl

#endif // AFL_SUPPORT_DIAGNOSTICS_H
