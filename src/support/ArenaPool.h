//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide pool of recycled bump-pointer arenas.
///
/// Batch runs and server sessions construct an AST context, a region
/// program, and an interner per item/request, each backed by an arena that
/// would otherwise hit the system allocator for every slab. The pool keeps
/// reset arenas in power-of-two size classes (keyed by bytes reserved, like
/// the VM's region buffer pool) so a new tenant checks out the memory of a
/// previous one instead of mapping fresh pages.
///
/// Pooling is on by default and can be disabled with the environment
/// variable \c AFL_ARENA_POOL=0 (the library treats any other value as
/// enabled; the \c aflc driver validates strictly). The retention cap is
/// tunable via \c AFL_ARENA_POOL_MAX.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SUPPORT_ARENAPOOL_H
#define AFL_SUPPORT_ARENAPOOL_H

#include "support/Arena.h"

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace afl {

/// Thread-safe checkout/return pool of reset arenas.
class ArenaPool {
public:
  /// Snapshot of pool activity, exported under the metrics "memory/" scope.
  struct Stats {
    size_t Checkouts = 0; ///< Total acquire() calls.
    size_t Hits = 0;      ///< Checkouts served from the pool.
    size_t Misses = 0;    ///< Checkouts that built a fresh arena.
    size_t Returns = 0;   ///< Arenas returned via release().
    size_t Discarded = 0; ///< Returns dropped because the pool was full.
    size_t Pooled = 0;    ///< Arenas currently held.
    size_t RetainedBytes = 0; ///< Bytes reserved across held arenas.
  };

  ArenaPool() = default;
  explicit ArenaPool(size_t MaxPooled) : MaxPooled(MaxPooled) {}
  ArenaPool(const ArenaPool &) = delete;
  ArenaPool &operator=(const ArenaPool &) = delete;

  /// Checks out an arena, preferring the largest pooled one so big
  /// workloads keep their big slabs. Falls back to a fresh arena.
  Arena acquire();

  /// Resets \p A (retaining its largest slab) and returns it to the pool;
  /// drops it on the floor if the pool is at capacity.
  void release(Arena &&A);

  /// Drops every pooled arena. Mainly for tests and shutdown hygiene.
  void clear();

  Stats stats() const;

  size_t maxPooled() const;
  void setMaxPooled(size_t Max);

  /// The process-wide pool leased by PooledArena.
  static ArenaPool &global();

  /// Whether PooledArena uses the global pool. Initialized leniently from
  /// $AFL_ARENA_POOL (only the literal "0" disables; the CLI layer rejects
  /// malformed values before this is consulted).
  static bool globalEnabled();
  static void setGlobalEnabled(bool Enabled);

private:
  // Size classes keyed by floor(log2(bytesReserved)), clamped into
  // [MinClass, NumClasses): class 0 holds everything below 64 KiB (one
  // default slab), the last class everything >= 2^(MinClass+NumClasses-1).
  static constexpr size_t NumClasses = 16;
  static constexpr size_t MinClassLog2 = 16; // 64 KiB = default slab size

  static size_t sizeClass(size_t Bytes);

  mutable std::mutex M;
  std::vector<Arena> Classes[NumClasses];
  size_t MaxPooled = 32;
  size_t NumPooled = 0;
  Stats S;
};

/// RAII lease of an arena from the global pool. Construction checks one
/// out (or builds a private arena when pooling is disabled); destruction
/// returns it. Movable so arena-owning containers (RegionProgram) keep
/// their move semantics.
class PooledArena {
public:
  PooledArena()
      : Lease(ArenaPool::globalEnabled()),
        A(Lease ? ArenaPool::global().acquire() : Arena()) {}

  PooledArena(PooledArena &&Other) noexcept
      : Lease(Other.Lease), A(std::move(Other.A)) {
    Other.Lease = false;
  }
  PooledArena &operator=(PooledArena &&Other) noexcept {
    if (this != &Other) {
      surrender();
      Lease = Other.Lease;
      A = std::move(Other.A);
      Other.Lease = false;
    }
    return *this;
  }
  PooledArena(const PooledArena &) = delete;
  PooledArena &operator=(const PooledArena &) = delete;

  ~PooledArena() { surrender(); }

  Arena &arena() { return A; }
  const Arena &arena() const { return A; }

  void *allocate(size_t Size, size_t Align) { return A.allocate(Size, Align); }
  template <typename T, typename... Args> T *create(Args &&...ArgValues) {
    return A.create<T>(std::forward<Args>(ArgValues)...);
  }

private:
  void surrender() {
    if (Lease)
      ArenaPool::global().release(std::move(A));
    Lease = false;
  }

  bool Lease;
  Arena A;
};

} // namespace afl

#endif // AFL_SUPPORT_ARENAPOOL_H
