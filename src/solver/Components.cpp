#include "solver/Components.h"

#include <algorithm>

using namespace afl;
using namespace afl::solver;
using namespace afl::constraints;

namespace {

/// Plain union-find (no domain bookkeeping — the simplifier already did
/// that part).
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N), Rank(N, 0) {
    for (uint32_t I = 0; I != N; ++I)
      Parent[I] = I;
  }
  uint32_t find(uint32_t V) {
    while (Parent[V] != V) {
      Parent[V] = Parent[Parent[V]];
      V = Parent[V];
    }
    return V;
  }
  void merge(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    if (Rank[A] == Rank[B])
      ++Rank[A];
    Parent[B] = A;
  }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace

ComponentSplit solver::splitComponents(const ConstraintSystem &Sys) {
  ComponentSplit Out;
  const size_t NS = Sys.numStateVars();
  const size_t NB = Sys.numBoolVars();

  // States are [0, NS); booleans live at NS + b.
  UnionFind UF(NS + NB);
  for (const Constraint &C : Sys.Cons) {
    UF.merge(C.S1, C.S2);
    if (C.K != Constraint::Kind::Eq)
      UF.merge(C.S1, static_cast<uint32_t>(NS) + C.B);
  }

  // Only variables that occur in constraints form components; number the
  // components in ascending order of their smallest member so the split
  // is deterministic.
  constexpr uint32_t None = ~0u;
  std::vector<uint32_t> CompOf(NS + NB, None);
  auto CompFor = [&](uint32_t V) -> uint32_t {
    uint32_t Root = UF.find(V);
    if (CompOf[Root] == None) {
      CompOf[Root] = static_cast<uint32_t>(Out.Comps.size());
      Out.Comps.emplace_back();
      // Components are solved directly, never re-sharded.
      Out.Comps.back().Sys.disableConnectivityTracking();
    }
    return CompOf[Root];
  };
  std::vector<bool> Occurs(NS + NB, false);
  for (const Constraint &C : Sys.Cons) {
    Occurs[C.S1] = Occurs[C.S2] = true;
    if (C.K != Constraint::Kind::Eq)
      Occurs[NS + C.B] = true;
  }

  // Local ids ascend in global-id order: the per-component solver's
  // default-false boolean sweep then visits booleans in the same
  // relative order as the monolithic solver's.
  std::vector<uint32_t> LocalId(NS + NB, None);
  for (uint32_t V = 0; V != NS; ++V) {
    if (!Occurs[V])
      continue;
    Component &Comp = Out.Comps[CompFor(V)];
    LocalId[V] = Comp.Sys.newState(Sys.StateDom[V]);
    Comp.StateGlobal.push_back(V);
  }
  for (uint32_t B = 0; B != NB; ++B) {
    if (!Occurs[NS + B])
      continue;
    Component &Comp = Out.Comps[CompFor(static_cast<uint32_t>(NS) + B)];
    LocalId[NS + B] = Comp.Sys.newBool(Sys.BoolDom.get(B));
    Comp.BoolGlobal.push_back(B);
  }

  // Constraints keep their relative order within each component.
  for (const Constraint &C : Sys.Cons) {
    Component &Comp = Out.Comps[CompOf[UF.find(C.S1)]];
    uint32_t L1 = LocalId[C.S1], L2 = LocalId[C.S2];
    switch (C.K) {
    case Constraint::Kind::Eq:
      Comp.Sys.addEq(L1, L2);
      break;
    case Constraint::Kind::AllocTriple:
      Comp.Sys.addAllocTriple(L1, LocalId[NS + C.B], L2);
      break;
    case Constraint::Kind::DeallocTriple:
      Comp.Sys.addDeallocTriple(L1, LocalId[NS + C.B], L2);
      break;
    }
  }

  for (const Component &Comp : Out.Comps)
    Out.LargestConstraints =
        std::max(Out.LargestConstraints, Comp.Sys.numConstraints());
  return Out;
}

ShardLocalIds solver::buildShardLocalIds(const ConstraintSystem &Sys) {
  ShardLocalIds Ids;
  Ids.State.assign(Sys.numStateVars(), ~0u);
  Ids.Bool.assign(Sys.numBoolVars(), ~0u);
  const size_t NumShards = Sys.numShards();
  for (uint32_t K = 0; K != NumShards; ++K) {
    const auto States = Sys.shardStates(K);
    uint32_t L = 0;
    for (uint32_t S : States)
      Ids.State[S] = L++;
    Ids.NumShardedStates += States.size();
    const auto Bools = Sys.shardBools(K);
    L = 0;
    for (uint32_t B : Bools)
      Ids.Bool[B] = L++;
    Ids.NumShardedBools += Bools.size();
  }
  return Ids;
}

Component solver::materializeShard(const ConstraintSystem &Sys, uint32_t K,
                                   const ShardLocalIds &Ids) {
  Component Comp;
  Comp.Sys.disableConnectivityTracking();
  for (uint32_t S : Sys.shardStates(K)) {
    Comp.Sys.newState(Sys.StateDom[S]);
    Comp.StateGlobal.push_back(S);
  }
  for (uint32_t B : Sys.shardBools(K)) {
    Comp.Sys.newBool(Sys.BoolDom.get(B));
    Comp.BoolGlobal.push_back(B);
  }
  // Shard constraint lists keep emission order, so the materialized
  // component's constraint order matches splitComponents' output.
  for (uint32_t CI : Sys.shardConstraints(K)) {
    const Constraint &C = Sys.Cons[CI];
    uint32_t L1 = Ids.State[C.S1], L2 = Ids.State[C.S2];
    switch (C.K) {
    case Constraint::Kind::Eq:
      Comp.Sys.addEq(L1, L2);
      break;
    case Constraint::Kind::AllocTriple:
      Comp.Sys.addAllocTriple(L1, Ids.Bool[C.B], L2);
      break;
    case Constraint::Kind::DeallocTriple:
      Comp.Sys.addDeallocTriple(L1, Ids.Bool[C.B], L2);
      break;
    }
  }
  return Comp;
}

ComponentCount solver::countComponents(const ConstraintSystem &Sys) {
  ComponentCount Out;
  const size_t NS = Sys.numStateVars();
  UnionFind UF(NS + Sys.numBoolVars());
  for (const Constraint &C : Sys.Cons) {
    UF.merge(C.S1, C.S2);
    if (C.K != Constraint::Kind::Eq)
      UF.merge(C.S1, static_cast<uint32_t>(NS) + C.B);
  }
  std::vector<uint32_t> ConsOf(NS, 0);
  for (const Constraint &C : Sys.Cons) {
    uint32_t Root = UF.find(C.S1);
    if (ConsOf[Root]++ == 0)
      ++Out.Components;
    Out.LargestConstraints =
        std::max<size_t>(Out.LargestConstraints, ConsOf[Root]);
  }
  return Out;
}
