//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint resolution (paper §4.3). The solver alternates between
/// proving facts (arc-consistency propagation over the {U,A,D} and
/// boolean domains) and making choices at *border* points:
///
///   * an allocation triple whose post-state is forced A while its
///     pre-state is still free → choose to allocate here (this is the
///     latest possible allocation point; U then propagates backwards);
///   * a deallocation triple whose pre-state is forced A while its
///     post-state is still free → choose to free here (earliest possible
///     free; D propagates forwards).
///
/// Choices are tentative: each is trailed, and a choice whose propagation
/// conflicts is reverted and pinned to false (chronological backtracking).
/// Remaining undetermined booleans default to false (no operation). The
/// conservative completion is a witness that the system is satisfiable.
///
/// By default the system is *preprocessed* first (src/solver/Simplify.h):
/// equalities are collapsed by union-find, forced triples eliminated,
/// duplicates dropped, and the constraint graph is decomposed into
/// connected components solved independently — in parallel above a size
/// threshold. When the input arrives pre-sharded (ConstraintSystem
/// finalizes its emission-time union-find into component shards), the
/// decomposition is free: each shard is simplified and solved on its
/// own, and the solver never runs component discovery. The solution is
/// then mapped back to the original variable space, so callers observe
/// the same domains the raw solver produces (docs/SOLVER.md).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SOLVER_SOLVER_H
#define AFL_SOLVER_SOLVER_H

#include "constraints/ConstraintSystem.h"
#include "solver/Simplify.h"

#include <string>
#include <unordered_map>

namespace afl {
namespace solver {

/// Default for SolveOptions::Jobs: the AFL_SOLVER_JOBS environment
/// variable when set (a process-level mode switch, mirroring
/// AFL_CLOSURE_JOBS — CI runs the whole suite under AFL_SOLVER_JOBS=4),
/// else 0 (all hardware threads, subject to the size gate).
unsigned defaultSolverJobs();

/// Knobs for the preprocessing layer; the defaults are what production
/// callers want, the ablation switches back them out (`aflc
/// --no-simplify`, `--solver-jobs N`, `--no-shards`).
struct SolveOptions {
  /// Run the simplification + component decomposition before solving.
  bool Simplify = true;
  /// Consume the emission-time shards of the input system (its
  /// connected components, finalized by the generator's union-find):
  /// simplify and solve per shard, skipping the solver's own
  /// component-discovery pass. When false, the pre-sharding monolithic
  /// path runs: one global simplify, then component discovery on the
  /// residual. Both produce bit-identical solutions (docs/SOLVER.md);
  /// the monolithic path is kept for differential testing and for
  /// callers that mutate a system after first solving it.
  bool UseShards = true;
  /// Worker threads for the per-component solve; 0 = all hardware
  /// threads, 1 = solve components sequentially.
  unsigned Jobs = defaultSolverJobs();
  /// Only solve components in parallel when the system has at least this
  /// many constraints (thread startup costs more than small solves). The
  /// monolithic path gates on the post-simplification residual size, the
  /// sharded path on the original size (it has no global residual).
  size_t ParallelMinConstraints = 2048;
  /// Run the core propagation loop over the bit-packed domain arrays
  /// (support/PackedDomains.h). When false, the solver unpacks the
  /// domains into the historical byte-per-variable arrays and runs the
  /// identical algorithm over them — the differential oracle and bench
  /// baseline (`aflc --no-packed-domains`). Both produce bit-identical
  /// solutions.
  bool PackedDomains = true;
};

struct SolveResult {
  bool Sat = false;
  /// Final domains (singletons for booleans when Sat), indexed by the
  /// *original* variable ids regardless of preprocessing. Bit-packed
  /// like the input system's domains (read with get()/operator[]); the
  /// byte-domain solver path packs its result on the way out, so the
  /// representation here is mode-independent.
  support::StateDomains StateDom;
  support::BoolDomains BoolDom;
  /// Statistics.
  uint64_t Propagations = 0;
  uint64_t Choices = 0;
  uint64_t Backtracks = 0;
  /// Preprocessing statistics (zeros when simplification is off).
  SimplifyStats Simplify;
  /// Wall-clock time spent inside solve(), in seconds.
  double Seconds = 0;

  bool boolValue(constraints::BoolVarId B) const {
    return BoolDom.get(B) == constraints::BTrue;
  }
};

/// Solves \p Sys. The input system is not modified.
SolveResult solve(const constraints::ConstraintSystem &Sys,
                  const SolveOptions &Options = SolveOptions());

/// Content-keyed cache of per-shard solutions, owned by long-lived
/// callers (one per open document in the analysis server). A shard's key
/// is the byte string of its shard-local constraint encoding plus the
/// initial domains of its member variables, so any shard whose emitted
/// content is unchanged across a re-analysis — regardless of how global
/// variable ids shifted — replays its solved domains without touching
/// the simplifier or the solver. Entries record unsatisfiable shards
/// too. The cache only grows; documents are the intended owner and a
/// document's shard population is bounded by its program size.
struct ShardSolutionCache {
  struct Entry {
    bool Sat = false;
    /// Solved domains in shard-local order (the order of
    /// ConstraintSystem::shardStates / shardBools).
    std::vector<uint8_t> StateDom;
    std::vector<uint8_t> BoolDom;
  };
  std::unordered_map<std::string, Entry> Entries;
  /// Cumulative counters (the server reports per-request deltas).
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Like solve() with Simplify + UseShards, but each shard is first looked
/// up in \p Cache and only cache misses are simplified and solved (new
/// solutions are inserted). Produces bit-identical domains to solve():
/// shards share no variables, so per-shard resolution is the exact
/// concatenation of the grouped path (docs/SOLVER.md). Work counters
/// (propagations, simplify stats) cover only the shards actually solved.
/// Falls back to plain solve() when Options disable Simplify or
/// UseShards (the cache is keyed on shard content, which only exists on
/// the sharded path).
SolveResult solveCached(const constraints::ConstraintSystem &Sys,
                        const SolveOptions &Options,
                        ShardSolutionCache &Cache);

} // namespace solver
} // namespace afl

#endif // AFL_SOLVER_SOLVER_H
