//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint resolution (paper §4.3). The solver alternates between
/// proving facts (arc-consistency propagation over the {U,A,D} and
/// boolean domains) and making choices at *border* points:
///
///   * an allocation triple whose post-state is forced A while its
///     pre-state is still free → choose to allocate here (this is the
///     latest possible allocation point; U then propagates backwards);
///   * a deallocation triple whose pre-state is forced A while its
///     post-state is still free → choose to free here (earliest possible
///     free; D propagates forwards).
///
/// Choices are tentative: each is trailed, and a choice whose propagation
/// conflicts is reverted and pinned to false (chronological backtracking).
/// Remaining undetermined booleans default to false (no operation). The
/// conservative completion is a witness that the system is satisfiable.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SOLVER_SOLVER_H
#define AFL_SOLVER_SOLVER_H

#include "constraints/ConstraintSystem.h"

namespace afl {
namespace solver {

struct SolveResult {
  bool Sat = false;
  /// Final domains (singletons for booleans when Sat).
  std::vector<uint8_t> StateDom;
  std::vector<uint8_t> BoolDom;
  /// Statistics.
  uint64_t Propagations = 0;
  uint64_t Choices = 0;
  uint64_t Backtracks = 0;
  /// Wall-clock time spent inside solve(), in seconds.
  double Seconds = 0;

  bool boolValue(constraints::BoolVarId B) const {
    return BoolDom[B] == constraints::BTrue;
  }
};

/// Solves \p Sys. The input system is not modified.
SolveResult solve(const constraints::ConstraintSystem &Sys);

} // namespace solver
} // namespace afl

#endif // AFL_SOLVER_SOLVER_H
