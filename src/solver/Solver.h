//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint resolution (paper §4.3). The solver alternates between
/// proving facts (arc-consistency propagation over the {U,A,D} and
/// boolean domains) and making choices at *border* points:
///
///   * an allocation triple whose post-state is forced A while its
///     pre-state is still free → choose to allocate here (this is the
///     latest possible allocation point; U then propagates backwards);
///   * a deallocation triple whose pre-state is forced A while its
///     post-state is still free → choose to free here (earliest possible
///     free; D propagates forwards).
///
/// Choices are tentative: each is trailed, and a choice whose propagation
/// conflicts is reverted and pinned to false (chronological backtracking).
/// Remaining undetermined booleans default to false (no operation). The
/// conservative completion is a witness that the system is satisfiable.
///
/// By default the system is *preprocessed* first (src/solver/Simplify.h):
/// equalities are collapsed by union-find, forced triples eliminated,
/// duplicates dropped, and the residual graph is decomposed into
/// connected components solved independently — in parallel above a size
/// threshold. The solution is then mapped back to the original variable
/// space, so callers observe the same domains the raw solver produces
/// (docs/SOLVER.md).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SOLVER_SOLVER_H
#define AFL_SOLVER_SOLVER_H

#include "constraints/ConstraintSystem.h"
#include "solver/Simplify.h"

namespace afl {
namespace solver {

/// Knobs for the preprocessing layer; the defaults are what production
/// callers want, the ablation switches back them out (`aflc
/// --no-simplify`, `--solver-jobs N`).
struct SolveOptions {
  /// Run the simplification + component decomposition before solving.
  bool Simplify = true;
  /// Worker threads for the per-component solve; 0 = all hardware
  /// threads, 1 = solve components sequentially.
  unsigned Jobs = 0;
  /// Only solve components in parallel when the residual system has at
  /// least this many constraints (thread startup costs more than small
  /// solves).
  size_t ParallelMinConstraints = 2048;
};

struct SolveResult {
  bool Sat = false;
  /// Final domains (singletons for booleans when Sat), indexed by the
  /// *original* variable ids regardless of preprocessing.
  std::vector<uint8_t> StateDom;
  std::vector<uint8_t> BoolDom;
  /// Statistics.
  uint64_t Propagations = 0;
  uint64_t Choices = 0;
  uint64_t Backtracks = 0;
  /// Preprocessing statistics (zeros when simplification is off).
  SimplifyStats Simplify;
  /// Wall-clock time spent inside solve(), in seconds.
  double Seconds = 0;

  bool boolValue(constraints::BoolVarId B) const {
    return BoolDom[B] == constraints::BTrue;
  }
};

/// Solves \p Sys. The input system is not modified.
SolveResult solve(const constraints::ConstraintSystem &Sys,
                  const SolveOptions &Options = SolveOptions());

} // namespace solver
} // namespace afl

#endif // AFL_SOLVER_SOLVER_H
