#include "solver/Simplify.h"

#include "solver/Components.h"

#include <algorithm>
#include <cassert>

using namespace afl;
using namespace afl::solver;
using namespace afl::constraints;

void SimplifyStats::accumulate(const SimplifyStats &Other) {
  StateVarsBefore += Other.StateVarsBefore;
  StateVarsAfter += Other.StateVarsAfter;
  ConstraintsBefore += Other.ConstraintsBefore;
  ConstraintsAfter += Other.ConstraintsAfter;
  EqRemoved += Other.EqRemoved;
  DupTriplesRemoved += Other.DupTriplesRemoved;
  ForcedTriplesRemoved += Other.ForcedTriplesRemoved;
  BoolsForced += Other.BoolsForced;
  Components += Other.Components;
  LargestComponent = std::max(LargestComponent, Other.LargestComponent);
  ThreadsUsed = std::max(ThreadsUsed, Other.ThreadsUsed);
  SimplifySeconds += Other.SimplifySeconds;
  ComponentSeconds += Other.ComponentSeconds;
  ReconstructSeconds += Other.ReconstructSeconds;
}

namespace {

/// The simplification pipeline over an abstract constraint stream. The
/// caller describes a system of \p NS state variables (initial domains
/// \p Dom) and \p NB booleans whose \p NumCons constraints are produced
/// — already over local ids, in emission order — by \p ForEach(Visit).
/// Shared by simplify() (the stream is Sys.Cons verbatim) and
/// simplifyShard() (the stream is one shard's constraints, translated to
/// shard-local ids on the fly), so both run the identical algorithm and
/// produce bit-identical residuals for the same stream.
template <typename ForEachCons>
SimplifiedSystem simplifyCore(size_t NS, size_t NB, size_t NumCons,
                              support::StateDomains Dom,
                              ForEachCons &&ForEach) {
  SimplifiedSystem Out;
  Out.Stats.StateVarsBefore = NS;
  Out.Stats.ConstraintsBefore = NumCons;
  // The residual is solver-internal: solved directly, never sharded, so
  // emission-time connectivity tracking would be pure overhead.
  Out.Residual.disableConnectivityTracking();

  // An empty *initial* domain is a conflict even if the variable occurs
  // in no constraint (restrictState can zero a domain the propagator
  // never visits). Word-at-a-time over the packed lanes.
  if (Dom.hasZeroEntry()) {
    Out.Conflict = true;
    return Out;
  }

  // Union-find over the state variables. Each root carries the class
  // domain (the intersection of the members' initial domains) and, in
  // phase 2, the list of triples touching the class.
  std::vector<uint32_t> Parent(NS);
  for (uint32_t I = 0; I != Parent.size(); ++I)
    Parent[I] = I;
  auto Find = [&Parent](uint32_t V) {
    while (Parent[V] != V) {
      Parent[V] = Parent[Parent[V]];
      V = Parent[V];
    }
    return V;
  };

  // Phase 1: collapse every Eq constraint; collect the triples.
  std::vector<Constraint> T;
  T.reserve(NumCons);
  bool EarlyConflict = false;
  ForEach([&](const Constraint &C) {
    if (EarlyConflict)
      return;
    if (C.K != Constraint::Kind::Eq) {
      T.push_back(C);
      return;
    }
    ++Out.Stats.EqRemoved;
    uint32_t A = Find(C.S1), B = Find(C.S2);
    if (A == B)
      return;
    Parent[B] = A;
    uint8_t Merged = Dom.get(A) & Dom.get(B);
    Dom.set(A, Merged);
    if (Merged == 0)
      EarlyConflict = true;
  });
  if (EarlyConflict) {
    Out.Conflict = true;
    return Out;
  }

  // Phase 2: apply forced booleans to a fixpoint, worklist-driven. A
  // triple is (re)examined when one of its endpoint classes merges or
  // shrinks, or its boolean is forced. Classes keep their incident
  // triple lists — array-backed linked lists over a fixed node pool, so
  // a class merge concatenates in O(1) with no allocation — merged
  // small-into-large, making the whole phase near-linear. A
  // forced-false triple is an equality (fed back into the union-find,
  // so collapses cascade).
  const size_t NT = T.size();
  // Byte flags, not vector<bool>: both are touched per worklist pop.
  std::vector<uint8_t> Alive(NT, 1), InQ(NT, 0);
  std::vector<uint32_t> Queue;
  Queue.reserve(NT);
  size_t QHead = 0;
  auto Enqueue = [&](uint32_t TI) {
    if (Alive[TI] && !InQ[TI]) {
      InQ[TI] = 1;
      Queue.push_back(TI);
    }
  };

  constexpr uint32_t None = ~0u;

  // Boolean -> incident triples, CSR-shaped in ascending triple order
  // (the order the occurrence index would report).
  std::vector<uint32_t> BoolStart(NB + 1, 0);
  for (const Constraint &C : T)
    ++BoolStart[C.B + 1];
  for (size_t I = 1; I < BoolStart.size(); ++I)
    BoolStart[I] += BoolStart[I - 1];
  std::vector<uint32_t> BoolTriples(NT);
  {
    std::vector<uint32_t> Cur(BoolStart.begin(), BoolStart.end() - 1);
    for (uint32_t TI = 0; TI != NT; ++TI)
      BoolTriples[Cur[T[TI].B]++] = TI;
  }

  // Per-root incident triple lists (post-Eq roots): Head/Tail/Count per
  // root, nodes preallocated (at most two incidences per triple).
  std::vector<uint32_t> Head(NS, None);
  std::vector<uint32_t> Tail(NS, None);
  std::vector<uint32_t> Count(NS, 0);
  std::vector<uint32_t> NodeTriple, NodeNext;
  NodeTriple.reserve(2 * NT);
  NodeNext.reserve(2 * NT);
  auto AddIncidence = [&](uint32_t R, uint32_t TI) {
    uint32_t N = static_cast<uint32_t>(NodeTriple.size());
    NodeTriple.push_back(TI);
    NodeNext.push_back(Head[R]);
    Head[R] = N;
    if (Tail[R] == None)
      Tail[R] = N;
    ++Count[R];
  };
  for (uint32_t TI = 0; TI != NT; ++TI) {
    const Constraint &C = T[TI];
    uint32_t R1 = Find(C.S1), R2 = Find(C.S2);
    AddIncidence(R1, TI);
    if (R2 != R1)
      AddIncidence(R2, TI);
  }
  auto EnqueueClass = [&](uint32_t R) {
    for (uint32_t N = Head[R]; N != None; N = NodeNext[N])
      Enqueue(NodeTriple[N]);
  };

  bool Conflict = false;
  // Merges B's class into A's (or vice versa — the larger incident list
  // wins). Enqueues the absorbed side's triples (their root identity
  // changed) and, when the surviving domain shrank, the surviving
  // side's too.
  auto Merge = [&](uint32_t A, uint32_t B) {
    A = Find(A);
    B = Find(B);
    if (A == B)
      return;
    if (Count[A] < Count[B])
      std::swap(A, B);
    Parent[B] = A;
    uint8_t NewDom = Dom.get(A) & Dom.get(B);
    if (NewDom != Dom.get(A))
      EnqueueClass(A);
    EnqueueClass(B);
    Dom.set(A, NewDom);
    if (NewDom == 0) {
      Conflict = true;
      return;
    }
    if (Head[B] != None) {
      if (Head[A] == None) {
        Head[A] = Head[B];
      } else {
        NodeNext[Tail[A]] = Head[B];
      }
      Tail[A] = Tail[B];
      Count[A] += Count[B];
      Head[B] = Tail[B] = None;
      Count[B] = 0;
    }
  };
  auto Restrict = [&](uint32_t R, uint8_t Mask) {
    R = Find(R);
    uint8_t NewDom = Dom.get(R) & Mask;
    if (NewDom == Dom.get(R))
      return;
    Dom.set(R, NewDom);
    if (NewDom == 0) {
      Conflict = true;
      return;
    }
    EnqueueClass(R);
  };

  support::BoolDomains BD(NB, BAny);
  auto ForceBool = [&](BoolVarId B, uint8_t Value) {
    assert(BD.get(B) == BAny);
    BD.set(B, Value);
    ++Out.Stats.BoolsForced;
    for (uint32_t I = BoolStart[B]; I != BoolStart[B + 1]; ++I)
      Enqueue(BoolTriples[I]);
  };

  for (uint32_t TI = 0; TI != NT; ++TI)
    Enqueue(TI);
  while (QHead != Queue.size() && !Conflict) {
    uint32_t TI = Queue[QHead++];
    InQ[TI] = false;
    if (!Alive[TI])
      continue;
    const Constraint &C = T[TI];
    const bool IsAlloc = C.K == Constraint::Kind::AllocTriple;
    const uint8_t From = IsAlloc ? StU : StA;
    const uint8_t To = IsAlloc ? StA : StD;
    uint32_t R1 = Find(C.S1), R2 = Find(C.S2);
    if (BD.get(C.B) == BTrue) {
      // Checked before the R1 == R2 case: a true boolean on a
      // same-representative triple empties the domain below (From and
      // To are disjoint), which is the correct conflict.
      Alive[TI] = false;
      ++Out.Stats.ForcedTriplesRemoved;
      Restrict(R1, From);
      if (!Conflict)
        Restrict(R2, To);
      continue;
    }
    if (BD.get(C.B) == BFalse || R1 == R2) {
      // ¬b → s1 = s2. With s1 and s2 already one variable the
      // transition is impossible, so b is false either way.
      Alive[TI] = false;
      ++Out.Stats.ForcedTriplesRemoved;
      if (BD.get(C.B) == BAny)
        ForceBool(C.B, BFalse);
      Merge(R1, R2);
      continue;
    }
    uint8_t D1 = Dom.get(R1), D2 = Dom.get(R2);
    if (!(D1 & From) || !(D2 & To)) {
      // The transition states are unreachable: b must be false.
      Alive[TI] = false;
      ++Out.Stats.ForcedTriplesRemoved;
      ForceBool(C.B, BFalse);
      Merge(R1, R2);
      continue;
    }
    if ((D1 & D2) == 0) {
      // s1 = s2 is impossible: b must be true.
      Alive[TI] = false;
      ++Out.Stats.ForcedTriplesRemoved;
      ForceBool(C.B, BTrue);
      Restrict(R1, From);
      if (!Conflict)
        Restrict(R2, To);
      continue;
    }
  }
  if (Conflict) {
    Out.Conflict = true;
    return Out;
  }

  // Phase 3: number the representatives (ascending order of the
  // smallest class member, so relative variable order is preserved) and
  // record the original -> representative mapping.
  std::vector<uint32_t> RepId(NS, None);
  Out.StateRep.resize(NS);
  ConstraintSystem &Res = Out.Residual;
  for (uint32_t V = 0; V != NS; ++V) {
    uint32_t Root = Find(V);
    if (RepId[Root] == None)
      RepId[Root] = Res.newState(Dom.get(Root));
    Out.StateRep[V] = RepId[Root];
  }

  // Boolean ids survive unchanged; forced values become singleton
  // initial domains.
  Res.BoolDom = std::move(BD);

  // Phase 4: emit the surviving triples, deduplicating identical ones
  // with a flat open-addressing table (keys are nonzero: at fixpoint no
  // live triple has equal representatives, so the zero key — equal
  // representatives 0, boolean 0, dealloc kind — cannot arise and
  // serves as the empty marker). The kept copy takes the *last*
  // occurrence's position: the solver's candidate stacks pop from the
  // back, so of two identical triples the later one is considered first
  // — preserving that position keeps the choice order (and therefore
  // the solution) bit-identical to the raw solver's.
  size_t TableCap = 16;
  while (TableCap < 2 * NT)
    TableCap <<= 1;
  std::vector<uint64_t> Table(TableCap, 0);
  auto InsertKey = [&](uint64_t Key) {
    const size_t Mask = TableCap - 1;
    size_t H = (Key * 0x9E3779B97F4A7C15ull >> 32) & Mask;
    for (;;) {
      uint64_t E = Table[H];
      if (E == 0) {
        Table[H] = Key;
        return true;
      }
      if (E == Key)
        return false;
      H = (H + 1) & Mask;
    }
  };
  std::vector<uint32_t> Kept;
  Kept.reserve(NT);
  for (size_t TI = NT; TI-- > 0;) {
    if (!Alive[TI])
      continue;
    const Constraint &C = T[TI];
    uint32_t R1 = Out.StateRep[C.S1];
    uint32_t R2 = Out.StateRep[C.S2];
    assert(R1 != R2 && "live triple with equal representatives");
    // Pack (kind, s1, s2, b): ids are dense and < 2^21 in any system
    // this repo generates.
    uint64_t Key = (static_cast<uint64_t>(C.K == Constraint::Kind::AllocTriple)
                    << 63) |
                   (static_cast<uint64_t>(R1) << 42) |
                   (static_cast<uint64_t>(R2) << 21) |
                   static_cast<uint64_t>(C.B);
    if (InsertKey(Key))
      Kept.push_back(static_cast<uint32_t>(TI));
    else
      ++Out.Stats.DupTriplesRemoved;
  }
  std::reverse(Kept.begin(), Kept.end());

  Res.Cons.reserve(Kept.size());
  for (uint32_t TI : Kept) {
    const Constraint &C = T[TI];
    if (C.K == Constraint::Kind::AllocTriple)
      Res.addAllocTriple(Out.StateRep[C.S1], C.B, Out.StateRep[C.S2]);
    else
      Res.addDeallocTriple(Out.StateRep[C.S1], C.B, Out.StateRep[C.S2]);
  }

  Out.Stats.StateVarsAfter = Res.numStateVars();
  Out.Stats.ConstraintsAfter = Res.numConstraints();
  return Out;
}

} // namespace

SimplifiedSystem solver::simplify(const ConstraintSystem &Sys) {
  return simplifyCore(Sys.numStateVars(), Sys.numBoolVars(),
                      Sys.numConstraints(), Sys.StateDom,
                      [&](auto &&Visit) {
                        for (const Constraint &C : Sys.Cons)
                          Visit(C);
                      });
}

SimplifiedSystem solver::simplifyShard(const ConstraintSystem &Sys, uint32_t K,
                                       const ShardLocalIds &Ids) {
  return simplifyShardRange(Sys, K, K + 1, Ids);
}

SimplifiedSystem solver::simplifyShardRange(const ConstraintSystem &Sys,
                                            uint32_t KBegin, uint32_t KEnd,
                                            const ShardLocalIds &Ids) {
  size_t NS = 0, NB = 0, NC = 0;
  for (uint32_t K = KBegin; K != KEnd; ++K) {
    NS += Sys.shardStates(K).size();
    NB += Sys.shardBools(K).size();
    NC += Sys.shardConstraints(K).size();
  }
  support::StateDomains Dom;
  Dom.reserve(NS);
  for (uint32_t K = KBegin; K != KEnd; ++K)
    for (uint32_t S : Sys.shardStates(K))
      Dom.push_back(Sys.StateDom.get(S));
  return simplifyCore(
      NS, NB, NC, std::move(Dom), [&](auto &&Visit) {
        uint32_t SOff = 0, BOff = 0;
        for (uint32_t K = KBegin; K != KEnd; ++K) {
          for (uint32_t CI : Sys.shardConstraints(K)) {
            Constraint C = Sys.Cons[CI];
            C.S1 = SOff + Ids.State[C.S1];
            C.S2 = SOff + Ids.State[C.S2];
            if (C.K != Constraint::Kind::Eq)
              C.B = BOff + Ids.Bool[C.B];
            Visit(C);
          }
          SOff += static_cast<uint32_t>(Sys.shardStates(K).size());
          BOff += static_cast<uint32_t>(Sys.shardBools(K).size());
        }
      });
}
