//===----------------------------------------------------------------------===//
///
/// \file
/// Solver preprocessing (constraint-graph simplification). The §4.3
/// solver treats every `Eq` constraint as a live arc that must be
/// re-propagated whenever either endpoint changes. Following the
/// inclusion-constraint simplification line of work (see PAPERS.md),
/// this pass shrinks the system *before* solving:
///
///   1. **Equality collapse** — union-find over the state variables
///      merges every `Eq`-connected class into one representative whose
///      initial domain is the intersection of the members' domains.
///      `Eq` constraints disappear from the solve entirely; an empty
///      intersection is an early conflict (unsatisfiable).
///   2. **Forced-boolean elimination** — a triple whose boolean value is
///      already determined by the initial representative domains is
///      applied and dropped: `b = false` turns the triple into an
///      equality (fed back into the union-find, so collapses cascade);
///      `b = true` restricts the endpoint domains to the transition
///      states. A triple whose endpoints share a representative forces
///      `b = false` (the U→A / A→D transition cannot happen on one
///      variable).
///   3. **Deduplication** — identical residual triples (same kind,
///      representatives and boolean) are kept once.
///
/// The **representative-mapping invariant**: at any propagation fixpoint
/// of the raw solver, all `Eq`-connected variables hold identical
/// domains, so mapping the representative's solved domain back over the
/// class reproduces the raw solver's answer (docs/SOLVER.md).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SOLVER_SIMPLIFY_H
#define AFL_SOLVER_SIMPLIFY_H

#include "constraints/ConstraintSystem.h"

namespace afl {
namespace solver {

/// Preprocessing statistics; flows into SolveResult / AflStats /
/// PipelineStats and the `--metrics` JSON (docs/OBSERVABILITY.md).
struct SimplifyStats {
  size_t StateVarsBefore = 0;
  size_t StateVarsAfter = 0;
  size_t ConstraintsBefore = 0;
  size_t ConstraintsAfter = 0;
  /// `Eq` constraints removed by the union-find collapse (all of them).
  size_t EqRemoved = 0;
  /// Identical residual triples dropped.
  size_t DupTriplesRemoved = 0;
  /// Triples dropped because their boolean was forced.
  size_t ForcedTriplesRemoved = 0;
  /// Boolean variables fixed during preprocessing.
  size_t BoolsForced = 0;
  /// Connected components of the residual graph (0 when empty).
  size_t Components = 0;
  /// Constraint count of the largest component.
  size_t LargestComponent = 0;
  /// Worker threads used for the per-component solve.
  size_t ThreadsUsed = 1;
  /// Per-phase wall-clock seconds.
  double SimplifySeconds = 0;
  double ComponentSeconds = 0;
  double ReconstructSeconds = 0;

  /// Pointwise sum (batch aggregation); LargestComponent takes the max.
  void accumulate(const SimplifyStats &Other);
};

/// The simplified system plus the mapping back to the original variable
/// space.
struct SimplifiedSystem {
  /// Residual system over representative state variables: no `Eq`
  /// constraints, no duplicates, no forced-boolean triples. Boolean
  /// variable ids are preserved (forced booleans appear with singleton
  /// domains and no occurrences).
  constraints::ConstraintSystem Residual;
  /// Original state variable -> representative id in `Residual`.
  std::vector<constraints::StateVarId> StateRep;
  /// True if preprocessing proved the system unsatisfiable (an empty
  /// domain intersection). `Residual` is left partially built.
  bool Conflict = false;
  SimplifyStats Stats;
};

/// Runs the preprocessing pass over \p Sys (which is not modified).
SimplifiedSystem simplify(const constraints::ConstraintSystem &Sys);

struct ShardLocalIds;

/// Runs the identical pass over shard \p K of a pre-sharded system,
/// consuming the CSR shard index directly — no materialized
/// per-component copy. Variables are shard-local (\p Ids, from
/// buildShardLocalIds): StateRep indexes shard-local state ids, and
/// residual boolean ids are the shard-local ones. Produces the residual
/// that simplify() over materializeShard(Sys, K, Ids).Sys would,
/// bit-identically. Only shard-local initial domains are checked for
/// emptiness; a caller that wants the whole-system conflict check (a
/// zeroed domain outside any shard) performs it separately, as
/// solver::solve does.
SimplifiedSystem simplifyShard(const constraints::ConstraintSystem &Sys,
                               uint32_t K, const ShardLocalIds &Ids);

/// simplifyShard generalized to the contiguous shard range
/// [\p KBegin, \p KEnd), treated as one disjoint union: group-local ids
/// concatenate the member shards' local id spaces in shard order (member
/// M's states start at the sum of the preceding members' state counts).
/// Because shards share no variables, the result is the exact
/// concatenation of the members' individual simplifications — grouping
/// exists purely to amortize per-call fixed costs over small shards.
SimplifiedSystem simplifyShardRange(const constraints::ConstraintSystem &Sys,
                                    uint32_t KBegin, uint32_t KEnd,
                                    const ShardLocalIds &Ids);

} // namespace solver
} // namespace afl

#endif // AFL_SOLVER_SIMPLIFY_H
