#include "solver/Solver.h"

#include "solver/Components.h"
#include "support/Metrics.h"
#include "support/PackedDomains.h"
#include "support/ThreadPool.h"

#include "support/CliParse.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdlib>

using namespace afl;
using namespace afl::solver;
using namespace afl::constraints;

namespace {

/// Byte-per-lane stand-in for support::PackedArray with the same lane
/// API: the historical domain representation, kept as the solver's
/// differential oracle and bench baseline
/// (SolveOptions::PackedDomains = false, `aflc --no-packed-domains`).
struct ByteLanes {
  uint8_t get(size_t I) const { return V[I]; }
  void set(size_t I, uint8_t Val) { V[I] = Val; }
  size_t size() const { return V.size(); }
  void assign(size_t N, uint8_t Val) { V.assign(N, Val); }
  bool hasZeroEntry() const {
    for (uint8_t D : V)
      if (D == 0)
        return true;
    return false;
  }
  std::vector<uint8_t> V;
};

template <unsigned Bits>
void initLanes(const support::PackedArray<Bits> &Src,
               support::PackedArray<Bits> &Dst) {
  Dst = Src;
}
template <unsigned Bits>
void initLanes(const support::PackedArray<Bits> &Src, ByteLanes &Dst) {
  Dst.V = Src.unpack();
}
template <unsigned Bits>
void exportLanes(support::PackedArray<Bits> &&Src,
                 support::PackedArray<Bits> &Dst) {
  Dst = std::move(Src);
}
template <unsigned Bits>
void exportLanes(ByteLanes &&Src, support::PackedArray<Bits> &Dst) {
  Dst = support::PackedArray<Bits>::pack(Src.V);
}

/// The propagation/choice/backtrack core, parameterized over the domain
/// and flag array representations: bit-packed (the production mode —
/// 3-bit state / 2-bit boolean / 1-bit flag lanes, word-at-a-time
/// construction and copies) or byte lanes (the oracle). The algorithm is
/// representation-blind: both instantiations execute the identical
/// sequence of domain reads and writes, which is why their solutions are
/// bit-identical (tests/SolverDifferentialTest.cpp).
template <typename SDomT, typename BDomT, typename FlagT> class SolverImpl {
public:
  explicit SolverImpl(const ConstraintSystem &Sys) : Sys(Sys) {
    initLanes(Sys.StateDom, SD);
    initLanes(Sys.BoolDom, BD);
    InQueue.assign(Sys.Cons.size(), 0);
    InAllocCand.assign(Sys.Cons.size(), 0);
    InDeallocCand.assign(Sys.Cons.size(), 0);
  }

  SolveResult run();

private:
  struct TrailEntry {
    bool IsBool;
    uint32_t Id;
    uint8_t Old;
  };
  struct Decision {
    BoolVarId B;
    size_t TrailSize;
    uint8_t FirstTry; // BTrue or BFalse
    bool Flipped;
  };

  /// One scan of the variable's occurrence list handles everything a
  /// domain change requires: re-queue the constraints for propagation
  /// (skipped on rollback, which restores domains without needing to
  /// re-propagate) and refresh the border-candidate stacks — any domain
  /// change can create new candidates among the constraints mentioning
  /// the variable. The in-stack flags keep each constraint queued at
  /// most once per structure — without them, propagation-heavy programs
  /// push the same index on every domain change (quadratic growth).
  void onChange(bool IsBool, uint32_t Id, bool Enqueue) {
    const auto Occ = IsBool ? Sys.boolOcc(Id) : Sys.stateOcc(Id);
    for (uint32_t CI : Occ) {
      if (Enqueue && !InQueue.get(CI)) {
        InQueue.set(CI, 1);
        Queue.push_back(CI);
      }
      const Constraint &C = Sys.Cons[CI];
      if (C.K == Constraint::Kind::AllocTriple) {
        if (!InAllocCand.get(CI)) {
          InAllocCand.set(CI, 1);
          AllocCand.push_back(CI);
        }
      } else if (C.K == Constraint::Kind::DeallocTriple) {
        if (!InDeallocCand.get(CI)) {
          InDeallocCand.set(CI, 1);
          DeallocCand.push_back(CI);
        }
      }
    }
    if (IsBool && Id < BoolPointer)
      BoolPointer = Id;
  }

  bool setState(StateVarId S, uint8_t Mask) {
    uint8_t Old = SD.get(S);
    uint8_t New = Old & Mask;
    if (New == Old)
      return true;
    if (New == 0) {
      Conflict = true;
      return false;
    }
    Trail.push_back({false, S, Old});
    SD.set(S, New);
    onChange(false, S, true);
    return true;
  }

  bool setBool(BoolVarId B, uint8_t Mask) {
    uint8_t Old = BD.get(B);
    uint8_t New = Old & Mask;
    if (New == Old)
      return true;
    if (New == 0) {
      Conflict = true;
      return false;
    }
    Trail.push_back({true, B, Old});
    BD.set(B, New);
    onChange(true, B, true);
    return true;
  }

  /// Propagates one triple with pre-state \p S1, post-state \p S2, boolean
  /// \p B; \p From/\p To are the transition states (U→A for allocation,
  /// A→D for deallocation). Note the sequencing in the ¬b arm: the
  /// second setState reads the domain the first one just narrowed.
  bool propagateTriple(StateVarId S1, BoolVarId B, StateVarId S2,
                       uint8_t From, uint8_t To) {
    uint8_t BV = BD.get(B);
    if (BV == BTrue)
      return setState(S1, From) && setState(S2, To);
    if (BV == BFalse)
      return setState(S1, SD.get(S2)) && setState(S2, SD.get(S1));
    // Boolean undetermined.
    uint8_t D1 = SD.get(S1), D2 = SD.get(S2);
    if (!(D1 & From) || !(D2 & To)) {
      if (!setBool(B, BFalse))
        return false;
      return setState(S1, SD.get(S2)) && setState(S2, SD.get(S1));
    }
    if ((D1 & D2) == 0) {
      if (!setBool(B, BTrue))
        return false;
      return setState(S1, From) && setState(S2, To);
    }
    // Both options open: prune to the union of the two scenarios.
    return setState(S1, static_cast<uint8_t>(D2 | From)) &&
           setState(S2, static_cast<uint8_t>(SD.get(S1) | To));
  }

  bool propagateOne(const Constraint &C) {
    switch (C.K) {
    case Constraint::Kind::Eq:
      return setState(C.S1, SD.get(C.S2)) && setState(C.S2, SD.get(C.S1));
    case Constraint::Kind::AllocTriple:
      return propagateTriple(C.S1, C.B, C.S2, StU, StA);
    case Constraint::Kind::DeallocTriple:
      return propagateTriple(C.S1, C.B, C.S2, StA, StD);
    }
    return true;
  }

  bool propagate() {
    while (QueueHead != Queue.size()) {
      uint32_t CI = Queue[QueueHead++];
      InQueue.set(CI, 0);
      ++Stats.Propagations;
      if (!propagateOne(Sys.Cons[CI])) {
        // Drain the queue; state is rolled back by the caller.
        for (size_t I = QueueHead; I != Queue.size(); ++I)
          InQueue.set(Queue[I], 0);
        Queue.clear();
        QueueHead = 0;
        return false;
      }
    }
    Queue.clear();
    QueueHead = 0;
    return true;
  }

  void rollbackTo(size_t TrailSize) {
    while (Trail.size() > TrailSize) {
      const TrailEntry &E = Trail.back();
      if (E.IsBool)
        BD.set(E.Id, E.Old);
      else
        SD.set(E.Id, E.Old);
      // Reverting re-creates whatever candidacy existed before.
      onChange(E.IsBool, E.Id, false);
      Trail.pop_back();
    }
    Conflict = false;
  }

  bool isAllocCandidate(const Constraint &C) const {
    return C.K == Constraint::Kind::AllocTriple && BD.get(C.B) == BAny &&
           SD.get(C.S2) == StA && (SD.get(C.S1) & StU) && SD.get(C.S1) != StU;
  }
  bool isDeallocCandidate(const Constraint &C) const {
    return C.K == Constraint::Kind::DeallocTriple && BD.get(C.B) == BAny &&
           SD.get(C.S1) == StA && (SD.get(C.S2) & StD) && SD.get(C.S2) != StD;
  }

  /// Finds the next choice per the paper's preference: a border allocation
  /// triple, else a border deallocation triple (both tracked
  /// incrementally), else any open boolean (defaulted to false = no
  /// operation).
  bool findChoice(BoolVarId &B, uint8_t &Value) {
    // Seed the candidate stacks once with a full scan.
    if (!Seeded) {
      Seeded = true;
      for (uint32_t CI = 0; CI != Sys.Cons.size(); ++CI) {
        const Constraint &C = Sys.Cons[CI];
        if (C.K == Constraint::Kind::AllocTriple) {
          InAllocCand.set(CI, 1);
          AllocCand.push_back(CI);
        } else if (C.K == Constraint::Kind::DeallocTriple) {
          InDeallocCand.set(CI, 1);
          DeallocCand.push_back(CI);
        }
      }
    }
    while (!AllocCand.empty()) {
      uint32_t CI = AllocCand.back();
      AllocCand.pop_back();
      InAllocCand.set(CI, 0);
      if (isAllocCandidate(Sys.Cons[CI])) {
        // The candidate is popped, not peeked: if the decision is later
        // rolled back, noteChange re-adds it for the variables on the
        // trail.
        B = Sys.Cons[CI].B;
        Value = BTrue;
        return true;
      }
    }
    while (!DeallocCand.empty()) {
      uint32_t CI = DeallocCand.back();
      DeallocCand.pop_back();
      InDeallocCand.set(CI, 0);
      if (isDeallocCandidate(Sys.Cons[CI])) {
        B = Sys.Cons[CI].B;
        Value = BTrue;
        return true;
      }
    }
    while (BoolPointer < BD.size() && BD.get(BoolPointer) != BAny)
      ++BoolPointer;
    if (BoolPointer < BD.size()) {
      B = static_cast<BoolVarId>(BoolPointer);
      Value = BFalse;
      return true;
    }
    return false;
  }

  const ConstraintSystem &Sys;
  SDomT SD;
  BDomT BD;
  // In-structure membership flags. The packed mode keeps these at one
  // bit per constraint (the memsets in the constructor are the point:
  // they run once per solved residual, and shard grouping constructs
  // thousands of solvers per batch); the byte mode keeps the historical
  // byte flags.
  FlagT InQueue;
  FlagT InAllocCand, InDeallocCand;
  /// Index-cursor worklist: pushes append, pops advance QueueHead; the
  /// storage is reclaimed whenever the queue drains.
  std::vector<uint32_t> Queue;
  size_t QueueHead = 0;
  std::vector<TrailEntry> Trail;
  std::vector<Decision> Decisions;
  std::vector<uint32_t> AllocCand, DeallocCand;
  size_t BoolPointer = 0;
  bool Seeded = false;
  bool Conflict = false;
  SolveResult Stats;
};

template <typename SDomT, typename BDomT, typename FlagT>
SolveResult SolverImpl<SDomT, BDomT, FlagT>::run() {
  // An empty initial domain is a conflict even when the variable occurs
  // in no constraint — propagation would never visit it, and a
  // completion extracted from such a "solution" would be unsound.
  if (SD.hasZeroEntry() || BD.hasZeroEntry()) {
    Stats.Sat = false;
    return Stats;
  }

  // Initial propagation: seed with every constraint.
  for (uint32_t CI = 0; CI != Sys.Cons.size(); ++CI) {
    InQueue.set(CI, 1);
    Queue.push_back(CI);
  }
  if (!propagate()) {
    Stats.Sat = false;
    return Stats;
  }

  for (;;) {
    BoolVarId B = 0;
    uint8_t Value = 0;
    if (!findChoice(B, Value)) {
      Stats.Sat = true;
      exportLanes(std::move(SD), Stats.StateDom);
      exportLanes(std::move(BD), Stats.BoolDom);
      return Stats;
    }
    ++Stats.Choices;
    Decisions.push_back({B, Trail.size(), Value, false});
    setBool(B, Value);
    while (!propagate()) {
      // Conflict: flip the most recent unflipped decision.
      for (;;) {
        if (Decisions.empty()) {
          Stats.Sat = false;
          return Stats;
        }
        Decision &D = Decisions.back();
        rollbackTo(D.TrailSize);
        if (!D.Flipped) {
          ++Stats.Backtracks;
          D.Flipped = true;
          uint8_t Other = D.FirstTry == BTrue ? BFalse : BTrue;
          setBool(D.B, Other);
          break;
        }
        Decisions.pop_back();
      }
    }
  }
}

/// Runs one core solve over \p Sys in the representation \p Packed
/// selects. Both modes return packed domains in the SolveResult.
SolveResult runCore(const ConstraintSystem &Sys, bool Packed) {
  if (Packed)
    return SolverImpl<support::StateDomains, support::BoolDomains,
                      support::PackedBits>(Sys)
        .run();
  return SolverImpl<ByteLanes, ByteLanes, ByteLanes>(Sys).run();
}

/// Solves the components of \p Split (each written to its slot of
/// \p Results) with \p Jobs workers. Returns false as soon as any
/// component is unsatisfiable (remaining components are skipped).
bool solveComponents(const ComponentSplit &Split,
                     std::vector<SolveResult> &Results, unsigned Jobs,
                     bool Packed) {
  Results.resize(Split.Comps.size());
  std::atomic<bool> Failed{false};

  // Shared-pool fan-out (support/ThreadPool.h): each item writes only
  // its own Results slot. Once any component is unsatisfiable the
  // remaining items early-out (their slots stay default, Sat == false,
  // and are never read — solve() returns Unsat immediately).
  ThreadPool::global().parallelFor(
      Split.Comps.size(), Jobs <= 1 ? 1 : Jobs, [&](size_t I) {
        if (Failed.load(std::memory_order_relaxed))
          return;
        Results[I] = runCore(Split.Comps[I].Sys, Packed);
        if (!Results[I].Sat)
          Failed.store(true, std::memory_order_relaxed);
      });
  return !Failed.load(std::memory_order_relaxed);
}

/// The pre-sharded path: the input's emission-time union-find already
/// partitioned variables and constraints into connected components, so
/// each shard is simplified and solved on its own — sequentially in
/// shard order or fanned out over the pool — with no global simplify, no
/// component-discovery pass, and no materialized per-shard system
/// (simplifyShard consumes the CSR shard index directly). Shards
/// partition the variable space, so workers scatter solved domains
/// directly into disjoint slots of the result arrays.
SolveResult solveSharded(const ConstraintSystem &Sys,
                         const SolveOptions &Options, Stopwatch &Watch) {
  SolveResult R;

  // An empty *initial* domain is a conflict even for a variable in no
  // constraint — it never reaches a shard, so check globally up front
  // (the same scan simplify() opens with on the monolithic path).
  if (Sys.StateDom.hasZeroEntry()) {
    R.Sat = false;
    R.Seconds = Watch.seconds();
    return R;
  }

  Stopwatch Phase;
  const size_t NumShards = Sys.numShards();
  ShardLocalIds Ids = buildShardLocalIds(Sys);
  R.Simplify.ComponentSeconds = Phase.seconds();

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareThreads();
  if (Sys.numConstraints() < Options.ParallelMinConstraints)
    Jobs = 1;

  // Group contiguous shards into work units of roughly GroupTarget
  // constraints: the per-unit fixed costs (simplification scratch,
  // solver construction, propagation seeding) dwarf the work of a
  // ten-constraint shard, and typical programs produce hundreds of tiny
  // shards. Because shards share no variables, simplifying and solving a
  // group is exactly the concatenation of its members' individual runs —
  // grouping changes nothing observable but the amortization. When
  // running parallel, the target shrinks so every worker gets several
  // units to balance.
  size_t GroupTarget = 8192;
  if (Jobs > 1)
    GroupTarget = std::min(
        GroupTarget,
        std::max<size_t>(1, Sys.numConstraints() / (size_t(Jobs) * 4)));
  std::vector<uint32_t> GroupStart;
  GroupStart.push_back(0);
  {
    size_t Acc = 0;
    for (uint32_t K = 0; K != NumShards; ++K) {
      size_t N = Sys.shardConstraints(K).size();
      if (Acc != 0 && Acc + N > GroupTarget) {
        GroupStart.push_back(K);
        Acc = 0;
      }
      Acc += N;
    }
  }
  if (NumShards != 0)
    GroupStart.push_back(static_cast<uint32_t>(NumShards));
  const size_t NumGroups = GroupStart.size() - 1;

  // Unsharded variables keep their initial domains (they are their own
  // representatives); every sharded slot is overwritten below. Word
  // copies: both sides are packed.
  R.StateDom = Sys.StateDom;
  R.BoolDom = Sys.BoolDom;

  struct GroupWork {
    SimplifyStats Stats;
    uint64_t Propagations = 0, Choices = 0, Backtracks = 0;
    /// The group's solved residual domains and its local->rep mapping,
    /// kept for the post-join scatter. With byte domains workers could
    /// scatter into the shared result directly (each wrote distinct
    /// bytes); packed lanes from different shards share words, so the
    /// scatter must not run concurrently — it is replayed sequentially
    /// once all groups finish, which also keeps it deterministic.
    SolveResult Solved;
    std::vector<StateVarId> StateRep;
  };
  std::vector<GroupWork> Work(NumGroups);
  std::atomic<bool> Failed{false};

  auto SolveOne = [&](size_t G) {
    if (Failed.load(std::memory_order_relaxed))
      return;
    const uint32_t KBegin = GroupStart[G], KEnd = GroupStart[G + 1];
    Stopwatch SW;
    SimplifiedSystem Simp = simplifyShardRange(Sys, KBegin, KEnd, Ids);
    Work[G].Stats = Simp.Stats;
    Work[G].Stats.SimplifySeconds = SW.seconds();
    if (Simp.Conflict) {
      Failed.store(true, std::memory_order_relaxed);
      return;
    }
    // LargestComponent carries the largest member shard's residual size
    // (the accumulation below takes the maximum, matching the monolithic
    // path's largest-residual-component statistic). Member reps occupy
    // contiguous ascending ranges bounded by the rep of each member's
    // first state variable, so a rep -> member table buckets the
    // residual constraints in one linear pass.
    {
      const uint32_t Members = KEnd - KBegin;
      std::vector<uint32_t> MemberOf(Simp.Residual.numStateVars());
      uint32_t Off = 0;
      for (uint32_t M = 0; M != Members; ++M) {
        uint32_t RepBegin = Simp.StateRep[Off];
        Off += static_cast<uint32_t>(Sys.shardStates(KBegin + M).size());
        uint32_t RepEnd = Off < Simp.StateRep.size()
                              ? Simp.StateRep[Off]
                              : static_cast<uint32_t>(MemberOf.size());
        for (uint32_t R = RepBegin; R != RepEnd; ++R)
          MemberOf[R] = M;
      }
      std::vector<uint32_t> PerMember(Members, 0);
      for (const Constraint &C : Simp.Residual.Cons)
        ++PerMember[MemberOf[C.S1]];
      for (uint32_t N : PerMember)
        Work[G].Stats.LargestComponent =
            std::max<size_t>(Work[G].Stats.LargestComponent, N);
    }
    SolveResult CR = runCore(Simp.Residual, Options.PackedDomains);
    Work[G].Propagations = CR.Propagations;
    Work[G].Choices = CR.Choices;
    Work[G].Backtracks = CR.Backtracks;
    if (!CR.Sat) {
      Failed.store(true, std::memory_order_relaxed);
      return;
    }
    Work[G].Solved = std::move(CR);
    Work[G].StateRep = std::move(Simp.StateRep);
  };

  if (Jobs <= 1) {
    for (size_t G = 0; G != NumGroups && !Failed.load(); ++G)
      SolveOne(G);
  } else {
    ThreadPool::global().parallelFor(NumGroups, Jobs, SolveOne);
  }

  for (const GroupWork &W : Work) {
    R.Simplify.accumulate(W.Stats);
    R.Propagations += W.Propagations;
    R.Choices += W.Choices;
    R.Backtracks += W.Backtracks;
  }
  // The per-group sums cover only sharded variables; unconstrained ones
  // are one singleton class each on the monolithic path.
  size_t Unsharded = Sys.numStateVars() - Ids.NumShardedStates;
  R.Simplify.StateVarsBefore += Unsharded;
  R.Simplify.StateVarsAfter += Unsharded;
  R.Simplify.Components = NumShards;
  R.Simplify.ThreadsUsed =
      Jobs <= 1 ? 1
                : std::min<size_t>(Jobs, std::max<size_t>(NumGroups, 1));

  if (Failed.load()) {
    R.Sat = false;
    R.StateDom.clear();
    R.BoolDom.clear();
    R.Seconds = Watch.seconds();
    return R;
  }

  // Scatter every group's solved domains back over the global lanes.
  // StateRep and the solved arrays index group-local variables; the
  // shard tables give the local -> global mapping, member by member.
  for (size_t G = 0; G != NumGroups; ++G) {
    const GroupWork &W = Work[G];
    uint32_t SOff = 0, BOff = 0;
    for (uint32_t K = GroupStart[G]; K != GroupStart[G + 1]; ++K) {
      const auto States = Sys.shardStates(K);
      for (size_t L = 0; L != States.size(); ++L)
        R.StateDom.set(States.begin()[L],
                       W.Solved.StateDom.get(W.StateRep[SOff + L]));
      SOff += static_cast<uint32_t>(States.size());
      const auto Bools = Sys.shardBools(K);
      for (size_t L = 0; L != Bools.size(); ++L)
        R.BoolDom.set(Bools.begin()[L], W.Solved.BoolDom.get(BOff + L));
      BOff += static_cast<uint32_t>(Bools.size());
    }
  }

  // Booleans in no shard (never in a triple) default to false — no
  // operation — exactly as the raw solver's final sweep leaves them.
  R.BoolDom.defaultAnyToFalse();
  R.Sat = true;
  R.Seconds = Watch.seconds();
  return R;
}

} // namespace

unsigned solver::defaultSolverJobs() {
  // Computed once: the env var is a process-level mode switch (CI runs
  // the whole suite under AFL_SOLVER_JOBS=4), not a per-run knob.
  static unsigned Cached = [] {
    const char *Env = std::getenv("AFL_SOLVER_JOBS");
    unsigned Jobs = 0;
    if (Env && !parseCliUnsigned(Env, Jobs))
      Jobs = 0;
    return Jobs;
  }();
  return Cached;
}

SolveResult solver::solve(const ConstraintSystem &Sys,
                          const SolveOptions &Options) {
  Stopwatch Watch;

  if (!Options.Simplify) {
    SolveResult R = runCore(Sys, Options.PackedDomains);
    R.Seconds = Watch.seconds();
    return R;
  }

  if (Options.UseShards)
    return solveSharded(Sys, Options, Watch);

  SolveResult R;
  Stopwatch Phase;
  SimplifiedSystem Simp = simplify(Sys);
  R.Simplify = Simp.Stats;
  R.Simplify.SimplifySeconds = Phase.seconds();
  if (Simp.Conflict) {
    R.Sat = false;
    R.Seconds = Watch.seconds();
    return R;
  }

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareThreads();
  if (Simp.Residual.numConstraints() < Options.ParallelMinConstraints)
    Jobs = 1;

  support::StateDomains RepDom;
  support::BoolDomains BoolOut;
  if (Jobs <= 1) {
    // Sequential: solve the residual monolithically. Materializing the
    // per-component systems only pays off when they run on separate
    // threads, so here the components are merely counted for the
    // statistics.
    Phase.reset();
    ComponentCount Counts = countComponents(Simp.Residual);
    R.Simplify.Components = Counts.Components;
    R.Simplify.LargestComponent = Counts.LargestConstraints;
    R.Simplify.ThreadsUsed = 1;
    R.Simplify.ComponentSeconds = Phase.seconds();

    SolveResult Mono = runCore(Simp.Residual, Options.PackedDomains);
    R.Propagations = Mono.Propagations;
    R.Choices = Mono.Choices;
    R.Backtracks = Mono.Backtracks;
    if (!Mono.Sat) {
      R.Sat = false;
      R.Seconds = Watch.seconds();
      return R;
    }
    Phase.reset();
    RepDom = std::move(Mono.StateDom);
    BoolOut = std::move(Mono.BoolDom);
  } else {
    Phase.reset();
    ComponentSplit Split = splitComponents(Simp.Residual);
    R.Simplify.Components = Split.Comps.size();
    R.Simplify.LargestComponent = Split.LargestConstraints;
    R.Simplify.ComponentSeconds = Phase.seconds();
    R.Simplify.ThreadsUsed =
        std::min<size_t>(Jobs, std::max<size_t>(Split.Comps.size(), 1));

    std::vector<SolveResult> Comp;
    bool Sat = solveComponents(Split, Comp, Jobs, Options.PackedDomains);
    for (const SolveResult &C : Comp) {
      R.Propagations += C.Propagations;
      R.Choices += C.Choices;
      R.Backtracks += C.Backtracks;
    }
    if (!Sat) {
      R.Sat = false;
      R.Seconds = Watch.seconds();
      return R;
    }
    // Booleans not touched by any component keep their forced value or
    // default to false below (no operation), exactly as the raw
    // solver's final boolean sweep would set them.
    Phase.reset();
    RepDom = Simp.Residual.StateDom;
    BoolOut = Simp.Residual.BoolDom;
    for (size_t I = 0; I != Split.Comps.size(); ++I) {
      const Component &CS = Split.Comps[I];
      const SolveResult &CR = Comp[I];
      for (size_t L = 0; L != CS.StateGlobal.size(); ++L)
        RepDom.set(CS.StateGlobal[L], CR.StateDom.get(L));
      for (size_t L = 0; L != CS.BoolGlobal.size(); ++L)
        BoolOut.set(CS.BoolGlobal[L], CR.BoolDom.get(L));
    }
  }

  // Reconstruction: map the representatives' solved domains back over
  // the original variable space.
  R.StateDom.clear();
  R.StateDom.reserve(Sys.numStateVars());
  for (size_t V = 0; V != Sys.numStateVars(); ++V)
    R.StateDom.push_back(RepDom.get(Simp.StateRep[V]));
  BoolOut.defaultAnyToFalse();
  R.BoolDom = std::move(BoolOut);
  R.Sat = true;
  R.Simplify.ReconstructSeconds = Phase.seconds();
  R.Seconds = Watch.seconds();
  return R;
}

SolveResult solver::solveCached(const ConstraintSystem &Sys,
                                const SolveOptions &Options,
                                ShardSolutionCache &Cache) {
  if (!Options.Simplify || !Options.UseShards)
    return solve(Sys, Options);

  Stopwatch Watch;
  SolveResult R;

  // Same up-front global check as solveSharded: an empty initial domain
  // is a conflict even for a variable in no constraint.
  if (Sys.StateDom.hasZeroEntry()) {
    R.Sat = false;
    R.Seconds = Watch.seconds();
    return R;
  }

  Stopwatch Phase;
  const size_t NumShards = Sys.numShards();
  ShardLocalIds Ids = buildShardLocalIds(Sys);
  R.Simplify.ComponentSeconds = Phase.seconds();

  // Unsharded variables keep their initial domains; sharded slots are
  // overwritten from cache entries or fresh solves below.
  R.StateDom = Sys.StateDom;
  R.BoolDom = Sys.BoolDom;

  bool Failed = false;
  std::string Key;
  auto Add32 = [&Key](uint32_t V) {
    Key.push_back(static_cast<char>(V));
    Key.push_back(static_cast<char>(V >> 8));
    Key.push_back(static_cast<char>(V >> 16));
    Key.push_back(static_cast<char>(V >> 24));
  };

  for (uint32_t K = 0; K != NumShards && !Failed; ++K) {
    // The key is the shard's content in shard-local coordinates: every
    // constraint's kind and local variable ids (in CSR order) plus the
    // initial domains of the member variables. Identical keys mean
    // identical subsystems up to the local->global renaming, and the
    // solved local domains depend on nothing else.
    Key.clear();
    for (uint32_t CI : Sys.shardConstraints(K)) {
      const Constraint &C = Sys.Cons[CI];
      Key.push_back(static_cast<char>(C.K));
      Add32(Ids.State[C.S1]);
      Add32(Ids.State[C.S2]);
      if (C.K != Constraint::Kind::Eq)
        Add32(Ids.Bool[C.B]);
    }
    const auto States = Sys.shardStates(K);
    for (uint32_t V : States)
      Key.push_back(static_cast<char>(Sys.StateDom.get(V)));
    const auto Bools = Sys.shardBools(K);
    for (uint32_t V : Bools)
      Key.push_back(static_cast<char>(Sys.BoolDom.get(V)));

    auto Scatter = [&](const ShardSolutionCache::Entry &E) {
      for (size_t L = 0; L != States.size(); ++L)
        R.StateDom.set(States.begin()[L], E.StateDom[L]);
      for (size_t L = 0; L != Bools.size(); ++L)
        R.BoolDom.set(Bools.begin()[L], E.BoolDom[L]);
    };

    auto It = Cache.Entries.find(Key);
    if (It != Cache.Entries.end()) {
      ++Cache.Hits;
      if (!It->second.Sat) {
        Failed = true;
        break;
      }
      Scatter(It->second);
      continue;
    }

    ++Cache.Misses;
    Stopwatch SW;
    SimplifiedSystem Simp = simplifyShard(Sys, K, Ids);
    Simp.Stats.SimplifySeconds = SW.seconds();
    R.Simplify.accumulate(Simp.Stats);
    R.Simplify.LargestComponent = std::max(
        R.Simplify.LargestComponent, Simp.Residual.Cons.size());
    ShardSolutionCache::Entry E;
    if (Simp.Conflict) {
      Cache.Entries.emplace(Key, std::move(E));
      Failed = true;
      break;
    }
    SolveResult CR = runCore(Simp.Residual, Options.PackedDomains);
    R.Propagations += CR.Propagations;
    R.Choices += CR.Choices;
    R.Backtracks += CR.Backtracks;
    if (!CR.Sat) {
      Cache.Entries.emplace(Key, std::move(E));
      Failed = true;
      break;
    }
    E.Sat = true;
    E.StateDom.resize(States.size());
    for (size_t L = 0; L != States.size(); ++L)
      E.StateDom[L] = CR.StateDom.get(Simp.StateRep[L]);
    E.BoolDom.resize(Bools.size());
    for (size_t L = 0; L != Bools.size(); ++L)
      E.BoolDom[L] = CR.BoolDom.get(L);
    Scatter(E);
    Cache.Entries.emplace(Key, std::move(E));
  }

  size_t Unsharded = Sys.numStateVars() - Ids.NumShardedStates;
  R.Simplify.StateVarsBefore += Unsharded;
  R.Simplify.StateVarsAfter += Unsharded;
  R.Simplify.Components = NumShards;
  R.Simplify.ThreadsUsed = 1;

  if (Failed) {
    R.Sat = false;
    R.StateDom.clear();
    R.BoolDom.clear();
    R.Seconds = Watch.seconds();
    return R;
  }

  // Booleans in no shard default to false, matching solveSharded.
  R.BoolDom.defaultAnyToFalse();
  R.Sat = true;
  R.Seconds = Watch.seconds();
  return R;
}
