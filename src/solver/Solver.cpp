#include "solver/Solver.h"

#include "support/Metrics.h"

#include <cassert>
#include <cstddef>
#include <deque>

using namespace afl;
using namespace afl::solver;
using namespace afl::constraints;

namespace {

class SolverImpl {
public:
  explicit SolverImpl(const ConstraintSystem &Sys)
      : Sys(Sys), SD(Sys.StateDom), BD(Sys.BoolDom),
        InQueue(Sys.Cons.size(), false) {}

  SolveResult run();

private:
  struct TrailEntry {
    bool IsBool;
    uint32_t Id;
    uint8_t Old;
  };
  struct Decision {
    BoolVarId B;
    size_t TrailSize;
    uint8_t FirstTry; // BTrue or BFalse
    bool Flipped;
  };

  void noteChange(bool IsBool, uint32_t Id) {
    // Any domain change can create new border candidates among the
    // constraints mentioning the variable.
    const auto &Occ = IsBool ? Sys.BoolOcc[Id] : Sys.StateOcc[Id];
    for (uint32_t CI : Occ) {
      const Constraint &C = Sys.Cons[CI];
      if (C.K == Constraint::Kind::AllocTriple)
        AllocCand.push_back(CI);
      else if (C.K == Constraint::Kind::DeallocTriple)
        DeallocCand.push_back(CI);
    }
    if (IsBool && Id < BoolPointer)
      BoolPointer = Id;
  }

  void enqueueOcc(bool IsBool, uint32_t Id) {
    const auto &Occ = IsBool ? Sys.BoolOcc[Id] : Sys.StateOcc[Id];
    for (uint32_t CI : Occ) {
      if (!InQueue[CI]) {
        InQueue[CI] = true;
        Queue.push_back(CI);
      }
    }
  }

  bool setState(StateVarId S, uint8_t Mask) {
    uint8_t New = SD[S] & Mask;
    if (New == SD[S])
      return true;
    if (New == 0) {
      Conflict = true;
      return false;
    }
    Trail.push_back({false, S, SD[S]});
    SD[S] = New;
    enqueueOcc(false, S);
    noteChange(false, S);
    return true;
  }

  bool setBool(BoolVarId B, uint8_t Mask) {
    uint8_t New = BD[B] & Mask;
    if (New == BD[B])
      return true;
    if (New == 0) {
      Conflict = true;
      return false;
    }
    Trail.push_back({true, B, BD[B]});
    BD[B] = New;
    enqueueOcc(true, B);
    noteChange(true, B);
    return true;
  }

  /// Propagates one triple with pre-state \p S1, post-state \p S2, boolean
  /// \p B; \p From/\p To are the transition states (U→A for allocation,
  /// A→D for deallocation).
  bool propagateTriple(StateVarId S1, BoolVarId B, StateVarId S2,
                       uint8_t From, uint8_t To) {
    if (BD[B] == BTrue)
      return setState(S1, From) && setState(S2, To);
    if (BD[B] == BFalse)
      return setState(S1, SD[S2]) && setState(S2, SD[S1]);
    // Boolean undetermined.
    if (!(SD[S1] & From) || !(SD[S2] & To)) {
      if (!setBool(B, BFalse))
        return false;
      return setState(S1, SD[S2]) && setState(S2, SD[S1]);
    }
    if ((SD[S1] & SD[S2]) == 0) {
      if (!setBool(B, BTrue))
        return false;
      return setState(S1, From) && setState(S2, To);
    }
    // Both options open: prune to the union of the two scenarios.
    return setState(S1, static_cast<uint8_t>(SD[S2] | From)) &&
           setState(S2, static_cast<uint8_t>(SD[S1] | To));
  }

  bool propagateOne(const Constraint &C) {
    switch (C.K) {
    case Constraint::Kind::Eq:
      return setState(C.S1, SD[C.S2]) && setState(C.S2, SD[C.S1]);
    case Constraint::Kind::AllocTriple:
      return propagateTriple(C.S1, C.B, C.S2, StU, StA);
    case Constraint::Kind::DeallocTriple:
      return propagateTriple(C.S1, C.B, C.S2, StA, StD);
    }
    return true;
  }

  bool propagate() {
    while (!Queue.empty()) {
      uint32_t CI = Queue.front();
      Queue.pop_front();
      InQueue[CI] = false;
      ++Stats.Propagations;
      if (!propagateOne(Sys.Cons[CI])) {
        // Drain the queue; state is rolled back by the caller.
        for (uint32_t Rest : Queue)
          InQueue[Rest] = false;
        Queue.clear();
        return false;
      }
    }
    return true;
  }

  void rollbackTo(size_t TrailSize) {
    while (Trail.size() > TrailSize) {
      const TrailEntry &E = Trail.back();
      if (E.IsBool)
        BD[E.Id] = E.Old;
      else
        SD[E.Id] = E.Old;
      // Reverting re-creates whatever candidacy existed before.
      noteChange(E.IsBool, E.Id);
      Trail.pop_back();
    }
    Conflict = false;
  }

  bool isAllocCandidate(const Constraint &C) const {
    return C.K == Constraint::Kind::AllocTriple && BD[C.B] == BAny &&
           SD[C.S2] == StA && (SD[C.S1] & StU) && SD[C.S1] != StU;
  }
  bool isDeallocCandidate(const Constraint &C) const {
    return C.K == Constraint::Kind::DeallocTriple && BD[C.B] == BAny &&
           SD[C.S1] == StA && (SD[C.S2] & StD) && SD[C.S2] != StD;
  }

  /// Finds the next choice per the paper's preference: a border allocation
  /// triple, else a border deallocation triple (both tracked
  /// incrementally), else any open boolean (defaulted to false = no
  /// operation).
  bool findChoice(BoolVarId &B, uint8_t &Value) {
    // Seed the candidate stacks once with a full scan.
    if (!Seeded) {
      Seeded = true;
      for (uint32_t CI = 0; CI != Sys.Cons.size(); ++CI) {
        const Constraint &C = Sys.Cons[CI];
        if (C.K == Constraint::Kind::AllocTriple)
          AllocCand.push_back(CI);
        else if (C.K == Constraint::Kind::DeallocTriple)
          DeallocCand.push_back(CI);
      }
    }
    while (!AllocCand.empty()) {
      uint32_t CI = AllocCand.back();
      AllocCand.pop_back();
      if (isAllocCandidate(Sys.Cons[CI])) {
        // Keep it queued: if the decision is later rolled back, the
        // candidate may need to be reconsidered (noteChange re-adds it,
        // but only for variables on the trail).
        B = Sys.Cons[CI].B;
        Value = BTrue;
        return true;
      }
    }
    while (!DeallocCand.empty()) {
      uint32_t CI = DeallocCand.back();
      DeallocCand.pop_back();
      if (isDeallocCandidate(Sys.Cons[CI])) {
        B = Sys.Cons[CI].B;
        Value = BTrue;
        return true;
      }
    }
    while (BoolPointer < BD.size() && BD[BoolPointer] != BAny)
      ++BoolPointer;
    if (BoolPointer < BD.size()) {
      B = static_cast<BoolVarId>(BoolPointer);
      Value = BFalse;
      return true;
    }
    return false;
  }

  const ConstraintSystem &Sys;
  std::vector<uint8_t> SD, BD;
  std::vector<bool> InQueue;
  std::deque<uint32_t> Queue;
  std::vector<TrailEntry> Trail;
  std::vector<Decision> Decisions;
  std::vector<uint32_t> AllocCand, DeallocCand;
  size_t BoolPointer = 0;
  bool Seeded = false;
  bool Conflict = false;
  SolveResult Stats;
};

SolveResult SolverImpl::run() {
  // Initial propagation: seed with every constraint.
  for (uint32_t CI = 0; CI != Sys.Cons.size(); ++CI) {
    InQueue[CI] = true;
    Queue.push_back(CI);
  }
  if (!propagate()) {
    Stats.Sat = false;
    return Stats;
  }

  for (;;) {
    BoolVarId B = 0;
    uint8_t Value = 0;
    if (!findChoice(B, Value)) {
      Stats.Sat = true;
      Stats.StateDom = SD;
      Stats.BoolDom = BD;
      return Stats;
    }
    ++Stats.Choices;
    Decisions.push_back({B, Trail.size(), Value, false});
    setBool(B, Value);
    while (!propagate()) {
      // Conflict: flip the most recent unflipped decision.
      for (;;) {
        if (Decisions.empty()) {
          Stats.Sat = false;
          return Stats;
        }
        Decision &D = Decisions.back();
        rollbackTo(D.TrailSize);
        if (!D.Flipped) {
          ++Stats.Backtracks;
          D.Flipped = true;
          uint8_t Other = D.FirstTry == BTrue ? BFalse : BTrue;
          setBool(D.B, Other);
          break;
        }
        Decisions.pop_back();
      }
    }
  }
}

} // namespace

SolveResult solver::solve(const ConstraintSystem &Sys) {
  Stopwatch Watch;
  SolverImpl S(Sys);
  SolveResult R = S.run();
  R.Seconds = Watch.seconds();
  return R;
}
