#include "solver/Solver.h"

#include "solver/Components.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include "support/CliParse.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdlib>

using namespace afl;
using namespace afl::solver;
using namespace afl::constraints;

namespace {

class SolverImpl {
public:
  explicit SolverImpl(const ConstraintSystem &Sys)
      : Sys(Sys), SD(Sys.StateDom), BD(Sys.BoolDom),
        InQueue(Sys.Cons.size(), false), InAllocCand(Sys.Cons.size(), false),
        InDeallocCand(Sys.Cons.size(), false) {}

  SolveResult run();

private:
  struct TrailEntry {
    bool IsBool;
    uint32_t Id;
    uint8_t Old;
  };
  struct Decision {
    BoolVarId B;
    size_t TrailSize;
    uint8_t FirstTry; // BTrue or BFalse
    bool Flipped;
  };

  /// One scan of the variable's occurrence list handles everything a
  /// domain change requires: re-queue the constraints for propagation
  /// (skipped on rollback, which restores domains without needing to
  /// re-propagate) and refresh the border-candidate stacks — any domain
  /// change can create new candidates among the constraints mentioning
  /// the variable. The in-stack bitmaps keep each constraint queued at
  /// most once per structure — without them, propagation-heavy programs
  /// push the same index on every domain change (quadratic growth).
  void onChange(bool IsBool, uint32_t Id, bool Enqueue) {
    const auto Occ = IsBool ? Sys.boolOcc(Id) : Sys.stateOcc(Id);
    for (uint32_t CI : Occ) {
      if (Enqueue && !InQueue[CI]) {
        InQueue[CI] = true;
        Queue.push_back(CI);
      }
      const Constraint &C = Sys.Cons[CI];
      if (C.K == Constraint::Kind::AllocTriple) {
        if (!InAllocCand[CI]) {
          InAllocCand[CI] = true;
          AllocCand.push_back(CI);
        }
      } else if (C.K == Constraint::Kind::DeallocTriple) {
        if (!InDeallocCand[CI]) {
          InDeallocCand[CI] = true;
          DeallocCand.push_back(CI);
        }
      }
    }
    if (IsBool && Id < BoolPointer)
      BoolPointer = Id;
  }

  bool setState(StateVarId S, uint8_t Mask) {
    uint8_t New = SD[S] & Mask;
    if (New == SD[S])
      return true;
    if (New == 0) {
      Conflict = true;
      return false;
    }
    Trail.push_back({false, S, SD[S]});
    SD[S] = New;
    onChange(false, S, true);
    return true;
  }

  bool setBool(BoolVarId B, uint8_t Mask) {
    uint8_t New = BD[B] & Mask;
    if (New == BD[B])
      return true;
    if (New == 0) {
      Conflict = true;
      return false;
    }
    Trail.push_back({true, B, BD[B]});
    BD[B] = New;
    onChange(true, B, true);
    return true;
  }

  /// Propagates one triple with pre-state \p S1, post-state \p S2, boolean
  /// \p B; \p From/\p To are the transition states (U→A for allocation,
  /// A→D for deallocation).
  bool propagateTriple(StateVarId S1, BoolVarId B, StateVarId S2,
                       uint8_t From, uint8_t To) {
    if (BD[B] == BTrue)
      return setState(S1, From) && setState(S2, To);
    if (BD[B] == BFalse)
      return setState(S1, SD[S2]) && setState(S2, SD[S1]);
    // Boolean undetermined.
    if (!(SD[S1] & From) || !(SD[S2] & To)) {
      if (!setBool(B, BFalse))
        return false;
      return setState(S1, SD[S2]) && setState(S2, SD[S1]);
    }
    if ((SD[S1] & SD[S2]) == 0) {
      if (!setBool(B, BTrue))
        return false;
      return setState(S1, From) && setState(S2, To);
    }
    // Both options open: prune to the union of the two scenarios.
    return setState(S1, static_cast<uint8_t>(SD[S2] | From)) &&
           setState(S2, static_cast<uint8_t>(SD[S1] | To));
  }

  bool propagateOne(const Constraint &C) {
    switch (C.K) {
    case Constraint::Kind::Eq:
      return setState(C.S1, SD[C.S2]) && setState(C.S2, SD[C.S1]);
    case Constraint::Kind::AllocTriple:
      return propagateTriple(C.S1, C.B, C.S2, StU, StA);
    case Constraint::Kind::DeallocTriple:
      return propagateTriple(C.S1, C.B, C.S2, StA, StD);
    }
    return true;
  }

  bool propagate() {
    while (QueueHead != Queue.size()) {
      uint32_t CI = Queue[QueueHead++];
      InQueue[CI] = false;
      ++Stats.Propagations;
      if (!propagateOne(Sys.Cons[CI])) {
        // Drain the queue; state is rolled back by the caller.
        for (size_t I = QueueHead; I != Queue.size(); ++I)
          InQueue[Queue[I]] = false;
        Queue.clear();
        QueueHead = 0;
        return false;
      }
    }
    Queue.clear();
    QueueHead = 0;
    return true;
  }

  void rollbackTo(size_t TrailSize) {
    while (Trail.size() > TrailSize) {
      const TrailEntry &E = Trail.back();
      if (E.IsBool)
        BD[E.Id] = E.Old;
      else
        SD[E.Id] = E.Old;
      // Reverting re-creates whatever candidacy existed before.
      onChange(E.IsBool, E.Id, false);
      Trail.pop_back();
    }
    Conflict = false;
  }

  bool isAllocCandidate(const Constraint &C) const {
    return C.K == Constraint::Kind::AllocTriple && BD[C.B] == BAny &&
           SD[C.S2] == StA && (SD[C.S1] & StU) && SD[C.S1] != StU;
  }
  bool isDeallocCandidate(const Constraint &C) const {
    return C.K == Constraint::Kind::DeallocTriple && BD[C.B] == BAny &&
           SD[C.S1] == StA && (SD[C.S2] & StD) && SD[C.S2] != StD;
  }

  /// Finds the next choice per the paper's preference: a border allocation
  /// triple, else a border deallocation triple (both tracked
  /// incrementally), else any open boolean (defaulted to false = no
  /// operation).
  bool findChoice(BoolVarId &B, uint8_t &Value) {
    // Seed the candidate stacks once with a full scan.
    if (!Seeded) {
      Seeded = true;
      for (uint32_t CI = 0; CI != Sys.Cons.size(); ++CI) {
        const Constraint &C = Sys.Cons[CI];
        if (C.K == Constraint::Kind::AllocTriple) {
          InAllocCand[CI] = true;
          AllocCand.push_back(CI);
        } else if (C.K == Constraint::Kind::DeallocTriple) {
          InDeallocCand[CI] = true;
          DeallocCand.push_back(CI);
        }
      }
    }
    while (!AllocCand.empty()) {
      uint32_t CI = AllocCand.back();
      AllocCand.pop_back();
      InAllocCand[CI] = false;
      if (isAllocCandidate(Sys.Cons[CI])) {
        // The candidate is popped, not peeked: if the decision is later
        // rolled back, noteChange re-adds it for the variables on the
        // trail.
        B = Sys.Cons[CI].B;
        Value = BTrue;
        return true;
      }
    }
    while (!DeallocCand.empty()) {
      uint32_t CI = DeallocCand.back();
      DeallocCand.pop_back();
      InDeallocCand[CI] = false;
      if (isDeallocCandidate(Sys.Cons[CI])) {
        B = Sys.Cons[CI].B;
        Value = BTrue;
        return true;
      }
    }
    while (BoolPointer < BD.size() && BD[BoolPointer] != BAny)
      ++BoolPointer;
    if (BoolPointer < BD.size()) {
      B = static_cast<BoolVarId>(BoolPointer);
      Value = BFalse;
      return true;
    }
    return false;
  }

  const ConstraintSystem &Sys;
  std::vector<uint8_t> SD, BD;
  // Byte flags, not vector<bool>: these are the hottest bits in the
  // solve and the proxy-reference bit twiddling costs measurably more
  // than the 3x footprint saves.
  std::vector<uint8_t> InQueue;
  std::vector<uint8_t> InAllocCand, InDeallocCand;
  /// Index-cursor worklist: pushes append, pops advance QueueHead; the
  /// storage is reclaimed whenever the queue drains.
  std::vector<uint32_t> Queue;
  size_t QueueHead = 0;
  std::vector<TrailEntry> Trail;
  std::vector<Decision> Decisions;
  std::vector<uint32_t> AllocCand, DeallocCand;
  size_t BoolPointer = 0;
  bool Seeded = false;
  bool Conflict = false;
  SolveResult Stats;
};

SolveResult SolverImpl::run() {
  // An empty initial domain is a conflict even when the variable occurs
  // in no constraint — propagation would never visit it, and a
  // completion extracted from such a "solution" would be unsound.
  for (uint8_t D : SD) {
    if (D == 0) {
      Stats.Sat = false;
      return Stats;
    }
  }
  for (uint8_t D : BD) {
    if (D == 0) {
      Stats.Sat = false;
      return Stats;
    }
  }

  // Initial propagation: seed with every constraint.
  for (uint32_t CI = 0; CI != Sys.Cons.size(); ++CI) {
    InQueue[CI] = true;
    Queue.push_back(CI);
  }
  if (!propagate()) {
    Stats.Sat = false;
    return Stats;
  }

  for (;;) {
    BoolVarId B = 0;
    uint8_t Value = 0;
    if (!findChoice(B, Value)) {
      Stats.Sat = true;
      Stats.StateDom = std::move(SD);
      Stats.BoolDom = std::move(BD);
      return Stats;
    }
    ++Stats.Choices;
    Decisions.push_back({B, Trail.size(), Value, false});
    setBool(B, Value);
    while (!propagate()) {
      // Conflict: flip the most recent unflipped decision.
      for (;;) {
        if (Decisions.empty()) {
          Stats.Sat = false;
          return Stats;
        }
        Decision &D = Decisions.back();
        rollbackTo(D.TrailSize);
        if (!D.Flipped) {
          ++Stats.Backtracks;
          D.Flipped = true;
          uint8_t Other = D.FirstTry == BTrue ? BFalse : BTrue;
          setBool(D.B, Other);
          break;
        }
        Decisions.pop_back();
      }
    }
  }
}

/// Solves the components of \p Split (each written to its slot of
/// \p Results) with \p Jobs workers. Returns false as soon as any
/// component is unsatisfiable (remaining components are skipped).
bool solveComponents(const ComponentSplit &Split,
                     std::vector<SolveResult> &Results, unsigned Jobs) {
  Results.resize(Split.Comps.size());
  std::atomic<bool> Failed{false};

  // Shared-pool fan-out (support/ThreadPool.h): each item writes only
  // its own Results slot. Once any component is unsatisfiable the
  // remaining items early-out (their slots stay default, Sat == false,
  // and are never read — solve() returns Unsat immediately).
  ThreadPool::global().parallelFor(
      Split.Comps.size(), Jobs <= 1 ? 1 : Jobs, [&](size_t I) {
        if (Failed.load(std::memory_order_relaxed))
          return;
        SolverImpl S(Split.Comps[I].Sys);
        Results[I] = S.run();
        if (!Results[I].Sat)
          Failed.store(true, std::memory_order_relaxed);
      });
  return !Failed.load(std::memory_order_relaxed);
}

/// The pre-sharded path: the input's emission-time union-find already
/// partitioned variables and constraints into connected components, so
/// each shard is simplified and solved on its own — sequentially in
/// shard order or fanned out over the pool — with no global simplify, no
/// component-discovery pass, and no materialized per-shard system
/// (simplifyShard consumes the CSR shard index directly). Shards
/// partition the variable space, so workers scatter solved domains
/// directly into disjoint slots of the result arrays.
SolveResult solveSharded(const ConstraintSystem &Sys,
                         const SolveOptions &Options, Stopwatch &Watch) {
  SolveResult R;

  // An empty *initial* domain is a conflict even for a variable in no
  // constraint — it never reaches a shard, so check globally up front
  // (the same scan simplify() opens with on the monolithic path).
  for (uint8_t D : Sys.StateDom) {
    if (D == 0) {
      R.Sat = false;
      R.Seconds = Watch.seconds();
      return R;
    }
  }

  Stopwatch Phase;
  const size_t NumShards = Sys.numShards();
  ShardLocalIds Ids = buildShardLocalIds(Sys);
  R.Simplify.ComponentSeconds = Phase.seconds();

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareThreads();
  if (Sys.numConstraints() < Options.ParallelMinConstraints)
    Jobs = 1;

  // Group contiguous shards into work units of roughly GroupTarget
  // constraints: the per-unit fixed costs (simplification scratch,
  // solver construction, propagation seeding) dwarf the work of a
  // ten-constraint shard, and typical programs produce hundreds of tiny
  // shards. Because shards share no variables, simplifying and solving a
  // group is exactly the concatenation of its members' individual runs —
  // grouping changes nothing observable but the amortization. When
  // running parallel, the target shrinks so every worker gets several
  // units to balance.
  size_t GroupTarget = 8192;
  if (Jobs > 1)
    GroupTarget = std::min(
        GroupTarget,
        std::max<size_t>(1, Sys.numConstraints() / (size_t(Jobs) * 4)));
  std::vector<uint32_t> GroupStart;
  GroupStart.push_back(0);
  {
    size_t Acc = 0;
    for (uint32_t K = 0; K != NumShards; ++K) {
      size_t N = Sys.shardConstraints(K).size();
      if (Acc != 0 && Acc + N > GroupTarget) {
        GroupStart.push_back(K);
        Acc = 0;
      }
      Acc += N;
    }
  }
  if (NumShards != 0)
    GroupStart.push_back(static_cast<uint32_t>(NumShards));
  const size_t NumGroups = GroupStart.size() - 1;

  // Unsharded variables keep their initial domains (they are their own
  // representatives); every sharded slot is overwritten below.
  R.StateDom = Sys.StateDom;
  R.BoolDom = Sys.BoolDom;

  struct GroupWork {
    SimplifyStats Stats;
    uint64_t Propagations = 0, Choices = 0, Backtracks = 0;
  };
  std::vector<GroupWork> Work(NumGroups);
  std::atomic<bool> Failed{false};

  auto SolveOne = [&](size_t G) {
    if (Failed.load(std::memory_order_relaxed))
      return;
    const uint32_t KBegin = GroupStart[G], KEnd = GroupStart[G + 1];
    Stopwatch SW;
    SimplifiedSystem Simp = simplifyShardRange(Sys, KBegin, KEnd, Ids);
    Work[G].Stats = Simp.Stats;
    Work[G].Stats.SimplifySeconds = SW.seconds();
    if (Simp.Conflict) {
      Failed.store(true, std::memory_order_relaxed);
      return;
    }
    // LargestComponent carries the largest member shard's residual size
    // (the accumulation below takes the maximum, matching the monolithic
    // path's largest-residual-component statistic). Member reps occupy
    // contiguous ascending ranges bounded by the rep of each member's
    // first state variable, so a rep -> member table buckets the
    // residual constraints in one linear pass.
    {
      const uint32_t Members = KEnd - KBegin;
      std::vector<uint32_t> MemberOf(Simp.Residual.numStateVars());
      uint32_t Off = 0;
      for (uint32_t M = 0; M != Members; ++M) {
        uint32_t RepBegin = Simp.StateRep[Off];
        Off += static_cast<uint32_t>(Sys.shardStates(KBegin + M).size());
        uint32_t RepEnd = Off < Simp.StateRep.size()
                              ? Simp.StateRep[Off]
                              : static_cast<uint32_t>(MemberOf.size());
        for (uint32_t R = RepBegin; R != RepEnd; ++R)
          MemberOf[R] = M;
      }
      std::vector<uint32_t> PerMember(Members, 0);
      for (const Constraint &C : Simp.Residual.Cons)
        ++PerMember[MemberOf[C.S1]];
      for (uint32_t N : PerMember)
        Work[G].Stats.LargestComponent =
            std::max<size_t>(Work[G].Stats.LargestComponent, N);
    }
    SolverImpl S(Simp.Residual);
    SolveResult CR = S.run();
    Work[G].Propagations = CR.Propagations;
    Work[G].Choices = CR.Choices;
    Work[G].Backtracks = CR.Backtracks;
    if (!CR.Sat) {
      Failed.store(true, std::memory_order_relaxed);
      return;
    }
    // StateRep and CR's domains index group-local variables; the shard
    // tables give the local -> global mapping, member by member.
    uint32_t SOff = 0, BOff = 0;
    for (uint32_t K = KBegin; K != KEnd; ++K) {
      const auto States = Sys.shardStates(K);
      for (size_t L = 0; L != States.size(); ++L)
        R.StateDom[States.begin()[L]] = CR.StateDom[Simp.StateRep[SOff + L]];
      SOff += static_cast<uint32_t>(States.size());
      const auto Bools = Sys.shardBools(K);
      for (size_t L = 0; L != Bools.size(); ++L)
        R.BoolDom[Bools.begin()[L]] = CR.BoolDom[BOff + L];
      BOff += static_cast<uint32_t>(Bools.size());
    }
  };

  if (Jobs <= 1) {
    for (size_t G = 0; G != NumGroups && !Failed.load(); ++G)
      SolveOne(G);
  } else {
    ThreadPool::global().parallelFor(NumGroups, Jobs, SolveOne);
  }

  for (const GroupWork &W : Work) {
    R.Simplify.accumulate(W.Stats);
    R.Propagations += W.Propagations;
    R.Choices += W.Choices;
    R.Backtracks += W.Backtracks;
  }
  // The per-group sums cover only sharded variables; unconstrained ones
  // are one singleton class each on the monolithic path.
  size_t Unsharded = Sys.numStateVars() - Ids.NumShardedStates;
  R.Simplify.StateVarsBefore += Unsharded;
  R.Simplify.StateVarsAfter += Unsharded;
  R.Simplify.Components = NumShards;
  R.Simplify.ThreadsUsed =
      Jobs <= 1 ? 1
                : std::min<size_t>(Jobs, std::max<size_t>(NumGroups, 1));

  if (Failed.load()) {
    R.Sat = false;
    R.StateDom.clear();
    R.BoolDom.clear();
    R.Seconds = Watch.seconds();
    return R;
  }

  // Booleans in no shard (never in a triple) default to false — no
  // operation — exactly as the raw solver's final sweep leaves them.
  for (uint8_t &B : R.BoolDom)
    if (B == BAny)
      B = BFalse;
  R.Sat = true;
  R.Seconds = Watch.seconds();
  return R;
}

} // namespace

unsigned solver::defaultSolverJobs() {
  // Computed once: the env var is a process-level mode switch (CI runs
  // the whole suite under AFL_SOLVER_JOBS=4), not a per-run knob.
  static unsigned Cached = [] {
    const char *Env = std::getenv("AFL_SOLVER_JOBS");
    unsigned Jobs = 0;
    if (Env && !parseCliUnsigned(Env, Jobs))
      Jobs = 0;
    return Jobs;
  }();
  return Cached;
}

SolveResult solver::solve(const ConstraintSystem &Sys,
                          const SolveOptions &Options) {
  Stopwatch Watch;

  if (!Options.Simplify) {
    SolverImpl S(Sys);
    SolveResult R = S.run();
    R.Seconds = Watch.seconds();
    return R;
  }

  if (Options.UseShards)
    return solveSharded(Sys, Options, Watch);

  SolveResult R;
  Stopwatch Phase;
  SimplifiedSystem Simp = simplify(Sys);
  R.Simplify = Simp.Stats;
  R.Simplify.SimplifySeconds = Phase.seconds();
  if (Simp.Conflict) {
    R.Sat = false;
    R.Seconds = Watch.seconds();
    return R;
  }

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareThreads();
  if (Simp.Residual.numConstraints() < Options.ParallelMinConstraints)
    Jobs = 1;

  std::vector<uint8_t> RepDom, BoolOut;
  if (Jobs <= 1) {
    // Sequential: solve the residual monolithically. Materializing the
    // per-component systems only pays off when they run on separate
    // threads, so here the components are merely counted for the
    // statistics.
    Phase.reset();
    ComponentCount Counts = countComponents(Simp.Residual);
    R.Simplify.Components = Counts.Components;
    R.Simplify.LargestComponent = Counts.LargestConstraints;
    R.Simplify.ThreadsUsed = 1;
    R.Simplify.ComponentSeconds = Phase.seconds();

    SolverImpl S(Simp.Residual);
    SolveResult Mono = S.run();
    R.Propagations = Mono.Propagations;
    R.Choices = Mono.Choices;
    R.Backtracks = Mono.Backtracks;
    if (!Mono.Sat) {
      R.Sat = false;
      R.Seconds = Watch.seconds();
      return R;
    }
    Phase.reset();
    RepDom = std::move(Mono.StateDom);
    BoolOut = std::move(Mono.BoolDom);
  } else {
    Phase.reset();
    ComponentSplit Split = splitComponents(Simp.Residual);
    R.Simplify.Components = Split.Comps.size();
    R.Simplify.LargestComponent = Split.LargestConstraints;
    R.Simplify.ComponentSeconds = Phase.seconds();
    R.Simplify.ThreadsUsed =
        std::min<size_t>(Jobs, std::max<size_t>(Split.Comps.size(), 1));

    std::vector<SolveResult> Comp;
    bool Sat = solveComponents(Split, Comp, Jobs);
    for (const SolveResult &C : Comp) {
      R.Propagations += C.Propagations;
      R.Choices += C.Choices;
      R.Backtracks += C.Backtracks;
    }
    if (!Sat) {
      R.Sat = false;
      R.Seconds = Watch.seconds();
      return R;
    }
    // Booleans not touched by any component keep their forced value or
    // default to false below (no operation), exactly as the raw
    // solver's final boolean sweep would set them.
    Phase.reset();
    RepDom = Simp.Residual.StateDom;
    BoolOut = Simp.Residual.BoolDom;
    for (size_t I = 0; I != Split.Comps.size(); ++I) {
      const Component &CS = Split.Comps[I];
      const SolveResult &CR = Comp[I];
      for (size_t L = 0; L != CS.StateGlobal.size(); ++L)
        RepDom[CS.StateGlobal[L]] = CR.StateDom[L];
      for (size_t L = 0; L != CS.BoolGlobal.size(); ++L)
        BoolOut[CS.BoolGlobal[L]] = CR.BoolDom[L];
    }
  }

  // Reconstruction: map the representatives' solved domains back over
  // the original variable space.
  R.StateDom.resize(Sys.numStateVars());
  for (size_t V = 0; V != R.StateDom.size(); ++V)
    R.StateDom[V] = RepDom[Simp.StateRep[V]];
  for (uint8_t &B : BoolOut)
    if (B == BAny)
      B = BFalse;
  R.BoolDom = std::move(BoolOut);
  R.Sat = true;
  R.Simplify.ReconstructSeconds = Phase.seconds();
  R.Seconds = Watch.seconds();
  return R;
}

SolveResult solver::solveCached(const ConstraintSystem &Sys,
                                const SolveOptions &Options,
                                ShardSolutionCache &Cache) {
  if (!Options.Simplify || !Options.UseShards)
    return solve(Sys, Options);

  Stopwatch Watch;
  SolveResult R;

  // Same up-front global check as solveSharded: an empty initial domain
  // is a conflict even for a variable in no constraint.
  for (uint8_t D : Sys.StateDom) {
    if (D == 0) {
      R.Sat = false;
      R.Seconds = Watch.seconds();
      return R;
    }
  }

  Stopwatch Phase;
  const size_t NumShards = Sys.numShards();
  ShardLocalIds Ids = buildShardLocalIds(Sys);
  R.Simplify.ComponentSeconds = Phase.seconds();

  // Unsharded variables keep their initial domains; sharded slots are
  // overwritten from cache entries or fresh solves below.
  R.StateDom = Sys.StateDom;
  R.BoolDom = Sys.BoolDom;

  bool Failed = false;
  std::string Key;
  auto Add32 = [&Key](uint32_t V) {
    Key.push_back(static_cast<char>(V));
    Key.push_back(static_cast<char>(V >> 8));
    Key.push_back(static_cast<char>(V >> 16));
    Key.push_back(static_cast<char>(V >> 24));
  };

  for (uint32_t K = 0; K != NumShards && !Failed; ++K) {
    // The key is the shard's content in shard-local coordinates: every
    // constraint's kind and local variable ids (in CSR order) plus the
    // initial domains of the member variables. Identical keys mean
    // identical subsystems up to the local->global renaming, and the
    // solved local domains depend on nothing else.
    Key.clear();
    for (uint32_t CI : Sys.shardConstraints(K)) {
      const Constraint &C = Sys.Cons[CI];
      Key.push_back(static_cast<char>(C.K));
      Add32(Ids.State[C.S1]);
      Add32(Ids.State[C.S2]);
      if (C.K != Constraint::Kind::Eq)
        Add32(Ids.Bool[C.B]);
    }
    const auto States = Sys.shardStates(K);
    for (uint32_t V : States)
      Key.push_back(static_cast<char>(Sys.StateDom[V]));
    const auto Bools = Sys.shardBools(K);
    for (uint32_t V : Bools)
      Key.push_back(static_cast<char>(Sys.BoolDom[V]));

    auto Scatter = [&](const ShardSolutionCache::Entry &E) {
      for (size_t L = 0; L != States.size(); ++L)
        R.StateDom[States.begin()[L]] = E.StateDom[L];
      for (size_t L = 0; L != Bools.size(); ++L)
        R.BoolDom[Bools.begin()[L]] = E.BoolDom[L];
    };

    auto It = Cache.Entries.find(Key);
    if (It != Cache.Entries.end()) {
      ++Cache.Hits;
      if (!It->second.Sat) {
        Failed = true;
        break;
      }
      Scatter(It->second);
      continue;
    }

    ++Cache.Misses;
    Stopwatch SW;
    SimplifiedSystem Simp = simplifyShard(Sys, K, Ids);
    Simp.Stats.SimplifySeconds = SW.seconds();
    R.Simplify.accumulate(Simp.Stats);
    R.Simplify.LargestComponent = std::max(
        R.Simplify.LargestComponent, Simp.Residual.Cons.size());
    ShardSolutionCache::Entry E;
    if (Simp.Conflict) {
      Cache.Entries.emplace(Key, std::move(E));
      Failed = true;
      break;
    }
    SolverImpl S(Simp.Residual);
    SolveResult CR = S.run();
    R.Propagations += CR.Propagations;
    R.Choices += CR.Choices;
    R.Backtracks += CR.Backtracks;
    if (!CR.Sat) {
      Cache.Entries.emplace(Key, std::move(E));
      Failed = true;
      break;
    }
    E.Sat = true;
    E.StateDom.resize(States.size());
    for (size_t L = 0; L != States.size(); ++L)
      E.StateDom[L] = CR.StateDom[Simp.StateRep[L]];
    E.BoolDom.resize(Bools.size());
    for (size_t L = 0; L != Bools.size(); ++L)
      E.BoolDom[L] = CR.BoolDom[L];
    Scatter(E);
    Cache.Entries.emplace(Key, std::move(E));
  }

  size_t Unsharded = Sys.numStateVars() - Ids.NumShardedStates;
  R.Simplify.StateVarsBefore += Unsharded;
  R.Simplify.StateVarsAfter += Unsharded;
  R.Simplify.Components = NumShards;
  R.Simplify.ThreadsUsed = 1;

  if (Failed) {
    R.Sat = false;
    R.StateDom.clear();
    R.BoolDom.clear();
    R.Seconds = Watch.seconds();
    return R;
  }

  // Booleans in no shard default to false, matching solveSharded.
  for (uint8_t &B : R.BoolDom)
    if (B == BAny)
      B = BFalse;
  R.Sat = true;
  R.Seconds = Watch.seconds();
  return R;
}
