#include "solver/Solver.h"

#include "solver/Components.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>

using namespace afl;
using namespace afl::solver;
using namespace afl::constraints;

namespace {

class SolverImpl {
public:
  explicit SolverImpl(const ConstraintSystem &Sys)
      : Sys(Sys), SD(Sys.StateDom), BD(Sys.BoolDom),
        InQueue(Sys.Cons.size(), false), InAllocCand(Sys.Cons.size(), false),
        InDeallocCand(Sys.Cons.size(), false) {}

  SolveResult run();

private:
  struct TrailEntry {
    bool IsBool;
    uint32_t Id;
    uint8_t Old;
  };
  struct Decision {
    BoolVarId B;
    size_t TrailSize;
    uint8_t FirstTry; // BTrue or BFalse
    bool Flipped;
  };

  void noteChange(bool IsBool, uint32_t Id) {
    // Any domain change can create new border candidates among the
    // constraints mentioning the variable. The in-stack bitmaps keep
    // each constraint queued at most once — without them,
    // propagation-heavy programs push the same index on every domain
    // change (quadratic growth).
    const auto Occ = IsBool ? Sys.boolOcc(Id) : Sys.stateOcc(Id);
    for (uint32_t CI : Occ) {
      const Constraint &C = Sys.Cons[CI];
      if (C.K == Constraint::Kind::AllocTriple) {
        if (!InAllocCand[CI]) {
          InAllocCand[CI] = true;
          AllocCand.push_back(CI);
        }
      } else if (C.K == Constraint::Kind::DeallocTriple) {
        if (!InDeallocCand[CI]) {
          InDeallocCand[CI] = true;
          DeallocCand.push_back(CI);
        }
      }
    }
    if (IsBool && Id < BoolPointer)
      BoolPointer = Id;
  }

  void enqueueOcc(bool IsBool, uint32_t Id) {
    const auto Occ = IsBool ? Sys.boolOcc(Id) : Sys.stateOcc(Id);
    for (uint32_t CI : Occ) {
      if (!InQueue[CI]) {
        InQueue[CI] = true;
        Queue.push_back(CI);
      }
    }
  }

  bool setState(StateVarId S, uint8_t Mask) {
    uint8_t New = SD[S] & Mask;
    if (New == SD[S])
      return true;
    if (New == 0) {
      Conflict = true;
      return false;
    }
    Trail.push_back({false, S, SD[S]});
    SD[S] = New;
    enqueueOcc(false, S);
    noteChange(false, S);
    return true;
  }

  bool setBool(BoolVarId B, uint8_t Mask) {
    uint8_t New = BD[B] & Mask;
    if (New == BD[B])
      return true;
    if (New == 0) {
      Conflict = true;
      return false;
    }
    Trail.push_back({true, B, BD[B]});
    BD[B] = New;
    enqueueOcc(true, B);
    noteChange(true, B);
    return true;
  }

  /// Propagates one triple with pre-state \p S1, post-state \p S2, boolean
  /// \p B; \p From/\p To are the transition states (U→A for allocation,
  /// A→D for deallocation).
  bool propagateTriple(StateVarId S1, BoolVarId B, StateVarId S2,
                       uint8_t From, uint8_t To) {
    if (BD[B] == BTrue)
      return setState(S1, From) && setState(S2, To);
    if (BD[B] == BFalse)
      return setState(S1, SD[S2]) && setState(S2, SD[S1]);
    // Boolean undetermined.
    if (!(SD[S1] & From) || !(SD[S2] & To)) {
      if (!setBool(B, BFalse))
        return false;
      return setState(S1, SD[S2]) && setState(S2, SD[S1]);
    }
    if ((SD[S1] & SD[S2]) == 0) {
      if (!setBool(B, BTrue))
        return false;
      return setState(S1, From) && setState(S2, To);
    }
    // Both options open: prune to the union of the two scenarios.
    return setState(S1, static_cast<uint8_t>(SD[S2] | From)) &&
           setState(S2, static_cast<uint8_t>(SD[S1] | To));
  }

  bool propagateOne(const Constraint &C) {
    switch (C.K) {
    case Constraint::Kind::Eq:
      return setState(C.S1, SD[C.S2]) && setState(C.S2, SD[C.S1]);
    case Constraint::Kind::AllocTriple:
      return propagateTriple(C.S1, C.B, C.S2, StU, StA);
    case Constraint::Kind::DeallocTriple:
      return propagateTriple(C.S1, C.B, C.S2, StA, StD);
    }
    return true;
  }

  bool propagate() {
    while (QueueHead != Queue.size()) {
      uint32_t CI = Queue[QueueHead++];
      InQueue[CI] = false;
      ++Stats.Propagations;
      if (!propagateOne(Sys.Cons[CI])) {
        // Drain the queue; state is rolled back by the caller.
        for (size_t I = QueueHead; I != Queue.size(); ++I)
          InQueue[Queue[I]] = false;
        Queue.clear();
        QueueHead = 0;
        return false;
      }
    }
    Queue.clear();
    QueueHead = 0;
    return true;
  }

  void rollbackTo(size_t TrailSize) {
    while (Trail.size() > TrailSize) {
      const TrailEntry &E = Trail.back();
      if (E.IsBool)
        BD[E.Id] = E.Old;
      else
        SD[E.Id] = E.Old;
      // Reverting re-creates whatever candidacy existed before.
      noteChange(E.IsBool, E.Id);
      Trail.pop_back();
    }
    Conflict = false;
  }

  bool isAllocCandidate(const Constraint &C) const {
    return C.K == Constraint::Kind::AllocTriple && BD[C.B] == BAny &&
           SD[C.S2] == StA && (SD[C.S1] & StU) && SD[C.S1] != StU;
  }
  bool isDeallocCandidate(const Constraint &C) const {
    return C.K == Constraint::Kind::DeallocTriple && BD[C.B] == BAny &&
           SD[C.S1] == StA && (SD[C.S2] & StD) && SD[C.S2] != StD;
  }

  /// Finds the next choice per the paper's preference: a border allocation
  /// triple, else a border deallocation triple (both tracked
  /// incrementally), else any open boolean (defaulted to false = no
  /// operation).
  bool findChoice(BoolVarId &B, uint8_t &Value) {
    // Seed the candidate stacks once with a full scan.
    if (!Seeded) {
      Seeded = true;
      for (uint32_t CI = 0; CI != Sys.Cons.size(); ++CI) {
        const Constraint &C = Sys.Cons[CI];
        if (C.K == Constraint::Kind::AllocTriple) {
          InAllocCand[CI] = true;
          AllocCand.push_back(CI);
        } else if (C.K == Constraint::Kind::DeallocTriple) {
          InDeallocCand[CI] = true;
          DeallocCand.push_back(CI);
        }
      }
    }
    while (!AllocCand.empty()) {
      uint32_t CI = AllocCand.back();
      AllocCand.pop_back();
      InAllocCand[CI] = false;
      if (isAllocCandidate(Sys.Cons[CI])) {
        // The candidate is popped, not peeked: if the decision is later
        // rolled back, noteChange re-adds it for the variables on the
        // trail.
        B = Sys.Cons[CI].B;
        Value = BTrue;
        return true;
      }
    }
    while (!DeallocCand.empty()) {
      uint32_t CI = DeallocCand.back();
      DeallocCand.pop_back();
      InDeallocCand[CI] = false;
      if (isDeallocCandidate(Sys.Cons[CI])) {
        B = Sys.Cons[CI].B;
        Value = BTrue;
        return true;
      }
    }
    while (BoolPointer < BD.size() && BD[BoolPointer] != BAny)
      ++BoolPointer;
    if (BoolPointer < BD.size()) {
      B = static_cast<BoolVarId>(BoolPointer);
      Value = BFalse;
      return true;
    }
    return false;
  }

  const ConstraintSystem &Sys;
  std::vector<uint8_t> SD, BD;
  std::vector<bool> InQueue;
  std::vector<bool> InAllocCand, InDeallocCand;
  /// Index-cursor worklist: pushes append, pops advance QueueHead; the
  /// storage is reclaimed whenever the queue drains.
  std::vector<uint32_t> Queue;
  size_t QueueHead = 0;
  std::vector<TrailEntry> Trail;
  std::vector<Decision> Decisions;
  std::vector<uint32_t> AllocCand, DeallocCand;
  size_t BoolPointer = 0;
  bool Seeded = false;
  bool Conflict = false;
  SolveResult Stats;
};

SolveResult SolverImpl::run() {
  // An empty initial domain is a conflict even when the variable occurs
  // in no constraint — propagation would never visit it, and a
  // completion extracted from such a "solution" would be unsound.
  for (uint8_t D : SD) {
    if (D == 0) {
      Stats.Sat = false;
      return Stats;
    }
  }
  for (uint8_t D : BD) {
    if (D == 0) {
      Stats.Sat = false;
      return Stats;
    }
  }

  // Initial propagation: seed with every constraint.
  for (uint32_t CI = 0; CI != Sys.Cons.size(); ++CI) {
    InQueue[CI] = true;
    Queue.push_back(CI);
  }
  if (!propagate()) {
    Stats.Sat = false;
    return Stats;
  }

  for (;;) {
    BoolVarId B = 0;
    uint8_t Value = 0;
    if (!findChoice(B, Value)) {
      Stats.Sat = true;
      Stats.StateDom = SD;
      Stats.BoolDom = BD;
      return Stats;
    }
    ++Stats.Choices;
    Decisions.push_back({B, Trail.size(), Value, false});
    setBool(B, Value);
    while (!propagate()) {
      // Conflict: flip the most recent unflipped decision.
      for (;;) {
        if (Decisions.empty()) {
          Stats.Sat = false;
          return Stats;
        }
        Decision &D = Decisions.back();
        rollbackTo(D.TrailSize);
        if (!D.Flipped) {
          ++Stats.Backtracks;
          D.Flipped = true;
          uint8_t Other = D.FirstTry == BTrue ? BFalse : BTrue;
          setBool(D.B, Other);
          break;
        }
        Decisions.pop_back();
      }
    }
  }
}

/// Solves the components of \p Split (each written to its slot of
/// \p Results) with \p Jobs workers. Returns false as soon as any
/// component is unsatisfiable (remaining components are skipped).
bool solveComponents(const ComponentSplit &Split,
                     std::vector<SolveResult> &Results, unsigned Jobs) {
  Results.resize(Split.Comps.size());
  std::atomic<bool> Failed{false};

  // Shared-pool fan-out (support/ThreadPool.h): each item writes only
  // its own Results slot. Once any component is unsatisfiable the
  // remaining items early-out (their slots stay default, Sat == false,
  // and are never read — solve() returns Unsat immediately).
  ThreadPool::global().parallelFor(
      Split.Comps.size(), Jobs <= 1 ? 1 : Jobs, [&](size_t I) {
        if (Failed.load(std::memory_order_relaxed))
          return;
        SolverImpl S(Split.Comps[I].Sys);
        Results[I] = S.run();
        if (!Results[I].Sat)
          Failed.store(true, std::memory_order_relaxed);
      });
  return !Failed.load(std::memory_order_relaxed);
}

} // namespace

SolveResult solver::solve(const ConstraintSystem &Sys,
                          const SolveOptions &Options) {
  Stopwatch Watch;

  if (!Options.Simplify) {
    SolverImpl S(Sys);
    SolveResult R = S.run();
    R.Seconds = Watch.seconds();
    return R;
  }

  SolveResult R;
  Stopwatch Phase;
  SimplifiedSystem Simp = simplify(Sys);
  R.Simplify = Simp.Stats;
  R.Simplify.SimplifySeconds = Phase.seconds();
  if (Simp.Conflict) {
    R.Sat = false;
    R.Seconds = Watch.seconds();
    return R;
  }

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareThreads();
  if (Simp.Residual.numConstraints() < Options.ParallelMinConstraints)
    Jobs = 1;

  std::vector<uint8_t> RepDom, BoolOut;
  if (Jobs <= 1) {
    // Sequential: solve the residual monolithically. Materializing the
    // per-component systems only pays off when they run on separate
    // threads, so here the components are merely counted for the
    // statistics.
    Phase.reset();
    ComponentCount Counts = countComponents(Simp.Residual);
    R.Simplify.Components = Counts.Components;
    R.Simplify.LargestComponent = Counts.LargestConstraints;
    R.Simplify.ThreadsUsed = 1;
    R.Simplify.ComponentSeconds = Phase.seconds();

    SolverImpl S(Simp.Residual);
    SolveResult Mono = S.run();
    R.Propagations = Mono.Propagations;
    R.Choices = Mono.Choices;
    R.Backtracks = Mono.Backtracks;
    if (!Mono.Sat) {
      R.Sat = false;
      R.Seconds = Watch.seconds();
      return R;
    }
    Phase.reset();
    RepDom = std::move(Mono.StateDom);
    BoolOut = std::move(Mono.BoolDom);
  } else {
    Phase.reset();
    ComponentSplit Split = splitComponents(Simp.Residual);
    R.Simplify.Components = Split.Comps.size();
    R.Simplify.LargestComponent = Split.LargestConstraints;
    R.Simplify.ComponentSeconds = Phase.seconds();
    R.Simplify.ThreadsUsed =
        std::min<size_t>(Jobs, std::max<size_t>(Split.Comps.size(), 1));

    std::vector<SolveResult> Comp;
    bool Sat = solveComponents(Split, Comp, Jobs);
    for (const SolveResult &C : Comp) {
      R.Propagations += C.Propagations;
      R.Choices += C.Choices;
      R.Backtracks += C.Backtracks;
    }
    if (!Sat) {
      R.Sat = false;
      R.Seconds = Watch.seconds();
      return R;
    }
    // Booleans not touched by any component keep their forced value or
    // default to false below (no operation), exactly as the raw
    // solver's final boolean sweep would set them.
    Phase.reset();
    RepDom = Simp.Residual.StateDom;
    BoolOut = Simp.Residual.BoolDom;
    for (size_t I = 0; I != Split.Comps.size(); ++I) {
      const Component &CS = Split.Comps[I];
      const SolveResult &CR = Comp[I];
      for (size_t L = 0; L != CS.StateGlobal.size(); ++L)
        RepDom[CS.StateGlobal[L]] = CR.StateDom[L];
      for (size_t L = 0; L != CS.BoolGlobal.size(); ++L)
        BoolOut[CS.BoolGlobal[L]] = CR.BoolDom[L];
    }
  }

  // Reconstruction: map the representatives' solved domains back over
  // the original variable space.
  R.StateDom.resize(Sys.numStateVars());
  for (size_t V = 0; V != R.StateDom.size(); ++V)
    R.StateDom[V] = RepDom[Simp.StateRep[V]];
  for (uint8_t &B : BoolOut)
    if (B == BAny)
      B = BFalse;
  R.BoolDom = std::move(BoolOut);
  R.Sat = true;
  R.Simplify.ReconstructSeconds = Phase.seconds();
  R.Seconds = Watch.seconds();
  return R;
}
