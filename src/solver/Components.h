//===----------------------------------------------------------------------===//
///
/// \file
/// Connected-component decomposition of a (simplified) constraint
/// system. Two variables are connected when some constraint mentions
/// both; a triple additionally connects its boolean to both states, so
/// booleans shared across contexts merge the contexts' chains into one
/// component. Components share no variables, so each can be solved
/// independently (and, above a size threshold, in parallel) — the
/// per-procedure decomposition insight of the Mercury region system
/// (PAPERS.md) applied to the §4.3 solve.
///
/// Determinism: components are ordered by their smallest state
/// variable, and local ids ascend in global-id order, so the projected
/// execution of each component is identical to the monolithic solve's
/// execution restricted to that component (docs/SOLVER.md).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_SOLVER_COMPONENTS_H
#define AFL_SOLVER_COMPONENTS_H

#include "constraints/ConstraintSystem.h"

namespace afl {
namespace solver {

/// One connected component, as a self-contained system over local ids.
struct Component {
  constraints::ConstraintSystem Sys;
  /// Local state/bool variable id -> id in the source system.
  std::vector<constraints::StateVarId> StateGlobal;
  std::vector<constraints::BoolVarId> BoolGlobal;
};

struct ComponentSplit {
  std::vector<Component> Comps;
  /// Constraint count of the largest component.
  size_t LargestConstraints = 0;
};

/// Splits \p Sys into connected components. Variables that occur in no
/// constraint belong to no component (the caller keeps their initial
/// domains; unforced booleans default to false downstream).
ComponentSplit splitComponents(const constraints::ConstraintSystem &Sys);

/// Component count and largest-component constraint count, without
/// materializing the per-component systems — the sequential solve path
/// wants the statistics but solves the system monolithically, so the
/// copies (and their occurrence-list rebuilds) would be pure overhead.
struct ComponentCount {
  size_t Components = 0;
  size_t LargestConstraints = 0;
};
ComponentCount countComponents(const constraints::ConstraintSystem &Sys);

/// Local-id tables for every shard of a pre-sharded system (the CSR
/// component index ConstraintSystem finalizes from its emission-time
/// union-find): a variable's local id is its rank within its shard, so
/// local ids ascend in global-id order — the numbering splitComponents
/// assigns. Built once; shared read-only by concurrent materializations.
struct ShardLocalIds {
  std::vector<uint32_t> State, Bool;
  size_t NumShardedStates = 0;
  size_t NumShardedBools = 0;
};
ShardLocalIds buildShardLocalIds(const constraints::ConstraintSystem &Sys);

/// Materializes shard \p K of a pre-sharded system as a self-contained
/// component, equivalent to the corresponding splitComponents entry but
/// a pure gather over the CSR shard index — no union-find, no edge scan.
Component materializeShard(const constraints::ConstraintSystem &Sys,
                           uint32_t K, const ShardLocalIds &Ids);

} // namespace solver
} // namespace afl

#endif // AFL_SOLVER_COMPONENTS_H
