//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics over memory-over-time traces: peak, average, and
/// the space-time product (the integral of residency over the memory-
/// operation time axis — the standard "how much memory for how long"
/// metric in the region-based memory management literature).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_INTERP_TRACEANALYSIS_H
#define AFL_INTERP_TRACEANALYSIS_H

#include "interp/Interp.h"

#include <cstdint>
#include <vector>

namespace afl {
namespace interp {

struct TraceSummary {
  /// Peak residency (values held).
  uint64_t Peak = 0;
  /// Time of the first peak.
  uint64_t PeakTime = 0;
  /// Space-time product: Σ values-held over each unit time step.
  uint64_t SpaceTime = 0;
  /// Mean residency (SpaceTime / duration).
  double Mean = 0.0;
  /// Final residency.
  uint64_t Final = 0;
  /// Trace duration (memory operations).
  uint64_t Duration = 0;
};

/// Summarizes \p Trace (one point per memory operation, as produced by
/// RunOptions::RecordTrace).
TraceSummary summarizeTrace(const std::vector<TracePoint> &Trace);

} // namespace interp
} // namespace afl

#endif // AFL_INTERP_TRACEANALYSIS_H
