//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumented interpreter for completed region programs, implementing
/// the operational semantics of paper Fig. 2:
///   * a store of regions, each unallocated, allocated (holding boxed
///     values), or deallocated;
///   * reads/writes trap unless the region is allocated — running a
///     completion therefore *checks* its soundness dynamically;
///   * every region progresses U → A → D (at most one allocation and one
///     deallocation).
///
/// Instrumentation mirrors the paper's methodology (§6): only heap memory
/// is counted (never the evaluation stack), time is the index in the
/// sequence of memory operations (Fig. 1c), and the five Table 2 metrics
/// are reported.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_INTERP_INTERP_H
#define AFL_INTERP_INTERP_H

#include "completion/StorageModes.h"
#include "regions/Completion.h"
#include "regions/RegionProgram.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace afl {
namespace interp {

/// Counters matching Table 2 of the paper.
struct Stats {
  /// (1) Maximum number of regions simultaneously allocated.
  uint64_t MaxRegions = 0;
  /// (2) Total number of region allocations.
  uint64_t TotalRegionAllocs = 0;
  /// (3) Total number of value allocations (boxed values written).
  uint64_t TotalValueAllocs = 0;
  /// (4) Maximum number of storable values simultaneously held.
  uint64_t MaxValues = 0;
  /// (5) Number of values stored in the final memory (still held in
  /// allocated regions when the program ends).
  uint64_t FinalValues = 0;

  uint64_t CurRegions = 0;
  uint64_t CurValues = 0;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Steps = 0;
  /// Number of atbot writes that reset a region (storage modes [Tof94]).
  uint64_t Resets = 0;
  /// Total values destroyed by atbot resets.
  uint64_t ResetValues = 0;
  /// Total memory operations (reads + writes + region allocs + frees);
  /// this is the "time" axis of the paper's figures.
  uint64_t Time = 0;
};

/// One sample of the memory-over-time trace: after memory operation
/// \c Time, \c ValuesHeld values were held in allocated regions.
struct TracePoint {
  uint64_t Time = 0;
  uint64_t ValuesHeld = 0;
};

/// Lifetime of one runtime region (Figure 1c): when it was allocated and
/// freed on the memory-operation time axis. FreeTime == 0 means the
/// region was reclaimed by program exit (or never allocated when
/// AllocTime == 0 as well).
struct RegionLifetime {
  uint64_t AllocTime = 0;
  uint64_t FreeTime = 0;
  /// Number of values the region held when freed (or at program end).
  uint64_t ValuesAtFree = 0;
};

/// Which evaluator executes the program. Both are semantics-exact (the
/// VM is proven bit-identical to the tree walker by
/// tests/VmDifferentialTest.cpp); the VM is the default, the tree walker
/// remains the differential oracle.
enum class BackendKind : uint8_t {
  /// Bytecode VM with bump-pointer region arenas (src/vm/, docs/VM.md).
  Vm,
  /// The Fig. 2 tree walker in this module.
  Tree,
};

/// The process-default backend: $AFL_INTERP ("vm" or "tree") when set and
/// valid, else the VM. Like the closure/solver jobs env knobs, the
/// library reads the variable leniently (unrecognized values fall back to
/// the default); `aflc` validates it strictly at startup.
BackendKind defaultBackend();

/// Strictly parses a backend name, CliParse.h-style: exactly "vm" or
/// "tree"; anything else returns false and leaves \p Out untouched.
/// Shared by `aflc --interp=...` and its $AFL_INTERP validation.
bool parseBackendName(std::string_view Text, BackendKind &Out);

struct RunOptions {
  /// Evaluation step limit (guards runaway programs in property tests).
  uint64_t MaxSteps = 200'000'000;
  /// Recursion depth limit. The tree walker recurses on the host stack
  /// (each level costs a few hundred bytes of C++ stack); the VM holds
  /// explicit frames, so this bounds VM frame count instead.
  uint32_t MaxDepth = 15'000;
  /// Record the full memory-over-time trace (Figures 5-8).
  bool RecordTrace = false;
  /// Record per-region lifetimes (Figure 1c).
  bool RecordLifetimes = false;
  /// Optional storage modes: writes listed atbot reset their region
  /// first (destroying its current contents). Not owned; may be null.
  const completion::StorageModes *Modes = nullptr;
  /// Evaluator selection (`aflc --interp=vm|tree`, $AFL_INTERP).
  BackendKind Backend = defaultBackend();
};

struct RunResult {
  bool Ok = false;
  std::string Error;
  /// Rendered result value, e.g. "42", "(1, true)", "[1, 2, 3]", "<fn>".
  std::string ResultText;
  Stats S;
  std::vector<TracePoint> Trace;
  /// Indexed by runtime region id (creation order); only filled when
  /// RunOptions::RecordLifetimes is set.
  std::vector<RegionLifetime> Lifetimes;
  /// VM backend only: wall-clock split between bytecode compilation and
  /// execution (both zero under the tree walker). Surfaced through
  /// PipelineStats as the `vm:` timings row / `stages/runs/vm` metrics.
  double VmCompileSeconds = 0;
  double VmExecuteSeconds = 0;
};

/// Evaluates \p Prog under completion \p C.
RunResult run(const regions::RegionProgram &Prog, const regions::Completion &C,
              const RunOptions &Options = RunOptions());

} // namespace interp
} // namespace afl

#endif // AFL_INTERP_INTERP_H
