#include "interp/RefInterp.h"

#include "ast/ASTContext.h"
#include "ast/Expr.h"

#include <memory>
#include <optional>
#include <pthread.h>
#include <vector>

using namespace afl;
using namespace afl::ast;
using namespace afl::interp;

namespace {

struct RefValue;
using RefValuePtr = std::shared_ptr<RefValue>;

struct RefEnv {
  Symbol Name;
  RefValuePtr Val;
  std::shared_ptr<RefEnv> Parent;
};
using RefEnvPtr = std::shared_ptr<RefEnv>;

struct RefValue {
  enum class Kind : uint8_t { Int, Bool, Unit, Clos, Pair, Nil, Cons };
  Kind K = Kind::Unit;
  int64_t Int = 0;
  const Expr *Fun = nullptr; // Lambda or Letrec
  RefEnvPtr Env;
  RefValuePtr A, B;
};

class RefMachine {
public:
  RefMachine(const ASTContext &Ctx, uint64_t MaxSteps)
      : Ctx(Ctx), MaxSteps(MaxSteps) {}

  RefResult run(const Expr *Root) {
    std::optional<RefValuePtr> V = eval(Root, nullptr);
    RefResult Out;
    if (!V) {
      Out.Ok = false;
      Out.Error = Err.empty() ? "unknown runtime error" : Err;
      return Out;
    }
    Out.Ok = true;
    Out.ResultText = render(*V, 0);
    return Out;
  }

private:
  std::optional<RefValuePtr> fail(const std::string &Message) {
    if (Err.empty())
      Err = Message;
    return std::nullopt;
  }

  static RefValuePtr mkInt(int64_t I) {
    auto V = std::make_shared<RefValue>();
    V->K = RefValue::Kind::Int;
    V->Int = I;
    return V;
  }
  static RefValuePtr mkBool(bool B) {
    auto V = std::make_shared<RefValue>();
    V->K = RefValue::Kind::Bool;
    V->Int = B;
    return V;
  }

  std::optional<RefValuePtr> lookup(const RefEnvPtr &Env, Symbol Name) {
    for (RefEnv *E = Env.get(); E; E = E->Parent.get())
      if (E->Name == Name)
        return E->Val;
    return fail("unbound variable '" + std::string(Ctx.text(Name)) + "'");
  }

  static RefEnvPtr push(RefEnvPtr Parent, Symbol Name, RefValuePtr Val) {
    auto E = std::make_shared<RefEnv>();
    E->Name = Name;
    E->Val = std::move(Val);
    E->Parent = std::move(Parent);
    return E;
  }

  std::optional<RefValuePtr> eval(const Expr *E, RefEnvPtr Env) {
    if (++Steps > MaxSteps)
      return fail("step limit exceeded");
    if (Depth >= 15000)
      return fail("recursion depth limit exceeded");
    struct Guard {
      uint64_t &D;
      explicit Guard(uint64_t &D) : D(D) { ++D; }
      ~Guard() { --D; }
    } G(Depth);
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return mkInt(cast<IntLitExpr>(E)->value());
    case Expr::Kind::BoolLit:
      return mkBool(cast<BoolLitExpr>(E)->value());
    case Expr::Kind::UnitLit: {
      auto V = std::make_shared<RefValue>();
      V->K = RefValue::Kind::Unit;
      return V;
    }
    case Expr::Kind::Var:
      return lookup(Env, cast<VarExpr>(E)->name());
    case Expr::Kind::Lambda: {
      auto V = std::make_shared<RefValue>();
      V->K = RefValue::Kind::Clos;
      V->Fun = E;
      V->Env = Env;
      return V;
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      std::optional<RefValuePtr> Fn = eval(A->fn(), Env);
      if (!Fn)
        return std::nullopt;
      std::optional<RefValuePtr> Arg = eval(A->arg(), Env);
      if (!Arg)
        return std::nullopt;
      if ((*Fn)->K != RefValue::Kind::Clos)
        return fail("application of a non-closure");
      if (const auto *L = dyn_cast<LambdaExpr>((*Fn)->Fun))
        return eval(L->body(), push((*Fn)->Env, L->param(), *Arg));
      // Recursive closures capture their environment *without* themselves
      // (avoiding a shared_ptr cycle); rebind the function name here.
      const auto *L = cast<LetrecExpr>((*Fn)->Fun);
      RefEnvPtr BodyEnv = push((*Fn)->Env, L->fnName(), *Fn);
      return eval(L->fnBody(), push(std::move(BodyEnv), L->param(), *Arg));
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      std::optional<RefValuePtr> Init = eval(L->init(), Env);
      if (!Init)
        return std::nullopt;
      return eval(L->body(), push(Env, L->name(), *Init));
    }
    case Expr::Kind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      auto V = std::make_shared<RefValue>();
      V->K = RefValue::Kind::Clos;
      V->Fun = E;
      V->Env = Env; // self is rebound at each application (no cycle)
      return eval(L->body(), push(Env, L->fnName(), V));
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      std::optional<RefValuePtr> C = eval(I->cond(), Env);
      if (!C)
        return std::nullopt;
      if ((*C)->K != RefValue::Kind::Bool)
        return fail("if condition is not a boolean");
      return eval((*C)->Int ? I->thenExpr() : I->elseExpr(), Env);
    }
    case Expr::Kind::Pair: {
      const auto *P = cast<PairExpr>(E);
      std::optional<RefValuePtr> A = eval(P->first(), Env);
      if (!A)
        return std::nullopt;
      std::optional<RefValuePtr> B = eval(P->second(), Env);
      if (!B)
        return std::nullopt;
      auto V = std::make_shared<RefValue>();
      V->K = RefValue::Kind::Pair;
      V->A = *A;
      V->B = *B;
      return V;
    }
    case Expr::Kind::Nil: {
      auto V = std::make_shared<RefValue>();
      V->K = RefValue::Kind::Nil;
      return V;
    }
    case Expr::Kind::Cons: {
      const auto *Cn = cast<ConsExpr>(E);
      std::optional<RefValuePtr> H = eval(Cn->head(), Env);
      if (!H)
        return std::nullopt;
      std::optional<RefValuePtr> T = eval(Cn->tail(), Env);
      if (!T)
        return std::nullopt;
      auto V = std::make_shared<RefValue>();
      V->K = RefValue::Kind::Cons;
      V->A = *H;
      V->B = *T;
      return V;
    }
    case Expr::Kind::UnOp: {
      const auto *U = cast<UnOpExpr>(E);
      std::optional<RefValuePtr> V = eval(U->operand(), Env);
      if (!V)
        return std::nullopt;
      switch (U->op()) {
      case UnOpKind::Fst:
        if ((*V)->K != RefValue::Kind::Pair)
          return fail("fst of a non-pair");
        return (*V)->A;
      case UnOpKind::Snd:
        if ((*V)->K != RefValue::Kind::Pair)
          return fail("snd of a non-pair");
        return (*V)->B;
      case UnOpKind::Null:
        if ((*V)->K != RefValue::Kind::Nil && (*V)->K != RefValue::Kind::Cons)
          return fail("null of a non-list");
        return mkBool((*V)->K == RefValue::Kind::Nil);
      case UnOpKind::Hd:
        if ((*V)->K != RefValue::Kind::Cons)
          return fail("hd of an empty or non-list value");
        return (*V)->A;
      case UnOpKind::Tl:
        if ((*V)->K != RefValue::Kind::Cons)
          return fail("tl of an empty or non-list value");
        return (*V)->B;
      }
      return fail("unknown unary operator");
    }
    case Expr::Kind::BinOp: {
      const auto *B = cast<BinOpExpr>(E);
      std::optional<RefValuePtr> L = eval(B->lhs(), Env);
      if (!L)
        return std::nullopt;
      std::optional<RefValuePtr> R = eval(B->rhs(), Env);
      if (!R)
        return std::nullopt;
      int64_t LI = (*L)->Int, RI = (*R)->Int;
      switch (B->op()) {
      case BinOpKind::Add:
        return mkInt(LI + RI);
      case BinOpKind::Sub:
        return mkInt(LI - RI);
      case BinOpKind::Mul:
        return mkInt(LI * RI);
      case BinOpKind::Div:
        if (RI == 0)
          return fail("division by zero");
        return mkInt(LI / RI);
      case BinOpKind::Mod:
        if (RI == 0)
          return fail("mod by zero");
        return mkInt(LI % RI);
      case BinOpKind::Lt:
        return mkBool(LI < RI);
      case BinOpKind::Le:
        return mkBool(LI <= RI);
      case BinOpKind::Eq:
        return mkBool(LI == RI);
      }
      return fail("unknown binary operator");
    }
    }
    return fail("unknown expression kind");
  }

  std::string render(const RefValuePtr &V, unsigned Depth) {
    if (Depth > 64)
      return "...";
    switch (V->K) {
    case RefValue::Kind::Int:
      return std::to_string(V->Int);
    case RefValue::Kind::Bool:
      return V->Int ? "true" : "false";
    case RefValue::Kind::Unit:
      return "()";
    case RefValue::Kind::Clos:
      return "<fn>";
    case RefValue::Kind::Pair: {
      // Built with += rather than operator+ chains: GCC 12's -Wrestrict
      // fires a false positive on the inlined char*+string&& overload.
      std::string Out = "(";
      Out += render(V->A, Depth + 1);
      Out += ", ";
      Out += render(V->B, Depth + 1);
      Out += ")";
      return Out;
    }
    case RefValue::Kind::Nil:
    case RefValue::Kind::Cons: {
      std::string Out = "[";
      const RefValue *Cur = V.get();
      bool First = true;
      while (Cur->K == RefValue::Kind::Cons) {
        if (!First)
          Out += ", ";
        First = false;
        Out += render(Cur->A, Depth + 1);
        Cur = Cur->B.get();
      }
      return Out + "]";
    }
    }
    return "?";
  }

  const ASTContext &Ctx;
  uint64_t MaxSteps;
  uint64_t Steps = 0;
  uint64_t Depth = 0;
  std::string Err;
};

} // namespace

namespace {

/// Like interp::run, evaluation recurses on the host stack; use a
/// dedicated big-stack thread so deep recursion is bounded by the
/// interpreter's own depth guard rather than the thread stack.
struct RefTask {
  RefMachine *M;
  const Expr *Root;
  RefResult Result;
};

void *refTrampoline(void *Arg) {
  auto *Task = static_cast<RefTask *>(Arg);
  Task->Result = Task->M->run(Task->Root);
  return nullptr;
}

} // namespace

RefResult interp::runRef(const Expr *Root, const ASTContext &Ctx,
                         uint64_t MaxSteps) {
  RefMachine M(Ctx, MaxSteps);
  RefTask Task;
  Task.M = &M;
  Task.Root = Root;

  pthread_attr_t Attr;
  pthread_attr_init(&Attr);
  pthread_attr_setstacksize(&Attr, 256 * 1024 * 1024);
  pthread_t Thread;
  if (pthread_create(&Thread, &Attr, refTrampoline, &Task) != 0) {
    pthread_attr_destroy(&Attr);
    return M.run(Root);
  }
  pthread_attr_destroy(&Attr);
  pthread_join(Thread, nullptr);
  return Task.Result;
}
