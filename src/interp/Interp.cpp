#include "interp/Interp.h"

#include "support/Arena.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <pthread.h>
#include <string_view>

using namespace afl;
using namespace afl::interp;
using namespace afl::regions;

namespace {

/// Runtime address: (region index in the store, offset within it).
struct Addr {
  uint32_t Region = 0;
  uint32_t Offset = 0;
};

struct EnvNode;
struct RegEnvNode;

/// A boxed runtime value.
struct Value {
  enum class Kind : uint8_t { Int, Bool, Unit, Clos, RegClos, Pair, Nil, Cons };
  Kind K = Kind::Unit;
  int64_t Int = 0;
  /// Clos: an RLambdaExpr, or an RLetrecExpr whose fnBody is the code (the
  /// ordinary closure created by a region application). RegClos: the
  /// RLetrecExpr itself.
  const RExpr *Fun = nullptr;
  const EnvNode *Env = nullptr;
  const RegEnvNode *RegEnv = nullptr;
  Addr A, B; // Pair components / Cons head+tail
};

/// Persistent value environment (arena-allocated chain).
struct EnvNode {
  VarId Var;
  Addr A;
  const EnvNode *Parent;
};

/// Persistent region environment.
struct RegEnvNode {
  RegionVarId Var;
  uint32_t Region;
  const RegEnvNode *Parent;
};

enum class RegState : uint8_t { Unallocated, Allocated, Deallocated };

struct Region {
  RegState St = RegState::Unallocated;
  std::vector<Value> Vals;
  uint64_t AllocTime = 0;
  uint64_t FreeTime = 0;
  uint64_t ValuesAtFree = 0;
};

class Machine {
public:
  Machine(const RegionProgram &Prog, const Completion &C,
          const RunOptions &Options)
      : Prog(Prog), C(C), Options(Options) {}

  RunResult run();

private:
  //===------------------------------------------------------------------===//
  // Errors
  //===------------------------------------------------------------------===//

  std::optional<Addr> fail(const std::string &Message) {
    if (Err.empty())
      Err = Message;
    return std::nullopt;
  }

  //===------------------------------------------------------------------===//
  // Store operations (all instrumented)
  //===------------------------------------------------------------------===//

  void tick() {
    ++S.Time;
    if (Options.RecordTrace)
      Trace.push_back({S.Time, S.CurValues});
  }

  uint32_t newRegion() {
    Store.emplace_back();
    return static_cast<uint32_t>(Store.size() - 1);
  }

  bool allocRegion(uint32_t R) {
    Region &Reg = Store[R];
    if (Reg.St != RegState::Unallocated) {
      fail("allocation of a region that is not unallocated");
      return false;
    }
    Reg.St = RegState::Allocated;
    ++S.TotalRegionAllocs;
    ++S.CurRegions;
    S.MaxRegions = std::max(S.MaxRegions, S.CurRegions);
    tick();
    Reg.AllocTime = S.Time;
    return true;
  }

  bool freeRegion(uint32_t R) {
    Region &Reg = Store[R];
    if (Reg.St != RegState::Allocated) {
      fail("deallocation of a region that is not allocated");
      return false;
    }
    Reg.St = RegState::Deallocated;
    --S.CurRegions;
    S.CurValues -= Reg.Vals.size();
    Reg.ValuesAtFree = Reg.Vals.size();
    Reg.Vals.clear();
    Reg.Vals.shrink_to_fit();
    tick();
    Reg.FreeTime = S.Time;
    return true;
  }

  std::optional<Addr> write(uint32_t R, Value V, bool AtBot = false) {
    Region &Reg = Store[R];
    if (Reg.St != RegState::Allocated)
      return fail("write to a region that is not allocated");
    if (AtBot && !Reg.Vals.empty()) {
      // Storage-mode reset: destroy the region's current contents.
      S.CurValues -= Reg.Vals.size();
      S.ResetValues += Reg.Vals.size();
      ++S.Resets;
      Reg.Vals.clear();
    }
    Reg.Vals.push_back(std::move(V));
    ++S.Writes;
    ++S.TotalValueAllocs;
    ++S.CurValues;
    S.MaxValues = std::max(S.MaxValues, S.CurValues);
    tick();
    return Addr{R, static_cast<uint32_t>(Reg.Vals.size() - 1)};
  }

  const Value *read(Addr A) {
    Region &Reg = Store[A.Region];
    if (Reg.St != RegState::Allocated) {
      fail("read from a region that is not allocated");
      return nullptr;
    }
    if (A.Offset >= Reg.Vals.size()) {
      // Only reachable when an unsound atbot reset destroyed the value.
      fail("read of a value destroyed by a region reset");
      return nullptr;
    }
    ++S.Reads;
    tick();
    return &Reg.Vals[A.Offset];
  }

  //===------------------------------------------------------------------===//
  // Environments
  //===------------------------------------------------------------------===//

  const EnvNode *pushEnv(const EnvNode *Parent, VarId V, Addr A) {
    return Mem.create<EnvNode>(EnvNode{V, A, Parent});
  }
  const RegEnvNode *pushRegEnv(const RegEnvNode *Parent, RegionVarId V,
                               uint32_t R) {
    return Mem.create<RegEnvNode>(RegEnvNode{V, R, Parent});
  }

  std::optional<Addr> lookupVar(const EnvNode *Env, VarId V) {
    for (; Env; Env = Env->Parent)
      if (Env->Var == V)
        return Env->A;
    return fail("unbound variable '" + Prog.varInfo(V).Name +
                "' at runtime (interpreter bug)");
  }

  bool lookupRegion(const RegEnvNode *REnv, RegionVarId V, uint32_t &Out) {
    for (; REnv; REnv = REnv->Parent) {
      if (REnv->Var == V) {
        Out = REnv->Region;
        return true;
      }
    }
    fail("unbound region variable r" + std::to_string(V) +
         " at runtime (analysis bug)");
    return false;
  }

  //===------------------------------------------------------------------===//
  // Completion operations
  //===------------------------------------------------------------------===//

  bool applyOps(const std::vector<COp> *Ops, const RegEnvNode *REnv) {
    if (!Ops)
      return true;
    for (const COp &Op : *Ops) {
      uint32_t R;
      if (!lookupRegion(REnv, Op.Region, R))
        return false;
      switch (Op.Kind) {
      case COpKind::AllocBefore:
      case COpKind::AllocAfter:
        if (!allocRegion(R))
          return false;
        break;
      case COpKind::FreeBefore:
      case COpKind::FreeAfter:
      case COpKind::FreeApp:
        if (!freeRegion(R))
          return false;
        break;
      }
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Evaluation
  //===------------------------------------------------------------------===//

  std::optional<Addr> eval(const RExpr *N, const EnvNode *Env,
                           const RegEnvNode *REnv);
  std::optional<Addr> evalCore(const RExpr *N, const EnvNode *Env,
                               const RegEnvNode *REnv);

  /// Resolves the write region of \p N through \p REnv and writes \p V,
  /// honoring the node's storage mode when modes are enabled.
  std::optional<Addr> writeAt(const RExpr *N, const RegEnvNode *REnv,
                              Value V) {
    assert(N->hasWriteRegion() && "node writes no value");
    uint32_t R;
    if (!lookupRegion(REnv, N->writeRegion(), R))
      return std::nullopt;
    bool AtBot = Options.Modes && Options.Modes->isAtBot(N->id());
    return write(R, std::move(V), AtBot);
  }

  std::string render(Addr A, unsigned Depth = 0);

  /// RAII depth counter for the recursion guard.
  struct DepthGuard {
    uint32_t &D;
    explicit DepthGuard(uint32_t &D) : D(D) { ++D; }
    ~DepthGuard() { --D; }
  };

  const RegionProgram &Prog;
  const Completion &C;
  const RunOptions &Options;
  uint32_t Depth = 0;
  Arena Mem;
  std::vector<Region> Store;
  Stats S;
  std::vector<TracePoint> Trace;
  std::string Err;
};

std::optional<Addr> Machine::eval(const RExpr *N, const EnvNode *Env,
                                  const RegEnvNode *REnv) {
  if (++S.Steps > Options.MaxSteps)
    return fail("step limit exceeded");
  if (Depth >= Options.MaxDepth)
    return fail("recursion depth limit exceeded");
  DepthGuard Guard(Depth);

  // letregion bindings wrap the node (including its completion ops).
  for (RegionVarId RV : N->boundRegions())
    REnv = pushRegEnv(REnv, RV, newRegion());

  if (!applyOps(C.preOps(N->id()), REnv))
    return std::nullopt;

  std::optional<Addr> Result = evalCore(N, Env, REnv);
  if (!Result)
    return std::nullopt;

  if (!applyOps(C.postOps(N->id()), REnv))
    return std::nullopt;

  // Leaving the letregion scope: each introduced region must have
  // completed its lifetime (deallocated) or never have been allocated.
  for (RegionVarId RV : N->boundRegions()) {
    uint32_t R;
    if (!lookupRegion(REnv, RV, R))
      return std::nullopt;
    if (Store[R].St == RegState::Allocated)
      return fail("region r" + std::to_string(RV) +
                  " still allocated at letregion exit");
  }
  return Result;
}

std::optional<Addr> Machine::evalCore(const RExpr *N, const EnvNode *Env,
                                      const RegEnvNode *REnv) {
  switch (N->kind()) {
  case RExpr::Kind::Int: {
    Value V;
    V.K = Value::Kind::Int;
    V.Int = cast<RIntExpr>(N)->value();
    return writeAt(N, REnv, V);
  }
  case RExpr::Kind::Bool: {
    Value V;
    V.K = Value::Kind::Bool;
    V.Int = cast<RBoolExpr>(N)->value() ? 1 : 0;
    return writeAt(N, REnv, V);
  }
  case RExpr::Kind::Unit: {
    Value V;
    V.K = Value::Kind::Unit;
    return writeAt(N, REnv, V);
  }
  case RExpr::Kind::Var:
    return lookupVar(Env, cast<RVarExpr>(N)->var());
  case RExpr::Kind::Lambda: {
    Value V;
    V.K = Value::Kind::Clos;
    V.Fun = N;
    V.Env = Env;
    V.RegEnv = REnv;
    return writeAt(N, REnv, V);
  }
  case RExpr::Kind::App: {
    const auto *A = cast<RAppExpr>(N);
    std::optional<Addr> FnA = eval(A->fn(), Env, REnv);
    if (!FnA)
      return std::nullopt;
    std::optional<Addr> ArgA = eval(A->arg(), Env, REnv);
    if (!ArgA)
      return std::nullopt;
    const Value *Clos = read(*FnA);
    if (!Clos)
      return std::nullopt;
    if (Clos->K != Value::Kind::Clos)
      return fail("application of a non-closure value");
    // The closure has been fetched; free_app point (§1).
    const Value ClosCopy = *Clos; // freeRegion may drop the closure's cell
    if (!applyOps(C.freeAppOps(N->id()), REnv))
      return std::nullopt;
    if (const auto *L = dyn_cast<RLambdaExpr>(ClosCopy.Fun)) {
      const EnvNode *BodyEnv = pushEnv(ClosCopy.Env, L->param(), *ArgA);
      return eval(L->body(), BodyEnv, ClosCopy.RegEnv);
    }
    const auto *L = cast<RLetrecExpr>(ClosCopy.Fun);
    const EnvNode *BodyEnv = pushEnv(ClosCopy.Env, L->param(), *ArgA);
    return eval(L->fnBody(), BodyEnv, ClosCopy.RegEnv);
  }
  case RExpr::Kind::Let: {
    const auto *L = cast<RLetExpr>(N);
    std::optional<Addr> InitA = eval(L->init(), Env, REnv);
    if (!InitA)
      return std::nullopt;
    return eval(L->body(), pushEnv(Env, L->var(), *InitA), REnv);
  }
  case RExpr::Kind::Letrec: {
    const auto *L = cast<RLetrecExpr>(N);
    Value V;
    V.K = Value::Kind::RegClos;
    V.Fun = N;
    V.RegEnv = REnv;
    V.Env = nullptr; // patched below (the closure environment contains f)
    std::optional<Addr> SelfA = writeAt(N, REnv, V);
    if (!SelfA)
      return std::nullopt;
    const EnvNode *BodyEnv = pushEnv(Env, L->fn(), *SelfA);
    Store[SelfA->Region].Vals[SelfA->Offset].Env = BodyEnv;
    return eval(L->body(), BodyEnv, REnv);
  }
  case RExpr::Kind::RegApp: {
    const auto *RA = cast<RRegAppExpr>(N);
    std::optional<Addr> FnA = lookupVar(Env, RA->fn());
    if (!FnA)
      return std::nullopt;
    const Value *RC = read(*FnA);
    if (!RC)
      return std::nullopt;
    if (RC->K != Value::Kind::RegClos)
      return fail("region application of a non-region-closure");
    const auto *L = cast<RLetrecExpr>(RC->Fun);
    assert(L->formals().size() == RA->actuals().size() &&
           "region arity mismatch");
    const RegEnvNode *ClosREnv = RC->RegEnv;
    for (size_t I = 0; I != RA->actuals().size(); ++I) {
      uint32_t R;
      if (!lookupRegion(REnv, RA->actuals()[I], R))
        return std::nullopt;
      ClosREnv = pushRegEnv(ClosREnv, L->formals()[I], R);
    }
    Value V;
    V.K = Value::Kind::Clos;
    V.Fun = L;
    V.Env = RC->Env;
    V.RegEnv = ClosREnv;
    return writeAt(N, REnv, V);
  }
  case RExpr::Kind::If: {
    const auto *I = cast<RIfExpr>(N);
    std::optional<Addr> CondA = eval(I->cond(), Env, REnv);
    if (!CondA)
      return std::nullopt;
    const Value *CondV = read(*CondA);
    if (!CondV)
      return std::nullopt;
    if (CondV->K != Value::Kind::Bool)
      return fail("if condition is not a boolean");
    return eval(CondV->Int ? I->thenExpr() : I->elseExpr(), Env, REnv);
  }
  case RExpr::Kind::Pair: {
    const auto *P = cast<RPairExpr>(N);
    std::optional<Addr> FirstA = eval(P->first(), Env, REnv);
    if (!FirstA)
      return std::nullopt;
    std::optional<Addr> SecondA = eval(P->second(), Env, REnv);
    if (!SecondA)
      return std::nullopt;
    Value V;
    V.K = Value::Kind::Pair;
    V.A = *FirstA;
    V.B = *SecondA;
    return writeAt(N, REnv, V);
  }
  case RExpr::Kind::Nil: {
    Value V;
    V.K = Value::Kind::Nil;
    return writeAt(N, REnv, V);
  }
  case RExpr::Kind::Cons: {
    const auto *Cn = cast<RConsExpr>(N);
    std::optional<Addr> HeadA = eval(Cn->head(), Env, REnv);
    if (!HeadA)
      return std::nullopt;
    std::optional<Addr> TailA = eval(Cn->tail(), Env, REnv);
    if (!TailA)
      return std::nullopt;
    Value V;
    V.K = Value::Kind::Cons;
    V.A = *HeadA;
    V.B = *TailA;
    return writeAt(N, REnv, V);
  }
  case RExpr::Kind::UnOp: {
    const auto *U = cast<RUnOpExpr>(N);
    std::optional<Addr> OpA = eval(U->operand(), Env, REnv);
    if (!OpA)
      return std::nullopt;
    const Value *V = read(*OpA);
    if (!V)
      return std::nullopt;
    switch (U->op()) {
    case ast::UnOpKind::Fst:
      if (V->K != Value::Kind::Pair)
        return fail("fst of a non-pair");
      return V->A;
    case ast::UnOpKind::Snd:
      if (V->K != Value::Kind::Pair)
        return fail("snd of a non-pair");
      return V->B;
    case ast::UnOpKind::Null: {
      if (V->K != Value::Kind::Nil && V->K != Value::Kind::Cons)
        return fail("null of a non-list");
      Value R;
      R.K = Value::Kind::Bool;
      R.Int = V->K == Value::Kind::Nil ? 1 : 0;
      return writeAt(N, REnv, R);
    }
    case ast::UnOpKind::Hd:
      if (V->K != Value::Kind::Cons)
        return fail("hd of an empty or non-list value");
      return V->A;
    case ast::UnOpKind::Tl:
      if (V->K != Value::Kind::Cons)
        return fail("tl of an empty or non-list value");
      return V->B;
    }
    return fail("unknown unary operator");
  }
  case RExpr::Kind::BinOp: {
    const auto *B = cast<RBinOpExpr>(N);
    std::optional<Addr> LhsA = eval(B->lhs(), Env, REnv);
    if (!LhsA)
      return std::nullopt;
    std::optional<Addr> RhsA = eval(B->rhs(), Env, REnv);
    if (!RhsA)
      return std::nullopt;
    const Value *LV = read(*LhsA);
    if (!LV)
      return std::nullopt;
    int64_t L = LV->Int;
    const Value *RV = read(*RhsA);
    if (!RV)
      return std::nullopt;
    int64_t R = RV->Int;
    Value Out;
    Out.K = Value::Kind::Int;
    switch (B->op()) {
    case ast::BinOpKind::Add:
      Out.Int = L + R;
      break;
    case ast::BinOpKind::Sub:
      Out.Int = L - R;
      break;
    case ast::BinOpKind::Mul:
      Out.Int = L * R;
      break;
    case ast::BinOpKind::Div:
      if (R == 0)
        return fail("division by zero");
      Out.Int = L / R;
      break;
    case ast::BinOpKind::Mod:
      if (R == 0)
        return fail("mod by zero");
      Out.Int = L % R;
      break;
    case ast::BinOpKind::Lt:
      Out.K = Value::Kind::Bool;
      Out.Int = L < R;
      break;
    case ast::BinOpKind::Le:
      Out.K = Value::Kind::Bool;
      Out.Int = L <= R;
      break;
    case ast::BinOpKind::Eq:
      Out.K = Value::Kind::Bool;
      Out.Int = L == R;
      break;
    }
    return writeAt(N, REnv, Out);
  }
  }
  return fail("unknown expression kind");
}

std::string Machine::render(Addr A, unsigned Depth) {
  if (Depth > 64)
    return "...";
  const Region &Reg = Store[A.Region];
  if (Reg.St != RegState::Allocated)
    return "<freed>";
  const Value &V = Reg.Vals[A.Offset];
  switch (V.K) {
  case Value::Kind::Int:
    return std::to_string(V.Int);
  case Value::Kind::Bool:
    return V.Int ? "true" : "false";
  case Value::Kind::Unit:
    return "()";
  case Value::Kind::Clos:
    return "<fn>";
  case Value::Kind::RegClos:
    return "<regfn>";
  case Value::Kind::Pair: {
    // Built with += rather than operator+ chains: GCC 12's -Wrestrict
    // fires a false positive on the inlined char*+string&& overload.
    std::string Out = "(";
    Out += render(V.A, Depth + 1);
    Out += ", ";
    Out += render(V.B, Depth + 1);
    Out += ")";
    return Out;
  }
  case Value::Kind::Nil:
  case Value::Kind::Cons: {
    std::string Out = "[";
    Addr Cur = A;
    bool First = true;
    for (unsigned I = 0; I < 100000; ++I) {
      const Region &CurReg = Store[Cur.Region];
      if (CurReg.St != RegState::Allocated)
        return Out + "<freed>]";
      const Value &Cell = CurReg.Vals[Cur.Offset];
      if (Cell.K == Value::Kind::Nil)
        break;
      if (!First)
        Out += ", ";
      First = false;
      Out += render(Cell.A, Depth + 1);
      Cur = Cell.B;
    }
    return Out + "]";
  }
  }
  return "?";
}

RunResult Machine::run() {
  // Bind the global (result) regions; the completion decides when they
  // are allocated. They are reclaimed by program exit, not by frees.
  const RegEnvNode *REnv = nullptr;
  for (RegionVarId RV : Prog.GlobalRegions)
    REnv = pushRegEnv(REnv, RV, newRegion());

  std::optional<Addr> Result = eval(Prog.Root, nullptr, REnv);
  RunResult Out;
  Out.Trace = std::move(Trace);
  if (!Result) {
    Out.Ok = false;
    Out.Error = Err.empty() ? "unknown runtime error" : Err;
    Out.S = S;
    return Out;
  }
  S.FinalValues = S.CurValues;
  Out.Ok = true;
  Out.ResultText = render(*Result);
  Out.S = S;
  if (Options.RecordLifetimes) {
    Out.Lifetimes.reserve(Store.size());
    for (const Region &Reg : Store) {
      RegionLifetime L;
      L.AllocTime = Reg.AllocTime;
      L.FreeTime = Reg.FreeTime;
      L.ValuesAtFree = Reg.St == RegState::Allocated
                           ? Reg.Vals.size()
                           : Reg.ValuesAtFree;
      Out.Lifetimes.push_back(L);
    }
  }
  return Out;
}

} // namespace

namespace {

/// Evaluation recurses on the host stack (one C++ frame per nested
/// expression), so deep — but legitimate — recursion needs more than the
/// default thread stack, especially in unoptimized builds. Run the
/// machine on a dedicated big-stack thread.
struct RunTask {
  Machine *M;
  RunResult Result;
};

void *runTrampoline(void *Arg) {
  auto *Task = static_cast<RunTask *>(Arg);
  Task->Result = Task->M->run();
  return nullptr;
}

} // namespace

bool interp::parseBackendName(std::string_view Text, BackendKind &Out) {
  if (Text == "vm") {
    Out = BackendKind::Vm;
    return true;
  }
  if (Text == "tree") {
    Out = BackendKind::Tree;
    return true;
  }
  return false;
}

BackendKind interp::defaultBackend() {
  static const BackendKind Cached = [] {
    BackendKind B = BackendKind::Vm;
    // Unset, empty, or unrecognized: the library stays lenient (aflc
    // validates the variable strictly and exits with usage instead).
    if (const char *Env = std::getenv("AFL_INTERP"))
      (void)parseBackendName(Env, B);
    return B;
  }();
  return Cached;
}

RunResult interp::run(const RegionProgram &Prog, const Completion &C,
                      const RunOptions &Options) {
  if (Options.Backend == BackendKind::Vm) {
    // The VM holds explicit frames, so no big-stack thread is needed:
    // MaxDepth bounds VM frame vectors, not C++ recursion. Bytecode
    // compilation recurses over the IR, which the parser already bounds.
    using Clock = std::chrono::steady_clock;
    Clock::time_point T0 = Clock::now();
    vm::VmProgram P = vm::compile(Prog, C, Options.Modes);
    Clock::time_point T1 = Clock::now();
    RunResult Out = vm::execute(P, Options);
    Clock::time_point T2 = Clock::now();
    Out.VmCompileSeconds = std::chrono::duration<double>(T1 - T0).count();
    Out.VmExecuteSeconds = std::chrono::duration<double>(T2 - T1).count();
    return Out;
  }

  Machine M(Prog, C, Options);
  RunTask Task;
  Task.M = &M;

  pthread_attr_t Attr;
  pthread_attr_init(&Attr);
  pthread_attr_setstacksize(&Attr, 256 * 1024 * 1024);
  pthread_t Thread;
  if (pthread_create(&Thread, &Attr, runTrampoline, &Task) != 0) {
    pthread_attr_destroy(&Attr);
    // Fall back to the caller's stack (still guarded by MaxDepth).
    return M.run();
  }
  pthread_attr_destroy(&Attr);
  pthread_join(Thread, nullptr);
  return Task.Result;
}
