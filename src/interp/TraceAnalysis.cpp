#include "interp/TraceAnalysis.h"

using namespace afl;
using namespace afl::interp;

TraceSummary interp::summarizeTrace(const std::vector<TracePoint> &Trace) {
  TraceSummary S;
  if (Trace.empty())
    return S;
  for (const TracePoint &P : Trace) {
    if (P.ValuesHeld > S.Peak) {
      S.Peak = P.ValuesHeld;
      S.PeakTime = P.Time;
    }
    S.SpaceTime += P.ValuesHeld;
  }
  S.Final = Trace.back().ValuesHeld;
  S.Duration = Trace.back().Time;
  S.Mean = static_cast<double>(S.SpaceTime) /
           static_cast<double>(Trace.size());
  return S;
}
