//===----------------------------------------------------------------------===//
///
/// \file
/// A plain (region-oblivious, garbage-collected-by-shared_ptr) reference
/// interpreter for the surface language. Used as the differential-testing
/// oracle: a completed region program must compute the same value.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_INTERP_REFINTERP_H
#define AFL_INTERP_REFINTERP_H

#include <cstdint>
#include <string>

namespace afl {
namespace ast {
class ASTContext;
class Expr;
} // namespace ast

namespace interp {

struct RefResult {
  bool Ok = false;
  std::string Error;
  /// Rendered value in the same format as interp::run.
  std::string ResultText;
};

/// Evaluates surface expression \p Root directly. \p MaxSteps bounds the
/// number of evaluation steps.
RefResult runRef(const ast::Expr *Root, const ast::ASTContext &Ctx,
                 uint64_t MaxSteps = 200'000'000);

} // namespace interp
} // namespace afl

#endif // AFL_INTERP_REFINTERP_H
