//===----------------------------------------------------------------------===//
///
/// \file
/// Debug rendering and statistics for constraint systems: per-kind
/// counts, choice-point breakdowns, and a full textual dump in the
/// paper's notation ((s1, c, s2)a triples, s = A constraints, s1 = s2).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CONSTRAINTS_CONSTRAINTPRINTER_H
#define AFL_CONSTRAINTS_CONSTRAINTPRINTER_H

#include "constraints/ConstraintGen.h"

#include <string>

namespace afl {
namespace constraints {

/// Per-kind breakdown of a generated system.
struct SystemStats {
  size_t StateVars = 0;
  size_t BoolVars = 0;
  size_t Equalities = 0;
  size_t AllocTriples = 0;
  size_t DeallocTriples = 0;
  size_t RestrictedStates = 0; ///< states with initial domain != {U,A,D}
  size_t AllocBeforeChoices = 0;
  size_t FreeAfterChoices = 0;
  size_t FreeAppChoices = 0;
};

/// Computes the breakdown for \p Gen.
SystemStats systemStats(const GenResult &Gen);

/// One-line summary, e.g. "1423 states, 210 bools, 890 eq, ...".
std::string summarize(const GenResult &Gen);

/// Full dump (one constraint per line); intended for small systems.
std::string dumpSystem(const GenResult &Gen);

} // namespace constraints
} // namespace afl

#endif // AFL_CONSTRAINTS_CONSTRAINTPRINTER_H
