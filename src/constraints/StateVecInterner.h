//===----------------------------------------------------------------------===//
///
/// \file
/// StateVecInterner: hash-consing for the *shapes* of constraint
/// generation's per-context state vectors. A state vector maps region
/// colors to state variables in ascending color order; across contexts
/// the variable halves differ but the color halves repeat massively
/// (every context of one expression family sees the same effect color
/// set). Interning the color half — the shape — the way closure value
/// sets are interned (support/SetInterner.h) buys two things:
///
///   * a state vector becomes {ShapeId, parallel variable array}, so
///     same-shape operations (the common case: a node's In/Out vectors,
///     its chain updates, its children's projections onto it) are direct
///     index loops with no searching at all;
///   * cross-shape operations (projection onto a subset, equating the
///     common colors of caller and callee vectors) are memoized per shape
///     pair: the first encounter computes an index map, every repeat is
///     one hash lookup followed by a gather loop.
///
/// Iteration order over a shape is ascending color order, so constraint
/// emission through interned shapes is byte-identical to emission through
/// the per-vector binary searches it replaces. Unlike SetInterner, the
/// canonical shapes live in a deque: `colors()` references stay valid
/// across later interning (the generator holds one while recursing into
/// children, which intern their own shapes).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CONSTRAINTS_STATEVECINTERNER_H
#define AFL_CONSTRAINTS_STATEVECINTERNER_H

#include "closure/AbstractEnv.h"
#include "support/FlatSet.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

namespace afl {
namespace constraints {

class StateVecInterner {
public:
  using ShapeId = uint32_t;
  /// Shape id 0 is always the empty shape (contexts with no effect).
  static constexpr ShapeId Empty = 0;

  StateVecInterner() {
    Shapes.emplace_back();
    Buckets.emplace(hashColors(Shapes[0]), std::vector<ShapeId>{Empty});
  }

  /// Interns \p Colors, returning the dense id of the canonical copy.
  ShapeId intern(const FlatSet<closure::Color> &Colors) {
    uint64_t H = hashColors(Colors);
    std::vector<ShapeId> &Bucket = Buckets[H];
    for (ShapeId Id : Bucket)
      if (Shapes[Id] == Colors)
        return Id;
    ShapeId Id = static_cast<ShapeId>(Shapes.size());
    Shapes.push_back(Colors);
    Bucket.push_back(Id);
    return Id;
  }

  /// The canonical color set of \p Id. The reference is stable across
  /// later interning.
  const FlatSet<closure::Color> &colors(ShapeId Id) const {
    return Shapes[Id];
  }

  size_t size(ShapeId Id) const { return Shapes[Id].size(); }

  /// Number of distinct shapes interned (including the empty shape).
  size_t numShapes() const { return Shapes.size(); }

  /// Index of \p C within shape \p Id, or FlatSet<Color>::npos.
  size_t indexOf(ShapeId Id, closure::Color C) const {
    return Shapes[Id].indexOf(C);
  }

  /// Index map for projecting a \p From-shaped vector onto shape \p To:
  /// entry i is the position in \p From of \p To's i-th color. Every
  /// color of \p To must be present in \p From. Memoized per (From, To).
  const std::vector<uint32_t> &projection(ShapeId From, ShapeId To) {
    auto [It, Inserted] = ProjCache.try_emplace(key(From, To));
    if (Inserted) {
      const FlatSet<closure::Color> &F = Shapes[From];
      const FlatSet<closure::Color> &T = Shapes[To];
      std::vector<uint32_t> &Map = It->second;
      Map.reserve(T.size());
      // Both shapes ascend, so one linear sweep finds every position.
      size_t IF = 0;
      for (closure::Color C : T) {
        while (IF != F.size() && F[IF] < C)
          ++IF;
        assert(IF != F.size() && F[IF] == C &&
               "projection target color missing from source shape");
        Map.push_back(static_cast<uint32_t>(IF));
      }
    }
    return It->second;
  }

  /// Positions of the common colors of shapes \p A and \p B, in ascending
  /// color order: (index in A, index in B) pairs. Memoized per (A, B).
  const std::vector<std::pair<uint32_t, uint32_t>> &common(ShapeId A,
                                                           ShapeId B) {
    auto [It, Inserted] = CommonCache.try_emplace(key(A, B));
    if (Inserted) {
      const FlatSet<closure::Color> &SA = Shapes[A];
      const FlatSet<closure::Color> &SB = Shapes[B];
      std::vector<std::pair<uint32_t, uint32_t>> &Pairs = It->second;
      size_t IA = 0, IB = 0;
      while (IA != SA.size() && IB != SB.size()) {
        if (SA[IA] < SB[IB])
          ++IA;
        else if (SB[IB] < SA[IA])
          ++IB;
        else {
          Pairs.push_back(
              {static_cast<uint32_t>(IA), static_cast<uint32_t>(IB)});
          ++IA;
          ++IB;
        }
      }
    }
    return It->second;
  }

private:
  static uint64_t key(ShapeId A, ShapeId B) {
    return (static_cast<uint64_t>(A) << 32) | B;
  }

  static uint64_t hashColors(const FlatSet<closure::Color> &S) {
    uint64_t H = 0xcbf29ce484222325ull;
    for (closure::Color X : S) {
      H ^= static_cast<uint64_t>(X) + 0x9e3779b97f4a7c15ull;
      H *= 0x100000001b3ull;
    }
    return H;
  }

  std::deque<FlatSet<closure::Color>> Shapes;
  std::unordered_map<uint64_t, std::vector<ShapeId>> Buckets;
  std::unordered_map<uint64_t, std::vector<uint32_t>> ProjCache;
  std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>>
      CommonCache;
};

} // namespace constraints
} // namespace afl

#endif // AFL_CONSTRAINTS_STATEVECINTERNER_H
