//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint generation (paper §4.2, Fig. 4). For every (expression,
/// abstract region environment) context discovered by the closure
/// analysis, state vectors describe the region states at the context's in
/// and out program points, linked through:
///
///   * a pre-chain of potential `alloc_before` points (one allocation
///     triple per region in the node's overall effect);
///   * the node's own semantics: allocation constraints where it reads or
///     writes regions, and equality links to its children's vectors;
///   * at applications, a `free_app` choice point on the closure's region
///     between argument evaluation and the callee body, plus caller/callee
///     equality constraints over the call's effect colors (set B) — other
///     caller regions (set C) pass through state-polymorphically;
///   * a post-chain of potential `free_after` points.
///
/// Boolean variables are shared across contexts generated from the same
/// syntactic point, so the extracted completion is valid in all contexts.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CONSTRAINTS_CONSTRAINTGEN_H
#define AFL_CONSTRAINTS_CONSTRAINTGEN_H

#include "closure/ClosureAnalysis.h"
#include "constraints/ConstraintSystem.h"
#include "regions/Completion.h"
#include "regions/RegionProgram.h"

#include <algorithm>
#include <map>

namespace afl {
namespace constraints {

/// A potential completion operation and its boolean variable.
struct ChoicePoint {
  regions::RNodeId Node = 0;
  regions::COpKind Kind = regions::COpKind::AllocBefore;
  regions::RegionVarId Region = 0;
  BoolVarId B = 0;
};

/// Ablation switches for the §4.2 choice-point pre-pass. Defaults
/// reproduce the paper; disabling individual choices quantifies how much
/// each contributes (bench_ablation).
struct GenOptions {
  /// Generate free_app choice points at applications (§1).
  bool FreeApp = true;
  /// Generate alloc_before choice points at *every* node. When false,
  /// allocation can only happen where a region is introduced (its
  /// letregion node / program entry) — the lexical discipline.
  bool LateAlloc = true;
  /// Generate free_after choice points at *every* node. When false,
  /// deallocation can only happen at the introducing letregion node.
  bool EarlyFree = true;
};

/// Counters for the sharded-emission side of generation: the shape
/// interner and the union-find finalized into component shards.
struct ShardingStats {
  /// Connected components of the emitted system (finalized shards).
  size_t Shards = 0;
  /// Constraint count of the largest shard.
  size_t LargestShardConstraints = 0;
  /// Distinct state-vector shapes interned across all contexts.
  size_t InternedShapes = 0;
  /// Wall time to finalize the union-find into CSR shard tables.
  double FinalizeSeconds = 0.0;

  /// Batch aggregation: sums, except the largest-shard maximum.
  void accumulate(const ShardingStats &O) {
    Shards += O.Shards;
    LargestShardConstraints =
        std::max(LargestShardConstraints, O.LargestShardConstraints);
    InternedShapes += O.InternedShapes;
    FinalizeSeconds += O.FinalizeSeconds;
  }
};

/// Generated system plus the choice-point index used to extract the
/// completion from a solution.
struct GenResult {
  ConstraintSystem Sys;
  std::vector<ChoicePoint> Choices;
  /// Number of (node, environment) contexts constrained.
  size_t NumContexts = 0;
  /// Number of application edges where caller/callee effect colors did not
  /// align (handled by conservative pinning; see DESIGN.md limitations).
  size_t NumPinnedCalls = 0;
  /// Subset of NumPinnedCalls pinned because a shared free region sits in
  /// the callee's widened (canonically recolored) environment classes —
  /// its color no longer certifies caller/callee agreement, so the edge
  /// takes the conservative path. The widening precision harness reads
  /// this as the constraint-level cost of the merge
  /// (docs/ANALYSIS_CORE.md, widening soundness).
  size_t NumWidenedPinned = 0;
  /// Sharded-emission counters (shards are finalized eagerly by
  /// generateConstraints so the solver never pays component discovery).
  ShardingStats Sharding;
};

/// Generates the constraint system for \p Prog using \p CA's results.
GenResult generateConstraints(const regions::RegionProgram &Prog,
                              closure::ClosureAnalysis &CA,
                              const GenOptions &Options = GenOptions());

} // namespace constraints
} // namespace afl

#endif // AFL_CONSTRAINTS_CONSTRAINTGEN_H
