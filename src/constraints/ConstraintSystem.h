//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint language of paper §4.1. Each *state variable* ranges
/// over the region states {U, A, D} (unallocated / allocated /
/// deallocated); each *boolean variable* encodes whether a potential
/// allocation or deallocation point is realized. Constraints:
///
///   * equality          s1 = s2
///   * allocation        s = A                  (region accessed here)
///   * allocation triple (s1, b, s2)_a :  b → (s1 = U ∧ s2 = A),
///                                       ¬b → s1 = s2
///   * deallocation triple (s1, b, s2)_d: b → (s1 = A ∧ s2 = D),
///                                       ¬b → s1 = s2
///
/// Domains are bitmasks; the solver performs arc-consistency style
/// propagation over them.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H
#define AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace afl {
namespace constraints {

using StateVarId = uint32_t;
using BoolVarId = uint32_t;

/// State domain bits.
enum : uint8_t {
  StU = 1,
  StA = 2,
  StD = 4,
  StAny = StU | StA | StD,
};

/// Boolean domain bits.
enum : uint8_t {
  BFalse = 1,
  BTrue = 2,
  BAny = BFalse | BTrue,
};

/// A constraint over state/boolean variables.
struct Constraint {
  enum class Kind : uint8_t { Eq, AllocTriple, DeallocTriple };
  Kind K;
  StateVarId S1 = 0;
  StateVarId S2 = 0;
  BoolVarId B = 0; // triples only
};

/// Variable store + constraint list + occurrence index.
class ConstraintSystem {
public:
  StateVarId newState(uint8_t Domain = StAny) {
    StateDom.push_back(Domain);
    return static_cast<StateVarId>(StateDom.size() - 1);
  }

  BoolVarId newBool() {
    BoolDom.push_back(BAny);
    return static_cast<BoolVarId>(BoolDom.size() - 1);
  }

  void addEq(StateVarId S1, StateVarId S2) {
    if (S1 == S2)
      return;
    addConstraint({Constraint::Kind::Eq, S1, S2, 0});
  }
  void addAllocTriple(StateVarId S1, BoolVarId B, StateVarId S2) {
    addConstraint({Constraint::Kind::AllocTriple, S1, S2, B});
  }
  void addDeallocTriple(StateVarId S1, BoolVarId B, StateVarId S2) {
    addConstraint({Constraint::Kind::DeallocTriple, S1, S2, B});
  }

  /// Initial domain restriction (e.g. "this state is A": mask StA).
  void restrictState(StateVarId S, uint8_t Mask) { StateDom[S] &= Mask; }

  size_t numStateVars() const { return StateDom.size(); }
  size_t numBoolVars() const { return BoolDom.size(); }
  size_t numConstraints() const { return Cons.size(); }

  /// Number of constraints of one kind (e.g. the solver preprocessing
  /// proof obligation: zero `Eq` constraints post-simplification).
  size_t numConstraintsOfKind(Constraint::Kind K) const {
    size_t N = 0;
    for (const Constraint &C : Cons)
      N += C.K == K;
    return N;
  }

  /// Contiguous view of one variable's occurrence list (ascending
  /// constraint indices).
  struct OccRange {
    const uint32_t *B = nullptr, *E = nullptr;
    const uint32_t *begin() const { return B; }
    const uint32_t *end() const { return E; }
    size_t size() const { return static_cast<size_t>(E - B); }
  };

  /// Constraints mentioning state variable \p S. The index is CSR-shaped
  /// (one flat offset array + one flat data array) and built lazily on
  /// first access: generation only appends constraints and never pays for
  /// it, and building it once afterwards is two linear passes — the
  /// per-variable vector-of-vectors it replaces made `addConstraint` the
  /// generation hot spot via hundreds of thousands of small allocations.
  OccRange stateOcc(StateVarId S) const {
    ensureOcc();
    return {SOccData.data() + SOccStart[S], SOccData.data() + SOccStart[S + 1]};
  }

  /// Constraints mentioning boolean variable \p B (triples only).
  OccRange boolOcc(BoolVarId V) const {
    ensureOcc();
    return {BOccData.data() + BOccStart[V], BOccData.data() + BOccStart[V + 1]};
  }

  // Solver access.
  std::vector<uint8_t> StateDom;
  std::vector<uint8_t> BoolDom;
  std::vector<Constraint> Cons;

private:
  void addConstraint(Constraint C) { Cons.push_back(C); }

  void ensureOcc() const {
    if (OccConsBuilt == Cons.size() &&
        SOccStart.size() == StateDom.size() + 1 &&
        BOccStart.size() == BoolDom.size() + 1)
      return;
    SOccStart.assign(StateDom.size() + 1, 0);
    BOccStart.assign(BoolDom.size() + 1, 0);
    for (const Constraint &C : Cons) {
      ++SOccStart[C.S1 + 1];
      ++SOccStart[C.S2 + 1];
      if (C.K != Constraint::Kind::Eq)
        ++BOccStart[C.B + 1];
    }
    for (size_t I = 1; I < SOccStart.size(); ++I)
      SOccStart[I] += SOccStart[I - 1];
    for (size_t I = 1; I < BOccStart.size(); ++I)
      BOccStart[I] += BOccStart[I - 1];
    SOccData.resize(SOccStart.back());
    BOccData.resize(BOccStart.back());
    // Fill with a moving cursor per variable; iterating constraints in
    // index order keeps each list ascending — the same order the old
    // per-variable push_back produced.
    std::vector<uint32_t> SCur(SOccStart.begin(), SOccStart.end() - 1);
    std::vector<uint32_t> BCur(BOccStart.begin(), BOccStart.end() - 1);
    for (uint32_t Idx = 0; Idx != Cons.size(); ++Idx) {
      const Constraint &C = Cons[Idx];
      SOccData[SCur[C.S1]++] = Idx;
      SOccData[SCur[C.S2]++] = Idx;
      if (C.K != Constraint::Kind::Eq)
        BOccData[BCur[C.B]++] = Idx;
    }
    OccConsBuilt = Cons.size();
  }

  mutable std::vector<uint32_t> SOccStart, SOccData;
  mutable std::vector<uint32_t> BOccStart, BOccData;
  mutable size_t OccConsBuilt = static_cast<size_t>(-1);
};

} // namespace constraints
} // namespace afl

#endif // AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H
