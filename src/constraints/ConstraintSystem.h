//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint language of paper §4.1. Each *state variable* ranges
/// over the region states {U, A, D} (unallocated / allocated /
/// deallocated); each *boolean variable* encodes whether a potential
/// allocation or deallocation point is realized. Constraints:
///
///   * equality          s1 = s2
///   * allocation        s = A                  (region accessed here)
///   * allocation triple (s1, b, s2)_a :  b → (s1 = U ∧ s2 = A),
///                                       ¬b → s1 = s2
///   * deallocation triple (s1, b, s2)_d: b → (s1 = A ∧ s2 = D),
///                                       ¬b → s1 = s2
///
/// Domains are bitmasks; the solver performs arc-consistency style
/// propagation over them.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H
#define AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace afl {
namespace constraints {

using StateVarId = uint32_t;
using BoolVarId = uint32_t;

/// State domain bits.
enum : uint8_t {
  StU = 1,
  StA = 2,
  StD = 4,
  StAny = StU | StA | StD,
};

/// Boolean domain bits.
enum : uint8_t {
  BFalse = 1,
  BTrue = 2,
  BAny = BFalse | BTrue,
};

/// A constraint over state/boolean variables.
struct Constraint {
  enum class Kind : uint8_t { Eq, AllocTriple, DeallocTriple };
  Kind K;
  StateVarId S1 = 0;
  StateVarId S2 = 0;
  BoolVarId B = 0; // triples only
};

/// Variable store + constraint list + occurrence lists.
class ConstraintSystem {
public:
  StateVarId newState(uint8_t Domain = StAny) {
    StateDom.push_back(Domain);
    StateOcc.emplace_back();
    return static_cast<StateVarId>(StateDom.size() - 1);
  }

  BoolVarId newBool() {
    BoolDom.push_back(BAny);
    BoolOcc.emplace_back();
    return static_cast<BoolVarId>(BoolDom.size() - 1);
  }

  void addEq(StateVarId S1, StateVarId S2) {
    if (S1 == S2)
      return;
    addConstraint({Constraint::Kind::Eq, S1, S2, 0});
  }
  void addAllocTriple(StateVarId S1, BoolVarId B, StateVarId S2) {
    addConstraint({Constraint::Kind::AllocTriple, S1, S2, B});
  }
  void addDeallocTriple(StateVarId S1, BoolVarId B, StateVarId S2) {
    addConstraint({Constraint::Kind::DeallocTriple, S1, S2, B});
  }

  /// Initial domain restriction (e.g. "this state is A": mask StA).
  void restrictState(StateVarId S, uint8_t Mask) { StateDom[S] &= Mask; }

  size_t numStateVars() const { return StateDom.size(); }
  size_t numBoolVars() const { return BoolDom.size(); }
  size_t numConstraints() const { return Cons.size(); }

  /// Number of constraints of one kind (e.g. the solver preprocessing
  /// proof obligation: zero `Eq` constraints post-simplification).
  size_t numConstraintsOfKind(Constraint::Kind K) const {
    size_t N = 0;
    for (const Constraint &C : Cons)
      N += C.K == K;
    return N;
  }

  // Solver access.
  std::vector<uint8_t> StateDom;
  std::vector<uint8_t> BoolDom;
  std::vector<Constraint> Cons;
  std::vector<std::vector<uint32_t>> StateOcc; // state var -> constraints
  std::vector<std::vector<uint32_t>> BoolOcc;  // bool var -> constraints

private:
  void addConstraint(Constraint C) {
    uint32_t Idx = static_cast<uint32_t>(Cons.size());
    Cons.push_back(C);
    StateOcc[C.S1].push_back(Idx);
    StateOcc[C.S2].push_back(Idx);
    if (C.K != Constraint::Kind::Eq)
      BoolOcc[C.B].push_back(Idx);
  }
};

} // namespace constraints
} // namespace afl

#endif // AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H
