//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint language of paper §4.1. Each *state variable* ranges
/// over the region states {U, A, D} (unallocated / allocated /
/// deallocated); each *boolean variable* encodes whether a potential
/// allocation or deallocation point is realized. Constraints:
///
///   * equality          s1 = s2
///   * allocation        s = A                  (region accessed here)
///   * allocation triple (s1, b, s2)_a :  b → (s1 = U ∧ s2 = A),
///                                       ¬b → s1 = s2
///   * deallocation triple (s1, b, s2)_d: b → (s1 = A ∧ s2 = D),
///                                       ¬b → s1 = s2
///
/// Domains are bitmasks; the solver performs arc-consistency style
/// propagation over them.
///
/// The system also tracks connectivity *as constraints are emitted*: a
/// union-find over the state and boolean variables is updated inside
/// `addConstraint`, so by the time generation finishes the connected
/// components of the constraint graph are already known. `numShards()` /
/// `shardConstraints()` / `shardStates()` / `shardBools()` expose them as
/// CSR-backed shards with deterministic numbering (ascending smallest
/// member state variable — the same order `solver::splitComponents`
/// assigns), letting the solver skip its own component-discovery pass.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H
#define AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H

#include "support/PackedDomains.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace afl {
namespace constraints {

using StateVarId = uint32_t;
using BoolVarId = uint32_t;

/// State domain bits.
enum : uint8_t {
  StU = 1,
  StA = 2,
  StD = 4,
  StAny = StU | StA | StD,
};

/// Boolean domain bits.
enum : uint8_t {
  BFalse = 1,
  BTrue = 2,
  BAny = BFalse | BTrue,
};

/// A constraint over state/boolean variables.
struct Constraint {
  enum class Kind : uint8_t { Eq, AllocTriple, DeallocTriple };
  Kind K;
  StateVarId S1 = 0;
  StateVarId S2 = 0;
  BoolVarId B = 0; // triples only
};

/// Variable store + constraint list + occurrence index.
class ConstraintSystem {
public:
  StateVarId newState(uint8_t Domain = StAny) {
    StateDom.push_back(Domain);
    if (Tracking)
      Uf.push_back(-1);
    return static_cast<StateVarId>(StateDom.size() - 1);
  }

  BoolVarId newBool(uint8_t Domain = BAny) {
    BoolDom.push_back(Domain);
    if (Tracking)
      BFirst.push_back(NoVar);
    return static_cast<BoolVarId>(BoolDom.size() - 1);
  }

  /// Turns off the emission-time union-find. For solver-internal systems
  /// (simplification residuals, materialized components) that are solved
  /// directly and never asked for shards, maintaining connectivity is
  /// pure overhead on every addConstraint. The shard API still works on
  /// such a system: ensureShards rebuilds the union-find from the
  /// constraint list in one batch pass. Call before populating.
  void disableConnectivityTracking() {
    Tracking = false;
    BFirst.clear();
    Uf.clear();
  }

  void addEq(StateVarId S1, StateVarId S2) {
    if (S1 == S2)
      return;
    addConstraint({Constraint::Kind::Eq, S1, S2, 0});
  }
  void addAllocTriple(StateVarId S1, BoolVarId B, StateVarId S2) {
    addConstraint({Constraint::Kind::AllocTriple, S1, S2, B});
  }
  void addDeallocTriple(StateVarId S1, BoolVarId B, StateVarId S2) {
    addConstraint({Constraint::Kind::DeallocTriple, S1, S2, B});
  }

  /// Initial domain restriction (e.g. "this state is A": mask StA).
  void restrictState(StateVarId S, uint8_t Mask) {
    StateDom.set(S, StateDom.get(S) & Mask);
  }

  size_t numStateVars() const { return StateDom.size(); }
  size_t numBoolVars() const { return BoolDom.size(); }
  size_t numConstraints() const { return Cons.size(); }

  /// Number of constraints of one kind (e.g. the solver preprocessing
  /// proof obligation: zero `Eq` constraints post-simplification).
  size_t numConstraintsOfKind(Constraint::Kind K) const {
    size_t N = 0;
    for (const Constraint &C : Cons)
      N += C.K == K;
    return N;
  }

  /// Contiguous view of one variable's occurrence list (ascending
  /// constraint indices).
  struct OccRange {
    const uint32_t *B = nullptr, *E = nullptr;
    const uint32_t *begin() const { return B; }
    const uint32_t *end() const { return E; }
    size_t size() const { return static_cast<size_t>(E - B); }
  };

  /// Constraints mentioning state variable \p S. The index is CSR-shaped
  /// (one flat offset array + one flat data array) and built lazily on
  /// first access: generation only appends constraints and never pays for
  /// it, and building it once afterwards is two linear passes — the
  /// per-variable vector-of-vectors it replaces made `addConstraint` the
  /// generation hot spot via hundreds of thousands of small allocations.
  OccRange stateOcc(StateVarId S) const {
    ensureOcc();
    return {SOccData.data() + SOccStart[S], SOccData.data() + SOccStart[S + 1]};
  }

  /// Constraints mentioning boolean variable \p B (triples only).
  OccRange boolOcc(BoolVarId V) const {
    ensureOcc();
    return {BOccData.data() + BOccStart[V], BOccData.data() + BOccStart[V + 1]};
  }

  /// Number of connected components ("shards") of the constraint graph.
  /// Shards are numbered by their smallest state variable, ascending —
  /// the numbering `solver::splitComponents` would assign. Variables that
  /// occur in no constraint belong to no shard.
  size_t numShards() const {
    ensureShards();
    return NumShards;
  }

  /// Indices into `Cons` of shard \p K's constraints, in ascending
  /// (emission) order.
  OccRange shardConstraints(uint32_t K) const {
    ensureShards();
    return {ShardConsData.data() + ShardConsStart[K],
            ShardConsData.data() + ShardConsStart[K + 1]};
  }

  /// State variables of shard \p K, ascending.
  OccRange shardStates(uint32_t K) const {
    ensureShards();
    return {ShardStateData.data() + ShardStateStart[K],
            ShardStateData.data() + ShardStateStart[K + 1]};
  }

  /// Boolean variables of shard \p K, ascending.
  OccRange shardBools(uint32_t K) const {
    ensureShards();
    return {ShardBoolData.data() + ShardBoolStart[K],
            ShardBoolData.data() + ShardBoolStart[K + 1]};
  }

  /// Constraint count of the largest shard (0 if no constraints).
  size_t largestShardConstraints() const {
    ensureShards();
    size_t Largest = 0;
    for (size_t K = 0; K != NumShards; ++K)
      Largest = std::max<size_t>(Largest,
                                 ShardConsStart[K + 1] - ShardConsStart[K]);
    return Largest;
  }

  // Solver access. Domains are bit-packed (support/PackedDomains.h):
  // 3 bits per state variable, 2 per boolean — read with get()/[],
  // write with set().
  support::StateDomains StateDom;
  support::BoolDomains BoolDom;
  std::vector<Constraint> Cons;

private:
  static constexpr uint32_t NoShard = static_cast<uint32_t>(-1);
  static constexpr uint32_t NoVar = static_cast<uint32_t>(-1);

  void addConstraint(Constraint C) {
    Cons.push_back(C);
    if (Tracking)
      trackConstraint(C);
  }

  /// Incremental connectivity: merge the constraint's endpoints now, so
  /// finalizing shards later is a pure renumbering pass with no edge
  /// scan. State variable ids ARE the union-find slots (newState pushes
  /// one). Booleans have no slots: a boolean connects all triples
  /// mentioning it, which is equivalent to merging each later endpoint
  /// into the endpoint of its first occurrence (BFirst) — the same
  /// components over the state variables, with a third fewer slots and
  /// merges. The boolean's own shard falls out during finalization (its
  /// first triple's endpoint shard).
  void trackConstraint(const Constraint &C) const {
    merge(C.S1, C.S2);
    if (C.K != Constraint::Kind::Eq) {
      uint32_t &F = BFirst[C.B];
      if (F == NoVar)
        F = C.S1;
      else
        merge(C.S1, F);
      if (C.S1 == C.S2) {
        // Degenerate self-triple: the state merge above was a no-op, so
        // force the class non-singleton — ensureShards reads a singleton
        // class as "occurs in no constraint".
        uint32_t R = find(C.S1);
        if (Uf[R] == -1)
          Uf[R] = -2;
      }
    }
  }

  /// Single-array union-find: a root slot holds the negated class size,
  /// a non-root slot holds its parent index. find() path-halves.
  uint32_t find(uint32_t N) const {
    int32_t P;
    while ((P = Uf[N]) >= 0) {
      int32_t G = Uf[static_cast<uint32_t>(P)];
      if (G < 0)
        return static_cast<uint32_t>(P);
      Uf[N] = G; // path halving
      N = static_cast<uint32_t>(G);
    }
    return N;
  }

  void merge(uint32_t A, uint32_t B) const {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    if (Uf[A] > Uf[B]) // union by size (sizes are stored negated)
      std::swap(A, B);
    Uf[A] += Uf[B];
    Uf[B] = static_cast<int32_t>(A);
  }

  void ensureOcc() const {
    if (OccConsBuilt == Cons.size() &&
        SOccStart.size() == StateDom.size() + 1 &&
        BOccStart.size() == BoolDom.size() + 1)
      return;
    SOccStart.assign(StateDom.size() + 1, 0);
    BOccStart.assign(BoolDom.size() + 1, 0);
    for (const Constraint &C : Cons) {
      ++SOccStart[C.S1 + 1];
      ++SOccStart[C.S2 + 1];
      if (C.K != Constraint::Kind::Eq)
        ++BOccStart[C.B + 1];
    }
    for (size_t I = 1; I < SOccStart.size(); ++I)
      SOccStart[I] += SOccStart[I - 1];
    for (size_t I = 1; I < BOccStart.size(); ++I)
      BOccStart[I] += BOccStart[I - 1];
    SOccData.resize(SOccStart.back());
    BOccData.resize(BOccStart.back());
    // Fill with a moving cursor per variable; iterating constraints in
    // index order keeps each list ascending — the same order the old
    // per-variable push_back produced.
    std::vector<uint32_t> SCur(SOccStart.begin(), SOccStart.end() - 1);
    std::vector<uint32_t> BCur(BOccStart.begin(), BOccStart.end() - 1);
    for (uint32_t Idx = 0; Idx != Cons.size(); ++Idx) {
      const Constraint &C = Cons[Idx];
      SOccData[SCur[C.S1]++] = Idx;
      SOccData[SCur[C.S2]++] = Idx;
      if (C.K != Constraint::Kind::Eq)
        BOccData[BCur[C.B]++] = Idx;
    }
    OccConsBuilt = Cons.size();
  }

  /// Finalizes the union-find into CSR shard tables. Pure renumbering:
  /// scan state variables ascending and number each root at its first
  /// occurrence (= numbering by smallest member state variable; every
  /// constraint mentions a state variable, so every shard has one), then
  /// bucket variables and constraints by shard. For untracked systems the
  /// union-find is first rebuilt in one batch pass over the constraint
  /// list. Lazy and cached like the occurrence index.
  void ensureShards() const {
    if (ShardsConsBuilt == Cons.size() && ShardSCount == StateDom.size() &&
        ShardBCount == BoolDom.size())
      return;
    const size_t NS = StateDom.size(), NB = BoolDom.size();
    if (!Tracking) {
      BFirst.assign(NB, NoVar);
      Uf.assign(NS, -1);
      for (const Constraint &C : Cons)
        trackConstraint(C);
    }

    // Memoize each variable's shard so the counting and filling passes
    // below are straight array reads. A state variable whose union-find
    // class is still a singleton (root slot -1) occurs in no constraint
    // — addConstraint leaves no constrained class at size one — and
    // belongs to no shard; a boolean's shard is its first triple's
    // endpoint shard, picked up in the constraint sweep. NumShards is
    // also the shard-numbering pass: ascending smallest member state
    // variable.
    std::vector<uint32_t> ShardOfRoot(Uf.size(), NoShard);
    std::vector<uint32_t> SShard(NS, NoShard), BShard(NB, NoShard);
    NumShards = 0;
    ShardStateStart.assign(1, 0);
    for (StateVarId S = 0; S != NS; ++S) {
      if (Uf[S] == -1)
        continue;
      uint32_t R = find(S);
      if (ShardOfRoot[R] == NoShard) {
        ShardOfRoot[R] = static_cast<uint32_t>(NumShards++);
        ShardStateStart.push_back(0);
      }
      SShard[S] = ShardOfRoot[R];
      ++ShardStateStart[ShardOfRoot[R] + 1];
    }

    ShardConsStart.assign(NumShards + 1, 0);
    ShardBoolStart.assign(NumShards + 1, 0);
    for (const Constraint &C : Cons) {
      uint32_t K = SShard[C.S1];
      ++ShardConsStart[K + 1];
      if (C.K != Constraint::Kind::Eq)
        BShard[C.B] = K;
    }
    for (BoolVarId B = 0; B != NB; ++B)
      if (BShard[B] != NoShard)
        ++ShardBoolStart[BShard[B] + 1];
    for (size_t K = 1; K <= NumShards; ++K) {
      ShardConsStart[K] += ShardConsStart[K - 1];
      ShardStateStart[K] += ShardStateStart[K - 1];
      ShardBoolStart[K] += ShardBoolStart[K - 1];
    }
    ShardConsData.resize(ShardConsStart.back());
    ShardStateData.resize(ShardStateStart.back());
    ShardBoolData.resize(ShardBoolStart.back());
    std::vector<uint32_t> ConsCur(ShardConsStart.begin(),
                                  ShardConsStart.end() - 1);
    std::vector<uint32_t> StateCur(ShardStateStart.begin(),
                                   ShardStateStart.end() - 1);
    std::vector<uint32_t> BoolCur(ShardBoolStart.begin(),
                                  ShardBoolStart.end() - 1);
    for (uint32_t Idx = 0; Idx != Cons.size(); ++Idx)
      ShardConsData[ConsCur[SShard[Cons[Idx].S1]]++] = Idx;
    for (StateVarId S = 0; S != NS; ++S)
      if (SShard[S] != NoShard)
        ShardStateData[StateCur[SShard[S]]++] = S;
    for (BoolVarId B = 0; B != NB; ++B)
      if (BShard[B] != NoShard)
        ShardBoolData[BoolCur[BShard[B]]++] = B;

    ShardsConsBuilt = Cons.size();
    ShardSCount = StateDom.size();
    ShardBCount = BoolDom.size();
  }

  mutable std::vector<uint32_t> SOccStart, SOccData;
  mutable std::vector<uint32_t> BOccStart, BOccData;
  mutable size_t OccConsBuilt = static_cast<size_t>(-1);

  /// Emission-time union-find over the state variable ids, maintained in
  /// addConstraint while Tracking (rebuilt inside ensureShards
  /// otherwise). BFirst maps each boolean to the endpoint of its first
  /// triple (NoVar until seen). find() path-halves, so everything is
  /// mutable.
  bool Tracking = true;
  mutable std::vector<uint32_t> BFirst;
  mutable std::vector<int32_t> Uf;

  mutable std::vector<uint32_t> ShardConsStart, ShardConsData;
  mutable std::vector<uint32_t> ShardStateStart, ShardStateData;
  mutable std::vector<uint32_t> ShardBoolStart, ShardBoolData;
  mutable size_t NumShards = 0;
  mutable size_t ShardsConsBuilt = static_cast<size_t>(-1);
  mutable size_t ShardSCount = 0, ShardBCount = 0;
};

} // namespace constraints
} // namespace afl

#endif // AFL_CONSTRAINTS_CONSTRAINTSYSTEM_H
