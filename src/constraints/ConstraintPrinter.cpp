#include "constraints/ConstraintPrinter.h"

using namespace afl;
using namespace afl::constraints;

SystemStats constraints::systemStats(const GenResult &Gen) {
  SystemStats S;
  S.StateVars = Gen.Sys.numStateVars();
  S.BoolVars = Gen.Sys.numBoolVars();
  for (const Constraint &C : Gen.Sys.Cons) {
    switch (C.K) {
    case Constraint::Kind::Eq:
      ++S.Equalities;
      break;
    case Constraint::Kind::AllocTriple:
      ++S.AllocTriples;
      break;
    case Constraint::Kind::DeallocTriple:
      ++S.DeallocTriples;
      break;
    }
  }
  for (size_t I = 0; I != Gen.Sys.StateDom.size(); ++I)
    if (Gen.Sys.StateDom.get(I) != StAny)
      ++S.RestrictedStates;
  for (const ChoicePoint &CP : Gen.Choices) {
    switch (CP.Kind) {
    case regions::COpKind::AllocBefore:
    case regions::COpKind::AllocAfter:
      ++S.AllocBeforeChoices;
      break;
    case regions::COpKind::FreeBefore:
    case regions::COpKind::FreeAfter:
      ++S.FreeAfterChoices;
      break;
    case regions::COpKind::FreeApp:
      ++S.FreeAppChoices;
      break;
    }
  }
  return S;
}

std::string constraints::summarize(const GenResult &Gen) {
  SystemStats S = systemStats(Gen);
  std::string Out;
  Out += std::to_string(S.StateVars) + " state vars, ";
  Out += std::to_string(S.BoolVars) + " booleans, ";
  Out += std::to_string(S.Equalities) + " equalities, ";
  Out += std::to_string(S.AllocTriples) + " alloc triples, ";
  Out += std::to_string(S.DeallocTriples) + " dealloc triples, ";
  Out += std::to_string(S.RestrictedStates) + " pinned states; choices: ";
  Out += std::to_string(S.AllocBeforeChoices) + " alloc_before, ";
  Out += std::to_string(S.FreeAfterChoices) + " free_after, ";
  Out += std::to_string(S.FreeAppChoices) + " free_app";
  return Out;
}

static std::string domainName(uint8_t D) {
  std::string S = "{";
  if (D & StU)
    S += 'U';
  if (D & StA)
    S += 'A';
  if (D & StD)
    S += 'D';
  return S + "}";
}

std::string constraints::dumpSystem(const GenResult &Gen) {
  std::string Out = summarize(Gen) + "\n";
  for (size_t I = 0; I != Gen.Sys.StateDom.size(); ++I) {
    if (Gen.Sys.StateDom[I] != StAny)
      Out += "  s" + std::to_string(I) + " in " +
             domainName(Gen.Sys.StateDom[I]) + "\n";
  }
  for (const Constraint &C : Gen.Sys.Cons) {
    switch (C.K) {
    case Constraint::Kind::Eq:
      Out += "  s" + std::to_string(C.S1) + " = s" + std::to_string(C.S2) +
             "\n";
      break;
    case Constraint::Kind::AllocTriple:
      Out += "  (s" + std::to_string(C.S1) + ", c" + std::to_string(C.B) +
             ", s" + std::to_string(C.S2) + ")a\n";
      break;
    case Constraint::Kind::DeallocTriple:
      Out += "  (s" + std::to_string(C.S1) + ", c" + std::to_string(C.B) +
             ", s" + std::to_string(C.S2) + ")d\n";
      break;
    }
  }
  for (const ChoicePoint &CP : Gen.Choices) {
    Out += "  c" + std::to_string(CP.B) + " := " +
           regions::spelling(CP.Kind) + " r" + std::to_string(CP.Region) +
           " @node" + std::to_string(CP.Node) + "\n";
  }
  return Out;
}
