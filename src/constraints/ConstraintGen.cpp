#include "constraints/ConstraintGen.h"

#include "constraints/StateVecInterner.h"

#include <algorithm>
#include <chrono>

using namespace afl;
using namespace afl::constraints;
using namespace afl::regions;
using closure::AbsClosure;
using closure::AbsClosureId;
using closure::Color;
using closure::RegEnvId;

namespace {

using ShapeId = StateVecInterner::ShapeId;

/// A state vector: region color → state variable. The color half (the
/// *shape*) is interned — identical ascending color sets across contexts
/// share one ShapeId — so only the variable half is stored per vector,
/// and entry i holds the variable of the shape's i-th color. Iteration
/// is in ascending color order, the order the previous flat-pair
/// representation produced, so the emitted constraint system is
/// unchanged.
struct StateVec {
  ShapeId Shape = StateVecInterner::Empty;
  std::vector<StateVarId> Vars;
};

class Generator {
public:
  Generator(const RegionProgram &Prog, closure::ClosureAnalysis &CA,
            const GenOptions &Options, GenResult &Out)
      : Prog(Prog), CA(CA), Options(Options), Out(Out) {
    CtxCache.resize(CA.numCtxIds());
    // Pre-size: genApp holds references into this across recursion, so
    // the vector must never reallocate.
    CalleeCache.resize(CA.numClosures());
    for (auto &Index : BoolIndex)
      Index.resize(Prog.numNodes());
  }

  void run() {
    const CtxEntry &Root = genCtx(Prog.Root, CA.rootEnv());
    // Program start: all global regions unallocated.
    // Program end: the result is observed, so every global (result) region
    // must be allocated. (They are reclaimed by program exit.)
    for (RegionVarId R : Prog.GlobalRegions) {
      Color C = CA.envs().colorOf(CA.rootEnv(), R);
      if (const StateVarId *S = svFind(Root.In, C))
        Out.Sys.restrictState(*S, StU);
      if (const StateVarId *S = svFind(Root.Out, C))
        Out.Sys.restrictState(*S, StA);
    }
  }

  size_t numShapes() const { return IV.numShapes(); }

private:
  /// Cached in/out vectors of a generated context, indexed by the closure
  /// analysis' dense context id.
  struct CtxEntry {
    StateVec In, Out;
    bool Done = false;
  };

  ConstraintSystem &sys() { return Out.Sys; }

  /// Shared boolean for a syntactic choice point. Indexed per (kind,
  /// node) as a region→bool list kept sorted by region: the chains ask
  /// in ascending region order and every context of a node re-asks for
  /// the same regions, so lookups binary-search a short node-local list
  /// (the previous linear scan was quadratic in the effect-set size and
  /// showed up in generation profiles).
  BoolVarId boolFor(RNodeId Node, COpKind Kind, RegionVarId Region) {
    auto &Entries =
        BoolIndex[static_cast<unsigned>(Kind)][Node];
    auto It = std::lower_bound(
        Entries.begin(), Entries.end(), Region,
        [](const auto &E, RegionVarId R) { return E.first < R; });
    if (It != Entries.end() && It->first == Region)
      return It->second;
    BoolVarId B = sys().newBool();
    Entries.insert(It, {Region, B});
    Out.Choices.push_back({Node, Kind, Region, B});
    return B;
  }

  StateVec freshVec(ShapeId Shape) {
    StateVec V;
    V.Shape = Shape;
    size_t N = IV.size(Shape);
    V.Vars.reserve(N);
    for (size_t I = 0; I != N; ++I)
      V.Vars.push_back(sys().newState());
    return V;
  }

  const StateVarId *svFind(const StateVec &V, Color C) const {
    size_t Idx = IV.indexOf(V.Shape, C);
    if (Idx == FlatSet<Color>::npos)
      return nullptr;
    return &V.Vars[Idx];
  }

  StateVarId svAt(const StateVec &V, Color C) const {
    size_t Idx = IV.indexOf(V.Shape, C);
    assert(Idx != FlatSet<Color>::npos && "color missing from state vector");
    return V.Vars[Idx];
  }

  /// Equates \p A and \p B on their common colors (addEq calls in
  /// ascending color order, as before). Same shape — the dominant case —
  /// is a direct pairwise loop; otherwise the memoized common-index map
  /// replaces the linear merge.
  void linkEq(const StateVec &A, const StateVec &B) {
    if (A.Shape == B.Shape) {
      for (size_t I = 0; I != A.Vars.size(); ++I)
        sys().addEq(A.Vars[I], B.Vars[I]);
      return;
    }
    for (const auto &[IA, IB] : IV.common(A.Shape, B.Shape))
      sys().addEq(A.Vars[IA], B.Vars[IB]);
  }

  /// Projection of \p V onto shape \p To (all of \p To's colors must be
  /// present in \p V's shape).
  StateVec project(const StateVec &V, ShapeId To) {
    if (V.Shape == To)
      return V;
    StateVec P;
    P.Shape = To;
    const std::vector<uint32_t> &Map = IV.projection(V.Shape, To);
    P.Vars.reserve(Map.size());
    for (uint32_t Idx : Map)
      P.Vars.push_back(V.Vars[Idx]);
    return P;
  }

  void requireA(const StateVec &V, Color C) {
    sys().restrictState(svAt(V, C), StA);
  }

  /// Generates the in/out vectors for context (N, contextEnv(N, Incoming)).
  /// Cached so all call sites of a shared function body link to the same
  /// vectors; recursion terminates because the entry is marked done before
  /// the body is processed. The returned reference is stable: the cache is
  /// pre-sized to the analysis' context count and never reallocates.
  const CtxEntry &genCtx(const RExpr *N, RegEnvId Incoming) {
    RegEnvId Env = CA.contextEnv(N, Incoming);
    uint32_t Ctx = CA.ctxIndex(N->id(), Env);
    assert(Ctx != closure::ClosureAnalysis::NoCtx &&
           "constraint generation reached a context the closure analysis "
           "did not register");
    CtxEntry &E = CtxCache[Ctx];
    if (E.Done)
      return E;
    E.Done = true;

    ShapeId Sh = IV.intern(CA.envs().colorsOf(Env, N->overallEffect()));
    E.In = freshVec(Sh);
    E.Out = freshVec(Sh);
    ++Out.NumContexts;

    // letregion entry: freshly introduced regions start unallocated.
    for (RegionVarId R : N->boundRegions())
      sys().restrictState(svAt(E.In, CA.envs().colorOf(Env, R)), StU);

    // Pre-chain: potential alloc_before for every overall-effect region,
    // sequentialized in ascending region order (§4.2: aliased variables
    // must not both fire, which sequential triples guarantee). Under the
    // lexical-allocation ablation, only the introducing node gets a
    // choice point. The chain rewrites positions of the shared shape in
    // place — every touched color is in the overall effect, hence in Sh.
    StateVec Cur = E.In;
    for (RegionVarId R : N->overallEffect()) {
      if (!Options.LateAlloc && !introduces(N, R))
        continue;
      size_t Idx = IV.indexOf(Sh, CA.envs().colorOf(Env, R));
      assert(Idx != FlatSet<Color>::npos);
      BoolVarId B = boolFor(N->id(), COpKind::AllocBefore, R);
      StateVarId Next = sys().newState();
      sys().addAllocTriple(Cur.Vars[Idx], B, Next);
      Cur.Vars[Idx] = Next;
    }

    StateVec CoreOut = genCore(N, Env, std::move(Cur));
    assert(CoreOut.Shape == Sh && "core must preserve the context shape");

    // Post-chain: potential free_after for every overall-effect region.
    for (RegionVarId R : N->overallEffect()) {
      if (!Options.EarlyFree && !introduces(N, R))
        continue;
      size_t Idx = IV.indexOf(Sh, CA.envs().colorOf(Env, R));
      assert(Idx != FlatSet<Color>::npos);
      BoolVarId B = boolFor(N->id(), COpKind::FreeAfter, R);
      StateVarId Next = sys().newState();
      sys().addDeallocTriple(CoreOut.Vars[Idx], B, Next);
      CoreOut.Vars[Idx] = Next;
    }

    linkEq(CoreOut, E.Out);

    // letregion exit: introduced regions must not be left allocated.
    for (RegionVarId R : N->boundRegions())
      sys().restrictState(svAt(E.Out, CA.envs().colorOf(Env, R)), StU | StD);

    return E;
  }

  /// True if \p N is the point where \p R enters scope (its letregion
  /// node, or the program root for a global region).
  bool introduces(const RExpr *N, RegionVarId R) const {
    for (RegionVarId B : N->boundRegions())
      if (B == R)
        return true;
    if (N == Prog.Root)
      for (RegionVarId G : Prog.GlobalRegions)
        if (G == R)
          return true;
    return false;
  }

  /// Links child (in its own context) into the current chain: equates
  /// \p Cur with the child's in vector and returns the child's out vector
  /// projected onto shape \p My.
  StateVec genChild(const RExpr *Child, RegEnvId Env, const StateVec &Cur,
                    ShapeId My) {
    const CtxEntry &C = genCtx(Child, Env);
    linkEq(Cur, C.In);
    return project(C.Out, My);
  }

  StateVec genCore(const RExpr *N, RegEnvId Env, StateVec Cur) {
    ShapeId My = Cur.Shape;

    auto requireReadsWrites = [&](const StateVec &V) {
      if (N->hasWriteRegion())
        requireA(V, CA.envs().colorOf(Env, N->writeRegion()));
      for (RegionVarId R : N->readRegions())
        requireA(V, CA.envs().colorOf(Env, R));
    };

    switch (N->kind()) {
    case RExpr::Kind::Int:
    case RExpr::Kind::Bool:
    case RExpr::Kind::Unit:
    case RExpr::Kind::Nil:
    case RExpr::Kind::Lambda:
    case RExpr::Kind::RegApp:
      requireReadsWrites(Cur);
      return Cur;
    case RExpr::Kind::Var:
      return Cur;
    case RExpr::Kind::Let: {
      const auto *L = cast<RLetExpr>(N);
      StateVec AfterInit = genChild(L->init(), Env, Cur, My);
      return genChild(L->body(), Env, AfterInit, My);
    }
    case RExpr::Kind::Letrec: {
      const auto *L = cast<RLetrecExpr>(N);
      // Storing the region-polymorphic closure writes ρf.
      requireReadsWrites(Cur);
      return genChild(L->body(), Env, Cur, My);
    }
    case RExpr::Kind::If: {
      const auto *I = cast<RIfExpr>(N);
      StateVec AfterCond = genChild(I->cond(), Env, Cur, My);
      // The condition's region is read after it is evaluated.
      requireA(AfterCond, CA.envs().colorOf(Env, N->readRegions()[0]));
      const CtxEntry &T = genCtx(I->thenExpr(), Env);
      const CtxEntry &E = genCtx(I->elseExpr(), Env);
      linkEq(AfterCond, T.In);
      linkEq(AfterCond, E.In);
      StateVec Joined = freshVec(My);
      linkEq(project(T.Out, My), Joined);
      linkEq(project(E.Out, My), Joined);
      return Joined;
    }
    case RExpr::Kind::Pair: {
      const auto *P = cast<RPairExpr>(N);
      StateVec AfterFirst = genChild(P->first(), Env, Cur, My);
      StateVec AfterSecond = genChild(P->second(), Env, AfterFirst, My);
      requireReadsWrites(AfterSecond);
      return AfterSecond;
    }
    case RExpr::Kind::Cons: {
      const auto *Cn = cast<RConsExpr>(N);
      StateVec AfterHead = genChild(Cn->head(), Env, Cur, My);
      StateVec AfterTail = genChild(Cn->tail(), Env, AfterHead, My);
      requireReadsWrites(AfterTail);
      return AfterTail;
    }
    case RExpr::Kind::UnOp: {
      const auto *U = cast<RUnOpExpr>(N);
      StateVec AfterOp = genChild(U->operand(), Env, Cur, My);
      requireReadsWrites(AfterOp);
      return AfterOp;
    }
    case RExpr::Kind::BinOp: {
      const auto *B = cast<RBinOpExpr>(N);
      StateVec AfterLhs = genChild(B->lhs(), Env, Cur, My);
      StateVec AfterRhs = genChild(B->rhs(), Env, AfterLhs, My);
      requireReadsWrites(AfterRhs);
      return AfterRhs;
    }
    case RExpr::Kind::App:
      return genApp(cast<RAppExpr>(N), Env, std::move(Cur));
    }
    assert(false && "unknown node kind");
    return Cur;
  }

  StateVec genApp(const RAppExpr *N, RegEnvId Env, StateVec Cur) {
    ShapeId My = Cur.Shape;
    StateVec AfterFn = genChild(N->fn(), Env, Cur, My);
    StateVec AfterArg = genChild(N->arg(), Env, AfterFn, My);

    // Fetching the closure reads its region.
    RegionVarId ClosRegion = N->readRegions()[0];
    Color ClosColor = CA.envs().colorOf(Env, ClosRegion);
    requireA(AfterArg, ClosColor);

    // free_app choice point on the closure's region (§1): after the fetch,
    // before the body.
    StateVec FA = AfterArg;
    if (Options.FreeApp) {
      size_t ClosIdx = IV.indexOf(My, ClosColor);
      assert(ClosIdx != FlatSet<Color>::npos);
      BoolVarId B = boolFor(N->id(), COpKind::FreeApp, ClosRegion);
      StateVarId Next = sys().newState();
      sys().addDeallocTriple(FA.Vars[ClosIdx], B, Next);
      FA.Vars[ClosIdx] = Next;
    }

    // Caller-side effect colors of the call (set B in Fig. 4). The latent
    // region set depends only on the fn node's arrow type — cache per node.
    const std::set<RegionVarId> &CallerLatent = callerLatentOf(N->fn());
    FlatSet<Color> CallerB;
    for (RegionVarId R : CallerLatent)
      if (CA.envs().maps(Env, R))
        CallerB.insert(CA.envs().colorOf(Env, R));

    StateVec Result = freshVec(My);

    RegEnvId FnCtxEnv = CA.contextEnv(N->fn(), Env);
    const FlatSet<AbsClosureId> &Closures =
        CA.valuesOf(N->fn()->id(), FnCtxEnv);

    FlatSet<Color> BAll; // union of linked callee effect colors
    for (AbsClosureId Id : Closures) {
      const AbsClosure &Cl = CA.closure(Id);
      const CalleeInfo &Callee = calleeInfoOf(Id);
      const std::set<regions::RegionVarId> &CalleeLatent = Callee.Latent;
      const FlatSet<Color> &CalleeB = Callee.B;
      const CtxEntry &Body = genCtx(CA.bodyOf(Cl), Cl.Env);

      // The B-equalities of Fig. 4 are justified only when the closure's
      // environment is color-consistent with the caller's: every *free*
      // region name mapped by both must have the same color. The callee's
      // region formals are excluded — rebinding them per call is exactly
      // what region polymorphism does, and their colors are caller colors
      // of the actuals by construction. Closures created in this caller's
      // lineage satisfy the check; closures that arrived through merged
      // flows (the escape pool, merged variable sets) may not. A shared
      // region in the closure's *widened* classes is never consistent:
      // its color is a canonical merge representative, so equality with
      // the caller's color does not certify agreement in every merged
      // pre-image environment.
      bool Aligned = true;
      bool WidenedMisalign = false;
      for (const auto &[Var, C] : CA.envs().get(Cl.Env)) {
        if (Callee.Formals.contains(Var))
          continue;
        if (!CA.envs().maps(Env, Var))
          continue;
        if (!Callee.Widened.empty() &&
            std::binary_search(Callee.Widened.begin(), Callee.Widened.end(),
                               Var)) {
          Aligned = false;
          WidenedMisalign = true;
          break;
        }
        if (CA.envs().colorOf(Env, Var) != C) {
          Aligned = false;
          break;
        }
      }

      if (Aligned) {
        // Equate caller and callee states over B on entry and exit.
        for (Color C : CalleeB) {
          const StateVarId *FAS = svFind(FA, C);
          const StateVarId *BInS = svFind(Body.In, C);
          if (FAS && BInS)
            sys().addEq(*FAS, *BInS);
          const StateVarId *RS = svFind(Result, C);
          const StateVarId *BOutS = svFind(Body.Out, C);
          if (RS && BOutS)
            sys().addEq(*RS, *BOutS);
        }
        BAll.unionWith(CalleeB);
      } else {
        // Conservative fallback: pin every region the call touches
        // allocated across the call, on both sides — by *name* on the
        // caller side, so the obligation reaches the caller's own
        // allocation chain regardless of color numbering.
        ++Out.NumPinnedCalls;
        if (WidenedMisalign)
          ++Out.NumWidenedPinned;
        for (regions::RegionVarId V : CalleeLatent) {
          if (CA.envs().maps(Env, V)) {
            Color C = CA.envs().colorOf(Env, V);
            if (const StateVarId *S = svFind(FA, C))
              sys().restrictState(*S, StA);
            if (const StateVarId *S = svFind(Result, C))
              sys().restrictState(*S, StA);
            // The caller may not change this region's state across the
            // call (the callee assumes it allocated throughout).
            BAll.insert(C);
          }
        }
        for (Color C : CallerB) {
          if (const StateVarId *S = svFind(FA, C))
            sys().restrictState(*S, StA);
          if (const StateVarId *S = svFind(Result, C))
            sys().restrictState(*S, StA);
          BAll.insert(C);
        }
        for (Color C : CalleeB) {
          if (const StateVarId *S = svFind(Body.In, C))
            sys().restrictState(*S, StA);
          if (const StateVarId *S = svFind(Body.Out, C))
            sys().restrictState(*S, StA);
        }
      }
    }

    // Set C: caller regions untouched by the call pass through
    // state-polymorphically. (With no known closures — dead code — all
    // colors pass through.) FA and Result share the caller shape, so the
    // pass-through is a direct pairwise loop.
    const FlatSet<Color> &MyColors = IV.colors(My);
    for (size_t I = 0; I != MyColors.size(); ++I) {
      Color C = MyColors[I];
      if (BAll.contains(C) && CallerB.contains(C))
        continue;
      sys().addEq(FA.Vars[I], Result.Vars[I]);
    }
    return Result;
  }

  /// Per-closure call-edge facts: the latent region variables of the
  /// closure's arrow type and their colors in the closure's environment
  /// (set B on the callee side). Both are functions of the closure id
  /// alone; applications with many call edges reuse them.
  struct CalleeInfo {
    std::set<regions::RegionVarId> Latent;
    FlatSet<Color> B;
    /// Region formals of a letrec closure (excluded from the alignment
    /// check); empty for lambdas.
    FlatSet<regions::RegionVarId> Formals;
    /// Recolored environment variables under context-set widening
    /// (sorted; empty when widening is off or did not fire for this
    /// closure) — sharing one with the caller forces the pinned path.
    std::vector<regions::RegionVarId> Widened;
    bool Cached = false;
  };

  const CalleeInfo &calleeInfoOf(AbsClosureId Id) {
    assert(Id < CalleeCache.size() && "closure id out of range");
    CalleeInfo &Info = CalleeCache[Id];
    if (!Info.Cached) {
      const AbsClosure &Cl = CA.closure(Id);
      Info.Latent = CA.latentOf(Cl);
      Info.B = CA.envs().colorsOf(Cl.Env, Info.Latent);
      if (const auto *Callee = dyn_cast<RLetrecExpr>(Cl.Fun))
        for (regions::RegionVarId F : Callee->formals())
          Info.Formals.insert(F);
      Info.Widened = CA.widenedVars(Cl);
      Info.Cached = true;
    }
    return Info;
  }

  /// Caller-side latent region variables, keyed by the fn node.
  const std::set<RegionVarId> &callerLatentOf(const RExpr *Fn) {
    auto [It, Inserted] = CallerLatentCache.try_emplace(Fn->id());
    if (Inserted) {
      EffectSet Probe;
      Probe.EffectVars.insert(Prog.Types.arrowEffect(Fn->type()));
      It->second = Prog.Types.regionsOf(Probe);
    }
    return It->second;
  }

  const RegionProgram &Prog;
  closure::ClosureAnalysis &CA;
  const GenOptions &Options;
  GenResult &Out;
  StateVecInterner IV;
  std::vector<CtxEntry> CtxCache;
  std::vector<CalleeInfo> CalleeCache;
  std::unordered_map<RNodeId, std::set<RegionVarId>> CallerLatentCache;
  /// Per choice-point kind and node: (region, boolean variable) pairs.
  std::vector<std::vector<std::pair<RegionVarId, BoolVarId>>> BoolIndex[5];
};

} // namespace

GenResult constraints::generateConstraints(const RegionProgram &Prog,
                                           closure::ClosureAnalysis &CA,
                                           const GenOptions &Options) {
  GenResult Out;
  Generator G(Prog, CA, Options, Out);
  G.run();
  // Finalize the emission-time union-find into CSR shard tables now, so
  // the cost lands in the generation stage (where it is measured) and the
  // solver finds the shards ready.
  auto T0 = std::chrono::steady_clock::now();
  Out.Sharding.Shards = Out.Sys.numShards();
  Out.Sharding.LargestShardConstraints = Out.Sys.largestShardConstraints();
  Out.Sharding.InternedShapes = G.numShapes();
  Out.Sharding.FinalizeSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return Out;
}
