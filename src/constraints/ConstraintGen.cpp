#include "constraints/ConstraintGen.h"

#include <algorithm>

using namespace afl;
using namespace afl::constraints;
using namespace afl::regions;
using closure::AbsClosure;
using closure::AbsClosureId;
using closure::Color;
using closure::RegEnvId;

namespace {

/// A state vector: region color → state variable.
using VecMap = std::map<Color, StateVarId>;

class Generator {
public:
  Generator(const RegionProgram &Prog, closure::ClosureAnalysis &CA,
            const GenOptions &Options, GenResult &Out)
      : Prog(Prog), CA(CA), Options(Options), Out(Out) {}

  void run() {
    auto [In, OutV] = genCtx(Prog.Root, CA.rootEnv());
    // Program start: all global regions unallocated.
    // Program end: the result is observed, so every global (result) region
    // must be allocated. (They are reclaimed by program exit.)
    for (RegionVarId R : Prog.GlobalRegions) {
      Color C = CA.envs().colorOf(CA.rootEnv(), R);
      auto InIt = In.find(C);
      if (InIt != In.end())
        Out.Sys.restrictState(InIt->second, StU);
      auto OutIt = OutV.find(C);
      if (OutIt != OutV.end())
        Out.Sys.restrictState(OutIt->second, StA);
    }
  }

private:
  ConstraintSystem &sys() { return Out.Sys; }

  /// Shared boolean for a syntactic choice point.
  BoolVarId boolFor(RNodeId Node, COpKind Kind, RegionVarId Region) {
    auto Key = std::make_tuple(Node, Kind, Region);
    auto It = BoolIndex.find(Key);
    if (It != BoolIndex.end())
      return It->second;
    BoolVarId B = sys().newBool();
    BoolIndex.emplace(Key, B);
    Out.Choices.push_back({Node, Kind, Region, B});
    return B;
  }

  VecMap freshVec(const std::set<Color> &Colors) {
    VecMap V;
    for (Color C : Colors)
      V[C] = sys().newState();
    return V;
  }

  /// Equates \p A and \p B on their common colors.
  void linkEq(const VecMap &A, const VecMap &B) {
    for (const auto &[C, S] : A) {
      auto It = B.find(C);
      if (It != B.end())
        sys().addEq(S, It->second);
    }
  }

  /// Projection of \p V onto \p Colors (all must be present).
  VecMap project(const VecMap &V, const std::set<Color> &Colors) {
    VecMap Out;
    for (Color C : Colors) {
      auto It = V.find(C);
      assert(It != V.end() && "color missing from child vector");
      Out[C] = It->second;
    }
    return Out;
  }

  void requireA(const VecMap &V, Color C) {
    auto It = V.find(C);
    assert(It != V.end() && "accessed region not tracked at this point");
    sys().restrictState(It->second, StA);
  }

  /// Generates the in/out vectors for context (N, contextEnv(N, Incoming)).
  /// Cached so all call sites of a shared function body link to the same
  /// vectors; recursion terminates because the cache is filled before the
  /// body is processed.
  std::pair<VecMap, VecMap> genCtx(const RExpr *N, RegEnvId Incoming) {
    RegEnvId Env = CA.contextEnv(N, Incoming);
    auto Key = std::make_pair(N->id(), Env);
    auto It = CtxCache.find(Key);
    if (It != CtxCache.end())
      return It->second;

    std::set<Color> Colors = CA.envs().colorsOf(Env, N->overallEffect());
    VecMap In = freshVec(Colors);
    VecMap OutV = freshVec(Colors);
    CtxCache.emplace(Key, std::make_pair(In, OutV));
    ++Out.NumContexts;

    // letregion entry: freshly introduced regions start unallocated.
    for (RegionVarId R : N->boundRegions())
      sys().restrictState(In.at(CA.envs().colorOf(Env, R)), StU);

    // Pre-chain: potential alloc_before for every overall-effect region,
    // sequentialized in ascending region order (§4.2: aliased variables
    // must not both fire, which sequential triples guarantee). Under the
    // lexical-allocation ablation, only the introducing node gets a
    // choice point.
    VecMap Cur = In;
    for (RegionVarId R : sortedOverall(N)) {
      if (!Options.LateAlloc && !introduces(N, R))
        continue;
      Color C = CA.envs().colorOf(Env, R);
      BoolVarId B = boolFor(N->id(), COpKind::AllocBefore, R);
      StateVarId Next = sys().newState();
      sys().addAllocTriple(Cur.at(C), B, Next);
      Cur[C] = Next;
    }

    VecMap CoreOut = genCore(N, Env, Cur);

    // Post-chain: potential free_after for every overall-effect region.
    for (RegionVarId R : sortedOverall(N)) {
      if (!Options.EarlyFree && !introduces(N, R))
        continue;
      Color C = CA.envs().colorOf(Env, R);
      BoolVarId B = boolFor(N->id(), COpKind::FreeAfter, R);
      StateVarId Next = sys().newState();
      sys().addDeallocTriple(CoreOut.at(C), B, Next);
      CoreOut[C] = Next;
    }

    linkEq(CoreOut, OutV);

    // letregion exit: introduced regions must not be left allocated.
    for (RegionVarId R : N->boundRegions())
      sys().restrictState(OutV.at(CA.envs().colorOf(Env, R)), StU | StD);

    return {In, OutV};
  }

  /// True if \p N is the point where \p R enters scope (its letregion
  /// node, or the program root for a global region).
  bool introduces(const RExpr *N, RegionVarId R) const {
    for (RegionVarId B : N->boundRegions())
      if (B == R)
        return true;
    if (N == Prog.Root)
      for (RegionVarId G : Prog.GlobalRegions)
        if (G == R)
          return true;
    return false;
  }

  std::vector<RegionVarId> sortedOverall(const RExpr *N) const {
    return std::vector<RegionVarId>(N->overallEffect().begin(),
                                    N->overallEffect().end());
  }

  /// Links child (in its own context) into the current chain: equates
  /// \p Cur with the child's in vector and returns the child's out vector
  /// projected onto \p MyColors.
  VecMap genChild(const RExpr *Child, RegEnvId Env, const VecMap &Cur,
                  const std::set<Color> &MyColors) {
    auto [CIn, COut] = genCtx(Child, Env);
    linkEq(Cur, CIn);
    return project(COut, MyColors);
  }

  VecMap genCore(const RExpr *N, RegEnvId Env, VecMap Cur) {
    std::set<Color> MyColors;
    for (const auto &[C, S] : Cur)
      MyColors.insert(C);

    auto requireReadsWrites = [&](const VecMap &V) {
      if (N->hasWriteRegion())
        requireA(V, CA.envs().colorOf(Env, N->writeRegion()));
      for (RegionVarId R : N->readRegions())
        requireA(V, CA.envs().colorOf(Env, R));
    };

    switch (N->kind()) {
    case RExpr::Kind::Int:
    case RExpr::Kind::Bool:
    case RExpr::Kind::Unit:
    case RExpr::Kind::Nil:
    case RExpr::Kind::Lambda:
    case RExpr::Kind::RegApp:
      requireReadsWrites(Cur);
      return Cur;
    case RExpr::Kind::Var:
      return Cur;
    case RExpr::Kind::Let: {
      const auto *L = cast<RLetExpr>(N);
      VecMap AfterInit = genChild(L->init(), Env, Cur, MyColors);
      return genChild(L->body(), Env, AfterInit, MyColors);
    }
    case RExpr::Kind::Letrec: {
      const auto *L = cast<RLetrecExpr>(N);
      // Storing the region-polymorphic closure writes ρf.
      requireReadsWrites(Cur);
      return genChild(L->body(), Env, Cur, MyColors);
    }
    case RExpr::Kind::If: {
      const auto *I = cast<RIfExpr>(N);
      VecMap AfterCond = genChild(I->cond(), Env, Cur, MyColors);
      // The condition's region is read after it is evaluated.
      requireA(AfterCond, CA.envs().colorOf(Env, N->readRegions()[0]));
      auto [TIn, TOut] = genCtx(I->thenExpr(), Env);
      auto [EIn, EOut] = genCtx(I->elseExpr(), Env);
      linkEq(AfterCond, TIn);
      linkEq(AfterCond, EIn);
      VecMap Joined = freshVec(MyColors);
      linkEq(project(TOut, MyColors), Joined);
      linkEq(project(EOut, MyColors), Joined);
      return Joined;
    }
    case RExpr::Kind::Pair: {
      const auto *P = cast<RPairExpr>(N);
      VecMap AfterFirst = genChild(P->first(), Env, Cur, MyColors);
      VecMap AfterSecond =
          genChild(P->second(), Env, AfterFirst, MyColors);
      requireReadsWrites(AfterSecond);
      return AfterSecond;
    }
    case RExpr::Kind::Cons: {
      const auto *Cn = cast<RConsExpr>(N);
      VecMap AfterHead = genChild(Cn->head(), Env, Cur, MyColors);
      VecMap AfterTail = genChild(Cn->tail(), Env, AfterHead, MyColors);
      requireReadsWrites(AfterTail);
      return AfterTail;
    }
    case RExpr::Kind::UnOp: {
      const auto *U = cast<RUnOpExpr>(N);
      VecMap AfterOp = genChild(U->operand(), Env, Cur, MyColors);
      requireReadsWrites(AfterOp);
      return AfterOp;
    }
    case RExpr::Kind::BinOp: {
      const auto *B = cast<RBinOpExpr>(N);
      VecMap AfterLhs = genChild(B->lhs(), Env, Cur, MyColors);
      VecMap AfterRhs = genChild(B->rhs(), Env, AfterLhs, MyColors);
      requireReadsWrites(AfterRhs);
      return AfterRhs;
    }
    case RExpr::Kind::App:
      return genApp(cast<RAppExpr>(N), Env, std::move(Cur), MyColors);
    }
    assert(false && "unknown node kind");
    return Cur;
  }

  VecMap genApp(const RAppExpr *N, RegEnvId Env, VecMap Cur,
                const std::set<Color> &MyColors) {
    VecMap AfterFn = genChild(N->fn(), Env, Cur, MyColors);
    VecMap AfterArg = genChild(N->arg(), Env, AfterFn, MyColors);

    // Fetching the closure reads its region.
    RegionVarId ClosRegion = N->readRegions()[0];
    Color ClosColor = CA.envs().colorOf(Env, ClosRegion);
    requireA(AfterArg, ClosColor);

    // free_app choice point on the closure's region (§1): after the fetch,
    // before the body.
    VecMap FA = AfterArg;
    if (Options.FreeApp) {
      BoolVarId B = boolFor(N->id(), COpKind::FreeApp, ClosRegion);
      StateVarId Next = sys().newState();
      sys().addDeallocTriple(FA.at(ClosColor), B, Next);
      FA[ClosColor] = Next;
    }

    // Caller-side effect colors of the call (set B in Fig. 4).
    std::set<RegionVarId> CallerLatent;
    {
      EffectSet Probe;
      Probe.EffectVars.insert(
          Prog.Types.arrowEffect(N->fn()->type()));
      CallerLatent = Prog.Types.regionsOf(Probe);
    }
    std::set<Color> CallerB;
    for (RegionVarId R : CallerLatent)
      if (CA.envs().maps(Env, R))
        CallerB.insert(CA.envs().colorOf(Env, R));

    VecMap Result = freshVec(MyColors);

    RegEnvId FnCtxEnv = CA.contextEnv(N->fn(), Env);
    const std::set<AbsClosureId> &Closures =
        CA.valuesOf(N->fn()->id(), FnCtxEnv);

    std::set<Color> BAll; // union of linked callee effect colors
    for (AbsClosureId Id : Closures) {
      const AbsClosure &Cl = CA.closure(Id);
      std::set<regions::RegionVarId> CalleeLatent = CA.latentOf(Cl);
      std::set<Color> CalleeB = CA.envs().colorsOf(Cl.Env, CalleeLatent);
      auto [BIn, BOut] = genCtx(CA.bodyOf(Cl), Cl.Env);

      // The B-equalities of Fig. 4 are justified only when the closure's
      // environment is color-consistent with the caller's: every *free*
      // region name mapped by both must have the same color. The callee's
      // region formals are excluded — rebinding them per call is exactly
      // what region polymorphism does, and their colors are caller colors
      // of the actuals by construction. Closures created in this caller's
      // lineage satisfy the check; closures that arrived through merged
      // flows (the escape pool, merged variable sets) may not.
      std::set<regions::RegionVarId> Formals;
      if (const auto *Callee = dyn_cast<RLetrecExpr>(Cl.Fun))
        Formals.insert(Callee->formals().begin(),
                       Callee->formals().end());
      bool Aligned = true;
      for (const auto &[Var, C] : CA.envs().get(Cl.Env)) {
        if (Formals.count(Var))
          continue;
        if (CA.envs().maps(Env, Var) &&
            CA.envs().colorOf(Env, Var) != C) {
          Aligned = false;
          break;
        }
      }

      if (Aligned) {
        // Equate caller and callee states over B on entry and exit.
        for (Color C : CalleeB) {
          auto FAIt = FA.find(C);
          auto BInIt = BIn.find(C);
          if (FAIt != FA.end() && BInIt != BIn.end())
            sys().addEq(FAIt->second, BInIt->second);
          auto ROutIt = Result.find(C);
          auto BOutIt = BOut.find(C);
          if (ROutIt != Result.end() && BOutIt != BOut.end())
            sys().addEq(ROutIt->second, BOutIt->second);
        }
        BAll.insert(CalleeB.begin(), CalleeB.end());
      } else {
        // Conservative fallback: pin every region the call touches
        // allocated across the call, on both sides — by *name* on the
        // caller side, so the obligation reaches the caller's own
        // allocation chain regardless of color numbering.
        ++Out.NumPinnedCalls;
        for (regions::RegionVarId V : CalleeLatent) {
          if (CA.envs().maps(Env, V)) {
            Color C = CA.envs().colorOf(Env, V);
            auto FAIt = FA.find(C);
            if (FAIt != FA.end())
              sys().restrictState(FAIt->second, StA);
            auto RIt = Result.find(C);
            if (RIt != Result.end())
              sys().restrictState(RIt->second, StA);
            // The caller may not change this region's state across the
            // call (the callee assumes it allocated throughout).
            BAll.insert(C);
          }
        }
        for (Color C : CallerB) {
          auto FAIt = FA.find(C);
          if (FAIt != FA.end())
            sys().restrictState(FAIt->second, StA);
          auto RIt = Result.find(C);
          if (RIt != Result.end())
            sys().restrictState(RIt->second, StA);
          BAll.insert(C);
        }
        for (Color C : CalleeB) {
          auto BInIt = BIn.find(C);
          if (BInIt != BIn.end())
            sys().restrictState(BInIt->second, StA);
          auto BOutIt = BOut.find(C);
          if (BOutIt != BOut.end())
            sys().restrictState(BOutIt->second, StA);
        }
      }
    }

    // Set C: caller regions untouched by the call pass through
    // state-polymorphically. (With no known closures — dead code — all
    // colors pass through.)
    for (Color C : MyColors) {
      if (BAll.count(C) && CallerB.count(C))
        continue;
      auto FAIt = FA.find(C);
      if (FAIt != FA.end())
        sys().addEq(FAIt->second, Result.at(C));
    }
    return Result;
  }

  const RegionProgram &Prog;
  closure::ClosureAnalysis &CA;
  const GenOptions &Options;
  GenResult &Out;
  std::map<std::pair<RNodeId, RegEnvId>, std::pair<VecMap, VecMap>> CtxCache;
  std::map<std::tuple<RNodeId, COpKind, RegionVarId>, BoolVarId> BoolIndex;
};

} // namespace

GenResult constraints::generateConstraints(const RegionProgram &Prog,
                                           closure::ClosureAnalysis &CA,
                                           const GenOptions &Options) {
  GenResult Out;
  Generator G(Prog, CA, Options, Out);
  G.run();
  return Out;
}
