#include "constraints/ConstraintGen.h"

#include <algorithm>

using namespace afl;
using namespace afl::constraints;
using namespace afl::regions;
using closure::AbsClosure;
using closure::AbsClosureId;
using closure::Color;
using closure::RegEnvId;

namespace {

/// A state vector: region color → state variable, as a sorted flat array.
/// Iteration is in ascending color order — the same order the previous
/// std::map representation produced, so the emitted constraint system is
/// unchanged.
class StateVec {
public:
  using Entry = std::pair<Color, StateVarId>;
  using const_iterator = std::vector<Entry>::const_iterator;

  const_iterator begin() const { return V.begin(); }
  const_iterator end() const { return V.end(); }
  size_t size() const { return V.size(); }
  void reserve(size_t N) { V.reserve(N); }

  /// Appends an entry with a color greater than all present ones.
  void append(Color C, StateVarId S) {
    assert((V.empty() || V.back().first < C) && "append must keep order");
    V.push_back({C, S});
  }

  const StateVarId *find(Color C) const {
    auto It = std::lower_bound(
        V.begin(), V.end(), C,
        [](const Entry &E, Color X) { return E.first < X; });
    if (It != V.end() && It->first == C)
      return &It->second;
    return nullptr;
  }

  StateVarId at(Color C) const {
    const StateVarId *S = find(C);
    assert(S && "color missing from state vector");
    return *S;
  }

  /// Insert-or-assign (the map's operator[]-and-assign).
  void set(Color C, StateVarId S) {
    auto It = std::lower_bound(
        V.begin(), V.end(), C,
        [](const Entry &E, Color X) { return E.first < X; });
    if (It != V.end() && It->first == C)
      It->second = S;
    else
      V.insert(It, {C, S});
  }

private:
  std::vector<Entry> V;
};

class Generator {
public:
  Generator(const RegionProgram &Prog, closure::ClosureAnalysis &CA,
            const GenOptions &Options, GenResult &Out)
      : Prog(Prog), CA(CA), Options(Options), Out(Out) {
    CtxCache.resize(CA.numCtxIds());
    // Pre-size: genApp holds references into this across recursion, so
    // the vector must never reallocate.
    CalleeCache.resize(CA.numClosures());
    for (auto &Index : BoolIndex)
      Index.resize(Prog.numNodes());
  }

  void run() {
    const CtxEntry &Root = genCtx(Prog.Root, CA.rootEnv());
    // Program start: all global regions unallocated.
    // Program end: the result is observed, so every global (result) region
    // must be allocated. (They are reclaimed by program exit.)
    for (RegionVarId R : Prog.GlobalRegions) {
      Color C = CA.envs().colorOf(CA.rootEnv(), R);
      if (const StateVarId *S = Root.In.find(C))
        Out.Sys.restrictState(*S, StU);
      if (const StateVarId *S = Root.Out.find(C))
        Out.Sys.restrictState(*S, StA);
    }
  }

private:
  /// Cached in/out vectors of a generated context, indexed by the closure
  /// analysis' dense context id.
  struct CtxEntry {
    StateVec In, Out;
    bool Done = false;
  };

  ConstraintSystem &sys() { return Out.Sys; }

  /// Shared boolean for a syntactic choice point. Indexed per (kind,
  /// node) as a short region→bool list: every context of a node re-asks
  /// for the same few regions, so a linear scan of a node-local list
  /// beats hashing a 64-bit key.
  BoolVarId boolFor(RNodeId Node, COpKind Kind, RegionVarId Region) {
    auto &Entries =
        BoolIndex[static_cast<unsigned>(Kind)][Node];
    for (const auto &[R, B] : Entries)
      if (R == Region)
        return B;
    BoolVarId B = sys().newBool();
    Entries.push_back({Region, B});
    Out.Choices.push_back({Node, Kind, Region, B});
    return B;
  }

  StateVec freshVec(const FlatSet<Color> &Colors) {
    StateVec V;
    V.reserve(Colors.size());
    for (Color C : Colors)
      V.append(C, sys().newState());
    return V;
  }

  /// Equates \p A and \p B on their common colors (linear merge; addEq
  /// calls in ascending color order, as before).
  void linkEq(const StateVec &A, const StateVec &B) {
    auto IB = B.begin();
    for (const auto &[C, S] : A) {
      while (IB != B.end() && IB->first < C)
        ++IB;
      if (IB != B.end() && IB->first == C)
        sys().addEq(S, IB->second);
    }
  }

  /// Projection of \p V onto \p Colors (all must be present).
  StateVec project(const StateVec &V, const FlatSet<Color> &Colors) {
    StateVec P;
    P.reserve(Colors.size());
    for (Color C : Colors)
      P.append(C, V.at(C));
    return P;
  }

  void requireA(const StateVec &V, Color C) {
    sys().restrictState(V.at(C), StA);
  }

  /// Generates the in/out vectors for context (N, contextEnv(N, Incoming)).
  /// Cached so all call sites of a shared function body link to the same
  /// vectors; recursion terminates because the entry is marked done before
  /// the body is processed. The returned reference is stable: the cache is
  /// pre-sized to the analysis' context count and never reallocates.
  const CtxEntry &genCtx(const RExpr *N, RegEnvId Incoming) {
    RegEnvId Env = CA.contextEnv(N, Incoming);
    uint32_t Ctx = CA.ctxIndex(N->id(), Env);
    assert(Ctx != closure::ClosureAnalysis::NoCtx &&
           "constraint generation reached a context the closure analysis "
           "did not register");
    CtxEntry &E = CtxCache[Ctx];
    if (E.Done)
      return E;
    E.Done = true;

    FlatSet<Color> Colors = CA.envs().colorsOf(Env, N->overallEffect());
    E.In = freshVec(Colors);
    E.Out = freshVec(Colors);
    ++Out.NumContexts;

    // letregion entry: freshly introduced regions start unallocated.
    for (RegionVarId R : N->boundRegions())
      sys().restrictState(E.In.at(CA.envs().colorOf(Env, R)), StU);

    // Pre-chain: potential alloc_before for every overall-effect region,
    // sequentialized in ascending region order (§4.2: aliased variables
    // must not both fire, which sequential triples guarantee). Under the
    // lexical-allocation ablation, only the introducing node gets a
    // choice point.
    StateVec Cur = E.In;
    for (RegionVarId R : N->overallEffect()) {
      if (!Options.LateAlloc && !introduces(N, R))
        continue;
      Color C = CA.envs().colorOf(Env, R);
      BoolVarId B = boolFor(N->id(), COpKind::AllocBefore, R);
      StateVarId Next = sys().newState();
      sys().addAllocTriple(Cur.at(C), B, Next);
      Cur.set(C, Next);
    }

    StateVec CoreOut = genCore(N, Env, std::move(Cur));

    // Post-chain: potential free_after for every overall-effect region.
    for (RegionVarId R : N->overallEffect()) {
      if (!Options.EarlyFree && !introduces(N, R))
        continue;
      Color C = CA.envs().colorOf(Env, R);
      BoolVarId B = boolFor(N->id(), COpKind::FreeAfter, R);
      StateVarId Next = sys().newState();
      sys().addDeallocTriple(CoreOut.at(C), B, Next);
      CoreOut.set(C, Next);
    }

    linkEq(CoreOut, E.Out);

    // letregion exit: introduced regions must not be left allocated.
    for (RegionVarId R : N->boundRegions())
      sys().restrictState(E.Out.at(CA.envs().colorOf(Env, R)), StU | StD);

    return E;
  }

  /// True if \p N is the point where \p R enters scope (its letregion
  /// node, or the program root for a global region).
  bool introduces(const RExpr *N, RegionVarId R) const {
    for (RegionVarId B : N->boundRegions())
      if (B == R)
        return true;
    if (N == Prog.Root)
      for (RegionVarId G : Prog.GlobalRegions)
        if (G == R)
          return true;
    return false;
  }

  /// Links child (in its own context) into the current chain: equates
  /// \p Cur with the child's in vector and returns the child's out vector
  /// projected onto \p MyColors.
  StateVec genChild(const RExpr *Child, RegEnvId Env, const StateVec &Cur,
                    const FlatSet<Color> &MyColors) {
    const CtxEntry &C = genCtx(Child, Env);
    linkEq(Cur, C.In);
    return project(C.Out, MyColors);
  }

  StateVec genCore(const RExpr *N, RegEnvId Env, StateVec Cur) {
    std::vector<Color> Keys;
    Keys.reserve(Cur.size());
    for (const auto &[C, S] : Cur)
      Keys.push_back(C);
    FlatSet<Color> MyColors = FlatSet<Color>::fromSorted(std::move(Keys));

    auto requireReadsWrites = [&](const StateVec &V) {
      if (N->hasWriteRegion())
        requireA(V, CA.envs().colorOf(Env, N->writeRegion()));
      for (RegionVarId R : N->readRegions())
        requireA(V, CA.envs().colorOf(Env, R));
    };

    switch (N->kind()) {
    case RExpr::Kind::Int:
    case RExpr::Kind::Bool:
    case RExpr::Kind::Unit:
    case RExpr::Kind::Nil:
    case RExpr::Kind::Lambda:
    case RExpr::Kind::RegApp:
      requireReadsWrites(Cur);
      return Cur;
    case RExpr::Kind::Var:
      return Cur;
    case RExpr::Kind::Let: {
      const auto *L = cast<RLetExpr>(N);
      StateVec AfterInit = genChild(L->init(), Env, Cur, MyColors);
      return genChild(L->body(), Env, AfterInit, MyColors);
    }
    case RExpr::Kind::Letrec: {
      const auto *L = cast<RLetrecExpr>(N);
      // Storing the region-polymorphic closure writes ρf.
      requireReadsWrites(Cur);
      return genChild(L->body(), Env, Cur, MyColors);
    }
    case RExpr::Kind::If: {
      const auto *I = cast<RIfExpr>(N);
      StateVec AfterCond = genChild(I->cond(), Env, Cur, MyColors);
      // The condition's region is read after it is evaluated.
      requireA(AfterCond, CA.envs().colorOf(Env, N->readRegions()[0]));
      const CtxEntry &T = genCtx(I->thenExpr(), Env);
      const CtxEntry &E = genCtx(I->elseExpr(), Env);
      linkEq(AfterCond, T.In);
      linkEq(AfterCond, E.In);
      StateVec Joined = freshVec(MyColors);
      linkEq(project(T.Out, MyColors), Joined);
      linkEq(project(E.Out, MyColors), Joined);
      return Joined;
    }
    case RExpr::Kind::Pair: {
      const auto *P = cast<RPairExpr>(N);
      StateVec AfterFirst = genChild(P->first(), Env, Cur, MyColors);
      StateVec AfterSecond =
          genChild(P->second(), Env, AfterFirst, MyColors);
      requireReadsWrites(AfterSecond);
      return AfterSecond;
    }
    case RExpr::Kind::Cons: {
      const auto *Cn = cast<RConsExpr>(N);
      StateVec AfterHead = genChild(Cn->head(), Env, Cur, MyColors);
      StateVec AfterTail = genChild(Cn->tail(), Env, AfterHead, MyColors);
      requireReadsWrites(AfterTail);
      return AfterTail;
    }
    case RExpr::Kind::UnOp: {
      const auto *U = cast<RUnOpExpr>(N);
      StateVec AfterOp = genChild(U->operand(), Env, Cur, MyColors);
      requireReadsWrites(AfterOp);
      return AfterOp;
    }
    case RExpr::Kind::BinOp: {
      const auto *B = cast<RBinOpExpr>(N);
      StateVec AfterLhs = genChild(B->lhs(), Env, Cur, MyColors);
      StateVec AfterRhs = genChild(B->rhs(), Env, AfterLhs, MyColors);
      requireReadsWrites(AfterRhs);
      return AfterRhs;
    }
    case RExpr::Kind::App:
      return genApp(cast<RAppExpr>(N), Env, std::move(Cur), MyColors);
    }
    assert(false && "unknown node kind");
    return Cur;
  }

  StateVec genApp(const RAppExpr *N, RegEnvId Env, StateVec Cur,
                  const FlatSet<Color> &MyColors) {
    StateVec AfterFn = genChild(N->fn(), Env, Cur, MyColors);
    StateVec AfterArg = genChild(N->arg(), Env, AfterFn, MyColors);

    // Fetching the closure reads its region.
    RegionVarId ClosRegion = N->readRegions()[0];
    Color ClosColor = CA.envs().colorOf(Env, ClosRegion);
    requireA(AfterArg, ClosColor);

    // free_app choice point on the closure's region (§1): after the fetch,
    // before the body.
    StateVec FA = AfterArg;
    if (Options.FreeApp) {
      BoolVarId B = boolFor(N->id(), COpKind::FreeApp, ClosRegion);
      StateVarId Next = sys().newState();
      sys().addDeallocTriple(FA.at(ClosColor), B, Next);
      FA.set(ClosColor, Next);
    }

    // Caller-side effect colors of the call (set B in Fig. 4). The latent
    // region set depends only on the fn node's arrow type — cache per node.
    const std::set<RegionVarId> &CallerLatent = callerLatentOf(N->fn());
    FlatSet<Color> CallerB;
    for (RegionVarId R : CallerLatent)
      if (CA.envs().maps(Env, R))
        CallerB.insert(CA.envs().colorOf(Env, R));

    StateVec Result = freshVec(MyColors);

    RegEnvId FnCtxEnv = CA.contextEnv(N->fn(), Env);
    const FlatSet<AbsClosureId> &Closures =
        CA.valuesOf(N->fn()->id(), FnCtxEnv);

    FlatSet<Color> BAll; // union of linked callee effect colors
    for (AbsClosureId Id : Closures) {
      const AbsClosure &Cl = CA.closure(Id);
      const CalleeInfo &Callee = calleeInfoOf(Id);
      const std::set<regions::RegionVarId> &CalleeLatent = Callee.Latent;
      const FlatSet<Color> &CalleeB = Callee.B;
      const CtxEntry &Body = genCtx(CA.bodyOf(Cl), Cl.Env);

      // The B-equalities of Fig. 4 are justified only when the closure's
      // environment is color-consistent with the caller's: every *free*
      // region name mapped by both must have the same color. The callee's
      // region formals are excluded — rebinding them per call is exactly
      // what region polymorphism does, and their colors are caller colors
      // of the actuals by construction. Closures created in this caller's
      // lineage satisfy the check; closures that arrived through merged
      // flows (the escape pool, merged variable sets) may not.
      bool Aligned = true;
      for (const auto &[Var, C] : CA.envs().get(Cl.Env)) {
        if (Callee.Formals.contains(Var))
          continue;
        if (CA.envs().maps(Env, Var) &&
            CA.envs().colorOf(Env, Var) != C) {
          Aligned = false;
          break;
        }
      }

      if (Aligned) {
        // Equate caller and callee states over B on entry and exit.
        for (Color C : CalleeB) {
          const StateVarId *FAS = FA.find(C);
          const StateVarId *BInS = Body.In.find(C);
          if (FAS && BInS)
            sys().addEq(*FAS, *BInS);
          const StateVarId *RS = Result.find(C);
          const StateVarId *BOutS = Body.Out.find(C);
          if (RS && BOutS)
            sys().addEq(*RS, *BOutS);
        }
        BAll.unionWith(CalleeB);
      } else {
        // Conservative fallback: pin every region the call touches
        // allocated across the call, on both sides — by *name* on the
        // caller side, so the obligation reaches the caller's own
        // allocation chain regardless of color numbering.
        ++Out.NumPinnedCalls;
        for (regions::RegionVarId V : CalleeLatent) {
          if (CA.envs().maps(Env, V)) {
            Color C = CA.envs().colorOf(Env, V);
            if (const StateVarId *S = FA.find(C))
              sys().restrictState(*S, StA);
            if (const StateVarId *S = Result.find(C))
              sys().restrictState(*S, StA);
            // The caller may not change this region's state across the
            // call (the callee assumes it allocated throughout).
            BAll.insert(C);
          }
        }
        for (Color C : CallerB) {
          if (const StateVarId *S = FA.find(C))
            sys().restrictState(*S, StA);
          if (const StateVarId *S = Result.find(C))
            sys().restrictState(*S, StA);
          BAll.insert(C);
        }
        for (Color C : CalleeB) {
          if (const StateVarId *S = Body.In.find(C))
            sys().restrictState(*S, StA);
          if (const StateVarId *S = Body.Out.find(C))
            sys().restrictState(*S, StA);
        }
      }
    }

    // Set C: caller regions untouched by the call pass through
    // state-polymorphically. (With no known closures — dead code — all
    // colors pass through.)
    for (Color C : MyColors) {
      if (BAll.contains(C) && CallerB.contains(C))
        continue;
      if (const StateVarId *S = FA.find(C))
        sys().addEq(*S, Result.at(C));
    }
    return Result;
  }

  /// Per-closure call-edge facts: the latent region variables of the
  /// closure's arrow type and their colors in the closure's environment
  /// (set B on the callee side). Both are functions of the closure id
  /// alone; applications with many call edges reuse them.
  struct CalleeInfo {
    std::set<regions::RegionVarId> Latent;
    FlatSet<Color> B;
    /// Region formals of a letrec closure (excluded from the alignment
    /// check); empty for lambdas.
    FlatSet<regions::RegionVarId> Formals;
    bool Cached = false;
  };

  const CalleeInfo &calleeInfoOf(AbsClosureId Id) {
    assert(Id < CalleeCache.size() && "closure id out of range");
    CalleeInfo &Info = CalleeCache[Id];
    if (!Info.Cached) {
      const AbsClosure &Cl = CA.closure(Id);
      Info.Latent = CA.latentOf(Cl);
      Info.B = CA.envs().colorsOf(Cl.Env, Info.Latent);
      if (const auto *Callee = dyn_cast<RLetrecExpr>(Cl.Fun))
        for (regions::RegionVarId F : Callee->formals())
          Info.Formals.insert(F);
      Info.Cached = true;
    }
    return Info;
  }

  /// Caller-side latent region variables, keyed by the fn node.
  const std::set<RegionVarId> &callerLatentOf(const RExpr *Fn) {
    auto [It, Inserted] = CallerLatentCache.try_emplace(Fn->id());
    if (Inserted) {
      EffectSet Probe;
      Probe.EffectVars.insert(Prog.Types.arrowEffect(Fn->type()));
      It->second = Prog.Types.regionsOf(Probe);
    }
    return It->second;
  }

  const RegionProgram &Prog;
  closure::ClosureAnalysis &CA;
  const GenOptions &Options;
  GenResult &Out;
  std::vector<CtxEntry> CtxCache;
  std::vector<CalleeInfo> CalleeCache;
  std::unordered_map<RNodeId, std::set<RegionVarId>> CallerLatentCache;
  /// Per choice-point kind and node: (region, boolean variable) pairs.
  std::vector<std::vector<std::pair<RegionVarId, BoolVarId>>> BoolIndex[5];
};

} // namespace

GenResult constraints::generateConstraints(const RegionProgram &Prog,
                                           closure::ClosureAnalysis &CA,
                                           const GenOptions &Options) {
  GenResult Out;
  Generator G(Prog, CA, Options, Out);
  G.run();
  return Out;
}
