//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the ML-like surface language. Supports ML-style
/// nested comments "(* ... *)" and tracks line/column positions.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_LEXER_LEXER_H
#define AFL_LEXER_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace afl {

/// Token kinds. Keywords get dedicated kinds; operators are punctuation.
enum class TokenKind {
  Eof,
  Error,
  IntLit,   // 42
  Ident,    // x, foo
  KwFn,     // fn
  KwLet,    // let
  KwLetrec, // letrec
  KwIn,     // in
  KwEnd,    // end
  KwIf,     // if
  KwThen,   // then
  KwElse,   // else
  KwTrue,   // true
  KwFalse,  // false
  KwNil,    // nil
  KwDiv,    // div
  KwMod,    // mod
  KwFst,    // fst
  KwSnd,    // snd
  KwNull,   // null
  KwHd,     // hd
  KwTl,     // tl
  LParen,   // (
  RParen,   // )
  Comma,    // ,
  DArrow,   // =>
  Equal,    // =
  ColCol,   // ::
  Plus,     // +
  Minus,    // -
  Star,     // *
  Less,     // <
  LessEq,   // <=
};

/// Returns a human-readable name for \p Kind (used in parse errors).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Text views into the original source buffer.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string_view Text;
  int64_t IntValue = 0; // valid iff Kind == IntLit

  bool is(TokenKind K) const { return Kind == K; }
};

/// Lexes a full buffer up front; parsing then indexes into the token list.
class Lexer {
public:
  /// Lexes \p Source completely. Lexical errors are reported to \p Diags
  /// and produce Error tokens.
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// All tokens, ending with exactly one Eof token.
  const std::vector<Token> &tokens() const { return Tokens; }

private:
  void lexAll();
  Token lexToken();
  void skipWhitespaceAndComments();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc here() const { return SourceLoc(Line, Col); }

  std::string_view Source;
  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace afl

#endif // AFL_LEXER_LEXER_H
