#include "lexer/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace afl;

const char *afl::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwLetrec:
    return "'letrec'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwNil:
    return "'nil'";
  case TokenKind::KwDiv:
    return "'div'";
  case TokenKind::KwMod:
    return "'mod'";
  case TokenKind::KwFst:
    return "'fst'";
  case TokenKind::KwSnd:
    return "'snd'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwHd:
    return "'hd'";
  case TokenKind::KwTl:
    return "'tl'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::DArrow:
    return "'=>'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::ColCol:
    return "'::'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  }
  return "token";
}

static TokenKind keywordKind(std::string_view Text) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"fn", TokenKind::KwFn},       {"let", TokenKind::KwLet},
      {"letrec", TokenKind::KwLetrec}, {"in", TokenKind::KwIn},
      {"end", TokenKind::KwEnd},     {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},   {"else", TokenKind::KwElse},
      {"true", TokenKind::KwTrue},   {"false", TokenKind::KwFalse},
      {"nil", TokenKind::KwNil},     {"div", TokenKind::KwDiv},
      {"mod", TokenKind::KwMod},     {"fst", TokenKind::KwFst},
      {"snd", TokenKind::KwSnd},     {"null", TokenKind::KwNull},
      {"hd", TokenKind::KwHd},       {"tl", TokenKind::KwTl},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Ident : It->second;
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {
  lexAll();
}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advancing past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '(' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      unsigned Depth = 1;
      while (Depth != 0) {
        if (atEnd()) {
          Diags.error(Start, "unterminated comment");
          return;
        }
        if (peek() == '(' && peek(1) == '*') {
          advance();
          advance();
          ++Depth;
        } else if (peek() == '*' && peek(1) == ')') {
          advance();
          advance();
          --Depth;
        } else {
          advance();
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  Token Tok;
  Tok.Loc = here();
  if (atEnd()) {
    Tok.Kind = TokenKind::Eof;
    return Tok;
  }

  size_t Start = Pos;
  char C = advance();

  auto finish = [&](TokenKind Kind) {
    Tok.Kind = Kind;
    Tok.Text = Source.substr(Start, Pos - Start);
    return Tok;
  };

  if (std::isdigit(static_cast<unsigned char>(C))) {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    finish(TokenKind::IntLit);
    int64_t Value = 0;
    bool Overflow = false;
    for (char D : Tok.Text) {
      if (Value > (INT64_MAX - (D - '0')) / 10) {
        Overflow = true;
        break;
      }
      Value = Value * 10 + (D - '0');
    }
    if (Overflow) {
      Diags.error(Tok.Loc, "integer literal too large");
      Tok.Kind = TokenKind::Error;
    }
    Tok.IntValue = Value;
    return Tok;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
           peek() == '\'')
      advance();
    finish(TokenKind::Ident);
    Tok.Kind = keywordKind(Tok.Text);
    return Tok;
  }

  switch (C) {
  case '(':
    return finish(TokenKind::LParen);
  case ')':
    return finish(TokenKind::RParen);
  case ',':
    return finish(TokenKind::Comma);
  case '+':
    return finish(TokenKind::Plus);
  case '-':
    return finish(TokenKind::Minus);
  case '*':
    return finish(TokenKind::Star);
  case '=':
    if (peek() == '>') {
      advance();
      return finish(TokenKind::DArrow);
    }
    return finish(TokenKind::Equal);
  case '<':
    if (peek() == '=') {
      advance();
      return finish(TokenKind::LessEq);
    }
    return finish(TokenKind::Less);
  case ':':
    if (peek() == ':') {
      advance();
      return finish(TokenKind::ColCol);
    }
    break;
  default:
    break;
  }

  Diags.error(Tok.Loc, std::string("unexpected character '") + C + "'");
  return finish(TokenKind::Error);
}

void Lexer::lexAll() {
  for (;;) {
    Token Tok = lexToken();
    Tokens.push_back(Tok);
    if (Tok.is(TokenKind::Eof))
      return;
  }
}
