#include "closure/ClosureAnalysis.h"

#include "support/CliParse.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>

using namespace afl;
using namespace afl::closure;
using namespace afl::regions;

unsigned closure::defaultClosureJobs() {
  // Computed once: the env var is a process-level mode switch (CI runs
  // the whole suite under AFL_CLOSURE_JOBS=4), not a per-run knob.
  static unsigned Cached = [] {
    const char *Env = std::getenv("AFL_CLOSURE_JOBS");
    unsigned Jobs = 1;
    if (Env && !parseCliUnsigned(Env, Jobs))
      Jobs = 1;
    return Jobs;
  }();
  return Cached;
}

unsigned closure::defaultClosureWiden() {
  // Same once-per-process contract as defaultClosureJobs: CI runs whole
  // suites under AFL_CLOSURE_WIDEN=8, and the analysis server inherits
  // the knob through default-constructed options.
  static unsigned Cached = [] {
    const char *Env = std::getenv("AFL_CLOSURE_WIDEN");
    unsigned Bound = 0;
    if (Env && !parseCliUnsigned(Env, Bound))
      Bound = 0;
    return Bound;
  }();
  return Cached;
}

size_t ClosureOptions::stepCap(size_t NumNodes) const {
  if (MaxSteps)
    return MaxSteps;
  size_t Nodes = NumNodes ? NumNodes : 1;
  size_t Passes = MaxPasses;
  if (Passes && Nodes > std::numeric_limits<size_t>::max() / Passes)
    return std::numeric_limits<size_t>::max();
  return Passes * Nodes;
}

ClosureAnalysis::ClosureAnalysis(const RegionProgram &Prog,
                                 ClosureOptions Options)
    : Prog(Prog), Options(Options) {
  RegEnvMap Root;
  Color C = 0;
  for (RegionVarId R : Prog.GlobalRegions)
    Root.push_back({R, C++});
  RootEnv = Envs.intern(std::move(Root));

  uint32_t N = Prog.numNodes();
  NodeEnvs.resize(N);
  NodeCtxIds.resize(N);
  CtxEnvCache.resize(N);
  ClosCache.resize(N);
  VarSets.assign(Prog.numVars(), EmptySet);
  VarDeps.resize(Prog.numVars());

  if (Options.Widening) {
    // Latent-effect regions per closure-carrying node, resolved up front
    // so closure creation — including from the parallel workers, which
    // must not touch the type tables — is a flat lookup.
    VisibleRegions.resize(N);
    for (uint32_t I = 0; I != N; ++I) {
      const RExpr *Node = Prog.node(I);
      if (isa<RLambdaExpr>(Node) || isa<RLetrecExpr>(Node))
        VisibleRegions[I] = latentOf({Node, 0});
    }
  }
}

AbsClosureId ClosureAnalysis::internClosure(const RExpr *Fun, RegEnvId Env) {
  uint64_t Key = (static_cast<uint64_t>(Fun->id()) << 32) | Env;
  auto It = ClosureIndex.find(Key);
  if (It != ClosureIndex.end())
    return It->second;
  AbsClosureId Id = static_cast<AbsClosureId>(Closures.size());
  Closures.push_back({Fun, Env});
  ClosureIndex.emplace(Key, Id);
  return Id;
}

AbsClosureId ClosureAnalysis::closureAt(const RExpr *N, RegEnvId Env) {
  auto &Cache = ClosCache[N->id()];
  auto It = std::lower_bound(
      Cache.begin(), Cache.end(), Env,
      [](const auto &E, RegEnvId V) { return E.first < V; });
  if (It != Cache.end() && It->first == Env)
    return It->second;

  AbsClosureId Id;
  if (const auto *L = dyn_cast<RLambdaExpr>(N)) {
    Id = internClosure(N,
                       widenClosureEnv(N, Envs.restrict(Env, L->freeRegions())));
  } else {
    const auto *RA = cast<RRegAppExpr>(N);
    const RLetrecExpr *Callee = Prog.varInfo(RA->fn()).Letrec;
    assert(Callee && "region application of non-letrec");
    RegEnvId ClosEnv = Envs.restrict(Env, Callee->freeRegions());
    for (size_t I = 0; I != Callee->formals().size(); ++I)
      ClosEnv = Envs.extend(ClosEnv, Callee->formals()[I],
                            Envs.colorOf(Env, RA->actuals()[I]));
    Id = internClosure(Callee, widenClosureEnv(Callee, ClosEnv));
  }
  // The cache may have rehomed during interning-driven recursion; re-find
  // the insertion point.
  It = std::lower_bound(Cache.begin(), Cache.end(), Env,
                        [](const auto &E, RegEnvId V) { return E.first < V; });
  Cache.insert(It, {Env, Id});
  return Id;
}

RegEnvId ClosureAnalysis::contextEnv(const RExpr *N, RegEnvId Incoming) {
  if (N->boundRegions().empty())
    return Incoming;
  auto &Cache = CtxEnvCache[N->id()];
  auto It = std::lower_bound(
      Cache.begin(), Cache.end(), Incoming,
      [](const auto &E, RegEnvId V) { return E.first < V; });
  if (It != Cache.end() && It->first == Incoming)
    return It->second;
  RegEnvId Env = Incoming;
  for (RegionVarId R : N->boundRegions())
    Env = Envs.extendFresh(Env, R);
  Cache.insert(It, {Incoming, Env});
  return Env;
}

const FlatSet<AbsClosureId> &ClosureAnalysis::valuesOf(RNodeId N,
                                                       RegEnvId Env) const {
  size_t Pos = NodeEnvs[N].indexOf(Env);
  if (Pos == FlatSet<RegEnvId>::npos)
    return ValueSets.get(EmptySet);
  return ValueSets.get(Ctxs[NodeCtxIds[N][Pos]].Val);
}

uint32_t ClosureAnalysis::ctxIndex(RNodeId N, RegEnvId Env) const {
  size_t Pos = NodeEnvs[N].indexOf(Env);
  if (Pos == FlatSet<RegEnvId>::npos)
    return NoCtx;
  return NodeCtxIds[N][Pos];
}

const RExpr *ClosureAnalysis::bodyOf(const AbsClosure &C) const {
  if (const auto *L = dyn_cast<RLambdaExpr>(C.Fun))
    return L->body();
  return cast<RLetrecExpr>(C.Fun)->fnBody();
}

VarId ClosureAnalysis::paramOf(const AbsClosure &C) const {
  if (const auto *L = dyn_cast<RLambdaExpr>(C.Fun))
    return L->param();
  return cast<RLetrecExpr>(C.Fun)->param();
}

std::set<RegionVarId> ClosureAnalysis::latentOf(const AbsClosure &C) const {
  RTypeId Arrow;
  if (isa<RLambdaExpr>(C.Fun))
    Arrow = C.Fun->type();
  else
    Arrow = Prog.varInfo(cast<RLetrecExpr>(C.Fun)->fn()).Type;
  EffectSet Probe;
  Probe.EffectVars.insert(Prog.Types.arrowEffect(Arrow));
  return Prog.Types.regionsOf(Probe);
}

RegEnvId ClosureAnalysis::widenClosureEnv(const RExpr *Fun, RegEnvId Env) {
  if (!Options.Widening)
    return Env;
  RegEnvMap Map = Envs.get(Env);
  if (!widenRegEnvMap(Map, VisibleRegions[Fun->id()], Options.Widening))
    return Env;
  return Envs.intern(std::move(Map));
}

bool ClosureAnalysis::isWidened(const AbsClosure &C) const {
  if (!Options.Widening)
    return false;
  return !widenedRegEnvVars(Envs.get(C.Env), VisibleRegions[C.Fun->id()],
                            Options.Widening)
              .empty();
}

std::vector<RegionVarId>
ClosureAnalysis::widenedVars(const AbsClosure &C) const {
  if (!Options.Widening)
    return {};
  return widenedRegEnvVars(Envs.get(C.Env), VisibleRegions[C.Fun->id()],
                           Options.Widening);
}

void ClosureAnalysis::recordWideningStats() {
  Stats.WideningBound = Options.Widening;
  if (!Options.Widening)
    return;
  for (const AbsClosure &C : Closures) {
    size_t Vars = widenedVars(C).size();
    if (Vars) {
      ++Stats.WidenedClosures;
      Stats.WidenedVars += Vars;
    }
  }
}

uint32_t ClosureAnalysis::ensureCtx(const RExpr *N, RegEnvId Incoming) {
  return registerCtx(N, contextEnv(N, Incoming));
}

uint32_t ClosureAnalysis::registerCtx(const RExpr *N, RegEnvId Env) {
  RNodeId Node = N->id();
  auto [Pos, Inserted] = NodeEnvs[Node].insertPos(Env);
  std::vector<uint32_t> &Ids = NodeCtxIds[Node];
  if (!Inserted)
    return Ids[Pos];
  uint32_t C = static_cast<uint32_t>(Ctxs.size());
  Ids.insert(Ids.begin() + static_cast<ptrdiff_t>(Pos), C);
  Ctxs.push_back({N, Env, EmptySet});
  CtxDeps.emplace_back();
  InQueue.push_back(0);
  if (Options.UseWorklist)
    enqueue(C);
  else
    Changed = true;
  return C;
}

void ClosureAnalysis::enqueue(uint32_t C) {
  if (InQueue[C])
    return;
  InQueue[C] = 1;
  Queue.push_back(C);
  ++Stats.Enqueued;
}

void ClosureAnalysis::writeVar(VarId V, SetId S) {
  SetId New = ValueSets.unionSets(VarSets[V], S);
  if (New == VarSets[V])
    return;
  VarSets[V] = New;
  if (Options.UseWorklist) {
    for (uint32_t D : VarDeps[V])
      enqueue(D);
  } else {
    Changed = true;
  }
}

void ClosureAnalysis::writePool(SetId S) {
  SetId New = ValueSets.unionSets(EscapePool, S);
  if (New == EscapePool)
    return;
  EscapePool = New;
  if (Options.UseWorklist) {
    for (uint32_t D : PoolDeps)
      enqueue(D);
  } else {
    Changed = true;
  }
}

//===----------------------------------------------------------------------===//
// Worklist fixpoint (production mode)
//===----------------------------------------------------------------------===//

void ClosureAnalysis::process(uint32_t C) {
  const RExpr *N = Ctxs[C].N;
  RegEnvId Env = Ctxs[C].Env;
  SetId Out = EmptySet;

  // Reads a child's current value under this context's environment.
  // \p Dep records the reverse edge so C is re-evaluated when the child
  // grows; children whose value this transfer ignores skip the edge but
  // are still registered as contexts (their own evaluation side-effects
  // — variable bindings, escape-pool writes — propagate through their
  // own dependency edges).
  auto childVal = [&](const RExpr *Child, RegEnvId In, bool Dep) -> SetId {
    uint32_t CC = ensureCtx(Child, In);
    if (Dep)
      CtxDeps[CC].insert(C);
    return Ctxs[CC].Val;
  };

  switch (N->kind()) {
  case RExpr::Kind::Int:
  case RExpr::Kind::Bool:
  case RExpr::Kind::Unit:
  case RExpr::Kind::Nil:
    break;
  case RExpr::Kind::Var: {
    VarId V = cast<RVarExpr>(N)->var();
    VarDeps[V].insert(C);
    Out = VarSets[V];
    break;
  }
  case RExpr::Kind::Lambda:
  case RExpr::Kind::RegApp:
    Out = ValueSets.single(closureAt(N, Env));
    break;
  case RExpr::Kind::App: {
    const auto *A = cast<RAppExpr>(N);
    SetId Fns = childVal(A->fn(), Env, true);
    SetId Args = childVal(A->arg(), Env, true);
    // Copy: unions below may grow the interner and invalidate views.
    std::vector<AbsClosureId> FnList = ValueSets.get(Fns).raw();
    for (AbsClosureId Id : FnList) {
      const AbsClosure Cl = Closures[Id]; // copy: Closures may grow
      writeVar(paramOf(Cl), Args);
      Out = ValueSets.unionSets(Out, childVal(bodyOf(Cl), Cl.Env, true));
    }
    break;
  }
  case RExpr::Kind::Let: {
    const auto *L = cast<RLetExpr>(N);
    writeVar(L->var(), childVal(L->init(), Env, true));
    Out = childVal(L->body(), Env, true);
    break;
  }
  case RExpr::Kind::Letrec:
    // The function body is analyzed when its closures are applied.
    Out = childVal(cast<RLetrecExpr>(N)->body(), Env, true);
    break;
  case RExpr::Kind::If: {
    const auto *I = cast<RIfExpr>(N);
    childVal(I->cond(), Env, false);
    SetId T = childVal(I->thenExpr(), Env, true);
    SetId E = childVal(I->elseExpr(), Env, true);
    Out = ValueSets.unionSets(T, E);
    break;
  }
  case RExpr::Kind::Pair: {
    const auto *P = cast<RPairExpr>(N);
    SetId A = childVal(P->first(), Env, true);
    SetId B = childVal(P->second(), Env, true);
    writePool(ValueSets.unionSets(A, B));
    break;
  }
  case RExpr::Kind::Cons: {
    const auto *Cn = cast<RConsExpr>(N);
    SetId H = childVal(Cn->head(), Env, true);
    childVal(Cn->tail(), Env, false);
    writePool(H);
    break;
  }
  case RExpr::Kind::UnOp: {
    const auto *U = cast<RUnOpExpr>(N);
    childVal(U->operand(), Env, false);
    // Projections whose static type is a function read the escape pool.
    if (Prog.Types.kind(N->type()) == RTypeKind::Arrow) {
      PoolDeps.insert(C);
      Out = EscapePool;
    }
    break;
  }
  case RExpr::Kind::BinOp: {
    const auto *B = cast<RBinOpExpr>(N);
    childVal(B->lhs(), Env, false);
    childVal(B->rhs(), Env, false);
    break;
  }
  }

  SetId NewVal = ValueSets.unionSets(Ctxs[C].Val, Out);
  if (NewVal != Ctxs[C].Val) {
    Ctxs[C].Val = NewVal;
    for (uint32_t D : CtxDeps[C])
      enqueue(D);
  }
}

bool ClosureAnalysis::runWorklist() {
  ensureCtx(Prog.Root, RootEnv);
  size_t Cap = Options.stepCap(Prog.numNodes());
  while (QHead != Queue.size()) {
    if (Stats.ProcessedContexts >= Cap) {
      Error = "closure analysis failed to stabilize within " +
              std::to_string(Cap) + " context evaluations";
      return false;
    }
    uint32_t C = Queue[QHead++];
    InQueue[C] = 0;
    ++Stats.ProcessedContexts;
    process(C);
  }
  Stats.Passes = 1;
  return true;
}

//===----------------------------------------------------------------------===//
// Restart fixpoint (reference mode: the seed algorithm on dense tables)
//===----------------------------------------------------------------------===//

ClosureAnalysis::SetId ClosureAnalysis::analyzeRec(const RExpr *N,
                                                   RegEnvId Incoming) {
  uint32_t C = ensureCtx(N, Incoming);
  if (InProgress.size() <= C)
    InProgress.resize(C + 1, 0);
  // Cycle guard: recursive functions re-enter their own body context; the
  // cached set from the previous pass is the sound approximation.
  if (InProgress[C])
    return Ctxs[C].Val;
  InProgress[C] = 1;
  RegEnvId Env = Ctxs[C].Env;
  SetId Out = EmptySet;

  switch (N->kind()) {
  case RExpr::Kind::Int:
  case RExpr::Kind::Bool:
  case RExpr::Kind::Unit:
  case RExpr::Kind::Nil:
    break;
  case RExpr::Kind::Var:
    Out = VarSets[cast<RVarExpr>(N)->var()];
    break;
  case RExpr::Kind::Lambda:
  case RExpr::Kind::RegApp:
    Out = ValueSets.single(closureAt(N, Env));
    break;
  case RExpr::Kind::App: {
    const auto *A = cast<RAppExpr>(N);
    SetId Fns = analyzeRec(A->fn(), Env);
    SetId Args = analyzeRec(A->arg(), Env);
    std::vector<AbsClosureId> FnList = ValueSets.get(Fns).raw();
    for (AbsClosureId Id : FnList) {
      const AbsClosure Cl = Closures[Id]; // copy: Closures may grow
      writeVar(paramOf(Cl), Args);
      Out = ValueSets.unionSets(Out, analyzeRec(bodyOf(Cl), Cl.Env));
    }
    break;
  }
  case RExpr::Kind::Let: {
    const auto *L = cast<RLetExpr>(N);
    writeVar(L->var(), analyzeRec(L->init(), Env));
    Out = analyzeRec(L->body(), Env);
    break;
  }
  case RExpr::Kind::Letrec:
    Out = analyzeRec(cast<RLetrecExpr>(N)->body(), Env);
    break;
  case RExpr::Kind::If: {
    const auto *I = cast<RIfExpr>(N);
    analyzeRec(I->cond(), Env);
    SetId T = analyzeRec(I->thenExpr(), Env);
    SetId E = analyzeRec(I->elseExpr(), Env);
    Out = ValueSets.unionSets(T, E);
    break;
  }
  case RExpr::Kind::Pair: {
    const auto *P = cast<RPairExpr>(N);
    SetId A = analyzeRec(P->first(), Env);
    SetId B = analyzeRec(P->second(), Env);
    writePool(ValueSets.unionSets(A, B));
    break;
  }
  case RExpr::Kind::Cons: {
    const auto *Cn = cast<RConsExpr>(N);
    SetId H = analyzeRec(Cn->head(), Env);
    analyzeRec(Cn->tail(), Env);
    writePool(H);
    break;
  }
  case RExpr::Kind::UnOp: {
    const auto *U = cast<RUnOpExpr>(N);
    analyzeRec(U->operand(), Env);
    if (Prog.Types.kind(N->type()) == RTypeKind::Arrow)
      Out = EscapePool;
    break;
  }
  case RExpr::Kind::BinOp: {
    const auto *B = cast<RBinOpExpr>(N);
    analyzeRec(B->lhs(), Env);
    analyzeRec(B->rhs(), Env);
    break;
  }
  }

  InProgress[C] = 0;
  ++Stats.ProcessedContexts;
  SetId NewVal = ValueSets.unionSets(Ctxs[C].Val, Out);
  if (NewVal != Ctxs[C].Val) {
    Ctxs[C].Val = NewVal;
    Changed = true;
  }
  return Ctxs[C].Val;
}

bool ClosureAnalysis::runRestart() {
  do {
    Changed = false;
    std::fill(InProgress.begin(), InProgress.end(), 0);
    analyzeRec(Prog.Root, RootEnv);
    ++Stats.Passes;
    if (Changed && Stats.Passes >= Options.MaxPasses) {
      Error = "closure analysis failed to stabilize within " +
              std::to_string(Options.MaxPasses) + " passes";
      return false;
    }
  } while (Changed);
  return true;
}

//===----------------------------------------------------------------------===//
// Canonicalization
//===----------------------------------------------------------------------===//

ClosureAnalysis::SetId
ClosureAnalysis::remapSet(SetId S, const std::vector<AbsClosureId> &Perm,
                          std::unordered_map<SetId, SetId> &Memo) {
  if (S == EmptySet)
    return EmptySet;
  auto It = Memo.find(S);
  if (It != Memo.end())
    return It->second;
  std::vector<AbsClosureId> Mapped = ValueSets.get(S).raw();
  for (AbsClosureId &Id : Mapped)
    Id = Perm[Id];
  std::sort(Mapped.begin(), Mapped.end());
  SetId R = ValueSets.intern(FlatSet<AbsClosureId>::fromSorted(std::move(Mapped)));
  Memo.emplace(S, R);
  return R;
}

void ClosureAnalysis::canonicalize() {
  if (Closures.empty())
    return;
  // Content order: (function node id, lexicographic environment). Ids
  // become independent of the order the fixpoint discovered closures in,
  // so the worklist and restart modes hand constraint generation the
  // same iteration order — and the same emitted system.
  std::vector<AbsClosureId> Order(Closures.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(),
            [&](AbsClosureId A, AbsClosureId B) {
              const AbsClosure &CA = Closures[A];
              const AbsClosure &CB = Closures[B];
              if (CA.Fun->id() != CB.Fun->id())
                return CA.Fun->id() < CB.Fun->id();
              return Envs.get(CA.Env) < Envs.get(CB.Env);
            });
  std::vector<AbsClosureId> Perm(Closures.size());
  for (uint32_t New = 0; New != Order.size(); ++New)
    Perm[Order[New]] = New;
  bool Identity = true;
  for (uint32_t I = 0; I != Perm.size(); ++I)
    if (Perm[I] != I) {
      Identity = false;
      break;
    }
  if (Identity)
    return;

  std::vector<AbsClosure> NewClosures(Closures.size());
  for (uint32_t I = 0; I != Closures.size(); ++I)
    NewClosures[Perm[I]] = Closures[I];
  Closures = std::move(NewClosures);
  ClosureIndex.clear();
  for (uint32_t I = 0; I != Closures.size(); ++I)
    ClosureIndex.emplace(
        (static_cast<uint64_t>(Closures[I].Fun->id()) << 32) |
            Closures[I].Env,
        I);
  // The memoized (env → closure) mapping holds pre-permutation ids and is
  // only consulted by the fixpoint; drop it.
  for (auto &Cache : ClosCache)
    Cache.clear();

  std::unordered_map<SetId, SetId> Memo;
  for (CtxInfo &C : Ctxs)
    C.Val = remapSet(C.Val, Perm, Memo);
  for (SetId &S : VarSets)
    S = remapSet(S, Perm, Memo);
  EscapePool = remapSet(EscapePool, Perm, Memo);
}

bool ClosureAnalysis::runIncremental(const ClosureAnalysis &Prev,
                                     const IncrementalSeed &Seed) {
  Stats = ClosureStats();
  Stats.UsedWorklist = true;
  Stats.Incremental = true;

  // The seed rewrites the private tables wholesale; it only makes sense
  // on a freshly constructed analysis, in worklist mode, from a
  // converged previous revision. A widening-bound mismatch would seed
  // environments widened under a different merge relation than the
  // re-run applies; the caller falls back to a fresh run instead.
  if (!Options.UseWorklist || !Prev.converged() || !Ctxs.empty() ||
      !Closures.empty() || Options.Widening != Prev.Options.Widening)
    return false;
  if (Seed.NodeMap.size() != Prev.Prog.numNodes() ||
      Seed.VarMap.size() != Prev.Prog.numVars() ||
      Seed.RegionVarMap.size() != Prev.Prog.Types.numRegionVars() ||
      Seed.ParentNode >= Prog.numNodes())
    return false;

  constexpr uint32_t NoMap = IncrementalSeed::NoMap;

  // 1. Environments. Keys are remapped and re-sorted; colors carry over
  // unchanged (extendFresh colors depend only on environment content,
  // which the translation preserves). Environments mentioning a region
  // bound only inside the replaced subtree are dead — they can only
  // belong to subtree contexts, which are dropped below.
  std::vector<RegEnvId> EnvMap(Prev.Envs.size(), NoMap);
  for (RegEnvId E = 0; E != Prev.Envs.size(); ++E) {
    const RegEnvMap &Old = Prev.Envs.get(E);
    RegEnvMap New;
    New.reserve(Old.size());
    bool Dead = false;
    for (const auto &[R, C] : Old) {
      if (R >= Seed.RegionVarMap.size() || Seed.RegionVarMap[R] == NoMap) {
        Dead = true;
        break;
      }
      New.push_back({Seed.RegionVarMap[R], C});
    }
    if (Dead)
      continue;
    std::sort(New.begin(), New.end());
    EnvMap[E] = Envs.intern(std::move(New));
  }
  // The old root environment must translate to the constructor-interned
  // root of this revision, or the global region map does not line up.
  if (EnvMap[Prev.RootEnv] != RootEnv)
    return false;

  // 2. Closures, re-interned in old id order. The maps are injective and
  // closure-carrying nodes (Lambda/Letrec) never sit inside an arrow-free
  // subtree, so every translation is fresh and ids carry over 1:1.
  for (AbsClosureId I = 0; I != Prev.Closures.size(); ++I) {
    const AbsClosure &C = Prev.Closures[I];
    uint32_t OldFun = C.Fun->id();
    if (OldFun >= Seed.NodeMap.size() || Seed.NodeMap[OldFun] == NoMap)
      return false;
    if (C.Env >= EnvMap.size() || EnvMap[C.Env] == NoMap)
      return false;
    uint32_t NewFun = Seed.NodeMap[OldFun];
    if (NewFun >= Prog.numNodes())
      return false;
    if (internClosure(Prog.node(NewFun), EnvMap[C.Env]) != I)
      return false;
  }

  // 3. Value sets. Closure ids are identity, so contents are unchanged;
  // re-interning keeps the map anyway in case id assignment diverges.
  std::vector<SetId> SetMap(Prev.ValueSets.size(), EmptySet);
  for (SetId S = 0; S != Prev.ValueSets.size(); ++S)
    SetMap[S] = ValueSets.intern(Prev.ValueSets.get(S));

  // 4. Contexts: allocate translated ids first (dependency edges may
  // point forward), then translate the edge sets. Contexts of subtree
  // nodes are dropped — the new subtree's contexts are registered fresh
  // when the parent is re-processed. A live outside context with a dead
  // environment would mean the translation contract is broken; bail.
  std::vector<uint32_t> CtxMap(Prev.Ctxs.size(), NoCtx);
  for (uint32_t C = 0; C != Prev.Ctxs.size(); ++C) {
    const CtxInfo &O = Prev.Ctxs[C];
    uint32_t OldN = O.N->id();
    if (OldN >= Seed.NodeMap.size())
      return false;
    uint32_t NewN = Seed.NodeMap[OldN];
    if (NewN == NoMap)
      continue;
    if (NewN >= Prog.numNodes() || EnvMap[O.Env] == NoMap)
      return false;
    RegEnvId Env = EnvMap[O.Env];
    auto [Pos, Inserted] = NodeEnvs[NewN].insertPos(Env);
    if (!Inserted)
      return false; // two old contexts collapsed: maps not injective
    uint32_t Id = static_cast<uint32_t>(Ctxs.size());
    std::vector<uint32_t> &Ids = NodeCtxIds[NewN];
    Ids.insert(Ids.begin() + static_cast<ptrdiff_t>(Pos), Id);
    Ctxs.push_back({Prog.node(NewN), Env, SetMap[O.Val]});
    CtxDeps.emplace_back();
    InQueue.push_back(0);
    CtxMap[C] = Id;
  }
  Stats.SeededContexts = Ctxs.size();

  auto MapCtxSet = [&](const FlatSet<uint32_t> &S) {
    std::vector<uint32_t> Out;
    Out.reserve(S.size());
    for (uint32_t D : S)
      if (CtxMap[D] != NoCtx)
        Out.push_back(CtxMap[D]);
    std::sort(Out.begin(), Out.end());
    return FlatSet<uint32_t>::fromSorted(std::move(Out));
  };
  for (uint32_t C = 0; C != Prev.Ctxs.size(); ++C)
    if (CtxMap[C] != NoCtx)
      CtxDeps[CtxMap[C]] = MapCtxSet(Prev.CtxDeps[C]);

  // 5. Variables and the escape pool. Variables bound inside the old
  // subtree are dropped; variables bound inside the new subtree keep
  // their empty constructor state.
  for (VarId V = 0; V != Prev.VarSets.size(); ++V) {
    uint32_t NewV = Seed.VarMap[V];
    if (NewV == NoMap)
      continue;
    if (NewV >= VarSets.size())
      return false;
    VarSets[NewV] = SetMap[Prev.VarSets[V]];
    VarDeps[NewV] = MapCtxSet(Prev.VarDeps[V]);
  }
  EscapePool = SetMap[Prev.EscapePool];
  PoolDeps = MapCtxSet(Prev.PoolDeps);

  // 6. Frontier: every context of the subtree's parent. Re-processing
  // the parent registers (and thereby enqueues) the new subtree's root
  // context per environment, and the cascade covers the subtree. An
  // empty frontier is correct, not an error: the subtree sits in dead
  // code a from-scratch run would never reach either.
  for (uint32_t C : NodeCtxIds[Seed.ParentNode])
    enqueue(C);

  bool Ok = runWorklist();
  Stats.DirtiedContexts = Stats.ProcessedContexts;
  if (Ok)
    canonicalize();
  Stats.Converged = Ok;
  Stats.NumContexts = Ctxs.size();
  Stats.NumClosures = Closures.size();
  Stats.NumEnvs = Envs.size();
  Stats.InternedSets = ValueSets.size();
  if (Ok)
    recordWideningStats();
  return Ok;
}

bool ClosureAnalysis::run() {
  Stats = ClosureStats();
  Stats.UsedWorklist = Options.UseWorklist;
  unsigned Jobs =
      Options.Jobs ? Options.Jobs : ThreadPool::hardwareThreads();
  bool Ok;
  if (!Options.UseWorklist)
    Ok = runRestart();
  else if (Jobs > 1)
    Ok = runParallel(Jobs);
  else
    Ok = runWorklist();
  if (Ok)
    canonicalize();
  Stats.Converged = Ok;
  Stats.NumContexts = Ctxs.size();
  Stats.NumClosures = Closures.size();
  Stats.NumEnvs = Envs.size();
  Stats.InternedSets = ValueSets.size();
  if (Ok)
    recordWideningStats();
  return Ok;
}
