#include "closure/ClosureAnalysis.h"

using namespace afl;
using namespace afl::closure;
using namespace afl::regions;

ClosureAnalysis::ClosureAnalysis(const RegionProgram &Prog) : Prog(Prog) {
  RegEnvMap Root;
  Color C = 0;
  for (RegionVarId R : Prog.GlobalRegions)
    Root.push_back({R, C++});
  RootEnv = Envs.intern(std::move(Root));
}

AbsClosureId ClosureAnalysis::internClosure(const RExpr *Fun, RegEnvId Env) {
  auto It = ClosureIndex.find({Fun, Env});
  if (It != ClosureIndex.end())
    return It->second;
  AbsClosureId Id = static_cast<AbsClosureId>(Closures.size());
  Closures.push_back({Fun, Env});
  ClosureIndex.emplace(std::make_pair(Fun, Env), Id);
  return Id;
}

RegEnvId ClosureAnalysis::contextEnv(const RExpr *N, RegEnvId Incoming) {
  RegEnvId Env = Incoming;
  for (RegionVarId R : N->boundRegions())
    Env = Envs.extendFresh(Env, R);
  return Env;
}

const std::set<RegEnvId> &ClosureAnalysis::contextsOf(RNodeId N) const {
  static const std::set<RegEnvId> Empty;
  auto It = Contexts.find(N);
  return It == Contexts.end() ? Empty : It->second;
}

const std::set<AbsClosureId> &ClosureAnalysis::valuesOf(RNodeId N,
                                                        RegEnvId Env) const {
  static const std::set<AbsClosureId> Empty;
  auto It = Values.find({N, Env});
  return It == Values.end() ? Empty : It->second;
}

const RExpr *ClosureAnalysis::bodyOf(const AbsClosure &C) const {
  if (const auto *L = dyn_cast<RLambdaExpr>(C.Fun))
    return L->body();
  return cast<RLetrecExpr>(C.Fun)->fnBody();
}

VarId ClosureAnalysis::paramOf(const AbsClosure &C) const {
  if (const auto *L = dyn_cast<RLambdaExpr>(C.Fun))
    return L->param();
  return cast<RLetrecExpr>(C.Fun)->param();
}

std::set<RegionVarId> ClosureAnalysis::latentOf(const AbsClosure &C) const {
  RTypeId Arrow;
  if (isa<RLambdaExpr>(C.Fun))
    Arrow = C.Fun->type();
  else
    Arrow = Prog.varInfo(cast<RLetrecExpr>(C.Fun)->fn()).Type;
  EffectSet Probe;
  Probe.EffectVars.insert(Prog.Types.arrowEffect(Arrow));
  return Prog.Types.regionsOf(Probe);
}

size_t ClosureAnalysis::numContexts() const {
  size_t N = 0;
  for (const auto &[Node, Envs] : Contexts)
    N += Envs.size();
  return N;
}

void ClosureAnalysis::addTo(std::map<Key, std::set<AbsClosureId>> &M, Key K,
                            const std::set<AbsClosureId> &NewValues) {
  std::set<AbsClosureId> &S = M[K];
  for (AbsClosureId V : NewValues)
    Changed |= S.insert(V).second;
}

std::set<AbsClosureId> ClosureAnalysis::analyze(const RExpr *N, RegEnvId R) {
  RegEnvId Env = contextEnv(N, R);
  Key K{N->id(), Env};
  Changed |= Contexts[N->id()].insert(Env).second;

  // Cycle guard: recursive functions re-enter their own body context; the
  // cached set from the previous pass is the sound approximation.
  if (!InProgress.insert(K).second)
    return Values[K];

  std::set<AbsClosureId> Out;
  switch (N->kind()) {
  case RExpr::Kind::Int:
  case RExpr::Kind::Bool:
  case RExpr::Kind::Unit:
  case RExpr::Kind::Nil:
    break;
  case RExpr::Kind::Var: {
    const auto &S = VarSets[cast<RVarExpr>(N)->var()];
    Out.insert(S.begin(), S.end());
    break;
  }
  case RExpr::Kind::Lambda: {
    const auto *L = cast<RLambdaExpr>(N);
    Out.insert(internClosure(N, Envs.restrict(Env, L->freeRegions())));
    break;
  }
  case RExpr::Kind::RegApp: {
    const auto *RA = cast<RRegAppExpr>(N);
    const RLetrecExpr *Callee = Prog.varInfo(RA->fn()).Letrec;
    assert(Callee && "region application of non-letrec");
    RegEnvId ClosEnv = Envs.restrict(Env, Callee->freeRegions());
    for (size_t I = 0; I != Callee->formals().size(); ++I)
      ClosEnv = Envs.extend(ClosEnv, Callee->formals()[I],
                            Envs.colorOf(Env, RA->actuals()[I]));
    Out.insert(internClosure(Callee, ClosEnv));
    break;
  }
  case RExpr::Kind::App: {
    const auto *A = cast<RAppExpr>(N);
    std::set<AbsClosureId> Fns = analyze(A->fn(), Env);
    std::set<AbsClosureId> Args = analyze(A->arg(), Env);
    for (AbsClosureId Id : Fns) {
      const AbsClosure Cl = Closures[Id]; // copy: Closures may grow
      // Bind the parameter and analyze the body under the closure's env.
      std::set<AbsClosureId> &PS = VarSets[paramOf(Cl)];
      for (AbsClosureId V : Args)
        Changed |= PS.insert(V).second;
      std::set<AbsClosureId> BodyVals = analyze(bodyOf(Cl), Cl.Env);
      Out.insert(BodyVals.begin(), BodyVals.end());
    }
    break;
  }
  case RExpr::Kind::Let: {
    const auto *L = cast<RLetExpr>(N);
    std::set<AbsClosureId> Init = analyze(L->init(), Env);
    std::set<AbsClosureId> &VS = VarSets[L->var()];
    for (AbsClosureId V : Init)
      Changed |= VS.insert(V).second;
    Out = analyze(L->body(), Env);
    break;
  }
  case RExpr::Kind::Letrec:
    // The function body is analyzed when its closures are applied.
    Out = analyze(cast<RLetrecExpr>(N)->body(), Env);
    break;
  case RExpr::Kind::If: {
    const auto *I = cast<RIfExpr>(N);
    analyze(I->cond(), Env);
    std::set<AbsClosureId> T = analyze(I->thenExpr(), Env);
    std::set<AbsClosureId> E = analyze(I->elseExpr(), Env);
    Out.insert(T.begin(), T.end());
    Out.insert(E.begin(), E.end());
    break;
  }
  case RExpr::Kind::Pair: {
    const auto *P = cast<RPairExpr>(N);
    std::set<AbsClosureId> A = analyze(P->first(), Env);
    std::set<AbsClosureId> B = analyze(P->second(), Env);
    for (AbsClosureId V : A)
      Changed |= EscapePool.insert(V).second;
    for (AbsClosureId V : B)
      Changed |= EscapePool.insert(V).second;
    break;
  }
  case RExpr::Kind::Cons: {
    const auto *Cn = cast<RConsExpr>(N);
    std::set<AbsClosureId> H = analyze(Cn->head(), Env);
    analyze(Cn->tail(), Env);
    for (AbsClosureId V : H)
      Changed |= EscapePool.insert(V).second;
    break;
  }
  case RExpr::Kind::UnOp: {
    const auto *U = cast<RUnOpExpr>(N);
    analyze(U->operand(), Env);
    // Projections whose static type is a function read the escape pool.
    if (Prog.Types.kind(N->type()) == RTypeKind::Arrow)
      Out.insert(EscapePool.begin(), EscapePool.end());
    break;
  }
  case RExpr::Kind::BinOp: {
    const auto *B = cast<RBinOpExpr>(N);
    analyze(B->lhs(), Env);
    analyze(B->rhs(), Env);
    break;
  }
  }

  InProgress.erase(K);
  addTo(Values, K, Out);
  return Values[K];
}

unsigned ClosureAnalysis::run() {
  unsigned Passes = 0;
  do {
    Changed = false;
    InProgress.clear();
    analyze(Prog.Root, RootEnv);
    ++Passes;
    assert(Passes < 1000 && "closure analysis failed to stabilize");
  } while (Changed);
  return Passes;
}
