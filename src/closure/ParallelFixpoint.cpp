//===----------------------------------------------------------------------===//
///
/// \file
/// Partitioned parallel worklist for the extended closure analysis.
///
/// The fixpoint runs in rounds over the worklist frontier:
///
///   1. Drain the queue into a frontier. Small frontiers (below
///      ClosureOptions::ParallelMinFrontier) are processed inline with the
///      ordinary sequential transfer function — partitioning only pays
///      off when there is real width.
///   2. Partition the frontier into independent components: union-find
///      over the dependency edges the worklist already maintains
///      (CtxDeps restricted to frontier members). Contexts that are
///      known to read each other land in one partition so value growth
///      propagates inside a single task instead of across rounds.
///   3. Run every partition on the shared ThreadPool. Workers see the
///      analysis tables as a frozen snapshot: dense IDs below the
///      round's table sizes (EBase/KBase/CBase for environments,
///      closures, contexts) are global and read-only; anything a worker
///      discovers gets a thread-local overlay ID at or above the base.
///      Overlays always probe the global interners first
///      (RegEnvTable::find, ClosureIndex, NodeEnvs), so a local ID
///      means genuinely new content. Each worker drives its partition's
///      members to a local fixpoint with a member-local worklist,
///      logging every dependency read, variable/pool write, discovered
///      environment/closure/context, and final member value.
///   4. Commit the partition logs on the calling thread, in partition
///      order (partitions are ordered by smallest member CtxId, members
///      sorted ascending): intern overlay environments/closures/
///      contexts into the global tables, translate overlay IDs, apply
///      monotone unions, insert dependency edges. Then a sweep enqueues
///      the dependents of every context/variable (and the escape pool)
///      whose value changed this round — including readers in *other*
///      partitions that evaluated against the stale snapshot.
///
/// Determinism: worker execution is a pure function of (snapshot,
/// partition) — workers never touch shared mutable state — and the
/// commit order is fixed, so the whole run is reproducible regardless
/// of thread scheduling. Byte-identity with the sequential modes does
/// not even require that: both compute the unique least fixpoint of the
/// same monotone transfer function, post-fixpoint canonicalization
/// renumbers abstract closures into content order, and nothing
/// downstream iterates env- or context-ID order (docs/ANALYSIS_CORE.md)
/// — which tests/ClosureDifferentialTest.cpp proves over the corpus and
/// 500 random programs.
///
//===----------------------------------------------------------------------===//

#include "closure/ClosureAnalysis.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <unordered_map>

using namespace afl;
using namespace afl::closure;
using namespace afl::regions;

namespace {

uint64_t hashEnvContent(const RegEnvMap &Map) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (const auto &[Var, C] : Map) {
    H ^= (static_cast<uint64_t>(Var) << 32) | C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

namespace afl {
namespace closure {

class ParallelEngine {
public:
  ParallelEngine(ClosureAnalysis &A, unsigned Jobs) : A(A), Jobs(Jobs) {}

  bool run();

private:
  using SetId = SetInterner<AbsClosureId>::SetId;
  static constexpr SetId EmptySet = SetInterner<AbsClosureId>::Empty;
  /// A value set in a worker: sorted mixed IDs — global AbsClosureIds
  /// below KBase, worker-local overlay IDs at or above it.
  using Content = FlatSet<uint32_t>;

  /// One partition's evaluation state and, after it ran, its log. The
  /// worker only reads the frozen global tables (through G) and writes
  /// here; the commit step replays it into the global tables.
  struct Worker {
    const ClosureAnalysis &G;
    /// Snapshot table sizes: IDs below these are global and frozen.
    uint32_t EBase, KBase, CBase;
    /// Partition members: sorted global CtxIds.
    std::vector<uint32_t> Members;
    /// Global CtxId → index in Members.
    std::unordered_map<uint32_t, size_t> MemberIdx;

    // Thread-local overlays (creation order — the commit step interns
    // them in this order, keeping the run deterministic).
    std::vector<RegEnvMap> LEnvs;
    std::unordered_map<uint64_t, std::vector<uint32_t>> LEnvIndex;
    std::vector<std::pair<const RExpr *, uint32_t>> LClos; // (fun, envRef)
    std::unordered_map<uint64_t, uint32_t> LClosIndex;
    std::vector<std::pair<const RExpr *, uint32_t>> LCtxs; // (node, envRef)
    std::unordered_map<uint64_t, uint32_t> LCtxIndex;

    /// Member value overlays (parallel to Members; seeded from the
    /// snapshot) and written-variable / escape-pool overlays.
    std::vector<Content> MemberVal;
    std::unordered_map<VarId, Content> LVars;
    std::vector<VarId> VarWriteOrder;
    Content LPool;
    bool PoolWritten = false;

    // Dependency-edge log (exactly the edges the sequential transfer
    // function would have inserted).
    std::vector<std::pair<uint32_t, uint32_t>> EdgeCtx; // (childRef, C)
    std::vector<std::pair<VarId, uint32_t>> EdgeVar;
    std::vector<uint32_t> EdgePool;

    // Member-local worklist: readers among members, re-enqueued when a
    // local overlay value grows.
    std::vector<FlatSet<uint32_t>> CtxReaders; // per member index
    std::unordered_map<VarId, FlatSet<uint32_t>> VarReaders;
    FlatSet<uint32_t> PoolReaders;
    std::vector<uint32_t> LQueue;
    std::vector<uint8_t> LIn;
    size_t LHead = 0;

    size_t Evals = 0;
    size_t LocalEnqueued = 0;
    size_t Budget = 0;
    bool OverBudget = false;

    Worker(const ClosureAnalysis &G, uint32_t EBase, uint32_t KBase,
           uint32_t CBase)
        : G(G), EBase(EBase), KBase(KBase), CBase(CBase) {}

    void run();
    void evalMember(size_t MIdx);

    Content contentOfSet(SetId S) const {
      return Content::fromSorted(G.ValueSets.get(S).raw());
    }

    const RegEnvMap &envContent(uint32_t E) const {
      return E < EBase ? G.Envs.get(E) : LEnvs[E - EBase];
    }

    uint32_t findOrAddEnv(RegEnvMap Map) {
      RegEnvId GId;
      if (G.Envs.find(Map, GId))
        return GId;
      std::vector<uint32_t> &Bucket = LEnvIndex[hashEnvContent(Map)];
      for (uint32_t Id : Bucket)
        if (LEnvs[Id] == Map)
          return EBase + Id;
      uint32_t Id = static_cast<uint32_t>(LEnvs.size());
      LEnvs.push_back(std::move(Map));
      Bucket.push_back(Id);
      return EBase + Id;
    }

    Color colorOf(uint32_t E, RegionVarId Var) const {
      const RegEnvMap &M = envContent(E);
      auto It = std::lower_bound(
          M.begin(), M.end(), Var,
          [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
      assert(It != M.end() && It->first == Var &&
             "region variable not in abstract environment");
      return It->second;
    }

    uint32_t restrictEnv(uint32_t E, const std::set<RegionVarId> &Keep) {
      RegEnvMap Out;
      Out.reserve(Keep.size());
      for (const auto &[Var, C] : envContent(E))
        if (Keep.count(Var))
          Out.push_back({Var, C});
      assert(Out.size() == Keep.size() &&
             "restriction set contains unmapped region variables");
      return findOrAddEnv(std::move(Out));
    }

    uint32_t extendEnv(uint32_t E, RegionVarId Var, Color C) {
      RegEnvMap Out = envContent(E);
      auto It = std::lower_bound(
          Out.begin(), Out.end(), Var,
          [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
      if (It != Out.end() && It->first == Var)
        It->second = C;
      else
        Out.insert(It, {Var, C});
      return findOrAddEnv(std::move(Out));
    }

    uint32_t extendFreshEnv(uint32_t E, RegionVarId Var) {
      const RegEnvMap &M = envContent(E);
      std::vector<bool> Used(M.size() + 1, false);
      for (const auto &[V, C] : M)
        if (C < Used.size())
          Used[C] = true;
      Color Fresh = 0;
      while (Used[Fresh])
        ++Fresh;
      return extendEnv(E, Var, Fresh);
    }

    uint32_t contextEnvW(const RExpr *N, uint32_t In) {
      if (N->boundRegions().empty())
        return In;
      if (In < EBase) {
        // The global memo is frozen this round; a hit is authoritative.
        const auto &Cache = G.CtxEnvCache[N->id()];
        auto It = std::lower_bound(
            Cache.begin(), Cache.end(), In,
            [](const auto &E, uint32_t V) { return E.first < V; });
        if (It != Cache.end() && It->first == In)
          return It->second;
      }
      uint32_t E = In;
      for (RegionVarId R : N->boundRegions())
        E = extendFreshEnv(E, R);
      return E;
    }

    uint32_t internClosW(const RExpr *Fun, uint32_t EnvRef) {
      uint64_t Key = (static_cast<uint64_t>(Fun->id()) << 32) | EnvRef;
      if (EnvRef < EBase) {
        auto It = G.ClosureIndex.find(Key);
        if (It != G.ClosureIndex.end())
          return It->second;
      }
      auto [It, Inserted] =
          LClosIndex.try_emplace(Key, static_cast<uint32_t>(LClos.size()));
      if (Inserted)
        LClos.push_back({Fun, EnvRef});
      return KBase + It->second;
    }

    /// Context-set widening on an overlay env ref — the worker-side
    /// twin of ClosureAnalysis::widenClosureEnv. widenRegEnvMap is a
    /// pure function of content, so a widened overlay env translates to
    /// exactly the environment the sequential funnel would intern.
    uint32_t widenEnvW(const RExpr *Fun, uint32_t E) {
      unsigned Bound = G.Options.Widening;
      if (!Bound)
        return E;
      RegEnvMap Map = envContent(E);
      if (!widenRegEnvMap(Map, G.VisibleRegions[Fun->id()], Bound))
        return E;
      return findOrAddEnv(std::move(Map));
    }

    uint32_t closureAtW(const RExpr *N, uint32_t Env) {
      if (Env < EBase) {
        const auto &Cache = G.ClosCache[N->id()];
        auto It = std::lower_bound(
            Cache.begin(), Cache.end(), Env,
            [](const auto &E, uint32_t V) { return E.first < V; });
        if (It != Cache.end() && It->first == Env)
          return It->second;
      }
      if (const auto *L = dyn_cast<RLambdaExpr>(N))
        return internClosW(N, widenEnvW(N, restrictEnv(Env, L->freeRegions())));
      const auto *RA = cast<RRegAppExpr>(N);
      const RLetrecExpr *Callee = G.Prog.varInfo(RA->fn()).Letrec;
      assert(Callee && "region application of non-letrec");
      uint32_t ClosEnv = restrictEnv(Env, Callee->freeRegions());
      for (size_t I = 0; I != Callee->formals().size(); ++I)
        ClosEnv = extendEnv(ClosEnv, Callee->formals()[I],
                            colorOf(Env, RA->actuals()[I]));
      return internClosW(Callee, widenEnvW(Callee, ClosEnv));
    }

    std::pair<const RExpr *, uint32_t> closRefOf(uint32_t Id) const {
      if (Id < KBase) {
        const AbsClosure &C = G.closure(Id);
        return {C.Fun, C.Env};
      }
      return LClos[Id - KBase];
    }

    uint32_t ctxRefOf(const RExpr *N, uint32_t In) {
      uint32_t Env = contextEnvW(N, In);
      if (Env < EBase) {
        uint32_t GC = G.ctxIndex(N->id(), Env);
        if (GC != ClosureAnalysis::NoCtx)
          return GC;
      }
      uint64_t Key = (static_cast<uint64_t>(N->id()) << 32) | Env;
      auto [It, Inserted] =
          LCtxIndex.try_emplace(Key, static_cast<uint32_t>(LCtxs.size()));
      if (Inserted)
        LCtxs.push_back({N, Env});
      return CBase + It->second;
    }

    Content valueOfCtx(uint32_t Ref) const {
      if (Ref >= CBase)
        return Content(); // created this round, never evaluated: empty
      auto It = MemberIdx.find(Ref);
      if (It != MemberIdx.end())
        return MemberVal[It->second];
      return contentOfSet(G.Ctxs[Ref].Val);
    }

    Content childVal(const RExpr *Child, uint32_t In, uint32_t C,
                     size_t MIdx, bool Dep) {
      uint32_t CC = ctxRefOf(Child, In);
      if (Dep) {
        EdgeCtx.push_back({CC, C});
        if (CC < CBase) {
          auto It = MemberIdx.find(CC);
          if (It != MemberIdx.end())
            CtxReaders[It->second].insert(static_cast<uint32_t>(MIdx));
        }
      }
      return valueOfCtx(CC);
    }

    Content readVar(VarId V, uint32_t C, size_t MIdx) {
      EdgeVar.push_back({V, C});
      VarReaders[V].insert(static_cast<uint32_t>(MIdx));
      auto It = LVars.find(V);
      return It != LVars.end() ? It->second : contentOfSet(G.VarSets[V]);
    }

    void writeVarW(VarId V, const Content &S) {
      auto It = LVars.find(V);
      if (It == LVars.end()) {
        It = LVars.emplace(V, contentOfSet(G.VarSets[V])).first;
        VarWriteOrder.push_back(V);
      }
      if (!It->second.unionWith(S))
        return;
      auto RIt = VarReaders.find(V);
      if (RIt != VarReaders.end())
        for (uint32_t R : RIt->second)
          lenqueue(R);
    }

    Content poolContent() const {
      return PoolWritten ? LPool : contentOfSet(G.EscapePool);
    }

    void writePoolW(const Content &S) {
      if (!PoolWritten) {
        LPool = contentOfSet(G.EscapePool);
        PoolWritten = true;
      }
      if (!LPool.unionWith(S))
        return;
      for (uint32_t R : PoolReaders)
        lenqueue(R);
    }

    void lenqueue(uint32_t MIdx) {
      if (LIn[MIdx])
        return;
      LIn[MIdx] = 1;
      LQueue.push_back(MIdx);
      ++LocalEnqueued;
    }
  };

  bool processInline(const std::vector<uint32_t> &Frontier);
  void runRound(const std::vector<uint32_t> &Frontier);
  bool commit(Worker &W);

  ClosureAnalysis &A;
  unsigned Jobs;
  size_t Cap = 0;
  /// Entities whose value grew during the current round's commit; the
  /// post-commit sweep enqueues their dependents.
  std::vector<uint32_t> ChangedCtxs;
  std::vector<VarId> ChangedVars;
  bool PoolChanged = false;
};

//===----------------------------------------------------------------------===//
// Worker: member-local worklist against the frozen snapshot
//===----------------------------------------------------------------------===//

void ParallelEngine::Worker::run() {
  size_t N = Members.size();
  MemberIdx.reserve(N);
  MemberVal.reserve(N);
  CtxReaders.resize(N);
  LIn.assign(N, 1);
  LQueue.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    MemberIdx.emplace(Members[I], I);
    MemberVal.push_back(contentOfSet(G.Ctxs[Members[I]].Val));
    LQueue.push_back(static_cast<uint32_t>(I));
  }
  while (LHead != LQueue.size()) {
    if (Evals >= Budget) {
      OverBudget = true;
      return;
    }
    uint32_t I = LQueue[LHead++];
    LIn[I] = 0;
    evalMember(I);
  }
}

void ParallelEngine::Worker::evalMember(size_t MIdx) {
  uint32_t C = Members[MIdx];
  const RExpr *N = G.Ctxs[C].N;
  uint32_t Env = G.Ctxs[C].Env;
  Content Out;

  switch (N->kind()) {
  case RExpr::Kind::Int:
  case RExpr::Kind::Bool:
  case RExpr::Kind::Unit:
  case RExpr::Kind::Nil:
    break;
  case RExpr::Kind::Var:
    Out = readVar(cast<RVarExpr>(N)->var(), C, MIdx);
    break;
  case RExpr::Kind::Lambda:
  case RExpr::Kind::RegApp:
    Out.insert(closureAtW(N, Env));
    break;
  case RExpr::Kind::App: {
    const auto *A = cast<RAppExpr>(N);
    Content Fns = childVal(A->fn(), Env, C, MIdx, true);
    Content Args = childVal(A->arg(), Env, C, MIdx, true);
    for (uint32_t Id : Fns) {
      auto [Fun, ClEnv] = closRefOf(Id);
      AbsClosure Probe{Fun, 0}; // paramOf/bodyOf only look at Fun
      writeVarW(G.paramOf(Probe), Args);
      Out.unionWith(childVal(G.bodyOf(Probe), ClEnv, C, MIdx, true));
    }
    break;
  }
  case RExpr::Kind::Let: {
    const auto *L = cast<RLetExpr>(N);
    writeVarW(L->var(), childVal(L->init(), Env, C, MIdx, true));
    Out = childVal(L->body(), Env, C, MIdx, true);
    break;
  }
  case RExpr::Kind::Letrec:
    Out = childVal(cast<RLetrecExpr>(N)->body(), Env, C, MIdx, true);
    break;
  case RExpr::Kind::If: {
    const auto *I = cast<RIfExpr>(N);
    childVal(I->cond(), Env, C, MIdx, false);
    Content T = childVal(I->thenExpr(), Env, C, MIdx, true);
    T.unionWith(childVal(I->elseExpr(), Env, C, MIdx, true));
    Out = std::move(T);
    break;
  }
  case RExpr::Kind::Pair: {
    const auto *P = cast<RPairExpr>(N);
    Content AV = childVal(P->first(), Env, C, MIdx, true);
    AV.unionWith(childVal(P->second(), Env, C, MIdx, true));
    writePoolW(AV);
    break;
  }
  case RExpr::Kind::Cons: {
    const auto *Cn = cast<RConsExpr>(N);
    Content H = childVal(Cn->head(), Env, C, MIdx, true);
    childVal(Cn->tail(), Env, C, MIdx, false);
    writePoolW(H);
    break;
  }
  case RExpr::Kind::UnOp: {
    const auto *U = cast<RUnOpExpr>(N);
    childVal(U->operand(), Env, C, MIdx, false);
    if (G.Prog.Types.kind(N->type()) == RTypeKind::Arrow) {
      EdgePool.push_back(C);
      PoolReaders.insert(static_cast<uint32_t>(MIdx));
      Out = poolContent();
    }
    break;
  }
  case RExpr::Kind::BinOp: {
    const auto *B = cast<RBinOpExpr>(N);
    childVal(B->lhs(), Env, C, MIdx, false);
    childVal(B->rhs(), Env, C, MIdx, false);
    break;
  }
  }

  ++Evals;
  if (MemberVal[MIdx].unionWith(Out))
    for (uint32_t R : CtxReaders[MIdx])
      lenqueue(R);
}

//===----------------------------------------------------------------------===//
// Engine: rounds, partitioning, commit, sweep
//===----------------------------------------------------------------------===//

bool ParallelEngine::processInline(const std::vector<uint32_t> &Frontier) {
  for (uint32_t C : Frontier) {
    if (A.Stats.ProcessedContexts >= Cap)
      return false;
    ++A.Stats.ProcessedContexts;
    A.process(C);
  }
  return true;
}

bool ParallelEngine::commit(Worker &W) {
  // 1. Overlay environments, in creation order. intern() dedupes
  // against environments an earlier partition's commit just added.
  std::vector<RegEnvId> EnvTrans(W.LEnvs.size());
  for (size_t I = 0; I != W.LEnvs.size(); ++I)
    EnvTrans[I] = A.Envs.intern(RegEnvMap(W.LEnvs[I]));
  auto resolveEnv = [&](uint32_t E) {
    return E < W.EBase ? E : EnvTrans[E - W.EBase];
  };

  // 2. Overlay closures.
  std::vector<AbsClosureId> ClosTrans(W.LClos.size());
  for (size_t I = 0; I != W.LClos.size(); ++I)
    ClosTrans[I] =
        A.internClosure(W.LClos[I].first, resolveEnv(W.LClos[I].second));

  // 3. Overlay contexts. registerCtx enqueues genuinely new ones.
  std::vector<uint32_t> CtxTrans(W.LCtxs.size());
  for (size_t I = 0; I != W.LCtxs.size(); ++I)
    CtxTrans[I] =
        A.registerCtx(W.LCtxs[I].first, resolveEnv(W.LCtxs[I].second));
  auto resolveCtx = [&](uint32_t C) {
    return C < W.CBase ? C : CtxTrans[C - W.CBase];
  };

  // 4. Dependency edges (FlatSet::insert dedupes repeats).
  for (auto [Child, C] : W.EdgeCtx)
    A.CtxDeps[resolveCtx(Child)].insert(C);
  for (auto [V, C] : W.EdgeVar)
    A.VarDeps[V].insert(C);
  for (uint32_t C : W.EdgePool)
    A.PoolDeps.insert(C);

  // 5. Values: translate overlay closure IDs, re-sort (translation is
  // injective within one worker but not order-preserving), intern,
  // union monotonically. Record what grew for the post-commit sweep.
  auto internContent = [&](const Content &S) -> SetId {
    std::vector<AbsClosureId> Ids = S.raw();
    bool AnyLocal = false;
    for (AbsClosureId &Id : Ids)
      if (Id >= W.KBase) {
        Id = ClosTrans[Id - W.KBase];
        AnyLocal = true;
      }
    if (AnyLocal)
      std::sort(Ids.begin(), Ids.end());
    return A.ValueSets.intern(FlatSet<AbsClosureId>::fromSorted(std::move(Ids)));
  };

  for (size_t I = 0; I != W.Members.size(); ++I) {
    uint32_t C = W.Members[I];
    SetId NewVal = A.ValueSets.unionSets(A.Ctxs[C].Val,
                                         internContent(W.MemberVal[I]));
    if (NewVal != A.Ctxs[C].Val) {
      A.Ctxs[C].Val = NewVal;
      ChangedCtxs.push_back(C);
    }
  }
  for (VarId V : W.VarWriteOrder) {
    SetId NewVal =
        A.ValueSets.unionSets(A.VarSets[V], internContent(W.LVars[V]));
    if (NewVal != A.VarSets[V]) {
      A.VarSets[V] = NewVal;
      ChangedVars.push_back(V);
    }
  }
  if (W.PoolWritten) {
    SetId NewVal =
        A.ValueSets.unionSets(A.EscapePool, internContent(W.LPool));
    if (NewVal != A.EscapePool) {
      A.EscapePool = NewVal;
      PoolChanged = true;
    }
  }

  A.Stats.ProcessedContexts += W.Evals;
  A.Stats.Enqueued += W.LocalEnqueued;
  return !W.OverBudget;
}

bool ParallelEngine::run() {
  using Clock = std::chrono::steady_clock;
  A.Stats.ThreadsUsed = Jobs;
  A.ensureCtx(A.Prog.Root, A.RootEnv);
  // Shared with runWorklist — ClosureOptions::stepCap is the single
  // overflow-checked derivation, so the two modes cannot drift.
  Cap = A.Options.stepCap(A.Prog.numNodes());

  std::vector<uint32_t> Frontier;
  std::vector<std::unique_ptr<Worker>> Workers;
  while (A.QHead != A.Queue.size()) {
    // Drain the queue into this round's frontier (enqueue() dedupes, so
    // the frontier has no repeats) and recycle the queue storage.
    Frontier.clear();
    while (A.QHead != A.Queue.size()) {
      uint32_t C = A.Queue[A.QHead++];
      A.InQueue[C] = 0;
      Frontier.push_back(C);
    }
    A.Queue.clear();
    A.QHead = 0;

    if (Frontier.size() < A.Options.ParallelMinFrontier) {
      ++A.Stats.InlineRounds;
      if (!processInline(Frontier)) {
        A.Error = "closure analysis failed to stabilize within " +
                  std::to_string(Cap) + " context evaluations";
        return false;
      }
      continue;
    }

    auto RoundStart = Clock::now();
    ++A.Stats.ParallelRounds;
    std::sort(Frontier.begin(), Frontier.end());

    // Partition: union-find over the known dependency edges between
    // frontier members. Correctness never depends on this grouping (the
    // post-commit sweep re-enqueues cross-partition staleness); it only
    // keeps value propagation between coupled contexts inside one task.
    size_t N = Frontier.size();
    std::unordered_map<uint32_t, size_t> FIdx;
    FIdx.reserve(N);
    for (size_t I = 0; I != N; ++I)
      FIdx.emplace(Frontier[I], I);
    std::vector<size_t> Parent(N);
    std::iota(Parent.begin(), Parent.end(), 0);
    std::function<size_t(size_t)> Find = [&](size_t X) {
      while (Parent[X] != X) {
        Parent[X] = Parent[Parent[X]];
        X = Parent[X];
      }
      return X;
    };
    auto Unite = [&](size_t X, size_t Y) {
      X = Find(X);
      Y = Find(Y);
      if (X != Y)
        Parent[std::max(X, Y)] = std::min(X, Y);
    };
    for (size_t I = 0; I != N; ++I)
      for (uint32_t D : A.CtxDeps[Frontier[I]]) {
        auto It = FIdx.find(D);
        if (It != FIdx.end())
          Unite(I, It->second);
      }

    // Materialize partitions ordered by smallest member (roots are
    // always the smallest index of their class), members ascending.
    std::vector<std::vector<uint32_t>> Parts;
    std::vector<size_t> RootSlot(N, static_cast<size_t>(-1));
    for (size_t I = 0; I != N; ++I) {
      size_t R = Find(I);
      if (RootSlot[R] == static_cast<size_t>(-1)) {
        RootSlot[R] = Parts.size();
        Parts.emplace_back();
      }
      Parts[RootSlot[R]].push_back(Frontier[I]);
    }

    A.Stats.Partitions += Parts.size();
    uint32_t EBase = static_cast<uint32_t>(A.Envs.size());
    uint32_t KBase = static_cast<uint32_t>(A.Closures.size());
    uint32_t CBase = static_cast<uint32_t>(A.Ctxs.size());
    Workers.clear();
    Workers.reserve(Parts.size());
    for (auto &Members : Parts) {
      A.Stats.LargestPartition =
          std::max(A.Stats.LargestPartition, Members.size());
      auto W = std::make_unique<Worker>(A, EBase, KBase, CBase);
      W->Members = std::move(Members);
      W->Budget = Cap;
      Workers.push_back(std::move(W));
    }

    ThreadPool::RunStats RS = ThreadPool::global().parallelFor(
        Workers.size(), Jobs, [&](size_t I) { Workers[I]->run(); });
    A.Stats.PoolTasksQueued += RS.TasksQueued;
    A.Stats.PoolItemsStolen += RS.RanByWorkers;

    // Deterministic replay: partition order, then the sweep.
    ChangedCtxs.clear();
    ChangedVars.clear();
    PoolChanged = false;
    bool Ok = true;
    for (auto &W : Workers)
      Ok &= commit(*W);
    for (uint32_t C : ChangedCtxs)
      for (uint32_t D : A.CtxDeps[C])
        A.enqueue(D);
    for (VarId V : ChangedVars)
      for (uint32_t D : A.VarDeps[V])
        A.enqueue(D);
    if (PoolChanged)
      for (uint32_t D : A.PoolDeps)
        A.enqueue(D);

    A.Stats.ParallelSeconds +=
        std::chrono::duration<double>(Clock::now() - RoundStart).count();
    if (!Ok || A.Stats.ProcessedContexts >= Cap) {
      A.Error = "closure analysis failed to stabilize within " +
                std::to_string(Cap) + " context evaluations";
      return false;
    }
  }
  A.Stats.Passes = 1;
  return true;
}

} // namespace closure
} // namespace afl

bool ClosureAnalysis::runParallel(unsigned Jobs) {
  ParallelEngine Engine(*this, Jobs);
  return Engine.run();
}
