#include "closure/AbstractEnv.h"

#include <algorithm>

using namespace afl;
using namespace afl::closure;
using regions::RegionVarId;

RegEnvId RegEnvTable::intern(RegEnvMap Map) {
  assert(std::is_sorted(Map.begin(), Map.end(),
                        [](const auto &A, const auto &B) {
                          return A.first < B.first;
                        }) &&
         "abstract region environments must be sorted");
  auto It = Index.find(Map);
  if (It != Index.end())
    return It->second;
  RegEnvId Id = static_cast<RegEnvId>(Envs.size());
  Envs.push_back(Map);
  Index.emplace(std::move(Map), Id);
  return Id;
}

Color RegEnvTable::colorOf(RegEnvId Id, RegionVarId Var) const {
  const RegEnvMap &E = Envs[Id];
  auto It = std::lower_bound(
      E.begin(), E.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  assert(It != E.end() && It->first == Var &&
         "region variable not in abstract environment");
  return It->second;
}

bool RegEnvTable::maps(RegEnvId Id, RegionVarId Var) const {
  const RegEnvMap &E = Envs[Id];
  auto It = std::lower_bound(
      E.begin(), E.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  return It != E.end() && It->first == Var;
}

std::set<Color>
RegEnvTable::colorsOf(RegEnvId Id,
                      const std::set<RegionVarId> &Vars) const {
  std::set<Color> Out;
  for (RegionVarId V : Vars)
    Out.insert(colorOf(Id, V));
  return Out;
}

RegEnvId RegEnvTable::restrict(RegEnvId Id,
                               const std::set<RegionVarId> &Keep) {
  RegEnvMap Out;
  for (const auto &[Var, C] : Envs[Id])
    if (Keep.count(Var))
      Out.push_back({Var, C});
  assert(Out.size() == Keep.size() &&
         "restriction set contains unmapped region variables");
  return intern(std::move(Out));
}

RegEnvId RegEnvTable::extendFresh(RegEnvId Id, RegionVarId Var) {
  const RegEnvMap &E = Envs[Id];
  std::set<Color> Used;
  for (const auto &[V, C] : E)
    Used.insert(C);
  Color Fresh = 0;
  while (Used.count(Fresh))
    ++Fresh;
  return extend(Id, Var, Fresh);
}

RegEnvId RegEnvTable::extend(RegEnvId Id, RegionVarId Var, Color C) {
  RegEnvMap Out = Envs[Id];
  auto It = std::lower_bound(
      Out.begin(), Out.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  if (It != Out.end() && It->first == Var) {
    // Rebinding (e.g. a recursive instantiation reusing a formal name).
    It->second = C;
  } else {
    Out.insert(It, {Var, C});
  }
  return intern(std::move(Out));
}
