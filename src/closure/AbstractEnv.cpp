#include "closure/AbstractEnv.h"

#include <algorithm>

using namespace afl;
using namespace afl::closure;
using regions::RegionVarId;

namespace {

uint64_t hashEnv(const RegEnvMap &Map) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (const auto &[Var, C] : Map) {
    H ^= (static_cast<uint64_t>(Var) << 32) | C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

RegEnvId RegEnvTable::intern(RegEnvMap Map) {
  assert(std::is_sorted(Map.begin(), Map.end(),
                        [](const auto &A, const auto &B) {
                          return A.first < B.first;
                        }) &&
         "abstract region environments must be sorted");
  std::vector<RegEnvId> &Bucket = Index[hashEnv(Map)];
  for (RegEnvId Id : Bucket)
    if (Envs[Id] == Map)
      return Id;
  RegEnvId Id = static_cast<RegEnvId>(Envs.size());
  Envs.push_back(std::move(Map));
  Bucket.push_back(Id);
  return Id;
}

bool RegEnvTable::find(const RegEnvMap &Map, RegEnvId &Out) const {
  auto It = Index.find(hashEnv(Map));
  if (It == Index.end())
    return false;
  for (RegEnvId Id : It->second)
    if (Envs[Id] == Map) {
      Out = Id;
      return true;
    }
  return false;
}

Color RegEnvTable::colorOf(RegEnvId Id, RegionVarId Var) const {
  const RegEnvMap &E = Envs[Id];
  auto It = std::lower_bound(
      E.begin(), E.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  assert(It != E.end() && It->first == Var &&
         "region variable not in abstract environment");
  return It->second;
}

bool RegEnvTable::maps(RegEnvId Id, RegionVarId Var) const {
  const RegEnvMap &E = Envs[Id];
  auto It = std::lower_bound(
      E.begin(), E.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  return It != E.end() && It->first == Var;
}

FlatSet<Color>
RegEnvTable::colorsOf(RegEnvId Id,
                      const std::set<RegionVarId> &Vars) const {
  FlatSet<Color> Out;
  Out.reserve(Vars.size());
  for (RegionVarId V : Vars)
    Out.insert(colorOf(Id, V));
  return Out;
}

RegEnvId RegEnvTable::restrict(RegEnvId Id,
                               const std::set<RegionVarId> &Keep) {
  RegEnvMap Out;
  Out.reserve(Keep.size());
  for (const auto &[Var, C] : Envs[Id])
    if (Keep.count(Var))
      Out.push_back({Var, C});
  assert(Out.size() == Keep.size() &&
         "restriction set contains unmapped region variables");
  return intern(std::move(Out));
}

RegEnvId RegEnvTable::extendFresh(RegEnvId Id, RegionVarId Var) {
  const RegEnvMap &E = Envs[Id];
  // The minimal free color is at most |E|: mark the used colors below
  // that bound and scan — no ordered set needed.
  std::vector<bool> Used(E.size() + 1, false);
  for (const auto &[V, C] : E)
    if (C < Used.size())
      Used[C] = true;
  Color Fresh = 0;
  while (Used[Fresh])
    ++Fresh;
  return extend(Id, Var, Fresh);
}

RegEnvId RegEnvTable::extend(RegEnvId Id, RegionVarId Var, Color C) {
  RegEnvMap Out = Envs[Id];
  auto It = std::lower_bound(
      Out.begin(), Out.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  if (It != Out.end() && It->first == Var) {
    // Rebinding (e.g. a recursive instantiation reusing a formal name).
    It->second = C;
  } else {
    Out.insert(It, {Var, C});
  }
  return intern(std::move(Out));
}

namespace {

/// One color class of an environment, in canonical (smallest-member)
/// order: Map is sorted by variable, so a class's first occurrence *is*
/// its smallest member, and appending on first sight orders the classes.
struct ColorClass {
  Color C;
  bool Visible = false;
};

std::vector<ColorClass> classifyEnv(const RegEnvMap &Map,
                                    const std::set<RegionVarId> &Visible) {
  std::vector<ColorClass> Classes;
  for (const auto &[Var, C] : Map) {
    ColorClass *Cls = nullptr;
    for (ColorClass &Existing : Classes)
      if (Existing.C == C) {
        Cls = &Existing;
        break;
      }
    if (!Cls) {
      Classes.push_back({C, false});
      Cls = &Classes.back();
    }
    Cls->Visible |= Visible.count(Var) != 0;
  }
  return Classes;
}

/// The recoloring map for the invisible classes, or empty when the
/// widening does not fire (invisible-class count within the bound).
/// Identity entries are kept so "does the map contain C" means "is C an
/// invisible-class color".
std::vector<std::pair<Color, Color>>
invisibleRecoloring(const std::vector<ColorClass> &Classes, unsigned Bound) {
  size_t Invisible = 0;
  for (const ColorClass &Cls : Classes)
    if (!Cls.Visible)
      ++Invisible;
  if (Invisible <= Bound)
    return {};
  // Colors the visible classes occupy; the canonical assignment walks
  // ascending colors skipping them.
  FlatSet<Color> Reserved;
  for (const ColorClass &Cls : Classes)
    if (Cls.Visible)
      Reserved.insert(Cls.C);
  std::vector<std::pair<Color, Color>> Recolor;
  Recolor.reserve(Invisible);
  Color Next = 0;
  for (const ColorClass &Cls : Classes) {
    if (Cls.Visible)
      continue;
    while (Reserved.contains(Next))
      ++Next;
    Recolor.push_back({Cls.C, Next++});
  }
  return Recolor;
}

} // namespace

bool closure::widenRegEnvMap(RegEnvMap &Map,
                             const std::set<RegionVarId> &Visible,
                             unsigned Bound) {
  if (Bound == 0 || Map.empty())
    return false;
  std::vector<std::pair<Color, Color>> Recolor =
      invisibleRecoloring(classifyEnv(Map, Visible), Bound);
  if (Recolor.empty())
    return false;
  for (auto &[Var, C] : Map)
    for (const auto &[From, To] : Recolor)
      if (C == From) {
        C = To;
        break;
      }
  return true;
}

std::vector<RegionVarId>
closure::widenedRegEnvVars(const RegEnvMap &Map,
                           const std::set<RegionVarId> &Visible,
                           unsigned Bound) {
  if (Bound == 0 || Map.empty())
    return {};
  std::vector<std::pair<Color, Color>> Recolor =
      invisibleRecoloring(classifyEnv(Map, Visible), Bound);
  std::vector<RegionVarId> Out;
  if (Recolor.empty())
    return Out;
  // Map is sorted by variable, so collecting in order keeps Out sorted.
  for (const auto &[Var, C] : Map)
    for (const auto &[From, To] : Recolor)
      if (C == From) {
        Out.push_back(Var);
        break;
      }
  return Out;
}
