#include "closure/AbstractEnv.h"

#include <algorithm>

using namespace afl;
using namespace afl::closure;
using regions::RegionVarId;

namespace {

uint64_t hashEnv(const RegEnvMap &Map) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (const auto &[Var, C] : Map) {
    H ^= (static_cast<uint64_t>(Var) << 32) | C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

RegEnvId RegEnvTable::intern(RegEnvMap Map) {
  assert(std::is_sorted(Map.begin(), Map.end(),
                        [](const auto &A, const auto &B) {
                          return A.first < B.first;
                        }) &&
         "abstract region environments must be sorted");
  std::vector<RegEnvId> &Bucket = Index[hashEnv(Map)];
  for (RegEnvId Id : Bucket)
    if (Envs[Id] == Map)
      return Id;
  RegEnvId Id = static_cast<RegEnvId>(Envs.size());
  Envs.push_back(std::move(Map));
  Bucket.push_back(Id);
  return Id;
}

bool RegEnvTable::find(const RegEnvMap &Map, RegEnvId &Out) const {
  auto It = Index.find(hashEnv(Map));
  if (It == Index.end())
    return false;
  for (RegEnvId Id : It->second)
    if (Envs[Id] == Map) {
      Out = Id;
      return true;
    }
  return false;
}

Color RegEnvTable::colorOf(RegEnvId Id, RegionVarId Var) const {
  const RegEnvMap &E = Envs[Id];
  auto It = std::lower_bound(
      E.begin(), E.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  assert(It != E.end() && It->first == Var &&
         "region variable not in abstract environment");
  return It->second;
}

bool RegEnvTable::maps(RegEnvId Id, RegionVarId Var) const {
  const RegEnvMap &E = Envs[Id];
  auto It = std::lower_bound(
      E.begin(), E.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  return It != E.end() && It->first == Var;
}

FlatSet<Color>
RegEnvTable::colorsOf(RegEnvId Id,
                      const std::set<RegionVarId> &Vars) const {
  FlatSet<Color> Out;
  Out.reserve(Vars.size());
  for (RegionVarId V : Vars)
    Out.insert(colorOf(Id, V));
  return Out;
}

RegEnvId RegEnvTable::restrict(RegEnvId Id,
                               const std::set<RegionVarId> &Keep) {
  RegEnvMap Out;
  Out.reserve(Keep.size());
  for (const auto &[Var, C] : Envs[Id])
    if (Keep.count(Var))
      Out.push_back({Var, C});
  assert(Out.size() == Keep.size() &&
         "restriction set contains unmapped region variables");
  return intern(std::move(Out));
}

RegEnvId RegEnvTable::extendFresh(RegEnvId Id, RegionVarId Var) {
  const RegEnvMap &E = Envs[Id];
  // The minimal free color is at most |E|: mark the used colors below
  // that bound and scan — no ordered set needed.
  std::vector<bool> Used(E.size() + 1, false);
  for (const auto &[V, C] : E)
    if (C < Used.size())
      Used[C] = true;
  Color Fresh = 0;
  while (Used[Fresh])
    ++Fresh;
  return extend(Id, Var, Fresh);
}

RegEnvId RegEnvTable::extend(RegEnvId Id, RegionVarId Var, Color C) {
  RegEnvMap Out = Envs[Id];
  auto It = std::lower_bound(
      Out.begin(), Out.end(), Var,
      [](const auto &Entry, RegionVarId V) { return Entry.first < V; });
  if (It != Out.end() && It->first == Var) {
    // Rebinding (e.g. a recursive instantiation reusing a formal name).
    It->second = C;
  } else {
    Out.insert(It, {Var, C});
  }
  return intern(std::move(Out));
}
