//===----------------------------------------------------------------------===//
///
/// \file
/// Extended closure analysis (paper §3, Fig. 3): for every expression and
/// abstract region environment, the set of abstract closures the
/// expression may evaluate to. An abstract closure pairs a function node
/// (an ordinary lambda, or a letrec function partially applied to region
/// actuals) with the abstract region environment captured at its creation.
///
/// Region aliasing is explicit: abstract environments map region variables
/// to colors, and a region-polymorphic function called with aliased
/// actuals yields an environment mapping two formals to one color.
///
/// Deviations from the paper (documented in DESIGN.md):
///  * Variable value sets are keyed by (unique) binder rather than by
///    (binder, restricted environment). This merges calling contexts — a
///    sound over-approximation that can only add constraints downstream.
///  * Closures stored in pairs/lists are tracked through a global escape
///    pool; projections whose static type is an arrow read the pool.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CLOSURE_CLOSUREANALYSIS_H
#define AFL_CLOSURE_CLOSUREANALYSIS_H

#include "closure/AbstractEnv.h"
#include "regions/RegionProgram.h"

#include <map>

namespace afl {
namespace closure {

/// Dense id of an interned abstract closure.
using AbsClosureId = uint32_t;

/// An abstract closure: a function node plus the abstract region
/// environment under which its body will run. \c Fun is an RLambdaExpr or
/// an RLetrecExpr (whose formals are already bound to colors in \c Env).
struct AbsClosure {
  const regions::RExpr *Fun = nullptr;
  RegEnvId Env = 0;
};

/// Runs the analysis over a finalized region program and exposes the
/// results to constraint generation.
class ClosureAnalysis {
public:
  explicit ClosureAnalysis(const regions::RegionProgram &Prog);

  /// Iterates to a fixpoint. Returns the number of passes taken.
  unsigned run();

  RegEnvTable &envs() { return Envs; }
  const RegEnvTable &envs() const { return Envs; }

  /// The abstract environment of the program's top level (globals mapped
  /// to distinct colors 0..n-1).
  RegEnvId rootEnv() const { return RootEnv; }

  /// The context environment for evaluating \p N when reached under
  /// \p Incoming: \p Incoming extended with N's letregion bindings (each
  /// given the minimal free color).
  RegEnvId contextEnv(const regions::RExpr *N, RegEnvId Incoming);

  const AbsClosure &closure(AbsClosureId Id) const { return Closures[Id]; }

  /// All context environments under which \p N was analyzed.
  const std::set<RegEnvId> &contextsOf(regions::RNodeId N) const;

  /// Abstract value of \p N under context environment \p Env (must be a
  /// registered context).
  const std::set<AbsClosureId> &valuesOf(regions::RNodeId N,
                                         RegEnvId Env) const;

  /// For a closure: its body node and the parameter variable.
  const regions::RExpr *bodyOf(const AbsClosure &C) const;
  regions::VarId paramOf(const AbsClosure &C) const;

  /// Latent-effect region variables of the closure's arrow type (in the
  /// closure's own frame: formal names for letrec closures).
  std::set<regions::RegionVarId> latentOf(const AbsClosure &C) const;

  size_t numContexts() const;
  size_t numClosures() const { return Closures.size(); }

private:
  using Key = std::pair<regions::RNodeId, RegEnvId>;

  AbsClosureId internClosure(const regions::RExpr *Fun, RegEnvId Env);

  /// Analyzes \p N under incoming env \p R (pre-letregion); returns the
  /// abstract value set (by value: the underlying map may rehash).
  std::set<AbsClosureId> analyze(const regions::RExpr *N, RegEnvId R);

  /// Unions \p Values into the set at \p K; sets Changed on growth.
  void addTo(std::map<Key, std::set<AbsClosureId>> &M, Key K,
             const std::set<AbsClosureId> &Values);

  const regions::RegionProgram &Prog;
  RegEnvTable Envs;
  RegEnvId RootEnv = 0;

  std::vector<AbsClosure> Closures;
  std::map<std::pair<const regions::RExpr *, RegEnvId>, AbsClosureId>
      ClosureIndex;

  std::map<Key, std::set<AbsClosureId>> Values;
  std::map<regions::VarId, std::set<AbsClosureId>> VarSets;
  std::map<regions::RNodeId, std::set<RegEnvId>> Contexts;
  std::set<AbsClosureId> EscapePool;

  std::set<Key> InProgress; // per-pass cycle guard
  bool Changed = false;
};

} // namespace closure
} // namespace afl

#endif // AFL_CLOSURE_CLOSUREANALYSIS_H
