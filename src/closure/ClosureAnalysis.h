//===----------------------------------------------------------------------===//
///
/// \file
/// Extended closure analysis (paper §3, Fig. 3): for every expression and
/// abstract region environment, the set of abstract closures the
/// expression may evaluate to. An abstract closure pairs a function node
/// (an ordinary lambda, or a letrec function partially applied to region
/// actuals) with the abstract region environment captured at its creation.
///
/// Region aliasing is explicit: abstract environments map region variables
/// to colors, and a region-polymorphic function called with aliased
/// actuals yields an environment mapping two formals to one color.
///
/// The analysis state is dense and ID-indexed (docs/ANALYSIS_CORE.md):
/// every discovered (node, environment) context gets a dense CtxId, value
/// sets are hash-consed FlatSets referenced by SetId, and the fixpoint is
/// a dependency-tracked worklist — when a context's value set grows, only
/// its recorded dependents are re-evaluated. The seed's whole-program
/// restart fixpoint is retained as a reference mode
/// (ClosureOptions::UseWorklist = false); tests/ClosureDifferentialTest
/// proves both modes produce byte-identical downstream systems.
///
/// Deviations from the paper (documented in DESIGN.md):
///  * Variable value sets are keyed by (unique) binder rather than by
///    (binder, restricted environment). This merges calling contexts — a
///    sound over-approximation that can only add constraints downstream.
///  * Closures stored in pairs/lists are tracked through a global escape
///    pool; projections whose static type is an arrow read the pool.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CLOSURE_CLOSUREANALYSIS_H
#define AFL_CLOSURE_CLOSUREANALYSIS_H

#include "closure/AbstractEnv.h"
#include "regions/RegionProgram.h"
#include "support/FlatSet.h"
#include "support/SetInterner.h"

#include <string>
#include <unordered_map>

namespace afl {
namespace closure {

/// Dense id of an interned abstract closure.
using AbsClosureId = uint32_t;

/// An abstract closure: a function node plus the abstract region
/// environment under which its body will run. \c Fun is an RLambdaExpr or
/// an RLetrecExpr (whose formals are already bound to colors in \c Env).
struct AbsClosure {
  const regions::RExpr *Fun = nullptr;
  RegEnvId Env = 0;
};

/// Default for ClosureOptions::Jobs: the AFL_CLOSURE_JOBS environment
/// variable if set to a valid non-negative integer (0 = all cores),
/// otherwise 1 (sequential). The env hook lets the whole test suite run
/// in parallel-closure mode without touching call sites (CI does this).
unsigned defaultClosureJobs();

/// Default for ClosureOptions::Widening: the AFL_CLOSURE_WIDEN
/// environment variable if set to a valid non-negative integer,
/// otherwise 0 (widening off, exact analysis). Same process-level-mode
/// contract as defaultClosureJobs — the server and every library call
/// site pick it up without plumbing.
unsigned defaultClosureWiden();

/// Fixpoint configuration.
struct ClosureOptions {
  /// Dependency-tracked worklist (production) vs. the whole-program
  /// restart fixpoint (reference mode; the seed algorithm).
  bool UseWorklist = true;
  /// Restart mode: maximum stabilization passes before the analysis
  /// reports failure instead of spinning.
  unsigned MaxPasses = 1000;
  /// Worklist mode: maximum contexts processed before reporting failure.
  /// 0 derives the cap as MaxPasses * number of IR nodes.
  size_t MaxSteps = 0;
  /// Worklist mode: maximum concurrent executors for the partitioned
  /// fixpoint (closure/ParallelFixpoint.cpp). 1 = sequential (default),
  /// 0 = one per hardware thread, N = at most N. Ignored in restart
  /// mode. `aflc --closure-jobs N`.
  unsigned Jobs = defaultClosureJobs();
  /// Parallel mode: frontiers smaller than this are processed inline on
  /// the calling thread — partitioning overhead only pays off on wide
  /// frontiers.
  size_t ParallelMinFrontier = 16;
  /// Context-set widening bound K (docs/ANALYSIS_CORE.md): when a
  /// closure environment carries more than K color classes invisible to
  /// the consumer (no member region variable in the closure's latent
  /// effect), those classes are canonically recolored at closure
  /// creation, merging environments that agree on the visible colors
  /// and the invisible aliasing partition. 0 = off (exact analysis).
  /// `aflc --closure-widen[=K]`, default from $AFL_CLOSURE_WIDEN.
  unsigned Widening = defaultClosureWiden();

  /// The stabilization cap every fixpoint mode enforces: MaxSteps when
  /// set, otherwise MaxPasses * max(NumNodes, 1), saturating instead of
  /// overflowing. Shared so the worklist, restart, and parallel engines
  /// cannot drift apart in how they derive it.
  size_t stepCap(size_t NumNodes) const;
};

/// Translation maps from a previous program revision into the current
/// one, produced by the structural differ (driver/Incremental.h) when an
/// edit replaced exactly one arrow-free subtree. Each map is indexed by
/// the *old* id; NoMap marks ids that existed only inside the replaced
/// subtree. ParentNode is the *new* id of the replaced subtree's parent —
/// the worklist restart frontier.
struct IncrementalSeed {
  static constexpr uint32_t NoMap = ~0u;
  std::vector<uint32_t> NodeMap;
  std::vector<uint32_t> VarMap;
  std::vector<uint32_t> RegionVarMap;
  regions::RNodeId ParentNode = 0;
};

/// Work counters for the fixpoint, reported through AflStats →
/// PipelineStats → `aflc --metrics` (docs/OBSERVABILITY.md).
struct ClosureStats {
  bool Converged = false;
  bool UsedWorklist = true;
  /// True when the tables were seeded from a previous revision
  /// (runIncremental) instead of computed from scratch.
  bool Incremental = false;
  /// Incremental mode: contexts translated from the previous revision.
  size_t SeededContexts = 0;
  /// Incremental mode: contexts (re-)evaluated after seeding — the edit's
  /// invalidation frontier plus everything it reached. A from-scratch run
  /// evaluates every context at least once; a small edit dirties far
  /// fewer (asserted by tests/ServerTest.cpp).
  size_t DirtiedContexts = 0;
  /// Restart mode: stabilization passes. Worklist mode: 1 on convergence
  /// (a single change-driven propagation).
  unsigned Passes = 0;
  /// Contexts evaluated (worklist pops; restart: context evaluations
  /// summed over all passes).
  size_t ProcessedContexts = 0;
  /// Worklist insertions (0 in restart mode).
  size_t Enqueued = 0;
  size_t NumContexts = 0;
  size_t NumClosures = 0;
  size_t NumEnvs = 0;
  /// Distinct hash-consed value sets (including the empty set).
  size_t InternedSets = 0;

  // Parallel-mode counters (all 0 when Jobs == 1 or in restart mode).
  /// Executors the partitioned fixpoint was allowed to use (resolved
  /// from ClosureOptions::Jobs; 0 when the parallel path never ran).
  unsigned ThreadsUsed = 0;
  /// Frontier rounds dispatched to the pool.
  size_t ParallelRounds = 0;
  /// Rounds below ParallelMinFrontier, processed inline.
  size_t InlineRounds = 0;
  /// Independent frontier partitions summed over all parallel rounds.
  size_t Partitions = 0;
  /// Contexts in the largest single partition seen.
  size_t LargestPartition = 0;
  /// Helper tasks enqueued to / items executed by pool workers
  /// (ThreadPool::RunStats, summed over rounds).
  size_t PoolTasksQueued = 0;
  size_t PoolItemsStolen = 0;
  /// Wall time spent inside parallel rounds (partition + dispatch +
  /// commit), for the `closure:` --timings line and --metrics.
  double ParallelSeconds = 0.0;

  // Widening counters (all 0 when ClosureOptions::Widening == 0).
  /// The bound K the analysis ran with.
  unsigned WideningBound = 0;
  /// Closures whose environment the widening recolored. Computed
  /// post-fixpoint as a pure function of the final tables, so the value
  /// is identical across the three fixpoint modes (a live counter would
  /// differ with parallel speculation).
  size_t WidenedClosures = 0;
  /// Environment entries (region variables) recolored across those.
  size_t WidenedVars = 0;
};

/// Runs the analysis over a finalized region program and exposes the
/// results to constraint generation.
class ClosureAnalysis {
public:
  explicit ClosureAnalysis(const regions::RegionProgram &Prog,
                           ClosureOptions Options = ClosureOptions());

  /// Iterates to a fixpoint. Returns true on convergence; false when the
  /// stabilization cap was hit (error() explains, results must not be
  /// used — they are an unsound snapshot).
  bool run();

  /// Incremental fixpoint for the analysis server: seeds this (freshly
  /// constructed, never-run) analysis with \p Prev's converged tables
  /// translated through \p Seed's id maps, then re-runs the sequential
  /// worklist with only the edited subtree's parent contexts enqueued.
  /// Sound only under the differ's Subtree contract (both subtrees
  /// arrow-free, 1:1 maps outside — see driver/Incremental.h): the
  /// replaced subtree then contributes no abstract closures to any
  /// outside table, so the seeded outside state is already the fixpoint
  /// and only the new subtree's contexts need evaluation. After
  /// canonicalization the tables are bit-identical to a from-scratch
  /// run() on the new program (tests/ServerTest.cpp proves this
  /// differentially).
  ///
  /// Returns false when the seed cannot be applied (restart mode, \p Prev
  /// not converged, or a translation surprise); the tables are then in an
  /// unspecified state and the caller must fall back to run() on a fresh
  /// instance.
  bool runIncremental(const ClosureAnalysis &Prev, const IncrementalSeed &Seed);

  bool converged() const { return Stats.Converged; }
  /// Non-empty iff run() returned false.
  const std::string &error() const { return Error; }
  const ClosureStats &stats() const { return Stats; }

  RegEnvTable &envs() { return Envs; }
  const RegEnvTable &envs() const { return Envs; }

  /// The abstract environment of the program's top level (globals mapped
  /// to distinct colors 0..n-1).
  RegEnvId rootEnv() const { return RootEnv; }

  /// The context environment for evaluating \p N when reached under
  /// \p Incoming: \p Incoming extended with N's letregion bindings (each
  /// given the minimal free color). Memoized per (node, incoming).
  RegEnvId contextEnv(const regions::RExpr *N, RegEnvId Incoming);

  const AbsClosure &closure(AbsClosureId Id) const { return Closures[Id]; }

  /// All context environments under which \p N was analyzed (ascending
  /// RegEnvId order).
  const FlatSet<RegEnvId> &contextsOf(regions::RNodeId N) const {
    return NodeEnvs[N];
  }

  /// Abstract value of \p N under context environment \p Env: ascending
  /// AbsClosureId order, empty for unregistered contexts (a genuinely
  /// empty interned set — no static escape hatch).
  const FlatSet<AbsClosureId> &valuesOf(regions::RNodeId N,
                                        RegEnvId Env) const;

  /// Dense index of the registered context (N, Env), or NoCtx. Contexts
  /// are numbered 0..numCtxIds()-1 in discovery order; constraint
  /// generation uses them to key its per-context tables without maps.
  static constexpr uint32_t NoCtx = ~0u;
  uint32_t ctxIndex(regions::RNodeId N, RegEnvId Env) const;
  uint32_t numCtxIds() const { return static_cast<uint32_t>(Ctxs.size()); }

  /// For a closure: its body node and the parameter variable.
  const regions::RExpr *bodyOf(const AbsClosure &C) const;
  regions::VarId paramOf(const AbsClosure &C) const;

  /// Latent-effect region variables of the closure's arrow type (in the
  /// closure's own frame: formal names for letrec closures).
  std::set<regions::RegionVarId> latentOf(const AbsClosure &C) const;

  /// True iff the widening recolored \p C's environment. Recomputed from
  /// (function, environment, bound) — widened-ness is content, not
  /// per-closure state, so it survives canonicalization and incremental
  /// seeding for free. Always false when Widening == 0.
  bool isWidened(const AbsClosure &C) const;
  /// The recolored (invisible-class) region variables of \p C's
  /// environment, ascending; empty when the widening did not fire.
  /// Constraint generation treats these as unaligned across call
  /// boundaries (docs/ANALYSIS_CORE.md, widening soundness).
  std::vector<regions::RegionVarId> widenedVars(const AbsClosure &C) const;

  size_t numContexts() const { return Ctxs.size(); }
  size_t numClosures() const { return Closures.size(); }

private:
  using SetId = SetInterner<AbsClosureId>::SetId;
  static constexpr SetId EmptySet = SetInterner<AbsClosureId>::Empty;

  AbsClosureId internClosure(const regions::RExpr *Fun, RegEnvId Env);
  /// The closure a Lambda / RegApp node denotes under context env \p Env
  /// (memoized: the mapping is immutable).
  AbsClosureId closureAt(const regions::RExpr *N, RegEnvId Env);
  /// Applies the context-set widening to a freshly built closure
  /// environment for consumer \p Fun; identity when Widening == 0 or
  /// the invisible-class count is within the bound.
  RegEnvId widenClosureEnv(const regions::RExpr *Fun, RegEnvId Env);
  /// Post-fixpoint: fills the widening counters by re-deriving
  /// widened-ness of every final closure (deterministic across modes).
  void recordWideningStats();

  /// Registers context (N, contextEnv(N, Incoming)); returns its CtxId.
  /// New contexts enter the worklist (worklist mode) or set Changed
  /// (restart mode).
  uint32_t ensureCtx(const regions::RExpr *N, RegEnvId Incoming);
  /// The registration half of ensureCtx: \p Env is already the *context*
  /// environment. The parallel commit step resolves environments itself
  /// and registers through this.
  uint32_t registerCtx(const regions::RExpr *N, RegEnvId Env);

  /// Worklist fixpoint: evaluates one context against the current tables,
  /// recording dependency edges as it reads.
  void process(uint32_t C);
  bool runWorklist();

  /// Partitioned worklist fixpoint on the shared thread pool
  /// (closure/ParallelFixpoint.cpp). \p Jobs is the resolved executor
  /// count (≥ 2). Same least fixpoint as runWorklist.
  bool runParallel(unsigned Jobs);

  /// Reference restart fixpoint (the seed algorithm, on dense tables).
  SetId analyzeRec(const regions::RExpr *N, RegEnvId Incoming);
  bool runRestart();

  /// Renumbers closures into content order — (function node id,
  /// lexicographic environment) — and remaps every value set, so the
  /// results (and everything generated from them) are independent of
  /// fixpoint evaluation order.
  void canonicalize();

  void enqueue(uint32_t C);
  void writeVar(regions::VarId V, SetId S);
  void writePool(SetId S);
  SetId remapSet(SetId S, const std::vector<AbsClosureId> &Perm,
                 std::unordered_map<SetId, SetId> &Memo);

  struct CtxInfo {
    const regions::RExpr *N = nullptr;
    RegEnvId Env = 0;
    SetId Val = EmptySet;
  };

  const regions::RegionProgram &Prog;
  ClosureOptions Options;
  RegEnvTable Envs;
  RegEnvId RootEnv = 0;

  /// Per-node latent-effect region sets for Lambda/Letrec nodes (empty
  /// sets elsewhere), precomputed in the constructor when Widening > 0:
  /// the widening consults them on every closure creation, including
  /// from parallel workers, which must not touch the type tables.
  std::vector<std::set<regions::RegionVarId>> VisibleRegions;

  std::vector<AbsClosure> Closures;
  /// (function node id << 32 | env id) → closure id. Exact packed key.
  std::unordered_map<uint64_t, AbsClosureId> ClosureIndex;

  SetInterner<AbsClosureId> ValueSets;

  std::vector<CtxInfo> Ctxs; // indexed by CtxId
  /// Per node: registered context envs (sorted) and the parallel CtxIds.
  std::vector<FlatSet<RegEnvId>> NodeEnvs;
  std::vector<std::vector<uint32_t>> NodeCtxIds;

  std::vector<SetId> VarSets; // indexed by VarId
  SetId EscapePool = EmptySet;

  /// Reverse dependency edges: contexts to re-evaluate when the source
  /// grows.
  std::vector<FlatSet<uint32_t>> CtxDeps; // per CtxId
  std::vector<FlatSet<uint32_t>> VarDeps; // per VarId
  FlatSet<uint32_t> PoolDeps;

  std::vector<uint32_t> Queue;
  size_t QHead = 0;
  std::vector<uint8_t> InQueue;

  /// Memoized (incoming env → context env) per node with letregion
  /// bindings; identity for all other nodes.
  std::vector<std::vector<std::pair<RegEnvId, RegEnvId>>> CtxEnvCache;
  /// Memoized (context env → closure) per Lambda/RegApp node.
  std::vector<std::vector<std::pair<RegEnvId, AbsClosureId>>> ClosCache;

  /// Restart mode: per-pass cycle guard.
  std::vector<uint8_t> InProgress;
  bool Changed = false;

  ClosureStats Stats;
  std::string Error;

  /// The partitioned parallel fixpoint reads the frozen tables and
  /// commits worker overlays through the private mutators.
  friend class ParallelEngine;
};

} // namespace closure
} // namespace afl

#endif // AFL_CLOSURE_CLOSUREANALYSIS_H
