//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract region environments for the extended closure analysis
/// (paper §3). An abstract region environment R maps the region variables
/// in scope to *colors*; two region variables map to the same color iff
/// they are bound to the same runtime region, so R preserves exact region
/// aliasing. Environments are interned: analyses pass around dense ids.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_CLOSURE_ABSTRACTENV_H
#define AFL_CLOSURE_ABSTRACTENV_H

#include "regions/RegionTypes.h"
#include "support/FlatSet.h"

#include <cassert>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

namespace afl {
namespace closure {

/// A color: an abstract runtime region. Colors are small integers; the
/// minimal unused color is chosen when a letregion introduces a region,
/// bounding the color count by the maximum number of region variables in
/// scope (paper §3).
using Color = uint32_t;

/// Dense id of an interned abstract region environment.
using RegEnvId = uint32_t;

/// One abstract region environment: sorted (region variable → color).
using RegEnvMap = std::vector<std::pair<regions::RegionVarId, Color>>;

/// Interner for abstract region environments. Content-hashed: interning
/// an environment that already exists is a hash lookup, not an ordered
/// tree walk.
class RegEnvTable {
public:
  /// Interns \p Map (must be sorted by region variable, no duplicates).
  RegEnvId intern(RegEnvMap Map);

  /// Content lookup without interning: true (and \p Out set) iff \p Map
  /// is already interned. Const — safe to call concurrently with other
  /// readers while no thread interns (the parallel closure workers probe
  /// the frozen table this way, keeping genuinely new environments in
  /// thread-local overlays until the commit step).
  bool find(const RegEnvMap &Map, RegEnvId &Out) const;

  const RegEnvMap &get(RegEnvId Id) const { return Envs[Id]; }
  size_t size() const { return Envs.size(); }

  /// The color of \p Var in \p Id. \p Var must be in the environment.
  Color colorOf(RegEnvId Id, regions::RegionVarId Var) const;

  /// True if \p Var is mapped by \p Id.
  bool maps(RegEnvId Id, regions::RegionVarId Var) const;

  /// Maps a set of region variables to the corresponding set of colors
  /// (ascending color order).
  FlatSet<Color> colorsOf(RegEnvId Id,
                          const std::set<regions::RegionVarId> &Vars) const;

  /// Restricts \p Id to the variables in \p Keep (all must be mapped).
  RegEnvId restrict(RegEnvId Id, const std::set<regions::RegionVarId> &Keep);

  /// Extends \p Id with \p Var bound to the minimal color not in the
  /// range of \p Id (the letregion rule of Fig. 3).
  RegEnvId extendFresh(RegEnvId Id, regions::RegionVarId Var);

  /// Extends \p Id with \p Var bound to an explicit \p C (used to bind a
  /// region-polymorphic function's formal to the actual's color).
  RegEnvId extend(RegEnvId Id, regions::RegionVarId Var, Color C);

private:
  std::vector<RegEnvMap> Envs;
  /// Content hash → ids with that hash (usually one).
  std::unordered_map<uint64_t, std::vector<RegEnvId>> Index;
};

/// Context-set widening of one abstract region environment
/// (docs/ANALYSIS_CORE.md). A *color class* is the set of variables in
/// \p Map sharing one color; a class is *invisible* when none of its
/// members is in \p Visible (the consumer's latent-effect regions).
/// When more than \p Bound invisible classes exist, every invisible
/// class is recolored canonically — classes ordered by smallest member
/// variable, assigned the ascending colors not used by any visible
/// class — so environments that agree on the visible colors and on the
/// aliasing partition of the invisible variables collapse to one map.
///
/// Returns true iff the widening fired (\p Map was rewritten, possibly
/// to identical content when it was already canonical). The rewrite is
/// a per-environment color bijection: it preserves the aliasing
/// partition and every visible color, and it is idempotent, so applying
/// it at closure-creation time in any fixpoint mode yields the same
/// interned environment. \p Bound = 0 means the widening is off.
bool widenRegEnvMap(RegEnvMap &Map,
                    const std::set<regions::RegionVarId> &Visible,
                    unsigned Bound);

/// The region variables widenRegEnvMap(\p Map, \p Visible, \p Bound)
/// recolors, ascending; empty when the widening would not fire. Pure —
/// downstream consumers (constraint generation's alignment check)
/// recompute "is this closure widened" from content instead of keeping
/// per-closure flags alive across canonicalization.
std::vector<regions::RegionVarId>
widenedRegEnvVars(const RegEnvMap &Map,
                  const std::set<regions::RegionVarId> &Visible,
                  unsigned Bound);

} // namespace closure
} // namespace afl

#endif // AFL_CLOSURE_ABSTRACTENV_H
