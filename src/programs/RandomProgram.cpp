#include "programs/RandomProgram.h"

#include <cassert>
#include <random>
#include <vector>

using namespace afl;
using namespace afl::programs;

namespace {

/// The small monomorphic type universe of generated programs.
enum class GType { Int, Bool, ListInt, PairIntInt, FnIntInt };

class Generator {
public:
  Generator(unsigned Seed, const RandomProgramOptions &Options)
      : Rng(Seed), Options(Options) {}

  std::string run() {
    // Result type: prefer ones easy to compare textually.
    switch (pick(4)) {
    case 0:
      return genExpr(GType::Int, Options.MaxDepth);
    case 1:
      return genExpr(GType::Bool, Options.MaxDepth);
    case 2:
      return genExpr(GType::ListInt, Options.MaxDepth);
    default:
      return genExpr(GType::PairIntInt, Options.MaxDepth);
    }
  }

private:
  unsigned pick(unsigned N) {
    return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
  }
  bool coin() { return pick(2) == 0; }

  std::string freshName(const char *Prefix) {
    return std::string(Prefix) + std::to_string(NameCounter++);
  }

  /// Variables of type \p T currently in scope.
  std::vector<std::string> varsOf(GType T) const {
    std::vector<std::string> Out;
    for (const auto &[Name, Ty] : Env)
      if (Ty == T)
        Out.push_back(Name);
    return Out;
  }

  std::string genExpr(GType T, unsigned Depth) {
    // Occasionally use a variable of the right type.
    std::vector<std::string> Vars = varsOf(T);
    if (!Vars.empty() && pick(4) == 0)
      return Vars[pick(static_cast<unsigned>(Vars.size()))];
    if (Depth == 0)
      return genBase(T);

    switch (T) {
    case GType::Int:
      return genInt(Depth);
    case GType::Bool:
      return genBool(Depth);
    case GType::ListInt:
      return genList(Depth);
    case GType::PairIntInt:
      return genPair(Depth);
    case GType::FnIntInt:
      return genFn(Depth);
    }
    return genBase(T);
  }

  std::string genBase(GType T) {
    switch (T) {
    case GType::Int: {
      std::vector<std::string> Vars = varsOf(GType::Int);
      if (!Vars.empty() && coin())
        return Vars[pick(static_cast<unsigned>(Vars.size()))];
      return std::to_string(pick(100));
    }
    case GType::Bool:
      return coin() ? "true" : "false";
    case GType::ListInt:
      return "nil";
    case GType::PairIntInt:
      return "(" + genBase(GType::Int) + ", " + genBase(GType::Int) + ")";
    case GType::FnIntInt: {
      std::string X = freshName("a");
      return "fn " + X + " => " + X + " + " + std::to_string(pick(10));
    }
    }
    return "0";
  }

  std::string genInt(unsigned Depth) {
    switch (pick(Options.Recursion ? 9 : 8)) {
    case 0:
      return genBase(GType::Int);
    case 1: {
      const char *Ops[] = {"+", "-", "*"};
      return "(" + genExpr(GType::Int, Depth - 1) + " " + Ops[pick(3)] +
             " " + genExpr(GType::Int, Depth - 1) + ")";
    }
    case 2: // guarded div/mod
      return "(" + genExpr(GType::Int, Depth - 1) + " " +
             (coin() ? "div" : "mod") + " " + std::to_string(1 + pick(9)) +
             ")";
    case 3:
      return "(if " + genExpr(GType::Bool, Depth - 1) + " then " +
             genExpr(GType::Int, Depth - 1) + " else " +
             genExpr(GType::Int, Depth - 1) + ")";
    case 4:
      return genLet(GType::Int, Depth);
    case 5:
      return "(fst " + genExpr(GType::PairIntInt, Depth - 1) + ")";
    case 6: { // safe head: if null l then k else hd l
      std::string L = freshName("l");
      return "(let " + L + " = " + genExpr(GType::ListInt, Depth - 1) +
             " in if null " + L + " then " + std::to_string(pick(10)) +
             " else hd " + L + " end)";
    }
    case 7: {
      if (!Options.HigherOrder)
        return genBase(GType::Int);
      if (Options.ClosureEscape && pick(3) == 0) {
        // Store a closure in a pair, retrieve it, apply it.
        std::string P = freshName("cp");
        return "(let " + P + " = (" + genExpr(GType::FnIntInt, Depth - 1) +
               ", " + genExpr(GType::Int, Depth - 1) + ") in (fst " + P +
               ") (snd " + P + ") end)";
      }
      return "(" + genExpr(GType::FnIntInt, Depth - 1) + ") (" +
             genExpr(GType::Int, Depth - 1) + ")";
    }
    case 8:
      return genRecInt(Depth);
    }
    return genBase(GType::Int);
  }

  std::string genBool(unsigned Depth) {
    switch (pick(4)) {
    case 0:
      return genBase(GType::Bool);
    case 1: {
      const char *Ops[] = {"<", "<=", "="};
      return "(" + genExpr(GType::Int, Depth - 1) + " " + Ops[pick(3)] +
             " " + genExpr(GType::Int, Depth - 1) + ")";
    }
    case 2:
      return "(null " + genExpr(GType::ListInt, Depth - 1) + ")";
    default:
      return genLet(GType::Bool, Depth);
    }
  }

  std::string genList(unsigned Depth) {
    switch (pick(Options.Recursion ? 5 : 4)) {
    case 0:
      return "nil";
    case 1:
      return "(" + genExpr(GType::Int, Depth - 1) +
             " :: " + genExpr(GType::ListInt, Depth - 1) + ")";
    case 2:
      return genLet(GType::ListInt, Depth);
    case 3: { // safe tail
      std::string L = freshName("l");
      return "(let " + L + " = " + genExpr(GType::ListInt, Depth - 1) +
             " in if null " + L + " then nil else tl " + L + " end)";
    }
    case 4: { // fromto-style builder
      std::string F = freshName("mk");
      std::string N = freshName("n");
      return "(letrec " + F + " " + N + " = if " + N + " <= 0 then nil" +
             " else " + N + " :: " + F + " (" + N + " - 1) in " + F + " (" +
             std::to_string(1 + pick(8)) + ") end)";
    }
    }
    return "nil";
  }

  std::string genPair(unsigned Depth) {
    if (pick(3) == 0)
      return genLet(GType::PairIntInt, Depth);
    return "(" + genExpr(GType::Int, Depth - 1) + ", " +
           genExpr(GType::Int, Depth - 1) + ")";
  }

  std::string genFn(unsigned Depth) {
    std::string X = freshName("x");
    Env.push_back({X, GType::Int});
    std::string Body = genExpr(GType::Int, Depth - 1);
    Env.pop_back();
    return "(fn " + X + " => " + Body + ")";
  }

  std::string genLet(GType T, unsigned Depth) {
    GType InitT;
    switch (pick(4)) {
    case 0:
      InitT = GType::Int;
      break;
    case 1:
      InitT = GType::ListInt;
      break;
    case 2:
      InitT = GType::PairIntInt;
      break;
    default:
      InitT = Options.HigherOrder ? GType::FnIntInt : GType::Int;
      break;
    }
    std::string X = freshName("v");
    std::string Init = genExpr(InitT, Depth - 1);
    Env.push_back({X, InitT});
    std::string Body = genExpr(T, Depth - 1);
    Env.pop_back();
    return "(let " + X + " = " + Init + " in " + Body + " end)";
  }

  /// Guarded-recursive int function applied to a small argument. Four
  /// shapes: numeric recursion, a list consumer, a pair-parameter
  /// accumulator (quicksort-helper style), and a pair-parameter call with
  /// *aliased* components (both components built from one value, so the
  /// callee's region formals alias — exercising the color discipline).
  /// A fifth shape (Options.NestedHof) is the permuted-payload family.
  std::string genRecInt(unsigned Depth) {
    unsigned Shape =
        pick(Options.NestedHof && Options.HigherOrder ? 5 : 4);
    if (Shape == 4)
      return genPermRec(Depth);
    if (Shape == 0) {
      std::string F = freshName("f");
      std::string N = freshName("n");
      Env.push_back({N, GType::Int});
      std::string Step = genExpr(GType::Int, Depth >= 2 ? Depth - 2 : 0);
      Env.pop_back();
      return "(letrec " + F + " " + N + " = if " + N + " <= 0 then " +
             std::to_string(pick(10)) + " else (" + Step + ") + " + F +
             " (" + N + " - 1) in " + F + " (" +
             std::to_string(1 + pick(6)) + ") end)";
    }
    if (Shape == 1) {
      std::string F = freshName("g");
      std::string L = freshName("l");
      std::string Arg = genExpr(GType::ListInt, Depth - 1);
      return "(letrec " + F + " " + L + " = if null " + L +
             " then 0 else hd " + L + " + " + F + " (tl " + L + ") in " +
             F + " (" + Arg + ") end)";
    }
    if (Shape == 2) {
      // Accumulator over a pair (count, acc).
      std::string F = freshName("h");
      std::string P = freshName("p");
      return "(letrec " + F + " " + P + " = if fst " + P +
             " <= 0 then snd " + P + " else " + F + " (fst " + P +
             " - 1, snd " + P + " + " + std::to_string(1 + pick(5)) +
             ") in " + F + " (" + std::to_string(1 + pick(6)) + ", " +
             genExpr(GType::Int, Depth - 1) + ") end)";
    }
    // Aliased pair components: (v, v) puts both components in the same
    // region; the callee's formals for them are bound to one color.
    std::string F = freshName("k");
    std::string P = freshName("q");
    std::string V = freshName("w");
    return "(let " + V + " = " + genExpr(GType::Int, Depth - 1) +
           " in letrec " + F + " " + P + " = if fst " + P +
           " <= 0 then snd " + P + " else " + F + " (fst " + P +
           " - 1, snd " + P + ") in " + F + " (" + V + ", " + V +
           ") end end)";
  }

  /// Permuted-payload nested-HOF recursion: a letrec over
  /// (count, M-slot right-nested pair payload) with two recursive call
  /// sites applying different slot permutations (rotate, swap-first-two)
  /// through a higher-order int→int helper. Each distinct slot→region
  /// arrangement is a distinct abstract environment for the recursive
  /// closure, so the exact analysis walks the permutation orbit; the
  /// widened analysis collapses it. M stays at 2–3 so the exact side of
  /// a 500-program differential sweep remains affordable.
  std::string genPermRec(unsigned Depth) {
    const unsigned M = 2 + pick(2);
    std::string F = freshName("k");
    std::string Q = freshName("q");
    std::string Ap = freshName("ap");
    // Right-nested tuple text: (p0, (p1, ... pM-1)).
    auto Tup = [](const std::vector<std::string> &Parts) {
      std::string Out = Parts.back();
      for (size_t I = Parts.size() - 1; I-- > 0;)
        Out = "(" + Parts[I] + ", " + Out + ")";
      return Out;
    };
    // Slot I of the payload, read through the higher-order helper.
    auto Slot = [&](unsigned I) {
      std::string E = "(snd " + Q + ")";
      for (unsigned J = 0; J < I; ++J)
        E = "(snd " + E + ")";
      if (I < M - 1)
        E = "(fst " + E + ")";
      return "(" + Ap + " " + E + ")";
    };
    std::vector<std::string> Rot, Swp, Init;
    for (unsigned I = 0; I < M; ++I)
      Rot.push_back(Slot((I + 1) % M));
    Swp.push_back(Slot(1));
    Swp.push_back(Slot(0));
    for (unsigned I = 2; I < M; ++I)
      Swp.push_back(Slot(I));
    std::string Out = "(let " + Ap + " = " + genExpr(GType::FnIntInt, 1) +
                      " in ";
    for (unsigned I = 0; I < M; ++I) {
      std::string W = freshName("w");
      Out += "let " + W + " = " +
             genExpr(GType::Int, Depth >= 2 ? Depth - 2 : 0) + " in ";
      Init.push_back(W);
    }
    Out += "letrec " + F + " " + Q + " = if fst " + Q +
           " <= 0 then 0 else " + F + " (fst " + Q + " - 1, " + Tup(Rot) +
           ") + " + F + " (fst " + Q + " - 1, " + Tup(Swp) + ") in " + F +
           " (" + std::to_string(1 + pick(3)) + ", " + Tup(Init) + ") end";
    for (unsigned I = 0; I != M + 1; ++I) // close the w-slot + ap lets
      Out += " end";
    return Out + ")";
  }

  std::mt19937 Rng;
  const RandomProgramOptions &Options;
  std::vector<std::pair<std::string, GType>> Env;
  unsigned NameCounter = 0;
};

} // namespace

std::string
programs::generateRandomProgram(unsigned Seed,
                                const RandomProgramOptions &Options) {
  Generator G(Seed, Options);
  return G.run();
}
