//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of well-typed, terminating surface programs, used by
/// property tests and the "never worse than T-T" sweep (§6): for any
/// generated program, the A-F-L completion must (a) run without region
/// faults, (b) compute the same value as the reference interpreter and
/// the conservative completion, and (c) never use more memory than the
/// conservative completion.
///
/// Generated programs cover: arithmetic, booleans, conditionals, lets,
/// pairs and projections, integer lists (build/walk), first-class
/// lambdas, and guarded-recursive letrec functions (both int→int and
/// list-consuming). Closures are never stored in pairs/lists (see the
/// escape-pool limitation in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_PROGRAMS_RANDOMPROGRAM_H
#define AFL_PROGRAMS_RANDOMPROGRAM_H

#include <string>

namespace afl {
namespace programs {

struct RandomProgramOptions {
  unsigned MaxDepth = 5;
  /// Allow lambdas and higher-order application.
  bool HigherOrder = true;
  /// Allow letrec definitions (guarded recursion, always terminating).
  bool Recursion = true;
  /// Allow closures to be stored in pairs and retrieved via fst/snd —
  /// exercises the closure analysis' escape pool and the conservative
  /// pinning fallback in constraint generation.
  bool ClosureEscape = false;
  /// Allow the permuted-payload nested-HOF recursion shape: a letrec
  /// over (count, M-slot nested pair payload) whose recursive call
  /// sites permute the payload slots through a higher-order helper.
  /// Each permutation breeds a fresh abstract region environment, so
  /// the exact closure analysis enumerates the permutation orbit —
  /// the context-explosion family the widening bound is built for
  /// (small M here keeps the exact side of differential sweeps cheap).
  /// Requires HigherOrder and Recursion to fire.
  bool NestedHof = false;
};

/// Generates a deterministic program for \p Seed.
std::string
generateRandomProgram(unsigned Seed,
                      const RandomProgramOptions &Options =
                          RandomProgramOptions());

} // namespace programs
} // namespace afl

#endif // AFL_PROGRAMS_RANDOMPROGRAM_H
