//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus of paper §6 (Table 2, Figures 5-8), written in the
/// surface language. The paper does not print its benchmark sources, so
/// these are reconstructions that exercise the behaviors the paper
/// describes:
///
///   * appel(n)    — the Appel example [App92] cited in §6: a recursive
///                   function whose (freshly built) list parameter dies
///                   partway through the activation. Stack-disciplined
///                   regions hold every list until the recursion unwinds
///                   (O(n²) residency); freeing the parameter's region
///                   early gives O(n).
///   * quicksort(n)— list quicksort over a pseudo-random list (partition,
///                   append, region-polymorphic recursion).
///   * fib(n)      — naive recursive Fibonacci.
///   * randlist(n) — generate a list of n pseudo-random integers (LCG).
///   * fac(n)      — factorial (the "nearly identical behavior" case).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_PROGRAMS_CORPUS_H
#define AFL_PROGRAMS_CORPUS_H

#include <string>
#include <vector>

namespace afl {
namespace programs {

/// The Appel example with parameter \p N.
std::string appelSource(int N);

/// Quicksort of a \p N-element pseudo-random list.
std::string quicksortSource(int N);

/// Naive Fibonacci of \p N.
std::string fibSource(int N);

/// Generate a list of \p N pseudo-random integers.
std::string randlistSource(int N);

/// Factorial of \p N.
std::string facSource(int N);

/// Example 1.1 of the paper.
std::string example11Source();

/// Example 2.1 of the paper (region-polymorphic function applied to
/// values in different regions).
std::string example21Source();

/// The permuted-payload context-explosion family: a self-recursive
/// letrec over (count, \p Slots-slot right-nested pair payload) whose
/// two recursive call sites apply different slot permutations (rotate
/// and swap-first-two — together they generate the full symmetric
/// group). Every distinct slot→region arrangement reached within
/// \p Depth recursion steps is a distinct abstract region environment
/// for the recursive closure, so the exact closure analysis enumerates
/// up to Slots! contexts per node while the widened analysis
/// (ClosureOptions::Widening) collapses the orbit. This is the
/// benchmark cliff for `aflc --closure-widen`.
std::string permSource(int Slots, int Depth);

/// One named benchmark instance.
struct BenchProgram {
  std::string Name;
  std::string Source;
};

/// The Table 2 corpus at the paper's parameters:
/// Appel(100), Quicksort(500), Fibonacci(6), Randlist(25), Fac(10).
std::vector<BenchProgram> table2Corpus();

/// A small-parameter corpus for tests and quick runs.
std::vector<BenchProgram> smallCorpus();

} // namespace programs
} // namespace afl

#endif // AFL_PROGRAMS_CORPUS_H
