#include "programs/Corpus.h"

using namespace afl;
using namespace afl::programs;

std::string programs::appelSource(int N) {
  // g's list parameter dies after `hd (fst p) + 0` (the head is copied
  // into a fresh region) — before the next list is built and the (tail)
  // recursion continues. A stack discipline cannot reclaim any of the
  // lists until the whole recursion unwinds, holding n + (n-1) + ... + 1
  // cells: O(n²) residency and O(n) simultaneously allocated regions.
  // Freeing each dead parameter early keeps residency at O(n) and live
  // regions at O(1).
  return "letrec fromto n = if n = 0 then nil else n :: fromto (n - 1) in "
         "letrec g p = "
         "  if null (fst p) then snd p + 0 "
         "  else let h = hd (fst p) + 0 in "
         "       g (fromto (h - 1), h + snd p) end "
         "in g (fromto " +
         std::to_string(N) + ", 0) end end";
}

/// Shared list-of-random-integers generator: seed state is a pair
/// (count, seed); a linear congruential generator produces values.
static std::string randGen() {
  return "letrec randl s = "
         "  if fst s = 0 then nil "
         "  else (snd s) mod 1000 :: "
         "       randl (fst s - 1, ((snd s) * 75 + 74) mod 65537) in ";
}

std::string programs::quicksortSource(int N) {
  return randGen() +
         "letrec append p = "
         "  if null (fst p) then snd p "
         "  else hd (fst p) :: append (tl (fst p), snd p) in "
         "letrec lesseq p = "
         "  if null (snd p) then nil "
         "  else if hd (snd p) <= fst p "
         "       then hd (snd p) :: lesseq (fst p, tl (snd p)) "
         "       else lesseq (fst p, tl (snd p)) in "
         "letrec greater p = "
         "  if null (snd p) then nil "
         "  else if fst p < hd (snd p) "
         "       then hd (snd p) :: greater (fst p, tl (snd p)) "
         "       else greater (fst p, tl (snd p)) in "
         "letrec qsort l = "
         "  if null l then nil "
         "  else let pv = hd l + 0 in "
         "       append (qsort (lesseq (pv, tl l)), "
         "               pv :: qsort (greater (pv, tl l))) end "
         "in qsort (randl (" +
         std::to_string(N) + ", 12345)) end end end end end";
}

std::string programs::fibSource(int N) {
  return "letrec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in "
         "fib " +
         std::to_string(N) + " end";
}

std::string programs::randlistSource(int N) {
  return randGen() + "randl (" + std::to_string(N) + ", 12345) end";
}

std::string programs::facSource(int N) {
  return "letrec fac n = if n = 0 then 1 else n * fac (n - 1) in fac " +
         std::to_string(N) + " end";
}

std::string programs::example11Source() {
  return "(let z = (2, 3) in fn y => (fst z, y) end) 5";
}

std::string programs::example21Source() {
  return "let i = 1 in let j = 2 in "
         "letrec f k = k + 1 in (f i) + (f j) end end end";
}

std::string programs::permSource(int Slots, int Depth) {
  const int M = Slots;
  // Right-nested tuple text: (p0, (p1, ... pM-1)).
  auto Tup = [](const std::vector<std::string> &Parts) {
    std::string Out = Parts.back();
    for (size_t I = Parts.size() - 1; I-- > 0;)
      Out = "(" + Parts[I] + ", " + Out + ")";
    return Out;
  };
  // Slot I of the payload carried in k's parameter q.
  auto Slot = [M](int I) {
    std::string E = "(snd q)";
    for (int J = 0; J < I; ++J)
      E = "(snd " + E + ")";
    if (I < M - 1)
      E = "(fst " + E + ")";
    return E;
  };
  std::vector<std::string> Rot, Swp, Init;
  for (int I = 0; I < M; ++I)
    Rot.push_back(Slot((I + 1) % M));
  Swp.push_back(Slot(1));
  Swp.push_back(Slot(0));
  for (int I = 2; I < M; ++I)
    Swp.push_back(Slot(I));
  std::string Out;
  // Each payload slot starts as its own let-bound value so every slot
  // lives in a distinct region — permutations then genuinely move
  // regions between payload positions.
  for (int I = 0; I < M; ++I) {
    Out += "let w" + std::to_string(I) + " = " + std::to_string(I) + " in ";
    Init.push_back("w" + std::to_string(I));
  }
  Out += "letrec k q = if fst q <= 0 then 0 else k (fst q - 1, " + Tup(Rot) +
         ") + k (fst q - 1, " + Tup(Swp) + ") in k (" +
         std::to_string(Depth) + ", " + Tup(Init) + ") end";
  for (int I = 0; I < M; ++I)
    Out += " end";
  return Out;
}

std::vector<BenchProgram> programs::table2Corpus() {
  return {
      {"Appel(100)", appelSource(100)},
      {"Quicksort(500)", quicksortSource(500)},
      {"Fibonacci(6)", fibSource(6)},
      {"Randlist(25)", randlistSource(25)},
      {"Fac(10)", facSource(10)},
  };
}

std::vector<BenchProgram> programs::smallCorpus() {
  return {
      {"Appel(12)", appelSource(12)},
      {"Quicksort(20)", quicksortSource(20)},
      {"Fibonacci(8)", fibSource(8)},
      {"Randlist(10)", randlistSource(10)},
      {"Fac(6)", facSource(6)},
      {"Example1.1", example11Source()},
      {"Example2.1", example21Source()},
  };
}
