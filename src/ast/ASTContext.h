//===----------------------------------------------------------------------===//
///
/// \file
/// Owns surface AST storage (arena + identifier interner) and provides
/// factory methods for every node kind.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_AST_ASTCONTEXT_H
#define AFL_AST_ASTCONTEXT_H

#include "ast/Expr.h"
#include "support/ArenaPool.h"
#include "support/StringInterner.h"

#include <string_view>

namespace afl {
namespace ast {

/// Allocation context for surface ASTs. All nodes created through a context
/// stay valid for the lifetime of the context. The backing arena is leased
/// from the process-wide ArenaPool, so contexts constructed per batch item
/// or server request recycle each other's slabs.
class ASTContext {
public:
  ASTContext() = default;
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  StringInterner &interner() { return Interner; }
  const StringInterner &interner() const { return Interner; }

  Symbol intern(std::string_view Name) { return Interner.intern(Name); }
  std::string_view text(Symbol S) const { return Interner.text(S); }

  /// Number of nodes created so far; node ids are in [0, numNodes()).
  uint32_t numNodes() const { return NextId; }

  const IntLitExpr *intLit(int64_t Value, SourceLoc Loc = SourceLoc()) {
    return Mem.create<IntLitExpr>(Loc, NextId++, Value);
  }
  const BoolLitExpr *boolLit(bool Value, SourceLoc Loc = SourceLoc()) {
    return Mem.create<BoolLitExpr>(Loc, NextId++, Value);
  }
  const UnitLitExpr *unitLit(SourceLoc Loc = SourceLoc()) {
    return Mem.create<UnitLitExpr>(Loc, NextId++);
  }
  const VarExpr *var(Symbol Name, SourceLoc Loc = SourceLoc()) {
    return Mem.create<VarExpr>(Loc, NextId++, Name);
  }
  const VarExpr *var(std::string_view Name, SourceLoc Loc = SourceLoc()) {
    return var(intern(Name), Loc);
  }
  const LambdaExpr *lambda(Symbol Param, const Expr *Body,
                           SourceLoc Loc = SourceLoc()) {
    return Mem.create<LambdaExpr>(Loc, NextId++, Param, Body);
  }
  const LambdaExpr *lambda(std::string_view Param, const Expr *Body,
                           SourceLoc Loc = SourceLoc()) {
    return lambda(intern(Param), Body, Loc);
  }
  const AppExpr *app(const Expr *Fn, const Expr *Arg,
                     SourceLoc Loc = SourceLoc()) {
    return Mem.create<AppExpr>(Loc, NextId++, Fn, Arg);
  }
  const LetExpr *let(Symbol Name, const Expr *Init, const Expr *Body,
                     SourceLoc Loc = SourceLoc()) {
    return Mem.create<LetExpr>(Loc, NextId++, Name, Init, Body);
  }
  const LetExpr *let(std::string_view Name, const Expr *Init, const Expr *Body,
                     SourceLoc Loc = SourceLoc()) {
    return let(intern(Name), Init, Body, Loc);
  }
  const LetrecExpr *letrec(Symbol FnName, Symbol Param, const Expr *FnBody,
                           const Expr *Body, SourceLoc Loc = SourceLoc()) {
    return Mem.create<LetrecExpr>(Loc, NextId++, FnName, Param, FnBody, Body);
  }
  const LetrecExpr *letrec(std::string_view FnName, std::string_view Param,
                           const Expr *FnBody, const Expr *Body,
                           SourceLoc Loc = SourceLoc()) {
    return letrec(intern(FnName), intern(Param), FnBody, Body, Loc);
  }
  const IfExpr *ifExpr(const Expr *Cond, const Expr *Then, const Expr *Else,
                       SourceLoc Loc = SourceLoc()) {
    return Mem.create<IfExpr>(Loc, NextId++, Cond, Then, Else);
  }
  const PairExpr *pair(const Expr *First, const Expr *Second,
                       SourceLoc Loc = SourceLoc()) {
    return Mem.create<PairExpr>(Loc, NextId++, First, Second);
  }
  const NilExpr *nil(SourceLoc Loc = SourceLoc()) {
    return Mem.create<NilExpr>(Loc, NextId++);
  }
  const ConsExpr *cons(const Expr *Head, const Expr *Tail,
                       SourceLoc Loc = SourceLoc()) {
    return Mem.create<ConsExpr>(Loc, NextId++, Head, Tail);
  }
  const UnOpExpr *unOp(UnOpKind Op, const Expr *Operand,
                       SourceLoc Loc = SourceLoc()) {
    return Mem.create<UnOpExpr>(Loc, NextId++, Op, Operand);
  }
  const BinOpExpr *binOp(BinOpKind Op, const Expr *Lhs, const Expr *Rhs,
                         SourceLoc Loc = SourceLoc()) {
    return Mem.create<BinOpExpr>(Loc, NextId++, Op, Lhs, Rhs);
  }

private:
  PooledArena Mem;
  // Interner bytes share the pooled arena; Mem is declared first so it
  // outlives the interner on destruction.
  StringInterner Interner{Mem.arena()};
  uint32_t NextId = 0;
};

} // namespace ast
} // namespace afl

#endif // AFL_AST_ASTCONTEXT_H
