#include "ast/ExprPrinter.h"

#include "ast/Expr.h"
#include "support/StringInterner.h"

using namespace afl;
using namespace afl::ast;

const char *ast::spelling(UnOpKind Op) {
  switch (Op) {
  case UnOpKind::Fst:
    return "fst";
  case UnOpKind::Snd:
    return "snd";
  case UnOpKind::Null:
    return "null";
  case UnOpKind::Hd:
    return "hd";
  case UnOpKind::Tl:
    return "tl";
  }
  return "?";
}

const char *ast::spelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "div";
  case BinOpKind::Mod:
    return "mod";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Eq:
    return "=";
  }
  return "?";
}

namespace {

/// Recursive printer. Parenthesizes conservatively: every compound
/// subexpression in an operator/application position gets parentheses,
/// which keeps the grammar trivially unambiguous for round-tripping.
class Printer {
public:
  explicit Printer(const StringInterner &Interner) : Interner(Interner) {}

  std::string Out;

  void print(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit: {
      int64_t V = cast<IntLitExpr>(E)->value();
      if (V < 0) {
        // Negative literals need parens so "f -1" does not parse as
        // subtraction.
        Out += '(';
        Out += std::to_string(V);
        Out += ')';
      } else {
        Out += std::to_string(V);
      }
      return;
    }
    case Expr::Kind::BoolLit:
      Out += cast<BoolLitExpr>(E)->value() ? "true" : "false";
      return;
    case Expr::Kind::UnitLit:
      Out += "()";
      return;
    case Expr::Kind::Var:
      Out += Interner.text(cast<VarExpr>(E)->name());
      return;
    case Expr::Kind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      Out += "fn ";
      Out += Interner.text(L->param());
      Out += " => ";
      print(L->body());
      return;
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      printAtom(A->fn());
      Out += ' ';
      printAtom(A->arg());
      return;
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      Out += "let ";
      Out += Interner.text(L->name());
      Out += " = ";
      print(L->init());
      Out += " in ";
      print(L->body());
      Out += " end";
      return;
    }
    case Expr::Kind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      Out += "letrec ";
      Out += Interner.text(L->fnName());
      Out += ' ';
      Out += Interner.text(L->param());
      Out += " = ";
      print(L->fnBody());
      Out += " in ";
      print(L->body());
      Out += " end";
      return;
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      Out += "if ";
      print(I->cond());
      Out += " then ";
      print(I->thenExpr());
      Out += " else ";
      print(I->elseExpr());
      return;
    }
    case Expr::Kind::Pair: {
      const auto *P = cast<PairExpr>(E);
      Out += '(';
      print(P->first());
      Out += ", ";
      print(P->second());
      Out += ')';
      return;
    }
    case Expr::Kind::Nil:
      Out += "nil";
      return;
    case Expr::Kind::Cons: {
      const auto *C = cast<ConsExpr>(E);
      printAtom(C->head());
      Out += " :: ";
      printAtom(C->tail());
      return;
    }
    case Expr::Kind::UnOp: {
      const auto *U = cast<UnOpExpr>(E);
      Out += spelling(U->op());
      Out += ' ';
      printAtom(U->operand());
      return;
    }
    case Expr::Kind::BinOp: {
      const auto *B = cast<BinOpExpr>(E);
      printAtom(B->lhs());
      Out += ' ';
      Out += spelling(B->op());
      Out += ' ';
      printAtom(B->rhs());
      return;
    }
    }
  }

private:
  /// Prints \p E, parenthesized unless it is syntactically atomic.
  void printAtom(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      if (cast<IntLitExpr>(E)->value() < 0)
        break;
      [[fallthrough]];
    case Expr::Kind::BoolLit:
    case Expr::Kind::UnitLit:
    case Expr::Kind::Var:
    case Expr::Kind::Nil:
    case Expr::Kind::Pair:
      print(E);
      return;
    default:
      break;
    }
    Out += '(';
    print(E);
    Out += ')';
  }

  const StringInterner &Interner;
};

} // namespace

std::string ast::printExpr(const Expr *E, const StringInterner &Interner) {
  Printer P(Interner);
  P.print(E);
  return P.Out;
}
