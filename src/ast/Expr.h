//===----------------------------------------------------------------------===//
///
/// \file
/// Surface-language AST: a typed call-by-value lambda calculus with
/// integers, booleans, pairs, and lists — the "applicative subset of ML"
/// used as the source language in Aiken/Fähndrich/Levien (PLDI'95) §2,
/// extended (as in their implementation, §6) with numbers, pairs, lists,
/// and conditionals.
///
/// Nodes are immutable and arena-allocated by \c ASTContext. Each node
/// carries a context-unique id so analyses can key side tables by node.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_AST_EXPR_H
#define AFL_AST_EXPR_H

#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>

namespace afl {
namespace ast {

/// Unary operators. Fst/Snd project pairs; Null/Hd/Tl inspect lists.
enum class UnOpKind { Fst, Snd, Null, Hd, Tl };

/// Binary operators. All operate on integers; comparisons produce bools.
enum class BinOpKind { Add, Sub, Mul, Div, Mod, Lt, Le, Eq };

/// Returns the surface spelling of \p Op (e.g., "fst").
const char *spelling(UnOpKind Op);
/// Returns the surface spelling of \p Op (e.g., "+").
const char *spelling(BinOpKind Op);

/// Base class of all surface expressions.
class Expr {
public:
  enum class Kind {
    IntLit,
    BoolLit,
    UnitLit,
    Var,
    Lambda,
    App,
    Let,
    Letrec,
    If,
    Pair,
    Nil,
    Cons,
    UnOp,
    BinOp,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// Context-unique node id, densely numbered from 0; analyses may index
  /// vectors by it.
  uint32_t id() const { return Id; }

protected:
  Expr(Kind K, SourceLoc Loc, uint32_t Id) : K(K), Loc(Loc), Id(Id) {}

private:
  Kind K;
  SourceLoc Loc;
  uint32_t Id;
};

/// Integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, uint32_t Id, int64_t Value)
      : Expr(Kind::IntLit, Loc, Id), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// Boolean literal.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(SourceLoc Loc, uint32_t Id, bool Value)
      : Expr(Kind::BoolLit, Loc, Id), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLit; }

private:
  bool Value;
};

/// The unit literal "()".
class UnitLitExpr : public Expr {
public:
  UnitLitExpr(SourceLoc Loc, uint32_t Id) : Expr(Kind::UnitLit, Loc, Id) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::UnitLit; }
};

/// Variable reference.
class VarExpr : public Expr {
public:
  VarExpr(SourceLoc Loc, uint32_t Id, Symbol Name)
      : Expr(Kind::Var, Loc, Id), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  Symbol Name;
};

/// Function abstraction "fn x => e".
class LambdaExpr : public Expr {
public:
  LambdaExpr(SourceLoc Loc, uint32_t Id, Symbol Param, const Expr *Body)
      : Expr(Kind::Lambda, Loc, Id), Param(Param), Body(Body) {}

  Symbol param() const { return Param; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Lambda; }

private:
  Symbol Param;
  const Expr *Body;
};

/// Application "e1 e2".
class AppExpr : public Expr {
public:
  AppExpr(SourceLoc Loc, uint32_t Id, const Expr *Fn, const Expr *Arg)
      : Expr(Kind::App, Loc, Id), Fn(Fn), Arg(Arg) {}

  const Expr *fn() const { return Fn; }
  const Expr *arg() const { return Arg; }

  static bool classof(const Expr *E) { return E->kind() == Kind::App; }

private:
  const Expr *Fn;
  const Expr *Arg;
};

/// "let x = e1 in e2 end".
class LetExpr : public Expr {
public:
  LetExpr(SourceLoc Loc, uint32_t Id, Symbol Name, const Expr *Init,
          const Expr *Body)
      : Expr(Kind::Let, Loc, Id), Name(Name), Init(Init), Body(Body) {}

  Symbol name() const { return Name; }
  const Expr *init() const { return Init; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Let; }

private:
  Symbol Name;
  const Expr *Init;
  const Expr *Body;
};

/// "letrec f x = e1 in e2 end" — a single recursive function binding.
/// Region inference turns f into a region-polymorphic function.
class LetrecExpr : public Expr {
public:
  LetrecExpr(SourceLoc Loc, uint32_t Id, Symbol FnName, Symbol Param,
             const Expr *FnBody, const Expr *Body)
      : Expr(Kind::Letrec, Loc, Id), FnName(FnName), Param(Param),
        FnBody(FnBody), Body(Body) {}

  Symbol fnName() const { return FnName; }
  Symbol param() const { return Param; }
  const Expr *fnBody() const { return FnBody; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Letrec; }

private:
  Symbol FnName;
  Symbol Param;
  const Expr *FnBody;
  const Expr *Body;
};

/// "if e1 then e2 else e3".
class IfExpr : public Expr {
public:
  IfExpr(SourceLoc Loc, uint32_t Id, const Expr *Cond, const Expr *Then,
         const Expr *Else)
      : Expr(Kind::If, Loc, Id), Cond(Cond), Then(Then), Else(Else) {}

  const Expr *cond() const { return Cond; }
  const Expr *thenExpr() const { return Then; }
  const Expr *elseExpr() const { return Else; }

  static bool classof(const Expr *E) { return E->kind() == Kind::If; }

private:
  const Expr *Cond;
  const Expr *Then;
  const Expr *Else;
};

/// Pair construction "(e1, e2)".
class PairExpr : public Expr {
public:
  PairExpr(SourceLoc Loc, uint32_t Id, const Expr *First, const Expr *Second)
      : Expr(Kind::Pair, Loc, Id), First(First), Second(Second) {}

  const Expr *first() const { return First; }
  const Expr *second() const { return Second; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Pair; }

private:
  const Expr *First;
  const Expr *Second;
};

/// The empty list "nil".
class NilExpr : public Expr {
public:
  NilExpr(SourceLoc Loc, uint32_t Id) : Expr(Kind::Nil, Loc, Id) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::Nil; }
};

/// List cell construction "e1 :: e2".
class ConsExpr : public Expr {
public:
  ConsExpr(SourceLoc Loc, uint32_t Id, const Expr *Head, const Expr *Tail)
      : Expr(Kind::Cons, Loc, Id), Head(Head), Tail(Tail) {}

  const Expr *head() const { return Head; }
  const Expr *tail() const { return Tail; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Cons; }

private:
  const Expr *Head;
  const Expr *Tail;
};

/// Unary operator application, e.g. "fst e" or "null e".
class UnOpExpr : public Expr {
public:
  UnOpExpr(SourceLoc Loc, uint32_t Id, UnOpKind Op, const Expr *Operand)
      : Expr(Kind::UnOp, Loc, Id), Op(Op), Operand(Operand) {}

  UnOpKind op() const { return Op; }
  const Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::UnOp; }

private:
  UnOpKind Op;
  const Expr *Operand;
};

/// Binary operator application, e.g. "e1 + e2".
class BinOpExpr : public Expr {
public:
  BinOpExpr(SourceLoc Loc, uint32_t Id, BinOpKind Op, const Expr *Lhs,
            const Expr *Rhs)
      : Expr(Kind::BinOp, Loc, Id), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  BinOpKind op() const { return Op; }
  const Expr *lhs() const { return Lhs; }
  const Expr *rhs() const { return Rhs; }

  static bool classof(const Expr *E) { return E->kind() == Kind::BinOp; }

private:
  BinOpKind Op;
  const Expr *Lhs;
  const Expr *Rhs;
};

/// LLVM-style checked casts over the Expr hierarchy.
template <typename T> bool isa(const Expr *E) { return T::classof(E); }

template <typename T> const T *cast(const Expr *E) {
  assert(isa<T>(E) && "cast to wrong Expr kind");
  return static_cast<const T *>(E);
}

template <typename T> const T *dyn_cast(const Expr *E) {
  return isa<T>(E) ? static_cast<const T *>(E) : nullptr;
}

} // namespace ast
} // namespace afl

#endif // AFL_AST_EXPR_H
