//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printer for the surface AST, producing re-parseable ML-like text.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_AST_EXPRPRINTER_H
#define AFL_AST_EXPRPRINTER_H

#include <string>

namespace afl {
class StringInterner;
namespace ast {
class Expr;

/// Renders \p E using \p Interner to resolve identifier names. The output
/// round-trips through the parser.
std::string printExpr(const Expr *E, const StringInterner &Interner);

} // namespace ast
} // namespace afl

#endif // AFL_AST_EXPRPRINTER_H
