#include "types/TypeInference.h"

#include "ast/ASTContext.h"
#include "ast/Expr.h"

#include <optional>

using namespace afl;
using namespace afl::ast;
using namespace afl::types;

TypeId TypedProgram::typeOf(const Expr *E) const {
  assert(E->id() < NodeTypes.size() && "expr from another context?");
  return Table.find(NodeTypes[E->id()]);
}

TypeId TypedProgram::paramTypeOf(const Expr *E) const {
  assert((E->kind() == Expr::Kind::Lambda ||
          E->kind() == Expr::Kind::Letrec) &&
         "param type only recorded for binder nodes");
  assert(E->id() < ParamTypes.size() && "expr from another context?");
  return Table.find(ParamTypes[E->id()]);
}

namespace {

class Inferencer {
public:
  Inferencer(TypedProgram &Out, const ASTContext &Ctx, DiagnosticEngine &Diags)
      : Out(Out), Ctx(Ctx), Diags(Diags) {}

  /// Infers the type of \p E under the current environment; returns nullopt
  /// after reporting on error.
  std::optional<TypeId> infer(const Expr *E) {
    std::optional<TypeId> Ty = inferImpl(E);
    if (Ty)
      Out.NodeTypes[E->id()] = *Ty;
    return Ty;
  }

private:
  TypeTable &table() { return Out.Table; }

  /// Unifies with error reporting. Returns false on failure.
  bool unifyAt(const Expr *E, TypeId Actual, TypeId Expected,
               const char *What) {
    if (table().unify(Actual, Expected))
      return true;
    Diags.error(E->loc(), std::string("type mismatch in ") + What + ": " +
                              table().str(Actual) + " vs " +
                              table().str(Expected));
    return false;
  }

  TypeId lookup(Symbol Name, const Expr *E) {
    for (auto It = Env.rbegin(), End = Env.rend(); It != End; ++It)
      if (It->first == Name)
        return It->second;
    Diags.error(E->loc(),
                "unbound variable '" + std::string(Ctx.text(Name)) + "'");
    return table().freshVar(); // recover with a fresh type
  }

  std::optional<TypeId> inferImpl(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return table().intType();
    case Expr::Kind::BoolLit:
      return table().boolType();
    case Expr::Kind::UnitLit:
      return table().unitType();
    case Expr::Kind::Var:
      return lookup(cast<VarExpr>(E)->name(), E);
    case Expr::Kind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      TypeId ParamTy = table().freshVar();
      Out.ParamTypes[E->id()] = ParamTy;
      Env.emplace_back(L->param(), ParamTy);
      std::optional<TypeId> BodyTy = infer(L->body());
      Env.pop_back();
      if (!BodyTy)
        return std::nullopt;
      return table().arrow(ParamTy, *BodyTy);
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      std::optional<TypeId> FnTy = infer(A->fn());
      if (!FnTy)
        return std::nullopt;
      std::optional<TypeId> ArgTy = infer(A->arg());
      if (!ArgTy)
        return std::nullopt;
      TypeId ResultTy = table().freshVar();
      if (!unifyAt(E, *FnTy, table().arrow(*ArgTy, ResultTy), "application"))
        return std::nullopt;
      return ResultTy;
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      std::optional<TypeId> InitTy = infer(L->init());
      if (!InitTy)
        return std::nullopt;
      Env.emplace_back(L->name(), *InitTy);
      std::optional<TypeId> BodyTy = infer(L->body());
      Env.pop_back();
      return BodyTy;
    }
    case Expr::Kind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      TypeId ParamTy = table().freshVar();
      Out.ParamTypes[E->id()] = ParamTy;
      TypeId ResultTy = table().freshVar();
      TypeId FnTy = table().arrow(ParamTy, ResultTy);
      Env.emplace_back(L->fnName(), FnTy);
      Env.emplace_back(L->param(), ParamTy);
      std::optional<TypeId> FnBodyTy = infer(L->fnBody());
      Env.pop_back();
      if (!FnBodyTy)
        return std::nullopt;
      if (!unifyAt(E, *FnBodyTy, ResultTy, "letrec body"))
        return std::nullopt;
      std::optional<TypeId> BodyTy = infer(L->body());
      Env.pop_back();
      return BodyTy;
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      std::optional<TypeId> CondTy = infer(I->cond());
      if (!CondTy || !unifyAt(I->cond(), *CondTy, table().boolType(),
                              "if condition"))
        return std::nullopt;
      std::optional<TypeId> ThenTy = infer(I->thenExpr());
      if (!ThenTy)
        return std::nullopt;
      std::optional<TypeId> ElseTy = infer(I->elseExpr());
      if (!ElseTy)
        return std::nullopt;
      if (!unifyAt(E, *ThenTy, *ElseTy, "if branches"))
        return std::nullopt;
      return ThenTy;
    }
    case Expr::Kind::Pair: {
      const auto *P = cast<PairExpr>(E);
      std::optional<TypeId> FirstTy = infer(P->first());
      if (!FirstTy)
        return std::nullopt;
      std::optional<TypeId> SecondTy = infer(P->second());
      if (!SecondTy)
        return std::nullopt;
      return table().pair(*FirstTy, *SecondTy);
    }
    case Expr::Kind::Nil:
      return table().list(table().freshVar());
    case Expr::Kind::Cons: {
      const auto *C = cast<ConsExpr>(E);
      std::optional<TypeId> HeadTy = infer(C->head());
      if (!HeadTy)
        return std::nullopt;
      std::optional<TypeId> TailTy = infer(C->tail());
      if (!TailTy)
        return std::nullopt;
      if (!unifyAt(E, *TailTy, table().list(*HeadTy), "cons"))
        return std::nullopt;
      return TailTy;
    }
    case Expr::Kind::UnOp: {
      const auto *U = cast<UnOpExpr>(E);
      std::optional<TypeId> OpTy = infer(U->operand());
      if (!OpTy)
        return std::nullopt;
      switch (U->op()) {
      case UnOpKind::Fst:
      case UnOpKind::Snd: {
        TypeId FirstTy = table().freshVar();
        TypeId SecondTy = table().freshVar();
        if (!unifyAt(E, *OpTy, table().pair(FirstTy, SecondTy),
                     "pair projection"))
          return std::nullopt;
        return U->op() == UnOpKind::Fst ? FirstTy : SecondTy;
      }
      case UnOpKind::Null: {
        TypeId ElemTy = table().freshVar();
        if (!unifyAt(E, *OpTy, table().list(ElemTy), "null"))
          return std::nullopt;
        return table().boolType();
      }
      case UnOpKind::Hd:
      case UnOpKind::Tl: {
        TypeId ElemTy = table().freshVar();
        if (!unifyAt(E, *OpTy, table().list(ElemTy), "list projection"))
          return std::nullopt;
        return U->op() == UnOpKind::Hd ? ElemTy : table().find(*OpTy);
      }
      }
      return std::nullopt;
    }
    case Expr::Kind::BinOp: {
      const auto *B = cast<BinOpExpr>(E);
      std::optional<TypeId> LhsTy = infer(B->lhs());
      if (!LhsTy ||
          !unifyAt(B->lhs(), *LhsTy, table().intType(), "operator operand"))
        return std::nullopt;
      std::optional<TypeId> RhsTy = infer(B->rhs());
      if (!RhsTy ||
          !unifyAt(B->rhs(), *RhsTy, table().intType(), "operator operand"))
        return std::nullopt;
      switch (B->op()) {
      case BinOpKind::Add:
      case BinOpKind::Sub:
      case BinOpKind::Mul:
      case BinOpKind::Div:
      case BinOpKind::Mod:
        return table().intType();
      case BinOpKind::Lt:
      case BinOpKind::Le:
      case BinOpKind::Eq:
        return table().boolType();
      }
      return std::nullopt;
    }
    }
    return std::nullopt;
  }

  TypedProgram &Out;
  const ASTContext &Ctx;
  DiagnosticEngine &Diags;
  std::vector<std::pair<Symbol, TypeId>> Env;
};

} // namespace

TypedProgram types::inferTypes(const Expr *Root, const ASTContext &Ctx,
                               DiagnosticEngine &Diags) {
  TypedProgram Out;
  Out.NodeTypes.assign(Ctx.numNodes(), 0);
  Out.ParamTypes.assign(Ctx.numNodes(), 0);
  Inferencer Inf(Out, Ctx, Diags);
  std::optional<TypeId> RootTy = Inf.infer(Root);
  if (!RootTy || Diags.hasErrors()) {
    Out.Success = false;
    return Out;
  }
  // Default residual type variables so downstream phases see ground types.
  for (TypeId &Ty : Out.NodeTypes)
    Out.Table.defaultToInt(Ty);
  for (TypeId &Ty : Out.ParamTypes)
    Out.Table.defaultToInt(Ty);
  Out.Success = true;
  return Out;
}
