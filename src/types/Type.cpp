#include "types/Type.h"

using namespace afl;
using namespace afl::types;

TypeId TypeTable::find(TypeId Id) const {
  // Path compression is skipped to keep this const; chains are short in
  // practice because unify always links variable -> representative.
  while (Nodes[Id].Kind == TypeKind::Var && Nodes[Id].Link != Id)
    Id = Nodes[Id].Link;
  return Id;
}

bool TypeTable::occurs(TypeId VarId, TypeId InId) const {
  InId = find(InId);
  if (InId == VarId)
    return true;
  const Node &N = Nodes[InId];
  switch (N.Kind) {
  case TypeKind::Arrow:
  case TypeKind::Pair:
    return occurs(VarId, N.Child0) || occurs(VarId, N.Child1);
  case TypeKind::List:
    return occurs(VarId, N.Child0);
  default:
    return false;
  }
}

bool TypeTable::unify(TypeId A, TypeId B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return true;
  Node &NA = Nodes[A];
  Node &NB = Nodes[B];
  if (NA.Kind == TypeKind::Var) {
    if (occurs(A, B))
      return false;
    NA.Link = B;
    return true;
  }
  if (NB.Kind == TypeKind::Var) {
    if (occurs(B, A))
      return false;
    NB.Link = A;
    return true;
  }
  if (NA.Kind != NB.Kind)
    return false;
  switch (NA.Kind) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
    return true;
  case TypeKind::Arrow:
  case TypeKind::Pair:
    return unify(NA.Child0, NB.Child0) && unify(Nodes[A].Child1, Nodes[B].Child1);
  case TypeKind::List:
    return unify(NA.Child0, NB.Child0);
  case TypeKind::Var:
    break;
  }
  return false;
}

void TypeTable::defaultToInt(TypeId Id) {
  Id = find(Id);
  Node &N = Nodes[Id];
  switch (N.Kind) {
  case TypeKind::Var:
    N.Link = IntTy;
    return;
  case TypeKind::Arrow:
  case TypeKind::Pair:
    defaultToInt(N.Child0);
    defaultToInt(Nodes[Id].Child1);
    return;
  case TypeKind::List:
    defaultToInt(N.Child0);
    return;
  default:
    return;
  }
}

void TypeTable::strAppend(TypeId Id, std::string &Out, int Prec) const {
  // Prec: 0 = arrow position (loosest), 1 = pair operand, 2 = atom.
  Id = find(Id);
  const Node &N = Nodes[Id];
  switch (N.Kind) {
  case TypeKind::Int:
    Out += "int";
    return;
  case TypeKind::Bool:
    Out += "bool";
    return;
  case TypeKind::Unit:
    Out += "unit";
    return;
  case TypeKind::Var:
    Out += "'t";
    Out += std::to_string(Id);
    return;
  case TypeKind::List:
    strAppend(N.Child0, Out, 2);
    Out += " list";
    return;
  case TypeKind::Pair: {
    bool Parens = Prec >= 2;
    if (Parens)
      Out += '(';
    strAppend(N.Child0, Out, 2);
    Out += " * ";
    strAppend(N.Child1, Out, 2);
    if (Parens)
      Out += ')';
    return;
  }
  case TypeKind::Arrow: {
    bool Parens = Prec >= 1;
    if (Parens)
      Out += '(';
    strAppend(N.Child0, Out, 1);
    Out += " -> ";
    strAppend(N.Child1, Out, 0);
    if (Parens)
      Out += ')';
    return;
  }
  }
}

std::string TypeTable::str(TypeId Id) const {
  std::string Out;
  strAppend(Id, Out, 0);
  return Out;
}
