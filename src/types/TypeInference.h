//===----------------------------------------------------------------------===//
///
/// \file
/// Unification-based ML type inference for the surface language. This is
/// the prerequisite of Tofte/Talpin region inference: region inference
/// decorates the inferred type structure with regions and effects.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_TYPES_TYPEINFERENCE_H
#define AFL_TYPES_TYPEINFERENCE_H

#include "support/Diagnostics.h"
#include "types/Type.h"

#include <vector>

namespace afl {
namespace ast {
class ASTContext;
class Expr;
} // namespace ast

namespace types {

/// Output of type inference: the type table plus the (resolved-on-demand)
/// type of every AST node, indexed by node id.
struct TypedProgram {
  TypeTable Table;
  std::vector<TypeId> NodeTypes;
  /// For Lambda and Letrec nodes: the type of the bound parameter,
  /// indexed by the binder node's id (0 elsewhere).
  std::vector<TypeId> ParamTypes;
  bool Success = false;

  TypeId typeOf(const ast::Expr *E) const;
  /// The parameter type of binder node \p E (Lambda or Letrec).
  TypeId paramTypeOf(const ast::Expr *E) const;
};

/// Runs type inference over \p Root. On success, every node has a type and
/// all residual type variables are defaulted to int. Errors go to \p Diags.
TypedProgram inferTypes(const ast::Expr *Root, const ast::ASTContext &Ctx,
                        DiagnosticEngine &Diags);

} // namespace types
} // namespace afl

#endif // AFL_TYPES_TYPEINFERENCE_H
