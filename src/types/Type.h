//===----------------------------------------------------------------------===//
///
/// \file
/// Underlying ML types for the surface language, represented as nodes in a
/// \c TypeTable with union-find unification variables. Region inference
/// later decorates these structures with regions and effects.
///
/// The system is monomorphic (no let-polymorphism over value types); the
/// paper's language and benchmarks need none, and region polymorphism —
/// which the paper does require — lives in the regions module.
///
//===----------------------------------------------------------------------===//

#ifndef AFL_TYPES_TYPE_H
#define AFL_TYPES_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace afl {
namespace types {

/// Index of a type node in a TypeTable.
using TypeId = uint32_t;

/// Shape of a type node.
enum class TypeKind : uint8_t {
  Var,   ///< unification variable (possibly bound via union-find)
  Int,   ///< int
  Bool,  ///< bool
  Unit,  ///< unit
  Arrow, ///< t1 -> t2
  Pair,  ///< t1 * t2
  List,  ///< t list
};

/// Stores type nodes and implements unification. TypeIds are stable; use
/// \c find to chase variable bindings to a representative.
class TypeTable {
public:
  TypeTable() {
    IntTy = make(TypeKind::Int);
    BoolTy = make(TypeKind::Bool);
    UnitTy = make(TypeKind::Unit);
  }

  TypeId intType() const { return IntTy; }
  TypeId boolType() const { return BoolTy; }
  TypeId unitType() const { return UnitTy; }

  TypeId freshVar() { return make(TypeKind::Var); }
  TypeId arrow(TypeId Param, TypeId Result) {
    return make(TypeKind::Arrow, Param, Result);
  }
  TypeId pair(TypeId First, TypeId Second) {
    return make(TypeKind::Pair, First, Second);
  }
  TypeId list(TypeId Elem) { return make(TypeKind::List, Elem); }

  /// Chases variable bindings; the result is either a non-variable node or
  /// an unbound variable.
  TypeId find(TypeId Id) const;

  TypeKind kind(TypeId Id) const { return Nodes[find(Id)].Kind; }

  /// First child (arrow param, pair first, list element).
  TypeId child0(TypeId Id) const {
    const Node &N = Nodes[find(Id)];
    assert(N.Kind == TypeKind::Arrow || N.Kind == TypeKind::Pair ||
           N.Kind == TypeKind::List);
    return N.Child0;
  }
  /// Second child (arrow result, pair second).
  TypeId child1(TypeId Id) const {
    const Node &N = Nodes[find(Id)];
    assert(N.Kind == TypeKind::Arrow || N.Kind == TypeKind::Pair);
    return N.Child1;
  }

  /// Unifies \p A and \p B. Returns false on a shape mismatch or an occurs
  /// check failure (infinite type); the table may be partially updated in
  /// that case, which is fine since callers abort inference on failure.
  bool unify(TypeId A, TypeId B);

  /// Binds every unbound variable reachable from \p Id to int. The paper's
  /// language has no value polymorphism, so unconstrained types (e.g. the
  /// element type of an unused nil) default to int.
  void defaultToInt(TypeId Id);

  /// Renders the type for diagnostics, e.g. "(int * bool) -> int list".
  std::string str(TypeId Id) const;

  size_t size() const { return Nodes.size(); }

private:
  struct Node {
    TypeKind Kind;
    TypeId Child0 = 0;
    TypeId Child1 = 0;
    /// For Var nodes: the bound target, or the node itself if unbound.
    TypeId Link = 0;
  };

  TypeId make(TypeKind Kind, TypeId Child0 = 0, TypeId Child1 = 0) {
    TypeId Id = static_cast<TypeId>(Nodes.size());
    Nodes.push_back({Kind, Child0, Child1, Id});
    return Id;
  }

  bool occurs(TypeId VarId, TypeId InId) const;
  void strAppend(TypeId Id, std::string &Out, int Prec) const;

  std::vector<Node> Nodes;
  TypeId IntTy = 0, BoolTy = 0, UnitTy = 0;
};

} // namespace types
} // namespace afl

#endif // AFL_TYPES_TYPE_H
