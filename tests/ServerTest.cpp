//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the incremental analysis server (docs/SERVER.md): protocol
/// round-trips, malformed-request robustness, and the differential
/// harness — random edit scripts over the corpus asserting that every
/// incremental tier produces byte-identical completion reports and
/// solver domains to a from-scratch analysis of the same text.
///
//===----------------------------------------------------------------------===//

#include "closure/ClosureAnalysis.h"
#include "completion/AflCompletion.h"
#include "completion/Conservative.h"
#include "completion/Report.h"
#include "constraints/ConstraintGen.h"
#include "driver/Pipeline.h"
#include "driver/Server.h"
#include "driver/Session.h"
#include "interp/Interp.h"
#include "programs/Corpus.h"
#include "solver/Solver.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Socket.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

using namespace afl;

namespace {

/// Parses a server response line; fails the test on malformed output (the
/// server must always answer with well-formed JSON).
json::Value call(driver::Session &S, const std::string &Request) {
  std::string Response = S.handleLine(Request);
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parseJson(Response, V, Error))
      << Error << " in: " << Response;
  EXPECT_TRUE(V.isObject()) << Response;
  EXPECT_NE(V.find("timings"), nullptr) << Response;
  return V;
}

bool okOf(const json::Value &Resp) {
  const json::Value *Ok = Resp.find("ok");
  return Ok && Ok->isBool() && Ok->asBool();
}

/// result.<Path0>.<Path1>... lookup; nullptr when any hop is missing.
const json::Value *dig(const json::Value &Resp,
                       std::initializer_list<const char *> Path) {
  const json::Value *V = &Resp;
  for (const char *Key : Path) {
    if (!V->isObject())
      return nullptr;
    V = V->find(Key);
    if (!V)
      return nullptr;
  }
  return V;
}

std::string jquote(const std::string &S) {
  std::string O = "\"";
  O += MetricsRegistry::escapeJson(S);
  O += '"';
  return O;
}

json::Value openDoc(driver::Session &S, const std::string &Source,
                    int64_t *DocId) {
  json::Value R = call(
      S, "{\"method\":\"open\",\"params\":{\"source\":" + jquote(Source) +
             "}}");
  *DocId = -1;
  if (okOf(R)) {
    const json::Value *Doc = dig(R, {"result", "doc"});
    EXPECT_NE(Doc, nullptr) << "open response has no doc id";
    if (Doc)
      *DocId = Doc->asInt(-1);
  }
  return R;
}

template <unsigned Bits>
std::string domainString(const support::PackedArray<Bits> &Dom) {
  std::string O;
  O.reserve(Dom.size());
  for (size_t I = 0; I != Dom.size(); ++I)
    O.push_back(static_cast<char>('0' + (Dom.get(I) & 7)));
  return O;
}

/// The from-scratch oracle: front end + closure + constraints + plain
/// (uncached) solve + extraction, mirroring completion::aflCompletion's
/// fallbacks exactly as the server does.
struct Oracle {
  bool FrontOk = false;
  std::string Report;
  bool Sat = false;
  std::string States;
  std::string Bools;
};

Oracle oracleFor(const std::string &Source) {
  Oracle O;
  DiagnosticEngine Diags;
  driver::FrontEnd F = driver::runFrontEnd(Source, Diags);
  if (!F.ok())
    return O;
  O.FrontOk = true;

  closure::ClosureAnalysis CA(*F.Prog);
  regions::Completion AflC;
  solver::SolveResult Sol;
  if (CA.run()) {
    constraints::GenResult Gen = constraints::generateConstraints(*F.Prog, CA);
    Sol = solver::solve(Gen.Sys);
    AflC = Sol.Sat ? completion::extractCompletion(Gen, Sol)
                   : completion::conservativeCompletion(*F.Prog);
  } else {
    AflC = completion::conservativeCompletion(*F.Prog);
  }
  O.Report = completion::reportCompletion(*F.Prog, AflC).str();
  O.Sat = Sol.Sat;
  O.States = domainString(Sol.StateDom);
  O.Bools = domainString(Sol.BoolDom);
  return O;
}

/// Compares the server's view of \p DocId against the oracle for \p Text.
void expectMatchesOracle(driver::Session &S, int64_t DocId,
                         const std::string &Text, const std::string &Where) {
  Oracle O = oracleFor(Text);
  ASSERT_TRUE(O.FrontOk) << Where << ": oracle front end failed";

  json::Value Rep = call(S, "{\"method\":\"query\",\"params\":{\"doc\":" +
                                std::to_string(DocId) +
                                ",\"what\":\"report\"}}");
  ASSERT_TRUE(okOf(Rep)) << Where;
  const json::Value *Txt = dig(Rep, {"result", "report", "text"});
  ASSERT_NE(Txt, nullptr) << Where;
  EXPECT_EQ(Txt->asString(), O.Report) << Where;

  json::Value Dom = call(S, "{\"method\":\"query\",\"params\":{\"doc\":" +
                                std::to_string(DocId) +
                                ",\"what\":\"domains\"}}");
  ASSERT_TRUE(okOf(Dom)) << Where;
  const json::Value *Sat = dig(Dom, {"result", "domains", "sat"});
  const json::Value *St = dig(Dom, {"result", "domains", "states"});
  const json::Value *Bo = dig(Dom, {"result", "domains", "bools"});
  ASSERT_TRUE(Sat && St && Bo) << Where;
  EXPECT_EQ(Sat->asBool(), O.Sat) << Where;
  EXPECT_EQ(St->asString(), O.States) << Where;
  EXPECT_EQ(Bo->asString(), O.Bools) << Where;
}

//===----------------------------------------------------------------------===//
// Protocol round-trips
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, OpenQueryCloseShutdown) {
  driver::Session S;
  int64_t Doc = -1;
  json::Value R = openDoc(S, "let x = 1 in x + 2 end", &Doc);
  ASSERT_TRUE(okOf(R));
  ASSERT_GE(Doc, 1);
  EXPECT_EQ(dig(R, {"result", "tier"})->asString(), "full");
  EXPECT_TRUE(dig(R, {"result", "analysis", "converged"})->asBool());
  EXPECT_TRUE(dig(R, {"result", "analysis", "sat"})->asBool());
  EXPECT_NE(dig(R, {"result", "report", "text"}), nullptr);

  json::Value Q = call(S, "{\"id\":7,\"method\":\"query\",\"params\":{\"doc\":" +
                              std::to_string(Doc) +
                              ",\"what\":\"report\"}}");
  EXPECT_TRUE(okOf(Q));
  EXPECT_EQ(Q.find("id")->asInt(), 7);

  json::Value M =
      call(S, "{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}");
  ASSERT_TRUE(okOf(M));
  EXPECT_EQ(dig(M, {"result", "metrics", "opens"})->asInt(), 1);
  EXPECT_EQ(dig(M, {"result", "metrics", "open_docs"})->asInt(), 1);

  json::Value C = call(S, "{\"method\":\"close\",\"params\":{\"doc\":" +
                              std::to_string(Doc) + "}}");
  EXPECT_TRUE(okOf(C));
  EXPECT_FALSE(S.shutdownRequested());
  json::Value Down = call(S, "{\"method\":\"shutdown\"}");
  EXPECT_TRUE(okOf(Down));
  EXPECT_TRUE(S.shutdownRequested());
}

TEST(ServerProtocol, RunQueryExecutesDocument) {
  driver::Session S;
  int64_t Doc = -1;
  json::Value R = openDoc(S, "let x = (1, 2) in fst x + snd x end", &Doc);
  ASSERT_TRUE(okOf(R));

  json::Value Q = call(S, "{\"method\":\"query\",\"params\":{\"doc\":" +
                              std::to_string(Doc) + ",\"what\":\"run\"}}");
  ASSERT_TRUE(okOf(Q));
  EXPECT_TRUE(dig(Q, {"result", "run", "ok"})->asBool());
  EXPECT_EQ(dig(Q, {"result", "run", "result"})->asString(), "3");
  // Served runs use the process-default backend (VM unless
  // $AFL_INTERP=tree, e.g. the CI tree-walker leg).
  const char *Backend =
      interp::defaultBackend() == interp::BackendKind::Vm ? "vm" : "tree";
  EXPECT_EQ(dig(Q, {"result", "run", "backend"})->asString(), Backend);
  EXPECT_GT(dig(Q, {"result", "run", "stats", "value_allocs"})->asInt(), 0);
  EXPECT_GT(dig(Q, {"result", "run", "stats", "memory_ops"})->asInt(), 0);
  ASSERT_NE(dig(Q, {"result", "run", "micros", "total_us"}), nullptr);
  ASSERT_NE(dig(Q, {"result", "run", "micros", "compile_us"}), nullptr);

  // A run on an unknown document is an error, and the unknown-query
  // message advertises the new verb.
  json::Value Bad = call(
      S, "{\"method\":\"query\",\"params\":{\"doc\":999,\"what\":\"run\"}}");
  EXPECT_FALSE(okOf(Bad));
  json::Value Unknown =
      call(S, "{\"method\":\"query\",\"params\":{\"doc\":" +
                  std::to_string(Doc) + ",\"what\":\"bogus\"}}");
  EXPECT_FALSE(okOf(Unknown));
  EXPECT_NE(Unknown.find("error")->asString().find("run"), std::string::npos);
}

TEST(ServerProtocol, TimingsPresentOnEveryResponse) {
  driver::Session S;
  for (const char *Req :
       {"{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}",
        "garbage", "{\"method\":\"nope\"}"}) {
    json::Value R = call(S, Req);
    const json::Value *Total = dig(R, {"timings", "total_us"});
    ASSERT_NE(Total, nullptr) << Req;
    EXPECT_TRUE(Total->isInt()) << Req;
  }
}

//===----------------------------------------------------------------------===//
// Robustness: malformed requests must produce errors, never crashes.
//===----------------------------------------------------------------------===//

TEST(ServerRobustness, MalformedRequests) {
  driver::Session S;
  const char *Bad[] = {
      "",                                       // empty (not even JSON)
      "{",                                      // truncated object
      "{\"method\":\"open\"",                   // truncated mid-object
      "[1,2,3]",                                // not an object
      "42",                                     // not an object
      "{\"params\":{}}",                        // missing method
      "{\"method\":42}",                        // non-string method
      "{\"method\":\"frobnicate\"}",            // unknown method
      "{\"method\":\"open\"}",                  // open without params
      "{\"method\":\"open\",\"params\":{}}",    // open without source
      "{\"method\":\"open\",\"params\":{\"source\":7}}", // non-string source
      "{\"method\":\"open\",\"params\":\"x\"}", // params not an object
      "{\"method\":\"edit\",\"params\":{\"doc\":99}}",   // unknown doc
      "{\"method\":\"query\",\"params\":{\"doc\":1,\"what\":\"report\"}}",
      "{\"method\":\"close\",\"params\":{\"doc\":1}}",
      "{\"method\":\"query\",\"params\":{\"doc\":true,\"what\":\"report\"}}",
  };
  for (const char *Req : Bad) {
    json::Value R = call(S, Req);
    EXPECT_FALSE(okOf(R)) << Req;
    const json::Value *E = R.find("error");
    ASSERT_NE(E, nullptr) << Req;
    EXPECT_TRUE(E->isString()) << Req;
    EXPECT_FALSE(E->asString().empty()) << Req;
  }
  EXPECT_FALSE(S.shutdownRequested());
}

TEST(ServerRobustness, OpenRejectsBrokenSource) {
  driver::Session S;
  int64_t Doc = -1;
  // Parse error, then a type error: both fail without opening a document.
  json::Value R1 = openDoc(S, "let x = in", &Doc);
  EXPECT_FALSE(okOf(R1));
  json::Value R2 = openDoc(S, "1 + true", &Doc);
  EXPECT_FALSE(okOf(R2));
  json::Value M =
      call(S, "{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}");
  EXPECT_EQ(dig(M, {"result", "metrics", "open_docs"})->asInt(), 0);
}

TEST(ServerRobustness, EditValidationAndRevert) {
  driver::Session S;
  const std::string Text = "let x = 1 in x + 2 end";
  int64_t Doc = -1;
  ASSERT_TRUE(okOf(openDoc(S, Text, &Doc)));
  const std::string DocStr = std::to_string(Doc);

  // Span outside the document.
  json::Value R1 =
      call(S, "{\"method\":\"edit\",\"params\":{\"doc\":" + DocStr +
                  ",\"start\":9999,\"length\":1,\"text\":\"2\"}}");
  EXPECT_FALSE(okOf(R1));
  // Negative length.
  json::Value R2 =
      call(S, "{\"method\":\"edit\",\"params\":{\"doc\":" + DocStr +
                  ",\"start\":0,\"length\":-4,\"text\":\"2\"}}");
  EXPECT_FALSE(okOf(R2));
  // Missing text.
  json::Value R3 =
      call(S, "{\"method\":\"edit\",\"params\":{\"doc\":" + DocStr +
                  ",\"start\":0,\"length\":0}}");
  EXPECT_FALSE(okOf(R3));
  // An edit that breaks the program: rejected, document unchanged.
  json::Value R4 =
      call(S, "{\"method\":\"edit\",\"params\":{\"doc\":" + DocStr +
                  ",\"start\":8,\"length\":1,\"text\":\"(((\"}}");
  EXPECT_FALSE(okOf(R4));
  expectMatchesOracle(S, Doc, Text, "after rejected edits");

  // Edits to a closed document fail.
  call(S, "{\"method\":\"close\",\"params\":{\"doc\":" + DocStr + "}}");
  json::Value R5 =
      call(S, "{\"method\":\"edit\",\"params\":{\"doc\":" + DocStr +
                  ",\"start\":0,\"length\":0,\"text\":\"\"}}");
  EXPECT_FALSE(okOf(R5));
}

//===----------------------------------------------------------------------===//
// Differential harness: random edit scripts vs. the from-scratch oracle.
//===----------------------------------------------------------------------===//

/// Maximal digit runs that form standalone integer literals (not adjacent
/// to identifier characters), the edit targets of the random scripts.
std::vector<std::pair<size_t, size_t>> literalTokens(const std::string &S) {
  std::vector<std::pair<size_t, size_t>> Out;
  auto IsWord = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  };
  size_t I = 0;
  while (I < S.size()) {
    if (!std::isdigit(static_cast<unsigned char>(S[I]))) {
      ++I;
      continue;
    }
    size_t Begin = I;
    while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
      ++I;
    bool LeftOk = Begin == 0 || !IsWord(S[Begin - 1]);
    bool RightOk = I == S.size() || !IsWord(S[I]);
    if (LeftOk && RightOk)
      Out.push_back({Begin, I - Begin});
  }
  return Out;
}

/// Deterministic 64-bit LCG (results must not depend on libc rand).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
};

struct TierCounts {
  int Reuse = 0;
  int Incremental = 0;
  int Full = 0;
};

/// Opens \p Source and applies \p NumEdits random literal edits, checking
/// the server against the oracle after each one. Accumulates the tiers
/// taken into \p Tiers.
void runEditScript(const std::string &Name, const std::string &Source,
                   int NumEdits, uint64_t Seed, TierCounts &Tiers) {
  driver::Session S;
  int64_t Doc = -1;
  json::Value R = openDoc(S, Source, &Doc);
  ASSERT_TRUE(okOf(R)) << Name;
  std::string Text = Source;
  expectMatchesOracle(S, Doc, Text, Name + " after open");

  Lcg Rng(Seed);
  for (int E = 0; E != NumEdits; ++E) {
    std::vector<std::pair<size_t, size_t>> Tokens = literalTokens(Text);
    ASSERT_FALSE(Tokens.empty()) << Name << ": no literals left to edit";
    auto [Pos, Len] = Tokens[Rng.next() % Tokens.size()];
    std::string Old = Text.substr(Pos, Len);
    std::string Replacement;
    switch (Rng.next() % 5) {
    case 0: // literal-only: another number
      Replacement = std::to_string(Rng.next() % 95 + 1);
      break;
    case 1: // arrow-free subtree growth around the literal
      Replacement = "(" + Old + " + " + std::to_string(Rng.next() % 9 + 1) +
                    ")";
      break;
    case 2: // arrow-free subtree with a conditional
      Replacement = "(if true then " + Old + " else " +
                    std::to_string(Rng.next() % 9 + 1) + ")";
      break;
    case 3: // lambda in the replaced subtree: forces the full tier
      Replacement = "((fn q => q + " + std::to_string(Rng.next() % 9 + 1) +
                    ") " + Old + ")";
      break;
    default: // shrink back to a bare literal (often a multi-node break)
      Replacement = std::to_string(Rng.next() % 9 + 1);
      break;
    }
    std::string Where = Name + " edit " + std::to_string(E) + " @" +
                        std::to_string(Pos) + " '" + Old + "' -> '" +
                        Replacement + "'";
    json::Value ER =
        call(S, "{\"method\":\"edit\",\"params\":{\"doc\":" +
                    std::to_string(Doc) + ",\"start\":" + std::to_string(Pos) +
                    ",\"length\":" + std::to_string(Len) +
                    ",\"text\":" + jquote(Replacement) + "}}");
    ASSERT_TRUE(okOf(ER)) << Where;
    Text.replace(Pos, Len, Replacement);

    const json::Value *Tier = dig(ER, {"result", "tier"});
    ASSERT_NE(Tier, nullptr) << Where;
    if (Tier->asString() == "reuse")
      ++Tiers.Reuse;
    else if (Tier->asString() == "incremental")
      ++Tiers.Incremental;
    else
      ++Tiers.Full;
    // A reuse-tier edit must dirty nothing.
    if (Tier->asString() == "reuse") {
      EXPECT_EQ(dig(ER, {"result", "analysis", "dirtied_contexts"})->asInt(),
                0)
          << Where;
    }

    expectMatchesOracle(S, Doc, Text, Where);
  }
}

TEST(ServerDifferential, CorpusEditScripts) {
  struct Program {
    const char *Name;
    std::string Source;
    int Edits;
  };
  const Program Corpus[] = {
      {"appel", programs::appelSource(6), 40},
      {"quicksort", programs::quicksortSource(8), 40},
      {"fib", programs::fibSource(7), 30},
      {"randlist", programs::randlistSource(6), 30},
      {"fac", programs::facSource(5), 30},
      {"example21", programs::example21Source(), 20},
      {"escape",
       "let mk = fn a => fn x => x + a in let f = (mk 3, mk 4) in "
       "(fst f) 10 + (snd f) 20 end end",
       20},
  };
  TierCounts Total;
  uint64_t Seed = 0x5eed;
  int TotalEdits = 0;
  for (const Program &P : Corpus) {
    runEditScript(P.Name, P.Source, P.Edits, Seed++, Total);
    TotalEdits += P.Edits;
    if (::testing::Test::HasFatalFailure())
      return;
  }
  // The scripts must actually exercise every tier, and meet the
  // acceptance floor of 200+ verified random edits.
  EXPECT_GE(TotalEdits, 200);
  EXPECT_GT(Total.Reuse, 0);
  EXPECT_GT(Total.Incremental, 0);
  EXPECT_GT(Total.Full, 0);
}

//===----------------------------------------------------------------------===//
// Incrementality: a small edit on a warm document re-processes fewer
// contexts than the full analysis did.
//===----------------------------------------------------------------------===//

TEST(ServerIncrementality, WarmEditDirtiesFewerContexts) {
  driver::Session S;
  std::string Text = programs::appelSource(16);
  int64_t Doc = -1;
  json::Value R = openDoc(S, Text, &Doc);
  ASSERT_TRUE(okOf(R));
  int64_t FullProcessed =
      dig(R, {"result", "analysis", "processed_contexts"})->asInt();
  ASSERT_GT(FullProcessed, 0);

  // A literal-only edit reuses the whole analysis: zero contexts dirtied.
  std::vector<std::pair<size_t, size_t>> Tokens = literalTokens(Text);
  ASSERT_FALSE(Tokens.empty());
  auto [Pos, Len] = Tokens.back();
  json::Value E1 =
      call(S, "{\"method\":\"edit\",\"params\":{\"doc\":" +
                  std::to_string(Doc) + ",\"start\":" + std::to_string(Pos) +
                  ",\"length\":" + std::to_string(Len) +
                  ",\"text\":\"77\"}}");
  ASSERT_TRUE(okOf(E1));
  EXPECT_EQ(dig(E1, {"result", "tier"})->asString(), "reuse");
  EXPECT_EQ(dig(E1, {"result", "analysis", "dirtied_contexts"})->asInt(), 0);
  Text.replace(Pos, Len, "77");

  // A structural (arrow-free subtree) edit restarts the worklist from the
  // edit's frontier only.
  Tokens = literalTokens(Text);
  ASSERT_FALSE(Tokens.empty());
  auto [Pos2, Len2] = Tokens.back();
  std::string Sub = "(" + Text.substr(Pos2, Len2) + " + 1)";
  json::Value E2 =
      call(S, "{\"method\":\"edit\",\"params\":{\"doc\":" +
                  std::to_string(Doc) + ",\"start\":" + std::to_string(Pos2) +
                  ",\"length\":" + std::to_string(Len2) +
                  ",\"text\":" + jquote(Sub) + "}}");
  ASSERT_TRUE(okOf(E2));
  EXPECT_EQ(dig(E2, {"result", "tier"})->asString(), "incremental");
  int64_t Dirtied =
      dig(E2, {"result", "analysis", "dirtied_contexts"})->asInt();
  EXPECT_GT(Dirtied, 0);
  EXPECT_LT(Dirtied, FullProcessed);
  Text.replace(Pos2, Len2, Sub);
  expectMatchesOracle(S, Doc, Text, "warm structural edit");

  // The structural edit re-solved only the shards its constraints
  // changed; the rest replayed from the per-document cache.
  int64_t Reused =
      dig(E2, {"result", "analysis", "shards_reused"})->asInt();
  EXPECT_GT(Reused, 0);
}

//===----------------------------------------------------------------------===//
// The JSON reader itself.
//===----------------------------------------------------------------------===//

TEST(JsonReader, ParsesScalarsAndNesting) {
  json::Value V;
  std::string E;
  ASSERT_TRUE(json::parseJson(
      " {\"a\": [1, -2.5, true, null, \"x\\n\\u0041\"], \"b\": {}} ", V, E))
      << E;
  ASSERT_TRUE(V.isObject());
  const json::Value *A = V.find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->items().size(), 5u);
  EXPECT_EQ(A->items()[0].asInt(), 1);
  EXPECT_FALSE(A->items()[1].isInt());
  EXPECT_DOUBLE_EQ(A->items()[1].asDouble(), -2.5);
  EXPECT_TRUE(A->items()[2].asBool());
  EXPECT_TRUE(A->items()[3].isNull());
  EXPECT_EQ(A->items()[4].asString(), "x\nA");
  EXPECT_NE(V.find("b"), nullptr);
}

TEST(JsonReader, RejectsMalformedInput) {
  const char *Bad[] = {
      "",       "{",        "}",           "[1,]",        "{\"a\":}",
      "01",     "1.",       "+1",          "tru",         "\"unterminated",
      "[1] []", "nullx",    "{\"a\" 1}",   "{1: 2}",      "\"\\q\"",
      "--1",    "[1,2,,3]", "{\"a\":1,}",  "\x01",        "[\"\\u12\"]",
  };
  for (const char *Text : Bad) {
    json::Value V;
    std::string E;
    EXPECT_FALSE(json::parseJson(Text, V, E)) << Text;
    EXPECT_FALSE(E.empty()) << Text;
  }
}

TEST(JsonReader, DepthCapStopsAdversarialNesting) {
  std::string Deep(100000, '[');
  json::Value V;
  std::string E;
  EXPECT_FALSE(json::parseJson(Deep, V, E));
}

//===----------------------------------------------------------------------===//
// Framing: the LineSplitter shared by the stdio and socket transports.
//===----------------------------------------------------------------------===//

TEST(LineSplitter, SplitsAcrossChunksAndStripsCr) {
  driver::LineSplitter Split(64);
  std::string L;
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::None);
  Split.feed("ab", 2);
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::None);
  Split.feed("c\r\nsecond\nthi", 13);
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "abc"); // CR stripped
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "second");
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::None);
  Split.feed("rd\n\r\n", 5);
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "third");
  // A bare CRLF is an empty line after stripping, not a CR line.
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "");
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::None);
}

TEST(LineSplitter, FinalUnterminatedLineAtEof) {
  driver::LineSplitter Split(64);
  std::string L;
  Split.feed("one\ntail", 8);
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "one");
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::None);
  Split.finish();
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "tail");
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::None);
}

TEST(LineSplitter, OversizeReportedOnceAndDiscarded) {
  driver::LineSplitter Split(8);
  std::string L;
  // The cap fires mid-line, before the newline even arrives...
  Split.feed("0123456789", 10);
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::Oversize);
  // ...and the rest of the long line is discarded without a second report.
  Split.feed("morelongbytes", 13);
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::None);
  Split.feed("stilllong\nok\n", 13);
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "ok");
  // A complete-but-too-long line arriving in one chunk reports once too.
  Split.feed("0123456789\nfine\n", 16);
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::Oversize);
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "fine");
  // Exactly at the cap is not oversize.
  Split.feed("01234567\n", 9);
  ASSERT_EQ(Split.next(L), driver::LineSplitter::Item::Line);
  EXPECT_EQ(L, "01234567");
  // An unterminated oversize line at EOF stays discarded.
  Split.feed("waytoolongtail", 14);
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::Oversize);
  Split.finish();
  EXPECT_EQ(Split.next(L), driver::LineSplitter::Item::None);
}

//===----------------------------------------------------------------------===//
// The stdio transport: CRLF, request caps, and EOF handling (the PR-9
// protocol bugfixes).
//===----------------------------------------------------------------------===//

/// Runs the stdio server over \p Input and returns the parsed response
/// lines.
std::vector<json::Value> runStdio(const std::string &Input,
                                  size_t MaxRequestBytes = 1u << 20) {
  driver::Server S;
  std::istringstream In(Input);
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out, MaxRequestBytes), 0);
  std::vector<json::Value> Responses;
  std::istringstream Lines(Out.str());
  std::string Line;
  while (std::getline(Lines, Line)) {
    json::Value V;
    std::string Error;
    EXPECT_TRUE(json::parseJson(Line, V, Error)) << Error << " in: " << Line;
    Responses.push_back(std::move(V));
  }
  return Responses;
}

TEST(ServerStdio, CrlfRequestsAreServed) {
  // CRLF line endings must not leak the '\r' into the JSON reader, and a
  // bare CRLF is a blank line to skip, not a parse error.
  std::vector<json::Value> R =
      runStdio("{\"id\":1,\"method\":\"query\",\"params\":{\"what\":"
               "\"metrics\"}}\r\n"
               "\r\n"
               "{\"id\":2,\"method\":\"shutdown\"}\r\n");
  ASSERT_EQ(R.size(), 2u);
  EXPECT_TRUE(okOf(R[0]));
  EXPECT_EQ(R[0].find("id")->asInt(), 1);
  EXPECT_TRUE(okOf(R[1]));
  EXPECT_EQ(R[1].find("id")->asInt(), 2);
}

TEST(ServerStdio, FinalUnterminatedLineIsAnswered) {
  std::vector<json::Value> R = runStdio(
      "{\"id\":1,\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}");
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(okOf(R[0]));
  EXPECT_EQ(R[0].find("id")->asInt(), 1);
}

TEST(ServerStdio, OversizedRequestGetsProtocolError) {
  std::string Long = "{\"method\":\"open\",\"params\":{\"source\":\"" +
                     std::string(300, 'x') + "\"}}";
  std::vector<json::Value> R = runStdio(
      Long + "\n{\"id\":2,\"method\":\"query\",\"params\":{\"what\":"
             "\"metrics\"}}\n",
      128);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_FALSE(okOf(R[0]));
  EXPECT_NE(R[0].find("error")->asString().find("limit"), std::string::npos);
  // The session survives: the next request is served normally, and the
  // failed request is visible in its error counters.
  EXPECT_TRUE(okOf(R[1]));
  EXPECT_EQ(dig(R[1], {"result", "metrics", "errors"})->asInt(), 1);
  EXPECT_EQ(dig(R[1], {"result", "metrics", "requests"})->asInt(), 2);
}

TEST(ServerStdio, MetricsHaveNoConnectionsObject) {
  // The "connections" scope belongs to the socket transport only.
  std::vector<json::Value> R = runStdio(
      "{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}\n");
  ASSERT_EQ(R.size(), 1u);
  ASSERT_TRUE(okOf(R[0]));
  EXPECT_EQ(dig(R[0], {"result", "metrics", "connections"}), nullptr);
}

//===----------------------------------------------------------------------===//
// The socket transport: concurrency, overload, timeouts, shutdown.
//===----------------------------------------------------------------------===//

/// A listening server on an ephemeral loopback port, with serve() running
/// on its own thread.
struct TestServer {
  driver::Server S;
  std::thread T;
  bool Ok = false;

  explicit TestServer(unsigned MaxConnections = 8, unsigned IdleTimeoutMs = 0,
                      size_t MaxRequestBytes = 1u << 20) {
    driver::ServeOptions O;
    O.Port = 0;
    O.MaxConnections = MaxConnections;
    O.IdleTimeoutMs = IdleTimeoutMs;
    O.MaxRequestBytes = MaxRequestBytes;
    O.InstallSignalHandlers = false; // keep the test harness's handlers
    std::string Error;
    Ok = S.listen(O, Error);
    EXPECT_TRUE(Ok) << Error;
    if (Ok)
      T = std::thread([this] { S.serve(); });
  }

  uint16_t port() const { return S.port(); }

  /// Blocks until serve() returned (after an in-band shutdown request).
  void join() {
    if (T.joinable())
      T.join();
  }

  ~TestServer() {
    S.requestStop();
    join();
  }
};

/// A blocking line-oriented protocol client.
struct TestClient {
  support::Socket Sock;
  std::string Buf;

  bool connect(uint16_t Port) {
    std::string Error;
    Sock = support::Socket::connectTo(Port, Error);
    return Sock.valid();
  }

  bool send(const std::string &Bytes) { return Sock.sendAll(Bytes); }
  bool sendLine(const std::string &L) { return send(L + "\n"); }

  /// Reads one '\n'-terminated response line (terminator stripped).
  bool readLine(std::string &Out, int TimeoutMs = 60000) {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        Out = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return true;
      }
      if (Sock.waitReadable(TimeoutMs) != support::Socket::Wait::Ready)
        return false;
      char Tmp[4096];
      long N = Sock.recvSome(Tmp, sizeof(Tmp));
      if (N <= 0)
        return false;
      Buf.append(Tmp, static_cast<size_t>(N));
    }
  }

  /// One request/response round trip; fails the test on transport errors.
  json::Value call(const std::string &Request) {
    EXPECT_TRUE(sendLine(Request));
    std::string Line;
    EXPECT_TRUE(readLine(Line)) << "no response to: " << Request;
    json::Value V;
    std::string Error;
    EXPECT_TRUE(json::parseJson(Line, V, Error)) << Error << " in: " << Line;
    return V;
  }
};

/// Strips the non-reproducible wall-clock objects (the trailing request
/// "timings" and any embedded run "micros") so two responses to the same
/// request can be compared byte-for-byte.
std::string stripTimings(const std::string &Resp) {
  std::string Out = Resp;
  size_t P = Out.rfind(",\"timings\":{");
  if (P != std::string::npos)
    Out = Out.substr(0, P) + "}";
  for (size_t M = Out.find("\"micros\":{"); M != std::string::npos;
       M = Out.find("\"micros\":{", M + 1)) {
    size_t Open = M + 9; // at '{'; micros objects are flat
    size_t Close = Out.find('}', Open);
    if (Close == std::string::npos)
      break;
    Out.erase(Open + 1, Close - Open - 1);
  }
  return Out;
}

TEST(ServerSocket, MultiClientDifferential) {
  // Four concurrent clients, each driving its own interleaved
  // open/edit/query transcript in lockstep with the others. Every
  // client's responses must be byte-identical (modulo wall-clock
  // timings) to a fresh single-session replay of its transcript — the
  // tentpole proof that sessions do not bleed into each other.
  const std::string Progs[4] = {
      "let x = 1 in x + 2 end",
      "let f = fn a => a + 3 in f 4 end",
      "let p = (5, 6) in fst p + snd p end",
      "let g = fn h => h 7 in g (fn z => z + 8) end",
  };
  std::vector<std::vector<std::string>> Transcripts;
  for (int C = 0; C != 4; ++C) {
    std::vector<std::string> T;
    T.push_back("{\"id\":1,\"method\":\"open\",\"params\":{\"source\":" +
                jquote(Progs[C]) + "}}");
    T.push_back("{\"id\":2,\"method\":\"query\",\"params\":{\"doc\":1,"
                "\"what\":\"report\"}}");
    // A literal-only edit (reuse tier) then a structural one.
    T.push_back("{\"id\":3,\"method\":\"edit\",\"params\":{\"doc\":1,"
                "\"start\":0,\"length\":0,\"text\":\"\"}}");
    T.push_back("{\"id\":4,\"method\":\"query\",\"params\":{\"doc\":1,"
                "\"what\":\"domains\"}}");
    T.push_back("{\"id\":5,\"method\":\"query\",\"params\":{\"doc\":1,"
                "\"what\":\"run\"}}");
    T.push_back("{\"id\":6,\"method\":\"close\",\"params\":{\"doc\":1}}");
    T.push_back("{\"id\":7,\"method\":\"query\",\"params\":{\"doc\":1,"
                "\"what\":\"report\"}}"); // now an error: doc closed
    Transcripts.push_back(std::move(T));
  }

  TestServer Srv(/*MaxConnections=*/8);
  ASSERT_TRUE(Srv.Ok);

  std::vector<std::vector<std::string>> Got(4);
  std::vector<std::thread> Clients;
  std::atomic<int> Failures{0};
  for (int C = 0; C != 4; ++C) {
    Clients.emplace_back([&, C] {
      TestClient Cl;
      if (!Cl.connect(Srv.port())) {
        ++Failures;
        return;
      }
      for (const std::string &Req : Transcripts[C]) {
        if (!Cl.sendLine(Req)) {
          ++Failures;
          return;
        }
        std::string Line;
        if (!Cl.readLine(Line)) {
          ++Failures;
          return;
        }
        Got[C].push_back(Line);
      }
    });
  }
  for (std::thread &T : Clients)
    T.join();
  ASSERT_EQ(Failures.load(), 0);

  for (int C = 0; C != 4; ++C) {
    driver::Session Replay;
    ASSERT_EQ(Got[C].size(), Transcripts[C].size()) << "client " << C;
    for (size_t I = 0; I != Transcripts[C].size(); ++I) {
      std::string Expect = Replay.handleLine(Transcripts[C][I]);
      EXPECT_EQ(stripTimings(Got[C][I]), stripTimings(Expect))
          << "client " << C << " request " << I;
    }
  }

  const driver::ConnectionCounters &Conn = Srv.S.connections();
  EXPECT_GE(Conn.Accepted.load(), 4u);
  EXPECT_EQ(Conn.Rejected.load(), 0u);
}

TEST(ServerSocket, CrlfAndBlankLinesOverSocket) {
  TestServer Srv;
  ASSERT_TRUE(Srv.Ok);
  TestClient Cl;
  ASSERT_TRUE(Cl.connect(Srv.port()));
  // A blank CRLF line produces no response; the CRLF-terminated request
  // after it is answered normally.
  ASSERT_TRUE(Cl.send("\r\n{\"id\":9,\"method\":\"query\",\"params\":{"
                      "\"what\":\"metrics\"}}\r\n"));
  std::string Line;
  ASSERT_TRUE(Cl.readLine(Line));
  json::Value R;
  std::string Error;
  ASSERT_TRUE(json::parseJson(Line, R, Error)) << Error;
  EXPECT_TRUE(okOf(R));
  EXPECT_EQ(R.find("id")->asInt(), 9);
}

TEST(ServerSocket, ConnectionMetricsExposed) {
  TestServer Srv;
  ASSERT_TRUE(Srv.Ok);
  TestClient Cl;
  ASSERT_TRUE(Cl.connect(Srv.port()));
  json::Value M =
      Cl.call("{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}");
  ASSERT_TRUE(okOf(M));
  const json::Value *Acc =
      dig(M, {"result", "metrics", "connections", "accepted"});
  const json::Value *Act =
      dig(M, {"result", "metrics", "connections", "active"});
  ASSERT_TRUE(Acc && Act);
  EXPECT_GE(Acc->asInt(), 1);
  EXPECT_GE(Act->asInt(), 1);
  EXPECT_NE(dig(M, {"result", "metrics", "connections", "rejected"}), nullptr);
  EXPECT_NE(dig(M, {"result", "metrics", "connections", "timed_out"}),
            nullptr);
}

TEST(ServerSocket, OverloadRepliesAndRecovers) {
  TestServer Srv(/*MaxConnections=*/1);
  ASSERT_TRUE(Srv.Ok);

  TestClient A;
  ASSERT_TRUE(A.connect(Srv.port()));
  // A full round trip guarantees the acceptor has registered A.
  EXPECT_TRUE(okOf(
      A.call("{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}")));

  // The connection over the cap gets a one-line overload error, then EOF.
  TestClient B;
  ASSERT_TRUE(B.connect(Srv.port()));
  std::string Line;
  ASSERT_TRUE(B.readLine(Line));
  json::Value R;
  std::string Error;
  ASSERT_TRUE(json::parseJson(Line, R, Error)) << Error << " in: " << Line;
  EXPECT_FALSE(okOf(R));
  EXPECT_NE(R.find("error")->asString().find("capacity"), std::string::npos);
  EXPECT_FALSE(B.readLine(Line, 5000));
  EXPECT_GE(Srv.S.connections().Rejected.load(), 1u);

  // Once A leaves, a retrying client gets a slot again.
  A.Sock.close();
  bool Recovered = false;
  for (int Try = 0; Try != 100 && !Recovered; ++Try) {
    TestClient C;
    if (!C.connect(Srv.port()))
      break;
    C.sendLine("{\"id\":1,\"method\":\"query\",\"params\":{\"what\":"
               "\"metrics\"}}");
    std::string L;
    if (C.readLine(L) && L.find("\"ok\":true") != std::string::npos) {
      Recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(Recovered);
}

TEST(ServerSocket, IdleConnectionTimesOut) {
  TestServer Srv(/*MaxConnections=*/4, /*IdleTimeoutMs=*/400);
  ASSERT_TRUE(Srv.Ok);
  TestClient Cl;
  ASSERT_TRUE(Cl.connect(Srv.port()));
  EXPECT_TRUE(okOf(
      Cl.call("{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}")));

  // Go idle: the server sends a final error line and closes.
  std::string Line;
  ASSERT_TRUE(Cl.readLine(Line, 30000));
  json::Value R;
  std::string Error;
  ASSERT_TRUE(json::parseJson(Line, R, Error)) << Error << " in: " << Line;
  EXPECT_FALSE(okOf(R));
  EXPECT_NE(R.find("error")->asString().find("idle"), std::string::npos);
  EXPECT_FALSE(Cl.readLine(Line, 5000)); // EOF after the timeout reply
  EXPECT_GE(Srv.S.connections().TimedOut.load(), 1u);
}

TEST(ServerSocket, MidRequestDisconnectLeavesServerServing) {
  TestServer Srv;
  ASSERT_TRUE(Srv.Ok);
  {
    TestClient Cl;
    ASSERT_TRUE(Cl.connect(Srv.port()));
    // Half a request, then the client vanishes without a newline.
    ASSERT_TRUE(Cl.send("{\"id\":1,\"method\":\"que"));
    Cl.Sock.close();
  }
  // The server must shrug it off and keep serving new connections.
  TestClient Next;
  ASSERT_TRUE(Next.connect(Srv.port()));
  EXPECT_TRUE(okOf(
      Next.call("{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}")));
}

TEST(ServerSocket, HalfCloseStillAnswersFinalLine) {
  TestServer Srv;
  ASSERT_TRUE(Srv.Ok);
  TestClient Cl;
  ASSERT_TRUE(Cl.connect(Srv.port()));
  // An unterminated request followed by a write-side shutdown: the EOF
  // flushes the final line, which still gets a response.
  ASSERT_TRUE(Cl.send(
      "{\"id\":5,\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}"));
  ::shutdown(Cl.Sock.fd(), SHUT_WR);
  std::string Line;
  ASSERT_TRUE(Cl.readLine(Line));
  json::Value R;
  std::string Error;
  ASSERT_TRUE(json::parseJson(Line, R, Error)) << Error << " in: " << Line;
  EXPECT_TRUE(okOf(R));
  EXPECT_EQ(R.find("id")->asInt(), 5);
}

TEST(ServerSocket, OversizedRequestOverSocket) {
  TestServer Srv(/*MaxConnections=*/4, /*IdleTimeoutMs=*/0,
                 /*MaxRequestBytes=*/256);
  ASSERT_TRUE(Srv.Ok);
  TestClient Cl;
  ASSERT_TRUE(Cl.connect(Srv.port()));
  json::Value R = Cl.call("{\"method\":\"open\",\"params\":{\"source\":\"" +
                          std::string(1000, 'x') + "\"}}");
  EXPECT_FALSE(okOf(R));
  EXPECT_NE(R.find("error")->asString().find("limit"), std::string::npos);
  // The connection survives the oversized request.
  EXPECT_TRUE(okOf(
      Cl.call("{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}")));
}

TEST(ServerSocket, ShutdownRequestStopsServerAndDrains) {
  TestServer Srv;
  ASSERT_TRUE(Srv.Ok);
  TestClient A, B;
  ASSERT_TRUE(A.connect(Srv.port()));
  ASSERT_TRUE(B.connect(Srv.port()));
  EXPECT_TRUE(okOf(
      A.call("{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}")));
  EXPECT_TRUE(okOf(
      B.call("{\"method\":\"query\",\"params\":{\"what\":\"metrics\"}}")));

  json::Value Down = A.call("{\"id\":99,\"method\":\"shutdown\"}");
  EXPECT_TRUE(okOf(Down));
  Srv.join(); // serve() must return and drain every connection

  // Both connections are closed and the listener is gone.
  std::string Line;
  EXPECT_FALSE(A.readLine(Line, 2000));
  EXPECT_FALSE(B.readLine(Line, 2000));
  TestClient After;
  EXPECT_FALSE(After.connect(Srv.port()));
  EXPECT_EQ(Srv.S.connections().Active.load(), 0u);
}

} // namespace
