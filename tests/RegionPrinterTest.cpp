// Tests for the region-program printer: notation coverage and the
// placement of completion operations in the rendered text.

#include "driver/Pipeline.h"
#include "programs/Corpus.h"
#include "regions/RegionPrinter.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

TEST(RegionPrinter, ShowsCoreNotation) {
  driver::PipelineResult R = driver::runPipeline(
      "letrec f n = if n = 0 then (1, nil) else f (n - 1) in fst (f 2) "
      "end");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  std::string S = regions::printRegionProgram(*R.Prog);
  EXPECT_NE(S.find("program globals:"), std::string::npos);
  EXPECT_NE(S.find("letregion"), std::string::npos);
  EXPECT_NE(S.find("letrec f#"), std::string::npos);
  EXPECT_NE(S.find("]("), std::string::npos); // formal list
  EXPECT_NE(S.find("@r"), std::string::npos);
  EXPECT_NE(S.find("pair@r"), std::string::npos);
  EXPECT_NE(S.find("nil@r"), std::string::npos);
  EXPECT_NE(S.find("fst"), std::string::npos);
  EXPECT_NE(S.find("if"), std::string::npos);
}

TEST(RegionPrinter, CompletionOpsAppearInOrder) {
  driver::PipelineResult R = driver::runPipeline("1 + 2");
  ASSERT_TRUE(R.ok());
  std::string S = regions::printRegionProgram(*R.Prog, &R.ConservativeC);
  // Conservative: allocs precede the expression, frees follow.
  size_t Alloc = S.find("alloc_before");
  size_t Op = S.find("binop +");
  size_t Free = S.find("free_after");
  ASSERT_NE(Alloc, std::string::npos);
  ASSERT_NE(Op, std::string::npos);
  EXPECT_LT(Alloc, Op);
  if (Free != std::string::npos) {
    EXPECT_LT(Op, Free);
  }
}

TEST(RegionPrinter, FreeAppRenderedInsideApply) {
  driver::PipelineResult R =
      driver::runPipeline(programs::example11Source());
  ASSERT_TRUE(R.ok());
  std::string S = regions::printRegionProgram(*R.Prog, &R.AflC);
  size_t Apply = S.find("apply");
  size_t FreeApp = S.find("free_app");
  size_t EndApply = S.find("endapply");
  ASSERT_NE(Apply, std::string::npos);
  ASSERT_NE(FreeApp, std::string::npos);
  ASSERT_NE(EndApply, std::string::npos);
  EXPECT_LT(Apply, FreeApp);
  EXPECT_LT(FreeApp, EndApply);
}

TEST(RegionPrinter, LambdaAndRegApp) {
  driver::PipelineResult R = driver::runPipeline(
      "let g = fn x => x + 1 in letrec f n = g n in f 3 end end");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  std::string S = regions::printRegionProgram(*R.Prog);
  EXPECT_NE(S.find("(fn x#"), std::string::npos);
  EXPECT_NE(S.find("f#"), std::string::npos);
  // Region application of f shows the bracketed actuals.
  EXPECT_NE(S.find("["), std::string::npos);
}

} // namespace
