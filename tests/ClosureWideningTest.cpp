// Tests for the context-set widening (docs/ANALYSIS_CORE.md): the
// canonical invisible-class recoloring itself, its off-switch
// bit-identity, agreement across all three fixpoint modes, the shared
// stabilization-cap derivation (sequential and parallel must fall back
// to the conservative completion identically when the cap is hit), the
// exact-blows-up/widened-converges cliff on the permuted-payload
// family, and the differential precision sweep over the corpus plus
// 500 random programs quantifying what the merge costs at runtime.

#include "ast/ASTContext.h"
#include "closure/ClosureAnalysis.h"
#include "completion/AflCompletion.h"
#include "constraints/ConstraintPrinter.h"
#include "driver/Pipeline.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "programs/RandomProgram.h"
#include "regions/RegionInference.h"
#include "regions/RegionPrinter.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

#include <limits>

using namespace afl;
using namespace afl::closure;
using namespace afl::regions;

namespace {

//===----------------------------------------------------------------------===//
// widenRegEnvMap unit properties
//===----------------------------------------------------------------------===//

TEST(WidenRegEnvMap, ZeroBoundIsOff) {
  RegEnvMap Map = {{1, 4}, {2, 7}, {3, 9}};
  RegEnvMap Before = Map;
  EXPECT_FALSE(widenRegEnvMap(Map, {}, 0));
  EXPECT_EQ(Map, Before);
  EXPECT_TRUE(widenedRegEnvVars(Map, {}, 0).empty());
}

TEST(WidenRegEnvMap, UnderBoundIsIdentity) {
  // Two invisible classes, bound 2: within the bound, untouched.
  RegEnvMap Map = {{1, 4}, {2, 7}, {3, 7}};
  RegEnvMap Before = Map;
  EXPECT_FALSE(widenRegEnvMap(Map, {}, 2));
  EXPECT_EQ(Map, Before);
  EXPECT_TRUE(widenedRegEnvVars(Map, {}, 2).empty());
}

TEST(WidenRegEnvMap, VisibleClassesNeverCountOrMove) {
  // Vars 1 and 2 are visible (in the consumer's latent effect); only
  // var 3's class is invisible — count 1 <= bound 1, no recolor even
  // though there are 3 classes total.
  RegEnvMap Map = {{1, 5}, {2, 8}, {3, 2}};
  RegEnvMap Before = Map;
  EXPECT_FALSE(widenRegEnvMap(Map, {1, 2}, 1));
  EXPECT_EQ(Map, Before);
}

TEST(WidenRegEnvMap, CanonicalRecolorSkipsVisibleColors) {
  // Visible class {var 1 -> 5}; three invisible classes with colors
  // 7, 3, 9 (first seen at vars 2, 3, 4). Bound 2 < 3 fires: invisible
  // classes take ascending canonical colors in smallest-member-var
  // order, skipping the visible color 5.
  RegEnvMap Map = {{1, 5}, {2, 7}, {3, 3}, {4, 9}};
  EXPECT_TRUE(widenRegEnvMap(Map, {1}, 2));
  RegEnvMap Want = {{1, 5}, {2, 0}, {3, 1}, {4, 2}};
  EXPECT_EQ(Map, Want);
  std::vector<RegionVarId> Vars = widenedRegEnvVars(Want, {1}, 2);
  EXPECT_EQ(Vars, (std::vector<RegionVarId>{2, 3, 4}));
}

TEST(WidenRegEnvMap, ReservedVisibleColorIsSkipped) {
  // Visible color 1 must not be reused for an invisible class.
  RegEnvMap Map = {{1, 1}, {2, 6}, {3, 4}};
  EXPECT_TRUE(widenRegEnvMap(Map, {1}, 1));
  RegEnvMap Want = {{1, 1}, {2, 0}, {3, 2}};
  EXPECT_EQ(Map, Want);
}

TEST(WidenRegEnvMap, PreservesAliasingPartition) {
  // Vars 2 and 4 alias (one class); 3 is separate. After recoloring
  // the partition must survive: 2 and 4 still share, 3 still differs.
  RegEnvMap Map = {{1, 9}, {2, 6}, {3, 4}, {4, 6}};
  EXPECT_TRUE(widenRegEnvMap(Map, {1}, 1));
  Color C2 = 0, C3 = 0, C4 = 0;
  for (const auto &[Var, C] : Map) {
    if (Var == 2)
      C2 = C;
    if (Var == 3)
      C3 = C;
    if (Var == 4)
      C4 = C;
  }
  EXPECT_EQ(C2, C4);
  EXPECT_NE(C2, C3);
}

TEST(WidenRegEnvMap, IdempotentOnContent) {
  RegEnvMap Map = {{1, 5}, {2, 7}, {3, 3}, {4, 9}};
  EXPECT_TRUE(widenRegEnvMap(Map, {1}, 2));
  RegEnvMap Once = Map;
  // A second application still reports "fired" (the class count is
  // still over the bound — widened-ness is re-derivable) but must not
  // change the content.
  EXPECT_TRUE(widenRegEnvMap(Map, {1}, 2));
  EXPECT_EQ(Map, Once);
}

TEST(WidenRegEnvMap, PermutationOrbitCollapses) {
  // Two environments that permute the same invisible partition across
  // the same vars widen to the same canonical map — this is the merge
  // that bounds the permuted-payload family.
  RegEnvMap A = {{1, 0}, {2, 1}, {3, 2}};
  RegEnvMap B = {{1, 2}, {2, 0}, {3, 1}};
  EXPECT_TRUE(widenRegEnvMap(A, {}, 1));
  EXPECT_TRUE(widenRegEnvMap(B, {}, 1));
  EXPECT_EQ(A, B);
}

//===----------------------------------------------------------------------===//
// ClosureOptions::stepCap — the shared overflow-checked derivation
//===----------------------------------------------------------------------===//

TEST(StepCap, MaxStepsOverridesDerivation) {
  ClosureOptions O;
  O.MaxSteps = 42;
  EXPECT_EQ(O.stepCap(1000000), 42u);
}

TEST(StepCap, DerivesPassesTimesNodes) {
  ClosureOptions O;
  O.MaxSteps = 0;
  O.MaxPasses = 1000;
  EXPECT_EQ(O.stepCap(50), 50000u);
}

TEST(StepCap, ZeroNodesCountsAsOne) {
  ClosureOptions O;
  O.MaxSteps = 0;
  O.MaxPasses = 7;
  EXPECT_EQ(O.stepCap(0), 7u);
}

TEST(StepCap, SaturatesInsteadOfOverflowing) {
  ClosureOptions O;
  O.MaxSteps = 0;
  O.MaxPasses = 1000;
  EXPECT_EQ(O.stepCap(std::numeric_limits<size_t>::max() / 2),
            std::numeric_limits<size_t>::max());
}

//===----------------------------------------------------------------------===//
// End-to-end helpers
//===----------------------------------------------------------------------===//

std::unique_ptr<RegionProgram> frontend(const std::string &Source,
                                        ast::ASTContext &Ctx,
                                        const char *Label) {
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Label << ": " << Diags.str();
  if (!E)
    return nullptr;
  types::TypedProgram Typed = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(Typed.Success) << Label << ": " << Diags.str();
  if (!Typed.Success)
    return nullptr;
  auto Prog = inferRegions(E, Ctx, Typed, Diags);
  EXPECT_NE(Prog, nullptr) << Label << ": " << Diags.str();
  return Prog;
}

/// Sequential exact-analysis options with everything env-sensitive
/// pinned, so the tests compare what they mean to compare whatever
/// AFL_CLOSURE_JOBS / AFL_CLOSURE_WIDEN say (the CI runs legs with
/// both set).
ClosureOptions exactOpts() {
  ClosureOptions O;
  O.Jobs = 1;
  O.Widening = 0;
  return O;
}

ClosureOptions widenedOpts(unsigned K) {
  ClosureOptions O = exactOpts();
  O.Widening = K;
  return O;
}

/// Constraint dump + printed completion + Solved flag for one options
/// set — the byte-comparable artifact bundle.
struct Artifacts {
  bool Solved = false;
  std::string System;
  std::string Printed;
  ClosureStats Closure;
  size_t NumWidenedPinned = 0;
};

Artifacts artifactsFor(const RegionProgram &Prog,
                       const ClosureOptions &Opts) {
  Artifacts A;
  ClosureAnalysis CA(Prog, Opts);
  if (CA.run()) {
    constraints::GenResult Gen =
        constraints::generateConstraints(Prog, CA);
    A.System = constraints::dumpSystem(Gen);
    A.NumWidenedPinned = Gen.NumWidenedPinned;
  }
  A.Closure = CA.stats();
  completion::AflStats Stats;
  regions::Completion Cpl = completion::aflCompletion(
      Prog, &Stats, constraints::GenOptions(), solver::SolveOptions(),
      Opts);
  A.Solved = Stats.Solved;
  A.Printed = printRegionProgram(Prog, &Cpl);
  return A;
}

//===----------------------------------------------------------------------===//
// Widening-off and not-fired bit-identity
//===----------------------------------------------------------------------===//

TEST(ClosureWidening, ZeroBoundIsBitIdenticalToExact) {
  // --closure-widen=0 must be *the* exact analysis, not a near miss:
  // byte-identical constraint systems and completions on the corpus.
  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    ast::ASTContext Ctx;
    auto Prog = frontend(P.Source, Ctx, P.Name.c_str());
    ASSERT_NE(Prog, nullptr);
    Artifacts Exact = artifactsFor(*Prog, exactOpts());
    Artifacts Zero = artifactsFor(*Prog, widenedOpts(0));
    EXPECT_TRUE(Exact.Solved) << P.Name;
    EXPECT_EQ(Exact.System, Zero.System) << P.Name;
    EXPECT_EQ(Exact.Printed, Zero.Printed) << P.Name;
    EXPECT_EQ(Zero.Closure.WideningBound, 0u);
    EXPECT_EQ(Zero.Closure.WidenedClosures, 0u);
  }
}

TEST(ClosureWidening, UnfiredBoundIsBitIdenticalToExact) {
  // A bound no corpus program exceeds: the widening hook runs on every
  // closure creation but must be a pure identity — proving the hook
  // itself cannot perturb the analysis.
  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    ast::ASTContext Ctx;
    auto Prog = frontend(P.Source, Ctx, P.Name.c_str());
    ASSERT_NE(Prog, nullptr);
    Artifacts Exact = artifactsFor(*Prog, exactOpts());
    Artifacts High = artifactsFor(*Prog, widenedOpts(1000000));
    EXPECT_EQ(Exact.System, High.System) << P.Name;
    EXPECT_EQ(Exact.Printed, High.Printed) << P.Name;
    EXPECT_EQ(High.Closure.WideningBound, 1000000u);
    EXPECT_EQ(High.Closure.WidenedClosures, 0u) << P.Name;
    EXPECT_EQ(High.NumWidenedPinned, 0u) << P.Name;
  }
}

//===----------------------------------------------------------------------===//
// Cross-mode agreement under an active widening bound
//===----------------------------------------------------------------------===//

TEST(ClosureWidening, AllFixpointModesAgreeUnderWidening) {
  // The widened analysis must stay deterministic across the worklist,
  // restart, and parallel partition-replay fixpoints, exactly like the
  // exact analysis (ClosureDifferentialTest). permSource(4, 3) fires
  // the bound heavily; the corpus programs exercise the no-fire path.
  std::vector<programs::BenchProgram> Cases = programs::smallCorpus();
  Cases.push_back({"Perm(4,3)", programs::permSource(4, 3)});
  for (const programs::BenchProgram &P : Cases) {
    ast::ASTContext Ctx;
    auto Prog = frontend(P.Source, Ctx, P.Name.c_str());
    ASSERT_NE(Prog, nullptr);

    ClosureOptions Worklist = widenedOpts(2);
    ClosureOptions Restart = widenedOpts(2);
    Restart.UseWorklist = false;
    ClosureOptions Parallel = widenedOpts(2);
    Parallel.Jobs = 4;
    Parallel.ParallelMinFrontier = 2;

    Artifacts W = artifactsFor(*Prog, Worklist);
    ASSERT_TRUE(W.Solved) << P.Name;
    for (const auto &[Name, Opts] :
         {std::pair<const char *, ClosureOptions>{"restart", Restart},
          {"parallel", Parallel}}) {
      SCOPED_TRACE(P.Name + std::string(" vs ") + Name);
      Artifacts O = artifactsFor(*Prog, Opts);
      EXPECT_TRUE(O.Solved);
      EXPECT_EQ(W.System, O.System);
      EXPECT_EQ(W.Printed, O.Printed);
      // The post-fixpoint widening counters are content-derived and
      // must agree too (a live counter would diverge under parallel
      // speculation — this pins the recomputed design).
      EXPECT_EQ(W.Closure.WidenedClosures, O.Closure.WidenedClosures);
      EXPECT_EQ(W.Closure.WidenedVars, O.Closure.WidenedVars);
      EXPECT_EQ(W.NumWidenedPinned, O.NumWidenedPinned);
    }
  }
}

//===----------------------------------------------------------------------===//
// The cap: shared derivation, shared conservative fallback
//===----------------------------------------------------------------------===//

TEST(ClosureWidening, CapHitFallsBackConservativelyInEveryMode) {
  // A cap far below what permSource(4, 3) needs: every fixpoint mode
  // must report non-convergence, and aflCompletion must return the
  // *same* conservative completion for each — the parallel engine may
  // not "almost finish" into something different (the cap-parity bug
  // this PR fixes was exactly a diverging parallel cap derivation).
  ast::ASTContext Ctx;
  auto Prog = frontend(programs::permSource(4, 3), Ctx, "Perm(4,3)");
  ASSERT_NE(Prog, nullptr);

  ClosureOptions Seq = exactOpts();
  Seq.MaxSteps = 10;
  ClosureOptions Par = exactOpts();
  Par.MaxSteps = 10;
  Par.Jobs = 4;
  Par.ParallelMinFrontier = 2;

  ClosureAnalysis SeqCA(*Prog, Seq);
  EXPECT_FALSE(SeqCA.run());
  EXPECT_FALSE(SeqCA.error().empty());
  ClosureAnalysis ParCA(*Prog, Par);
  EXPECT_FALSE(ParCA.run());
  EXPECT_FALSE(ParCA.error().empty());

  completion::AflStats SeqStats, ParStats;
  regions::Completion SeqCpl = completion::aflCompletion(
      *Prog, &SeqStats, constraints::GenOptions(), solver::SolveOptions(),
      Seq);
  regions::Completion ParCpl = completion::aflCompletion(
      *Prog, &ParStats, constraints::GenOptions(), solver::SolveOptions(),
      Par);
  EXPECT_FALSE(SeqStats.Solved);
  EXPECT_FALSE(ParStats.Solved);
  EXPECT_EQ(printRegionProgram(*Prog, &SeqCpl),
            printRegionProgram(*Prog, &ParCpl));
}

//===----------------------------------------------------------------------===//
// The cliff: exact blows past the cap, widened converges
//===----------------------------------------------------------------------===//

TEST(ClosureWidening, WidenedConvergesWhereExactHitsTheCap) {
  // Same program, same stabilization budget. The exact analysis must
  // enumerate the slot-permutation orbit and run out; the widened
  // analysis collapses the orbit and converges to a solved completion.
  ast::ASTContext Ctx;
  auto Prog = frontend(programs::permSource(6, 3), Ctx, "Perm(6,3)");
  ASSERT_NE(Prog, nullptr);

  ClosureOptions Exact = exactOpts();
  Exact.MaxSteps = 20000;
  ClosureOptions Widened = widenedOpts(2);
  Widened.MaxSteps = 20000;

  ClosureAnalysis ExactCA(*Prog, Exact);
  EXPECT_FALSE(ExactCA.run()) << "exact analysis should exceed the cap";

  ClosureAnalysis WidenedCA(*Prog, Widened);
  ASSERT_TRUE(WidenedCA.run()) << WidenedCA.error();
  EXPECT_GT(WidenedCA.stats().WidenedClosures, 0u);

  completion::AflStats ExactStats, WidenedStats;
  completion::aflCompletion(*Prog, &ExactStats, constraints::GenOptions(),
                            solver::SolveOptions(), Exact);
  completion::aflCompletion(*Prog, &WidenedStats, constraints::GenOptions(),
                            solver::SolveOptions(), Widened);
  EXPECT_FALSE(ExactStats.Solved);
  EXPECT_TRUE(WidenedStats.Solved);
  EXPECT_EQ(WidenedStats.Closure.WideningBound, 2u);
}

//===----------------------------------------------------------------------===//
// Differential precision harness: corpus + 500 random programs
//===----------------------------------------------------------------------===//

/// Runs the full pipeline (analysis + instrumented runs) exact and
/// widened at K; asserts soundness (same computed value; widened
/// residency within the conservative envelope) and accumulates the
/// precision cost as extra allocations / extra peak residency.
struct PrecisionDelta {
  size_t Programs = 0;
  size_t Regressed = 0;
  long long ExtraValueAllocs = 0;
  long long ExtraPeakValues = 0;
};

void sweepOne(const std::string &Source, const char *Label, unsigned K,
              PrecisionDelta &Agg) {
  driver::PipelineOptions ExactOpt, WideOpt;
  ExactOpt.ClosureOptions = exactOpts();
  WideOpt.ClosureOptions = widenedOpts(K);

  driver::PipelineResult Exact = driver::runPipeline(Source, ExactOpt);
  driver::PipelineResult Wide = driver::runPipeline(Source, WideOpt);
  ASSERT_TRUE(Exact.ok()) << Label << ": " << Exact.Diags.str();
  ASSERT_TRUE(Wide.ok()) << Label << ": " << Wide.Diags.str();
  ASSERT_TRUE(Exact.Afl.Ok && Wide.Afl.Ok) << Label;

  // Soundness: the widened completion still computes the same value...
  EXPECT_EQ(Exact.Afl.ResultText, Wide.Afl.ResultText) << Label;
  // ...and its memory behavior stays within the conservative envelope
  // (the paper's never-worse-than-T-T guarantee must survive widening).
  ASSERT_TRUE(Wide.Conservative.Ok) << Label;
  EXPECT_LE(Wide.Afl.S.MaxValues, Wide.Conservative.S.MaxValues) << Label;

  // Precision: count what the merge cost at runtime.
  long long DAllocs =
      static_cast<long long>(Wide.Afl.S.TotalValueAllocs) -
      static_cast<long long>(Exact.Afl.S.TotalValueAllocs);
  long long DPeak = static_cast<long long>(Wide.Afl.S.MaxValues) -
                    static_cast<long long>(Exact.Afl.S.MaxValues);
  ++Agg.Programs;
  if (DAllocs != 0 || DPeak != 0)
    ++Agg.Regressed;
  Agg.ExtraValueAllocs += DAllocs;
  Agg.ExtraPeakValues += DPeak;
}

TEST(ClosureWidening, PrecisionSweepCorpusAndRandom500) {
  const unsigned K = 2;
  PrecisionDelta Agg;

  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    sweepOne(P.Source, P.Name.c_str(), K, Agg);
    if (::testing::Test::HasFatalFailure())
      return;
  }
  sweepOne(programs::permSource(4, 3), "Perm(4,3)", K, Agg);

  for (unsigned Seed = 0; Seed != 500; ++Seed) {
    programs::RandomProgramOptions Options;
    Options.HigherOrder = Seed % 3 != 0;
    Options.Recursion = Seed % 4 != 0;
    Options.ClosureEscape = Seed % 5 == 0;
    Options.NestedHof = Seed % 7 == 0;
    std::string Source = programs::generateRandomProgram(Seed, Options);
    std::string Label = "seed " + std::to_string(Seed);
    sweepOne(Source, Label.c_str(), K, Agg);
    if (::testing::Test::HasFatalFailure())
      return;
  }

  // The harness is about *measuring* the loss, not forbidding it; what
  // must hold is that the sweep ran everything.
  EXPECT_EQ(Agg.Programs, 508u);
  ::testing::Test::RecordProperty("widening_k", static_cast<int>(K));
  ::testing::Test::RecordProperty("programs",
                                  static_cast<int>(Agg.Programs));
  ::testing::Test::RecordProperty("programs_with_delta",
                                  static_cast<int>(Agg.Regressed));
  ::testing::Test::RecordProperty("extra_value_allocs",
                                  static_cast<int>(Agg.ExtraValueAllocs));
  ::testing::Test::RecordProperty("extra_peak_values",
                                  static_cast<int>(Agg.ExtraPeakValues));
  std::printf("widening precision (K=%u): %zu programs, %zu with a "
              "delta, %+lld value allocs, %+lld peak values vs exact\n",
              K, Agg.Programs, Agg.Regressed, Agg.ExtraValueAllocs,
              Agg.ExtraPeakValues);
}

} // namespace
