// Unit tests for the extended closure analysis (Fig. 3): abstract region
// environments, colors, region aliasing, and closure propagation.

#include "ast/ASTContext.h"
#include "closure/ClosureAnalysis.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::closure;
using namespace afl::regions;

namespace {

struct Analyzed {
  std::unique_ptr<RegionProgram> Prog;
  std::unique_ptr<ClosureAnalysis> CA;
};

Analyzed analyze(const std::string &Source) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(T.Success) << Diags.str();
  Analyzed A;
  A.Prog = inferRegions(E, Ctx, T, Diags);
  EXPECT_NE(A.Prog, nullptr) << Diags.str();
  A.CA = std::make_unique<ClosureAnalysis>(*A.Prog);
  A.CA->run();
  return A;
}

TEST(RegEnvTable, InternDeduplicates) {
  RegEnvTable T;
  RegEnvId E1 = T.intern({{1, 0}, {2, 1}});
  RegEnvId E2 = T.intern({{1, 0}, {2, 1}});
  RegEnvId E3 = T.intern({{1, 0}, {2, 0}}); // aliased
  EXPECT_EQ(E1, E2);
  EXPECT_NE(E1, E3);
  EXPECT_EQ(T.colorOf(E1, 2), 1u);
  EXPECT_EQ(T.colorOf(E3, 2), 0u);
}

TEST(RegEnvTable, ExtendFreshPicksMinimalColor) {
  RegEnvTable T;
  RegEnvId E = T.intern({{1, 0}, {2, 2}});
  RegEnvId E2 = T.extendFresh(E, 5);
  EXPECT_EQ(T.colorOf(E2, 5), 1u); // 0 and 2 used; minimal free is 1
  RegEnvId E3 = T.extendFresh(E2, 6);
  EXPECT_EQ(T.colorOf(E3, 6), 3u);
}

TEST(RegEnvTable, RestrictKeepsSubset) {
  RegEnvTable T;
  RegEnvId E = T.intern({{1, 0}, {2, 1}, {3, 2}});
  RegEnvId R = T.restrict(E, {1, 3});
  EXPECT_EQ(T.get(R).size(), 2u);
  EXPECT_TRUE(T.maps(R, 1));
  EXPECT_FALSE(T.maps(R, 2));
}

TEST(ClosureAnalysis, DirectLambdaApplication) {
  Analyzed A = analyze("(fn x => x + 1) 2");
  // The application's function position must see exactly one closure.
  const RAppExpr *App = nullptr;
  for (const RExpr *N : A.Prog->nodes()) {
    if (const auto *AE = dyn_cast<RAppExpr>(N))
      App = AE;
  }
  ASSERT_NE(App, nullptr);
  const FlatSet<RegEnvId> &Ctxs = A.CA->contextsOf(App->fn()->id());
  ASSERT_EQ(Ctxs.size(), 1u);
  EXPECT_EQ(A.CA->valuesOf(App->fn()->id(), *Ctxs.begin()).size(), 1u);
}

TEST(ClosureAnalysis, FlowThroughLetAndIf) {
  Analyzed A = analyze("let f = if true then fn x => x + 1 else fn y => y "
                       "in f 3 end");
  const RAppExpr *App = nullptr;
  for (const RExpr *N : A.Prog->nodes()) {
    if (const auto *AE = dyn_cast<RAppExpr>(N))
      App = AE;
  }
  ASSERT_NE(App, nullptr);
  const FlatSet<RegEnvId> &Ctxs = A.CA->contextsOf(App->fn()->id());
  ASSERT_EQ(Ctxs.size(), 1u);
  // Both lambdas reach the call.
  EXPECT_EQ(A.CA->valuesOf(App->fn()->id(), *Ctxs.begin()).size(), 2u);
}

TEST(ClosureAnalysis, LetrecClosureCarriesFormalBindings) {
  Analyzed A = analyze("letrec f n = n + 1 in f 2 end");
  const RRegAppExpr *RA = nullptr;
  const RLetrecExpr *L = nullptr;
  for (const RExpr *N : A.Prog->nodes()) {
    if (const auto *R = dyn_cast<RRegAppExpr>(N))
      RA = R;
    if (const auto *LR = dyn_cast<RLetrecExpr>(N))
      L = LR;
  }
  ASSERT_NE(RA, nullptr);
  ASSERT_NE(L, nullptr);
  const FlatSet<RegEnvId> &Ctxs = A.CA->contextsOf(RA->id());
  ASSERT_FALSE(Ctxs.empty());
  const FlatSet<AbsClosureId> &Vals =
      A.CA->valuesOf(RA->id(), *Ctxs.begin());
  ASSERT_EQ(Vals.size(), 1u);
  const AbsClosure &Cl = A.CA->closure(*Vals.begin());
  EXPECT_EQ(Cl.Fun, L);
  // Every formal is mapped in the closure's environment.
  for (RegionVarId F : L->formals())
    EXPECT_TRUE(A.CA->envs().maps(Cl.Env, F));
}

TEST(ClosureAnalysis, AliasedActualsShareColor) {
  // Both components of the pair end up in the same region family when f
  // is called with its two region arguments aliased. Build a program
  // where one value is used for both "slots": f k = (k, k).
  Analyzed A = analyze("letrec f k = (k + 0, k + 0) in f 7 end");
  // Find a regapp and check: if two actuals are the same region variable,
  // their colors agree in the closure env (exact aliasing, §3).
  bool CheckedOne = false;
  for (const RExpr *N : A.Prog->nodes()) {
    const auto *RA = dyn_cast<RRegAppExpr>(N);
    if (!RA)
      continue;
    const FlatSet<RegEnvId> &Ctxs = A.CA->contextsOf(RA->id());
    if (Ctxs.empty())
      continue;
    const FlatSet<AbsClosureId> &Vals =
        A.CA->valuesOf(RA->id(), *Ctxs.begin());
    if (Vals.empty())
      continue;
    const AbsClosure &Cl = A.CA->closure(*Vals.begin());
    const auto *L = cast<RLetrecExpr>(Cl.Fun);
    for (size_t I = 0; I != RA->actuals().size(); ++I) {
      for (size_t J = I + 1; J != RA->actuals().size(); ++J) {
        if (RA->actuals()[I] == RA->actuals()[J]) {
          EXPECT_EQ(A.CA->envs().colorOf(Cl.Env, L->formals()[I]),
                    A.CA->envs().colorOf(Cl.Env, L->formals()[J]));
          CheckedOne = true;
        }
      }
    }
  }
  (void)CheckedOne; // aliasing may or may not arise; structure checked.
}

TEST(ClosureAnalysis, RecursiveFunctionTerminates) {
  Analyzed A = analyze(programs::fibSource(5));
  EXPECT_GE(A.CA->numContexts(), 10u);
  EXPECT_GE(A.CA->numClosures(), 1u);
}

TEST(ClosureAnalysis, PolymorphicRecursionBoundedContexts) {
  // Appel's g re-instantiates regions at every recursive call; contexts
  // must still be finite (colors are bounded by scope size).
  Analyzed A = analyze(programs::appelSource(6));
  EXPECT_LT(A.CA->numContexts(), 10000u);
}

TEST(ClosureAnalysis, ReportsConvergence) {
  Analyzed A = analyze(programs::fibSource(5));
  EXPECT_TRUE(A.CA->converged());
  EXPECT_TRUE(A.CA->error().empty());
  EXPECT_TRUE(A.CA->stats().Converged);
  EXPECT_GE(A.CA->stats().Passes, 1u);
  EXPECT_GT(A.CA->stats().ProcessedContexts, 0u);
}

// Satellite (ISSUE): the stabilization cap is a reported failure, not an
// assert. A tiny step budget must make run() return false with a
// diagnostic, in both fixpoint modes.
TEST(ClosureAnalysis, WorklistCapReportsFailure) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(programs::fibSource(5), Ctx, Diags);
  ASSERT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  ASSERT_TRUE(T.Success) << Diags.str();
  auto Prog = inferRegions(E, Ctx, T, Diags);
  ASSERT_NE(Prog, nullptr) << Diags.str();

  ClosureOptions Opts;
  Opts.UseWorklist = true;
  Opts.MaxSteps = 2; // far too few for any real program
  ClosureAnalysis CA(*Prog, Opts);
  EXPECT_FALSE(CA.run());
  EXPECT_FALSE(CA.converged());
  EXPECT_FALSE(CA.stats().Converged);
  EXPECT_NE(CA.error().find("failed to stabilize"), std::string::npos)
      << CA.error();
}

TEST(ClosureAnalysis, RestartCapReportsFailure) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(programs::fibSource(5), Ctx, Diags);
  ASSERT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  ASSERT_TRUE(T.Success) << Diags.str();
  auto Prog = inferRegions(E, Ctx, T, Diags);
  ASSERT_NE(Prog, nullptr) << Diags.str();

  ClosureOptions Opts;
  Opts.UseWorklist = false;
  Opts.MaxPasses = 1; // a recursive program needs more than one pass
  ClosureAnalysis CA(*Prog, Opts);
  EXPECT_FALSE(CA.run());
  EXPECT_FALSE(CA.converged());
  EXPECT_NE(CA.error().find("failed to stabilize"), std::string::npos)
      << CA.error();
}

TEST(ClosureAnalysis, UnknownContextIsEmptySet) {
  // Satellite (ISSUE): valuesOf on an unregistered (node, env) pair
  // returns a genuinely interned empty set, not a function-local static.
  Analyzed A = analyze("(fn x => x + 1) 2");
  RegEnvId Bogus = A.CA->envs().intern({{12345, 0}});
  const FlatSet<AbsClosureId> &V = A.CA->valuesOf(A.Prog->Root->id(), Bogus);
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(A.CA->ctxIndex(A.Prog->Root->id(), Bogus),
            ClosureAnalysis::NoCtx);
}

Analyzed analyzeWith(const std::string &Source, const ClosureOptions &Opts) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(T.Success) << Diags.str();
  Analyzed A;
  A.Prog = inferRegions(E, Ctx, T, Diags);
  EXPECT_NE(A.Prog, nullptr) << Diags.str();
  A.CA = std::make_unique<ClosureAnalysis>(*A.Prog, Opts);
  A.CA->run();
  return A;
}

// Tentpole (ISSUE): the parallel partition replay must actually execute
// its partitioned path (not just fall back to inline rounds) and report
// what it did in the stats.
TEST(ClosureAnalysis, ParallelPathRunsAndReportsStats) {
  ClosureOptions Opts;
  Opts.Jobs = 4;
  Opts.ParallelMinFrontier = 2; // partition even modest frontiers
  Analyzed A = analyzeWith(programs::quicksortSource(8), Opts);
  ASSERT_TRUE(A.CA->converged()) << A.CA->error();
  const ClosureStats &S = A.CA->stats();
  EXPECT_EQ(S.ThreadsUsed, 4u);
  EXPECT_GT(S.ParallelRounds, 0u);
  EXPECT_GT(S.Partitions, 0u);
  EXPECT_GE(S.LargestPartition, 1u);
  EXPECT_GE(S.ParallelSeconds, 0.0);
  EXPECT_GT(S.ProcessedContexts, 0u);
}

TEST(ClosureAnalysis, ParallelHighMinFrontierFallsBackInline) {
  // A frontier threshold larger than any real frontier degrades the
  // parallel engine to pure inline rounds — still converging to the
  // same result, with zero partitioned rounds reported.
  ClosureOptions Opts;
  Opts.Jobs = 4;
  Opts.ParallelMinFrontier = 1u << 20;
  Analyzed A = analyzeWith(programs::fibSource(5), Opts);
  ASSERT_TRUE(A.CA->converged()) << A.CA->error();
  EXPECT_EQ(A.CA->stats().ParallelRounds, 0u);
  EXPECT_GT(A.CA->stats().InlineRounds, 0u);

  ClosureOptions Seq;
  Seq.Jobs = 1;
  Analyzed B = analyzeWith(programs::fibSource(5), Seq);
  EXPECT_EQ(A.CA->numContexts(), B.CA->numContexts());
  EXPECT_EQ(A.CA->numClosures(), B.CA->numClosures());
}

TEST(ClosureAnalysis, ParallelCapReportsFailure) {
  ClosureOptions Opts;
  Opts.Jobs = 4;
  Opts.ParallelMinFrontier = 2;
  Opts.MaxSteps = 2; // far too few for any real program
  Analyzed A = analyzeWith(programs::fibSource(5), Opts);
  EXPECT_FALSE(A.CA->converged());
  EXPECT_FALSE(A.CA->stats().Converged);
  EXPECT_NE(A.CA->error().find("failed to stabilize"), std::string::npos)
      << A.CA->error();
}

TEST(ClosureAnalysis, ColorsBoundedByScopeSize) {
  Analyzed A = analyze(programs::quicksortSource(8));
  size_t MaxColors = 0;
  for (const RExpr *N : A.Prog->nodes()) {
    for (RegEnvId Env : A.CA->contextsOf(N->id()))
      MaxColors = std::max(MaxColors, A.CA->envs().get(Env).size());
  }
  // No abstract environment should explode beyond the number of region
  // variables in scope at any point (a small constant for this program).
  EXPECT_LT(MaxColors, 64u);
}

} // namespace
