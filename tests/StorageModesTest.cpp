// Tests for the storage-mode analysis ([Tof94], §6 orthogonality):
// enabling atbot resets must never change program results (soundness is
// checked dynamically — a bad reset surfaces as "read of a value
// destroyed by a region reset" or a wrong result), and can only lower
// residency.

#include "completion/Conservative.h"
#include "completion/StorageModes.h"
#include "driver/Pipeline.h"
#include "interp/Interp.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "programs/RandomProgram.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

struct ModeRun {
  interp::RunResult Plain;
  interp::RunResult WithModes;
  size_t NumAtBot = 0;
};

ModeRun runWithModes(const std::string &Source) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(T.Success) << Diags.str();
  auto Prog = regions::inferRegions(E, Ctx, T, Diags);
  EXPECT_NE(Prog, nullptr) << Diags.str();

  regions::Completion C = completion::conservativeCompletion(*Prog);
  completion::StorageModes Modes = completion::inferStorageModes(*Prog);

  ModeRun Out;
  Out.NumAtBot = Modes.numAtBot();
  Out.Plain = interp::run(*Prog, C);
  interp::RunOptions RO;
  RO.Modes = &Modes;
  Out.WithModes = interp::run(*Prog, C, RO);
  return Out;
}

TEST(StorageModes, SoundOnCorpus) {
  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    SCOPED_TRACE(P.Name);
    ModeRun R = runWithModes(P.Source);
    ASSERT_TRUE(R.Plain.Ok) << R.Plain.Error;
    ASSERT_TRUE(R.WithModes.Ok) << R.WithModes.Error;
    EXPECT_EQ(R.WithModes.ResultText, R.Plain.ResultText);
    EXPECT_LE(R.WithModes.S.MaxValues, R.Plain.S.MaxValues);
    // Value writes are identical; only resets differ.
    EXPECT_EQ(R.WithModes.S.TotalValueAllocs, R.Plain.S.TotalValueAllocs);
  }
}

class StorageModeProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(StorageModeProperty, ResetsNeverChangeResults) {
  std::string Source = programs::generateRandomProgram(GetParam());
  SCOPED_TRACE(Source);
  ModeRun R = runWithModes(Source);
  ASSERT_TRUE(R.Plain.Ok) << R.Plain.Error;
  ASSERT_TRUE(R.WithModes.Ok)
      << R.WithModes.Error << " (unsound reset?)";
  EXPECT_EQ(R.WithModes.ResultText, R.Plain.ResultText);
  EXPECT_LE(R.WithModes.S.MaxValues, R.Plain.S.MaxValues);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageModeProperty,
                         ::testing::Range(4000u, 4120u));

TEST(StorageModes, AnalysisFindsEligibleWrites) {
  // A dead value in a local region: the write of the *second* value may
  // be atbot-eligible only if it targets the same region — with
  // per-value fresh regions this is rare, which is itself the documented
  // finding (see EXPERIMENTS.md). The analysis must at least mark some
  // writes on programs with dead local values without breaking them.
  ModeRun R = runWithModes("let x = (1, 2) in let y = (3, 4) in fst y end "
                           "end");
  ASSERT_TRUE(R.WithModes.Ok) << R.WithModes.Error;
  EXPECT_EQ(R.WithModes.ResultText, "3");
}

TEST(StorageModes, NoResetOfLiveContents) {
  // The list's spine region receives one write per cell while all
  // previous cells stay live through tail pointers: no reset may fire.
  ModeRun R = runWithModes(
      "letrec sum l = if null l then 0 else hd l + sum (tl l) in "
      "sum (1 :: 2 :: 3 :: nil) end");
  ASSERT_TRUE(R.WithModes.Ok) << R.WithModes.Error;
  EXPECT_EQ(R.WithModes.ResultText, "6");
  EXPECT_EQ(R.WithModes.S.Resets, 0u);
}

} // namespace
