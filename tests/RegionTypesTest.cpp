// Unit tests for region types, effects, and the union-find machinery.

#include "regions/RegionTypes.h"
#include "types/Type.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::regions;

namespace {

TEST(RegionVars, UnifyKeepsSmallestRepresentative) {
  RTypeTable T;
  RegionVarId A = T.freshRegion();
  RegionVarId B = T.freshRegion();
  RegionVarId C = T.freshRegion();
  T.unifyRegions(B, C);
  EXPECT_EQ(T.findRegion(C), B);
  T.unifyRegions(C, A);
  EXPECT_EQ(T.findRegion(A), A);
  EXPECT_EQ(T.findRegion(B), A);
  EXPECT_EQ(T.findRegion(C), A);
}

TEST(EffectVars, UnifyMergesLatentSets) {
  RTypeTable T;
  EffectVarId E1 = T.freshEffectVar();
  EffectVarId E2 = T.freshEffectVar();
  RegionVarId R1 = T.freshRegion();
  RegionVarId R2 = T.freshRegion();
  EffectSet S1, S2;
  S1.Regions.insert(R1);
  S2.Regions.insert(R2);
  T.addToEffectVar(E1, S1);
  T.addToEffectVar(E2, S2);
  T.unifyEffectVars(E1, E2);
  EXPECT_EQ(T.findEffectVar(E1), T.findEffectVar(E2));
  const EffectSet &L = T.latentOf(E1);
  EXPECT_TRUE(L.Regions.count(R1));
  EXPECT_TRUE(L.Regions.count(R2));
}

TEST(EffectSets, TransitiveRegionResolution) {
  RTypeTable T;
  EffectVarId E1 = T.freshEffectVar();
  EffectVarId E2 = T.freshEffectVar();
  RegionVarId R = T.freshRegion();
  EffectSet Inner;
  Inner.Regions.insert(R);
  T.addToEffectVar(E2, Inner);
  EffectSet Outer;
  Outer.EffectVars.insert(E2);
  T.addToEffectVar(E1, Outer);

  EffectSet Probe;
  Probe.EffectVars.insert(E1);
  std::set<RegionVarId> Rs = T.regionsOf(Probe);
  EXPECT_EQ(Rs.size(), 1u);
  EXPECT_TRUE(Rs.count(R));
}

TEST(EffectSets, CyclicEffectVarsTerminate) {
  RTypeTable T;
  EffectVarId E1 = T.freshEffectVar();
  EffectVarId E2 = T.freshEffectVar();
  RegionVarId R = T.freshRegion();
  EffectSet S1, S2;
  S1.EffectVars.insert(E2);
  S2.EffectVars.insert(E1);
  S2.Regions.insert(R);
  T.addToEffectVar(E1, S1);
  T.addToEffectVar(E2, S2);
  EffectSet Probe;
  Probe.EffectVars.insert(E1);
  std::set<RegionVarId> Rs = T.regionsOf(Probe);
  EXPECT_TRUE(Rs.count(R));
}

TEST(RegionTypes, FreshFromTypeDecoratesEverything) {
  types::TypeTable ML;
  types::TypeId Arrow =
      ML.arrow(ML.intType(), ML.pair(ML.boolType(), ML.list(ML.intType())));
  RTypeTable T;
  RTypeId Mu = T.freshFromType(ML, Arrow);
  EXPECT_EQ(T.kind(Mu), RTypeKind::Arrow);
  std::set<RegionVarId> Frv;
  T.freeRegionVars(Mu, Frv);
  // arrow box, int param, pair box, bool, list spine, list elem = 6.
  EXPECT_EQ(Frv.size(), 6u);
}

TEST(RegionTypes, UnifyMergesRegionsAndEffects) {
  types::TypeTable ML;
  types::TypeId ArrowTy = ML.arrow(ML.intType(), ML.intType());
  RTypeTable T;
  RTypeId A = T.freshFromType(ML, ArrowTy);
  RTypeId B = T.freshFromType(ML, ArrowTy);
  EffectSet S;
  S.Regions.insert(T.regionOf(T.child0(A)));
  T.addToEffectVar(T.arrowEffect(A), S);

  T.unify(A, B);
  EXPECT_EQ(T.regionOf(A), T.regionOf(B));
  EXPECT_EQ(T.arrowEffect(A), T.arrowEffect(B));
  EXPECT_EQ(T.regionOf(T.child0(A)), T.regionOf(T.child0(B)));
  // B's arrow effect now sees A's latent region.
  EffectSet Probe;
  Probe.EffectVars.insert(T.arrowEffect(B));
  EXPECT_TRUE(T.regionsOf(Probe).count(T.regionOf(T.child0(A))));
}

TEST(RegionTypes, InstantiateSubstitutesQuantifiedOnly) {
  types::TypeTable ML;
  types::TypeId ArrowTy = ML.arrow(ML.intType(), ML.intType());
  RTypeTable T;
  RTypeId Scheme = T.freshFromType(ML, ArrowTy);
  RegionVarId ParamR = T.regionOf(T.child0(Scheme));
  RegionVarId ResultR = T.regionOf(T.child1(Scheme));

  RSubst Subst;
  RegionVarId FreshParam = T.freshRegion();
  Subst.Regions.push_back({ParamR, FreshParam});
  // Result region left unquantified: shared between scheme and instance.
  RTypeId Inst = T.instantiate(Scheme, Subst);
  EXPECT_EQ(T.regionOf(T.child0(Inst)), FreshParam);
  EXPECT_EQ(T.regionOf(T.child1(Inst)), ResultR);
  // The original scheme is untouched.
  EXPECT_EQ(T.regionOf(T.child0(Scheme)), ParamR);
}

TEST(RegionTypes, InstantiateMapsLatentEffects) {
  types::TypeTable ML;
  types::TypeId ArrowTy = ML.arrow(ML.intType(), ML.intType());
  RTypeTable T;
  RTypeId Scheme = T.freshFromType(ML, ArrowTy);
  RegionVarId ParamR = T.regionOf(T.child0(Scheme));
  EffectSet Latent;
  Latent.Regions.insert(ParamR);
  T.addToEffectVar(T.arrowEffect(Scheme), Latent);

  RSubst Subst;
  RegionVarId FreshParam = T.freshRegion();
  EffectVarId FreshEps = T.freshEffectVar();
  Subst.Regions.push_back({ParamR, FreshParam});
  Subst.Effects.push_back({T.arrowEffect(Scheme), FreshEps});
  RTypeId Inst = T.instantiate(Scheme, Subst);

  EffectSet Probe;
  Probe.EffectVars.insert(T.arrowEffect(Inst));
  std::set<RegionVarId> Rs = T.regionsOf(Probe);
  EXPECT_TRUE(Rs.count(FreshParam));
  EXPECT_FALSE(Rs.count(ParamR));
}

TEST(RegionTypes, StrRendersShape) {
  types::TypeTable ML;
  RTypeTable T;
  RTypeId Mu = T.freshFromType(ML, ML.list(ML.intType()));
  std::string S = T.str(Mu);
  EXPECT_NE(S.find("list"), std::string::npos);
  EXPECT_NE(S.find("@r"), std::string::npos);
}

} // namespace
