// End-to-end smoke tests: parse → type → region-infer → conservative
// completion → instrumented run, differentially checked against the
// region-oblivious reference interpreter.

#include "ast/ASTContext.h"
#include "completion/Conservative.h"
#include "interp/Interp.h"
#include "interp/RefInterp.h"
#include "parser/Parser.h"
#include "regions/RegionInference.h"
#include "regions/RegionPrinter.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

/// Runs the full conservative pipeline on \p Source and returns the
/// rendered result, checking it against the reference interpreter.
std::string runConservative(const std::string &Source) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *Root = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(Root, nullptr) << Diags.str();
  if (!Root)
    return "<parse error>";

  types::TypedProgram Typed = types::inferTypes(Root, Ctx, Diags);
  EXPECT_TRUE(Typed.Success) << Diags.str();
  if (!Typed.Success)
    return "<type error>";

  std::unique_ptr<regions::RegionProgram> Prog =
      regions::inferRegions(Root, Ctx, Typed, Diags);
  EXPECT_NE(Prog, nullptr) << Diags.str();
  if (!Prog)
    return "<region error>";

  regions::Completion C = completion::conservativeCompletion(*Prog);
  interp::RunResult R = interp::run(*Prog, C);
  EXPECT_TRUE(R.Ok) << R.Error << "\n"
                    << regions::printRegionProgram(*Prog, &C);
  if (!R.Ok)
    return "<runtime error>";

  interp::RefResult Ref = interp::runRef(Root, Ctx);
  EXPECT_TRUE(Ref.Ok) << Ref.Error;
  EXPECT_EQ(R.ResultText, Ref.ResultText);
  return R.ResultText;
}

TEST(PipelineSmoke, IntLiteral) { EXPECT_EQ(runConservative("42"), "42"); }

TEST(PipelineSmoke, Arith) {
  EXPECT_EQ(runConservative("1 + 2 * 3 - 4"), "3");
}

TEST(PipelineSmoke, LetAndPair) {
  EXPECT_EQ(runConservative("let x = (2, 3) in (fst x) + (snd x) end"), "5");
}

TEST(PipelineSmoke, PaperExample11) {
  // Example 1.1 from the paper: (let z = (2,3) in fn y => (fst z, y) end) 5
  EXPECT_EQ(runConservative("(let z = (2, 3) in fn y => (fst z, y) end) 5"),
            "(2, 5)");
}

TEST(PipelineSmoke, IfAndCompare) {
  EXPECT_EQ(runConservative("if 2 < 3 then 10 else 20"), "10");
}

TEST(PipelineSmoke, Lists) {
  EXPECT_EQ(runConservative("1 :: 2 :: 3 :: nil"), "[1, 2, 3]");
  EXPECT_EQ(runConservative("hd (tl (1 :: 2 :: 3 :: nil))"), "2");
  EXPECT_EQ(runConservative("null nil"), "true");
  EXPECT_EQ(runConservative("null (1 :: nil)"), "false");
}

TEST(PipelineSmoke, HigherOrder) {
  EXPECT_EQ(runConservative(
                "let twice = fn f => fn x => f (f x) in twice (fn n => n + 1) "
                "5 end"),
            "7");
}

TEST(PipelineSmoke, LetrecFactorial) {
  EXPECT_EQ(runConservative("letrec fac n = if n = 0 then 1 else n * fac (n "
                            "- 1) in fac 10 end"),
            "3628800");
}

TEST(PipelineSmoke, LetrecFib) {
  EXPECT_EQ(runConservative("letrec fib n = if n < 2 then n else fib (n - 1) "
                            "+ fib (n - 2) in fib 10 end"),
            "55");
}

TEST(PipelineSmoke, LetrecList) {
  EXPECT_EQ(runConservative("letrec fromto n = if n = 0 then nil else n :: "
                            "fromto (n - 1) in fromto 5 end"),
            "[5, 4, 3, 2, 1]");
}

TEST(PipelineSmoke, PaperExample21Shape) {
  // Example 2.1 shape: region-polymorphic f used at two different types of
  // region instantiation.
  EXPECT_EQ(runConservative("let i = 1 in let j = 2 in letrec f k = k + 1 in "
                            "(f i) + (f j) end end end"),
            "5");
}

TEST(PipelineSmoke, NestedLetrec) {
  EXPECT_EQ(runConservative(
                "letrec sum l = if null l then 0 else (hd l) + sum (tl l) in "
                "letrec fromto n = if n = 0 then nil else n :: fromto (n - 1) "
                "in sum (fromto 10) end end"),
            "55");
}

TEST(PipelineSmoke, ClosureCapture) {
  EXPECT_EQ(runConservative("let make = fn a => fn b => a * 10 + b in let f "
                            "= make 3 in (f 1) + (f 2) end end"),
            "63");
}

TEST(PipelineSmoke, ShadowingAndUnit) {
  EXPECT_EQ(runConservative("let x = 1 in let x = x + 1 in x end end"), "2");
  EXPECT_EQ(runConservative("let u = () in 7 end"), "7");
}

} // namespace
