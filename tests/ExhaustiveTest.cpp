// Systematic enumeration of small programs: every combinator shape
// crossed with every small sub-expression, plus dedicated aliasing
// matrices. Complements random fuzzing with exhaustive coverage of the
// corner cases (dead values, branch-local regions, aliased actuals,
// immediately-applied closures, shadowing).

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

/// Runs the pipeline and checks the full property set.
void checkAll(const std::string &Source) {
  SCOPED_TRACE(Source);
  driver::PipelineResult R = driver::runPipeline(Source);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText);
  EXPECT_EQ(R.Conservative.ResultText, R.Reference.ResultText);
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
  EXPECT_EQ(R.Afl.S.TotalValueAllocs, R.Conservative.S.TotalValueAllocs);
  EXPECT_TRUE(R.Analysis.Solved);
}

// Small "atoms" to plug into combinator shapes.
const char *IntAtoms[] = {"0", "7", "(1 + 2)", "(fst (3, 4))",
                          "(hd (5 :: nil))", "((fn z => z + 1) 8)"};
const char *ListAtoms[] = {"nil", "(1 :: nil)", "(1 :: 2 :: nil)",
                           "(tl (9 :: nil))"};

class IntAtomShape : public ::testing::TestWithParam<int> {};

TEST_P(IntAtomShape, AllShapes) {
  const char *A = IntAtoms[GetParam() % 6];
  const char *B = IntAtoms[(GetParam() / 6) % 6];
  std::string SA = A, SB = B;
  // Cross two atoms through each binary shape.
  checkAll(SA + " + " + SB);
  checkAll("(" + SA + ", " + SB + ")");
  checkAll("if " + SA + " < " + SB + " then " + SA + " else " + SB);
  checkAll("let v = " + SA + " in v + " + SB + " end");
  checkAll("(fn v => v + " + SB + ") " + SA);
  checkAll(SA + " :: " + SB + " :: nil");
}

INSTANTIATE_TEST_SUITE_P(Pairs, IntAtomShape, ::testing::Range(0, 36));

class ListAtomShape : public ::testing::TestWithParam<int> {};

TEST_P(ListAtomShape, AllShapes) {
  const char *L = ListAtoms[GetParam() % 4];
  const char *A = IntAtoms[(GetParam() / 4) % 6];
  std::string SL = L, SA = A;
  checkAll("null " + SL);
  checkAll("if null " + SL + " then " + SA + " else hd " + SL);
  checkAll(SA + " :: " + SL);
  checkAll("let l = " + SL + " in if null l then nil else tl l end");
  checkAll("letrec len l = if null l then 0 else 1 + len (tl l) in len " +
           SL + " end");
}

INSTANTIATE_TEST_SUITE_P(Cross, ListAtomShape, ::testing::Range(0, 24));

TEST(Exhaustive, AliasingMatrix) {
  // A pair-taking recursive function called with every combination of
  // shared/distinct components: aliased actuals must produce sound
  // completions in all mixes (the §3 region-aliasing requirement).
  const char *Args[] = {"(a, a)", "(a, b)", "(b, a)", "(b, b)"};
  for (const char *Arg1 : Args) {
    for (const char *Arg2 : Args) {
      checkAll(std::string("let a = 1 in let b = 2 in "
                           "letrec f p = if fst p <= 0 then snd p + 0 "
                           "else f (fst p - 1, snd p) in "
                           "(f ") +
               Arg1 + ") + (f " + Arg2 + ") end end end");
    }
  }
}

TEST(Exhaustive, DeadValueMatrix) {
  // Values that are never used in every position: their regions must be
  // freed (A-F-L) without disturbing the live computation.
  checkAll("let dead = (1, 2) in 5 end");
  checkAll("let dead = fn x => x in 5 end");
  checkAll("let dead = 1 :: 2 :: nil in 5 end");
  checkAll("let dead = (fn x => x) 3 in 5 end");
  checkAll("if true then 1 else hd nil");       // dead partial branch
  checkAll("let d1 = 1 in let d2 = (d1, d1) in d1 end end");
  checkAll("(fn u => 9) ((1, 2))"); // argument value never used
}

TEST(Exhaustive, ShadowingMatrix) {
  checkAll("let x = 1 in let x = x + 1 in let x = x * 2 in x end end end");
  checkAll("let x = 1 in (fn x => x + 1) x end");
  checkAll("letrec f x = if x = 0 then 0 else let x = x - 1 in f x end "
           "in f 3 end");
}

TEST(Exhaustive, CurriedChains) {
  checkAll("(fn a => fn b => fn c => a + b * c) 1 2 3");
  checkAll("let add = fn a => fn b => a + b in add 1 (add 2 3) end");
  checkAll("let twice = fn f => fn x => f (f x) in twice (twice (fn n => "
           "n + 1)) 0 end");
}

TEST(Exhaustive, RecursionShapes) {
  // Non-tail, tail, tree, and list recursion.
  checkAll("letrec f n = if n = 0 then 0 else n + f (n - 1) in f 6 end");
  checkAll("letrec f p = if fst p = 0 then snd p else f (fst p - 1, snd p "
           "+ fst p) in f (6, 0) end");
  checkAll("letrec t n = if n < 2 then 1 else t (n - 1) + t (n - 2) in t "
           "7 end");
  checkAll("letrec r n = if n = 0 then nil else n :: r (n - 1) in letrec "
           "s l = if null l then 0 else hd l + s (tl l) in s (r 6) end "
           "end");
}

TEST(Exhaustive, FunctionsReturningFunctions) {
  checkAll("let mk = fn a => fn b => a - b in let f = mk 10 in f 3 + f 4 "
           "end end");
  checkAll("letrec mk n = fn x => x + n in (mk 1) 10 + (mk 2) 20 end");
}

} // namespace
