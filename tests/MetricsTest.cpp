// Unit tests for the observability primitives (support/Metrics.h):
// stopwatch monotonicity, counter/timer aggregation, scope nesting,
// merging, and the JSON serializer (stable order, escaping).

#include "support/Metrics.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

TEST(Stopwatch, Monotonic) {
  Stopwatch W;
  double Last = W.seconds();
  EXPECT_GE(Last, 0.0);
  for (int I = 0; I != 100; ++I) {
    double Now = W.seconds();
    EXPECT_GE(Now, Last);
    Last = Now;
  }
  uint64_t Ns1 = W.nanoseconds();
  uint64_t Ns2 = W.nanoseconds();
  EXPECT_GE(Ns2, Ns1);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch W;
  // Burn a little time so the pre-reset reading is strictly positive.
  volatile unsigned Sink = 0;
  for (unsigned I = 0; I != 100000; ++I)
    Sink = Sink + I;
  double Before = W.seconds();
  EXPECT_GT(Before, 0.0);
  W.reset();
  EXPECT_LT(W.seconds(), Before);
}

TEST(PeakRss, ReadableAndPlausibleOnLinux) {
  // On Linux /proc/self/status always has a VmHWM line; a gtest binary
  // holds at least a megabyte resident. Elsewhere the helper's 0
  // fallback applies (vacuously fine here).
  uint64_t Kb = readPeakRssKb();
#ifdef __linux__
  EXPECT_GT(Kb, 1024u);
  // Monotone non-decreasing: it is a high-water mark.
  std::vector<char> Ballast(8 * 1024 * 1024, 1);
  EXPECT_GE(readPeakRssKb(), Kb) << (unsigned)Ballast[42];
#else
  (void)Kb;
#endif
}

TEST(Metrics, CountersAccumulate) {
  MetricsRegistry Reg;
  Reg.add("widgets", 2);
  Reg.add("widgets", 3);
  Reg.set("gadgets", 7);
  Reg.set("gadgets", 4); // set overwrites
  EXPECT_EQ(Reg.counter("widgets"), 5u);
  EXPECT_EQ(Reg.counter("gadgets"), 4u);
  EXPECT_EQ(Reg.counter("absent"), 0u);
}

TEST(Metrics, TimersAccumulate) {
  MetricsRegistry Reg;
  Reg.addTime("solve_seconds", 0.25);
  Reg.addTime("solve_seconds", 0.50);
  EXPECT_DOUBLE_EQ(Reg.timer("solve_seconds"), 0.75);
  EXPECT_DOUBLE_EQ(Reg.timer("absent"), 0.0);
}

TEST(Metrics, ScopesNest) {
  MetricsRegistry Reg;
  Reg.push("pipeline");
  Reg.add("runs", 1);
  Reg.push("solve");
  Reg.add("propagations", 42);
  Reg.pop();
  Reg.pop();
  EXPECT_EQ(Reg.counter("pipeline/runs"), 1u);
  EXPECT_EQ(Reg.counter("pipeline/solve/propagations"), 42u);
  EXPECT_TRUE(Reg.has("pipeline/solve"));
  EXPECT_FALSE(Reg.has("pipeline/parse"));
  // Re-entering an existing scope appends to it.
  Reg.push("pipeline");
  Reg.add("runs", 1);
  Reg.pop();
  EXPECT_EQ(Reg.counter("pipeline/runs"), 2u);
}

TEST(Metrics, PopAtRootIsNoop) {
  MetricsRegistry Reg;
  Reg.pop();
  Reg.pop();
  Reg.add("x", 1);
  EXPECT_EQ(Reg.counter("x"), 1u);
}

TEST(Metrics, ScopedHelpers) {
  MetricsRegistry Reg;
  {
    MetricScope S(Reg, "outer");
    ScopedTimer T(Reg, "wall_seconds");
    Reg.add("count", 1);
  }
  EXPECT_EQ(Reg.counter("outer/count"), 1u);
  EXPECT_GT(Reg.timer("outer/wall_seconds"), 0.0);
}

TEST(Metrics, MergeSumsPointwise) {
  MetricsRegistry A;
  A.push("stage");
  A.add("items", 3);
  A.addTime("wall_seconds", 1.0);
  A.pop();
  A.add("files", 1);

  MetricsRegistry B;
  B.push("stage");
  B.add("items", 4);
  B.addTime("wall_seconds", 0.5);
  B.pop();
  B.add("files", 1);
  B.add("only_in_b", 9);

  A.merge(B);
  EXPECT_EQ(A.counter("stage/items"), 7u);
  EXPECT_DOUBLE_EQ(A.timer("stage/wall_seconds"), 1.5);
  EXPECT_EQ(A.counter("files"), 2u);
  EXPECT_EQ(A.counter("only_in_b"), 9u);
}

TEST(Metrics, JsonShapeAndOrder) {
  MetricsRegistry Reg;
  Reg.set("version", 1);
  Reg.push("stages");
  Reg.push("parse");
  Reg.addTime("wall_seconds", 0.5);
  Reg.pop();
  Reg.push("solve");
  Reg.set("propagations", 12);
  Reg.pop();
  Reg.pop();
  // Compact rendering is fully deterministic: insertion order, integers
  // for counters, a fractional part for timers.
  EXPECT_EQ(Reg.json(/*Pretty=*/false),
            "{\"version\":1,\"stages\":{\"parse\":{\"wall_seconds\":"
            "0.500000000},\"solve\":{\"propagations\":12}}}");
  // Pretty rendering holds the same tokens.
  std::string Pretty = Reg.json();
  EXPECT_NE(Pretty.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(Pretty.find("\"wall_seconds\": 0.500000000"),
            std::string::npos);
}

TEST(Metrics, TextLeaves) {
  MetricsRegistry Reg;
  Reg.push("programs");
  Reg.push("bad.afl");
  Reg.setText("error", "cannot open 'bad.afl'\nline \"two\"");
  Reg.pop();
  Reg.pop();
  EXPECT_EQ(Reg.text("programs/bad.afl/error"),
            "cannot open 'bad.afl'\nline \"two\"");
  EXPECT_EQ(Reg.text("programs/bad.afl/missing"), "");
  // JSON renders the value as an escaped string.
  EXPECT_EQ(Reg.json(/*Pretty=*/false),
            "{\"programs\":{\"bad.afl\":{\"error\":\"cannot open "
            "'bad.afl'\\nline \\\"two\\\"\"}}}");
  // setText overwrites (no accumulation semantics).
  Reg.push("programs");
  Reg.push("bad.afl");
  Reg.setText("error", "later");
  Reg.pop();
  Reg.pop();
  EXPECT_EQ(Reg.text("programs/bad.afl/error"), "later");
}

TEST(Metrics, MergeKeepsFirstNonEmptyText) {
  MetricsRegistry A;
  A.setText("note", "");
  MetricsRegistry B;
  B.setText("note", "from b");
  B.setText("only_b", "kept");
  A.merge(B);
  EXPECT_EQ(A.text("note"), "from b");
  EXPECT_EQ(A.text("only_b"), "kept");

  MetricsRegistry C;
  C.setText("note", "from c");
  A.merge(C);
  EXPECT_EQ(A.text("note"), "from b") << "first non-empty value wins";
}

TEST(Metrics, JsonEmptyRegistry) {
  MetricsRegistry Reg;
  EXPECT_EQ(Reg.json(/*Pretty=*/false), "{}");
}

TEST(Metrics, JsonEscaping) {
  EXPECT_EQ(MetricsRegistry::escapeJson("plain"), "plain");
  EXPECT_EQ(MetricsRegistry::escapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(MetricsRegistry::escapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(MetricsRegistry::escapeJson("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(MetricsRegistry::escapeJson(std::string("\x01", 1)), "\\u0001");

  // Names needing escapes survive the serializer (e.g. batch files with
  // odd characters).
  MetricsRegistry Reg;
  Reg.set("weird \"name\"\n", 3);
  EXPECT_EQ(Reg.json(/*Pretty=*/false),
            "{\"weird \\\"name\\\"\\n\":3}");
}

/// Minimal structural JSON check: quotes balanced outside strings,
/// braces balanced, no trailing commas. Guards the serializer against
/// regressions without a JSON parser dependency.
bool looksLikeValidJson(const std::string &S) {
  int Depth = 0;
  bool InString = false, Escaped = false, PrevComma = false;
  for (char C : S) {
    if (InString) {
      if (Escaped)
        Escaped = false;
      else if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Depth;
    else if (C == '}') {
      if (PrevComma || --Depth < 0)
        return false;
    }
    if (!isspace(static_cast<unsigned char>(C)))
      PrevComma = C == ',';
  }
  return Depth == 0 && !InString;
}

TEST(Metrics, JsonStructurallyValid) {
  MetricsRegistry Reg;
  for (int I = 0; I != 5; ++I) {
    Reg.push("scope" + std::to_string(I));
    Reg.add("n", static_cast<uint64_t>(I));
    Reg.addTime("t", 0.1 * I);
  }
  for (int I = 0; I != 5; ++I)
    Reg.pop();
  EXPECT_TRUE(looksLikeValidJson(Reg.json()));
  EXPECT_TRUE(looksLikeValidJson(Reg.json(/*Pretty=*/false)));
}

} // namespace
