// Paper-fidelity tests: the specific claims the paper makes about its
// running examples, checked structurally on our analyses' output.

#include "ast/ASTContext.h"
#include "completion/AflCompletion.h"
#include "driver/Pipeline.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::regions;

namespace {

std::unique_ptr<RegionProgram> infer(const std::string &Source) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(T.Success) << Diags.str();
  auto P = inferRegions(E, Ctx, T, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

/// Finds the (single) letrec in \p P.
const RLetrecExpr *findLetrec(const RegionProgram &P) {
  const RLetrecExpr *L = nullptr;
  for (const RExpr *N : P.nodes()) {
    if (const auto *LR = dyn_cast<RLetrecExpr>(N))
      L = LR;
  }
  return L;
}

/// Does any node in \p Root's subtree carry a free (free_after/free_app)
/// of region \p R in completion \p C?
bool subtreeFrees(const Completion &C, const RExpr *Root, RegionVarId R) {
  std::vector<const RExpr *> Work{Root};
  while (!Work.empty()) {
    const RExpr *N = Work.back();
    Work.pop_back();
    for (const auto *Ops : {C.postOps(N->id()), C.freeAppOps(N->id()),
                            C.preOps(N->id())}) {
      if (Ops) {
        for (const COp &Op : *Ops)
          if (Op.Region == R && Op.Kind != COpKind::AllocBefore &&
              Op.Kind != COpKind::AllocAfter)
            return true;
      }
    }
    switch (N->kind()) {
    case RExpr::Kind::Lambda:
      Work.push_back(cast<RLambdaExpr>(N)->body());
      break;
    case RExpr::Kind::App:
      Work.push_back(cast<RAppExpr>(N)->fn());
      Work.push_back(cast<RAppExpr>(N)->arg());
      break;
    case RExpr::Kind::Let:
      Work.push_back(cast<RLetExpr>(N)->init());
      Work.push_back(cast<RLetExpr>(N)->body());
      break;
    case RExpr::Kind::Letrec:
      Work.push_back(cast<RLetrecExpr>(N)->fnBody());
      Work.push_back(cast<RLetrecExpr>(N)->body());
      break;
    case RExpr::Kind::If:
      Work.push_back(cast<RIfExpr>(N)->cond());
      Work.push_back(cast<RIfExpr>(N)->thenExpr());
      Work.push_back(cast<RIfExpr>(N)->elseExpr());
      break;
    case RExpr::Kind::Pair:
      Work.push_back(cast<RPairExpr>(N)->first());
      Work.push_back(cast<RPairExpr>(N)->second());
      break;
    case RExpr::Kind::Cons:
      Work.push_back(cast<RConsExpr>(N)->head());
      Work.push_back(cast<RConsExpr>(N)->tail());
      break;
    case RExpr::Kind::UnOp:
      Work.push_back(cast<RUnOpExpr>(N)->operand());
      break;
    case RExpr::Kind::BinOp:
      Work.push_back(cast<RBinOpExpr>(N)->lhs());
      Work.push_back(cast<RBinOpExpr>(N)->rhs());
      break;
    default:
      break;
    }
  }
  return false;
}

TEST(PaperExamples, Example21ParamFreedInsideBody) {
  // §3: "within the body of f, the + operation is always the last use of
  // the value k in p5. Thus it is safe to deallocate the region bound to
  // p5 inside the body of f after the sum" — the A-F-L completion must
  // free the parameter's region formal somewhere inside f's body.
  auto P = infer(programs::example21Source());
  completion::AflStats Stats;
  Completion C = completion::aflCompletion(*P, &Stats);
  ASSERT_TRUE(Stats.Solved);

  const RLetrecExpr *F = findLetrec(*P);
  ASSERT_NE(F, nullptr);
  // The parameter region is the region of the param variable's type.
  RegionVarId ParamRegion =
      P->Types.regionOf(P->varInfo(F->param()).Type);
  ASSERT_FALSE(F->formals().empty());
  EXPECT_TRUE(subtreeFrees(C, F->fnBody(), ParamRegion))
      << "f's parameter region should be freed inside f's body";
}

TEST(PaperExamples, Example21PolymorphicUses) {
  // §2: "Region polymorphism allows the function f to take arguments and
  // return results in different regions in different contexts" — the two
  // calls f i and f j must instantiate different actual regions.
  auto P = infer(programs::example21Source());
  std::vector<const RRegAppExpr *> Apps;
  for (const RExpr *N : P->nodes()) {
    if (const auto *RA = dyn_cast<RRegAppExpr>(N))
      Apps.push_back(RA);
  }
  ASSERT_EQ(Apps.size(), 2u);
  EXPECT_NE(Apps[0]->actuals(), Apps[1]->actuals());
}

TEST(PaperExamples, Example11PairAllocatedAfterFirstComponent) {
  // §1: "space for a pair ideally is allocated only after both components
  // of the pair have been evaluated" — the z-pair's region must NOT be
  // allocated at its letregion; its alloc sits on a node inside the pair
  // expression.
  auto P = infer(programs::example11Source());
  completion::AflStats Stats;
  Completion C = completion::aflCompletion(*P, &Stats);
  ASSERT_TRUE(Stats.Solved);

  // z's pair: the RPairExpr that is a let-init.
  const RPairExpr *ZPair = nullptr;
  for (const RExpr *N : P->nodes()) {
    if (const auto *L = dyn_cast<RLetExpr>(N)) {
      if (const auto *Pr = dyn_cast<RPairExpr>(L->init()))
        ZPair = Pr;
    }
  }
  ASSERT_NE(ZPair, nullptr);
  RegionVarId PairRegion = ZPair->writeRegion();

  // Collect where PairRegion is allocated: it must be within the pair's
  // own subtree (after the first component), not at the letregion node.
  bool AllocInsidePair = false;
  std::vector<const RExpr *> Work{ZPair->first(), ZPair->second()};
  while (!Work.empty()) {
    const RExpr *N = Work.back();
    Work.pop_back();
    if (const auto *Ops = C.preOps(N->id())) {
      for (const COp &Op : *Ops)
        AllocInsidePair |= Op.Kind == COpKind::AllocBefore &&
                           Op.Region == PairRegion;
    }
    if (const auto *B = dyn_cast<RBinOpExpr>(N)) {
      Work.push_back(B->lhs());
      Work.push_back(B->rhs());
    }
  }
  EXPECT_TRUE(AllocInsidePair)
      << "the pair's region should be allocated late, inside the pair";
}

TEST(PaperExamples, BranchLocalRegions) {
  // A region mentioned in only one branch of an if must be letregion-
  // bound inside that branch (finer than T-T's placement).
  auto P = infer("if true then fst (1, 2) else 3");
  const RIfExpr *If = dyn_cast<RIfExpr>(P->Root);
  ASSERT_NE(If, nullptr);
  // The then-branch mentions the pair's region; the else branch must not
  // bind or mention it. Count regions bound inside each branch subtree.
  auto CountBound = [&](const RExpr *N) {
    unsigned Total = 0;
    std::vector<const RExpr *> Work{N};
    while (!Work.empty()) {
      const RExpr *Cur = Work.back();
      Work.pop_back();
      Total += static_cast<unsigned>(Cur->boundRegions().size());
      if (const auto *U = dyn_cast<RUnOpExpr>(Cur))
        Work.push_back(U->operand());
      if (const auto *Pr = dyn_cast<RPairExpr>(Cur)) {
        Work.push_back(Pr->first());
        Work.push_back(Pr->second());
      }
    }
    return Total;
  };
  // The pair box and the dead second component are branch-local; the
  // first component IS the program result, so its region escapes.
  EXPECT_GE(CountBound(If->thenExpr()), 2u);
  EXPECT_EQ(CountBound(If->elseExpr()), 0u);
}

TEST(PaperExamples, UnusedValueFreedImmediately) {
  // §1 on Fig. 1b: "the value 3@p6 is deallocated immediately after it is
  // created, which is correct because there are no uses of the value."
  driver::PipelineResult R =
      driver::runPipeline(programs::example11Source());
  ASSERT_TRUE(R.ok());
  // Dynamically: at some point a region is freed holding exactly one
  // never-read value — check via lifetimes that some region lives for
  // only a couple of memory operations.
  interp::RunOptions RO;
  RO.RecordLifetimes = true;
  interp::RunResult Run = interp::run(*R.Prog, R.AflC, RO);
  ASSERT_TRUE(Run.Ok);
  bool SawEphemeral = false;
  for (const interp::RegionLifetime &L : Run.Lifetimes) {
    if (L.AllocTime != 0 && L.FreeTime != 0 &&
        L.FreeTime - L.AllocTime <= 3)
      SawEphemeral = true;
  }
  EXPECT_TRUE(SawEphemeral);
}

} // namespace
