// Tests for closures stored in data structures (the escape-pool path of
// the closure analysis, a documented deviation in DESIGN.md). Programs
// here must still be sound and correct; where caller/callee colors
// cannot be aligned, the constraint generator pins regions allocated
// across the call (AflStats::NumPinnedCalls).

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

void checkSoundAndCorrect(const std::string &Source,
                          const std::string &Expected) {
  SCOPED_TRACE(Source);
  driver::PipelineResult R = driver::runPipeline(Source);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Afl.ResultText, Expected);
  EXPECT_EQ(R.Reference.ResultText, Expected);
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
}

TEST(EscapePool, ClosureInPair) {
  checkSoundAndCorrect(
      "let p = (fn x => x + 1, 5) in (fst p) (snd p) end", "6");
}

TEST(EscapePool, ClosureInBothPairSlots) {
  checkSoundAndCorrect("let p = (fn x => x + 1, fn y => y * 2) in "
                       "(fst p) 3 + (snd p) 3 end",
                       "10");
}

TEST(EscapePool, ClosureInList) {
  checkSoundAndCorrect(
      "let fs = (fn x => x + 1) :: (fn y => y * 2) :: nil in "
      "(hd fs) 10 + (hd (tl fs)) 10 end",
      "31");
}

TEST(EscapePool, ClosureThroughNestedPairs) {
  checkSoundAndCorrect(
      "let q = ((fn x => x - 1, 1), 2) in (fst (fst q)) 10 end", "9");
}

TEST(EscapePool, CapturedEnvironmentSurvives) {
  // The stored closure captures k; the capture's region must stay
  // allocated until the (later) call through the data structure.
  checkSoundAndCorrect("let k = 40 in let p = (fn x => x + k, 0) in "
                       "(fst p) 2 end end",
                       "42");
}

TEST(EscapePool, ListOfClosuresAppliedInLoop) {
  checkSoundAndCorrect(
      "let fs = (fn x => x + 1) :: (fn x => x + 2) :: (fn x => x + 3) :: "
      "nil in "
      "letrec sumapp l = if null l then 0 else (hd l) 10 + sumapp (tl l) "
      "in sumapp fs end end",
      "36");
}

TEST(EscapePool, PinnedCallsReported) {
  // A closure reaching a call through the pool may require pinning; the
  // stats must expose it (0 is fine when colors align, but the field is
  // populated either way).
  driver::PipelineResult R = driver::runPipeline(
      "let p = (fn x => x + 1, 5) in (fst p) (snd p) end");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Analysis.Solved);
  // NumPinnedCalls is well-defined (may be zero if the color sets
  // happened to coincide).
  SUCCEED() << "pinned calls: " << R.Analysis.NumPinnedCalls;
}

} // namespace
