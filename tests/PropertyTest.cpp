// Property-based tests over randomly generated well-typed programs
// (paper Theorem 5.1 and the §6 "never worse" claim, checked dynamically):
//
//   P1  the A-F-L-completed program runs without any region fault
//       (soundness: no read/write to an unallocated or deallocated
//        region; every region allocated at most once and freed at most
//        once; no region left allocated at letregion exit);
//   P2  its result equals both the reference interpreter's and the
//       conservative (T-T) completion's result;
//   P3  its memory behavior is never worse than T-T: max resident values,
//       max live regions, and final resident values are all <=;
//   P4  the total number of value allocations is identical (completions
//       only move region operations, never value writes).

#include "driver/Pipeline.h"
#include "programs/RandomProgram.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

class RandomProgramProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramProperty, AflSoundAndNeverWorse) {
  unsigned Seed = GetParam();
  std::string Source = programs::generateRandomProgram(Seed);
  SCOPED_TRACE("seed " + std::to_string(Seed) + ": " + Source);

  driver::PipelineResult R = driver::runPipeline(Source);
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  // P1/P2: both runs succeeded (runPipeline fails otherwise); values agree.
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText);
  EXPECT_EQ(R.Conservative.ResultText, R.Reference.ResultText);

  // P3: never worse than Tofte/Talpin.
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
  EXPECT_LE(R.Afl.S.MaxRegions, R.Conservative.S.MaxRegions);
  EXPECT_LE(R.Afl.S.FinalValues, R.Conservative.S.FinalValues);
  EXPECT_LE(R.Afl.S.TotalRegionAllocs, R.Conservative.S.TotalRegionAllocs);

  // P4: value allocations are untouched by completion placement.
  EXPECT_EQ(R.Afl.S.TotalValueAllocs, R.Conservative.S.TotalValueAllocs);

  // The solver must never have to fall back.
  EXPECT_TRUE(R.Analysis.Solved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range(0u, 400u));

class FirstOrderProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(FirstOrderProperty, DeeperFirstOrderPrograms) {
  programs::RandomProgramOptions Options;
  Options.MaxDepth = 7;
  Options.HigherOrder = false;
  unsigned Seed = GetParam();
  std::string Source = programs::generateRandomProgram(Seed, Options);
  SCOPED_TRACE("seed " + std::to_string(Seed) + ": " + Source);

  driver::PipelineResult R = driver::runPipeline(Source);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText);
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
  EXPECT_EQ(R.Afl.S.TotalValueAllocs, R.Conservative.S.TotalValueAllocs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirstOrderProperty,
                         ::testing::Range(1000u, 1100u));

class ClosureEscapeProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClosureEscapeProperty, PoolPathSoundAndNeverWorse) {
  // Programs that store closures in pairs exercise the escape pool and
  // the conservative pinning fallback: soundness (P1) and correctness
  // (P2) must hold unconditionally; the never-worse bound (P3) holds for
  // peak residency even when pinning disables some frees.
  programs::RandomProgramOptions Options;
  Options.ClosureEscape = true;
  unsigned Seed = GetParam();
  std::string Source = programs::generateRandomProgram(Seed, Options);
  SCOPED_TRACE("seed " + std::to_string(Seed) + ": " + Source);

  driver::PipelineResult R = driver::runPipeline(Source);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText);
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
  EXPECT_EQ(R.Afl.S.TotalValueAllocs, R.Conservative.S.TotalValueAllocs);
  EXPECT_TRUE(R.Analysis.Solved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureEscapeProperty,
                         ::testing::Range(3000u, 3200u));

class DeepEverythingProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DeepEverythingProperty, AllFeaturesAtDepthSeven) {
  programs::RandomProgramOptions Options;
  Options.MaxDepth = 7;
  Options.ClosureEscape = true;
  unsigned Seed = GetParam();
  std::string Source = programs::generateRandomProgram(Seed, Options);
  SCOPED_TRACE("seed " + std::to_string(Seed) + ": " + Source);

  driver::PipelineResult R = driver::runPipeline(Source);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText);
  EXPECT_EQ(R.Conservative.ResultText, R.Reference.ResultText);
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
  EXPECT_LE(R.Afl.S.MaxRegions, R.Conservative.S.MaxRegions);
  EXPECT_EQ(R.Afl.S.TotalValueAllocs, R.Conservative.S.TotalValueAllocs);
  EXPECT_TRUE(R.Analysis.Solved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepEverythingProperty,
                         ::testing::Range(7000u, 7150u));

} // namespace
