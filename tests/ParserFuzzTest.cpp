// Robustness fuzzing: the lexer/parser must reject arbitrary byte soup
// with diagnostics, never crash, and the full pipeline must survive
// mutated corpus programs (either failing cleanly or running soundly).

#include "ast/ASTContext.h"
#include "driver/Pipeline.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

#include <random>

using namespace afl;

namespace {

class GarbageFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(GarbageFuzz, NeverCrashes) {
  std::mt19937 Rng(GetParam());
  std::string Source;
  unsigned Len = 1 + Rng() % 120;
  const char Alphabet[] =
      "abcxyz0123456789 ()+-*<=:,%$#@!\n\tfnletrecinendifthenelse";
  for (unsigned I = 0; I != Len; ++I)
    Source += Alphabet[Rng() % (sizeof(Alphabet) - 1)];
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  // Either it parsed, or a diagnostic explains why.
  if (!E) {
    EXPECT_TRUE(Diags.hasErrors());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageFuzz, ::testing::Range(0u, 200u));

class MutationFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(MutationFuzz, MutatedCorpusFailsCleanlyOrRunsSoundly) {
  std::mt19937 Rng(GetParam());
  auto Corpus = programs::smallCorpus();
  std::string Source = Corpus[Rng() % Corpus.size()].Source;
  // Apply a few random character mutations.
  for (int I = 0; I != 3; ++I) {
    size_t Pos = Rng() % Source.size();
    switch (Rng() % 3) {
    case 0:
      Source.erase(Pos, 1);
      break;
    case 1:
      Source.insert(Pos, 1, "()+-x10"[Rng() % 7]);
      break;
    default:
      Source[Pos] = "()+-x10"[Rng() % 7];
      break;
    }
  }
  driver::PipelineOptions Options;
  Options.MaxSteps = 2'000'000; // mutations may create long loops
  driver::PipelineResult R = driver::runPipeline(Source, Options);
  if (!R.ok()) {
    EXPECT_TRUE(R.Diags.hasErrors()) << Source;
    return;
  }
  // Still a valid program: full soundness properties must hold.
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText) << Source;
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues) << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range(0u, 150u));

/// `if c then t else` nested \p Levels deep in the else branch, closed
/// with a literal. Each level costs about one unit of parser depth.
std::string nestedIfs(int Levels) {
  std::string Src;
  for (int I = 0; I != Levels; ++I)
    Src += "if 1 <= 0 then 0 else ";
  Src += "1";
  return Src;
}

TEST(DeepNesting, WellBelowLimitParses) {
  // Deep but legal nesting must still parse: the guard exists to stop
  // runaway recursion, not to reject real programs.
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(nestedIfs(1500), Ctx, Diags);
  EXPECT_NE(E, nullptr);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(DeepNesting, AboveLimitFailsWithDiagnostic) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(nestedIfs(2500), Ctx, Diags);
  EXPECT_EQ(E, nullptr);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("expression nesting too deep"),
            std::string::npos);
}

TEST(DeepNesting, HundredThousandParensNoStackOverflow) {
  // The acceptance scenario: a 100k-deep expression must be rejected
  // through the diagnostics engine, not by exhausting the stack. Each
  // parenthesis level costs several recursive frames, so without the
  // depth guard this input crashes long before the lexer runs out of
  // tokens.
  const int Depth = 100000;
  std::string Src(static_cast<size_t>(Depth), '(');
  Src += "1";
  Src.append(static_cast<size_t>(Depth), ')');
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Src, Ctx, Diags);
  EXPECT_EQ(E, nullptr);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("expression nesting too deep"),
            std::string::npos);
}

TEST(DeepNesting, DeepConsChainRejectedCleanly) {
  // The right-recursive `::` production is its own recursion path
  // through parseCons; it must hit the same guard.
  std::string Src;
  for (int I = 0; I != 100000; ++I)
    Src += "1 :: ";
  Src += "nil";
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Src, Ctx, Diags);
  EXPECT_EQ(E, nullptr);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("expression nesting too deep"),
            std::string::npos);
}

} // namespace
