// Robustness fuzzing: the lexer/parser must reject arbitrary byte soup
// with diagnostics, never crash, and the full pipeline must survive
// mutated corpus programs (either failing cleanly or running soundly).

#include "ast/ASTContext.h"
#include "driver/Pipeline.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

#include <random>

using namespace afl;

namespace {

class GarbageFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(GarbageFuzz, NeverCrashes) {
  std::mt19937 Rng(GetParam());
  std::string Source;
  unsigned Len = 1 + Rng() % 120;
  const char Alphabet[] =
      "abcxyz0123456789 ()+-*<=:,%$#@!\n\tfnletrecinendifthenelse";
  for (unsigned I = 0; I != Len; ++I)
    Source += Alphabet[Rng() % (sizeof(Alphabet) - 1)];
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  // Either it parsed, or a diagnostic explains why.
  if (!E) {
    EXPECT_TRUE(Diags.hasErrors());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageFuzz, ::testing::Range(0u, 200u));

class MutationFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(MutationFuzz, MutatedCorpusFailsCleanlyOrRunsSoundly) {
  std::mt19937 Rng(GetParam());
  auto Corpus = programs::smallCorpus();
  std::string Source = Corpus[Rng() % Corpus.size()].Source;
  // Apply a few random character mutations.
  for (int I = 0; I != 3; ++I) {
    size_t Pos = Rng() % Source.size();
    switch (Rng() % 3) {
    case 0:
      Source.erase(Pos, 1);
      break;
    case 1:
      Source.insert(Pos, 1, "()+-x10"[Rng() % 7]);
      break;
    default:
      Source[Pos] = "()+-x10"[Rng() % 7];
      break;
    }
  }
  driver::PipelineOptions Options;
  Options.MaxSteps = 2'000'000; // mutations may create long loops
  driver::PipelineResult R = driver::runPipeline(Source, Options);
  if (!R.ok()) {
    EXPECT_TRUE(R.Diags.hasErrors()) << Source;
    return;
  }
  // Still a valid program: full soundness properties must hold.
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText) << Source;
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues) << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range(0u, 150u));

} // namespace
