// Tests for the random program generator itself: determinism, parse- and
// type-validity, and option behavior.

#include "ast/ASTContext.h"
#include "parser/Parser.h"
#include "programs/RandomProgram.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

TEST(RandomProgram, Deterministic) {
  for (unsigned Seed : {0u, 1u, 7u, 99u}) {
    EXPECT_EQ(programs::generateRandomProgram(Seed),
              programs::generateRandomProgram(Seed));
  }
  EXPECT_NE(programs::generateRandomProgram(1),
            programs::generateRandomProgram(2));
}

TEST(RandomProgram, AlwaysParsesAndTypes) {
  for (unsigned Seed = 5000; Seed != 5200; ++Seed) {
    std::string Source = programs::generateRandomProgram(Seed);
    SCOPED_TRACE("seed " + std::to_string(Seed) + ": " + Source);
    ast::ASTContext Ctx;
    DiagnosticEngine Diags;
    const ast::Expr *E = parseExpr(Source, Ctx, Diags);
    ASSERT_NE(E, nullptr) << Diags.str();
    types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
    EXPECT_TRUE(T.Success) << Diags.str();
  }
}

TEST(RandomProgram, FirstOrderOptionExcludesLambdas) {
  programs::RandomProgramOptions Options;
  Options.HigherOrder = false;
  for (unsigned Seed = 0; Seed != 100; ++Seed) {
    std::string Source = programs::generateRandomProgram(Seed, Options);
    EXPECT_EQ(Source.find("fn "), std::string::npos)
        << "seed " << Seed << ": " << Source;
  }
}

TEST(RandomProgram, NoRecursionOptionExcludesLetrec) {
  programs::RandomProgramOptions Options;
  Options.Recursion = false;
  for (unsigned Seed = 0; Seed != 100; ++Seed) {
    std::string Source = programs::generateRandomProgram(Seed, Options);
    EXPECT_EQ(Source.find("letrec"), std::string::npos)
        << "seed " << Seed << ": " << Source;
  }
}

} // namespace
