// Tests for the shared worker pool: every item runs exactly once, the
// caller always participates, zero-worker pools degrade to inline
// execution, nesting cannot deadlock, and the run stats add up.

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using namespace afl;

namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool Pool(3);
  constexpr size_t N = 1000;
  std::vector<std::atomic<unsigned>> Hits(N);
  ThreadPool::RunStats S = Pool.parallelFor(
      N, 0, [&](size_t I) { Hits[I].fetch_add(1, std::memory_order_relaxed); });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << I;
  EXPECT_EQ(S.Items, N);
  EXPECT_EQ(S.RanByCaller + S.RanByWorkers, N);
  EXPECT_GE(S.WorkersEngaged, 1u);
  EXPECT_LE(S.TasksQueued, Pool.numThreads());
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool Pool(2);
  bool Ran = false;
  ThreadPool::RunStats S =
      Pool.parallelFor(0, 0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
  EXPECT_EQ(S.Items, 0u);
  EXPECT_EQ(S.TasksQueued, 0u);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInlineOnCaller) {
  ThreadPool Pool(0);
  constexpr size_t N = 64;
  std::atomic<size_t> Count{0};
  std::thread::id Caller = std::this_thread::get_id();
  bool AllOnCaller = true;
  ThreadPool::RunStats S = Pool.parallelFor(N, 0, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
    if (std::this_thread::get_id() != Caller)
      AllOnCaller = false;
  });
  EXPECT_EQ(Count.load(), N);
  EXPECT_TRUE(AllOnCaller);
  EXPECT_EQ(S.RanByCaller, N);
  EXPECT_EQ(S.RanByWorkers, 0u);
  EXPECT_EQ(S.TasksQueued, 0u);
  EXPECT_EQ(S.WorkersEngaged, 1u);
}

TEST(ThreadPool, MaxWorkersOneIsSequential) {
  ThreadPool Pool(4);
  constexpr size_t N = 32;
  // With one executor the caller runs everything in index order.
  std::vector<size_t> Order;
  ThreadPool::RunStats S =
      Pool.parallelFor(N, 1, [&](size_t I) { Order.push_back(I); });
  ASSERT_EQ(Order.size(), N);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Order[I], I);
  EXPECT_EQ(S.RanByCaller, N);
  EXPECT_EQ(S.TasksQueued, 0u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Every outer item issues an inner parallelFor on the same pool. With
  // a tiny pool this saturates the workers; the caller-participates
  // design must still drain everything.
  ThreadPool Pool(2);
  constexpr size_t Outer = 8, Inner = 50;
  std::atomic<size_t> Total{0};
  Pool.parallelFor(Outer, 0, [&](size_t) {
    Pool.parallelFor(Inner, 0, [&](size_t) {
      Total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(Total.load(), Outer * Inner);
}

TEST(ThreadPool, DeeplyNestedOnGlobalPool) {
  std::atomic<size_t> Total{0};
  ThreadPool::global().parallelFor(4, 0, [&](size_t) {
    ThreadPool::global().parallelFor(4, 0, [&](size_t) {
      ThreadPool::global().parallelFor(4, 0, [&](size_t) {
        Total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(Total.load(), 64u);
}

TEST(ThreadPool, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
  EXPECT_EQ(ThreadPool::global().numThreads(),
            ThreadPool::hardwareThreads() - 1);
}

TEST(ThreadPool, StatsCountersAreConsistentUnderRepetition) {
  ThreadPool Pool(2);
  for (int Round = 0; Round != 50; ++Round) {
    std::atomic<size_t> Count{0};
    ThreadPool::RunStats S = Pool.parallelFor(
        17, 0,
        [&](size_t) { Count.fetch_add(1, std::memory_order_relaxed); });
    ASSERT_EQ(Count.load(), 17u);
    ASSERT_EQ(S.RanByCaller + S.RanByWorkers, 17u);
    ASSERT_GE(S.WorkersEngaged, 1u);
    ASSERT_LE(S.WorkersEngaged, 3u); // caller + 2 workers
  }
}

} // namespace
