// Tests for the shared worker pool: every item runs exactly once, the
// caller always participates, zero-worker pools degrade to inline
// execution, nesting cannot deadlock, and the run stats add up.

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

using namespace afl;

namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool Pool(3);
  constexpr size_t N = 1000;
  std::vector<std::atomic<unsigned>> Hits(N);
  ThreadPool::RunStats S = Pool.parallelFor(
      N, 0, [&](size_t I) { Hits[I].fetch_add(1, std::memory_order_relaxed); });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << I;
  EXPECT_EQ(S.Items, N);
  EXPECT_EQ(S.RanByCaller + S.RanByWorkers, N);
  EXPECT_GE(S.WorkersEngaged, 1u);
  EXPECT_LE(S.TasksQueued, Pool.numThreads());
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool Pool(2);
  bool Ran = false;
  ThreadPool::RunStats S =
      Pool.parallelFor(0, 0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
  EXPECT_EQ(S.Items, 0u);
  EXPECT_EQ(S.TasksQueued, 0u);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInlineOnCaller) {
  ThreadPool Pool(0);
  constexpr size_t N = 64;
  std::atomic<size_t> Count{0};
  std::thread::id Caller = std::this_thread::get_id();
  bool AllOnCaller = true;
  ThreadPool::RunStats S = Pool.parallelFor(N, 0, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
    if (std::this_thread::get_id() != Caller)
      AllOnCaller = false;
  });
  EXPECT_EQ(Count.load(), N);
  EXPECT_TRUE(AllOnCaller);
  EXPECT_EQ(S.RanByCaller, N);
  EXPECT_EQ(S.RanByWorkers, 0u);
  EXPECT_EQ(S.TasksQueued, 0u);
  EXPECT_EQ(S.WorkersEngaged, 1u);
}

TEST(ThreadPool, MaxWorkersOneIsSequential) {
  ThreadPool Pool(4);
  constexpr size_t N = 32;
  // With one executor the caller runs everything in index order.
  std::vector<size_t> Order;
  ThreadPool::RunStats S =
      Pool.parallelFor(N, 1, [&](size_t I) { Order.push_back(I); });
  ASSERT_EQ(Order.size(), N);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Order[I], I);
  EXPECT_EQ(S.RanByCaller, N);
  EXPECT_EQ(S.TasksQueued, 0u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Every outer item issues an inner parallelFor on the same pool. With
  // a tiny pool this saturates the workers; the caller-participates
  // design must still drain everything.
  ThreadPool Pool(2);
  constexpr size_t Outer = 8, Inner = 50;
  std::atomic<size_t> Total{0};
  Pool.parallelFor(Outer, 0, [&](size_t) {
    Pool.parallelFor(Inner, 0, [&](size_t) {
      Total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(Total.load(), Outer * Inner);
}

TEST(ThreadPool, DeeplyNestedOnGlobalPool) {
  std::atomic<size_t> Total{0};
  ThreadPool::global().parallelFor(4, 0, [&](size_t) {
    ThreadPool::global().parallelFor(4, 0, [&](size_t) {
      ThreadPool::global().parallelFor(4, 0, [&](size_t) {
        Total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(Total.load(), 64u);
}

TEST(ThreadPool, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
  // Starts at hardware size; the socket transport may have grown it
  // (ensureWorkers never shrinks), so this is a floor, not an equality.
  EXPECT_GE(ThreadPool::global().numThreads(),
            ThreadPool::hardwareThreads() - 1);
}

TEST(ThreadPool, StatsCountersAreConsistentUnderRepetition) {
  ThreadPool Pool(2);
  for (int Round = 0; Round != 50; ++Round) {
    std::atomic<size_t> Count{0};
    ThreadPool::RunStats S = Pool.parallelFor(
        17, 0,
        [&](size_t) { Count.fetch_add(1, std::memory_order_relaxed); });
    ASSERT_EQ(Count.load(), 17u);
    ASSERT_EQ(S.RanByCaller + S.RanByWorkers, 17u);
    ASSERT_GE(S.WorkersEngaged, 1u);
    ASSERT_LE(S.WorkersEngaged, 3u); // caller + 2 workers
  }
}

TEST(ThreadPool, SubmitRunsDetachedTasks) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Ran{0};
  std::mutex M;
  std::condition_variable CV;
  for (unsigned I = 0; I != 8; ++I)
    Pool.submit([&] {
      if (Ran.fetch_add(1, std::memory_order_acq_rel) + 1 == 8) {
        std::lock_guard<std::mutex> Lock(M);
        CV.notify_all();
      }
    });
  std::unique_lock<std::mutex> Lock(M);
  ASSERT_TRUE(CV.wait_for(Lock, std::chrono::seconds(30), [&] {
    return Ran.load(std::memory_order_acquire) == 8;
  }));
}

TEST(ThreadPool, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1u);
  Pool.ensureWorkers(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  Pool.ensureWorkers(2); // never shrinks
  EXPECT_EQ(Pool.numThreads(), 4u);

  // The grown workers actually serve the queue: four tasks that must be
  // concurrently live to finish would deadlock on a one-worker pool.
  std::atomic<unsigned> Arrived{0};
  std::mutex M;
  std::condition_variable CV;
  std::atomic<bool> Done{false};
  for (unsigned I = 0; I != 4; ++I)
    Pool.submit([&] {
      Arrived.fetch_add(1, std::memory_order_acq_rel);
      std::unique_lock<std::mutex> Lock(M);
      CV.notify_all();
      CV.wait_for(Lock, std::chrono::seconds(30),
                  [&] { return Done.load(std::memory_order_acquire); });
    });
  {
    std::unique_lock<std::mutex> Lock(M);
    ASSERT_TRUE(CV.wait_for(Lock, std::chrono::seconds(30), [&] {
      return Arrived.load(std::memory_order_acquire) == 4;
    }));
    Done.store(true, std::memory_order_release);
    CV.notify_all();
  }
}

TEST(ThreadPool, SubmitAndParallelForShareTheQueue) {
  // A submitted (blocking-style) task must not wedge parallelFor: the
  // caller always participates, so the batch completes even if every
  // worker is pinned by submitted tasks.
  ThreadPool Pool(1);
  std::atomic<bool> Release{false};
  std::atomic<bool> TaskRan{false};
  Pool.submit([&] {
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    TaskRan.store(true, std::memory_order_release);
  });
  std::atomic<size_t> Count{0};
  Pool.parallelFor(16, 0,
                   [&](size_t) { Count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(Count.load(), 16u);
  Release.store(true, std::memory_order_release);
  // Pool destructor joins the worker, which needs the task to finish.
}

} // namespace
