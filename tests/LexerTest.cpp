#include "lexer/Lexer.h"
#include <gtest/gtest.h>

using namespace afl;

TEST(Lexer, Smoke) {
  DiagnosticEngine Diags;
  Lexer L("let x = 1 in x + 2 end", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(L.tokens().size(), 10u);
  EXPECT_EQ(L.tokens().front().Kind, TokenKind::KwLet);
  EXPECT_EQ(L.tokens().back().Kind, TokenKind::Eof);
}
