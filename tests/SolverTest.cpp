// Unit tests for the constraint solver: propagation rules for equality
// and allocation/deallocation triples, the border-choice strategy
// (late alloc / early free), and backtracking.

#include "constraints/ConstraintSystem.h"
#include "solver/Solver.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::constraints;
using namespace afl::solver;

namespace {

TEST(Solver, EqualityPropagates) {
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StA);
  StateVarId S2 = Sys.newState();
  StateVarId S3 = Sys.newState();
  Sys.addEq(S1, S2);
  Sys.addEq(S2, S3);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_EQ(R.StateDom[S2], StA);
  EXPECT_EQ(R.StateDom[S3], StA);
}

TEST(Solver, InconsistentEqualityUnsat) {
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StA);
  StateVarId S2 = Sys.newState(StD);
  Sys.addEq(S1, S2);
  SolveResult R = solve(Sys);
  EXPECT_FALSE(R.Sat);
}

TEST(Solver, AllocTripleForcedTrue) {
  // s1 = U and s2 = A with no overlap: the boolean must be true.
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StU);
  StateVarId S2 = Sys.newState(StA);
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S1, B, S2);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_TRUE(R.boolValue(B));
}

TEST(Solver, AllocTripleForcedFalse) {
  // s1 = A already: allocation here is impossible; states equalize.
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StA);
  StateVarId S2 = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S1, B, S2);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_FALSE(R.boolValue(B));
  EXPECT_EQ(R.StateDom[S2], StA);
}

TEST(Solver, DeallocTripleForcedTrue) {
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StA);
  StateVarId S2 = Sys.newState(StD);
  BoolVarId B = Sys.newBool();
  Sys.addDeallocTriple(S1, B, S2);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_TRUE(R.boolValue(B));
}

TEST(Solver, LateAllocationPreferred) {
  // Chain U --b1--> s --b2--> A. Both single allocations are legal; the
  // border heuristic must pick the LATE one (b2), leaving s unallocated.
  ConstraintSystem Sys;
  StateVarId S0 = Sys.newState(StU);
  StateVarId S1 = Sys.newState();
  StateVarId S2 = Sys.newState(StA);
  BoolVarId B1 = Sys.newBool();
  BoolVarId B2 = Sys.newBool();
  Sys.addAllocTriple(S0, B1, S1);
  Sys.addAllocTriple(S1, B2, S2);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_FALSE(R.boolValue(B1));
  EXPECT_TRUE(R.boolValue(B2));
  EXPECT_EQ(R.StateDom[S1], StU);
}

TEST(Solver, EarlyFreePreferred) {
  // Chain A --b1--> s --b2--> (end, unconstrained). Early free wins: b1.
  ConstraintSystem Sys;
  StateVarId S0 = Sys.newState(StA);
  StateVarId S1 = Sys.newState();
  StateVarId S2 = Sys.newState();
  BoolVarId B1 = Sys.newBool();
  BoolVarId B2 = Sys.newBool();
  Sys.addDeallocTriple(S0, B1, S1);
  Sys.addDeallocTriple(S1, B2, S2);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_TRUE(R.boolValue(B1));
  EXPECT_FALSE(R.boolValue(B2));
  EXPECT_EQ(R.StateDom[S1], StD);
}

TEST(Solver, MustStayAllocatedBetweenUses) {
  // A region accessed at two points with a potential free between them:
  // the free must be rejected (U→A→D is monotone; no re-allocation).
  ConstraintSystem Sys;
  StateVarId Use1 = Sys.newState(StA);
  StateVarId Mid = Sys.newState();
  StateVarId Use2 = Sys.newState(StA);
  BoolVarId Free = Sys.newBool();
  Sys.addDeallocTriple(Use1, Free, Mid);
  Sys.addEq(Mid, Use2);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_FALSE(R.boolValue(Free));
  EXPECT_EQ(R.StateDom[Mid], StA);
}

TEST(Solver, SharedBooleanAcrossContexts) {
  // The same boolean drives triples in two contexts; context 2 forbids
  // the allocation (its pre-state is already A), so context 1 must not
  // allocate either.
  ConstraintSystem Sys;
  BoolVarId B = Sys.newBool();
  StateVarId C1Pre = Sys.newState();
  StateVarId C1Post = Sys.newState();
  Sys.addAllocTriple(C1Pre, B, C1Post);
  StateVarId C2Pre = Sys.newState(StA);
  StateVarId C2Post = Sys.newState();
  Sys.addAllocTriple(C2Pre, B, C2Post);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_FALSE(R.boolValue(B));
}

TEST(Solver, BacktracksOnBadBorderChoice) {
  // Two independent alloc borders share one boolean through a diamond
  // where choosing true first conflicts: U-chain with a forced-A middle.
  //   S0(U) --B--> S1,  S1 = A required, and S0 also = A via equality
  // Choosing B=true forces S0=U, conflicting with S0=A.
  ConstraintSystem Sys;
  StateVarId S0 = Sys.newState();
  StateVarId S1 = Sys.newState(StA);
  StateVarId SA = Sys.newState(StA);
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S0, B, S1);
  Sys.addEq(S0, SA);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_FALSE(R.boolValue(B));
}

TEST(Solver, AllBooleansAssignedWhenSat) {
  ConstraintSystem Sys;
  StateVarId S0 = Sys.newState();
  StateVarId S1 = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S0, B, S1);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_NE(R.BoolDom[B], BAny);
  // Unforced booleans default to false (no operation).
  EXPECT_FALSE(R.boolValue(B));
}

TEST(Solver, EmptyInitialDomainUnsat) {
  // Regression: restrictState can zero the domain of a variable that
  // occurs in no constraint. Propagation never visits it, so the solver
  // must scan initial domains for emptiness instead of reporting Sat.
  ConstraintSystem Sys;
  StateVarId Dangling = Sys.newState();
  Sys.restrictState(Dangling, StA);
  Sys.restrictState(Dangling, StD); // A & D = empty
  // An unrelated, satisfiable constraint so the system is non-trivial.
  StateVarId S1 = Sys.newState(StU);
  StateVarId S2 = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S1, B, S2);
  SolveResult Simplified = solve(Sys);
  EXPECT_FALSE(Simplified.Sat);
  SolveOptions Raw;
  Raw.Simplify = false;
  SolveResult RawResult = solve(Sys, Raw);
  EXPECT_FALSE(RawResult.Sat);
}

TEST(Solver, EmptyDomainOnConstrainedVarUnsat) {
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState();
  StateVarId S2 = Sys.newState();
  Sys.addEq(S1, S2);
  Sys.restrictState(S1, 0);
  for (bool Simplify : {false, true}) {
    SolveOptions Options;
    Options.Simplify = Simplify;
    EXPECT_FALSE(solve(Sys, Options).Sat);
  }
}

TEST(Solver, LongChainScales) {
  // A long U ... A chain: exactly one allocation is chosen, at the end.
  ConstraintSystem Sys;
  const int N = 2000;
  StateVarId Prev = Sys.newState(StU);
  std::vector<BoolVarId> Bs;
  for (int I = 0; I != N; ++I) {
    StateVarId Next = Sys.newState();
    BoolVarId B = Sys.newBool();
    Sys.addAllocTriple(Prev, B, Next);
    Bs.push_back(B);
    Prev = Next;
  }
  Sys.restrictState(Prev, StA);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  int NumTrue = 0;
  for (BoolVarId B : Bs)
    NumTrue += R.boolValue(B);
  EXPECT_EQ(NumTrue, 1);
  EXPECT_TRUE(R.boolValue(Bs.back()));
}

/// Many independent pinned chains — a multi-shard system for exercising
/// the sharded solve path end to end.
ConstraintSystem multiChainSystem(int Chains, int Len,
                                  std::vector<BoolVarId> *LastBools) {
  ConstraintSystem Sys;
  for (int Chain = 0; Chain != Chains; ++Chain) {
    StateVarId Prev = Sys.newState(StU);
    BoolVarId Last = 0;
    for (int I = 0; I != Len; ++I) {
      StateVarId Next = Sys.newState();
      BoolVarId B = Sys.newBool();
      Sys.addAllocTriple(Prev, B, Next);
      Last = B;
      Prev = Next;
    }
    Sys.restrictState(Prev, StA);
    if (LastBools)
      LastBools->push_back(Last);
  }
  return Sys;
}

TEST(Solver, ShardedMatchesMonolithicAndRaw) {
  // The three pipelines — sharded (default), monolithic (UseShards off),
  // and raw (no preprocessing) — must agree bit-for-bit.
  std::vector<BoolVarId> LastBools;
  ConstraintSystem Sys = multiChainSystem(12, 15, &LastBools);
  EXPECT_EQ(Sys.numShards(), 12u);

  SolveResult Sharded = solve(Sys);
  SolveOptions MonoOpts;
  MonoOpts.UseShards = false;
  SolveResult Mono = solve(Sys, MonoOpts);
  SolveOptions RawOpts;
  RawOpts.Simplify = false;
  SolveResult Raw = solve(Sys, RawOpts);

  ASSERT_TRUE(Sharded.Sat);
  ASSERT_TRUE(Mono.Sat);
  ASSERT_TRUE(Raw.Sat);
  EXPECT_EQ(Sharded.StateDom, Mono.StateDom);
  EXPECT_EQ(Sharded.BoolDom, Mono.BoolDom);
  EXPECT_EQ(Sharded.StateDom, Raw.StateDom);
  EXPECT_EQ(Sharded.BoolDom, Raw.BoolDom);
  // The sharded path reports the emission shards as its components, with
  // no component-discovery pass of its own.
  EXPECT_EQ(Sharded.Simplify.Components, 12u);
  // Late allocation chosen in every chain.
  for (BoolVarId B : LastBools)
    EXPECT_TRUE(Sharded.boolValue(B));
}

TEST(Solver, ShardedParallelJobsMatchSequential) {
  ConstraintSystem Sys = multiChainSystem(12, 15, nullptr);
  SolveOptions Par;
  Par.Jobs = 4;
  Par.ParallelMinConstraints = 0;
  SolveResult RPar = solve(Sys, Par);
  SolveResult RSeq = solve(Sys);
  ASSERT_TRUE(RPar.Sat);
  EXPECT_GT(RPar.Simplify.ThreadsUsed, 1u);
  EXPECT_EQ(RPar.StateDom, RSeq.StateDom);
  EXPECT_EQ(RPar.BoolDom, RSeq.BoolDom);
}

TEST(Solver, UnsatShardFailsWholeSystem) {
  // One inconsistent shard among many healthy ones must surface as
  // global Unsat on every path, including the parallel one (workers
  // cannot return a partial success).
  ConstraintSystem Sys = multiChainSystem(6, 10, nullptr);
  StateVarId S1 = Sys.newState(StA);
  StateVarId S2 = Sys.newState(StD);
  Sys.addEq(S1, S2);
  SolveResult Sharded = solve(Sys);
  EXPECT_FALSE(Sharded.Sat);
  SolveOptions MonoOpts;
  MonoOpts.UseShards = false;
  EXPECT_FALSE(solve(Sys, MonoOpts).Sat);
  SolveOptions Par;
  Par.Jobs = 4;
  Par.ParallelMinConstraints = 0;
  EXPECT_FALSE(solve(Sys, Par).Sat);
}

TEST(Solver, ShardedHandlesUnconstrainedVariables) {
  // Variables outside every shard keep their initial domains; unforced
  // booleans default to false — same conventions as the monolithic path.
  ConstraintSystem Sys;
  StateVarId Free = Sys.newState(StD);
  BoolVarId FreeB = Sys.newBool();
  StateVarId S1 = Sys.newState(StU);
  StateVarId S2 = Sys.newState(StA);
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S1, B, S2);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_EQ(R.StateDom[Free], StD);
  EXPECT_EQ(R.BoolDom[FreeB], BFalse);
  EXPECT_TRUE(R.boolValue(B));
}

TEST(Solver, ZeroedDomainOutsideShardsUnsat) {
  // A domain emptied by restrictState on a variable no constraint
  // mentions: the sharded path's global pre-scan must catch it even
  // though the variable belongs to no shard.
  ConstraintSystem Sys = multiChainSystem(3, 5, nullptr);
  StateVarId S = Sys.newState();
  Sys.restrictState(S, StA);
  Sys.restrictState(S, StD); // A & D = empty
  EXPECT_FALSE(solve(Sys).Sat);
  SolveOptions MonoOpts;
  MonoOpts.UseShards = false;
  EXPECT_FALSE(solve(Sys, MonoOpts).Sat);
}

} // namespace
